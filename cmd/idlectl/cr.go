package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"

	"idlereduce/internal/ledger"
	"idlereduce/internal/server"
	"idlereduce/internal/textplot"
)

// crCmd rebuilds the competitive-ratio table forensically from a
// decision audit log alone: ledger-opted decide records re-issue their
// pending entries and settle records re-join them through a fresh
// ledger, reproducing the per-{area, engine} empirical CR the live
// daemon reported at GET /v1/cr — no daemon required.
func crCmd(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("cr", flag.ContinueOnError)
	logPath := fs.String("log", "", "decision audit log written by idled serve -audit-log (default stdin)")
	jsonOut := fs.Bool("json", false, "emit the table as JSON rows instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var r io.Reader = stdin
	if *logPath != "" && *logPath != "-" {
		f, err := os.Open(*logPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}

	// Replay ledger: a settle record in the log is proof the live daemon
	// joined it, so the forensic pass must never expire or evict what
	// the daemon kept — TTL effectively infinite, capacity generous.
	led := ledger.New(ledger.Config{TTLMS: math.MaxInt64 / 2, Capacity: 1 << 20})

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo, unjoined := 0, 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var tag struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &tag); err != nil {
			// Crash tails and corrupt lines are audit verify's concern;
			// the forensic join just skips what it cannot read.
			continue
		}
		switch tag.Kind {
		case "":
			var rec server.AuditRecord
			if err := json.Unmarshal([]byte(line), &rec); err != nil || rec.DecisionID == "" {
				continue
			}
			// The live ledger keys accumulators by the engine spec
			// ("name@vN"); the audit record carries name and version
			// separately, so rebuild the same key.
			engine := rec.Policy
			if engine == "" {
				engine = "constrained"
			}
			if rec.PolicyVersion > 0 {
				engine = fmt.Sprintf("%s@v%d", engine, rec.PolicyVersion)
			} else {
				engine += "@v1"
			}
			if _, err := led.Issue(ledger.Pending{
				ID: rec.DecisionID, Area: rec.Area, Engine: engine,
				Params: rec.Params, B: rec.B, ThresholdSec: rec.ThresholdSec,
				Bound: rec.CRBound, IssuedUnixMS: rec.TSUnixMS,
			}); err != nil {
				return fmt.Errorf("line %d: issue %s: %w", lineNo, rec.DecisionID, err)
			}
		case "settle":
			var rec server.SettleRecord
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				continue
			}
			if _, err := led.Settle(rec.DecisionID, rec.StopSec, rec.TSUnixMS); err != nil {
				// A settle whose decide fell outside this log slice (file
				// rotation, bounded writer drop) still counts; note it
				// rather than failing the whole rebuild.
				unjoined++
			}
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	rows := led.Rows()
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(server.CRResponse{Rows: rows, Pending: led.PendingCount(), Counters: led.Counters()})
	}
	c := led.Counters()
	fmt.Fprintf(stdout, "cr rebuild: %d issued, %d settled, %d still pending", c.Issued, c.Settled, led.PendingCount())
	if unjoined > 0 {
		fmt.Fprintf(stdout, ", %d settles without a decide in this log", unjoined)
	}
	fmt.Fprintln(stdout)
	if len(rows) == 0 {
		fmt.Fprintln(stdout, "no settled decisions in the log (decide with \"ledger\": true and settle via decision_id)")
		return nil
	}
	table := [][]string{{"area", "engine", "settles", "CR", "±band", "bound", "breaches", "mean online", "mean opt"}}
	for _, row := range rows {
		band := "--"
		if row.Band >= 0 {
			band = fmt.Sprintf("%.3f", row.Band)
		}
		bound := "--"
		if row.Bound > 0 {
			bound = fmt.Sprintf("%.3f", row.Bound)
		}
		table = append(table, []string{
			row.Area, row.Engine,
			fmt.Sprintf("%d", row.Settled),
			fmt.Sprintf("%.3f", row.CR),
			band, bound,
			fmt.Sprintf("%d", row.Breaches),
			fmt.Sprintf("%.2f", row.MeanOnline),
			fmt.Sprintf("%.2f", row.MeanOpt),
		})
	}
	fmt.Fprint(stdout, textplot.Table(table))
	return nil
}
