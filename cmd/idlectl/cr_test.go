package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"idlereduce/internal/obs"
	"idlereduce/internal/server"
)

// writeLedgerAuditLog boots a real idled with the audit log on, serves
// ledger-opted decisions, settles most of them through observes, and
// returns the served CR table for comparison against the forensic
// rebuild.
func writeLedgerAuditLog(t *testing.T, path string, decisions, settles int) server.CRResponse {
	t.Helper()
	f, err := obs.OpenRotatingFile(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	areas, err := server.DefaultAreaStates(28)
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(server.Config{Addr: "127.0.0.1:0", Areas: areas, AuditLog: f})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx) }()

	post := func(path, body string) []byte {
		resp, err := http.Post("http://"+addr+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, data)
		}
		return data
	}
	for i := 0; i < decisions; i++ {
		body := fmt.Sprintf(`{"vehicle_id":"v-%d","area":"chicago","seed":%d,"ledger":true}`, i, i+1)
		var dec server.DecideResponse
		if err := json.Unmarshal(post("/v1/decide", body), &dec); err != nil {
			t.Fatal(err)
		}
		if dec.DecisionID == "" {
			t.Fatal("ledger-opted decide returned no decision id")
		}
		if i < settles {
			stop := 5.0
			if i%3 == 0 {
				stop = 45.0
			}
			post("/v1/observe", fmt.Sprintf(`{"area":"chicago","stop_sec":%g,"decision_id":%q}`, stop, dec.DecisionID))
		}
	}
	resp, err := http.Get("http://" + addr + "/v1/cr")
	if err != nil {
		t.Fatal(err)
	}
	var served server.CRResponse
	if err := json.NewDecoder(resp.Body).Decode(&served); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not drain")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return served
}

// TestCRCommand rebuilds the CR table from a ledger-bearing audit log
// and checks it reproduces what the live daemon served at /v1/cr.
func TestCRCommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	served := writeLedgerAuditLog(t, path, 8, 6)

	// The same log must also pass full verification: ledger records are
	// part of the bit-identical replay contract.
	var out bytes.Buffer
	if err := run([]string{"audit", "verify", "-log", path}, nil, &out); err != nil {
		t.Fatalf("verify: %v\n%s", err, out.String())
	}

	out.Reset()
	if err := run([]string{"cr", "-log", path, "-json"}, nil, &out); err != nil {
		t.Fatalf("cr: %v\n%s", err, out.String())
	}
	var rebuilt server.CRResponse
	if err := json.Unmarshal(out.Bytes(), &rebuilt); err != nil {
		t.Fatalf("cr -json output undecodable: %v\n%s", err, out.String())
	}
	if len(rebuilt.Rows) != len(served.Rows) {
		t.Fatalf("rebuilt %d rows, served %d:\n%s", len(rebuilt.Rows), len(served.Rows), out.String())
	}
	for i, got := range rebuilt.Rows {
		want := served.Rows[i]
		if got.Area != want.Area || got.Engine != want.Engine || got.Settled != want.Settled ||
			got.CR != want.CR || got.Band != want.Band || got.Bound != want.Bound ||
			got.MeanOnline != want.MeanOnline || got.MeanOpt != want.MeanOpt {
			t.Errorf("row %d rebuilt as %+v, served %+v", i, got, want)
		}
	}
	if rebuilt.Pending != served.Pending {
		t.Errorf("rebuilt pending %d, served %d", rebuilt.Pending, served.Pending)
	}
	if rebuilt.Counters.Settled != served.Counters.Settled {
		t.Errorf("rebuilt settled %d, served %d", rebuilt.Counters.Settled, served.Counters.Settled)
	}

	// The text rendering carries the summary and the table.
	out.Reset()
	if err := run([]string{"cr", "-log", path}, nil, &out); err != nil {
		t.Fatalf("cr text: %v\n%s", err, out.String())
	}
	for _, want := range []string{"cr rebuild:", "chicago", "settles", "bound"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("cr output missing %q:\n%s", want, out.String())
		}
	}
}

// TestCRCommandEmptyLog: a log with no ledger records rebuilds to an
// empty table, not an error.
func TestCRCommandEmptyLog(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	writeAuditLog(t, path, 3) // ledger-free decides

	var out bytes.Buffer
	if err := run([]string{"cr", "-log", path}, nil, &out); err != nil {
		t.Fatalf("cr: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "no settled decisions") {
		t.Errorf("empty rebuild missing the hint:\n%s", out.String())
	}
	if err := run([]string{"cr", "-log", "/does/not/exist.jsonl"}, nil, &out); err == nil {
		t.Fatal("missing log file succeeded")
	}
}
