// Command idlectl is the deployment-facing controller tool: tune a policy
// from an observed stop trace, persist it as JSON, inspect it, replay it
// over traces, and render metrics snapshots.
//
// Usage:
//
//	idlectl [-cpuprofile f] [-memprofile f] [-trace f] [-workers N] <command> [flags]
//
//	idlectl tune  -b 28 [-robust] [-conf 0.95] [-stops trace.txt] [-o policy.json]
//	idlectl show  -policy policy.json
//	idlectl replay -policy policy.json [-stops trace.txt] [-seed N] [-metrics path]
//	idlectl synth -plan urban|suburb|downtown [-days N] [-seed N]
//	idlectl stats [-metrics snapshot.json]
//	idlectl engines
//	idlectl frontier [-b 28] [-mu 4] [-q 0.25] [-engine softml|distadvice] [-lambdas 0,0.5,1] [-json]
//	idlectl audit verify [-log audit.jsonl]
//	idlectl cr [-log audit.jsonl] [-json]
//	idlectl snapshot save [-target URL] [-o state.json]
//	idlectl snapshot load [-target URL] [-i state.json]
//	idlectl bench run [-out BENCH_NNNN.json] [-runs N] [-scale F] [-seq N] [-filter s]
//	idlectl bench compare -base BENCH_A.json -head BENCH_B.json [-max-regress 10%]
//
// The global -cpuprofile, -memprofile and -trace flags write Go
// pprof/execution-trace profiles covering the command's run. The replay
// command's -metrics flag dumps an observability registry snapshot
// ("-" = stdout): per-stop cost histograms with p50/p90/p99, engine
// transition counters, the selected vertex strategy, and threshold-draw
// distributions. The stats command renders such a snapshot as text
// charts (it also recognizes BENCH_*.json perf captures and renders
// them as a benchmark table). The engines command lists the registered
// policy engines idled can serve (the specs accepted by
// `idled serve -policy` and the wire "policy" field), including each
// engine's accepted params and their ranges. The frontier command
// sweeps the learning-augmented engines' trust parameter over a panel
// of predictor models and tabulates the consistency-robustness
// frontier (see docs/FRONTIER.md). The audit verify
// command replays an idled decision audit log (serve -audit-log)
// through its recorded policy engine and proves every decision —
// choice, threshold, and any multi-state schedule — reproduces
// bit-for-bit; observe-stream records are re-derived through the pure
// moment transition the same way (see docs/OBSERVABILITY.md). The cr
// command rebuilds the competitive-ratio ledger table from an audit
// log alone — ledger-opted decide records re-issue, settle records
// re-join — reproducing what the daemon served at GET /v1/cr. The
// snapshot commands move the checksummed state plane between daemons:
// save a warm donor, load a cold replica (or boot it with
// `idled serve -restore`). The bench commands capture
// and regression-gate the perf trajectory (see docs/BENCHMARKS.md).
//
// Stop traces are plain text: one stop length in seconds per line; blank
// lines and lines starting with '#' are ignored. With no -stops the trace
// is read from stdin.
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"idlereduce/internal/costmodel"
	"idlereduce/internal/drivecycle"
	"idlereduce/internal/obs"
	"idlereduce/internal/parallel"
	"idlereduce/internal/perf"
	"idlereduce/internal/policy"
	"idlereduce/internal/server"
	"idlereduce/internal/simulator"
	"idlereduce/internal/skirental"
	"idlereduce/internal/stats"
	"idlereduce/internal/textplot"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "idlectl:", err)
		os.Exit(1)
	}
}

const usage = "usage: idlectl [-cpuprofile f] [-memprofile f] [-trace f] [-workers N] <tune|show|replay|synth|stats|engines|frontier|audit|cr|snapshot|bench> [flags]"

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	gfs := flag.NewFlagSet("idlectl", flag.ContinueOnError)
	workers := gfs.Int("workers", 0, "parallel worker pool size for library fan-outs (0 = GOMAXPROCS)")
	var prof obs.Profiles
	prof.AddFlags(gfs)
	gfs.Usage = func() {
		fmt.Fprintln(gfs.Output(), usage)
		gfs.PrintDefaults()
	}
	if err := gfs.Parse(args); err != nil {
		return err
	}
	rest := gfs.Args()
	if len(rest) < 1 {
		return fmt.Errorf(usage)
	}
	parallel.SetDefaultWorkers(*workers)
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	var cmdErr error
	switch rest[0] {
	case "tune":
		cmdErr = tune(rest[1:], stdin, stdout)
	case "show":
		cmdErr = show(rest[1:], stdout)
	case "replay":
		cmdErr = replay(rest[1:], stdin, stdout)
	case "synth":
		cmdErr = synth(rest[1:], stdout)
	case "stats":
		cmdErr = statsCmd(rest[1:], stdin, stdout)
	case "engines":
		cmdErr = enginesCmd(rest[1:], stdout)
	case "frontier":
		cmdErr = frontierCmd(rest[1:], stdin, stdout)
	case "audit":
		cmdErr = auditCmd(rest[1:], stdin, stdout)
	case "cr":
		cmdErr = crCmd(rest[1:], stdin, stdout)
	case "snapshot":
		cmdErr = snapshotCmd(rest[1:], stdout)
	case "bench":
		cmdErr = benchCmd(rest[1:], stdout)
	default:
		cmdErr = fmt.Errorf("unknown command %q (want tune, show, replay, synth, stats, engines, frontier, audit, cr, snapshot or bench)", rest[0])
	}
	if perr := stopProf(); perr != nil && cmdErr == nil {
		cmdErr = perr
	}
	return cmdErr
}

// readStops parses a stop trace: one float per line.
func readStops(path string, stdin io.Reader) ([]float64, error) {
	var r io.Reader = stdin
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		r = f
	}
	var stops []float64
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		txt := strings.TrimSpace(sc.Text())
		if txt == "" || strings.HasPrefix(txt, "#") {
			continue
		}
		v, err := strconv.ParseFloat(txt, 64)
		if err != nil {
			return nil, fmt.Errorf("line %d: %q is not a stop length", line, txt)
		}
		if v < 0 {
			return nil, fmt.Errorf("line %d: negative stop length %v", line, v)
		}
		stops = append(stops, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(stops) == 0 {
		return nil, fmt.Errorf("no stops in input")
	}
	return stops, nil
}

func loadPolicy(path string) (skirental.Policy, error) {
	if path == "" {
		return nil, fmt.Errorf("-policy required")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return skirental.UnmarshalPolicy(data)
}

func tune(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("tune", flag.ContinueOnError)
	b := fs.Float64("b", 28, "break-even interval (s)")
	robust := fs.Bool("robust", false, "guard a 95% confidence rectangle instead of the point estimate")
	conf := fs.Float64("conf", 0.95, "confidence level for -robust")
	stopsPath := fs.String("stops", "", "stop trace file (default stdin)")
	outPath := fs.String("o", "", "write the policy spec here (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stops, err := readStops(*stopsPath, stdin)
	if err != nil {
		return err
	}

	var pol skirental.Policy
	var note string
	if *robust {
		rp, err := skirental.NewRobustConstrainedFromStops(*b, stops, *conf)
		if err != nil {
			return err
		}
		iv := rp.Interval()
		note = fmt.Sprintf("# robust selection %s over mu in [%.2f, %.2f], q in [%.3f, %.3f]; CR <= %.4f\n",
			rp.Choice(), iv.MuLo, iv.MuHi, iv.QLo, iv.QHi, rp.WorstCaseCR())
		// Persist the concrete selected vertex (the wrapper is stateful).
		pol, err = vertexPolicy(*b, rp.Choice(), stops)
		if err != nil {
			return err
		}
	} else {
		cp, err := skirental.NewConstrainedFromStops(*b, stops)
		if err != nil {
			return err
		}
		s := cp.Stats()
		note = fmt.Sprintf("# proposed selection %s at mu_B- = %.2f, q_B+ = %.3f; worst-case CR <= %.4f\n",
			cp.Choice(), s.MuBMinus, s.QBPlus, cp.WorstCaseCR())
		pol = cp
	}
	data, err := skirental.MarshalPolicy(pol)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, note)
	if *outPath == "" {
		fmt.Fprintf(stdout, "%s\n", data)
		return nil
	}
	if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s\n", *outPath)
	return nil
}

// vertexPolicy materializes the robust wrapper's selected vertex as a
// serializable policy.
func vertexPolicy(b float64, c skirental.Choice, stops []float64) (skirental.Policy, error) {
	switch c {
	case skirental.ChoiceTOI:
		return skirental.NewTOI(b), nil
	case skirental.ChoiceDET:
		return skirental.NewDET(b), nil
	case skirental.ChoiceNRand:
		return skirental.NewNRand(b), nil
	case skirental.ChoiceBDet:
		s, err := skirental.EstimateStats(stops, b)
		if err != nil {
			return nil, err
		}
		vc := skirental.ComputeVertexCosts(b, s)
		return skirental.NewBDet(b, vc.BDetThreshold), nil
	default:
		return nil, fmt.Errorf("unknown choice %v", c)
	}
}

func show(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("show", flag.ContinueOnError)
	policyPath := fs.String("policy", "", "policy spec JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pol, err := loadPolicy(*policyPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "policy: %s (B = %.1f s)\n", pol.Name(), pol.B())
	if c, ok := pol.(*skirental.Constrained); ok {
		s := c.Stats()
		fmt.Fprintf(stdout, "selected vertex: %s (mu_B- = %.2f, q_B+ = %.3f)\n", c.Choice(), s.MuBMinus, s.QBPlus)
		fmt.Fprintf(stdout, "worst-case CR:   %.4f\n", c.WorstCaseCR())
	}
	fmt.Fprintf(stdout, "expected cost for sample stops:\n")
	for _, y := range []float64{5, 15, 30, 60, 300} {
		fmt.Fprintf(stdout, "  stop %5.0f s -> %7.2f idle-s equivalents\n", y, pol.MeanCostForStop(y))
	}
	return nil
}

// replay runs a persisted policy over a trace through the event-driven
// simulator with unit idling rate, so metered cents equal the abstract
// idle-second costs the paper reasons in.
func replay(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	policyPath := fs.String("policy", "", "policy spec JSON")
	stopsPath := fs.String("stops", "", "stop trace file (default stdin)")
	seed := fs.Uint64("seed", 1, "RNG seed for randomized policies")
	verbose := fs.Bool("v", false, "print per-stop decisions")
	metrics := fs.String("metrics", "", `write a metrics registry snapshot here after the replay ("-" = stdout)`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	pol, err := loadPolicy(*policyPath)
	if err != nil {
		return err
	}
	stops, err := readStops(*stopsPath, stdin)
	if err != nil {
		return err
	}

	ctx := context.Background()
	var rec *obs.Recorder
	if *metrics != "" {
		rec = obs.NewRecorder(fmt.Sprintf("replay-seed-%d", *seed), nil, nil)
		ctx = obs.WithRecorder(ctx, rec)
	}
	if sel, ok := pol.(skirental.Selector); ok {
		skirental.RecordSelection(ctx, sel)
	}
	// Unit idling rate: OnlineCents/OfflineCents come out in idle-second
	// equivalents, matching the pre-simulator replay output exactly.
	costs := costmodel.CostRatio{IdlingCentsPerSec: 1, RestartCents: pol.B()}
	res, err := simulator.RunContext(ctx, simulator.Config{
		Costs:  costs,
		Policy: skirental.Instrument(ctx, pol),
	}, stops, stats.NewRNG(*seed))
	if err != nil {
		return err
	}
	if *verbose {
		for i, out := range res.Stops {
			action := "drove off while idling"
			if out.EngineOff {
				action = fmt.Sprintf("engine off at %.1f s", out.Threshold)
			}
			fmt.Fprintf(stdout, "stop %3d: %7.1f s  %-24s cost %7.2f\n", i+1, out.Length, action, out.OnlineCents)
		}
	}
	// Echo the seed so the report alone reproduces a randomized replay.
	fmt.Fprintf(stdout, "seed %d\n", *seed)
	fmt.Fprintf(stdout, "stops %d, restarts %d\n", len(stops), res.Restarts)
	fmt.Fprintf(stdout, "online cost %.1f, offline %.1f, CR %.4f\n",
		res.OnlineCents, res.OfflineCents, res.OnlineCents/res.OfflineCents)
	if rec != nil {
		return writeSnapshot(rec.Snapshot(), *metrics, stdout)
	}
	return nil
}

// writeSnapshot dumps a snapshot as JSON to path ("-" = the command's
// stdout).
func writeSnapshot(snap obs.Snapshot, path string, stdout io.Writer) error {
	if path == "-" {
		return snap.WriteJSON(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// statsCmd renders a metrics snapshot (as written by replay -metrics or
// idlereduce -metrics) as text tables and bar charts. BENCH_*.json perf
// captures share the command: they are detected by their schema stamp
// and rendered as a benchmark table instead.
func statsCmd(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	path := fs.String("metrics", "", "metrics snapshot or BENCH capture JSON (default stdin)")
	width := fs.Int("w", 40, "bar width for counter charts")
	if err := fs.Parse(args); err != nil {
		return err
	}
	data, err := fileOrStdin(*path, stdin)
	if err != nil {
		return err
	}
	if perf.IsCapture(data) {
		return renderBenchFile(data, stdout)
	}
	snap, err := obs.ReadSnapshot(bytes.NewReader(data))
	if err != nil {
		return err
	}
	if snap.RunID != "" {
		fmt.Fprintf(stdout, "run: %s\n\n", snap.RunID)
	}
	if len(snap.Counters) > 0 {
		chart := textplot.BarChart{Title: "counters", Width: *width}
		for _, c := range snap.Counters {
			chart.Add(c.Name, float64(c.Value))
		}
		fmt.Fprintln(stdout, chart.Render())
	}
	if len(snap.Gauges) > 0 {
		rows := [][]string{{"gauge", "value"}}
		for _, g := range snap.Gauges {
			rows = append(rows, []string{g.Name, fmt.Sprintf("%.4g", g.Value)})
		}
		fmt.Fprintln(stdout, textplot.Table(rows))
	}
	if len(snap.Histograms) > 0 {
		rows := [][]string{{"histogram", "count", "mean", "p50", "p90", "p99", "min", "max"}}
		for _, h := range snap.Histograms {
			rows = append(rows, []string{
				h.Name,
				fmt.Sprintf("%d", h.Count),
				fmt.Sprintf("%.4g", h.Mean),
				fmt.Sprintf("%.4g", h.P50),
				fmt.Sprintf("%.4g", h.P90),
				fmt.Sprintf("%.4g", h.P99),
				fmt.Sprintf("%.4g", h.Min),
				fmt.Sprintf("%.4g", h.Max),
			})
		}
		fmt.Fprint(stdout, textplot.Table(rows))
	}
	return nil
}

// enginesCmd lists the registered policy engines: the specs accepted
// by `idled serve -policy`, `idled loadtest -policy`, and the wire
// "policy" request field.
func enginesCmd(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("engines", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: idlectl engines")
	}
	rows := [][]string{{"engine", "spec", "default", "params", "description"}}
	for _, name := range policy.Names() {
		e, ok := policy.Get(name)
		if !ok {
			continue
		}
		def := ""
		if name == policy.DefaultEngine {
			def = "yes"
		}
		params := "-"
		if pe, ok := e.(policy.Parametric); ok {
			var specs []string
			for _, p := range pe.Params() {
				specs = append(specs, fmt.Sprintf("%s=%g in [%g,%g]", p.Name, p.Default, p.Min, p.Max))
			}
			if len(specs) > 0 {
				params = strings.Join(specs, " ")
			}
		}
		rows = append(rows, []string{name, policy.Spec(e), def, params, e.Doc()})
	}
	fmt.Fprint(stdout, textplot.Table(rows))
	return nil
}

// auditCmd hosts the audit-log subcommands; verify replays an idled
// decision audit log through the pure policy engine, proving each
// record's (choice, threshold) reproduces bit-for-bit from its inputs.
// A truncated final line (crash shape) is skipped with a note; any
// mismatch or mid-file corruption is a non-zero exit.
func auditCmd(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) < 1 || args[0] != "verify" {
		return fmt.Errorf("usage: idlectl audit verify [-log audit.jsonl]")
	}
	fs := flag.NewFlagSet("audit verify", flag.ContinueOnError)
	logPath := fs.String("log", "", "decision audit log written by idled serve -audit-log (default stdin)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	var r io.Reader = stdin
	if *logPath != "" && *logPath != "-" {
		f, err := os.Open(*logPath)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rep, err := server.VerifyAudit(r)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, rep.String())
	if !rep.OK() {
		return fmt.Errorf("audit verification failed: %d mismatched, %d corrupt of %d records",
			rep.Mismatched, rep.Corrupt, rep.Records)
	}
	return nil
}

// synth generates a stop trace from a mechanistic drive-cycle preset,
// one stop per line — handy for demos and for exercising tune/replay
// without real data.
func synth(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("synth", flag.ContinueOnError)
	plan := fs.String("plan", "urban", "drive-cycle preset: urban, suburb or downtown")
	days := fs.Int("days", 7, "number of days to generate")
	seed := fs.Uint64("seed", 1, "generator seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var dp drivecycle.DayPlan
	switch *plan {
	case "urban":
		dp = drivecycle.UrbanCommute()
	case "suburb":
		dp = drivecycle.SuburbanCommute()
	case "downtown":
		dp = drivecycle.DowntownGridlock()
	default:
		return fmt.Errorf("unknown plan %q (want urban, suburb or downtown)", *plan)
	}
	if *days < 1 {
		return fmt.Errorf("days must be positive")
	}
	rng := stats.NewRNG(*seed)
	fmt.Fprintf(stdout, "# %s plan, %d days, seed %d\n", *plan, *days, *seed)
	for d := 0; d < *days; d++ {
		stopsSeq, err := dp.Day(rng)
		if err != nil {
			return err
		}
		for _, y := range stopsSeq {
			fmt.Fprintf(stdout, "%.2f\n", y)
		}
	}
	return nil
}
