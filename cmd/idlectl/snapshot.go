package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"idlereduce/internal/server"
)

// snapshotCmd hosts the state-plane subcommands: save captures a
// running daemon's checksummed snapshot (GET /v1/snapshot) to a file,
// load restores one into a running daemon (POST /v1/snapshot). Both
// sides validate the envelope locally — a corrupt file is rejected
// before any bytes reach the daemon, and a corrupt download is
// rejected before it is written.
func snapshotCmd(args []string, stdout io.Writer) error {
	if len(args) < 1 || (args[0] != "save" && args[0] != "load") {
		return fmt.Errorf("usage: idlectl snapshot <save|load> [-target URL] [flags]")
	}
	sub, rest := args[0], args[1:]
	fs := flag.NewFlagSet("snapshot "+sub, flag.ContinueOnError)
	target := fs.String("target", "http://127.0.0.1:8080", "base URL of a running idled")
	var path *string
	if sub == "save" {
		path = fs.String("o", "state.json", `snapshot output file ("-" = stdout)`)
	} else {
		path = fs.String("i", "state.json", "snapshot file to restore (idlectl snapshot save output)")
	}
	timeout := fs.Duration("timeout", time.Minute, "HTTP request timeout")
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	client := &http.Client{Timeout: *timeout}
	if sub == "save" {
		return snapshotSave(client, *target, *path, stdout)
	}
	return snapshotLoad(client, *target, *path, stdout)
}

// snapshotSave downloads, validates, and writes one snapshot.
func snapshotSave(client *http.Client, target, path string, stdout io.Writer) error {
	resp, err := client.Get(target + "/v1/snapshot")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("snapshot save: %s returned %d: %.200s", target, resp.StatusCode, data)
	}
	plane, err := server.DecodeSnapshot(data)
	if err != nil {
		return fmt.Errorf("snapshot save: downloaded snapshot does not verify: %w", err)
	}
	if path == "-" {
		if _, err := stdout.Write(data); err != nil {
			return err
		}
		return nil
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "snapshot: %d areas -> %s\n", len(plane.Areas), path)
	return nil
}

// snapshotLoad validates a snapshot file and restores it into the
// target daemon.
func snapshotLoad(client *http.Client, target, path string, stdout io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	plane, err := server.DecodeSnapshot(data)
	if err != nil {
		return fmt.Errorf("snapshot load: %s does not verify: %w", path, err)
	}
	resp, err := client.Post(target+"/v1/snapshot", "application/json", bytes.NewReader(data))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("snapshot load: %s returned %d: %.200s", target, resp.StatusCode, body)
	}
	var out server.SnapshotRestoreResponse
	if err := json.Unmarshal(body, &out); err != nil {
		return fmt.Errorf("snapshot load: decode reply: %w", err)
	}
	fmt.Fprintf(stdout, "snapshot: restored %d of %d areas into %s\n", out.Restored, len(plane.Areas), target)
	return nil
}
