package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeTrace(t *testing.T, lines string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "trace.txt")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sampleTrace = `# commute
8
12
35
6
90
15
240
11
`

func TestTuneShowReplayPipeline(t *testing.T) {
	trace := writeTrace(t, sampleTrace)
	policyPath := filepath.Join(t.TempDir(), "policy.json")

	var out bytes.Buffer
	if err := run([]string{"tune", "-b", "28", "-stops", trace, "-o", policyPath}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "proposed selection") {
		t.Errorf("tune output:\n%s", out.String())
	}

	out.Reset()
	if err := run([]string{"show", "-policy", policyPath}, nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"policy: Proposed", "worst-case CR", "stop    30 s"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("show missing %q:\n%s", frag, out.String())
		}
	}

	out.Reset()
	if err := run([]string{"replay", "-policy", policyPath, "-stops", trace, "-v"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{"stops 8", "CR"} {
		if !strings.Contains(out.String(), frag) {
			t.Errorf("replay missing %q:\n%s", frag, out.String())
		}
	}
}

func TestTuneRobust(t *testing.T) {
	trace := writeTrace(t, sampleTrace)
	var out bytes.Buffer
	if err := run([]string{"tune", "-b", "28", "-robust", "-stops", trace}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "robust selection") {
		t.Errorf("output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), `"kind"`) {
		t.Errorf("spec JSON missing:\n%s", out.String())
	}
}

func TestTuneFromStdin(t *testing.T) {
	var out bytes.Buffer
	stdin := strings.NewReader("5\n10\n200\n")
	if err := run([]string{"tune", "-b", "28"}, stdin, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `"kind"`) {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestReadStopsErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":  "abc\n",
		"negative": "-5\n",
		"empty":    "# only a comment\n",
	}
	for name, content := range cases {
		trace := writeTrace(t, content)
		var out bytes.Buffer
		if err := run([]string{"tune", "-stops", trace}, nil, &out); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestRunCommandErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, nil, &out); err == nil {
		t.Error("want usage error")
	}
	if err := run([]string{"bogus"}, nil, &out); err == nil {
		t.Error("want unknown-command error")
	}
	if err := run([]string{"show"}, nil, &out); err == nil {
		t.Error("show without -policy should fail")
	}
	if err := run([]string{"replay", "-policy", "/does/not/exist"}, nil, &out); err == nil {
		t.Error("replay with missing policy should fail")
	}
}

func TestShowRejectsBrokenPolicyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.json")
	if err := os.WriteFile(path, []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := run([]string{"show", "-policy", path}, nil, &out); err == nil {
		t.Error("want decode error")
	}
}

func TestReplayDeterministicPolicyExactCosts(t *testing.T) {
	// A DET policy spec replayed over a known trace: verify the summary
	// numbers exactly (online 10+56+5 = 71, offline 43).
	policyPath := filepath.Join(t.TempDir(), "det.json")
	if err := os.WriteFile(policyPath, []byte(`{"kind":"det","b":28}`), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := writeTrace(t, "10\n30\n5\n")
	var out bytes.Buffer
	if err := run([]string{"replay", "-policy", policyPath, "-stops", trace}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "online cost 71.0, offline 43.0") {
		t.Errorf("costs wrong:\n%s", out.String())
	}
}

func TestSynthGeneratesParseableTrace(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"synth", "-plan", "suburb", "-days", "2", "-seed", "5"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	// The synthesized trace must feed straight back into tune.
	var tuned bytes.Buffer
	if err := run([]string{"tune", "-b", "28"}, strings.NewReader(out.String()), &tuned); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tuned.String(), `"kind"`) {
		t.Errorf("tune on synth output failed:\n%s", tuned.String())
	}
}

func TestSynthErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"synth", "-plan", "moon"}, nil, &out); err == nil {
		t.Error("want unknown-plan error")
	}
	if err := run([]string{"synth", "-days", "0"}, nil, &out); err == nil {
		t.Error("want days error")
	}
}
