package main

import (
	"bytes"
	"flag"
	"io"
	"os"
	"strconv"
	"strings"
	"testing"
)

var updateFrontierGolden = flag.Bool("update-frontier-golden", false, "re-record testdata/frontier_golden.txt")

// TestFrontierGolden pins the default sweep as a committed artifact:
// the Fig-4-style table `idlectl frontier` prints with no flags must
// reproduce byte-for-byte. Re-record deliberately with
// `go test ./cmd/idlectl -run TestFrontierGolden -update-frontier-golden`.
func TestFrontierGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"frontier"}, strings.NewReader(""), &buf); err != nil {
		t.Fatal(err)
	}
	const path = "testdata/frontier_golden.txt"
	if *updateFrontierGolden {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (re-record with -update-frontier-golden): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("frontier output diverged from golden artifact:\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}

// parseFrontierTable pulls the numeric cells out of the rendered
// table: one row per lambda, robust-cr first, then the predictor CRs.
func parseFrontierTable(t *testing.T, out string) [][]float64 {
	t.Helper()
	var rows [][]float64
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		if _, err := strconv.ParseFloat(fields[0], 64); err != nil {
			continue // header, rule, or banner line
		}
		var row []float64
		for _, f := range fields[1:] {
			v, err := strconv.ParseFloat(f, 64)
			if err != nil {
				t.Fatalf("bad cell %q in %q", f, line)
			}
			row = append(row, v)
		}
		rows = append(rows, row)
	}
	return rows
}

// TestFrontierMonotone is the acceptance property on the rendered
// artifact itself: down the table, the robustness bound never
// improves and the oracle's realized CR never degrades — the
// consistency-robustness trade is monotone in the trust parameter.
func TestFrontierMonotone(t *testing.T) {
	for _, engine := range []string{"softml", "distadvice"} {
		var buf bytes.Buffer
		if err := run([]string{"frontier", "-engine", engine, "-n", "800"}, strings.NewReader(""), &buf); err != nil {
			t.Fatal(err)
		}
		rows := parseFrontierTable(t, buf.String())
		if len(rows) != 5 {
			t.Fatalf("%s: parsed %d lambda rows, want 5:\n%s", engine, len(rows), buf.String())
		}
		for i := 1; i < len(rows); i++ {
			if rows[i][0] < rows[i-1][0] {
				t.Errorf("%s: robustness improved down the table: %v after %v", engine, rows[i][0], rows[i-1][0])
			}
			if rows[i][1] > rows[i-1][1] {
				t.Errorf("%s: oracle CR degraded down the table: %v after %v", engine, rows[i][1], rows[i-1][1])
			}
		}
		last := rows[len(rows)-1]
		if engine == "softml" && last[1] != 1 {
			t.Errorf("softml oracle at lambda=1 CR %v, want exactly 1", last[1])
		}
	}
}

// TestFrontierFlags: JSON mode emits the raw sweep; bad flags fail
// cleanly.
func TestFrontierFlags(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"frontier", "-n", "50", "-lambdas", "0,1", "-json"}, strings.NewReader(""), &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"engine": "softml"`, `"robustness_cr"`, `"predictor": "oracle"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON output missing %s", want)
		}
	}
	if err := run([]string{"frontier", "-engine", "psychic"}, strings.NewReader(""), io.Discard); err == nil {
		t.Error("want error for unknown engine")
	}
	if err := run([]string{"frontier", "-lambdas", "0,weird"}, strings.NewReader(""), io.Discard); err == nil {
		t.Error("want error for malformed lambda grid")
	}
	if err := run([]string{"frontier", "-n", "0"}, strings.NewReader(""), io.Discard); err == nil {
		t.Error("want error for empty trace")
	}
}
