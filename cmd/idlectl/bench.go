package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strconv"

	"idlereduce/internal/perf"
	"idlereduce/internal/textplot"
)

const benchUsage = `usage: idlectl bench <run|compare> [flags]

  bench run     [-out BENCH_NNNN.json] [-runs N] [-scale F] [-seq N] [-filter s]
  bench compare -base BENCH_A.json -head BENCH_B.json
                [-max-regress 10%] [-max-alloc-regress 5%] [-json]`

// benchCmd hosts the perf-trajectory subcommands: run captures the
// committed benchmark suites into a versioned BENCH_*.json, compare
// diffs two captures with noise-aware tolerances and exits non-zero on
// any regression (the CI gate; see docs/BENCHMARKS.md).
func benchCmd(args []string, stdout io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf("%s", benchUsage)
	}
	switch args[0] {
	case "run":
		return benchRun(args[1:], stdout)
	case "compare":
		return benchCompare(args[1:], stdout)
	default:
		return fmt.Errorf("unknown bench subcommand %q\n%s", args[0], benchUsage)
	}
}

// seqPattern extracts the trajectory position from a capture filename
// (BENCH_0006.json -> 6).
var seqPattern = regexp.MustCompile(`^BENCH_0*([0-9]+)\.json$`)

func seqFromPath(path string) int {
	m := seqPattern.FindStringSubmatch(filepath.Base(path))
	if m == nil {
		return 0
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		return 0
	}
	return n
}

func benchRun(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bench run", flag.ContinueOnError)
	outPath := fs.String("out", "", "write the capture here (BENCH_NNNN.json; default stdout)")
	runs := fs.Int("runs", 3, "measured runs per benchmark (reported numbers are the min across runs)")
	scale := fs.Float64("scale", 1, "iteration multiplier (<1 = faster, noisier capture)")
	seq := fs.Int("seq", 0, "trajectory sequence number (0 = derive from the -out filename)")
	filter := fs.String("filter", "", "run only benchmarks whose name contains this substring")
	quiet := fs.Bool("q", false, "suppress per-benchmark progress lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v\n%s", fs.Args(), benchUsage)
	}
	opts := perf.Options{Runs: *runs, Scale: *scale, Seq: *seq, Filter: *filter}
	if opts.Seq == 0 && *outPath != "" {
		opts.Seq = seqFromPath(*outPath)
	}
	if !*quiet {
		opts.Logf = func(format string, a ...any) { fmt.Fprintf(stdout, format+"\n", a...) }
	}
	f, err := perf.Capture(opts)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, benchTable(f))
	if *outPath == "" {
		return f.Write(stdout)
	}
	if err := f.WriteFile(*outPath); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %s (seq %d, %d benchmarks)\n", *outPath, f.Seq, len(f.Results))
	return nil
}

func benchCompare(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("bench compare", flag.ContinueOnError)
	basePath := fs.String("base", "", "baseline capture (the committed BENCH_NNNN.json)")
	headPath := fs.String("head", "", "candidate capture to gate")
	maxRegress := fs.String("max-regress", "10%", "max allowed time regression (ns/op, p99)")
	maxAlloc := fs.String("max-alloc-regress", "5%", "max allowed allocation regression (allocs/op, B/op)")
	jsonOut := fs.Bool("json", false, "emit the machine-readable comparison instead of the table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v\n%s", fs.Args(), benchUsage)
	}
	if *basePath == "" || *headPath == "" {
		return fmt.Errorf("bench compare: -base and -head are both required\n%s", benchUsage)
	}
	var opts perf.CompareOptions
	var err error
	if opts.MaxRegress, err = perf.ParseTolerance(*maxRegress); err != nil {
		return fmt.Errorf("-max-regress: %w", err)
	}
	if opts.MaxAllocRegress, err = perf.ParseTolerance(*maxAlloc); err != nil {
		return fmt.Errorf("-max-alloc-regress: %w", err)
	}
	base, err := perf.ReadFile(*basePath)
	if err != nil {
		return err
	}
	head, err := perf.ReadFile(*headPath)
	if err != nil {
		return err
	}
	cmp, err := perf.Compare(base, head, opts)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(cmp); err != nil {
			return err
		}
	} else {
		fmt.Fprint(stdout, cmp.String())
	}
	if !cmp.OK() {
		return fmt.Errorf("bench compare: %d regression(s) against %s", cmp.Regressions, *basePath)
	}
	return nil
}

// benchTable renders a capture as the stats-style text table.
func benchTable(f perf.File) string {
	rows := [][]string{{"benchmark", "class", "ops", "ns/op", "p50", "p95", "p99", "allocs/op", "B/op"}}
	for _, r := range f.Results {
		rows = append(rows, []string{
			r.Name, r.Class,
			fmt.Sprintf("%d", r.Ops),
			fmt.Sprintf("%.0f", r.NsPerOp),
			fmt.Sprintf("%.0f", r.P50Ns),
			fmt.Sprintf("%.0f", r.P95Ns),
			fmt.Sprintf("%.0f", r.P99Ns),
			fmt.Sprintf("%.1f", r.AllocsPerOp),
			fmt.Sprintf("%.0f", r.BytesPerOp),
		})
	}
	out := fmt.Sprintf("capture seq %d: %s %s/%s, %d cpu\n",
		f.Seq, f.Machine.GoVersion, f.Machine.GOOS, f.Machine.GOARCH, f.Machine.NumCPU)
	return out + textplot.Table(rows)
}

// renderBenchFile is the stats-command view of a BENCH capture: the
// same table plus the machine stamp, so `idlectl stats -metrics
// BENCH_0006.json` works on trajectory files as well as obs snapshots.
func renderBenchFile(data []byte, stdout io.Writer) error {
	f, err := perf.ReadBytes(data)
	if err != nil {
		return err
	}
	_, err = io.WriteString(stdout, benchTable(f))
	return err
}

// fileOrStdin reads a whole -metrics style argument: a path, "-" or
// empty for stdin.
func fileOrStdin(path string, stdin io.Reader) ([]byte, error) {
	if path != "" && path != "-" {
		return os.ReadFile(path)
	}
	if stdin == nil {
		return nil, fmt.Errorf("no input: pass a file or pipe to stdin")
	}
	return io.ReadAll(stdin)
}
