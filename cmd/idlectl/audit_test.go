package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"idlereduce/internal/obs"
	"idlereduce/internal/server"
)

// writeAuditLog boots a real idled with the audit log on, serves a few
// decisions, drains (which flushes the log) and returns the JSONL.
func writeAuditLog(t *testing.T, path string, decisions int) {
	t.Helper()
	f, err := obs.OpenRotatingFile(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	areas, err := server.DefaultAreaStates(28)
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(server.Config{Addr: "127.0.0.1:0", Areas: areas, AuditLog: f})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx) }()
	for i := 0; i < decisions; i++ {
		body := fmt.Sprintf(`{"vehicle_id":"v-%d","area":"chicago","seed":%d}`, i, i+1)
		resp, err := http.Post("http://"+addr+"/v1/decide", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("decide %d: status %d", i, resp.StatusCode)
		}
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not drain")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAuditVerifyCommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "audit.jsonl")
	writeAuditLog(t, path, 5)

	var out bytes.Buffer
	if err := run([]string{"audit", "verify", "-log", path}, nil, &out); err != nil {
		t.Fatalf("verify: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "5") {
		t.Errorf("report does not mention the record count:\n%s", out.String())
	}

	// A truncated final line is the crash shape: still a success.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cut := filepath.Join(dir, "cut.jsonl")
	if err := os.WriteFile(cut, data[:len(data)-20], 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"audit", "verify", "-log", cut}, nil, &out); err != nil {
		t.Fatalf("truncated tail should verify: %v\n%s", err, out.String())
	}

	// A tampered byte must make the command fail.
	bad := bytes.Replace(data, []byte(`"choice"`), []byte(`"chAice"`), 1)
	badPath := filepath.Join(dir, "bad.jsonl")
	if err := os.WriteFile(badPath, bad, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"audit", "verify", "-log", badPath}, nil, &out); err == nil {
		t.Fatalf("tampered log verified clean:\n%s", out.String())
	}
}

func TestAuditVerifyUsage(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"audit"}, nil, &out); err == nil {
		t.Fatal("bare audit command succeeded")
	}
	if err := run([]string{"audit", "bogus"}, nil, &out); err == nil {
		t.Fatal("unknown audit subcommand succeeded")
	}
	if err := run([]string{"audit", "verify", "-log", "/does/not/exist.jsonl"}, nil, &out); err == nil {
		t.Fatal("missing log file succeeded")
	}
}
