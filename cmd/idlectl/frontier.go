package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"strconv"
	"strings"

	"idlereduce/internal/costmodel"
	"idlereduce/internal/simulator"
	"idlereduce/internal/skirental"
	"idlereduce/internal/textplot"
)

// frontierCmd sweeps the consistency-robustness frontier of the
// learning-augmented engines: for each trust level lambda and each
// predictor model, the realized mean competitive ratio on a shared
// trace, next to the closed-form worst-case guarantee of the
// thresholds that trust level can reach. The table is the Fig-4-style
// artifact: reading down the robustness column shows what trusting
// predictions costs in the worst case; reading across the oracle row
// shows what it buys when they are good.
func frontierCmd(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("frontier", flag.ContinueOnError)
	b := fs.Float64("b", 28, "break-even interval B in seconds")
	mu := fs.Float64("mu", 4, "constrained statistic mu_B- the fallback serves")
	q := fs.Float64("q", 0.25, "constrained statistic q_B+ the fallback serves")
	engine := fs.String("engine", simulator.FrontierSoftML, "advised engine family: softml or distadvice")
	lambdasArg := fs.String("lambdas", "", "comma-separated trust grid (default 0,0.25,0.5,0.75,1)")
	stopsPath := fs.String("stops", "", "evaluation stop trace file (default: a synthetic seeded trace)")
	n := fs.Int("n", 2000, "synthetic trace length when no -stops is given")
	seed := fs.Uint64("seed", 20140601, "root seed for the trace and every sweep cell")
	jsonOut := fs.Bool("json", false, "emit the raw sweep as JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("usage: idlectl frontier [-b B] [-mu M] [-q Q] [-engine softml|distadvice] [-lambdas 0,0.5,1] [-stops f] [-n N] [-seed N] [-json]")
	}

	var lambdas []float64
	if *lambdasArg != "" {
		for _, part := range strings.Split(*lambdasArg, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil {
				return fmt.Errorf("bad lambda %q: %v", part, err)
			}
			lambdas = append(lambdas, v)
		}
	}

	var stops []float64
	if *stopsPath != "" {
		var err error
		if stops, err = readStops(*stopsPath, stdin); err != nil {
			return err
		}
	} else {
		if *n <= 0 {
			return fmt.Errorf("-n must be positive")
		}
		stops = syntheticFrontierTrace(*n, *b, *seed)
	}

	f, err := simulator.SweepFrontier(simulator.FrontierConfig{
		Costs:   costmodel.CostRatio{IdlingCentsPerSec: 1, RestartCents: *b},
		Stats:   skirental.Stats{MuBMinus: *mu, QBPlus: *q},
		Engine:  *engine,
		Lambdas: lambdas,
		Stops:   stops,
		Seed:    *seed,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(f)
	}
	fmt.Fprintf(stdout, "frontier engine=%s B=%g mu=%g q=%g stops=%d seed=%d\n",
		f.Engine, f.B, f.Mu, f.Q, f.Stops, f.Seed)
	fmt.Fprint(stdout, frontierTable(f))
	return nil
}

// syntheticFrontierTrace builds the default evaluation trace: stop
// lengths uniform on (0, 4B], straddling the break-even interval so
// both forecast directions occur.
func syntheticFrontierTrace(n int, b float64, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, 0x46524e54))
	stops := make([]float64, n)
	for i := range stops {
		stops[i] = 1 + rng.Float64()*(4*b-1)
	}
	return stops
}

// frontierTable renders the sweep lambda-major: one row per trust
// level, the shared robustness bound, then each predictor's realized
// mean CR.
func frontierTable(f *simulator.Frontier) string {
	var preds []string
	seen := map[string]bool{}
	for _, p := range f.Points {
		if !seen[p.Predictor] {
			seen[p.Predictor] = true
			preds = append(preds, p.Predictor)
		}
	}
	header := []string{"lambda", "robust-cr"}
	for _, p := range preds {
		header = append(header, "cr:"+p)
	}
	rows := [][]string{header}
	for i, lambda := range f.Lambdas {
		row := []string{
			strconv.FormatFloat(lambda, 'g', -1, 64),
			fmt.Sprintf("%.4f", f.Points[i].RobustnessCR),
		}
		for _, p := range preds {
			pt := f.Row(p)[i]
			row = append(row, fmt.Sprintf("%.4f", pt.MeanCR))
		}
		rows = append(rows, row)
	}
	return textplot.Table(rows)
}
