package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"idlereduce/internal/perf"
)

func TestSeqFromPath(t *testing.T) {
	cases := []struct {
		path string
		want int
	}{
		{"BENCH_0006.json", 6},
		{"some/dir/BENCH_0042.json", 42},
		{"BENCH_123.json", 123},
		{"BENCH_head.json", 0},
		{"snapshot.json", 0},
		{"BENCH_0006.json.bak", 0},
	}
	for _, tc := range cases {
		if got := seqFromPath(tc.path); got != tc.want {
			t.Errorf("seqFromPath(%q) = %d, want %d", tc.path, got, tc.want)
		}
	}
}

func TestBenchUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no subcommand", []string{"bench"}, "usage: idlectl bench"},
		{"unknown subcommand", []string{"bench", "bogus"}, "unknown bench subcommand"},
		{"compare missing files", []string{"bench", "compare"}, "both required"},
		{"compare bad tolerance", []string{"bench", "compare", "-base", "a", "-head", "b", "-max-regress", "nope"}, "-max-regress"},
		{"run positional", []string{"bench", "run", "extra"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(tc.args, nil, &out)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) err = %v, want containing %q", tc.args, err, tc.want)
			}
		})
	}
}

// TestBenchRunCompareStats drives the full trajectory loop at a tiny
// scale: capture -> self-compare (clean) -> doctored baseline compare
// (regression, non-zero exit) -> stats rendering of the capture file.
func TestBenchRunCompareStats(t *testing.T) {
	if testing.Short() {
		t.Skip("captures benchmarks")
	}
	dir := t.TempDir()
	out := filepath.Join(dir, "BENCH_0042.json")
	var buf bytes.Buffer
	args := []string{"bench", "run", "-runs", "1", "-scale", "0.02",
		"-filter", "cache", "-q", "-out", out}
	if err := run(args, nil, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "wrote "+out) {
		t.Errorf("run output missing write confirmation:\n%s", buf.String())
	}
	f, err := perf.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if f.Seq != 42 {
		t.Errorf("seq %d, want 42 (derived from the filename)", f.Seq)
	}
	if len(f.Results) == 0 {
		t.Fatal("no results captured")
	}

	// A capture compared against itself must gate clean.
	buf.Reset()
	if err := run([]string{"bench", "compare", "-base", out, "-head", out}, nil, &buf); err != nil {
		t.Fatalf("self-compare failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "ok") {
		t.Errorf("self-compare output:\n%s", buf.String())
	}

	// Doctor a faster baseline: the head is now a >10% regression and
	// compare must exit non-zero (the CI gate contract).
	slow := f
	slow.Results = append([]perf.Result(nil), f.Results...)
	for i := range slow.Results {
		r := slow.Results[i]
		r.NsPerOp /= 2
		r.P50Ns /= 2
		r.P95Ns /= 2
		r.P99Ns /= 2
		r.MaxNs /= 2
		slow.Results[i] = r
	}
	base := filepath.Join(dir, "BENCH_0041.json")
	if err := slow.WriteFile(base); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	err = run([]string{"bench", "compare", "-base", base, "-head", out}, nil, &buf)
	if err == nil || !strings.Contains(err.Error(), "regression") {
		t.Fatalf("doctored compare err = %v, want regression failure\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "FAIL") {
		t.Errorf("regression table missing FAIL:\n%s", buf.String())
	}

	// The stats command recognizes a BENCH capture and renders the
	// benchmark table instead of the obs snapshot view.
	buf.Reset()
	if err := run([]string{"stats", "-metrics", out}, nil, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"benchmark", "ns/op", "capture seq 42"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("stats rendering missing %q:\n%s", want, buf.String())
		}
	}
}
