package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idlereduce/internal/obs"
)

// TestReplayMetricsSnapshot drives the full acceptance flow: synthesize
// a trace, tune a constrained policy on it, replay with -metrics -, and
// check the printed registry snapshot carries the stop count, engine-off
// count, online/offline cents histograms with quantiles, and the
// selected vertex strategy label.
func TestReplayMetricsSnapshot(t *testing.T) {
	var synthOut bytes.Buffer
	if err := run([]string{"synth", "-plan", "downtown", "-days", "3", "-seed", "9"}, nil, &synthOut); err != nil {
		t.Fatal(err)
	}
	trace := writeTrace(t, synthOut.String())
	policyPath := filepath.Join(t.TempDir(), "policy.json")
	var out bytes.Buffer
	if err := run([]string{"tune", "-b", "28", "-stops", trace, "-o", policyPath}, nil, &out); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if err := run([]string{"replay", "-policy", policyPath, "-stops", trace, "-metrics", "-"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, frag := range []string{
		"sim_stops_total",
		"sim_engine_off_total",
		"sim_online_cents",
		"sim_offline_cents",
		`"p50"`,
		`"p99"`,
		`skirental_selection_total{choice=`,
		"skirental_threshold_sec",
		"seed 1",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("replay -metrics - output missing %q", frag)
		}
	}

	// The snapshot after the human-readable report must parse, and its
	// counters must agree with the replay summary.
	idx := strings.Index(text, "{")
	if idx < 0 {
		t.Fatal("no JSON in output")
	}
	snap, err := obs.ReadSnapshot(strings.NewReader(text[idx:]))
	if err != nil {
		t.Fatalf("snapshot does not parse: %v\n%s", err, text)
	}
	counters := map[string]int64{}
	for _, c := range snap.Counters {
		counters[c.Name] = c.Value
	}
	if counters["sim_stops_total"] == 0 {
		t.Error("zero stops counted")
	}
	if counters["sim_engine_off_total"] == 0 {
		t.Error("zero engine-off events on a downtown trace")
	}
	var foundOnline bool
	for _, h := range snap.Histograms {
		if h.Name == "sim_online_cents" {
			foundOnline = true
			if h.Count != uint64(counters["sim_stops_total"]) {
				t.Errorf("online histogram count %d != stop count %d", h.Count, counters["sim_stops_total"])
			}
			if h.P99 < h.P50 {
				t.Error("online cents quantiles out of order")
			}
		}
	}
	if !foundOnline {
		t.Error("sim_online_cents histogram missing")
	}
}

// TestReplayEchoesSeed pins the reproducibility satellite: the replay
// report alone names the RNG seed it used.
func TestReplayEchoesSeed(t *testing.T) {
	policyPath := filepath.Join(t.TempDir(), "nrand.json")
	if err := os.WriteFile(policyPath, []byte(`{"kind":"n-rand","b":28}`), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := writeTrace(t, "10\n30\n5\n")
	var out bytes.Buffer
	if err := run([]string{"replay", "-policy", policyPath, "-stops", trace, "-seed", "7"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "seed 7\n") {
		t.Errorf("seed not echoed:\n%s", out.String())
	}
	// Same seed, same randomized outcome: the report reproduces itself.
	var again bytes.Buffer
	if err := run([]string{"replay", "-policy", policyPath, "-stops", trace, "-seed", "7"}, nil, &again); err != nil {
		t.Fatal(err)
	}
	if out.String() != again.String() {
		t.Error("replay with echoed seed is not reproducible")
	}
}

// TestStatsRendersSnapshot round-trips replay -metrics file into the
// stats subcommand's text rendering.
func TestStatsRendersSnapshot(t *testing.T) {
	policyPath := filepath.Join(t.TempDir(), "det.json")
	if err := os.WriteFile(policyPath, []byte(`{"kind":"det","b":28}`), 0o644); err != nil {
		t.Fatal(err)
	}
	trace := writeTrace(t, "10\n30\n5\n200\n")
	snapPath := filepath.Join(t.TempDir(), "snap.json")
	var out bytes.Buffer
	if err := run([]string{"replay", "-policy", policyPath, "-stops", trace, "-metrics", snapPath}, nil, &out); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if err := run([]string{"stats", "-metrics", snapPath}, nil, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, frag := range []string{"counters", "sim_stops_total", "histogram", "p99", "sim_online_cents", "run: replay-seed-1"} {
		if !strings.Contains(text, frag) {
			t.Errorf("stats rendering missing %q:\n%s", frag, text)
		}
	}

	// And from stdin.
	f, err := os.Open(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	out.Reset()
	if err := run([]string{"stats"}, f, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "sim_stops_total") {
		t.Error("stats from stdin failed")
	}
}

func TestStatsErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"stats", "-metrics", "/does/not/exist"}, nil, &out); err == nil {
		t.Error("want error for missing snapshot file")
	}
	if err := run([]string{"stats"}, strings.NewReader("{broken"), &out); err == nil {
		t.Error("want error for broken snapshot JSON")
	}
}

// TestProfileFlags checks the global pprof/trace hooks produce files.
func TestProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	tr := filepath.Join(dir, "trace.out")
	var out bytes.Buffer
	args := []string{"-cpuprofile", cpu, "-memprofile", mem, "-trace", tr, "synth", "-plan", "urban", "-days", "2"}
	if err := run(args, nil, &out); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{cpu, mem, tr} {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}

// TestUsageNamesEverySubcommand pins the satellite fix: the usage error
// must name synth (and the new stats) alongside the original commands.
func TestUsageNamesEverySubcommand(t *testing.T) {
	err := run(nil, nil, &bytes.Buffer{})
	if err == nil {
		t.Fatal("want usage error")
	}
	for _, cmd := range []string{"tune", "show", "replay", "synth", "stats"} {
		if !strings.Contains(err.Error(), cmd) {
			t.Errorf("usage %q missing %q", err.Error(), cmd)
		}
	}
}
