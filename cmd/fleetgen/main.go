// Command fleetgen generates the synthetic NREL-substitute fleet and
// writes it to stdout or a file.
//
// Usage:
//
//	fleetgen [-seed N] [-vehicles N] [-workers N] [-format csv|json] [-o FILE]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"idlereduce/internal/experiments"
	"idlereduce/internal/fleet"
	"idlereduce/internal/parallel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fleetgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fleetgen", flag.ContinueOnError)
	seed := fs.Uint64("seed", 0, "generator seed (0 = default)")
	vehicles := fs.Int("vehicles", 0, "vehicles per area (0 = paper counts 217/312/653)")
	workers := fs.Int("workers", 0, "parallel worker pool size (0 = GOMAXPROCS); output is identical for every value")
	format := fs.String("format", "csv", "output format: csv or json")
	outPath := fs.String("o", "", "output file (default stdout)")
	configPath := fs.String("config", "", "JSON file of custom area configs (default: the three paper areas)")
	template := fs.Bool("template", false, "print the default area configs as an editable JSON template and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	// Validate flag combinations before any generation work: malformed
	// values must fail as usage errors, not as a silent fallback
	// (negative -vehicles used to mean "paper counts") or an error
	// after minutes of fleet generation (-format was checked last).
	if *vehicles < 0 {
		fs.Usage()
		return fmt.Errorf("-vehicles %d must be non-negative", *vehicles)
	}
	if *workers < 0 {
		fs.Usage()
		return fmt.Errorf("-workers %d must be non-negative", *workers)
	}
	if *format != "csv" && *format != "json" {
		fs.Usage()
		return fmt.Errorf("unknown format %q (want csv or json)", *format)
	}
	if *template && *configPath != "" {
		fs.Usage()
		return fmt.Errorf("-template and -config are mutually exclusive")
	}
	parallel.SetDefaultWorkers(*workers)

	if *template {
		return fleet.WriteAreaConfigs(stdout, fleet.DefaultAreas())
	}

	var f *fleet.Fleet
	if *configPath != "" {
		cf, err := os.Open(*configPath)
		if err != nil {
			return err
		}
		areas, err := fleet.ReadAreaConfigs(cf)
		cf.Close()
		if err != nil {
			return err
		}
		if *vehicles > 0 {
			for i := range areas {
				areas[i].Vehicles = *vehicles
			}
		}
		opts := experiments.Options{Seed: *seed}
		f, err = fleet.GenerateFleetWorkers(context.Background(), opts.ResolvedSeed(), *workers, areas...)
		if err != nil {
			return err
		}
	} else {
		opts := experiments.Options{Seed: *seed, FleetVehicles: *vehicles, Workers: *workers}
		var err error
		f, err = opts.BuildFleet()
		if err != nil {
			return err
		}
	}

	w := stdout
	if *outPath != "" {
		file, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer file.Close()
		w = file
	}
	if *format == "json" {
		return f.WriteJSON(w)
	}
	return f.WriteCSV(w)
}
