package main

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"idlereduce/internal/fleet"
	"idlereduce/internal/parallel"
)

func TestRunCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-vehicles", "3", "-seed", "9"}, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := fleet.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Vehicles) != 9 { // 3 per area x 3 areas
		t.Errorf("vehicles %d", len(f.Vehicles))
	}
}

func TestRunJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-vehicles", "2", "-format", "json"}, &buf); err != nil {
		t.Fatal(err)
	}
	f, err := fleet.ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Vehicles) != 6 {
		t.Errorf("vehicles %d", len(f.Vehicles))
	}
}

func TestRunWorkersDeterministic(t *testing.T) {
	defer parallel.SetDefaultWorkers(0)
	var serial, wide bytes.Buffer
	if err := run([]string{"-vehicles", "8", "-seed", "3", "-workers", "1"}, &serial); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-vehicles", "8", "-seed", "3", "-workers", "8"}, &wide); err != nil {
		t.Fatal(err)
	}
	if serial.String() != wide.String() {
		t.Error("fleet CSV differs between -workers 1 and -workers 8")
	}
	if serial.Len() == 0 {
		t.Error("empty fleet CSV")
	}
}

func TestRunBadFormat(t *testing.T) {
	var buf bytes.Buffer
	err := run([]string{"-format", "xml"}, &buf)
	if err == nil || !strings.Contains(err.Error(), "unknown format") {
		t.Errorf("got %v", err)
	}
	if buf.Len() != 0 {
		t.Error("-format is validated before generation; no output expected")
	}
}

func TestRunExtraArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"positional"}, &buf); err == nil {
		t.Error("want error for positional args")
	}
}

// TestRunMalformedFlagCombos pins the error-path contract: every
// malformed combination is a usage error before any generation work,
// with nothing written to stdout.
func TestRunMalformedFlagCombos(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative vehicles", []string{"-vehicles", "-3"}, "-vehicles -3 must be non-negative"},
		{"negative workers", []string{"-workers", "-2"}, "-workers -2 must be non-negative"},
		{"bad format", []string{"-format", "yaml"}, "unknown format"},
		{"template with config", []string{"-template", "-config", "x.json"}, "mutually exclusive"},
		{"positional", []string{"-vehicles", "2", "stray"}, "unexpected arguments"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("run(%v) panicked: %v", tc.args, r)
				}
			}()
			var buf bytes.Buffer
			err := run(tc.args, &buf)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) err = %v, want containing %q", tc.args, err, tc.want)
			}
			if buf.Len() != 0 {
				t.Errorf("run(%v) wrote %d bytes to stdout on a usage error", tc.args, buf.Len())
			}
		})
	}
}

func TestRunOutputFile(t *testing.T) {
	path := t.TempDir() + "/fleet.csv"
	var buf bytes.Buffer
	if err := run([]string{"-vehicles", "1", "-o", path}, &buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Error("stdout written despite -o")
	}
}

func TestRunTemplateAndConfig(t *testing.T) {
	// Get the template, shrink it, and feed it back as a custom config.
	var tmpl bytes.Buffer
	if err := run([]string{"-template"}, &tmpl); err != nil {
		t.Fatal(err)
	}
	areas, err := fleet.ReadAreaConfigs(&tmpl)
	if err != nil {
		t.Fatal(err)
	}
	if len(areas) != 3 {
		t.Fatalf("template areas %d", len(areas))
	}
	areas = areas[:1]
	areas[0].Name = "Testville"
	areas[0].Vehicles = 4
	dir := t.TempDir()
	cfgPath := dir + "/areas.json"
	f, err := os.Create(cfgPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.WriteAreaConfigs(f, areas); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var out bytes.Buffer
	if err := run([]string{"-config", cfgPath}, &out); err != nil {
		t.Fatal(err)
	}
	got, err := fleet.ReadCSV(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Vehicles) != 4 || got.Vehicles[0].Area != "Testville" {
		t.Errorf("custom fleet wrong: %d vehicles, area %q", len(got.Vehicles), got.Vehicles[0].Area)
	}
}

func TestRunConfigErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-config", "/does/not/exist.json"}, &out); err == nil {
		t.Error("want error for missing config")
	}
	dir := t.TempDir()
	bad := dir + "/bad.json"
	if err := os.WriteFile(bad, []byte(`[{"Name":"x"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-config", bad}, &out); err == nil {
		t.Error("want validation error for bad config")
	}
}
