package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDefaultsConventional(t *testing.T) {
	var buf bytes.Buffer
	if err := run(nil, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"idling cost", "restart cost", "breakdown", "48 seconds"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestRunSSV(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-sss"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "starter 0.00s") {
		t.Errorf("SSV should zero starter wear:\n%s", buf.String())
	}
}

func TestRunDerivedIdleRate(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-idle-rate", "0", "-displacement", "2.0"}, &buf); err != nil {
		t.Fatal(err)
	}
	// Eq. 45 for 2.0 L: 1.2476 L/h = 0.3466 cc/s.
	if !strings.Contains(buf.String(), "0.347 cc/s") {
		t.Errorf("derived rate missing:\n%s", buf.String())
	}
}

func TestRunInvalidVehicle(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-fuel", "0"}, &buf); err == nil {
		t.Error("want error for zero fuel price")
	}
}

func TestRunExtraArgs(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"positional"}, &buf); err == nil {
		t.Error("want error for positional args")
	}
}
