// Command breakeven computes the Appendix C break-even interval for a
// custom vehicle.
//
// Usage:
//
//	breakeven [-displacement L] [-idle-rate CC_PER_SEC] [-fuel USD_PER_GAL]
//	          [-sss] [-starter-usd N] [-starter-labor-usd N] [-starter-starts N]
//	          [-battery-usd N] [-battery-years N] [-stops-per-day N]
//	          [-nox-usd-kg N]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"idlereduce/internal/costmodel"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "breakeven:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("breakeven", flag.ContinueOnError)
	displacement := fs.Float64("displacement", 2.5, "engine displacement (L), used when -idle-rate is 0")
	idleRate := fs.Float64("idle-rate", 0.279, "measured idling fuel rate (cc/s); 0 derives from displacement")
	fuel := fs.Float64("fuel", 3.5, "fuel price (USD/gallon)")
	sss := fs.Bool("sss", false, "vehicle has a stop-start system (strengthened starter)")
	starterUSD := fs.Float64("starter-usd", 55, "starter replacement cost (USD)")
	starterLabor := fs.Float64("starter-labor-usd", 115, "starter replacement labor (USD)")
	starterStarts := fs.Float64("starter-starts", 34000, "starter lifetime (starts)")
	batteryUSD := fs.Float64("battery-usd", 230, "battery replacement cost (USD)")
	batteryYears := fs.Float64("battery-years", 4, "battery warranty (years)")
	stopsPerDay := fs.Float64("stops-per-day", costmodel.DefaultStopsPerDay, "stops per day for battery amortization")
	nox := fs.Float64("nox-usd-kg", 4.3, "NOx tax (USD/kg); 0 disables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}

	v := costmodel.Vehicle{
		DisplacementL:         *displacement,
		IdleRateCCPerSec:      *idleRate,
		FuelPriceUSDPerGallon: *fuel,
		HasSSS:                *sss,
		StarterReplacementUSD: *starterUSD,
		StarterLaborUSD:       *starterLabor,
		StarterLifetimeStarts: *starterStarts,
		BatteryCostUSD:        *batteryUSD,
		BatteryWarrantyYears:  *batteryYears,
		StopsPerDay:           *stopsPerDay,
		NOxTaxUSDPerKg:        *nox,
	}
	bd, err := v.BreakEven()
	if err != nil {
		return err
	}
	costs, err := v.Costs()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "idling cost:   %.4f cents/s (%.3f cc/s at $%.2f/gal)\n",
		v.IdlingCostCentsPerSec(), v.EffectiveIdleRateCCPerSec(), *fuel)
	fmt.Fprintf(w, "restart cost:  %.4f cents\n", costs.RestartCents)
	fmt.Fprintf(w, "breakdown:     %s\n", bd)
	fmt.Fprintf(w, "\nRule of thumb: turn the engine off whenever the stop will exceed %.0f seconds.\n", bd.TotalSec())
	return nil
}
