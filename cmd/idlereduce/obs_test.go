package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idlereduce/internal/obs"
)

// TestRunMetricsSnapshot runs a cheap experiment with -metrics and
// checks the snapshot carries the per-experiment wall-clock and
// allocation gauges.
func TestRunMetricsSnapshot(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := run([]string{"-grid", "8", "-metrics", path, "fig1"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := obs.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if snap.RunID != "idlereduce-fig1" {
		t.Errorf("run id %q", snap.RunID)
	}
	gauges := map[string]float64{}
	for _, g := range snap.Gauges {
		gauges[g.Name] = g.Value
	}
	if _, ok := gauges[`experiment_wall_ms{name="fig1"}`]; !ok {
		t.Errorf("wall-clock gauge missing; gauges: %v", gauges)
	}
	if v := gauges[`experiment_alloc_bytes{name="fig1"}`]; v <= 0 {
		t.Errorf("alloc gauge %v", v)
	}
}

// TestRunMetricsIncludesFleetThroughput checks a fleet-backed experiment
// publishes the generator's counters.
func TestRunMetricsIncludesFleetThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet experiment in -short mode")
	}
	path := filepath.Join(t.TempDir(), "metrics.json")
	if err := run([]string{"-vehicles", "5", "-metrics", path, "table1"}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := obs.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, c := range snap.Counters {
		names[c.Name] = true
	}
	for _, g := range snap.Gauges {
		names[g.Name] = true
	}
	for _, want := range []string{`fleet_stops_total{area="Chicago"}`, "fleet_gen_stops_per_sec"} {
		if !names[want] {
			t.Errorf("snapshot missing %q", want)
		}
	}
}

// TestRunMetricsPrometheusFormat checks the prom exposition path.
func TestRunMetricsPrometheusFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "metrics.prom")
	if err := run([]string{"-grid", "8", "-metrics", path, "-metrics-format", "prom", "fig1"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "# TYPE experiment_wall_ms gauge") {
		t.Errorf("prometheus exposition missing:\n%s", data)
	}
	if err := run([]string{"-metrics-format", "yaml", "fig1"}); err == nil {
		t.Error("want error for unknown metrics format")
	}
}

// TestRunObslogWritesSpans checks the structured log hook.
func TestRunObslogWritesSpans(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "obs.jsonl")
	if err := run([]string{"-grid", "8", "-obslog", logPath, "fig1"}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"name":"fig1"`) {
		t.Errorf("obslog missing experiment event:\n%s", data)
	}
}

// TestRunProfileFlags checks the pprof hooks produce non-empty files.
func TestRunProfileFlags(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	tr := filepath.Join(dir, "trace.out")
	if err := run([]string{"-grid", "8", "-cpuprofile", cpu, "-memprofile", mem, "-trace", tr, "fig1"}); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{cpu, mem, tr} {
		fi, err := os.Stat(f)
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}
