package main

import (
	"context"
	"os"
	"strings"
	"testing"
)

func TestRunRequiresExperiment(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("want error without an experiment")
	}
	if err := run([]string{"fig1", "fig2"}); err == nil {
		t.Error("want error with two experiments")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"fig99"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("got %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus", "fig1"}); err == nil {
		t.Error("want flag parse error")
	}
}

// TestRunMalformedFlagCombos pins the error-path contract: malformed
// flag combinations are usage errors with a non-zero exit, never a
// panic from deep inside an experiment (negative -grid used to reach
// makeslice in Fig1Context).
func TestRunMalformedFlagCombos(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"negative grid", []string{"-grid", "-5", "fig1"}, "-grid -5 must be non-negative"},
		{"negative points", []string{"-points", "-2", "fig5"}, "-points -2 must be non-negative"},
		{"negative vehicles", []string{"-vehicles", "-3", "fig4"}, "-vehicles -3 must be non-negative"},
		{"negative workers", []string{"-workers", "-1", "fig1"}, "-workers -1 must be non-negative"},
		{"zero b", []string{"-b", "0", "fig2"}, "must be a positive break-even"},
		{"negative b", []string{"-b", "-28", "verify"}, "must be a positive break-even"},
		{"nan b", []string{"-b", "NaN", "fig2"}, "must be a positive break-even"},
		{"bad metrics format", []string{"-metrics", "-", "-metrics-format", "xml", "fig1"}, "unknown -metrics-format"},
		{"format without metrics", []string{"-metrics-format", "prom", "fig1"}, "-metrics-format requires -metrics"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("run(%v) panicked: %v", tc.args, r)
				}
			}()
			err := run(tc.args)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) err = %v, want containing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestDispatchFastExperiments(t *testing.T) {
	// Run the cheap experiments end to end (stdout goes to the test log).
	opts := smallCLI()
	for _, name := range []string{"fig1", "fig2", "breakeven"} {
		if err := dispatch(context.Background(), name, opts, 28, "", ""); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDispatchFleetExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet experiments in -short mode")
	}
	opts := smallCLI()
	for _, name := range []string{"fig3", "fig4", "table1", "fig5", "fig6", "bsweep", "drivecycle", "verify", "savings", "multislope"} {
		if err := dispatch(context.Background(), name, opts, 28, "", ""); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDispatchOutdir(t *testing.T) {
	dir := t.TempDir()
	if err := dispatch(context.Background(), "breakeven", smallCLI(), 28, dir, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/breakeven.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Appendix C") {
		t.Errorf("report content wrong:\n%s", data)
	}
}

func TestDispatchExternalTrace(t *testing.T) {
	// Generate a tiny fleet, save as CSV, and run fig4 on the file.
	f, err := smallCLI().BuildFleet()
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/trace.csv"
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteCSV(out); err != nil {
		t.Fatal(err)
	}
	out.Close()
	if err := dispatch(context.Background(), "fig4", smallCLI(), 28, "", path); err != nil {
		t.Fatalf("fig4 on external trace: %v", err)
	}
	if err := dispatch(context.Background(), "fig4", smallCLI(), 28, "", "/missing.csv"); err == nil {
		t.Error("want error for missing trace")
	}
}

func TestExperimentNameCaseInsensitive(t *testing.T) {
	if err := run([]string{"-grid", "8", "FIG1"}); err != nil {
		t.Errorf("uppercase name rejected: %v", err)
	}
}
