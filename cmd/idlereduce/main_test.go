package main

import (
	"context"
	"os"
	"strings"
	"testing"
)

func TestRunRequiresExperiment(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("want error without an experiment")
	}
	if err := run([]string{"fig1", "fig2"}); err == nil {
		t.Error("want error with two experiments")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"fig99"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Errorf("got %v", err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-bogus", "fig1"}); err == nil {
		t.Error("want flag parse error")
	}
}

func TestDispatchFastExperiments(t *testing.T) {
	// Run the cheap experiments end to end (stdout goes to the test log).
	opts := smallCLI()
	for _, name := range []string{"fig1", "fig2", "breakeven"} {
		if err := dispatch(context.Background(), name, opts, 28, "", ""); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDispatchFleetExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet experiments in -short mode")
	}
	opts := smallCLI()
	for _, name := range []string{"fig3", "fig4", "table1", "fig5", "fig6", "bsweep", "drivecycle", "verify", "savings", "multislope"} {
		if err := dispatch(context.Background(), name, opts, 28, "", ""); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestDispatchOutdir(t *testing.T) {
	dir := t.TempDir()
	if err := dispatch(context.Background(), "breakeven", smallCLI(), 28, dir, ""); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/breakeven.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Appendix C") {
		t.Errorf("report content wrong:\n%s", data)
	}
}

func TestDispatchExternalTrace(t *testing.T) {
	// Generate a tiny fleet, save as CSV, and run fig4 on the file.
	f, err := smallCLI().BuildFleet()
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/trace.csv"
	out, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WriteCSV(out); err != nil {
		t.Fatal(err)
	}
	out.Close()
	if err := dispatch(context.Background(), "fig4", smallCLI(), 28, "", path); err != nil {
		t.Fatalf("fig4 on external trace: %v", err)
	}
	if err := dispatch(context.Background(), "fig4", smallCLI(), 28, "", "/missing.csv"); err == nil {
		t.Error("want error for missing trace")
	}
}

func TestExperimentNameCaseInsensitive(t *testing.T) {
	if err := run([]string{"-grid", "8", "FIG1"}); err != nil {
		t.Errorf("uppercase name rejected: %v", err)
	}
}
