package main

import (
	"os"
	"path/filepath"
	"testing"

	"idlereduce/internal/parallel"
)

// TestWorkersFlagDeterministic runs the same experiments through the full
// CLI with -workers 1 and -workers 8 and requires byte-identical report
// files: the user-facing statement of the engine's determinism contract.
func TestWorkersFlagDeterministic(t *testing.T) {
	defer parallel.SetDefaultWorkers(0)
	for _, exp := range []string{"fig1", "fig4", "bsweep"} {
		dirSerial := t.TempDir()
		dirWide := t.TempDir()
		args := []string{"-seed", "5", "-vehicles", "6", "-grid", "10", "-points", "6"}
		if err := run(append(args, "-workers", "1", "-outdir", dirSerial, exp)); err != nil {
			t.Fatalf("%s workers=1: %v", exp, err)
		}
		if err := run(append(args, "-workers", "8", "-outdir", dirWide, exp)); err != nil {
			t.Fatalf("%s workers=8: %v", exp, err)
		}
		a, err := os.ReadFile(filepath.Join(dirSerial, exp+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirWide, exp+".txt"))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s: report differs between -workers 1 and -workers 8", exp)
		}
	}
}
