// Command idlereduce regenerates the paper's tables and figures.
//
// Usage:
//
//	idlereduce [flags] <experiment>
//
// Experiments: fig1, fig2, fig3, fig4, fig5, fig6, table1, breakeven,
// ablations, drivecycle, bsweep, savings, multislope, verify, all.
//
// Flags:
//
//	-seed N       generator seed (default 20140601)
//	-vehicles N   vehicles per area (0 = the paper's 217/312/653)
//	-grid N       Figure 1 grid resolution (default 60)
//	-points N     Figures 5-6 sweep points (default 30)
//	-b SECONDS    break-even interval for fig1/fig2/drivecycle/verify (default 28)
//	-workers N    parallel worker pool size (0 = GOMAXPROCS); results are
//	              identical for every value (see docs/PARALLELISM.md)
//	-outdir DIR   write each report to DIR/<experiment>.txt instead of stdout
//
// Observability flags (see docs/OBSERVABILITY.md):
//
//	-metrics PATH         write a metrics registry snapshot after the run
//	                      ("-" = stdout); includes per-experiment wall-clock
//	                      and allocation gauges plus fleet throughput
//	-metrics-format FMT   snapshot format: json (default) or prom
//	-obslog PATH          append the structured span/event log (JSON lines)
//	-cpuprofile PATH      write a pprof CPU profile
//	-memprofile PATH      write a pprof heap profile on exit
//	-trace PATH           write a runtime execution trace
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"

	"idlereduce/internal/experiments"
	"idlereduce/internal/fleet"
	"idlereduce/internal/obs"
	"idlereduce/internal/parallel"
)

// experimentNames lists the experiments `all` runs, in order.
var experimentNames = []string{
	"breakeven", "table1", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
	"ablations", "drivecycle", "bsweep", "savings", "multislope", "verify",
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "idlereduce:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("idlereduce", flag.ContinueOnError)
	seed := fs.Uint64("seed", 0, "generator seed (0 = default)")
	vehicles := fs.Int("vehicles", 0, "vehicles per area (0 = paper counts)")
	grid := fs.Int("grid", 0, "figure 1 grid resolution")
	points := fs.Int("points", 0, "figures 5-6 sweep points")
	b := fs.Float64("b", 28, "break-even interval (s) for fig1/fig2/drivecycle/verify")
	workers := fs.Int("workers", 0, "parallel worker pool size (0 = GOMAXPROCS); output is identical for every value")
	outdir := fs.String("outdir", "", "write reports to this directory instead of stdout")
	trace := fs.String("trace-csv", "", "run fleet experiments on this CSV trace (fleetgen format) instead of synthetic data")
	metrics := fs.String("metrics", "", `write a metrics registry snapshot here after the run ("-" = stdout)`)
	metricsFormat := fs.String("metrics-format", "json", "metrics snapshot format: json or prom")
	obslog := fs.String("obslog", "", "append the structured span/event log (JSON lines) to this file")
	var prof obs.Profiles
	prof.AddFlags(fs)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: idlereduce [flags] <fig1|fig2|fig3|fig4|fig5|fig6|table1|breakeven|ablations|drivecycle|bsweep|savings|multislope|verify|all>")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		fs.Usage()
		return fmt.Errorf("exactly one experiment required")
	}
	// Validate flag combinations up front: a malformed value must be a
	// usage error, never a downstream panic (negative -grid used to
	// reach makeslice) or a partial run.
	for _, f := range []struct {
		name string
		v    int
	}{
		{"-vehicles", *vehicles}, {"-grid", *grid}, {"-points", *points}, {"-workers", *workers},
	} {
		if f.v < 0 {
			fs.Usage()
			return fmt.Errorf("%s %d must be non-negative", f.name, f.v)
		}
	}
	if *b <= 0 || math.IsNaN(*b) || math.IsInf(*b, 0) {
		fs.Usage()
		return fmt.Errorf("-b %v must be a positive break-even interval", *b)
	}
	if *metricsFormat != "json" && *metricsFormat != "prom" {
		return fmt.Errorf("unknown -metrics-format %q (want json or prom)", *metricsFormat)
	}
	if *metrics == "" && *metricsFormat != "json" {
		return fmt.Errorf("-metrics-format requires -metrics")
	}
	opts := experiments.Options{
		Seed:          *seed,
		FleetVehicles: *vehicles,
		GridN:         *grid,
		SweepPoints:   *points,
		Workers:       *workers,
	}
	parallel.SetDefaultWorkers(*workers)
	name := strings.ToLower(fs.Arg(0))

	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	ctx := context.Background()
	var rec *obs.Recorder
	var logF *os.File
	if *metrics != "" || *obslog != "" {
		var logw io.Writer
		if *obslog != "" {
			logF, err = os.OpenFile(*obslog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				stopProf()
				return err
			}
			logw = logF
		}
		rec = obs.NewRecorder("idlereduce-"+name, nil, logw)
		ctx = obs.WithRecorder(ctx, rec)
	}

	runErr := dispatch(ctx, name, opts, *b, *outdir, *trace)
	if perr := stopProf(); perr != nil && runErr == nil {
		runErr = perr
	}
	if logF != nil {
		if cerr := logF.Close(); cerr != nil && runErr == nil {
			runErr = cerr
		}
	}
	if rec != nil && *metrics != "" {
		if merr := emitMetrics(rec.Snapshot(), *metrics, *metricsFormat); merr != nil && runErr == nil {
			runErr = merr
		}
	}
	return runErr
}

// emitMetrics writes the snapshot to path ("-" = stdout) in the chosen
// format.
func emitMetrics(snap obs.Snapshot, path, format string) error {
	write := snap.WriteJSON
	if format == "prom" {
		write = snap.WritePrometheus
	}
	if path == "-" {
		return write(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// dispatch runs one experiment (or all) and emits its report to stdout or
// outdir. Each experiment runs under experiments.Timed, so an attached
// recorder collects per-experiment wall-clock and allocation gauges.
func dispatch(ctx context.Context, name string, opts experiments.Options, b float64, outdir, trace string) error {
	var fl *fleet.Fleet
	ensureFleet := func() error {
		if fl != nil {
			return nil
		}
		if trace != "" {
			// External data: every fleet experiment runs on the user's
			// own traces.
			file, err := os.Open(trace)
			if err != nil {
				return err
			}
			defer file.Close()
			f, err := fleet.ReadCSV(file)
			if err != nil {
				return err
			}
			fl = f
			return nil
		}
		f, err := opts.BuildFleetContext(ctx)
		if err != nil {
			return err
		}
		fl = f
		return nil
	}

	names := []string{name}
	if name == "all" {
		names = experimentNames
	}
	for _, n := range names {
		var out string
		err := experiments.Timed(ctx, n, func() error {
			var rerr error
			out, rerr = report(ctx, n, opts, b, ensureFleet, &fl)
			return rerr
		})
		if err != nil {
			return fmt.Errorf("%s: %w", n, err)
		}
		if err := emit(n, out, outdir); err != nil {
			return err
		}
		if name == "all" && outdir == "" {
			fmt.Println()
		}
	}
	return nil
}

// report produces one experiment's text. The context carries the
// observability recorder (if any) into the parallel fan-outs, so pool
// metrics land in the snapshot.
func report(ctx context.Context, name string, opts experiments.Options, b float64, ensureFleet func() error, fl **fleet.Fleet) (string, error) {
	needFleet := map[string]bool{"fig3": true, "fig4": true, "table1": true, "ablations": true, "savings": true, "multislope": true}
	if needFleet[name] {
		if err := ensureFleet(); err != nil {
			return "", err
		}
	}
	switch name {
	case "fig1":
		_, out, err := experiments.Fig1Context(ctx, opts, b)
		return out, err
	case "fig2":
		_, out, err := experiments.Fig2Context(ctx, opts, b)
		return out, err
	case "fig3":
		_, out, err := experiments.Fig3(opts, *fl)
		return out, err
	case "fig4":
		_, out, err := experiments.Fig4Context(ctx, opts, *fl)
		return out, err
	case "fig5":
		_, out, err := experiments.Fig5Context(ctx, opts)
		return out, err
	case "fig6":
		_, out, err := experiments.Fig6Context(ctx, opts)
		return out, err
	case "table1":
		_, out, err := experiments.Table1(opts, *fl)
		return out, err
	case "bsweep":
		_, out, err := experiments.BSweepContext(ctx, opts)
		return out, err
	case "drivecycle":
		_, out, err := experiments.DriveCycle(opts, b)
		return out, err
	case "verify":
		_, out, err := experiments.Verify(opts, b)
		return out, err
	case "ablations":
		_, out, err := experiments.Ablations(opts, *fl)
		return out, err
	case "multislope":
		_, out, err := experiments.Multislope(opts, *fl)
		return out, err
	case "savings":
		_, out, err := experiments.FleetSavings(opts, *fl)
		return out, err
	case "breakeven":
		_, out, err := experiments.AppendixC(opts)
		return out, err
	default:
		return "", fmt.Errorf("unknown experiment %q", name)
	}
}

// emit prints the report or writes it under outdir.
func emit(name, out, outdir string) error {
	if outdir == "" {
		fmt.Print(out)
		return nil
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(outdir, name+".txt")
	if err := os.WriteFile(path, []byte(out), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
