package main

import "idlereduce/internal/experiments"

// smallCLI returns options sized for unit tests.
func smallCLI() experiments.Options {
	return experiments.Options{Seed: 5, FleetVehicles: 10, GridN: 10, SweepPoints: 6}
}
