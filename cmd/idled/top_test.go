package main

import (
	"bytes"
	"context"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idlereduce/internal/ledger"
	"idlereduce/internal/obs"
	"idlereduce/internal/server"
)

// updateTopGolden re-blesses testdata/top_golden.txt from the current
// renderer output.
var updateTopGolden = flag.Bool("update-top-golden", false, "rewrite the idled top golden frame")

func topTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	areas, err := server.DefaultAreaStates(28)
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(server.Config{Areas: areas})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestTopOnce renders a single dashboard frame against a live handler:
// even with an empty history window the frame must carry the header
// and every series row.
func TestTopOnce(t *testing.T) {
	ts := topTestServer(t)
	var out bytes.Buffer
	if err := run(context.Background(),
		[]string{"top", "-once", "-target", ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if strings.Contains(text, "\x1b[") {
		t.Errorf("-once frame contains ANSI control codes:\n%s", text)
	}
	for _, want := range []string{"idled top", ts.URL, "window", "requests", "decisions", "inflight"} {
		if !strings.Contains(text, want) {
			t.Errorf("frame missing %q:\n%s", want, text)
		}
	}
}

// TestTopFramesUsesANSIClear checks live mode emits the clear sequence
// and stops after -frames.
func TestTopFramesUsesANSIClear(t *testing.T) {
	ts := topTestServer(t)
	var out bytes.Buffer
	if err := run(context.Background(),
		[]string{"top", "-frames", "2", "-interval", "10ms", "-target", ts.URL}, &out); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "\x1b[H\x1b[2J"); got != 2 {
		t.Errorf("clear sequences %d, want 2", got)
	}
}

func TestTopBadTarget(t *testing.T) {
	var out bytes.Buffer
	err := run(context.Background(),
		[]string{"top", "-once", "-target", "http://127.0.0.1:1"}, &out)
	if err == nil {
		t.Fatal("top against a dead target succeeded")
	}
}

// TestRenderTop feeds a synthetic history window and checks the pure
// renderer lays out sparklines, rates and the cache hit ratio.
func TestRenderTop(t *testing.T) {
	health := server.HealthResponse{
		Status: "ok", UptimeMS: 65_000, Areas: 3,
		Version: "(devel)", GoVersion: "go1.24.0",
	}
	hist := obs.History{
		IntervalMS: 1000, Window: 8, Samples: 4,
		TimesUnixMS: []int64{1000, 2000, 3000, 4000},
		Series: []obs.HistorySeries{
			{Name: "requests", Kind: "rate", Points: []float64{0, 10, 20, 40}, Last: 40, RatePerSec: 23.3},
			{Name: "decisions", Kind: "rate", Points: []float64{0, 10, 20, 40}, Last: 40, RatePerSec: 23.3},
			{Name: "inflight", Kind: "gauge", Points: []float64{1, 2, 3, 2}, Last: 2},
			{Name: "cache_hits", Kind: "rate", Points: []float64{0, 9, 18, 36}, Last: 36, RatePerSec: 21},
			{Name: "cache_misses", Kind: "rate", Points: []float64{0, 1, 2, 4}, Last: 4, RatePerSec: 7},
			{Name: "decide_p50_ms", Kind: "gauge", Points: []float64{0.05, 0.05, 0.06, 0.05}, Last: 0.05},
			{Name: "decide_p99_ms", Kind: "gauge", Points: []float64{0.2, 0.3, 0.2, 0.4}, Last: 0.4},
			{Name: "observations", Kind: "rate", Points: []float64{0, 5, 10, 20}, Last: 20, RatePerSec: 6.7},
			{Name: "retune_alarms", Kind: "rate", Points: []float64{0, 0, 1, 1}, Last: 1, RatePerSec: 0.3},
			{Name: "retunes", Kind: "rate", Points: []float64{0, 0, 1, 1}, Last: 1, RatePerSec: 0.3},
			{Name: "predicted_decisions", Kind: "rate", Points: []float64{0, 2, 4, 8}, Last: 8, RatePerSec: 2.7},
			{Name: "predict_consistency", Kind: "rate", Points: []float64{0, 3, 6, 9}, Last: 9, RatePerSec: 3},
			{Name: "predict_regret", Kind: "rate", Points: []float64{0, 1, 2, 3}, Last: 3, RatePerSec: 1},
			{Name: "predict_err_mean_s", Kind: "gauge", Points: []float64{0, 4, 5, 6}, Last: 6},
			{Name: "predict_bias_s", Kind: "gauge", Points: []float64{0, -2, -3, -4}, Last: -4},
		},
	}
	cr := server.CRResponse{
		Rows: []ledger.Row{
			{Area: "atlanta", Engine: "det", Settled: 1, CR: 1.0, Band: -1, Bound: 2.0,
				MeanOnline: 5, MeanOpt: 5},
			{Area: "chicago", Engine: "det", Settled: 40, CR: 1.31, Band: 0.12, Bound: 2.0,
				MeanOnline: 14.6, MeanOpt: 11.1},
			{Area: "chicago", Engine: "nrand", Settled: 12, CR: 2.41, Band: 0.2, Bound: 1.8,
				Breaches: 2, MeanOnline: 26.2, MeanOpt: 10.9},
		},
		Pending:  3,
		Counters: ledger.Counters{Issued: 56, Settled: 53, Orphaned: 1, Expired: 0, Breaches: 2},
	}
	text := renderTop("http://x:1", health, hist, cr, 8)
	for _, want := range []string{
		"up 1m5s", "3 areas", "(devel) go1.24.0",
		"requests", "40.0/s", "avg 23.3/s",
		"cache hit", "75.0%",
		"p50 0.050", "p99 0.400",
		"observes", "alarms", "retunes", "advised",
		"predict", "75.0% consistent",
		"mean |err| 6.0s", "bias -4.0s",
		"█", // the ramp's peak block
		"competitive ratio — 3 pending, 53 settled, 1 orphaned, 0 expired",
		"1.310", "0.120", // chicago/det CR and band
		"--",     // atlanta's not-yet-estimable band renders as --
		"BREACH", // chicago/nrand tripped the detector
		"ok",     // chicago/det within its bound
	} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
}

// TestRenderTopGolden pins the full frame layout — header, sparkline
// rows, derived panels and the competitive-ratio table — against a
// committed golden file. Re-bless deliberate layout changes with
//
//	go test ./cmd/idled -run TestRenderTopGolden -update-top-golden
func TestRenderTopGolden(t *testing.T) {
	health := server.HealthResponse{
		Status: "ok", UptimeMS: 65_000, Areas: 2,
		Version: "v-test", GoVersion: "go-test",
	}
	hist := obs.History{
		IntervalMS: 1000, Window: 8, Samples: 4,
		TimesUnixMS: []int64{1000, 2000, 3000, 4000},
		Series: []obs.HistorySeries{
			{Name: "requests", Kind: "rate", Points: []float64{0, 10, 20, 40}, Last: 40, RatePerSec: 23.3},
			{Name: "decisions", Kind: "rate", Points: []float64{0, 10, 20, 40}, Last: 40, RatePerSec: 23.3},
			{Name: "observations", Kind: "rate", Points: []float64{0, 5, 10, 20}, Last: 20, RatePerSec: 6.7},
			{Name: "inflight", Kind: "gauge", Points: []float64{1, 2, 3, 2}, Last: 2},
			{Name: "cache_hits", Kind: "rate", Points: []float64{0, 9, 18, 36}, Last: 36, RatePerSec: 21},
			{Name: "cache_misses", Kind: "rate", Points: []float64{0, 1, 2, 4}, Last: 4, RatePerSec: 7},
			{Name: "decide_p50_ms", Kind: "gauge", Points: []float64{0.05, 0.05, 0.06, 0.05}, Last: 0.05},
			{Name: "decide_p99_ms", Kind: "gauge", Points: []float64{0.2, 0.3, 0.2, 0.4}, Last: 0.4},
		},
	}
	cr := server.CRResponse{
		Rows: []ledger.Row{
			{Area: "atlanta", Engine: "det", Settled: 1, CR: 1.0, Band: -1, Bound: 2.0,
				MeanOnline: 5, MeanOpt: 5},
			{Area: "chicago", Engine: "det", Settled: 40, CR: 1.31, Band: 0.12, Bound: 2.0,
				MeanOnline: 14.6, MeanOpt: 11.1},
			{Area: "chicago", Engine: "nrand", Settled: 12, CR: 2.41, Band: 0.2, Bound: 1.8,
				Breaches: 2, MeanOnline: 26.2, MeanOpt: 10.9},
		},
		Pending:  3,
		Counters: ledger.Counters{Issued: 56, Settled: 53, Orphaned: 1, Breaches: 2},
	}
	got := renderTop("http://x:1", health, hist, cr, 8)

	goldenPath := filepath.Join("testdata", "top_golden.txt")
	if *updateTopGolden {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("blessed %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (re-bless with -update-top-golden): %v", err)
	}
	if got != string(want) {
		t.Errorf("frame differs from golden (re-bless with -update-top-golden if deliberate)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
