package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"idlereduce/internal/server"
)

func TestRunUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"no command", nil, "usage:"},
		{"unknown command", []string{"bogus"}, "unknown command"},
		{"serve positional", []string{"serve", "extra"}, "unexpected arguments"},
		{"serve bad b", []string{"serve", "-b", "-3"}, "must be positive"},
		{"serve missing areas file", []string{"serve", "-areas", "/does/not/exist.json"}, "no such file"},
		{"loadtest positional", []string{"loadtest", "extra"}, "unexpected arguments"},
		{"loadtest bad clients", []string{"loadtest", "-clients", "-1"}, "must all be positive"},
		{"loadtest bad batch", []string{"loadtest", "-batch", "0"}, "must all be positive"},
		{"loadtest bad profile kind", []string{"loadtest", "-profile", "goroutine"}, "want cpu or heap"},
		{"loadtest orphan profile-out", []string{"loadtest", "-profile-out", "x.pprof"}, "requires -profile"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			err := run(context.Background(), tc.args, &out)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("run(%v) err = %v, want containing %q", tc.args, err, tc.want)
			}
		})
	}
}

func TestAreasTemplateRoundTrips(t *testing.T) {
	var out bytes.Buffer
	if err := run(context.Background(), []string{"areas-template"}, &out); err != nil {
		t.Fatal(err)
	}
	areas, err := server.ReadAreaStates(&out)
	if err != nil {
		t.Fatal(err)
	}
	if len(areas) != 3 {
		t.Fatalf("template areas %d", len(areas))
	}
}

// TestServeLifecycle boots the daemon on an ephemeral port, hits its
// API, then cancels the context like a SIGTERM and expects a clean
// drain.
func TestServeLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := run(ctx, []string{"serve", "-addr", "127.0.0.1:0", "-max-inflight", "64"}, pw)
		pw.Close()
		done <- err
	}()
	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		t.Fatalf("no serve banner; err=%v", <-done)
	}
	banner := sc.Text()
	i := strings.Index(banner, "http://")
	if i < 0 {
		t.Fatalf("banner %q has no address", banner)
	}
	base := strings.TrimSpace(banner[i:])

	resp, err := http.Post(base+"/v1/decide", "application/json",
		strings.NewReader(`{"vehicle_id":"v","area":"chicago","seed":4}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("decide status %d: %s", resp.StatusCode, body)
	}
	var dec server.DecideResponse
	if err := json.NewDecoder(resp.Body).Decode(&dec); err != nil {
		t.Fatal(err)
	}
	if dec.Choice == "" || dec.Seed != 4 {
		t.Errorf("decision %+v", dec)
	}

	cancel()
	go io.Copy(io.Discard, pr) // drain the "bye" line
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve returned %v, want clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not exit after cancel")
	}
}

// TestServeCustomAreasFile boots with a one-area config and checks the
// area is served.
func TestServeCustomAreasFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/areas.json"
	cfg := `[{"id":"testville","b":30,"mu":6,"q":0.2}]`
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := run(ctx, []string{"serve", "-addr", "127.0.0.1:0", "-areas", path}, pw)
		pw.Close()
		done <- err
	}()
	sc := bufio.NewScanner(pr)
	if !sc.Scan() {
		t.Fatalf("no banner; err=%v", <-done)
	}
	base := sc.Text()[strings.Index(sc.Text(), "http://"):]

	resp, err := http.Get(base + "/v1/areas")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list server.AreasResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Areas) != 1 || list.Areas[0].ID != "testville" || list.Areas[0].B != 30 {
		t.Errorf("areas %+v", list.Areas)
	}
	cancel()
	go io.Copy(io.Discard, pr)
	if err := <-done; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestLoadtestInProcess runs the self-contained loadtest mode and
// checks the JSON report adds up.
func TestLoadtestInProcess(t *testing.T) {
	var out bytes.Buffer
	args := []string{"loadtest", "-clients", "4", "-requests", "3", "-batch", "2", "-json"}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatal(err)
	}
	// First line is the in-process banner; the report is the JSON tail.
	text := out.String()
	i := strings.Index(text, "{")
	if i < 0 {
		t.Fatalf("no JSON in output:\n%s", text)
	}
	var report server.LoadReport
	if err := json.Unmarshal([]byte(text[i:]), &report); err != nil {
		t.Fatal(err)
	}
	if report.Requests != 12 || report.Decisions != 24 {
		t.Errorf("report %+v, want 12 requests / 24 decisions", report)
	}
	if report.Errors != 0 || report.Overloaded != 0 {
		t.Errorf("report errors %+v", report)
	}
}

// TestServePprofAddr boots the daemon with the profiling plane enabled
// and checks the dedicated listener serves a heap profile while the
// serving port refuses the pprof tree.
func TestServePprofAddr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := run(ctx, []string{"serve", "-addr", "127.0.0.1:0", "-pprof-addr", "127.0.0.1:0"}, pw)
		pw.Close()
		done <- err
	}()
	sc := bufio.NewScanner(pr)
	var base, pbase string
	for pbase == "" && sc.Scan() {
		line := sc.Text()
		i := strings.Index(line, "http://")
		if i < 0 {
			continue
		}
		if strings.Contains(line, "pprof") {
			pbase = line[i:]
			pbase = pbase[:strings.Index(pbase, "/debug/")]
		} else {
			base = strings.TrimSpace(line[i:])
		}
	}
	if base == "" || pbase == "" {
		t.Fatalf("missing banners (serving=%q pprof=%q); err=%v", base, pbase, <-done)
	}

	resp, err := http.Get(pbase + "/debug/pprof/heap?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) == 0 {
		t.Fatalf("heap profile from %s: status %d, %d bytes", pbase, resp.StatusCode, len(body))
	}
	resp, err = http.Get(base + "/debug/pprof/heap")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("serving port served a profile: status %d", resp.StatusCode)
	}

	cancel()
	go io.Copy(io.Discard, pr)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not exit after cancel")
	}
}

// TestLoadtestHeapProfileAndSnapshot runs the self-contained loadtest
// with -profile heap and -out, and checks: the profile file is
// written, the report carries the alloc/GC fields, and the snapshot
// includes the server-side per-area series (the shared-recorder path).
func TestLoadtestHeapProfileAndSnapshot(t *testing.T) {
	dir := t.TempDir()
	prof := dir + "/heap.pprof"
	snap := dir + "/load.json"
	var out bytes.Buffer
	args := []string{"loadtest", "-clients", "2", "-requests", "3", "-batch", "4",
		"-profile", "heap", "-profile-out", prof, "-out", snap, "-json"}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(prof); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile %s: err=%v size=%v", prof, err, fi)
	}
	text := out.String()
	i := strings.Index(text, "{")
	if i < 0 {
		t.Fatalf("no JSON report:\n%s", text)
	}
	var report server.LoadReport
	if err := json.Unmarshal([]byte(text[i:]), &report); err != nil {
		t.Fatal(err)
	}
	if report.Decisions != 24 {
		t.Fatalf("report %+v, want 24 decisions", report)
	}
	if report.AllocsPerOp <= 0 {
		t.Errorf("decide_allocs_per_op = %v, want > 0", report.AllocsPerOp)
	}
	if report.GCCycles < 0 || report.GCPauseMs < 0 {
		t.Errorf("negative GC accounting: %d cycles, %v ms", report.GCCycles, report.GCPauseMs)
	}
	if len(report.TopAreas) == 0 {
		t.Error("no per-area attribution; the in-process server should share the recorder")
	}
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"loadtest_request_ms", "decide_area_ms", "decide_allocs_per_op"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("snapshot missing %q", want)
		}
	}
}

// TestLoadtestTextOutput checks the human-readable report path.
func TestLoadtestTextOutput(t *testing.T) {
	var out bytes.Buffer
	args := []string{"loadtest", "-clients", "2", "-requests", "2", "-batch", "2"}
	if err := run(context.Background(), args, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"loadtest:", "requests", "decisions", "latency ms"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("report missing %q:\n%s", want, out.String())
		}
	}
}
