package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"idlereduce/internal/obs"
	"idlereduce/internal/server"
	"idlereduce/internal/textplot"
)

// top renders a live terminal dashboard from a running idled's
// /v1/history time series: sparklines of request/decision throughput,
// in-flight depth and latency quantiles, plus cache hit-rate, all over
// the server's retained sampling window.
func top(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("idled top", flag.ContinueOnError)
	target := fs.String("target", "http://127.0.0.1:8080", "base URL of a running idled")
	interval := fs.Duration("interval", time.Second, "refresh period")
	frames := fs.Int("frames", 0, "stop after this many frames (0 = until interrupted)")
	once := fs.Bool("once", false, "render one frame without taking over the screen")
	width := fs.Int("w", 60, "sparkline width in cells")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	client := &http.Client{Timeout: 5 * time.Second}
	base := strings.TrimRight(*target, "/")

	for n := 1; ; n++ {
		health, hist, cr, err := fetchTop(ctx, client, base)
		if err != nil {
			return err
		}
		frame := renderTop(base, health, hist, cr, *width)
		if !*once {
			// Home + clear-to-end keeps the frame flicker-free.
			frame = "\x1b[H\x1b[2J" + frame
		}
		if _, err := io.WriteString(stdout, frame); err != nil {
			return err
		}
		if *once || (*frames > 0 && n >= *frames) {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(*interval):
		}
	}
}

// fetchTop pulls one dashboard refresh: liveness, the history window,
// and the competitive-ratio ledger table.
func fetchTop(ctx context.Context, client *http.Client, base string) (server.HealthResponse, obs.History, server.CRResponse, error) {
	var health server.HealthResponse
	var cr server.CRResponse
	if err := getJSON(ctx, client, base+"/healthz", &health); err != nil {
		return health, obs.History{}, cr, err
	}
	var hist obs.History
	if err := getJSON(ctx, client, base+"/v1/history", &hist); err != nil {
		return health, hist, cr, err
	}
	// The CR table is best-effort: a daemon predating the ledger (or one
	// with it idle) still gets the rest of the dashboard.
	_ = getJSON(ctx, client, base+"/v1/cr", &cr)
	return health, hist, cr, nil
}

func getJSON(ctx context.Context, client *http.Client, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// renderTop draws one dashboard frame. Pure: everything it shows comes
// from its arguments, so tests can assert on the layout.
func renderTop(base string, health server.HealthResponse, hist obs.History, cr server.CRResponse, width int) string {
	var b strings.Builder
	up := (time.Duration(health.UptimeMS) * time.Millisecond).Round(time.Second)
	fmt.Fprintf(&b, "idled top — %s — %s %s — %d areas — up %s\n",
		base, health.Version, health.GoVersion, health.Areas, up)
	window := time.Duration(hist.IntervalMS*int64(hist.Window)) * time.Millisecond
	fmt.Fprintf(&b, "window %s (%d/%d samples at %dms)\n\n",
		window.Round(time.Second), hist.Samples, hist.Window, hist.IntervalMS)

	spark := func(label, name, unit string) {
		s, ok := hist.Lookup(name)
		if !ok {
			return
		}
		line := textplot.Sparkline(s.Points, width)
		if s.Kind == "rate" {
			fmt.Fprintf(&b, "%-11s %s %8.1f%s (avg %.1f%s)\n", label, line, s.Last, unit, s.RatePerSec, unit)
		} else {
			fmt.Fprintf(&b, "%-11s %s %8.2f%s\n", label, line, s.Last, unit)
		}
	}
	spark("requests", "requests", "/s")
	spark("decisions", "decisions", "/s")
	spark("advised", "predicted_decisions", "/s")
	spark("observes", "observations", "/s")
	spark("alarms", "retune_alarms", "/s")
	spark("retunes", "retunes", "/s")
	spark("overloaded", "overloaded", "/s")
	spark("inflight", "inflight", "")
	spark("p99 ms", "decide_p99_ms", "")

	if hits, ok := hist.Lookup("cache_hits"); ok {
		if misses, ok := hist.Lookup("cache_misses"); ok {
			total := hits.RatePerSec + misses.RatePerSec
			if total > 0 {
				fmt.Fprintf(&b, "%-11s %.1f%% over the window\n", "cache hit", 100*hits.RatePerSec/total)
			}
		}
	}
	// Prediction quality: share of forecasts on the correct side of
	// the break-even interval, plus the running error moments, fed by
	// observations that carry a predicted_stop_s.
	cons, okc := hist.Lookup("predict_consistency")
	reg, okr := hist.Lookup("predict_regret")
	if okc && okr {
		if total := cons.RatePerSec + reg.RatePerSec; total > 0 {
			fmt.Fprintf(&b, "%-11s %.1f%% consistent over the window\n", "predict", 100*cons.RatePerSec/total)
		}
	}
	errMean, oke := hist.Lookup("predict_err_mean_s")
	bias, okb := hist.Lookup("predict_bias_s")
	if oke && okb && (errMean.Last != 0 || bias.Last != 0) {
		fmt.Fprintf(&b, "%-11s mean |err| %.1fs  bias %+.1fs\n", "predict err", errMean.Last, bias.Last)
	}
	p50, ok50 := hist.Lookup("decide_p50_ms")
	p99, ok99 := hist.Lookup("decide_p99_ms")
	if ok50 && ok99 {
		fmt.Fprintf(&b, "%-11s p50 %.3f  p99 %.3f\n", "decide ms", p50.Last, p99.Last)
	}
	bp50, bok50 := hist.Lookup("batch_p50_ms")
	bp99, bok99 := hist.Lookup("batch_p99_ms")
	if bok50 && bok99 {
		fmt.Fprintf(&b, "%-11s p50 %.3f  p99 %.3f\n", "batch ms", bp50.Last, bp99.Last)
	}
	if panel := renderCRPanel(cr); panel != "" {
		b.WriteString("\n")
		b.WriteString(panel)
	}
	return b.String()
}

// renderCRPanel lays out the competitive-ratio ledger: one row per
// {area, engine} accumulator with its empirical CR, variance band,
// published worst-case bound and breach count. Empty when the ledger
// has never settled anything (no panel beats a table of zeros).
func renderCRPanel(cr server.CRResponse) string {
	if len(cr.Rows) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "competitive ratio — %d pending, %d settled, %d orphaned, %d expired\n",
		cr.Pending, cr.Counters.Settled, cr.Counters.Orphaned, cr.Counters.Expired)
	rows := [][]string{{"area", "engine", "settles", "CR", "±band", "bound", "breaches", "status"}}
	for _, r := range cr.Rows {
		band := "--"
		if r.Band >= 0 {
			band = fmt.Sprintf("%.3f", r.Band)
		}
		bound := "--"
		status := ""
		if r.Bound > 0 {
			bound = fmt.Sprintf("%.3f", r.Bound)
			switch {
			case r.Breaches > 0:
				status = "BREACH"
			case r.Band >= 0 && r.CR-r.Band > r.Bound:
				status = "over"
			default:
				status = "ok"
			}
		}
		rows = append(rows, []string{
			r.Area, r.Engine,
			fmt.Sprintf("%d", r.Settled),
			fmt.Sprintf("%.3f", r.CR),
			band, bound,
			fmt.Sprintf("%d", r.Breaches),
			status,
		})
	}
	b.WriteString(textplot.Table(rows))
	return b.String()
}
