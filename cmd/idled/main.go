// Command idled is the decision-serving daemon: a long-running HTTP
// API that answers online idling decisions from the constrained
// ski-rental policy, backed by a read-mostly per-area strategy cache
// (see docs/SERVER.md).
//
// Usage:
//
//	idled serve    [-addr HOST:PORT] [-workers N] [-max-inflight N]
//	               [-areas FILE] [-b SECONDS] [-seed N] [-max-batch N]
//	               [-request-timeout D] [-drain-timeout D]
//	idled loadtest [-target URL] [-clients N] [-requests N] [-batch N]
//	               [-seed N] [-workers N] [-max-inflight N] [-json]
//	idled areas-template
//
// serve runs until SIGINT/SIGTERM, then drains in-flight requests
// gracefully. loadtest drives concurrent batch-decision clients at
// -target, or at a private in-process server when -target is empty,
// and reports achieved QPS and latency quantiles from the harness's
// metrics registry. areas-template prints the default -areas config
// (the three paper areas at B = 28 s) as editable JSON.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"idlereduce/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "idled:", err)
		os.Exit(1)
	}
}

const usage = "usage: idled <serve|loadtest|areas-template> [flags]"

func run(ctx context.Context, args []string, stdout io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf(usage)
	}
	switch args[0] {
	case "serve":
		return serve(ctx, args[1:], stdout)
	case "loadtest":
		return loadtest(ctx, args[1:], stdout)
	case "areas-template":
		areas, err := server.DefaultAreaStates(28)
		if err != nil {
			return err
		}
		return server.WriteAreaStates(stdout, areas)
	default:
		return fmt.Errorf("unknown command %q (want serve, loadtest or areas-template)\n%s", args[0], usage)
	}
}

// loadAreas resolves the serving areas: the -areas config file, or the
// three paper areas measured at break-even interval b.
func loadAreas(path string, b float64) ([]server.AreaState, error) {
	if path == "" {
		return server.DefaultAreaStates(b)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return server.ReadAreaStates(f)
}

func serve(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("idled serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 0, "batch fan-out pool size (0 = GOMAXPROCS); replies are identical for every value")
	maxInflight := fs.Int("max-inflight", 1024, "max concurrently served /v1 requests before shedding with 429")
	areasPath := fs.String("areas", "", "JSON area config file (default: the three paper areas; see areas-template)")
	b := fs.Float64("b", 28, "default break-even interval (s) for the built-in areas")
	seed := fs.Uint64("seed", 0, "root decision seed (0 = 20140601)")
	maxBatch := fs.Int("max-batch", 4096, "max decisions per batch request")
	reqTimeout := fs.Duration("request-timeout", 10*time.Second, "per-request context deadline")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain bound")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *b <= 0 {
		fs.Usage()
		return fmt.Errorf("-b %v must be positive", *b)
	}
	areas, err := loadAreas(*areasPath, *b)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{
		Addr:           *addr,
		Workers:        *workers,
		MaxInflight:    *maxInflight,
		MaxBatch:       *maxBatch,
		RootSeed:       *seed,
		RequestTimeout: *reqTimeout,
		DrainTimeout:   *drainTimeout,
		Areas:          areas,
	})
	if err != nil {
		return err
	}
	bound, err := srv.Listen()
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "idled: serving %d areas on http://%s\n", len(areas), bound)
	err = srv.Serve(ctx)
	if err == nil {
		fmt.Fprintln(stdout, "idled: drained, bye")
	}
	return err
}

func loadtest(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("idled loadtest", flag.ContinueOnError)
	target := fs.String("target", "", "base URL of a running idled (empty = spin up a private in-process server)")
	clients := fs.Int("clients", 16, "concurrent client goroutines")
	requests := fs.Int("requests", 50, "batch requests per client")
	batch := fs.Int("batch", 8, "decisions per batch request")
	seed := fs.Uint64("seed", 0, "decision root seed sent with every batch (0 = server default)")
	workers := fs.Int("workers", 0, "in-process server pool size (ignored with -target)")
	maxInflight := fs.Int("max-inflight", 1024, "in-process server in-flight bound (ignored with -target)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *clients <= 0 || *requests <= 0 || *batch <= 0 {
		fs.Usage()
		return fmt.Errorf("-clients %d, -requests %d and -batch %d must all be positive", *clients, *requests, *batch)
	}

	base := *target
	if base == "" {
		// Self-contained mode: serve the default areas from this
		// process and aim the harness at the loopback listener.
		areas, err := server.DefaultAreaStates(28)
		if err != nil {
			return err
		}
		srv, err := server.New(server.Config{
			Addr:        "127.0.0.1:0",
			Workers:     *workers,
			MaxInflight: *maxInflight,
			Areas:       areas,
		})
		if err != nil {
			return err
		}
		bound, err := srv.Listen()
		if err != nil {
			return err
		}
		srvCtx, stopSrv := context.WithCancel(ctx)
		done := make(chan error, 1)
		go func() { done <- srv.Serve(srvCtx) }()
		defer func() {
			stopSrv()
			<-done
		}()
		base = "http://" + bound
		fmt.Fprintf(stdout, "loadtest: in-process server on %s\n", base)
	}

	report, err := server.RunLoad(ctx, server.LoadOptions{
		BaseURL:  base,
		Clients:  *clients,
		Requests: *requests,
		Batch:    *batch,
		Seed:     *seed,
	})
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	_, err = io.WriteString(stdout, report.String())
	return err
}
