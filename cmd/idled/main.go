// Command idled is the decision-serving daemon: a long-running HTTP
// API that answers online idling decisions from the constrained
// ski-rental policy, backed by a read-mostly per-area strategy cache
// (see docs/SERVER.md).
//
// Usage:
//
//	idled serve    [-addr HOST:PORT] [-workers N] [-max-inflight N]
//	               [-areas FILE] [-b SECONDS] [-seed N] [-max-batch N]
//	               [-policy ENGINE] [-shards N] [-restore FILE]
//	               [-forgetting F] [-min-observations N]
//	               [-drift-threshold H] [-retune-off]
//	               [-request-timeout D] [-drain-timeout D]
//	               [-trace-log FILE] [-audit-log FILE] [-audit-max-bytes N]
//	               [-history-interval D] [-history-window N]
//	               [-pprof-addr HOST:PORT]
//	idled loadtest [-target URL] [-clients N] [-requests N] [-batch N]
//	               [-seed N] [-policy ENGINE] [-workers N] [-max-inflight N]
//	               [-synthetic-areas N] [-shards N] [-observe F] [-miss F]
//	               [-hot N] [-settle F] [-json] [-out report.json]
//	               [-profile cpu|heap] [-profile-out FILE]
//	idled loadgate [-baseline FILE] [-bless] [-areas N] [-clients N]
//	               [-requests N] [-batch N] [-json]
//	idled top      [-target URL] [-interval D] [-frames N] [-once] [-w N]
//	idled areas-template
//
// serve runs until SIGINT/SIGTERM, then drains in-flight requests
// gracefully; -policy makes a registered engine (see `idlectl engines`)
// the daemon's default — it is prepared for every area at boot, so a
// daemon whose engine cannot serve its areas fails fast instead of
// 4xx-ing at runtime; -trace-log and -audit-log enable the
// request-forensics sinks (JSONL span records and replayable decision
// audit records, see
// docs/OBSERVABILITY.md); -pprof-addr mounts net/http/pprof on a
// dedicated listener (never the serving port) for live CPU/heap
// profiling of the running daemon (see docs/BENCHMARKS.md); -restore
// boots from a state-plane snapshot (`idlectl snapshot save`) so a
// replica starts warm; -shards sets the strategy-cache shard count and
// the -forgetting/-min-observations/-drift-threshold/-retune-off knobs
// tune the POST /v1/observe re-tune loop. loadtest
// drives concurrent batch-decision clients at -target, or at a private
// in-process server when -target is empty, and reports achieved QPS,
// latency quantiles, allocations per decision and GC pause totals from
// the harness's metrics registry; -observe mixes in streamed
// stop observations (with a mid-run drift so CUSUM re-tunes fire),
// -miss forces a controlled cache-miss rate, -synthetic-areas scales
// the in-process server to N fabricated areas, -settle runs the
// competitive-ratio join on a fraction of slots (ledger-opted decides
// settled back via decision_id observes, with a deterministic sprinkle
// of corrupted ids proving the fail-closed path); -out additionally
// writes the
// registry snapshot as JSON (the bench-metrics schema, readable by
// `idlectl stats`), and -profile captures a cpu or heap profile of the
// run to -profile-out. loadgate runs the committed 100k-area mixed
// decide/observe scenario and gates its p99 latency, cache hit-rate
// and re-tune loop against LOADTEST_BASELINE.json (noise-aware via the
// speed canary; -bless re-blesses the baseline on this machine).
// top renders a live terminal dashboard from the target's
// /v1/history time series. areas-template prints the default -areas
// config (the three paper areas at B = 28 s) as editable JSON.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"idlereduce/internal/obs"
	"idlereduce/internal/perf"
	"idlereduce/internal/server"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "idled:", err)
		os.Exit(1)
	}
}

const usage = "usage: idled <serve|loadtest|loadgate|top|areas-template> [flags]"

func run(ctx context.Context, args []string, stdout io.Writer) error {
	if len(args) < 1 {
		return fmt.Errorf(usage)
	}
	switch args[0] {
	case "serve":
		return serve(ctx, args[1:], stdout)
	case "loadtest":
		return loadtest(ctx, args[1:], stdout)
	case "loadgate":
		return loadgate(ctx, args[1:], stdout)
	case "top":
		return top(ctx, args[1:], stdout)
	case "areas-template":
		areas, err := server.DefaultAreaStates(28)
		if err != nil {
			return err
		}
		return server.WriteAreaStates(stdout, areas)
	default:
		return fmt.Errorf("unknown command %q (want serve, loadtest, loadgate, top or areas-template)\n%s", args[0], usage)
	}
}

// loadAreas resolves the serving areas: the -areas config file, or the
// three paper areas measured at break-even interval b.
func loadAreas(path string, b float64) ([]server.AreaState, error) {
	if path == "" {
		return server.DefaultAreaStates(b)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return server.ReadAreaStates(f)
}

func serve(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("idled serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	workers := fs.Int("workers", 0, "batch fan-out pool size (0 = GOMAXPROCS); replies are identical for every value")
	maxInflight := fs.Int("max-inflight", 1024, "max concurrently served /v1 requests before shedding with 429")
	areasPath := fs.String("areas", "", "JSON area config file (default: the three paper areas; see areas-template)")
	b := fs.Float64("b", 28, "default break-even interval (s) for the built-in areas")
	seed := fs.Uint64("seed", 0, "root decision seed (0 = 20140601)")
	defaultPolicy := fs.String("policy", "", "default policy engine served when requests name none (e.g. multislope3; empty = constrained; see idlectl engines)")
	shards := fs.Int("shards", 0, "strategy-cache shard count, rounded up to a power of two (0 = default); wire behavior is identical for every value")
	restorePath := fs.String("restore", "", "boot from this state-plane snapshot (idlectl snapshot save) instead of -areas")
	forgetting := fs.Float64("forgetting", 0, "observation-stream exponential decay in (0,1] (0 = default 0.98)")
	minObs := fs.Int("min-observations", 0, "observations before streamed estimates may re-tune an area (0 = default 50)")
	driftThreshold := fs.Float64("drift-threshold", 0, "CUSUM alarm threshold in baseline standard deviations (0 = default)")
	retuneOff := fs.Bool("retune-off", false, "accept observations but never re-derive strategies (shadow mode)")
	maxBatch := fs.Int("max-batch", 4096, "max decisions per batch request")
	reqTimeout := fs.Duration("request-timeout", 10*time.Second, "per-request context deadline")
	drainTimeout := fs.Duration("drain-timeout", 10*time.Second, "graceful shutdown drain bound")
	traceLog := fs.String("trace-log", "", "write request span records (JSONL) here; empty disables tracing")
	auditLog := fs.String("audit-log", "", "write replayable decision audit records (JSONL) here; empty disables the audit log")
	auditMaxBytes := fs.Int64("audit-max-bytes", 64<<20, "rotate -trace-log/-audit-log after this many bytes (single .1 backup)")
	historyInterval := fs.Duration("history-interval", time.Second, "metrics sampling period for GET /v1/history")
	historyWindow := fs.Int("history-window", 120, "samples retained for GET /v1/history")
	pprofAddr := fs.String("pprof-addr", "", "mount net/http/pprof on a dedicated listener at this address (never the serving port); empty disables live profiling")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *b <= 0 {
		fs.Usage()
		return fmt.Errorf("-b %v must be positive", *b)
	}
	var areas []server.AreaState
	var restore *server.StatePlane
	if *restorePath != "" {
		data, err := os.ReadFile(*restorePath)
		if err != nil {
			return err
		}
		plane, err := server.DecodeSnapshot(data)
		if err != nil {
			return err
		}
		restore = &plane
		fmt.Fprintf(stdout, "idled: restoring %d areas from %s\n", len(plane.Areas), *restorePath)
	} else {
		var err error
		if areas, err = loadAreas(*areasPath, *b); err != nil {
			return err
		}
	}
	cfg := server.Config{
		Addr:           *addr,
		Workers:        *workers,
		MaxInflight:    *maxInflight,
		MaxBatch:       *maxBatch,
		RootSeed:       *seed,
		DefaultPolicy:  *defaultPolicy,
		Shards:         *shards,
		RequestTimeout: *reqTimeout,
		DrainTimeout:   *drainTimeout,
		Areas:          areas,
		Restore:        restore,
		Retune: server.RetuneConfig{
			Forgetting:      *forgetting,
			MinObservations: *minObs,
			DriftThreshold:  *driftThreshold,
			Disabled:        *retuneOff,
		},
		HistoryInterval: *historyInterval,
		HistoryWindow:   *historyWindow,
		PprofAddr:       *pprofAddr,
	}
	// The forensics sinks are size-rotated files; the server flushes
	// them during the graceful drain, the deferred Closes below sync
	// the file handles afterwards.
	for _, sink := range []struct {
		path string
		dst  *io.Writer
		name string
	}{
		{*traceLog, &cfg.TraceLog, "trace"},
		{*auditLog, &cfg.AuditLog, "audit"},
	} {
		if sink.path == "" {
			continue
		}
		f, err := obs.OpenRotatingFile(sink.path, *auditMaxBytes)
		if err != nil {
			return fmt.Errorf("open %s log: %w", sink.name, err)
		}
		defer f.Close()
		*sink.dst = f
		fmt.Fprintf(stdout, "idled: %s log -> %s\n", sink.name, sink.path)
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	bound, err := srv.Listen()
	if err != nil {
		return err
	}
	count := len(areas)
	if restore != nil {
		count = len(restore.Areas)
	}
	fmt.Fprintf(stdout, "idled: serving %d areas on http://%s\n", count, bound)
	if pa := srv.PprofAddr(); pa != "" {
		fmt.Fprintf(stdout, "idled: pprof on http://%s/debug/pprof/ (separate from the serving port)\n", pa)
	}
	err = srv.Serve(ctx)
	if err == nil {
		fmt.Fprintln(stdout, "idled: drained, bye")
	}
	return err
}

func loadtest(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("idled loadtest", flag.ContinueOnError)
	target := fs.String("target", "", "base URL of a running idled (empty = spin up a private in-process server)")
	clients := fs.Int("clients", 16, "concurrent client goroutines")
	requests := fs.Int("requests", 50, "batch requests per client")
	batch := fs.Int("batch", 8, "decisions per batch request")
	seed := fs.Uint64("seed", 0, "decision root seed sent with every batch (0 = server default)")
	policySpec := fs.String("policy", "", "policy engine stamped on every decision (e.g. multislope3; empty = target default)")
	workers := fs.Int("workers", 0, "in-process server pool size (ignored with -target)")
	maxInflight := fs.Int("max-inflight", 1024, "in-process server in-flight bound (ignored with -target)")
	synthAreas := fs.Int("synthetic-areas", 0, "serve N fabricated areas from the in-process server instead of the paper defaults (ignored with -target)")
	shards := fs.Int("shards", 0, "in-process server cache shard count (ignored with -target)")
	observeFrac := fs.Float64("observe", 0, "fraction of requests sent as observe batches (streamed stop observations with a mid-run drift)")
	missFrac := fs.Float64("miss", 0, "fraction of decide slots carrying a custom break-even interval (controlled cache misses)")
	settleFrac := fs.Float64("settle", 0, "fraction of slots running the competitive-ratio join (ledger-opted decides settled by decision_id observes)")
	hotAreas := fs.Int("hot", 0, "areas observe traffic concentrates on (0 = default 64)")
	jsonOut := fs.Bool("json", false, "emit the report as JSON instead of text")
	outPath := fs.String("out", "", "also write the harness metrics registry snapshot here as JSON (readable by idlectl stats)")
	profileKind := fs.String("profile", "", "capture a runtime profile of the load run: cpu or heap")
	profileOut := fs.String("profile-out", "", "profile output file (default <kind>.pprof; requires -profile)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *clients <= 0 || *requests <= 0 || *batch <= 0 {
		fs.Usage()
		return fmt.Errorf("-clients %d, -requests %d and -batch %d must all be positive", *clients, *requests, *batch)
	}
	if *observeFrac < 0 || *observeFrac >= 1 || *missFrac < 0 || *missFrac >= 1 ||
		*settleFrac < 0 || *settleFrac >= 1 {
		fs.Usage()
		return fmt.Errorf("-observe %v, -miss %v and -settle %v must be in [0, 1)", *observeFrac, *missFrac, *settleFrac)
	}
	if *synthAreas > 0 && *target != "" {
		fs.Usage()
		return fmt.Errorf("-synthetic-areas only applies to the in-process server (drop -target)")
	}
	switch *profileKind {
	case "", "cpu", "heap":
	default:
		fs.Usage()
		return fmt.Errorf("-profile %q: want cpu or heap", *profileKind)
	}
	if *profileOut != "" && *profileKind == "" {
		fs.Usage()
		return fmt.Errorf("-profile-out requires -profile cpu|heap")
	}
	if *profileKind != "" && *profileOut == "" {
		*profileOut = *profileKind + ".pprof"
	}

	// One recorder spans the harness and (in self-contained mode) the
	// in-process server, so the -out snapshot carries both the client
	// latency series and the server-side decide_area_ms attribution.
	rec := obs.NewRecorder("loadtest", nil, nil)

	base := *target
	if base == "" {
		// Self-contained mode: serve the default areas (or a fabricated
		// set at -synthetic-areas scale) from this process and aim the
		// harness at the loopback listener.
		var areas []server.AreaState
		if *synthAreas > 0 {
			areas = server.SyntheticAreaStates(*synthAreas, 28)
		} else {
			var err error
			if areas, err = server.DefaultAreaStates(28); err != nil {
				return err
			}
		}
		srv, err := server.New(server.Config{
			Addr:        "127.0.0.1:0",
			Workers:     *workers,
			MaxInflight: *maxInflight,
			Shards:      *shards,
			Areas:       areas,
			Recorder:    rec,
		})
		if err != nil {
			return err
		}
		bound, err := srv.Listen()
		if err != nil {
			return err
		}
		srvCtx, stopSrv := context.WithCancel(ctx)
		done := make(chan error, 1)
		go func() { done <- srv.Serve(srvCtx) }()
		defer func() {
			stopSrv()
			<-done
		}()
		base = "http://" + bound
		fmt.Fprintf(stdout, "loadtest: in-process server on %s\n", base)
	}

	if *profileKind == "cpu" {
		f, err := os.Create(*profileOut)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("start cpu profile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(stdout, "loadtest: cpu profile -> %s\n", *profileOut)
		}()
	}
	report, err := server.RunLoad(ctx, server.LoadOptions{
		BaseURL:         base,
		Clients:         *clients,
		Requests:        *requests,
		Batch:           *batch,
		Seed:            *seed,
		Policy:          *policySpec,
		ObserveFraction: *observeFrac,
		MissFraction:    *missFrac,
		SettleFraction:  *settleFrac,
		HotAreas:        *hotAreas,
		Recorder:        rec,
	})
	if err != nil {
		return err
	}
	if *profileKind == "heap" {
		// Settle the heap so the profile reflects live objects, not
		// garbage from the run.
		runtime.GC()
		f, err := os.Create(*profileOut)
		if err != nil {
			return err
		}
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("write heap profile: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loadtest: heap profile -> %s\n", *profileOut)
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if err := rec.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loadtest: metrics snapshot -> %s\n", *outPath)
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	_, err = io.WriteString(stdout, report.String())
	return err
}

// loadgate runs the committed mixed decide/observe scenario and gates
// it against LOADTEST_BASELINE.json (or re-blesses the baseline).
func loadgate(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("idled loadgate", flag.ContinueOnError)
	baselinePath := fs.String("baseline", "LOADTEST_BASELINE.json", "committed baseline to gate against (or write with -bless)")
	bless := fs.Bool("bless", false, "measure and write a fresh baseline instead of gating")
	areaCount := fs.Int("areas", 0, "override the scenario's synthetic area count (gating requires it to match the baseline)")
	clients := fs.Int("clients", 0, "override the scenario's client count")
	requests := fs.Int("requests", 0, "override the scenario's requests per client")
	batch := fs.Int("batch", 0, "override the scenario's batch size")
	jsonOut := fs.Bool("json", false, "emit the gate result as JSON instead of text")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 0 {
		fs.Usage()
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	scn := perf.DefaultLoadScenario()
	if *areaCount > 0 {
		scn.Areas = *areaCount
	}
	if *clients > 0 {
		scn.Clients = *clients
	}
	if *requests > 0 {
		scn.Requests = *requests
	}
	if *batch > 0 {
		scn.Batch = *batch
	}
	var base perf.LoadBaseline
	if !*bless {
		var err error
		if base, err = perf.ReadLoadBaseline(*baselinePath); err != nil {
			return err
		}
		// The scenario overrides exist for local iteration; a gate run
		// must measure exactly what the baseline blessed.
		if base.Scenario != scn {
			return fmt.Errorf("baseline %s was blessed for scenario %+v, this run is %+v", *baselinePath, base.Scenario, scn)
		}
	}
	fmt.Fprintf(stdout, "loadgate: running %d-area mixed scenario (%d clients x %d requests x batch %d, %.0f%% observe)\n",
		scn.Areas, scn.Clients, scn.Requests, scn.Batch, scn.ObserveFraction*100)
	report, err := perf.RunLoadScenario(ctx, scn)
	if err != nil {
		return err
	}
	_, err = io.WriteString(stdout, report.String())
	if err != nil {
		return err
	}
	if *bless {
		b := perf.NewLoadBaseline(scn, report)
		if err := b.WriteFile(*baselinePath); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "loadgate: blessed baseline -> %s\n", *baselinePath)
		return nil
	}
	res := perf.GateLoad(base, report, perf.MeasureCanary())
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			return err
		}
	} else if _, err := io.WriteString(stdout, res.String()); err != nil {
		return err
	}
	if !res.OK {
		return fmt.Errorf("loadtest gate failed against %s", *baselinePath)
	}
	return nil
}
