package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"idlereduce/internal/obs"
	"idlereduce/internal/server"
)

// startServe runs `idled serve` with extra flags on an ephemeral port
// and returns the base URL plus a clean-shutdown func.
func startServe(t *testing.T, extra ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	pr, pw := io.Pipe()
	done := make(chan error, 1)
	args := append([]string{"serve", "-addr", "127.0.0.1:0"}, extra...)
	go func() {
		err := run(ctx, args, pw)
		pw.Close()
		done <- err
	}()
	// The banner is the first line carrying the bound address; sink
	// lines ("idled: audit log -> ...") may precede it.
	sc := bufio.NewScanner(pr)
	var base string
	for sc.Scan() {
		if i := strings.Index(sc.Text(), "http://"); i >= 0 {
			base = strings.TrimSpace(sc.Text()[i:])
			break
		}
	}
	if base == "" {
		cancel()
		t.Fatalf("no serve banner; err=%v", <-done)
	}
	go io.Copy(io.Discard, pr)
	return base, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("serve drain: %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("serve did not exit after cancel")
		}
	}
}

// TestServeAuditRoundTrip is the full acceptance loop: serve with the
// forensics logs on, drive it with the loadtest harness, check the
// live history window fills, drain, then replay the audit log — every
// recorded decision must reproduce bit-for-bit.
func TestServeAuditRoundTrip(t *testing.T) {
	dir := t.TempDir()
	auditPath := filepath.Join(dir, "audit.jsonl")
	tracePath := filepath.Join(dir, "trace.jsonl")
	base, shutdown := startServe(t,
		"-audit-log", auditPath,
		"-trace-log", tracePath,
		"-history-interval", "20ms",
		"-history-window", "32",
	)

	var lt bytes.Buffer
	if err := run(context.Background(), []string{
		"loadtest", "-target", base, "-clients", "4", "-requests", "5", "-batch", "4",
	}, &lt); err != nil {
		t.Fatalf("loadtest: %v\n%s", err, lt.String())
	}

	// The sampler must retain the traffic it just served; give it a
	// few ticks to take its first sample.
	var hist obs.History
	deadline := time.Now().Add(5 * time.Second)
	for hist.Samples == 0 {
		resp, err := http.Get(base + "/v1/history")
		if err != nil {
			t.Fatal(err)
		}
		if err := decodeBody(resp, &hist); err != nil {
			t.Fatal(err)
		}
		if hist.Samples > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("history still empty after a load run")
		}
		time.Sleep(20 * time.Millisecond)
	}

	shutdown()

	f, err := os.Open(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rep, err := server.VerifyAudit(f)
	if err != nil {
		t.Fatal(err)
	}
	// 4 clients x 5 requests x batch 4 = 80 decisions.
	if !rep.OK() || rep.Records != 80 || rep.Matched != 80 {
		t.Errorf("verify report %s, want 80/80 matched", rep.String())
	}
	if trace, err := os.ReadFile(tracePath); err != nil || len(trace) == 0 {
		t.Errorf("trace log empty (err=%v)", err)
	}
}

func decodeBody(resp *http.Response, out any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// TestLoadtestOutSnapshot checks -out writes the harness registry in
// the bench-metrics snapshot schema.
func TestLoadtestOutSnapshot(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "report.json")
	var out bytes.Buffer
	if err := run(context.Background(), []string{
		"loadtest", "-clients", "2", "-requests", "2", "-batch", "2", "-out", outPath,
	}, &out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snap, err := obs.ReadSnapshot(f)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := snap.CounterValue("loadtest_requests_total"); !ok || v != 4 {
		t.Errorf("snapshot loadtest_requests_total = %d/%v, want 4", v, ok)
	}
	if _, ok := snap.HistogramValue("loadtest_request_ms"); !ok {
		t.Error("snapshot missing the latency histogram")
	}
}
