# Development entry points. The repo is pure Go with no dependencies
# outside the standard library, so every target is a thin go-tool
# wrapper kept here for discoverability.

GO ?= go

.PHONY: check build vet test race bench bench-metrics bench-parallel clean

## check: the full pre-commit gate — vet, build, and the race-enabled
## test suite (includes the internal/obs concurrent-writer tests).
check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: every table/figure benchmark plus the ablations and the
## observability overhead pair (SimulatorObsOff vs SimulatorObsOn).
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

## bench-metrics: run the instrumented simulator benchmark and write its
## metrics registry snapshot to bench-metrics.json (see
## docs/OBSERVABILITY.md).
bench-metrics:
	IDLEREDUCE_BENCH_METRICS=$(CURDIR)/bench-metrics.json \
		$(GO) test -bench 'BenchmarkSimulatorObs' -run '^$$' .
	@echo wrote bench-metrics.json

## bench-parallel: the serial-vs-pooled pairs over the engine's fan-out
## sites (fleet generation, grid fill, fleet evaluation, traffic sweep);
## compare each <name>/serial line against <name>/pool (see
## docs/PARALLELISM.md).
bench-parallel:
	$(GO) test -bench 'BenchmarkParallel' -benchmem -run '^$$' .

clean:
	rm -f bench-metrics.json cpu.pprof mem.pprof trace.out
