# Development entry points. The repo is pure Go with no dependencies
# outside the standard library, so every target is a thin go-tool
# wrapper kept here for discoverability. `make ci` runs the exact steps
# of .github/workflows/ci.yml, so the gate is reproducible locally.

GO ?= go
FUZZTIME ?= 10s
# Pinned staticcheck version, run via `go run` so nothing is installed
# into the toolchain; bump deliberately alongside Go upgrades.
STATICCHECK_VERSION ?= 2025.1.1

.PHONY: check ci build vet test race fmt-check staticcheck cover \
	fuzz-smoke bench-smoke bench bench-metrics bench-parallel \
	bench-capture bench-compare bench-gate loadtest-gate loadtest-bless \
	clean

## check: the full pre-commit gate — identical to CI (vet, fmt, build,
## test, race, fuzz smoke, staticcheck).
check: ci

## ci: mirror of the GitHub workflow jobs, step for step.
ci: vet fmt-check build test race fuzz-smoke staticcheck bench-gate loadtest-gate

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# -shuffle=on randomizes test order every run so inter-test state
# dependencies surface in CI instead of in production.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

## fmt-check: fail when any file needs gofmt (CI's formatting gate).
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

## staticcheck: honnef.co/go/tools at the pinned version (downloads on
## first run; requires network, so it is its own CI job rather than a
## tier-1 gate).
staticcheck:
	$(GO) run honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION) ./...

## cover: the test suite with coverage, writing coverage.out (uploaded
## by CI as an artifact) and printing the per-package summary. Asserts
## the load-bearing subsystems are actually exercised — a suite that
## silently stopped importing internal/policy, the adaptive estimators,
## or the sharded cache/state plane would otherwise pass while covering
## nothing.
cover:
	$(GO) test -coverprofile=coverage.out -covermode=atomic ./...
	$(GO) tool cover -func=coverage.out | tail -1
	@for probe in \
		'^idlereduce/internal/policy/' \
		'^idlereduce/internal/predict/' \
		'^idlereduce/internal/adaptive/' \
		'^idlereduce/internal/ledger/' \
		'^idlereduce/internal/server/cache\.go' \
		'^idlereduce/internal/server/observe\.go' \
		'^idlereduce/internal/server/snapshot\.go'; do \
		grep "$$probe" coverage.out | grep -qv ' 0$$' \
			|| { echo "cover: $$probe has no covered statements"; exit 1; }; \
		echo "cover: $$probe exercised"; \
	done

## fuzz-smoke: run every Fuzz* target for FUZZTIME (default 10s) as a
## quick regression sweep; the corpus findings become seed cases.
fuzz-smoke:
	@set -e; \
	for pkg in $$($(GO) list ./...); do \
		for target in $$($(GO) test -list '^Fuzz' $$pkg 2>/dev/null | grep '^Fuzz' || true); do \
			echo "fuzz $$pkg $$target ($(FUZZTIME))"; \
			$(GO) test -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME) $$pkg; \
		done; \
	done

## bench-smoke: one fast iteration-bounded pass over every benchmark,
## plus the instrumented-simulator metrics snapshot (bench-metrics.json)
## CI uploads for the perf trajectory.
bench-smoke:
	$(GO) test -bench . -benchtime 100x -run '^$$' . | tee bench-smoke.txt
	IDLEREDUCE_BENCH_METRICS=$(CURDIR)/bench-metrics.json \
		$(GO) test -bench 'BenchmarkSimulatorObs' -benchtime 100x -run '^$$' .
	@echo wrote bench-smoke.txt bench-metrics.json

## bench: every table/figure benchmark plus the ablations and the
## observability overhead pair (SimulatorObsOff vs SimulatorObsOn).
bench:
	$(GO) test -bench . -benchmem -run '^$$' .

## bench-metrics: run the instrumented simulator benchmark and write its
## metrics registry snapshot to bench-metrics.json (see
## docs/OBSERVABILITY.md).
bench-metrics:
	IDLEREDUCE_BENCH_METRICS=$(CURDIR)/bench-metrics.json \
		$(GO) test -bench 'BenchmarkSimulatorObs' -run '^$$' .
	@echo wrote bench-metrics.json

## bench-parallel: the serial-vs-pooled pairs over the engine's fan-out
## sites (fleet generation, grid fill, fleet evaluation, traffic sweep);
## compare each <name>/serial line against <name>/pool (see
## docs/PARALLELISM.md).
bench-parallel:
	$(GO) test -bench 'BenchmarkParallel' -benchmem -run '^$$' .

# The perf trajectory (docs/BENCHMARKS.md): BENCH_BASELINE is the
# newest committed BENCH_NNNN.json; the head capture is written to
# BENCH_head.json (named so the wildcard never picks it up as a
# baseline). BENCH_SCALE trades capture time for noise; BENCH_RUNS is
# the min-of-N noise filter depth (5 here — deeper than the CLI's
# default 3 — because gate captures run on busy CI machines).
BENCH_BASELINE ?= $(lastword $(sort $(wildcard BENCH_[0-9]*.json)))
BENCH_HEAD ?= BENCH_head.json
BENCH_SCALE ?= 1
BENCH_RUNS ?= 5
BENCH_MAX_REGRESS ?= 10%

## bench-capture: capture the structured benchmark suites into
## $(BENCH_HEAD) via `idlectl bench run`.
bench-capture:
	$(GO) run ./cmd/idlectl bench run -runs $(BENCH_RUNS) -scale $(BENCH_SCALE) -out $(BENCH_HEAD)

## bench-compare: diff the head capture against the committed baseline
## and fail on any regression beyond tolerance.
bench-compare:
	$(GO) run ./cmd/idlectl bench compare -base $(BENCH_BASELINE) -head $(BENCH_HEAD) -max-regress $(BENCH_MAX_REGRESS)

## bench-gate: the CI regression gate — capture, then compare against
## the newest committed BENCH_NNNN.json. Skips gracefully (with a
## visible note) when no baseline is committed, so forks and fresh
## branches are not blocked.
bench-gate:
ifeq ($(BENCH_BASELINE),)
	@echo "bench-gate: no committed BENCH_NNNN.json baseline; skipping"
else
	$(MAKE) bench-capture
	$(MAKE) bench-compare
endif

# The macro loadtest gate (docs/SERVER.md): a fixed 100k-area mixed
# decide/observe scenario measured in-process and compared against the
# committed LOADTEST_BASELINE.json — p99 (speed-canary normalized),
# cache hit-rate, and the CUSUM retune loop actually firing.
LOADTEST_BASELINE ?= LOADTEST_BASELINE.json

## loadtest-gate: run the committed load scenario and gate against
## $(LOADTEST_BASELINE). Skips gracefully (with a visible note) when no
## baseline is committed, so forks and fresh branches are not blocked.
loadtest-gate:
ifeq ($(wildcard $(LOADTEST_BASELINE)),)
	@echo "loadtest-gate: no committed $(LOADTEST_BASELINE); skipping"
else
	$(GO) run ./cmd/idled loadgate -baseline $(LOADTEST_BASELINE)
endif

## loadtest-bless: re-measure the committed scenario on this machine and
## overwrite $(LOADTEST_BASELINE) (commit the result deliberately).
loadtest-bless:
	$(GO) run ./cmd/idled loadgate -baseline $(LOADTEST_BASELINE) -bless

clean:
	rm -f bench-metrics.json bench-smoke.txt coverage.out cpu.pprof mem.pprof trace.out \
		$(BENCH_HEAD)
