// Benchmarks regenerating every table and figure of the paper's
// evaluation, plus the ablations called out in DESIGN.md. Custom metrics
// (reported via b.ReportMetric) carry the experiment's headline numbers
// into the benchmark output so `go test -bench=.` doubles as a results
// log.
package idlereduce_test

import (
	"context"
	"math"
	"os"
	"testing"

	"idlereduce/internal/adaptive"
	"idlereduce/internal/analysis"
	"idlereduce/internal/costmodel"
	"idlereduce/internal/drivecycle"
	"idlereduce/internal/experiments"
	"idlereduce/internal/fleet"
	"idlereduce/internal/multislope"
	"idlereduce/internal/obs"
	"idlereduce/internal/perf"
	"idlereduce/internal/simulator"
	"idlereduce/internal/skirental"
	"idlereduce/internal/stats"
)

// benchOpts keeps benchmark iterations affordable while exercising the
// full pipeline; the CLI runs publication scale.
func benchOpts() experiments.Options {
	return experiments.Options{Seed: 20140601, FleetVehicles: 40, GridN: 40, SweepPoints: 16}
}

func benchFleet(b *testing.B) *fleet.Fleet {
	b.Helper()
	f, err := benchOpts().BuildFleet()
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkFig1StrategyRegions regenerates Figure 1 (strategy regions and
// worst-case CR surface).
func BenchmarkFig1StrategyRegions(b *testing.B) {
	var maxCR float64
	for i := 0; i < b.N; i++ {
		res, _ := experiments.Fig1(benchOpts(), 28)
		maxCR = res.MaxCR
	}
	b.ReportMetric(maxCR, "maxCR")
}

// BenchmarkFig2Projections regenerates the Figure 2 projection slices.
func BenchmarkFig2Projections(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		results, _ := experiments.Fig2(benchOpts(), 28)
		// Largest improvement of the proposed policy over the best
		// classical baseline (DET/TOI/N-Rand) across the slices — the
		// value Figure 2c-d highlights.
		gain = 0
		for _, r := range results {
			for _, p := range r.Points {
				best := math.Min(p.Baselines["DET"], math.Min(p.Baselines["TOI"], p.Baselines["N-Rand"]))
				if d := best - p.Proposed; d > gain {
					gain = d
				}
			}
		}
	}
	b.ReportMetric(gain, "maxCRgain")
}

// BenchmarkFig3StopDistributions regenerates Figure 3 (stop-length
// distributions + KS test).
func BenchmarkFig3StopDistributions(b *testing.B) {
	f := benchFleet(b)
	b.ResetTimer()
	var d float64
	for i := 0; i < b.N; i++ {
		results, _, err := experiments.Fig3(benchOpts(), f)
		if err != nil {
			b.Fatal(err)
		}
		d = results[0].KS.D
	}
	b.ReportMetric(d, "ksD")
}

// BenchmarkFig4IndividualVehicles regenerates Figure 4 for both vehicle
// classes and reports the proposed-best fraction.
func BenchmarkFig4IndividualVehicles(b *testing.B) {
	f := benchFleet(b)
	b.ResetTimer()
	var frac float64
	for i := 0; i < b.N; i++ {
		results, _, err := experiments.Fig4(benchOpts(), f)
		if err != nil {
			b.Fatal(err)
		}
		ev := results[0].Eval
		frac = float64(ev.ProposedBestTotal) / float64(len(ev.Vehicles))
	}
	b.ReportMetric(frac*100, "%bestB28")
}

// BenchmarkFig5TrafficSweep regenerates Figure 5 (B = 28).
func BenchmarkFig5TrafficSweep(b *testing.B) {
	benchSweep(b, experiments.Fig5)
}

// BenchmarkFig6TrafficSweep regenerates Figure 6 (B = 47).
func BenchmarkFig6TrafficSweep(b *testing.B) {
	benchSweep(b, experiments.Fig6)
}

func benchSweep(b *testing.B, fig func(experiments.Options) (*experiments.SweepResult, string, error)) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, _, err := fig(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, p := range res.Points {
			if p.Proposed > worst {
				worst = p.Proposed
			}
		}
	}
	b.ReportMetric(worst, "proposedWorstCR")
}

// BenchmarkTable1StopsPerDay regenerates Table 1.
func BenchmarkTable1StopsPerDay(b *testing.B) {
	f := benchFleet(b)
	b.ResetTimer()
	var mean float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table1(benchOpts(), f)
		if err != nil {
			b.Fatal(err)
		}
		mean = rows[1].Mean // Chicago
	}
	b.ReportMetric(mean, "chicagoStopsPerDay")
}

// BenchmarkAppendixCBreakEven regenerates the Appendix C derivation.
func BenchmarkAppendixCBreakEven(b *testing.B) {
	var ssv float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.AppendixC(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		ssv = res.SSV.TotalSec()
	}
	b.ReportMetric(ssv, "ssvBreakEvenSec")
}

// --- Parallel engine: serial vs pooled pairs ---
//
// Each pair runs the same fan-out with workers=1 and workers=GOMAXPROCS
// through the internal/parallel engine, so `make bench-parallel` reports
// the pool's speedup (or, on single-core machines, its overhead) on real
// workloads. The outputs are identical by construction — only the wall
// clock moves.

// BenchmarkParallelFleetGen generates the benchmark fleet serially and
// with the default pool.
func BenchmarkParallelFleetGen(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"pool", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			areas := fleet.DefaultAreas()
			for i := range areas {
				areas[i].Vehicles = 40
			}
			var n int
			for i := 0; i < b.N; i++ {
				f, err := fleet.GenerateFleetWorkers(context.Background(), 20140601, bc.workers, areas...)
				if err != nil {
					b.Fatal(err)
				}
				n = len(f.Vehicles)
			}
			b.ReportMetric(float64(n), "vehicles")
		})
	}
}

// BenchmarkParallelSurface fills the Figure 1 statistics grid serially
// and with the default pool.
func BenchmarkParallelSurface(b *testing.B) {
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"pool", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			var feasible int
			for i := 0; i < b.N; i++ {
				cells, err := analysis.StrategyRegionsContext(context.Background(), 28, 120, 120, bc.workers)
				if err != nil {
					b.Fatal(err)
				}
				feasible = 0
				for _, c := range cells {
					if c.Feasible {
						feasible++
					}
				}
			}
			b.ReportMetric(float64(feasible), "feasibleCells")
		})
	}
}

// BenchmarkParallelFleetEval evaluates the Figure 4 per-vehicle CRs
// serially and with the default pool.
func BenchmarkParallelFleetEval(b *testing.B) {
	f := benchFleet(b)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"pool", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			var frac float64
			for i := 0; i < b.N; i++ {
				ev, err := analysis.EvaluateFleetContext(context.Background(), 28, f, bc.workers)
				if err != nil {
					b.Fatal(err)
				}
				frac = float64(ev.ProposedBestTotal) / float64(len(ev.Vehicles))
			}
			b.ReportMetric(frac*100, "%best")
		})
	}
}

// BenchmarkParallelTrafficSweep runs the Figures 5-6 sweep serially and
// with the default pool.
func BenchmarkParallelTrafficSweep(b *testing.B) {
	shape := fleet.Chicago.StopLengthDistribution()
	means := analysis.SweepMeans(2, 600, 24)
	for _, bc := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"pool", 0}} {
		b.Run(bc.name, func(b *testing.B) {
			var worst float64
			for i := 0; i < b.N; i++ {
				pts, err := analysis.TrafficSweepContext(context.Background(), 28, shape, means, bc.workers)
				if err != nil {
					b.Fatal(err)
				}
				worst = 0
				for _, p := range pts {
					if p.Proposed > worst {
						worst = p.Proposed
					}
				}
			}
			b.ReportMetric(worst, "proposedWorstCR")
		})
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationBDetOff quantifies what the b-DET vertex buys: the
// mean worst-case CR over the feasible statistics grid with the full
// four-vertex selector versus a selector restricted to {N-Rand, DET, TOI}.
func BenchmarkAblationBDetOff(b *testing.B) {
	const B = 28.0
	var full, restricted float64
	for i := 0; i < b.N; i++ {
		var fSum, rSum stats4
		for mu := 0.0; mu <= 1.0; mu += 0.02 {
			for q := 0.0; q <= 1.0; q += 0.02 {
				s := skirental.Stats{MuBMinus: mu * B, QBPlus: q}
				if s.Validate(B) != nil {
					continue
				}
				off := s.OfflineCost(B)
				if off == 0 {
					continue
				}
				vc := skirental.ComputeVertexCosts(B, s)
				_, fullCost := vc.Select()
				restrictedCost := math.Min(vc.NRand, math.Min(vc.TOI, vc.DET))
				fSum.add(fullCost / off)
				rSum.add(restrictedCost / off)
			}
		}
		full, restricted = fSum.mean(), rSum.mean()
	}
	b.ReportMetric(full, "meanCR_full")
	b.ReportMetric(restricted, "meanCR_noBDet")
	b.ReportMetric(restricted-full, "bDetGain")
}

type stats4 struct {
	sum float64
	n   int
}

func (s *stats4) add(v float64) { s.sum += v; s.n++ }
func (s *stats4) mean() float64 { return s.sum / float64(s.n) }

// BenchmarkAblationEstimatedStats measures the robustness of the
// proposed selector to plug-in estimation: statistics estimated from the
// first half of each vehicle's week versus exact trace statistics,
// evaluated on the second half.
func BenchmarkAblationEstimatedStats(b *testing.B) {
	f := benchFleet(b)
	const B = 28.0
	b.ResetTimer()
	var exactCR, estCR float64
	for i := 0; i < b.N; i++ {
		var exact, est stats4
		for _, v := range f.Vehicles {
			if len(v.Stops) < 8 {
				continue
			}
			half := len(v.Stops) / 2
			train, test := v.Stops[:half], v.Stops[half:]
			pEst, err := skirental.NewConstrainedFromStops(B, train)
			if err != nil {
				b.Fatal(err)
			}
			pExact, err := skirental.NewConstrainedFromStops(B, test)
			if err != nil {
				b.Fatal(err)
			}
			est.add(skirental.TraceCR(pEst, test))
			exact.add(skirental.TraceCR(pExact, test))
		}
		exactCR, estCR = exact.mean(), est.mean()
	}
	b.ReportMetric(exactCR, "meanCR_exactStats")
	b.ReportMetric(estCR, "meanCR_trainedStats")
	b.ReportMetric(estCR-exactCR, "estimationPenalty")
}

// BenchmarkAblationLPvsClosedForm compares the simplex solution of the
// paper's LP (eq. 32-33) against the closed-form vertex enumeration, both
// in agreement (asserted) and in speed (the two sub-benchmarks).
func BenchmarkAblationLPvsClosedForm(b *testing.B) {
	const B = 28.0
	grid := func(fn func(skirental.Stats)) {
		for mu := 0.0; mu <= 1.0; mu += 0.1 {
			for q := 0.0; q <= 1.0; q += 0.1 {
				s := skirental.Stats{MuBMinus: mu * B, QBPlus: q}
				if s.Validate(B) != nil {
					continue
				}
				fn(s)
			}
		}
	}
	b.Run("closed-form", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			grid(func(s skirental.Stats) {
				skirental.ComputeVertexCosts(B, s).Select()
			})
		}
	})
	b.Run("simplex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			grid(func(s skirental.Stats) {
				if _, _, err := skirental.SelectVertexLP(B, s); err != nil {
					b.Fatal(err)
				}
			})
		}
	})
}

// --- Micro-benchmarks of the hot paths ---

// BenchmarkPolicyThreshold measures threshold sampling for each policy
// family.
func BenchmarkPolicyThreshold(b *testing.B) {
	rng := stats.NewRNG(1)
	for _, p := range []skirental.Policy{
		skirental.NewDET(28),
		skirental.NewNRand(28),
		skirental.NewMOMRand(28, 10),
	} {
		b.Run(p.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p.Threshold(rng)
			}
		})
	}
}

// BenchmarkSimulatorRun measures end-to-end simulated stops per second.
func BenchmarkSimulatorRun(b *testing.B) {
	costs := costmodel.CostRatio{IdlingCentsPerSec: 0.0258, RestartCents: 0.0258 * 28}
	rng := stats.NewRNG(2)
	stopsSeq := make([]float64, 1000)
	for i := range stopsSeq {
		stopsSeq[i] = 1 + rng.Float64()*200
	}
	p := skirental.NewNRand(28)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simRun(costs, p, stopsSeq, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(stopsSeq)), "stops/op")
}

func simRun(costs costmodel.CostRatio, p skirental.Policy, stopsSeq []float64, seed uint64) (float64, error) {
	rng := stats.NewRNG(seed)
	on, _ := skirental.TraceCost(p, stopsSeq, rng)
	return on, nil
}

// BenchmarkSimulatorObsOff measures the event-driven simulator with no
// recorder in the context — the baseline the instrumentation must not
// regress (the per-stop cost is a single nil check).
func BenchmarkSimulatorObsOff(b *testing.B) {
	benchSimulatorObs(b, false)
}

// BenchmarkSimulatorObsOn measures the same run with a live recorder
// collecting per-stop histograms and transition counters. Set
// IDLEREDUCE_BENCH_METRICS=<path> to also write the final registry
// snapshot as JSON (the Makefile's bench-metrics target does this).
func BenchmarkSimulatorObsOn(b *testing.B) {
	benchSimulatorObs(b, true)
}

func benchSimulatorObs(b *testing.B, instrumented bool) {
	rng := stats.NewRNG(2)
	stopsSeq := make([]float64, 1000)
	for i := range stopsSeq {
		stopsSeq[i] = 1 + rng.Float64()*200
	}
	cfg := simulator.Config{
		Costs:  costmodel.CostRatio{IdlingCentsPerSec: 0.0258, RestartCents: 0.0258 * 28},
		Policy: skirental.NewNRand(28),
	}
	ctx := context.Background()
	var rec *obs.Recorder
	if instrumented {
		rec = obs.NewRecorder("bench-simulator", nil, nil)
		ctx = obs.WithRecorder(ctx, rec)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simulator.RunContext(ctx, cfg, stopsSeq, stats.NewRNG(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(stopsSeq)), "stops/op")
	if path := os.Getenv("IDLEREDUCE_BENCH_METRICS"); path != "" && instrumented {
		f, err := os.Create(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := rec.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			b.Fatal(err)
		}
		if err := f.Close(); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s", path)
	}
}

// BenchmarkPerfCapture exercises the structured benchmark plane
// end-to-end at a tiny scale (one run, 2% iterations), so the capture
// pipeline itself — suites, runner, schema round trip — is covered by
// the ordinary bench sweep. Set IDLEREDUCE_BENCH_PERF=<path> to also
// write the final capture file (the full-scale equivalent is `idlectl
// bench run` / `make bench-capture`).
func BenchmarkPerfCapture(b *testing.B) {
	var file perf.File
	for i := 0; i < b.N; i++ {
		var err error
		file, err = perf.Capture(perf.Options{Runs: 1, Scale: 0.02})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(file.Results)), "suites/op")
	if path := os.Getenv("IDLEREDUCE_BENCH_PERF"); path != "" {
		if err := file.WriteFile(path); err != nil {
			b.Fatal(err)
		}
		b.Logf("wrote %s", path)
	}
}

// BenchmarkWorstCaseSearch measures the adversarial search that verifies
// the closed forms.
func BenchmarkWorstCaseSearch(b *testing.B) {
	s := skirental.Stats{MuBMinus: 3, QBPlus: 0.2}
	p := skirental.NewMOMRand(28, 10)
	var cr float64
	for i := 0; i < b.N; i++ {
		cr = analysis.WorstCaseSearch(p, s, 128).CR
	}
	b.ReportMetric(cr, "worstCR")
}

// --- Extension benchmarks (related-work algorithms and substrates) ---

// BenchmarkMultislopePolicies measures the three-state multislope
// bundles and reports their realized trace CRs on a mixed commute.
func BenchmarkMultislopePolicies(b *testing.B) {
	prob, err := multislope.AutomotiveThreeState(28)
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(4)
	stopsSeq := make([]float64, 2000)
	for i := range stopsSeq {
		switch r := rng.Float64(); {
		case r < 0.6:
			stopsSeq[i] = 2 + rng.Float64()*8
		case r < 0.9:
			stopsSeq[i] = 15 + rng.Float64()*45
		default:
			stopsSeq[i] = 120 + rng.Float64()*600
		}
	}
	var crDet, crCons float64
	for i := 0; i < b.N; i++ {
		det := multislope.NewDeterministic(prob)
		cons, err := multislope.NewConstrained(prob, stopsSeq)
		if err != nil {
			b.Fatal(err)
		}
		crDet = det.TraceCR(stopsSeq)
		crCons = cons.TraceCR(stopsSeq)
	}
	b.ReportMetric(crDet, "msDetCR")
	b.ReportMetric(crCons, "msProposedCR")
	b.ReportMetric(crDet-crCons, "msGain")
}

// BenchmarkAdaptivePolicy measures the streaming estimator + reselect
// loop and reports the learning cost versus the clairvoyant static
// policy on the same trace.
func BenchmarkAdaptivePolicy(b *testing.B) {
	rng := stats.NewRNG(5)
	stopsSeq := make([]float64, 3000)
	for i := range stopsSeq {
		if rng.Float64() < 0.9 {
			stopsSeq[i] = 2 + rng.Float64()*10
		} else {
			stopsSeq[i] = 100 + rng.Float64()*400
		}
	}
	staticPol, err := skirental.NewConstrainedFromStops(28, stopsSeq)
	if err != nil {
		b.Fatal(err)
	}
	staticCR := skirental.TraceCR(staticPol, stopsSeq)
	var adaptCR float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := adaptive.New(adaptive.Config{B: 28})
		if err != nil {
			b.Fatal(err)
		}
		on, off, err := p.RunMean(stopsSeq)
		if err != nil {
			b.Fatal(err)
		}
		adaptCR = on / off
	}
	b.ReportMetric(adaptCR, "adaptiveCR")
	b.ReportMetric(adaptCR-staticCR, "learningCost")
}

// BenchmarkDriveCycleWeek measures the mechanistic workload generator.
func BenchmarkDriveCycleWeek(b *testing.B) {
	plan := drivecycle.UrbanCommute()
	rng := stats.NewRNG(6)
	var n int
	for i := 0; i < b.N; i++ {
		week, err := plan.Week(rng)
		if err != nil {
			b.Fatal(err)
		}
		n = len(week)
	}
	b.ReportMetric(float64(n), "stops/week")
}

// BenchmarkMinimaxLP measures the unrestricted minimax LP and reports the
// improvement it finds over the paper's optimum in the b-DET region.
func BenchmarkMinimaxLP(b *testing.B) {
	s := skirental.Stats{MuBMinus: 0.02 * 28, QBPlus: 0.3}
	var lpCR, paperCR float64
	for i := 0; i < b.N; i++ {
		res, err := analysis.MinimaxLP(28, s, 96)
		if err != nil {
			b.Fatal(err)
		}
		lpCR = res.CR
		_, cost := skirental.ComputeVertexCosts(28, s).Select()
		paperCR = cost / s.OfflineCost(28)
	}
	b.ReportMetric(lpCR, "lpOptCR")
	b.ReportMetric(paperCR-lpCR, "improvementOverPaper")
}

// BenchmarkRobustSelector measures confidence-rectangle selection and
// reports the bound premium it pays over the point-estimate selector on
// a one-day sample.
func BenchmarkRobustSelector(b *testing.B) {
	rng := stats.NewRNG(7)
	stopsSeq := make([]float64, 12)
	for i := range stopsSeq {
		if rng.Float64() < 0.9 {
			stopsSeq[i] = 2 + rng.Float64()*10
		} else {
			stopsSeq[i] = 150 + rng.Float64()*300
		}
	}
	var plainBound, robustBound float64
	for i := 0; i < b.N; i++ {
		p, err := skirental.NewConstrainedFromStops(28, stopsSeq)
		if err != nil {
			b.Fatal(err)
		}
		r, err := skirental.NewRobustConstrainedFromStops(28, stopsSeq, 0.95)
		if err != nil {
			b.Fatal(err)
		}
		plainBound, robustBound = p.WorstCaseCR(), r.WorstCaseCR()
	}
	b.ReportMetric(plainBound, "plainBound")
	b.ReportMetric(robustBound, "robustBound")
}

// BenchmarkDriftDetection measures the CUSUM-resetting adaptive policy
// across a regime change and reports how many post-change stops the
// switch took.
func BenchmarkDriftDetection(b *testing.B) {
	rng := stats.NewRNG(8)
	var stopsSeq []float64
	for i := 0; i < 1500; i++ {
		stopsSeq = append(stopsSeq, 2+rng.Float64()*8)
	}
	for i := 0; i < 1500; i++ {
		stopsSeq = append(stopsSeq, 300+rng.Float64()*400)
	}
	var switchAfter float64
	for i := 0; i < b.N; i++ {
		dp, err := adaptive.NewWithDriftDetection(adaptive.Config{B: 28}, adaptive.DriftConfig{})
		if err != nil {
			b.Fatal(err)
		}
		runRNG := stats.NewRNG(9)
		switchAfter = float64(len(stopsSeq))
		for j, y := range stopsSeq {
			dp.Threshold(runRNG)
			if err := dp.Observe(y); err != nil {
				b.Fatal(err)
			}
			if j >= 1500 && dp.Choice() == skirental.ChoiceTOI {
				switchAfter = float64(j - 1500)
				break
			}
		}
	}
	b.ReportMetric(switchAfter, "stopsToSwitch")
}

// BenchmarkMultiStateSimulator measures the three-state trajectory runner.
func BenchmarkMultiStateSimulator(b *testing.B) {
	prob, err := multislope.AutomotiveThreeState(28)
	if err != nil {
		b.Fatal(err)
	}
	pol := multislope.NewRandomized(prob)
	rng := stats.NewRNG(10)
	stopsSeq := make([]float64, 1000)
	for i := range stopsSeq {
		stopsSeq[i] = 1 + rng.Float64()*200
	}
	var cr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := simulator.RunMultiState(simulator.MultiStateConfig{Policy: pol, CentsPerCostUnit: 1}, stopsSeq, stats.NewRNG(uint64(i)))
		if err != nil {
			b.Fatal(err)
		}
		cr = res.CR()
	}
	b.ReportMetric(cr, "msRandCR")
}

// BenchmarkFleetSavingsExperiment regenerates the savings study.
func BenchmarkFleetSavingsExperiment(b *testing.B) {
	f := benchFleet(b)
	b.ResetTimer()
	var perVehicleUSD float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.FleetSavings(benchOpts(), f)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range res.Policies {
			if p.Policy == "Proposed" {
				perVehicleUSD = p.PerVehicle.USD
			}
		}
	}
	b.ReportMetric(perVehicleUSD, "$perVehicleYr")
}

// BenchmarkMultislopeExperiment regenerates the fuel-cut extension study
// and reports the cost reduction over the two-state setting.
func BenchmarkMultislopeExperiment(b *testing.B) {
	f := benchFleet(b)
	b.ResetTimer()
	var reduction float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.Multislope(benchOpts(), f)
		if err != nil {
			b.Fatal(err)
		}
		reduction = 1 - res.MeanCostUnits["3-state Proposed"]/res.MeanCostUnits["2-state Proposed"]
	}
	b.ReportMetric(reduction*100, "%costReduction")
}

// BenchmarkImprovementMap measures the full-grid LP-OPT study and reports
// the peak improvement over the paper's selector.
func BenchmarkImprovementMap(b *testing.B) {
	var maxGain float64
	for i := 0; i < b.N; i++ {
		cells, err := analysis.ImprovementMap(28, 8, 40)
		if err != nil {
			b.Fatal(err)
		}
		maxGain = 0
		for _, c := range cells {
			if c.Gain > maxGain {
				maxGain = c.Gain
			}
		}
	}
	b.ReportMetric(maxGain, "maxCRgain")
}
