// Trafficsweep: a Figures 5-6-style study. The Chicago stop-length shape
// is rescaled across traffic conditions (mean stop length 2 s to 10 min)
// and every strategy's worst-case competitive ratio is charted.
//
// Run with: go run ./examples/trafficsweep
package main

import (
	"fmt"
	"log"

	"idlereduce/internal/analysis"
	"idlereduce/internal/fleet"
	"idlereduce/internal/textplot"
)

func main() {
	shape := fleet.Chicago.StopLengthDistribution()
	means := analysis.SweepMeans(2, 600, 24)

	for _, b := range []float64{28, 47} {
		pts, err := analysis.TrafficSweep(b, shape, means)
		if err != nil {
			log.Fatal(err)
		}
		chart := &textplot.LineChart{
			Title:  fmt.Sprintf("Worst-case CR vs mean stop length, B = %.0f s (log x)", b),
			Width:  80,
			Height: 16,
			YMin:   1,
			YMax:   2.2,
			LogX:   true,
		}
		series := func(name string, pick func(analysis.SweepPoint) float64) textplot.Series {
			s := textplot.Series{Name: name}
			for _, p := range pts {
				s.X = append(s.X, p.MeanStopSec)
				s.Y = append(s.Y, pick(p))
			}
			return s
		}
		chart.Add(series("DET", func(p analysis.SweepPoint) float64 { return p.Baselines["DET"] }))
		chart.Add(series("TOI", func(p analysis.SweepPoint) float64 { return p.Baselines["TOI"] }))
		chart.Add(series("N-Rand", func(p analysis.SweepPoint) float64 { return p.Baselines["N-Rand"] }))
		chart.Add(series("Proposed", func(p analysis.SweepPoint) float64 { return p.Proposed }))
		fmt.Println(chart.Render())

		// Report the regime boundaries: where the proposed selection
		// changes vertex.
		prev := pts[0].Choice
		fmt.Printf("traffic regimes (B = %.0f s): %s", b, prev)
		for _, p := range pts[1:] {
			if p.Choice != prev {
				fmt.Printf(" -> %s (from mean %.0f s)", p.Choice, p.MeanStopSec)
				prev = p.Choice
			}
		}
		fmt.Print("\n\n")
	}
}
