// Adaptive: deploy the constrained policy without knowing the traffic
// statistics in advance. The controller estimates (mu_B-, q_B+) from the
// stops it experiences — generated here by the mechanistic drive-cycle
// model — and re-selects its strategy on the fly, including across a
// mid-week regime change from a suburban commute to downtown gridlock.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"idlereduce/internal/adaptive"
	"idlereduce/internal/drivecycle"
	"idlereduce/internal/skirental"
)

func main() {
	const b = 28.0 // SSV break-even interval
	rng := rand.New(rand.NewPCG(7, 11))

	// Phase 1: a light suburban commute (short stops dominate).
	suburb := drivecycle.SuburbanCommute()

	// Phase 2: downtown gridlock (heavy congestion, more errands).
	downtown := drivecycle.DowntownGridlock()

	var stops []float64
	var phase2Start int
	for day := 0; day < 5; day++ {
		ds, err := suburb.Day(rng)
		if err != nil {
			log.Fatal(err)
		}
		stops = append(stops, ds...)
	}
	phase2Start = len(stops)
	for day := 0; day < 5; day++ {
		ds, err := downtown.Day(rng)
		if err != nil {
			log.Fatal(err)
		}
		stops = append(stops, ds...)
	}
	fmt.Printf("Trace: %d suburban stops, then %d downtown stops\n\n", phase2Start, len(stops)-phase2Start)

	policy, err := adaptive.New(adaptive.Config{B: b, Forgetting: 0.98})
	if err != nil {
		log.Fatal(err)
	}

	var online, offline float64
	lastChoice := policy.Choice()
	fmt.Printf("stop %4d: playing %s (warmup)\n", 0, lastChoice)
	for i, y := range stops {
		x := policy.Threshold(rng)
		online += skirental.OnlineCost(x, y, b)
		offline += skirental.OfflineCost(y, b)
		if err := policy.Observe(y); err != nil {
			log.Fatal(err)
		}
		if c := policy.Choice(); c != lastChoice {
			s := policy.Stats()
			fmt.Printf("stop %4d: switched to %-6s (est. mu_B- = %5.1f s, q_B+ = %.2f)\n",
				i+1, c, s.MuBMinus, s.QBPlus)
			lastChoice = c
		}
	}

	fmt.Printf("\nAdaptive realized CR: %.3f\n", online/offline)

	// Compare with clairvoyant-statistics static policies per phase.
	static1, _ := skirental.NewConstrainedFromStops(b, stops[:phase2Start])
	static2, _ := skirental.NewConstrainedFromStops(b, stops[phase2Start:])
	fmt.Printf("Static oracle per phase: %s then %s\n", static1.Choice(), static2.Choice())
	fmt.Printf("N-Rand (no statistics) CR: %.3f\n", skirental.TraceCR(skirental.NewNRand(b), stops))
}
