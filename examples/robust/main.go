// Robust: selecting a strategy from very little data. With one morning of
// stops the point estimates of (mu_B-, q_B+) are noisy; the robust
// selector guards a whole confidence rectangle and pays for the guarantee
// with average-case performance. As days accumulate, both selectors
// converge.
//
// Run with: go run ./examples/robust
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"idlereduce/internal/drivecycle"
	"idlereduce/internal/skirental"
)

func main() {
	const b = 28.0
	rng := rand.New(rand.NewPCG(5, 17))
	plan := drivecycle.UrbanCommute()

	// Accumulate stops day by day; after each day, select with both the
	// plain and the robust selector and show what they would guarantee.
	var stops []float64
	fmt.Printf("%-5s %6s | %-7s %-28s | %-7s %s\n",
		"day", "stops", "plain", "(worst-case CR given estimate)", "robust", "(CR guaranteed over 95% rectangle)")
	for day := 1; day <= 14; day++ {
		ds, err := plan.Day(rng)
		if err != nil {
			log.Fatal(err)
		}
		stops = append(stops, ds...)

		plain, err := skirental.NewConstrainedFromStops(b, stops)
		if err != nil {
			log.Fatal(err)
		}
		robust, err := skirental.NewRobustConstrainedFromStops(b, stops, 0.95)
		if err != nil {
			log.Fatal(err)
		}
		if day <= 5 || day == 10 || day == 14 {
			fmt.Printf("%-5d %6d | %-7s %-28.3f | %-7s %.3f\n",
				day, len(stops),
				plain.Choice().String(), plain.WorstCaseCR(),
				robust.Choice().String(), robust.WorstCaseCR())
		}
	}

	iv, err := skirental.EstimateStatsInterval(stops, b, 0.95)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAfter two weeks the 95%% rectangle has shrunk to mu in [%.1f, %.1f], q in [%.3f, %.3f],\n",
		iv.MuLo, iv.MuHi, iv.QLo, iv.QHi)
	fmt.Println("and the robust guarantee approaches the plain one: estimation risk has been priced out.")
}
