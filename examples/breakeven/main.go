// Breakeven: walk through the Appendix C cost model for two vehicle
// configurations and show how the break-even interval changes the optimal
// online strategy for the same traffic.
//
// Run with: go run ./examples/breakeven
package main

import (
	"fmt"
	"log"

	"idlereduce/internal/costmodel"
	"idlereduce/internal/skirental"
)

func main() {
	// The same commute for both vehicles.
	stops := []float64{10, 25, 40, 8, 120, 15, 30, 55, 6, 300, 18, 35}

	for _, cfg := range []struct {
		label string
		sss   bool
	}{
		{"stop-start vehicle (SSV)", true},
		{"conventional vehicle", false},
	} {
		v := costmodel.NewFordFusion2011(3.50, cfg.sss)
		bd, err := v.BreakEven()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", cfg.label)
		fmt.Printf("  %s\n", bd)

		b := bd.TotalSec()
		policy, err := skirental.NewConstrainedFromStops(b, stops)
		if err != nil {
			log.Fatal(err)
		}
		s := policy.Stats()
		fmt.Printf("  traffic statistics at this B: mu_B- = %.1f s, q_B+ = %.2f\n", s.MuBMinus, s.QBPlus)
		fmt.Printf("  optimal strategy: %s, guaranteed CR <= %.3f\n", policy.Choice(), policy.WorstCaseCR())
		fmt.Printf("  realized CR on the commute: %.3f\n\n", skirental.TraceCR(policy, stops))
	}

	// Sensitivity: how the conventional vehicle's B moves with fuel price.
	fmt.Println("fuel price sensitivity (conventional vehicle):")
	for _, price := range []float64{2.5, 3.5, 4.5, 5.5} {
		v := costmodel.NewFordFusion2011(price, false)
		bd, err := v.BreakEven()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  $%.2f/gal -> B = %.1f s\n", price, bd.TotalSec())
	}
	fmt.Println("\nHigher fuel prices shrink B: wear costs amortize against costlier idling,")
	fmt.Println("so shutting off pays for itself sooner.")
}
