// Deploy: the full controller lifecycle. Tune a policy on observed
// traffic, persist it as JSON (what a stop-start ECU would flash), reload
// it at the next ignition, and keep a CUSUM drift detector running so a
// regime change re-triggers tuning.
//
// Run with: go run ./examples/deploy
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"idlereduce/internal/adaptive"
	"idlereduce/internal/drivecycle"
	"idlereduce/internal/skirental"
)

func main() {
	const b = 28.0
	rng := rand.New(rand.NewPCG(31, 7))

	// Week 1: observe suburban traffic and tune.
	suburb := drivecycle.SuburbanCommute()
	week1, err := suburb.Week(rng)
	if err != nil {
		log.Fatal(err)
	}
	tuned, err := skirental.NewConstrainedFromStops(b, week1)
	if err != nil {
		log.Fatal(err)
	}
	blob, err := skirental.MarshalPolicy(tuned)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned on %d stops -> %s\n", len(week1), blob)

	// Ignition: reload the policy from its serialized form.
	reloaded, err := skirental.UnmarshalPolicy(blob)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded policy %s (B = %.0f s), CR on week 1: %.3f\n\n",
		reloaded.Name(), reloaded.B(), skirental.TraceCR(reloaded, week1))

	// Weeks 2-3: the driver changes jobs — downtown gridlock. The drift
	// detector notices and the controller re-tunes.
	monitor, err := adaptive.NewWithDriftDetection(
		adaptive.Config{B: b}, adaptive.DriftConfig{})
	if err != nil {
		log.Fatal(err)
	}
	for _, y := range week1 {
		if err := monitor.Observe(y); err != nil {
			log.Fatal(err)
		}
	}

	downtown := drivecycle.DowntownGridlock()
	var newRegime []float64
	drifted := false
	for day := 1; day <= 14 && !drifted; day++ {
		stops, err := downtown.Day(rng)
		if err != nil {
			log.Fatal(err)
		}
		for i, y := range stops {
			before := monitor.Drifts
			if err := monitor.Observe(y); err != nil {
				log.Fatal(err)
			}
			newRegime = append(newRegime, y)
			if monitor.Drifts > before {
				fmt.Printf("drift detected on downtown day %d, stop %d — re-tuning\n", day, i+1)
				drifted = true
				break
			}
		}
	}
	if !drifted {
		log.Fatal("drift never detected")
	}

	// Re-tune on post-drift data only and persist the replacement.
	retuned, err := skirental.NewConstrainedFromStops(b, newRegime)
	if err != nil {
		log.Fatal(err)
	}
	blob2, err := skirental.MarshalPolicy(retuned)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-tuned on %d downtown stops -> %s\n", len(newRegime), blob2)
	fmt.Printf("old policy played %s; new policy plays %s\n",
		tuned.Choice(), retuned.Choice())
}
