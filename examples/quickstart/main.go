// Quickstart: build the proposed idling policy from observed stops and
// compare it with the classic strategies on a simulated drive cycle.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"idlereduce/internal/costmodel"
	"idlereduce/internal/simulator"
	"idlereduce/internal/skirental"
)

func main() {
	// 1. Derive the break-even interval B for a stop-start vehicle from
	//    the Appendix C cost model: fuel, battery wear, emissions.
	vehicle := costmodel.NewFordFusion2011(3.50, true /* has stop-start system */)
	costs, err := vehicle.Costs()
	if err != nil {
		log.Fatal(err)
	}
	b := costs.B()
	fmt.Printf("Break-even interval B = %.1f s (idling %.4f cents/s, restart %.3f cents)\n\n",
		b, costs.IdlingCentsPerSec, costs.RestartCents)

	// 2. A commute's stop lengths in seconds: queues, signals, one long
	//    pickup wait.
	stops := []float64{8, 12, 35, 6, 90, 15, 4, 22, 180, 9, 45, 7, 11, 600, 13}

	// 3. Build the proposed policy: it estimates (mu_B-, q_B+) from the
	//    stops and plays the optimal vertex strategy.
	proposed, err := skirental.NewConstrainedFromStops(b, stops)
	if err != nil {
		log.Fatal(err)
	}
	s := proposed.Stats()
	fmt.Printf("Estimated statistics: mu_B- = %.1f s, q_B+ = %.2f\n", s.MuBMinus, s.QBPlus)
	fmt.Printf("Selected strategy: %s (worst-case CR %.3f)\n\n", proposed.Choice(), proposed.WorstCaseCR())

	// 4. Simulate every policy on the same drive cycle and compare.
	policies := []skirental.Policy{
		proposed,
		skirental.NewTOI(b),
		skirental.NewNEV(b),
		skirental.NewDET(b),
		skirental.NewNRand(b),
	}
	fmt.Printf("%-10s %12s %12s %8s %9s\n", "policy", "cost (cents)", "idle (s)", "restarts", "CR")
	for _, p := range policies {
		rng := rand.New(rand.NewPCG(1, 2))
		res, err := simulator.Run(simulator.Config{Costs: costs, Policy: p}, stops, rng)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.3f %12.0f %8d %9.3f\n",
			p.Name(), res.OnlineCents, res.IdleSec, res.Restarts, res.CR())
	}
	fmt.Println("\nCR = policy cost / clairvoyant cost; lower is better, 1.0 is optimal.")
}
