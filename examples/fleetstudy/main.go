// Fleetstudy: a Figure 4-style evaluation on a synthetic fleet. For each
// vehicle the six strategies are scored by expected competitive ratio
// over the vehicle's week of stops, then aggregated per area.
//
// Run with: go run ./examples/fleetstudy
package main

import (
	"fmt"
	"log"

	"idlereduce/internal/analysis"
	"idlereduce/internal/fleet"
)

func main() {
	// A scaled-down fleet (40 vehicles per area instead of the paper's
	// 217/312/653) keeps this example fast; bump Vehicles for the full
	// experiment.
	areas := fleet.DefaultAreas()
	for i := range areas {
		areas[i].Vehicles = 40
	}
	f, err := fleet.GenerateFleet(42, areas...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Generated %d vehicles, %d stops total\n\n", len(f.Vehicles), len(f.AllStops("")))

	for _, b := range []float64{28, 47} {
		ev, err := analysis.EvaluateFleet(b, f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- B = %.0f s ---\n", b)
		fmt.Printf("%-12s", "mean CR:")
		for _, p := range analysis.PolicyNames {
			fmt.Printf(" %s", p)
		}
		fmt.Println()
		for _, a := range ev.Areas {
			fmt.Printf("%-12s", a.Area)
			for _, p := range analysis.PolicyNames {
				fmt.Printf(" %*.3f", len(p), a.MeanCR[p])
			}
			fmt.Println()
		}
		fmt.Printf("Proposed policy best in %d/%d vehicles (%.1f%%)\n\n",
			ev.ProposedBestTotal, len(ev.Vehicles),
			100*float64(ev.ProposedBestTotal)/float64(len(ev.Vehicles)))
	}

	// Drill into one vehicle: which strategy the proposed policy picked
	// and how everyone scored.
	v := f.Vehicles[0]
	vcr, err := analysis.EvaluateVehicle(28, v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Vehicle %s (%d stops): proposed plays %s\n", v.ID, len(v.Stops), vcr.Choice)
	for _, p := range analysis.PolicyNames {
		marker := " "
		if p == vcr.Best {
			marker = "*"
		}
		fmt.Printf("  %s %-9s CR %.3f\n", marker, p, vcr.CR[p])
	}
}
