// Multislope: the rent-lease-buy generalization. A powertrain with an
// intermediate fuel-cut state gives the online controller three options
// per stop; the instance decomposes into one classic ski rental per state
// transition, so the paper's constrained selector applies segment-wise.
//
// Run with: go run ./examples/multislope
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"idlereduce/internal/multislope"
	"idlereduce/internal/skirental"
)

func main() {
	prob, err := multislope.AutomotiveThreeState(28)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Powertrain states (costs in seconds of full idling):")
	for i, s := range prob.Slopes() {
		fmt.Printf("  state %d: entry %.0f, rate %.2f/s\n", i, s.Buy, s.Rate)
	}
	fmt.Printf("Segment break-evens: %.1f s (idle -> fuel-cut), %.1f s (fuel-cut -> off)\n\n",
		prob.Breakpoints()[0], prob.Breakpoints()[1])

	// A commute trace: mostly short queue stops, some signals, a few
	// long waits.
	rng := rand.New(rand.NewPCG(2, 3))
	stops := make([]float64, 4000)
	for i := range stops {
		switch r := rng.Float64(); {
		case r < 0.6:
			stops[i] = 2 + rng.Float64()*8 // queue creep
		case r < 0.9:
			stops[i] = 15 + rng.Float64()*45 // signals
		default:
			stops[i] = 120 + rng.Float64()*600 // errands
		}
	}

	det := multislope.NewDeterministic(prob)
	rnd := multislope.NewRandomized(prob)
	cons, err := multislope.NewConstrained(prob, stops)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-12s %10s %12s\n", "policy", "trace CR", "worst CR")
	for _, p := range []*multislope.Policy{det, rnd} {
		fmt.Printf("%-12s %10.3f %12.3f\n", p.Name(), p.TraceCR(stops), p.WorstCaseCR())
	}
	// The constrained bundle's guarantee is distributional (its segments
	// may play TOI, whose pointwise ratio is unbounded); report trace CR.
	fmt.Printf("%-12s %10.3f %12s\n", cons.Name(), cons.TraceCR(stops), "(see note)")

	// What did the constrained bundle decide per segment?
	fmt.Println("\nConstrained bundle per segment:")
	for i, sp := range cons.SegmentPolicies() {
		choice := "?"
		if c, ok := sp.(*skirental.Constrained); ok {
			choice = c.Choice().String()
		}
		fmt.Printf("  segment %d (break-even %.1f s): plays %s\n",
			i, prob.Breakpoints()[i], choice)
	}
}
