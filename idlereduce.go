// Package idlereduce is a Go implementation of "A Cost Efficient Online
// Algorithm for Automotive Idling Reduction" (Dong, Zeng, Chen — DAC 2014).
//
// A stopped vehicle pays a per-second idling cost while the engine runs
// and a one-time restart cost if it shuts the engine off; with the stop
// length unknown this is the classic ski-rental problem with break-even
// interval B = cost_restart / cost_idling. The paper's contribution — the
// constrained ski-rental problem — assumes two statistics of the
// stop-length distribution are known, the partial expectation of short
// stops mu_B- and the long-stop probability q_B+, and derives the online
// policy minimizing the worst-case expected competitive ratio over all
// consistent distributions. The optimum is always one of four vertex
// strategies (DET, TOI, b-DET, N-Rand), selected in closed form.
//
// This package is a facade over the implementation packages:
//
//	internal/skirental  — policies, competitive analysis, the proposed selector
//	internal/costmodel  — Appendix C break-even derivation
//	internal/fleet      — synthetic NREL-substitute driving data
//	internal/simulator  — event-driven engine/cost simulator
//	internal/analysis   — worst-case searches, region maps, sweeps
//	internal/experiments— one driver per paper table/figure
//
// Quick start:
//
//	costs, _ := idlereduce.FordFusion2011(3.50, true).Costs()
//	policy, _ := idlereduce.PolicyFromStops(costs.B(), observedStops)
//	x := policy.Threshold(rng) // idle x seconds, then shut off
package idlereduce

import (
	"math/rand/v2"

	"idlereduce/internal/analysis"
	"idlereduce/internal/costmodel"
	"idlereduce/internal/skirental"
)

// Policy is an online idling strategy; see internal/skirental.Policy.
type Policy = skirental.Policy

// Stats holds the constrained statistics (mu_B-, q_B+).
type Stats = skirental.Stats

// Vehicle is the Appendix C cost-model vehicle description.
type Vehicle = costmodel.Vehicle

// CostRatio pairs the idling rate with the restart cost; its B method
// returns the break-even interval.
type CostRatio = costmodel.CostRatio

// Break-even constants from the paper's evaluation.
const (
	// BreakEvenSSV is the published minimum break-even interval for
	// stop-start vehicles (seconds).
	BreakEvenSSV = costmodel.PaperBreakEvenSSV
	// BreakEvenConventional is the published estimate for vehicles
	// without a stop-start system.
	BreakEvenConventional = costmodel.PaperBreakEvenConventional
)

// FordFusion2011 returns the Argonne test vehicle of Appendix C.
func FordFusion2011(fuelUSDPerGallon float64, hasSSS bool) Vehicle {
	return costmodel.NewFordFusion2011(fuelUSDPerGallon, hasSSS)
}

// PolicyFromStats builds the paper's proposed policy for break-even
// interval b and known statistics s.
func PolicyFromStats(b float64, s Stats) (Policy, error) {
	return skirental.NewConstrained(b, s)
}

// PolicyFromStops builds the proposed policy, estimating the statistics
// from an observed stop-length sample.
func PolicyFromStops(b float64, stops []float64) (Policy, error) {
	return skirental.NewConstrainedFromStops(b, stops)
}

// Baseline constructors, exported for comparisons.
var (
	// TOI turns the engine off immediately at every stop.
	TOI = func(b float64) Policy { return skirental.NewTOI(b) }
	// NEV never turns the engine off.
	NEV = func(b float64) Policy { return skirental.NewNEV(b) }
	// DET idles for exactly B seconds before shutting off.
	DET = func(b float64) Policy { return skirental.NewDET(b) }
	// NRand randomizes the threshold with the e/(e-1)-competitive density.
	NRand = func(b float64) Policy { return skirental.NewNRand(b) }
	// MOMRand is the first-moment randomized baseline; mu is the mean
	// stop length.
	MOMRand = func(b, mu float64) Policy { return skirental.NewMOMRand(b, mu) }
)

// EvaluateCR returns the expected competitive ratio of a policy on a stop
// sequence using analytic per-stop expectations.
func EvaluateCR(p Policy, stops []float64) float64 {
	return skirental.TraceCR(p, stops)
}

// SimulateCR plays the policy over the stops with rng (randomized
// policies draw one threshold per stop) and returns total online cost,
// total clairvoyant cost (both in break-even-normalized seconds).
func SimulateCR(p Policy, stops []float64, rng *rand.Rand) (online, offline float64) {
	return skirental.TraceCost(p, stops, rng)
}

// OptimalPolicyLP computes the numerically minimax-optimal randomized
// policy for the statistics by solving the discretized game of eq. 16
// over unrestricted threshold mixtures ("LP-OPT").
//
// Reproduction finding: this policy matches the paper's Proposed policy
// in the DET and TOI regions but is strictly better (lower worst-case CR)
// wherever the paper's selector picks b-DET or N-Rand; see EXPERIMENTS.md.
// nGrid controls the discretization (64 is a good default).
func OptimalPolicyLP(b float64, s Stats, nGrid int) (Policy, error) {
	res, err := analysis.MinimaxLP(b, s, nGrid)
	if err != nil {
		return nil, err
	}
	return res.Policy(b)
}
