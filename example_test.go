package idlereduce_test

import (
	"fmt"

	"idlereduce"
)

// ExamplePolicyFromStops shows the end-to-end flow: derive the break-even
// interval from the vehicle cost model, estimate traffic statistics from
// observed stops, and obtain the optimal online strategy.
func ExamplePolicyFromStops() {
	// A week of observed stop lengths (seconds): mostly short queue
	// stops with a few long waits.
	stops := []float64{8, 12, 5, 35, 9, 6, 240, 11, 7, 90, 10, 4, 600, 13, 9}

	costs, _ := idlereduce.FordFusion2011(3.50, true).Costs()
	policy, err := idlereduce.PolicyFromStops(costs.B(), stops)
	if err != nil {
		panic(err)
	}
	fmt.Printf("B = %.1f s\n", costs.B())
	fmt.Printf("CR on the observed week: %.3f\n", idlereduce.EvaluateCR(policy, stops))
	// Output:
	// B = 28.9 s
	// CR on the observed week: 1.552
}

// ExamplePolicyFromStats builds the policy from known statistics instead
// of raw data.
func ExamplePolicyFromStats() {
	s := idlereduce.Stats{MuBMinus: 5, QBPlus: 0.1}
	policy, err := idlereduce.PolicyFromStats(idlereduce.BreakEvenSSV, s)
	if err != nil {
		panic(err)
	}
	// Against adversarial traffic with these statistics, no online
	// strategy can guarantee a better expected competitive ratio.
	fmt.Printf("policy: %s\n", policy.Name())
	// Output:
	// policy: Proposed
}

// ExampleEvaluateCR compares two baselines on the same commute.
func ExampleEvaluateCR() {
	stops := []float64{10, 20, 300, 15, 8}
	b := idlereduce.BreakEvenSSV
	fmt.Printf("TOI: %.3f\n", idlereduce.EvaluateCR(idlereduce.TOI(b), stops))
	fmt.Printf("DET: %.3f\n", idlereduce.EvaluateCR(idlereduce.DET(b), stops))
	// Output:
	// TOI: 1.728
	// DET: 1.346
}

// ExampleOptimalPolicyLP contrasts the paper's selector with the
// numerically optimal policy in the region where they differ.
func ExampleOptimalPolicyLP() {
	s := idlereduce.Stats{MuBMinus: 0.02 * 28, QBPlus: 0.3}
	paper, _ := idlereduce.PolicyFromStats(28, s)
	lpopt, _ := idlereduce.OptimalPolicyLP(28, s, 64)
	fmt.Printf("paper plays %s; LP-OPT is a %s\n", paper.Name(), lpopt.Name())
	// Output:
	// paper plays Proposed; LP-OPT is a LP-OPT
}
