package idlereduce_test

import (
	"math"
	"testing"

	"idlereduce"
	"idlereduce/internal/analysis"
	"idlereduce/internal/costmodel"
	"idlereduce/internal/fleet"
	"idlereduce/internal/simulator"
	"idlereduce/internal/skirental"
	"idlereduce/internal/stats"
)

// TestFleetSimulatorAnalysisConsistency drives generated vehicles through
// the physical simulator and checks the metered competitive ratios agree
// with the analytic evaluation the experiments use.
func TestFleetSimulatorAnalysisConsistency(t *testing.T) {
	areas := fleet.DefaultAreas()
	for i := range areas {
		areas[i].Vehicles = 5
	}
	f, err := fleet.GenerateFleet(123, areas...)
	if err != nil {
		t.Fatal(err)
	}
	vehicle := costmodel.NewFordFusion2011(3.5, true)
	costs, err := vehicle.Costs()
	if err != nil {
		t.Fatal(err)
	}
	// Pin the simulator's B to the published 28 s so it matches the
	// analysis policies.
	costs = costmodel.CostRatio{
		IdlingCentsPerSec: costs.IdlingCentsPerSec,
		RestartCents:      costs.IdlingCentsPerSec * costmodel.PaperBreakEvenSSV,
	}
	const b = costmodel.PaperBreakEvenSSV

	for _, v := range f.Vehicles {
		det := skirental.NewDET(b)
		res, err := simulator.Run(simulator.Config{Costs: costs, Policy: det}, v.Stops, stats.NewRNG(1))
		if err != nil {
			t.Fatal(err)
		}
		// Deterministic policy: the metered CR equals the analytic trace
		// CR exactly.
		want := skirental.TraceCR(det, v.Stops)
		if math.Abs(res.CR()-want) > 1e-9 {
			t.Fatalf("%s: simulator CR %v vs analytic %v", v.ID, res.CR(), want)
		}
		// Restarts equal the number of stops at least B long.
		long := 0
		for _, y := range v.Stops {
			if y >= b {
				long++
			}
		}
		if res.Restarts != long {
			t.Fatalf("%s: %d restarts, %d long stops", v.ID, res.Restarts, long)
		}
	}
}

// TestSimulatorMatchesFleetEvaluation spot-checks that the per-vehicle
// evaluation (Figure 4) and the simulator rank policies the same way on
// the same vehicle.
func TestSimulatorMatchesFleetEvaluation(t *testing.T) {
	areas := []fleet.AreaConfig{fleet.Chicago}
	areas[0].Vehicles = 3
	f, err := fleet.GenerateFleet(9, areas...)
	if err != nil {
		t.Fatal(err)
	}
	costs := costmodel.CostRatio{IdlingCentsPerSec: 0.0258, RestartCents: 0.0258 * 28}
	for _, v := range f.Vehicles {
		vcr, err := analysis.EvaluateVehicle(28, v)
		if err != nil {
			t.Fatal(err)
		}
		// Simulate the deterministic members of the lineup and compare
		// the metered CRs to the evaluation's.
		for name, p := range map[string]skirental.Policy{
			"TOI": skirental.NewTOI(28),
			"NEV": skirental.NewNEV(28),
			"DET": skirental.NewDET(28),
		} {
			res, err := simulator.Run(simulator.Config{Costs: costs, Policy: p}, v.Stops, stats.NewRNG(7))
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(res.CR()-vcr.CR[name]) > 1e-9 {
				t.Errorf("%s/%s: simulator %v vs evaluation %v", v.ID, name, res.CR(), vcr.CR[name])
			}
		}
		// Emissions accounting is self-consistent: the policy's CO
		// between the NEV reference and the TOI extreme.
		toiRes, err := simulator.Run(simulator.Config{Costs: costs, Policy: skirental.NewTOI(28)}, v.Stops, stats.NewRNG(7))
		if err != nil {
			t.Fatal(err)
		}
		if co := toiRes.EmissionsOf().COmg; co <= toiRes.NEVEmissions().COmg {
			t.Errorf("%s: TOI CO %v should exceed idle-through CO on city stops", v.ID, co)
		}
	}
}

// TestPublicFacadeRoundTrip exercises the exported API end to end.
func TestPublicFacadeRoundTrip(t *testing.T) {
	stopsSeq := []float64{10, 40, 5, 200, 12, 33, 7}
	costs, err := vehicleCosts()
	if err != nil {
		t.Fatal(err)
	}
	b := costs.B()
	pol, err := policyFromStops(b, stopsSeq)
	if err != nil {
		t.Fatal(err)
	}
	cr := skirental.TraceCR(pol, stopsSeq)
	if cr < 1 || cr > math.E/(math.E-1)+1e-9 {
		t.Errorf("facade CR %v out of range", cr)
	}
	rng := stats.NewRNG(3)
	on, off := skirental.TraceCost(pol, stopsSeq, rng)
	if on < off {
		t.Errorf("online %v below offline %v", on, off)
	}
}

// Thin wrappers so the integration test exercises the same paths as the
// facade without importing it under a different name.
func vehicleCosts() (costmodel.CostRatio, error) {
	return costmodel.NewFordFusion2011(3.5, true).Costs()
}

func policyFromStops(b float64, stops []float64) (skirental.Policy, error) {
	return skirental.NewConstrainedFromStops(b, stops)
}

func facadeNRand() idlereduce.Policy { return idlereduce.NRand(idlereduce.BreakEvenSSV) }

func facadeSimulate(p idlereduce.Policy, stops []float64) (float64, float64) {
	return idlereduce.SimulateCR(p, stops, stats.NewRNG(11))
}

// TestFacadeSimulateCR exercises the exported Monte Carlo entry point.
func TestFacadeSimulateCR(t *testing.T) {
	stopsSeq := []float64{5, 40, 12, 90}
	p := facadeNRand()
	on, off := facadeSimulate(p, stopsSeq)
	if off != 5+28+12+28 {
		t.Errorf("offline %v", off)
	}
	if on < off {
		t.Errorf("online %v < offline %v", on, off)
	}
}
