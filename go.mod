module idlereduce

go 1.22
