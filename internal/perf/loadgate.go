package perf

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"time"

	"idlereduce/internal/server"
)

// The loadtest gate: a fixed mixed decide/observe scenario over a
// large synthetic area set, measured in-process and compared against a
// committed LOADTEST_BASELINE.json. It extends the BENCH trajectory's
// micro-suites with a macro check — p99 under concurrency, cache
// hit-rate, and the retune loop actually firing — so scale regressions
// cannot land silently (the ROADMAP's million-vehicle gate).

// LoadScenario pins every knob of a gate run. The request stream,
// area set and observation values are all deterministic functions of
// these fields.
type LoadScenario struct {
	// Areas is the synthetic area count (the gate runs 100k).
	Areas int `json:"areas"`
	// Shards is the strategy-cache shard count (0 = server default).
	Shards int `json:"shards"`
	// Clients/Requests/Batch shape the request stream.
	Clients  int `json:"clients"`
	Requests int `json:"requests"`
	Batch    int `json:"batch"`
	// ObserveFraction is the share of observe batches; MissFraction the
	// share of custom-B decide slots (controlled cache misses).
	ObserveFraction float64 `json:"observe_fraction"`
	MissFraction    float64 `json:"miss_fraction"`
	// SettleFraction is the share of slots running the ledger join
	// (ledger-opted decide batch + settling observe batch, with a
	// deterministic sprinkle of orphaned ids).
	SettleFraction float64 `json:"settle_fraction"`
	// Seed is the decide root seed.
	Seed uint64 `json:"seed"`
}

// DefaultLoadScenario is the committed gate scenario: 100k areas,
// 40% observe traffic concentrated on 64 hot areas with a mid-run
// drift (so CUSUM re-tunes provably fire), a 5% controlled cache-miss
// rate, and a 25% share of slots running the competitive-ratio join
// (so the ledger's settle path is load-tested alongside everything
// else).
func DefaultLoadScenario() LoadScenario {
	return LoadScenario{
		Areas:           100_000,
		Clients:         8,
		Requests:        250,
		Batch:           16,
		ObserveFraction: 0.4,
		MissFraction:    0.05,
		SettleFraction:  0.25,
		Seed:            suiteSeed,
	}
}

// Validate rejects structurally unusable scenarios.
func (s LoadScenario) Validate() error {
	if s.Areas < 1 || s.Clients < 1 || s.Requests < 1 || s.Batch < 1 {
		return fmt.Errorf("perf: load scenario has non-positive dimensions: %+v", s)
	}
	if s.ObserveFraction < 0 || s.ObserveFraction >= 1 || s.MissFraction < 0 || s.MissFraction >= 1 ||
		s.SettleFraction < 0 || s.SettleFraction >= 1 {
		return fmt.Errorf("perf: load scenario fractions outside [0, 1): %+v", s)
	}
	return nil
}

// RunLoadScenario boots an in-process idled over the scenario's
// synthetic areas and drives the mixed load at it through a real HTTP
// listener, returning the client-side report.
func RunLoadScenario(ctx context.Context, scn LoadScenario) (server.LoadReport, error) {
	if err := scn.Validate(); err != nil {
		return server.LoadReport{}, err
	}
	areas := server.SyntheticAreaStates(scn.Areas, suiteB)
	srv, err := server.New(server.Config{
		Areas:  areas,
		Shards: scn.Shards,
		// The limiter must never shed the gate's own load: a 429 storm
		// would read as an error-rate change, not a latency signal.
		MaxInflight: scn.Clients * 4,
	})
	if err != nil {
		return server.LoadReport{}, err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ids := make([]string, len(areas))
	for i, a := range areas {
		ids[i] = a.ID
	}
	return server.RunLoad(ctx, server.LoadOptions{
		BaseURL:         ts.URL,
		Clients:         scn.Clients,
		Requests:        scn.Requests,
		Batch:           scn.Batch,
		Seed:            scn.Seed,
		Areas:           ids,
		ObserveFraction: scn.ObserveFraction,
		MissFraction:    scn.MissFraction,
		SettleFraction:  scn.SettleFraction,
		Timeout:         2 * time.Minute,
		Transport:       &http.Transport{MaxIdleConnsPerHost: scn.Clients},
	})
}

// LoadBaseline is the committed LOADTEST_BASELINE.json: the scenario,
// the machine and speed canary it was measured on, and the gated
// metrics.
type LoadBaseline struct {
	SchemaVersion int     `json:"schema_version"`
	CreatedUnixMs int64   `json:"created_unix_ms"`
	Machine       Machine `json:"machine"`
	// CanaryNsPerOp normalizes latency across machine states, exactly
	// as BENCH compare does.
	CanaryNsPerOp float64      `json:"canary_ns_per_op"`
	Scenario      LoadScenario `json:"scenario"`
	// P99Ms is the overall per-batch p99; DecideP99Ms/ObserveP99Ms the
	// per-kind tails.
	P99Ms        float64 `json:"p99_ms"`
	DecideP99Ms  float64 `json:"decide_p99_ms"`
	ObserveP99Ms float64 `json:"observe_p99_ms"`
	// CacheHitRate is gated absolutely (it is noise-free by
	// construction: the miss schedule is deterministic).
	CacheHitRate float64 `json:"cache_hit_rate"`
	// Alarms/Retunes/DecisionQPS document the blessed run (QPS is
	// informational; alarms and retunes must stay nonzero).
	Alarms      int64   `json:"alarms"`
	Retunes     int64   `json:"retunes"`
	DecisionQPS float64 `json:"decision_qps"`
	// Settled/Orphans document the ledger-join leg of the blessed run;
	// both must stay nonzero while the scenario carries a settle
	// fraction (a run where settles stopped landing — or orphans
	// stopped being rejected — is a functional regression).
	Settled int64 `json:"settled"`
	Orphans int64 `json:"orphans"`
}

// NewLoadBaseline blesses a report as the committed baseline.
func NewLoadBaseline(scn LoadScenario, rep server.LoadReport) LoadBaseline {
	return LoadBaseline{
		SchemaVersion: SchemaVersion,
		CreatedUnixMs: time.Now().UnixMilli(),
		Machine:       CurrentMachine(),
		CanaryNsPerOp: MeasureCanary(),
		Scenario:      scn,
		P99Ms:         rep.P99,
		DecideP99Ms:   rep.DecideP99,
		ObserveP99Ms:  rep.ObserveP99,
		CacheHitRate:  rep.CacheHitRate,
		Alarms:        rep.Alarms,
		Retunes:       rep.Retunes,
		DecisionQPS:   rep.DecisionQPS,
		Settled:       rep.Settled,
		Orphans:       rep.Orphans,
	}
}

// Validate checks a baseline is usable as a gate reference.
func (b LoadBaseline) Validate() error {
	if b.SchemaVersion != SchemaVersion {
		return fmt.Errorf("%w: baseline has schema_version %d, this tool reads %d",
			ErrSchemaVersion, b.SchemaVersion, SchemaVersion)
	}
	if err := b.Scenario.Validate(); err != nil {
		return err
	}
	if b.P99Ms <= 0 || b.CacheHitRate <= 0 || b.CacheHitRate > 1 {
		return fmt.Errorf("perf: baseline has no usable measurements (p99 %v, hit-rate %v)", b.P99Ms, b.CacheHitRate)
	}
	return nil
}

// Write renders the baseline as indented JSON.
func (b LoadBaseline) Write(w io.Writer) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile writes the baseline to path.
func (b LoadBaseline) WriteFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := b.Write(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// ReadLoadBaseline reads and validates the baseline at path.
func ReadLoadBaseline(path string) (LoadBaseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return LoadBaseline{}, err
	}
	var b LoadBaseline
	if err := json.Unmarshal(data, &b); err != nil {
		return LoadBaseline{}, fmt.Errorf("%s: decode baseline (corrupt or truncated): %w", path, err)
	}
	if err := b.Validate(); err != nil {
		return LoadBaseline{}, fmt.Errorf("%s: %w", path, err)
	}
	return b, nil
}

// Gate tolerances. Latency under full-machine concurrency is far
// noisier than the min-of-N micro-suites, so the relative band is wide
// and an absolute floor keeps sub-millisecond baselines from gating on
// scheduler jitter; the hit-rate band is tight because the miss
// schedule is deterministic.
const (
	loadP99Tolerance  = 0.75 // +75% after canary normalization
	loadP99FloorMs    = 10.0 // absolute slack added to the allowance
	loadHitRateMargin = 0.02
)

// LoadGateResult is the verdict of one gate evaluation.
type LoadGateResult struct {
	OK bool `json:"ok"`
	// SpeedRatio is the canary normalization applied (head/base,
	// clamped; 0 when either side lacks a canary).
	SpeedRatio float64 `json:"speed_ratio,omitempty"`
	// Failures lists every violated check; Notes carries informational
	// lines (normalization, blessed-vs-measured context).
	Failures []string `json:"failures,omitempty"`
	Notes    []string `json:"notes,omitempty"`
}

// String renders the operator summary.
func (r LoadGateResult) String() string {
	var sb strings.Builder
	if r.OK {
		sb.WriteString("loadtest gate: PASS\n")
	} else {
		sb.WriteString("loadtest gate: FAIL\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&sb, "  %s\n", n)
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&sb, "  FAIL: %s\n", f)
	}
	return sb.String()
}

// GateLoad evaluates a measured report against the committed baseline.
// headCanary is the head machine's MeasureCanary() reading taken
// alongside the run; pass 0 to skip normalization.
func GateLoad(base LoadBaseline, rep server.LoadReport, headCanary float64) LoadGateResult {
	res := LoadGateResult{OK: true}
	ratio := 1.0
	if base.CanaryNsPerOp > 0 && headCanary > 0 {
		ratio = math.Min(math.Max(headCanary/base.CanaryNsPerOp, 1/canaryClamp), canaryClamp)
		res.SpeedRatio = ratio
		res.Notes = append(res.Notes, fmt.Sprintf("speed canary: head machine state %.2fx base; latency allowances normalized", ratio))
	} else {
		res.Notes = append(res.Notes, "no speed canary on one side; latency allowances unnormalized")
	}
	fail := func(format string, args ...any) {
		res.OK = false
		res.Failures = append(res.Failures, fmt.Sprintf(format, args...))
	}

	if rep.Errors > 0 {
		fail("%d request errors (gate runs must be error-free)", rep.Errors)
	}
	if rep.Overloaded > 0 {
		fail("%d load-shed replies (raise the in-process limiter)", rep.Overloaded)
	}
	allowed := base.P99Ms*ratio*(1+loadP99Tolerance) + loadP99FloorMs
	res.Notes = append(res.Notes, fmt.Sprintf("p99 %.2f ms (base %.2f, allowed %.2f)", rep.P99, base.P99Ms, allowed))
	if rep.P99 > allowed {
		fail("p99 %.2f ms exceeds allowance %.2f ms (base %.2f)", rep.P99, allowed, base.P99Ms)
	}
	res.Notes = append(res.Notes, fmt.Sprintf("cache hit-rate %.4f (base %.4f, floor %.4f)",
		rep.CacheHitRate, base.CacheHitRate, base.CacheHitRate-loadHitRateMargin))
	if rep.CacheHitRate < base.CacheHitRate-loadHitRateMargin {
		fail("cache hit-rate %.4f below floor %.4f (base %.4f)",
			rep.CacheHitRate, base.CacheHitRate-loadHitRateMargin, base.CacheHitRate)
	}
	// The scenario's whole point is the closed loop: streamed
	// observations must drive CUSUM alarms and those alarms must
	// re-derive strategies. A run where that stopped happening is a
	// functional regression regardless of latency.
	if rep.Observations == 0 {
		fail("no observations accepted")
	}
	if base.Alarms > 0 && rep.Alarms == 0 {
		fail("no CUSUM alarms fired (baseline run had %d)", base.Alarms)
	}
	if base.Retunes > 0 && rep.Retunes == 0 {
		fail("no re-tunes performed (baseline run had %d)", base.Retunes)
	}
	// Same logic for the competitive-ratio join: settles must land and
	// the deliberately corrupted ids must keep being rejected.
	if base.Settled > 0 && rep.Settled == 0 {
		fail("no ledger settles joined (baseline run had %d)", base.Settled)
	}
	if base.Orphans > 0 && rep.Orphans == 0 {
		fail("no orphaned decision ids rejected (baseline run had %d)", base.Orphans)
	}
	return res
}
