package perf

import (
	"encoding/json"
	"fmt"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strings"

	"idlereduce/internal/fleet"
	"idlereduce/internal/ledger"
	"idlereduce/internal/policy"
	"idlereduce/internal/server"
	"idlereduce/internal/simulator"
	"idlereduce/internal/skirental"
	"idlereduce/internal/stats"

	"idlereduce/internal/costmodel"
)

// suiteSeed fixes every suite's randomness to the repo-wide experiment
// seed; per-op variation derives from the op index, never the clock.
const suiteSeed = 20140601

// suiteB is the break-even interval every suite measures at (the
// paper's B = 28 s operating point).
const suiteB = 28.0

// DefaultSuites returns the committed benchmark set — the serving hot
// path from pure strategy derivation up through the full HTTP decide
// stack, plus the two bulk producers (fleet generation and the
// event-driven simulator). Names are stable compare keys: renaming one
// breaks the trajectory, so add new suites instead of repurposing old
// names.
func DefaultSuites() []Benchmark {
	return []Benchmark{
		{
			// Pure vertex selection from the constrained statistics —
			// the work a cache miss or stats update pays.
			Name: "strategy_derive", Class: "cpu", Iters: 2000,
			Setup: func() (Op, func(), error) {
				st, err := chicagoStats()
				if err != nil {
					return nil, nil, err
				}
				return func(i int) error {
					_, err := skirental.NewConstrained(suiteB, st)
					return err
				}, nil, nil
			},
		},
		{
			// The decide path's cache read: one atomic pointer load
			// plus a map lookup.
			Name: "cache_hit", Class: "cpu", Iters: 20000,
			Setup: func() (Op, func(), error) {
				cache, err := defaultCache()
				if err != nil {
					return nil, nil, err
				}
				return func(i int) error {
					if _, ok := cache.Get("chicago"); !ok {
						return fmt.Errorf("chicago missing from cache")
					}
					return nil
				}, nil, nil
			},
		},
		{
			// The copy-on-write stats swap: validate, re-derive the
			// vertex selection, clone and publish the map.
			Name: "cache_update", Class: "cpu", Iters: 2000,
			Setup: func() (Op, func(), error) {
				cache, err := defaultCache()
				if err != nil {
					return nil, nil, err
				}
				st, err := chicagoStats()
				if err != nil {
					return nil, nil, err
				}
				return func(i int) error {
					// Alternate between two feasible pairs so every
					// update really swaps state.
					s := st
					if i%2 == 1 {
						s.QBPlus *= 0.99
					}
					_, err := cache.Update("chicago", suiteB, s)
					return err
				}, nil, nil
			},
		},
		{
			// One decision through the full middleware + handler stack
			// (request decode, cache hit, threshold draw, JSON reply).
			Name: "decide_single", Class: "latency", Iters: 1500,
			Setup: func() (Op, func(), error) {
				h, err := defaultHandler()
				if err != nil {
					return nil, nil, err
				}
				return func(i int) error {
					body := fmt.Sprintf(`{"vehicle_id":"bench-%d","area":"chicago"}`, i)
					return doRequest(h, "/v1/decide", body)
				}, nil, nil
			},
		},
		{
			// Same path with a non-default break-even interval: the
			// cache-miss branch deriving a fresh policy per request.
			Name: "decide_custom_b", Class: "latency", Iters: 1000,
			Setup: func() (Op, func(), error) {
				h, err := defaultHandler()
				if err != nil {
					return nil, nil, err
				}
				return func(i int) error {
					body := fmt.Sprintf(`{"vehicle_id":"bench-%d","area":"chicago","b":35}`, i)
					return doRequest(h, "/v1/decide", body)
				}, nil, nil
			},
		},
		{
			// A 64-item batch through the parallel fan-out (fixed body,
			// so the measured work is decode + 64 decisions + merge).
			Name: "decide_batch_64", Class: "latency", Iters: 150,
			Setup: func() (Op, func(), error) {
				h, err := defaultHandler()
				if err != nil {
					return nil, nil, err
				}
				var b strings.Builder
				b.WriteString(`{"seed":1,"requests":[`)
				for i := 0; i < 64; i++ {
					if i > 0 {
						b.WriteByte(',')
					}
					fmt.Fprintf(&b, `{"vehicle_id":"batch-%d","area":"chicago"}`, i)
				}
				b.WriteString(`]}`)
				body := b.String()
				return func(i int) error {
					return doRequest(h, "/v1/decide/batch", body)
				}, nil, nil
			},
		},
		{
			// Synthetic fleet generation for one small area (the
			// deterministic per-vehicle stream derivation included).
			Name: "fleet_generate", Class: "throughput", Iters: 20,
			Setup: func() (Op, func(), error) {
				cfg := fleet.Chicago
				cfg.Vehicles = 4
				if err := cfg.Validate(); err != nil {
					return nil, nil, err
				}
				return func(i int) error {
					_, err := cfg.Generate(stats.NewRNG(suiteSeed + uint64(i)))
					return err
				}, nil, nil
			},
		},
		{
			// Multislope strategy preparation: envelope construction,
			// per-segment stats projection, and the constrained vertex
			// selection for every segment — what the multislope3 engine
			// pays on a cache miss or stats update.
			Name: "multislope_prepare", Class: "cpu", Iters: 2000,
			Setup: func() (Op, func(), error) {
				st, err := chicagoStats()
				if err != nil {
					return nil, nil, err
				}
				eng, err := policy.Lookup(policy.MultislopeEngine)
				if err != nil {
					return nil, nil, err
				}
				s := policy.Stats{B: suiteB, Mu: st.MuBMinus, Q: st.QBPlus}
				return func(i int) error {
					_, err := eng.Prepare(s)
					return err
				}, nil, nil
			},
		},
		{
			// One multislope3 decision through the full HTTP stack: the
			// engine dispatch, the cached (area, engine) strategy, and
			// the two-rung schedule encoding.
			Name: "decide_multislope", Class: "latency", Iters: 1500,
			Setup: func() (Op, func(), error) {
				h, err := defaultHandler()
				if err != nil {
					return nil, nil, err
				}
				return func(i int) error {
					body := fmt.Sprintf(`{"vehicle_id":"bench-%d","area":"chicago","policy":"multislope3"}`, i)
					return doRequest(h, "/v1/decide", body)
				}, nil, nil
			},
		},
		{
			// One streamed observation through the full HTTP stack:
			// request decode, the per-area tracker update (EWMA moments
			// plus the CUSUM step), and the JSON reply. Stop lengths
			// stay in one regime so no re-tune amortizes into the mean.
			Name: "observe_stream", Class: "latency", Iters: 2000,
			Setup: func() (Op, func(), error) {
				h, err := defaultHandler()
				if err != nil {
					return nil, nil, err
				}
				return func(i int) error {
					body := fmt.Sprintf(`{"area":"chicago","stop_sec":%d}`, 5+i%20)
					return doRequest(h, "/v1/observe", body)
				}, nil, nil
			},
		},
		{
			// Cache reads spread across many areas and every shard —
			// the decide lookup cost at scale, where shard placement
			// and per-shard snapshot loads dominate instead of one hot
			// map entry.
			Name: "shard_decide", Class: "cpu", Iters: 10000,
			Setup: func() (Op, func(), error) {
				areas := server.SyntheticAreaStates(1024, suiteB)
				cache, err := server.NewShardedCache(areas, nil, 0)
				if err != nil {
					return nil, nil, err
				}
				ids := make([]string, len(areas))
				for j, a := range areas {
					ids[j] = a.ID
				}
				return func(i int) error {
					if _, ok := cache.Get(ids[(i*31)%len(ids)]); !ok {
						return fmt.Errorf("synthetic area missing from cache")
					}
					return nil
				}, nil, nil
			},
		},
		{
			// One prediction-aware decision through the full HTTP stack:
			// params resolution, the prediction block validation, and the
			// softml blend on top of the cached constrained fallback.
			Name: "decide_softml", Class: "latency", Iters: 1500,
			Setup: func() (Op, func(), error) {
				h, err := defaultHandler()
				if err != nil {
					return nil, nil, err
				}
				return func(i int) error {
					body := fmt.Sprintf(`{"vehicle_id":"bench-%d","area":"chicago","policy":"softml","params":{"lambda":0.5},"prediction":{"predicted_stop_s":%d,"confidence":0.8}}`, i, 5+i%90)
					return doRequest(h, "/v1/decide", body)
				}, nil, nil
			},
		},
		{
			// A small consistency-robustness sweep: the 5x5
			// lambda-by-predictor grid over a 100-stop trace, including
			// the per-cell WorstCaseMixedCost robustness bound — what
			// `idlectl frontier` pays per table, scaled down.
			Name: "frontier_sweep", Class: "throughput", Iters: 30,
			Setup: func() (Op, func(), error) {
				st, err := chicagoStats()
				if err != nil {
					return nil, nil, err
				}
				rng := rand.New(rand.NewPCG(suiteSeed, 0x46524e54))
				stops := make([]float64, 100)
				for j := range stops {
					stops[j] = 1 + rng.Float64()*(4*suiteB-1)
				}
				cfg := simulator.FrontierConfig{
					Costs: costmodel.CostRatio{IdlingCentsPerSec: 1, RestartCents: suiteB},
					Stats: st,
					Stops: stops,
				}
				return func(i int) error {
					cfg.Seed = suiteSeed + uint64(i)
					_, err := simulator.SweepFrontier(cfg)
					return err
				}, nil, nil
			},
		},
		{
			// One competitive-ratio ledger join: issue a pending decision
			// and settle it — the pure library cost every opted-in
			// decide/observe pair adds on top of the serving path
			// (sharded table insert/remove, realized-cost computation,
			// accumulator and breach-detector advance).
			Name: "ledger_settle", Class: "cpu", Iters: 20000,
			Setup: func() (Op, func(), error) {
				led := ledger.New(ledger.Config{})
				return func(i int) error {
					id := fmt.Sprintf("bench-%d", i)
					if _, err := led.Issue(ledger.Pending{
						ID: id, Area: "chicago", Engine: "constrained@v1",
						B: suiteB, ThresholdSec: suiteB, Bound: 2,
						IssuedUnixMS: int64(i),
					}); err != nil {
						return err
					}
					_, err := led.Settle(id, float64(5+i%50), int64(i)+3)
					return err
				}, nil, nil
			},
		},
		{
			// GET /v1/cr with a populated ledger: the accumulator sweep,
			// the variance-band computation per row, and the JSON
			// rendering — what every dashboard refresh pays.
			Name: "cr_snapshot", Class: "latency", Iters: 2000,
			Setup: func() (Op, func(), error) {
				h, err := defaultHandler()
				if err != nil {
					return nil, nil, err
				}
				// Populate the table through the real wire path: 64
				// ledger-opted decides settled by observes.
				for j := 0; j < 64; j++ {
					w := httptest.NewRecorder()
					body := fmt.Sprintf(`{"vehicle_id":"bench-%d","area":"chicago","seed":7,"ledger":true}`, j)
					req := httptest.NewRequest(http.MethodPost, "/v1/decide", strings.NewReader(body))
					req.Header.Set("Content-Type", "application/json")
					h.ServeHTTP(w, req)
					if w.Code != http.StatusOK {
						return nil, nil, fmt.Errorf("seed decide %d: status %d", j, w.Code)
					}
					var dec struct {
						DecisionID string `json:"decision_id"`
					}
					if err := json.Unmarshal(w.Body.Bytes(), &dec); err != nil || dec.DecisionID == "" {
						return nil, nil, fmt.Errorf("seed decide %d: no decision id", j)
					}
					if err := doRequest(h, "/v1/observe",
						fmt.Sprintf(`{"area":"chicago","stop_sec":%d,"decision_id":%q}`, 5+j%40, dec.DecisionID)); err != nil {
						return nil, nil, err
					}
				}
				return func(i int) error {
					return doGet(h, "/v1/cr")
				}, nil, nil
			},
		},
		{
			// The event-driven simulator over a fixed 500-stop trace
			// with the constrained policy.
			Name: "simulator_run", Class: "throughput", Iters: 300,
			Setup: func() (Op, func(), error) {
				st, err := chicagoStats()
				if err != nil {
					return nil, nil, err
				}
				pol, err := skirental.NewConstrained(suiteB, st)
				if err != nil {
					return nil, nil, err
				}
				// A deterministic trace cycling through short stops,
				// near-break-even stops and long stops.
				lengths := []float64{3, 9, 17, 26, 31, 48, 95, 310, 700}
				stops := make([]float64, 500)
				for i := range stops {
					stops[i] = lengths[i%len(lengths)]
				}
				cfg := simulator.Config{
					Costs:  costmodel.CostRatio{IdlingCentsPerSec: 1, RestartCents: suiteB},
					Policy: pol,
				}
				return func(i int) error {
					_, err := simulator.Run(cfg, stops, stats.NewRNG(suiteSeed+uint64(i)))
					return err
				}, nil, nil
			},
		},
	}
}

// chicagoStats measures the Chicago area's constrained pair at the
// suite operating point — the same derivation idled's default config
// serves.
func chicagoStats() (skirental.Stats, error) {
	areas, err := server.DefaultAreaStates(suiteB)
	if err != nil {
		return skirental.Stats{}, err
	}
	for _, a := range areas {
		if a.ID == "chicago" {
			return a.Stats(), nil
		}
	}
	return skirental.Stats{}, fmt.Errorf("no chicago in default areas")
}

// defaultCache builds the serving strategy cache over the default
// areas.
func defaultCache() (*server.Cache, error) {
	areas, err := server.DefaultAreaStates(suiteB)
	if err != nil {
		return nil, err
	}
	return server.NewCache(areas, nil)
}

// defaultHandler builds a full idled handler tree (no listener) over
// the default areas.
func defaultHandler() (http.Handler, error) {
	areas, err := server.DefaultAreaStates(suiteB)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(server.Config{Areas: areas})
	if err != nil {
		return nil, err
	}
	return srv.Handler(), nil
}

// doGet drives one GET through the handler tree in-process and checks
// for a 200.
func doGet(h http.Handler, path string) error {
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		return fmt.Errorf("%s: status %d: %s", path, w.Code, w.Body.String())
	}
	return nil
}

// doRequest drives one request through the handler tree in-process and
// checks for a 200.
func doRequest(h http.Handler, path, body string) error {
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		return fmt.Errorf("%s: status %d: %s", path, w.Code, w.Body.String())
	}
	return nil
}
