package perf

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"idlereduce/internal/textplot"
)

// CompareOptions set the regression tolerances. Tolerances are
// fractional (0.10 = 10%); on top of the relative bound every metric
// kind gets a small absolute slack so sub-microsecond benchmarks and
// near-zero allocation counts don't flap on measurement granularity.
type CompareOptions struct {
	// MaxRegress bounds time metrics (ns/op directly; p99 at 3x this
	// bound, see comparedMetrics). Default 0.10.
	MaxRegress float64
	// MaxAllocRegress bounds allocation metrics (allocs/op and B/op).
	// Default 0.05.
	MaxAllocRegress float64
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.MaxRegress <= 0 {
		o.MaxRegress = 0.10
	}
	if o.MaxAllocRegress <= 0 {
		o.MaxAllocRegress = 0.05
	}
	return o
}

// Verdict classifies one metric delta.
type Verdict string

const (
	VerdictPass      Verdict = "pass"
	VerdictImproved  Verdict = "improved"
	VerdictRegressed Verdict = "regressed"
	// VerdictMissing marks a baseline benchmark absent from the head
	// capture — treated as a regression, since silently dropping a
	// suite is how perf coverage rots.
	VerdictMissing Verdict = "missing"
)

// metricSpec describes one compared metric column.
type metricSpec struct {
	key       string  // JSON-ish metric key
	absSlack  float64 // absolute slack added on top of the relative bound
	limitMult float64 // multiplier on the relative tolerance (0 = 1)
	alloc     bool    // uses MaxAllocRegress instead of MaxRegress
}

// comparedMetrics are the per-benchmark metrics the gate inspects. The
// time slack (50 ns) is roughly the cost of one clock read — deltas
// below it are not measurable with this runner. The tail quantile is
// inherently the noisiest statistic (it is set by a handful of ops per
// run even after best-run selection, and for sub-microsecond ops a
// single descheduling blip lands in it), so p99 is gated at 3x the
// relative time tolerance plus a 5 us slack — one scheduler quantum of
// noise: it still catches a real tail blow-up on the serving paths
// while not flapping on jitter.
var comparedMetrics = []metricSpec{
	{key: "ns_per_op", absSlack: 50},
	{key: "p99_ns", absSlack: 5000, limitMult: 3},
	{key: "allocs_per_op", absSlack: 1, alloc: true},
	{key: "b_per_op", absSlack: 64, alloc: true},
}

// metricValue extracts a compared metric from a result.
func metricValue(r Result, key string) float64 {
	switch key {
	case "ns_per_op":
		return r.NsPerOp
	case "p99_ns":
		return r.P99Ns
	case "allocs_per_op":
		return r.AllocsPerOp
	case "b_per_op":
		return r.BytesPerOp
	}
	return math.NaN()
}

// MetricDelta is one compared metric of one benchmark. For time
// metrics Head is the speed-normalized value (divided by the
// comparison's SpeedRatio) when both captures carry a canary, so the
// delta column and the verdict always agree.
type MetricDelta struct {
	Bench  string  `json:"bench"`
	Metric string  `json:"metric"`
	Base   float64 `json:"base"`
	Head   float64 `json:"head"`
	// DeltaFrac is (head-base)/base; +Inf when base is zero and head
	// is not.
	DeltaFrac float64 `json:"delta_frac"`
	// LimitFrac is the tolerance applied (relative part only).
	LimitFrac float64 `json:"limit_frac"`
	Verdict   Verdict `json:"verdict"`
}

// Comparison is the machine-readable verdict of one base/head diff.
type Comparison struct {
	BaseSeq int `json:"base_seq"`
	HeadSeq int `json:"head_seq"`
	// SameMachine reports whether both captures carry an identical
	// machine stamp; cross-machine diffs are rendered with a warning.
	SameMachine bool `json:"same_machine"`
	// SpeedRatio is head canary / base canary when both captures carry
	// the speed canary (0 otherwise): how much slower the head machine
	// state is per CPU cycle of fixed work. Time metrics are divided
	// by it before tolerance checks, clamped to [1/canaryClamp,
	// canaryClamp] so a corrupted canary cannot mask an arbitrary
	// regression.
	SpeedRatio float64       `json:"speed_ratio,omitempty"`
	Deltas     []MetricDelta `json:"deltas"`
	// NewBenches lists head benchmarks with no baseline (informational).
	NewBenches []string `json:"new_benches,omitempty"`
	// Regressions counts deltas with verdict "regressed" or "missing".
	Regressions int `json:"regressions"`
}

// OK reports whether the gate passes.
func (c Comparison) OK() bool { return c.Regressions == 0 }

// Compare diffs two validated captures. Every baseline benchmark must
// exist in head; every compared metric must be inside its tolerance.
func Compare(base, head File, opts CompareOptions) (Comparison, error) {
	if err := base.Validate(); err != nil {
		return Comparison{}, fmt.Errorf("base: %w", err)
	}
	if err := head.Validate(); err != nil {
		return Comparison{}, fmt.Errorf("head: %w", err)
	}
	opts = opts.withDefaults()
	c := Comparison{
		BaseSeq:     base.Seq,
		HeadSeq:     head.Seq,
		SameMachine: base.Machine == head.Machine,
		SpeedRatio:  speedRatio(base, head),
	}
	for _, br := range base.Results {
		hr, ok := head.Result(br.Name)
		if !ok {
			c.Deltas = append(c.Deltas, MetricDelta{
				Bench: br.Name, Metric: "ns_per_op",
				Base: br.NsPerOp, Head: math.NaN(),
				DeltaFrac: math.NaN(), Verdict: VerdictMissing,
			})
			c.Regressions++
			continue
		}
		for _, spec := range comparedMetrics {
			d := compareMetric(br, hr, spec, c.SpeedRatio, opts)
			if d.Verdict == VerdictRegressed {
				c.Regressions++
			}
			c.Deltas = append(c.Deltas, d)
		}
	}
	for _, hr := range head.Results {
		if _, ok := base.Result(hr.Name); !ok {
			c.NewBenches = append(c.NewBenches, hr.Name)
		}
	}
	return c, nil
}

// canaryClamp bounds the speed-ratio correction: a canary more than 4x
// off is itself suspect, so normalization never scales time metrics
// beyond this factor in either direction.
const canaryClamp = 4.0

// speedRatio derives the head/base effective-CPU-speed ratio from the
// captures' canaries; 0 when either capture predates the canary.
func speedRatio(base, head File) float64 {
	if base.CanaryNsPerOp <= 0 || head.CanaryNsPerOp <= 0 {
		return 0
	}
	r := head.CanaryNsPerOp / base.CanaryNsPerOp
	return math.Min(math.Max(r, 1/canaryClamp), canaryClamp)
}

// compareMetric classifies one metric pair against its tolerance. Time
// metrics are normalized by the speed ratio (when available) before
// the tolerance check: the gate asks "did the code get slower relative
// to this machine state", not "is this machine state slower".
func compareMetric(base, head Result, spec metricSpec, ratio float64, opts CompareOptions) MetricDelta {
	limit := opts.MaxRegress
	if spec.alloc {
		limit = opts.MaxAllocRegress
	}
	if spec.limitMult > 0 {
		limit *= spec.limitMult
	}
	b := metricValue(base, spec.key)
	h := metricValue(head, spec.key)
	if !spec.alloc && ratio > 0 {
		h /= ratio
	}
	d := MetricDelta{
		Bench: base.Name, Metric: spec.key,
		Base: b, Head: h, LimitFrac: limit, Verdict: VerdictPass,
	}
	switch {
	case b == 0 && h == 0:
		d.DeltaFrac = 0
	case b == 0:
		d.DeltaFrac = math.Inf(1)
	default:
		d.DeltaFrac = (h - b) / b
	}
	switch {
	case h > b*(1+limit)+spec.absSlack:
		d.Verdict = VerdictRegressed
	case h < b*(1-limit)-spec.absSlack:
		d.Verdict = VerdictImproved
	}
	return d
}

// String renders the comparison as the human gate output: one row per
// benchmark metric with the delta and verdict, then the summary line.
func (c Comparison) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "bench compare: base seq %d vs head seq %d\n", c.BaseSeq, c.HeadSeq)
	if !c.SameMachine {
		sb.WriteString("warning: captures come from different machines/toolchains; deltas include hardware noise\n")
	}
	switch {
	case c.SpeedRatio == 0:
		sb.WriteString("note: no speed canary on one side; time metrics are unnormalized\n")
	case c.SpeedRatio != 1:
		fmt.Fprintf(&sb, "speed canary: head machine state %.2fx base; time metrics normalized\n", c.SpeedRatio)
	}
	rows := [][]string{{"benchmark", "metric", "base", "head", "delta", "verdict"}}
	for _, d := range c.Deltas {
		// Keep the table focused: always show regressions, misses and
		// improvements; show passes only for the headline metric.
		if d.Verdict == VerdictPass && d.Metric != "ns_per_op" {
			continue
		}
		rows = append(rows, []string{
			d.Bench, d.Metric,
			formatMetric(d.Metric, d.Base),
			formatMetric(d.Metric, d.Head),
			formatDelta(d.DeltaFrac),
			string(d.Verdict),
		})
	}
	sb.WriteString(textplot.Table(rows))
	if c.Regressions > 0 {
		fmt.Fprintf(&sb, "FAIL: %d metric(s) regressed beyond tolerance\n", c.Regressions)
	} else {
		fmt.Fprintf(&sb, "ok: no regressions beyond tolerance (%d metrics compared)\n", len(c.Deltas))
	}
	if len(c.NewBenches) > 0 {
		fmt.Fprintf(&sb, "new benchmarks (no baseline yet): %s\n", strings.Join(c.NewBenches, ", "))
	}
	return sb.String()
}

// formatMetric renders a metric value with its natural unit.
func formatMetric(key string, v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	switch key {
	case "ns_per_op", "p99_ns":
		switch {
		case v >= 1e6:
			return fmt.Sprintf("%.2fms", v/1e6)
		case v >= 1e3:
			return fmt.Sprintf("%.1fus", v/1e3)
		default:
			return fmt.Sprintf("%.0fns", v)
		}
	case "allocs_per_op":
		return strconv.FormatFloat(v, 'f', 1, 64)
	case "b_per_op":
		return fmt.Sprintf("%.0fB", v)
	}
	return strconv.FormatFloat(v, 'g', 4, 64)
}

// formatDelta renders a fractional delta as a signed percentage.
func formatDelta(frac float64) string {
	switch {
	case math.IsNaN(frac):
		return "-"
	case math.IsInf(frac, 1):
		return "+inf"
	default:
		return fmt.Sprintf("%+.1f%%", 100*frac)
	}
}

// ParseTolerance parses a human tolerance flag: "10%" and "10" mean
// ten percent, "0.1" means the fraction 0.1 (also ten percent). Values
// above 1 without a '%' are read as percentages, so both spellings of
// the CI flag work.
func ParseTolerance(s string) (float64, error) {
	s = strings.TrimSpace(s)
	percent := strings.HasSuffix(s, "%")
	s = strings.TrimSuffix(s, "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("perf: tolerance %q: %w", s, err)
	}
	if percent || v > 1 {
		v /= 100
	}
	if v <= 0 || math.IsNaN(v) || v > 10 {
		return 0, fmt.Errorf("perf: tolerance %v out of range (0, 1000%%]", v)
	}
	return v, nil
}
