package perf

import (
	"bytes"
	"errors"
	"os"
	"strings"
	"testing"
)

// writeRaw drops raw bytes at path (for corrupt-file fixtures).
func writeRaw(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}

// sampleFile builds a minimal valid capture for IO tests.
func sampleFile() File {
	return File{
		SchemaVersion: SchemaVersion,
		Seq:           6,
		CreatedUnixMs: 1754600000000,
		Machine:       CurrentMachine(),
		Results: []Result{
			{Name: "decide_single", Class: "latency", Iters: 100, Runs: 3, Ops: 300,
				NsPerOp: 20000, AllocsPerOp: 40, BytesPerOp: 4096,
				P50Ns: 18000, P95Ns: 30000, P99Ns: 45000, MaxNs: 90000},
			{Name: "cache_hit", Class: "cpu", Iters: 1000, Runs: 3, Ops: 3000,
				NsPerOp: 150, AllocsPerOp: 0, BytesPerOp: 0,
				P50Ns: 140, P95Ns: 200, P99Ns: 300, MaxNs: 1000},
		},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != f.Seq || len(got.Results) != len(f.Results) {
		t.Fatalf("round trip mangled the capture: %+v", got)
	}
	r, ok := got.Result("cache_hit")
	if !ok || r.NsPerOp != 150 {
		t.Fatalf("lookup after round trip: %+v ok=%v", r, ok)
	}
}

func TestReadRejectsSchemaMismatch(t *testing.T) {
	f := sampleFile()
	f.SchemaVersion = SchemaVersion + 1
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	_, err := Read(&buf)
	if !errors.Is(err, ErrSchemaVersion) {
		t.Fatalf("want ErrSchemaVersion, got %v", err)
	}
}

func TestReadRejectsCorruptAndTruncated(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()
	for name, data := range map[string][]byte{
		"truncated":   whole[:len(whole)/2],
		"empty":       nil,
		"not json":    []byte("ns/op went up, sorry"),
		"wrong shape": []byte(`{"schema_version":1,"results":"nope"}`),
	} {
		if _, err := ReadBytes(data); err == nil {
			t.Errorf("%s: corrupt capture was accepted", name)
		}
	}
}

func TestValidateRejectsBadResults(t *testing.T) {
	for name, mutate := range map[string]func(*File){
		"no results":     func(f *File) { f.Results = nil },
		"empty name":     func(f *File) { f.Results[0].Name = "" },
		"duplicate name": func(f *File) { f.Results[1].Name = f.Results[0].Name },
		"zero ns/op":     func(f *File) { f.Results[0].NsPerOp = 0 },
		"zero ops":       func(f *File) { f.Results[0].Ops = 0 },
	} {
		f := sampleFile()
		mutate(&f)
		if err := f.Validate(); err == nil {
			t.Errorf("%s: invalid capture validated", name)
		}
	}
}

func TestIsCapture(t *testing.T) {
	f := sampleFile()
	var buf bytes.Buffer
	if err := f.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !IsCapture(buf.Bytes()) {
		t.Error("capture not recognized")
	}
	// An obs metrics snapshot has no schema_version.
	snap := `{"taken_at_unix_ms": 1, "counters": [], "gauges": [], "histograms": []}`
	if IsCapture([]byte(snap)) {
		t.Error("obs snapshot misrecognized as a capture")
	}
	if IsCapture([]byte("garbage")) {
		t.Error("garbage misrecognized as a capture")
	}
}

func TestWriteFileReadFile(t *testing.T) {
	path := t.TempDir() + "/BENCH_0006.json"
	f := sampleFile()
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 6 {
		t.Fatalf("seq = %d", got.Seq)
	}
	if _, err := ReadFile(path + ".missing"); err == nil {
		t.Error("missing file read succeeded")
	}
	// A path error must name the file so CI logs point at the artifact.
	bad := t.TempDir() + "/BENCH_bad.json"
	if err := writeRaw(bad, `{"schema_version":`); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil || !strings.Contains(err.Error(), "BENCH_bad.json") {
		t.Errorf("corrupt file error should carry the path, got %v", err)
	}
}
