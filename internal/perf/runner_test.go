package perf

import (
	"fmt"
	"strings"
	"testing"
)

// countingBench counts op invocations and records the indices it saw.
func countingBench(name string, iters int, calls *[]int) Benchmark {
	return Benchmark{
		Name: name, Class: "cpu", Iters: iters,
		Setup: func() (Op, func(), error) {
			return func(i int) error {
				*calls = append(*calls, i)
				return nil
			}, nil, nil
		},
	}
}

func TestRunMeasuresAndAggregates(t *testing.T) {
	var calls []int
	f, err := Run([]Benchmark{countingBench("count", 8, &calls)}, Options{Runs: 2, Seq: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("capture invalid: %v", err)
	}
	if f.Seq != 7 || f.SchemaVersion != SchemaVersion {
		t.Fatalf("header: %+v", f)
	}
	if f.Machine.GoVersion == "" || f.Machine.NumCPU <= 0 {
		t.Fatalf("machine stamp missing: %+v", f.Machine)
	}
	r, ok := f.Result("count")
	if !ok {
		t.Fatal("result missing")
	}
	// 8 iters, warmup 2, 2 measured runs: 2 + 16 calls total.
	if len(calls) != 18 {
		t.Fatalf("op called %d times, want 18", len(calls))
	}
	for i, c := range calls {
		if c != i {
			t.Fatalf("op index %d = %d; indices must increase monotonically", i, c)
		}
	}
	if r.Ops != 16 || r.Iters != 8 || r.Runs != 2 {
		t.Fatalf("counts: %+v", r)
	}
	if r.NsPerOp <= 0 {
		t.Fatalf("ns/op = %v", r.NsPerOp)
	}
	if !(r.P50Ns <= r.P95Ns && r.P95Ns <= r.P99Ns && r.P99Ns <= r.MaxNs) {
		t.Fatalf("quantiles out of order: %+v", r)
	}
}

func TestRunPropagatesOpErrors(t *testing.T) {
	boom := Benchmark{
		Name: "boom", Class: "cpu", Iters: 4,
		Setup: func() (Op, func(), error) {
			return func(i int) error {
				if i >= 2 {
					return fmt.Errorf("op exploded")
				}
				return nil
			}, nil, nil
		},
	}
	if _, err := Run([]Benchmark{boom}, Options{Runs: 1}); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want wrapped op error, got %v", err)
	}
}

func TestRunPropagatesSetupErrors(t *testing.T) {
	bad := Benchmark{
		Name: "bad_setup", Class: "cpu", Iters: 4,
		Setup: func() (Op, func(), error) {
			return nil, nil, fmt.Errorf("no fixtures")
		},
	}
	if _, err := Run([]Benchmark{bad}, Options{Runs: 1}); err == nil || !strings.Contains(err.Error(), "no fixtures") {
		t.Fatalf("want setup error, got %v", err)
	}
}

func TestRunCleanupRuns(t *testing.T) {
	cleaned := false
	b := Benchmark{
		Name: "clean", Class: "cpu", Iters: 2,
		Setup: func() (Op, func(), error) {
			return func(int) error { return nil }, func() { cleaned = true }, nil
		},
	}
	if _, err := Run([]Benchmark{b}, Options{Runs: 1}); err != nil {
		t.Fatal(err)
	}
	if !cleaned {
		t.Error("cleanup not called")
	}
}

func TestRunFilterAndScale(t *testing.T) {
	var a, b []int
	benches := []Benchmark{
		countingBench("decide_single", 100, &a),
		countingBench("fleet_generate", 100, &b),
	}
	f, err := Run(benches, Options{Runs: 1, Scale: 0.1, Filter: "decide"})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Results) != 1 || f.Results[0].Name != "decide_single" {
		t.Fatalf("filter kept %+v", f.Results)
	}
	if f.Results[0].Iters != 10 {
		t.Fatalf("scale 0.1 gave %d iters, want 10", f.Results[0].Iters)
	}
	if len(b) != 0 {
		t.Error("filtered-out benchmark still ran")
	}
	if _, err := Run(benches, Options{Runs: 1, Filter: "no_such"}); err == nil {
		t.Error("empty filter result should error")
	}
}

func TestRunRejectsInvalidDefinitions(t *testing.T) {
	for _, bad := range []Benchmark{
		{Name: "", Iters: 1, Setup: func() (Op, func(), error) { return func(int) error { return nil }, nil, nil }},
		{Name: "no_setup", Iters: 1},
		{Name: "no_iters", Iters: 0, Setup: func() (Op, func(), error) { return func(int) error { return nil }, nil, nil }},
	} {
		if _, err := Run([]Benchmark{bad}, Options{Runs: 1}); err == nil {
			t.Errorf("invalid benchmark %q accepted", bad.Name)
		}
	}
}
