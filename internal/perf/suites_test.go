package perf

import (
	"testing"
)

// TestDefaultSuitesCaptureAndSelfCompare runs the committed suites at
// a tiny scale and proves the full pipeline: every suite produces a
// valid result, the capture round-trips, and comparing a capture
// against itself is a clean pass (the acceptance property of the
// trajectory workflow).
func TestDefaultSuitesCaptureAndSelfCompare(t *testing.T) {
	if testing.Short() {
		t.Skip("capture smoke is not -short")
	}
	f, err := Capture(Options{Runs: 1, Scale: 0.02, Seq: 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("capture invalid: %v", err)
	}
	want := []string{
		"strategy_derive", "cache_hit", "cache_update",
		"decide_single", "decide_custom_b", "decide_batch_64",
		"multislope_prepare", "decide_multislope",
		"observe_stream", "shard_decide",
		"decide_softml", "frontier_sweep",
		"ledger_settle", "cr_snapshot",
		"fleet_generate", "simulator_run",
	}
	if len(f.Results) != len(want) {
		t.Fatalf("got %d results, want %d: %+v", len(f.Results), len(want), f.Results)
	}
	for _, name := range want {
		r, ok := f.Result(name)
		if !ok {
			t.Errorf("suite %s missing from capture", name)
			continue
		}
		if r.NsPerOp <= 0 || r.Ops == 0 || r.Class == "" {
			t.Errorf("suite %s not measured: %+v", name, r)
		}
	}

	// Round trip through the committed-file path.
	path := t.TempDir() + "/BENCH_0006.json"
	if err := f.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Self-compare must gate clean: zero regressions, all passes.
	c, err := Compare(back, back, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.OK() {
		t.Fatalf("self-compare of a real capture regressed:\n%s", c.String())
	}
}

// TestSuiteNamesAreStable pins the compare keys: renaming a suite
// breaks every committed baseline, so a rename must be a conscious
// schema decision, not a refactor side effect.
func TestSuiteNamesAreStable(t *testing.T) {
	want := map[string]string{
		"strategy_derive":    "cpu",
		"cache_hit":          "cpu",
		"cache_update":       "cpu",
		"decide_single":      "latency",
		"decide_custom_b":    "latency",
		"decide_batch_64":    "latency",
		"multislope_prepare": "cpu",
		"decide_multislope":  "latency",
		"observe_stream":     "latency",
		"shard_decide":       "cpu",
		"decide_softml":      "latency",
		"frontier_sweep":     "throughput",
		"ledger_settle":      "cpu",
		"cr_snapshot":        "latency",
		"fleet_generate":     "throughput",
		"simulator_run":      "throughput",
	}
	suites := DefaultSuites()
	if len(suites) != len(want) {
		t.Fatalf("%d suites, want %d", len(suites), len(want))
	}
	for _, s := range suites {
		class, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected suite %q (new suites are fine — add them to this pin)", s.Name)
			continue
		}
		if s.Class != class {
			t.Errorf("suite %s class = %q, want %q", s.Name, s.Class, class)
		}
		if s.Iters <= 0 || s.Setup == nil {
			t.Errorf("suite %s underspecified", s.Name)
		}
	}
}
