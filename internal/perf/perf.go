// Package perf is the repo's performance-observability plane: it
// captures structured benchmark results into a versioned BENCH_*.json
// trajectory file and compares two captures with noise-aware
// regression gating, so the cost-efficiency claims of the serving
// stack are measured, committed per PR, and defended in CI rather than
// asserted.
//
// The pieces:
//
//   - Benchmark / Run (runner.go): a deterministic fixed-seed,
//     fixed-iteration benchmark executor with warmup and min-of-N run
//     aggregation, recording ns/op, B/op, allocs/op and the per-op
//     latency quantiles (p50/p95/p99) from an obs streaming histogram.
//   - DefaultSuites (suites.go): the committed suites over the serving
//     hot path — strategy derivation, cache hit and update, single and
//     batch HTTP decide, fleet generation, simulator throughput.
//   - Compare (compare.go): per-metric deltas between a base and head
//     capture with per-metric-class tolerances, a human table and a
//     machine verdict; CI fails the build when any metric regresses.
//
// The file schema is versioned (SchemaVersion); readers reject unknown
// versions so a trajectory never silently mixes incompatible captures.
// See docs/BENCHMARKS.md for the capture/compare workflow and how to
// bless a new baseline.
package perf

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
)

// SchemaVersion is the BENCH_*.json schema generation. Bump it when a
// field changes meaning; Read rejects files from other generations so
// compare never diffs incompatible captures.
const SchemaVersion = 1

// ErrSchemaVersion reports a capture written by a different schema
// generation.
var ErrSchemaVersion = errors.New("perf: schema version mismatch")

// Machine records where a capture was taken. Comparisons across
// different machines are legitimate but noisier; the compare output
// surfaces both sides so a cross-machine diff is never mistaken for a
// same-machine one.
type Machine struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Revision/VCSTime/VCSModified are the build's VCS stamp when the
	// binary was built inside a checkout (best effort).
	Revision    string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

// CurrentMachine stamps the running process's environment.
func CurrentMachine() Machine {
	m := Machine{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				m.Revision = s.Value
			case "vcs.time":
				m.VCSTime = s.Value
			case "vcs.modified":
				m.VCSModified = s.Value == "true"
			}
		}
	}
	return m
}

// Result is one benchmark's aggregated capture: min-of-N wall-clock
// and allocation rates plus the pooled per-op latency distribution.
type Result struct {
	// Name identifies the benchmark across captures (the compare key).
	Name string `json:"name"`
	// Class groups metrics for tolerance selection: "latency" (full
	// request paths), "cpu" (pure computation), "throughput" (bulk
	// work per op).
	Class string `json:"class"`
	// Iters is ops per measured run; Runs is the number of measured
	// runs aggregated (min-of-N); Ops is the total measured op count.
	Iters int    `json:"iters_per_run"`
	Runs  int    `json:"runs"`
	Ops   uint64 `json:"ops"`
	// NsPerOp is the best (minimum) run's mean wall time per op.
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp / BytesPerOp are the best run's heap allocation
	// rates from runtime.MemStats deltas.
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"b_per_op"`
	// P50Ns/P95Ns/P99Ns/MaxNs summarize the per-op latency
	// distribution of the best (fastest-mean) measured run, so the
	// tail metrics get the same min-of-N noise filter as NsPerOp.
	P50Ns float64 `json:"p50_ns"`
	P95Ns float64 `json:"p95_ns"`
	P99Ns float64 `json:"p99_ns"`
	MaxNs float64 `json:"max_ns"`
}

// File is one committed trajectory point (a BENCH_<seq>.json).
type File struct {
	SchemaVersion int `json:"schema_version"`
	// Seq orders captures in the trajectory (the NNNN in the filename;
	// 0 when the capture is not committed).
	Seq int `json:"seq"`
	// CreatedUnixMs is the capture wall-clock time.
	CreatedUnixMs int64   `json:"created_unix_ms"`
	Machine       Machine `json:"machine"`
	// CanaryNsPerOp is the speed canary: the measured cost of a fixed
	// pure-CPU spin loop on this machine at capture time. Compare uses
	// the base/head canary ratio to normalize time metrics, so a
	// slower (or throttled, or noisier-neighbored) machine state does
	// not read as a code regression — a real regression changes the
	// metric relative to the canary. Zero in captures predating the
	// canary; such comparisons are unnormalized.
	CanaryNsPerOp float64  `json:"canary_ns_per_op,omitempty"`
	Results       []Result `json:"results"`
}

// Result looks up a benchmark by name.
func (f File) Result(name string) (Result, bool) {
	for _, r := range f.Results {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// Validate checks structural integrity: the schema generation, a
// non-empty result set and usable metric values.
func (f File) Validate() error {
	if f.SchemaVersion != SchemaVersion {
		return fmt.Errorf("%w: file has schema_version %d, this tool reads %d",
			ErrSchemaVersion, f.SchemaVersion, SchemaVersion)
	}
	if len(f.Results) == 0 {
		return fmt.Errorf("perf: capture has no results")
	}
	seen := make(map[string]bool, len(f.Results))
	for _, r := range f.Results {
		if r.Name == "" {
			return fmt.Errorf("perf: capture has a result with an empty name")
		}
		if seen[r.Name] {
			return fmt.Errorf("perf: duplicate result %q", r.Name)
		}
		seen[r.Name] = true
		if r.NsPerOp <= 0 || r.Ops == 0 {
			return fmt.Errorf("perf: result %q has no measurements (ns_per_op %v, ops %d)",
				r.Name, r.NsPerOp, r.Ops)
		}
	}
	return nil
}

// Write renders the capture as indented JSON.
func (f File) Write(w io.Writer) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// WriteFile writes the capture to path.
func (f File) WriteFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.Write(out); err != nil {
		out.Close()
		return err
	}
	return out.Close()
}

// Read parses and validates one capture. Truncated or corrupt JSON and
// schema-generation mismatches are errors, so a damaged trajectory
// file can never silently pass a gate.
func Read(r io.Reader) (File, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return File{}, fmt.Errorf("perf: read capture: %w", err)
	}
	return ReadBytes(data)
}

// ReadBytes parses and validates one capture from memory.
func ReadBytes(data []byte) (File, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return File{}, fmt.Errorf("perf: decode capture (corrupt or truncated): %w", err)
	}
	if err := f.Validate(); err != nil {
		return File{}, err
	}
	return f, nil
}

// ReadFile reads and validates the capture at path.
func ReadFile(path string) (File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return File{}, err
	}
	f, err := ReadBytes(data)
	if err != nil {
		return File{}, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// IsCapture reports whether data looks like a perf capture (as opposed
// to an obs metrics snapshot): a JSON object carrying a positive
// schema_version. It never errors — a false return just means "treat
// it as something else".
func IsCapture(data []byte) bool {
	var probe struct {
		SchemaVersion int `json:"schema_version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return false
	}
	return probe.SchemaVersion > 0
}
