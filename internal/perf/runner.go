package perf

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"idlereduce/internal/obs"
)

// Op executes one benchmark operation. i is a globally increasing op
// index (monotone across warmup and runs) so an op can vary its input
// deterministically — e.g. derive a fresh RNG stream per op — without
// any wall-clock or global randomness.
type Op func(i int) error

// Benchmark is one registered suite entry: a named, classed, setup-op
// pair the runner measures with fixed iteration counts.
type Benchmark struct {
	// Name is the stable compare key (lower_snake by convention).
	Name string
	// Class selects the compare tolerance family ("latency", "cpu",
	// "throughput").
	Class string
	// Iters is the number of ops per measured run (scaled by
	// Options.Scale). Warmup ops before measurement default to
	// Iters/4 (min 1).
	Iters int
	// Setup builds the op and an optional cleanup. Setup cost is not
	// measured.
	Setup func() (op Op, cleanup func(), err error)
}

// Options parameterize a capture.
type Options struct {
	// Runs is the number of measured runs per benchmark; the reported
	// ns/op, allocs/op and B/op are the minimum across runs, and the
	// latency quantiles come from the fastest run (the standard noise
	// filter: external interference only ever slows a run down).
	// Default 3.
	Runs int
	// Scale multiplies every benchmark's Iters (and warmup), so CI can
	// run a cheaper capture and local blessing a thorough one.
	// Default 1.0.
	Scale float64
	// Seq stamps File.Seq (the trajectory position; 0 for ad-hoc
	// captures).
	Seq int
	// Filter keeps only benchmarks whose name contains the substring
	// (empty keeps all).
	Filter string
	// Logf, when set, receives one progress line per benchmark.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Runs <= 0 {
		o.Runs = 3
	}
	if o.Scale <= 0 {
		o.Scale = 1
	}
	return o
}

// Run executes the benchmarks and assembles the capture. Every
// benchmark is set up and warmed first; then the measured runs proceed
// in interleaved rounds — round 0 of every benchmark, round 1 of every
// benchmark, and so on — so one benchmark's Runs samples are spread
// across the whole capture's wall-clock rather than packed into one
// short window. With min-of-N aggregation that matters: external
// interference (CPU steal, noisy neighbors) arrives in bursts lasting
// longer than a single benchmark's back-to-back runs, and interleaving
// gives every benchmark a chance to land at least one run in a quiet
// phase. Each run is bracketed by runtime.MemStats reads for the
// allocation rates; every op's wall time feeds a per-run obs streaming
// histogram and the reported latency quantiles come from the best run
// (min-of-N, same as ns/op).
func Run(benchmarks []Benchmark, opts Options) (File, error) {
	opts = opts.withDefaults()
	f := File{
		SchemaVersion: SchemaVersion,
		Seq:           opts.Seq,
		CreatedUnixMs: time.Now().UnixMilli(),
		Machine:       CurrentMachine(),
		CanaryNsPerOp: MeasureCanary(),
	}
	var states []*benchState
	defer func() {
		for _, st := range states {
			if st.cleanup != nil {
				st.cleanup()
			}
		}
	}()
	for _, b := range benchmarks {
		if opts.Filter != "" && !strings.Contains(b.Name, opts.Filter) {
			continue
		}
		st, err := newBenchState(b, opts)
		if err != nil {
			return File{}, fmt.Errorf("perf: %s: %w", b.Name, err)
		}
		states = append(states, st)
	}
	if len(states) == 0 {
		return File{}, fmt.Errorf("perf: no benchmarks matched filter %q", opts.Filter)
	}
	for run := 0; run < opts.Runs; run++ {
		for _, st := range states {
			if err := st.measure(run); err != nil {
				return File{}, fmt.Errorf("perf: %s: %w", st.b.Name, err)
			}
		}
	}
	for _, st := range states {
		res := st.finalize()
		f.Results = append(f.Results, res)
		if opts.Logf != nil {
			opts.Logf("%-24s %10.0f ns/op %8.1f allocs/op %10.0f B/op  p99 %.0f ns",
				res.Name, res.NsPerOp, res.AllocsPerOp, res.BytesPerOp, res.P99Ns)
		}
	}
	return f, nil
}

// benchState is one benchmark's live measurement state across the
// interleaved rounds.
type benchState struct {
	b       Benchmark
	op      Op
	cleanup func()
	iters   int
	next    int // monotone op index across warmup and all runs
	res     Result
	best    *obs.Histogram // latency histogram of the fastest run
}

// newBenchState validates the definition, runs setup and the warmup.
func newBenchState(b Benchmark, opts Options) (*benchState, error) {
	if b.Name == "" || b.Setup == nil || b.Iters <= 0 {
		return nil, fmt.Errorf("invalid benchmark definition (name %q, iters %d)", b.Name, b.Iters)
	}
	iters := int(float64(b.Iters) * opts.Scale)
	if iters < 1 {
		iters = 1
	}
	warmup := iters / 4
	if warmup < 1 {
		warmup = 1
	}
	op, cleanup, err := b.Setup()
	if err != nil {
		return nil, fmt.Errorf("setup: %w", err)
	}
	st := &benchState{
		b: b, op: op, cleanup: cleanup, iters: iters,
		res: Result{Name: b.Name, Class: b.Class, Iters: iters, Runs: opts.Runs},
	}
	for ; st.next < warmup; st.next++ {
		if err := op(st.next); err != nil {
			if cleanup != nil {
				cleanup()
			}
			return nil, fmt.Errorf("warmup op %d: %w", st.next, err)
		}
	}
	return st, nil
}

// measure executes one measured run and folds it into the min-of-N
// aggregates.
func (st *benchState) measure(run int) error {
	hist := obs.NewRegistry().Histogram("op_ns")
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	for i := 0; i < st.iters; i++ {
		t0 := time.Now()
		if err := st.op(st.next); err != nil {
			return fmt.Errorf("run %d op %d: %w", run, st.next, err)
		}
		st.next++
		hist.Observe(float64(time.Since(t0).Nanoseconds()))
	}
	total := time.Since(start)
	runtime.ReadMemStats(&ms1)

	nsPerOp := float64(total.Nanoseconds()) / float64(st.iters)
	allocsPerOp := float64(ms1.Mallocs-ms0.Mallocs) / float64(st.iters)
	bytesPerOp := float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(st.iters)
	if run == 0 || nsPerOp < st.res.NsPerOp {
		st.res.NsPerOp = nsPerOp
		st.best = hist
	}
	if run == 0 || allocsPerOp < st.res.AllocsPerOp {
		st.res.AllocsPerOp = allocsPerOp
	}
	if run == 0 || bytesPerOp < st.res.BytesPerOp {
		st.res.BytesPerOp = bytesPerOp
	}
	st.res.Ops += uint64(st.iters)
	return nil
}

// finalize stamps the best run's latency quantiles into the result.
func (st *benchState) finalize() Result {
	st.res.P50Ns = st.best.Quantile(0.50)
	st.res.P95Ns = st.best.Quantile(0.95)
	st.res.P99Ns = st.best.Quantile(0.99)
	st.res.MaxNs = st.best.Quantile(1)
	return st.res
}

// canaryIters is the spin-loop length of one canary op: long enough
// to amortize timer reads, short enough that min-of-many reps lands
// between scheduler interruptions.
const canaryIters = 1 << 15

// canarySpin is the fixed pure-CPU workload (an xorshift64 chain; the
// returned value prevents the loop from being optimized away). It
// allocates nothing and touches no memory beyond registers, so its
// wall time tracks effective CPU speed — frequency scaling, CPU steal,
// noisy neighbors — and nothing else.
func canarySpin() uint64 {
	x := uint64(0x9E3779B97F4A7C15)
	for i := 0; i < canaryIters; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
	}
	return x
}

var canarySink uint64

// MeasureCanary measures the speed canary: the MEAN wall time per spin
// step over a ~100 ms spinning window (not the minimum — the canary
// must absorb the same CPU steal, descheduling and frequency effects
// the benchmarks absorb, and a minimum would dodge exactly the
// interference it exists to measure). The window is long relative to
// scheduler quanta, so the mean tracks the machine's current effective
// throughput.
func MeasureCanary() float64 {
	const window = 100 * time.Millisecond
	var steps uint64
	start := time.Now()
	for time.Since(start) < window {
		canarySink += canarySpin()
		steps += canaryIters
	}
	return float64(time.Since(start).Nanoseconds()) / float64(steps)
}

// Capture runs the default suites — the one-call entry point the CLI
// and the committed-baseline workflow use.
func Capture(opts Options) (File, error) {
	return Run(DefaultSuites(), opts)
}
