package perf

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idlereduce/internal/server"
)

func writeTempFile(path, body string) error {
	return os.WriteFile(path, []byte(body), 0o644)
}

func smallScenario() LoadScenario {
	return LoadScenario{
		Areas:           500,
		Clients:         2,
		Requests:        20,
		Batch:           8,
		ObserveFraction: 0.5,
		MissFraction:    0.1,
		Seed:            suiteSeed,
	}
}

func TestLoadScenarioValidate(t *testing.T) {
	if err := DefaultLoadScenario().Validate(); err != nil {
		t.Fatalf("default scenario invalid: %v", err)
	}
	bad := []LoadScenario{
		{},
		{Areas: 1, Clients: 1, Requests: 1, Batch: 0},
		{Areas: 1, Clients: 1, Requests: 1, Batch: 1, ObserveFraction: 1},
		{Areas: 1, Clients: 1, Requests: 1, Batch: 1, MissFraction: -0.1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid scenario accepted: %+v", i, s)
		}
	}
}

// TestLoadGateBlessThenPass is the gate's self-consistency contract: a
// freshly blessed baseline must pass its own gate, through the same
// file roundtrip the CI job uses.
func TestLoadGateBlessThenPass(t *testing.T) {
	scn := smallScenario()
	rep, err := RunLoadScenario(context.Background(), scn)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Observations == 0 {
		t.Fatalf("scenario run unusable: %+v", rep)
	}
	base := NewLoadBaseline(scn, rep)
	path := filepath.Join(t.TempDir(), "LOADTEST_BASELINE.json")
	if err := base.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	read, err := ReadLoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if read.Scenario != scn {
		t.Fatalf("baseline roundtripped scenario %+v, want %+v", read.Scenario, scn)
	}
	res := GateLoad(read, rep, read.CanaryNsPerOp)
	if !res.OK {
		t.Fatalf("blessed run fails its own gate: %s", res)
	}
	if !strings.Contains(res.String(), "PASS") {
		t.Errorf("summary %q lacks verdict", res.String())
	}
}

// TestGateLoadFailureModes drives each gated regression through the
// pure comparator.
func TestGateLoadFailureModes(t *testing.T) {
	base := LoadBaseline{
		SchemaVersion: SchemaVersion,
		CanaryNsPerOp: 100,
		Scenario:      smallScenario(),
		P99Ms:         20,
		CacheHitRate:  0.95,
		Alarms:        4,
		Retunes:       2,
	}
	good := server.LoadReport{
		Requests: 40, Decisions: 160, Observations: 160,
		P99: 22, CacheHitRate: 0.95, Alarms: 3, Retunes: 1,
	}
	if res := GateLoad(base, good, 100); !res.OK {
		t.Fatalf("healthy run failed: %s", res)
	}

	cases := map[string]func(*server.LoadReport){
		"errors":     func(r *server.LoadReport) { r.Errors = 1 },
		"overload":   func(r *server.LoadReport) { r.Overloaded = 3 },
		"p99":        func(r *server.LoadReport) { r.P99 = base.P99Ms*(1+loadP99Tolerance) + loadP99FloorMs + 1 },
		"hit_rate":   func(r *server.LoadReport) { r.CacheHitRate = base.CacheHitRate - loadHitRateMargin - 0.001 },
		"no_observe": func(r *server.LoadReport) { r.Observations = 0 },
		"no_alarms":  func(r *server.LoadReport) { r.Alarms = 0 },
		"no_retunes": func(r *server.LoadReport) { r.Retunes = 0 },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			rep := good
			mutate(&rep)
			res := GateLoad(base, rep, 100)
			if res.OK {
				t.Fatalf("regression %s passed the gate", name)
			}
			if len(res.Failures) == 0 {
				t.Fatal("failing result carries no failure detail")
			}
		})
	}

	// Canary normalization: the same p99 on a machine measured 2x
	// slower is inside the widened allowance.
	slow := good
	slow.P99 = base.P99Ms * 2
	if res := GateLoad(base, slow, 200); !res.OK {
		t.Fatalf("normalized slow-machine run failed: %s", res)
	}
	if res := GateLoad(base, slow, 0); res.SpeedRatio != 0 {
		t.Errorf("missing canary still reported ratio %v", res.SpeedRatio)
	}
}

func TestReadLoadBaselineFailsClosed(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadLoadBaseline(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing baseline accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	for name, body := range map[string]string{
		"garbage":   "{not json",
		"schema":    `{"schema_version":99,"scenario":{"areas":1,"clients":1,"requests":1,"batch":1},"p99_ms":1,"cache_hit_rate":0.5}`,
		"no_p99":    `{"schema_version":1,"scenario":{"areas":1,"clients":1,"requests":1,"batch":1},"p99_ms":0,"cache_hit_rate":0.5}`,
		"bad_scene": `{"schema_version":1,"scenario":{"areas":0,"clients":0,"requests":0,"batch":0},"p99_ms":1,"cache_hit_rate":0.5}`,
	} {
		if err := writeTempFile(bad, body); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadLoadBaseline(bad); err == nil {
			t.Errorf("%s baseline accepted", name)
		}
	}
}
