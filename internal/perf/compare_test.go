package perf

import (
	"math"
	"strings"
	"testing"
)

// baseCapture is the baseline the compare table tests perturb.
func baseCapture() File {
	return File{
		SchemaVersion: SchemaVersion,
		Seq:           5,
		Machine:       CurrentMachine(),
		Results: []Result{
			{Name: "decide_single", Class: "latency", Iters: 100, Runs: 3, Ops: 300,
				NsPerOp: 20000, AllocsPerOp: 40, BytesPerOp: 4096,
				P50Ns: 18000, P95Ns: 30000, P99Ns: 45000, MaxNs: 90000},
			{Name: "simulator_run", Class: "throughput", Iters: 50, Runs: 3, Ops: 150,
				NsPerOp: 150000, AllocsPerOp: 900, BytesPerOp: 65536,
				P50Ns: 140000, P95Ns: 180000, P99Ns: 220000, MaxNs: 400000},
		},
	}
}

// delta finds one metric row in a comparison.
func delta(t *testing.T, c Comparison, bench, metric string) MetricDelta {
	t.Helper()
	for _, d := range c.Deltas {
		if d.Bench == bench && d.Metric == metric {
			return d
		}
	}
	t.Fatalf("no delta for %s/%s in %+v", bench, metric, c.Deltas)
	return MetricDelta{}
}

func TestCompareSelfIsCleanPass(t *testing.T) {
	base := baseCapture()
	c, err := Compare(base, base, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.OK() || c.Regressions != 0 {
		t.Fatalf("self-compare regressed: %+v", c)
	}
	for _, d := range c.Deltas {
		if d.Verdict != VerdictPass || d.DeltaFrac != 0 {
			t.Errorf("self-compare delta %s/%s: %+v", d.Bench, d.Metric, d)
		}
	}
	if !c.SameMachine {
		t.Error("self-compare flagged as cross-machine")
	}
	if !strings.Contains(c.String(), "ok: no regressions") {
		t.Errorf("human output missing pass line:\n%s", c.String())
	}
}

// TestCompareDetectsSyntheticSlowdown is the CI gate's proof: a 15%
// ns/op slowdown (above the default 10% tolerance) must fail the
// comparison.
func TestCompareDetectsSyntheticSlowdown(t *testing.T) {
	base := baseCapture()
	head := baseCapture()
	head.Results[0].NsPerOp *= 1.15
	c, err := Compare(base, head, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.OK() {
		t.Fatalf("15%% slowdown passed the gate: %+v", c)
	}
	d := delta(t, c, "decide_single", "ns_per_op")
	if d.Verdict != VerdictRegressed {
		t.Fatalf("verdict = %s, want regressed", d.Verdict)
	}
	if math.Abs(d.DeltaFrac-0.15) > 1e-9 {
		t.Fatalf("delta = %v, want 0.15", d.DeltaFrac)
	}
	if !strings.Contains(c.String(), "FAIL") {
		t.Errorf("human output missing FAIL line:\n%s", c.String())
	}
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	base := baseCapture()
	head := baseCapture()
	head.Results[0].NsPerOp *= 1.05 // inside the default 10%
	head.Results[1].P99Ns *= 1.08
	c, err := Compare(base, head, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.OK() {
		t.Fatalf("within-tolerance head failed: %+v", c)
	}
}

// TestCompareP99WiderBand pins the tail-quantile tolerance: p99 is
// gated at 3x the relative time tolerance (plus 5 us slack), since the
// tail is set by a handful of ops per run and flaps far more than the
// mean even after best-run selection.
func TestCompareP99WiderBand(t *testing.T) {
	base := baseCapture()
	head := baseCapture()
	head.Results[1].P99Ns *= 1.25 // +25%: beyond 10%, inside the 3x band
	c, err := Compare(base, head, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.OK() {
		t.Fatalf("+25%% p99 failed the 3x band: %+v", c)
	}

	head = baseCapture()
	head.Results[1].P99Ns *= 1.5 // +50%: a real tail blow-up
	c, err = Compare(base, head, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.OK() || c.Regressions != 1 {
		t.Fatalf("+50%% p99 verdict: %+v", c)
	}
	for _, d := range c.Deltas {
		if d.Verdict == VerdictRegressed && d.Metric != "p99_ns" {
			t.Errorf("unexpected regression on %s/%s", d.Bench, d.Metric)
		}
	}
}

func TestCompareCustomTolerance(t *testing.T) {
	base := baseCapture()
	head := baseCapture()
	head.Results[0].NsPerOp *= 1.05
	c, err := Compare(base, head, CompareOptions{MaxRegress: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if c.OK() {
		t.Fatal("5% slowdown passed a 2% gate")
	}
}

func TestCompareFlagsImprovement(t *testing.T) {
	base := baseCapture()
	head := baseCapture()
	head.Results[1].NsPerOp *= 0.7
	c, err := Compare(base, head, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.OK() {
		t.Fatalf("improvement failed the gate: %+v", c)
	}
	if d := delta(t, c, "simulator_run", "ns_per_op"); d.Verdict != VerdictImproved {
		t.Fatalf("verdict = %s, want improved", d.Verdict)
	}
}

func TestCompareMissingBenchmarkIsRegression(t *testing.T) {
	base := baseCapture()
	head := baseCapture()
	head.Results = head.Results[:1] // drop simulator_run
	c, err := Compare(base, head, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.OK() {
		t.Fatal("dropping a baseline benchmark passed the gate")
	}
	if d := delta(t, c, "simulator_run", "ns_per_op"); d.Verdict != VerdictMissing {
		t.Fatalf("verdict = %s, want missing", d.Verdict)
	}
}

func TestCompareNewBenchmarkIsInformational(t *testing.T) {
	base := baseCapture()
	head := baseCapture()
	head.Results = append(head.Results, Result{
		Name: "decide_batch_64", Class: "latency", Iters: 10, Runs: 3, Ops: 30,
		NsPerOp: 1e6, P99Ns: 2e6})
	c, err := Compare(base, head, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.OK() {
		t.Fatalf("new benchmark failed the gate: %+v", c)
	}
	if len(c.NewBenches) != 1 || c.NewBenches[0] != "decide_batch_64" {
		t.Fatalf("new benches = %v", c.NewBenches)
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := baseCapture()
	head := baseCapture()
	head.Results[0].AllocsPerOp = 60 // +50% over 40, beyond 5% + 1 slack
	c, err := Compare(base, head, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if c.OK() {
		t.Fatal("alloc regression passed the gate")
	}
	if d := delta(t, c, "decide_single", "allocs_per_op"); d.Verdict != VerdictRegressed {
		t.Fatalf("verdict = %s, want regressed", d.Verdict)
	}
}

// TestCompareAbsoluteSlack: at nanosecond scale a large relative delta
// below the absolute slack is measurement granularity, not a
// regression.
func TestCompareAbsoluteSlack(t *testing.T) {
	mk := func(ns float64) File {
		return File{SchemaVersion: SchemaVersion, Machine: CurrentMachine(), Results: []Result{
			{Name: "cache_hit", Class: "cpu", Iters: 10, Runs: 1, Ops: 10,
				NsPerOp: ns, P50Ns: ns, P95Ns: ns, P99Ns: ns, MaxNs: ns},
		}}
	}
	c, err := Compare(mk(100), mk(140), CompareOptions{}) // +40% but only 40ns
	if err != nil {
		t.Fatal(err)
	}
	if !c.OK() {
		t.Fatalf("40ns jitter failed the gate: %+v", c)
	}
	// Zero-alloc benchmarks must also tolerate a fraction of an alloc.
	z := mk(100)
	z.Results[0].AllocsPerOp = 0.5
	c, err = Compare(mk(100), z, CompareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !c.OK() {
		t.Fatalf("0 -> 0.5 allocs/op failed the gate: %+v", c)
	}
}

func TestCompareRejectsInvalidCaptures(t *testing.T) {
	bad := baseCapture()
	bad.SchemaVersion = SchemaVersion + 3
	if _, err := Compare(bad, baseCapture(), CompareOptions{}); err == nil {
		t.Error("schema-mismatched base accepted")
	}
	if _, err := Compare(baseCapture(), bad, CompareOptions{}); err == nil {
		t.Error("schema-mismatched head accepted")
	}
	empty := File{SchemaVersion: SchemaVersion}
	if _, err := Compare(empty, baseCapture(), CompareOptions{}); err == nil {
		t.Error("empty base accepted")
	}
}

func TestParseTolerance(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
		ok   bool
	}{
		{"10%", 0.10, true},
		{"10", 0.10, true},
		{"0.1", 0.1, true},
		{"2.5%", 0.025, true},
		{" 15% ", 0.15, true},
		{"1", 1, true}, // exactly 1 is the fraction 100%
		{"0", 0, false},
		{"-5%", 0, false},
		{"nope", 0, false},
		{"", 0, false},
	} {
		got, err := ParseTolerance(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseTolerance(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("ParseTolerance(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}
