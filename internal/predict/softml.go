package predict

import (
	"fmt"
	"math"
	"math/rand/v2"

	"idlereduce/internal/skirental"
)

// Advice is the outcome of consuming one prediction: the final
// threshold, whether the prediction actually moved it off the fallback
// draw, and the advice-side label (the direction of a point forecast,
// or the vertex a distributional forecast selected).
type Advice struct {
	// Threshold is the threshold to play for this stop, in [0, B].
	Threshold float64
	// Blended reports that the prediction was trusted (effective
	// lambda > 0); false means Threshold is exactly the fallback draw.
	Blended bool
	// Label names the advice side: "long"/"short" for a point
	// forecast, the selected vertex ("DET", "TOI", "b-DET", "N-Rand")
	// for a distributional one.
	Label string
}

// SoftML is the Kodialam-style lambda-robust threshold policy: a
// convex blend of the constrained-vertex fallback draw with the
// pure-consistency advice threshold. lambda = 0 is bit-identical to
// the fallback (including RNG consumption — the fallback threshold is
// always drawn, whether or not it is blended); lambda = 1 with a
// full-confidence prediction follows the advice outright.
//
// Every blended threshold stays in [0, B], so the policy always
// carries the closed-form robustness bound WorstCaseDetCost gives for
// its realized threshold: trusting the prediction can cost at most the
// bound of the threshold it moved to, never an unbounded ratio.
type SoftML struct {
	c      *skirental.Constrained
	lambda float64
}

// NewSoftML wraps a prepared constrained fallback with trust lambda in
// [0, 1].
func NewSoftML(c *skirental.Constrained, lambda float64) (*SoftML, error) {
	if c == nil {
		return nil, fmt.Errorf("predict: nil fallback policy")
	}
	if math.IsNaN(lambda) || lambda < 0 || lambda > 1 {
		return nil, fmt.Errorf("predict: lambda %v outside [0, 1]", lambda)
	}
	return &SoftML{c: c, lambda: lambda}, nil
}

// Name implements skirental.Policy.
func (s *SoftML) Name() string { return "SoftML" }

// B implements skirental.Policy.
func (s *SoftML) B() float64 { return s.c.B() }

// Lambda returns the trust parameter.
func (s *SoftML) Lambda() float64 { return s.lambda }

// Fallback returns the wrapped constrained policy.
func (s *SoftML) Fallback() *skirental.Constrained { return s.c }

// Threshold implements skirental.Policy: without advice the policy IS
// the constrained fallback.
func (s *SoftML) Threshold(rng *rand.Rand) float64 { return s.c.Threshold(rng) }

// MeanCostForStop implements skirental.Policy for the advice-free
// path.
func (s *SoftML) MeanCostForStop(y float64) float64 { return s.c.MeanCostForStop(y) }

// Advise draws the fallback threshold and blends it toward the advice
// threshold with weight lambda * p.Confidence. The fallback draw
// happens unconditionally so the RNG stream position is independent of
// whether a prediction arrived — the invariant the audit replay and
// the lambda = 0 byte-identity guarantee rest on.
func (s *SoftML) Advise(rng *rand.Rand, p Prediction) Advice {
	b := s.c.B()
	xc := s.c.Threshold(rng)
	le := s.lambda * p.Confidence
	label := "short"
	if p.StopSec >= b {
		label = "long"
	}
	if le <= 0 {
		return Advice{Threshold: xc, Label: label}
	}
	x := (1-le)*xc + le*AdviceThreshold(b, p.StopSec)
	return Advice{Threshold: clamp(x, 0, b), Blended: true, Label: label}
}

// DistAdvice is the Kim & Fan-style distributional-advice policy: the
// predicted moment pair projects onto the constrained statistics plane
// (ProjectMoments), the paper's vertex selection picks the advice
// threshold for that projected distribution, and the result is clamped
// into the robustness trust region [xc - lambda*B, xc + lambda*B]
// around the fallback draw xc. lambda = 0 collapses the region to the
// fallback draw itself — bit-identical to the constrained policy.
type DistAdvice struct {
	c      *skirental.Constrained
	lambda float64
}

// NewDistAdvice wraps a prepared constrained fallback with trust
// lambda in [0, 1].
func NewDistAdvice(c *skirental.Constrained, lambda float64) (*DistAdvice, error) {
	if c == nil {
		return nil, fmt.Errorf("predict: nil fallback policy")
	}
	if math.IsNaN(lambda) || lambda < 0 || lambda > 1 {
		return nil, fmt.Errorf("predict: lambda %v outside [0, 1]", lambda)
	}
	return &DistAdvice{c: c, lambda: lambda}, nil
}

// Name implements skirental.Policy.
func (d *DistAdvice) Name() string { return "DistAdvice" }

// B implements skirental.Policy.
func (d *DistAdvice) B() float64 { return d.c.B() }

// Lambda returns the trust parameter.
func (d *DistAdvice) Lambda() float64 { return d.lambda }

// Fallback returns the wrapped constrained policy.
func (d *DistAdvice) Fallback() *skirental.Constrained { return d.c }

// Threshold implements skirental.Policy (the advice-free path).
func (d *DistAdvice) Threshold(rng *rand.Rand) float64 { return d.c.Threshold(rng) }

// MeanCostForStop implements skirental.Policy for the advice-free
// path.
func (d *DistAdvice) MeanCostForStop(y float64) float64 { return d.c.MeanCostForStop(y) }

// Advise projects the predicted moments, selects the advice vertex,
// and clamps its representative threshold into the trust region around
// the fallback draw. A prediction without moments is treated as the
// degenerate distribution at its point forecast.
func (d *DistAdvice) Advise(rng *rand.Rand, p Prediction) Advice {
	b := d.c.B()
	xc := d.c.Threshold(rng)
	le := d.lambda * p.Confidence
	m1, m2 := p.M1, p.M2
	if !p.HasMoments {
		m1, m2 = p.StopSec, p.StopSec*p.StopSec
	}
	mu, q := ProjectMoments(b, m1, m2)
	xadv, choice := RepresentativeThreshold(b, mu, q)
	if le <= 0 {
		return Advice{Threshold: xc, Label: choice.String()}
	}
	x := clamp(xadv, xc-le*b, xc+le*b)
	return Advice{Threshold: clamp(x, 0, b), Blended: true, Label: choice.String()}
}
