package predict

import (
	"math/rand/v2"
	"testing"
)

func TestPredictors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))

	if p := (Oracle{}).Predict(rng, 42, 7); p.StopSec != 42 || p.Confidence != 1 {
		t.Errorf("oracle: %+v", p)
	}
	if p := (Stale{}).Predict(rng, 42, 7); p.StopSec != 7 {
		t.Errorf("stale: %+v", p)
	}
	if p := (Biased{Factor: 0.5}).Predict(rng, 42, 7); p.StopSec != 21 {
		t.Errorf("biased: %+v", p)
	}
	adv := Adversarial{B: 28}
	if p := adv.Predict(rng, 100, 0); p.StopSec != 0 {
		t.Errorf("adversarial long stop: %+v", p)
	}
	if p := adv.Predict(rng, 5, 0); p.StopSec != 56 {
		t.Errorf("adversarial short stop: %+v", p)
	}
	// Miscalibrated stays positive, valid, and deterministic per seed.
	m := Miscalibrated{Sigma: 1.5}
	r1 := rand.New(rand.NewPCG(9, 9))
	r2 := rand.New(rand.NewPCG(9, 9))
	for i := 0; i < 200; i++ {
		p := m.Predict(r1, 30, 0)
		if err := p.Validate(); err != nil {
			t.Fatalf("noisy prediction invalid: %v", err)
		}
		if p.StopSec <= 0 {
			t.Fatalf("noisy prediction non-positive: %v", p.StopSec)
		}
		if q := m.Predict(r2, 30, 0); q.StopSec != p.StopSec {
			t.Fatal("noisy predictor not deterministic per seed")
		}
	}
	// Names are stable frontier table keys.
	for name, p := range map[string]Predictor{
		"oracle":       Oracle{},
		"noisy(1.5)":   m,
		"stale":        Stale{},
		"biased(0.5x)": Biased{Factor: 0.5},
		"adversarial":  adv,
	} {
		if p.Name() != name {
			t.Errorf("name %q, want %q", p.Name(), name)
		}
	}
}

func TestRecordQualityNilSafe(t *testing.T) {
	// Must not panic on a nil recorder.
	RecordQuality(nil, "area", 28, 10, 20)
}
