package predict

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Predictor is one forecast source for the simulator's advised runs:
// given the true upcoming stop length (which only the simulator knows)
// and the previous stop's length, it emits the prediction the policy
// will see. Adversarial models corrupt the truth in the ways real
// forecast pipelines fail — noise, staleness, systematic bias — so the
// consistency-robustness frontier can be charted against prediction
// error instead of assumed away.
type Predictor interface {
	// Name labels the model in frontier tables.
	Name() string
	// Predict emits the forecast for a stop of true length actual;
	// prev is the previous stop's true length (0 before the first).
	Predict(rng *rand.Rand, actual, prev float64) Prediction
}

// Oracle predicts the true stop length exactly — the consistency
// anchor of the frontier.
type Oracle struct{}

// Name implements Predictor.
func (Oracle) Name() string { return "oracle" }

// Predict implements Predictor.
func (Oracle) Predict(_ *rand.Rand, actual, _ float64) Prediction { return New(actual) }

// Miscalibrated multiplies the truth by lognormal noise: unbiased in
// the median but heavy-tailed, the shape of an over-confident learned
// forecaster. Sigma is the log-scale noise (0.5 is a sloppy model,
// 1.5 a badly miscalibrated one).
type Miscalibrated struct {
	Sigma float64
}

// Name implements Predictor.
func (m Miscalibrated) Name() string { return fmt.Sprintf("noisy(%.2g)", m.Sigma) }

// Predict implements Predictor.
func (m Miscalibrated) Predict(rng *rand.Rand, actual, _ float64) Prediction {
	return New(actual * math.Exp(m.Sigma*rng.NormFloat64()))
}

// Stale predicts the PREVIOUS stop's length — a forecaster whose
// feature pipeline lags one stop behind, exactly wrong whenever the
// regime alternates.
type Stale struct{}

// Name implements Predictor.
func (Stale) Name() string { return "stale" }

// Predict implements Predictor.
func (Stale) Predict(_ *rand.Rand, _, prev float64) Prediction { return New(prev) }

// Biased scales the truth by a fixed factor: Factor < 1 systematically
// under-predicts (keeps the engine idling through long stops),
// Factor > 1 over-predicts (shuts off during short ones).
type Biased struct {
	Factor float64
}

// Name implements Predictor.
func (b Biased) Name() string { return fmt.Sprintf("biased(%.2gx)", b.Factor) }

// Predict implements Predictor.
func (b Biased) Predict(_ *rand.Rand, actual, _ float64) Prediction { return New(actual * b.Factor) }

// Adversarial predicts the exact opposite side of the break-even
// interval from the truth — the worst case a point-forecast policy can
// face, which is what the robustness column of the frontier measures.
type Adversarial struct {
	// B is the break-even interval the adversary targets.
	B float64
}

// Name implements Predictor.
func (Adversarial) Name() string { return "adversarial" }

// Predict implements Predictor.
func (a Adversarial) Predict(_ *rand.Rand, actual, _ float64) Prediction {
	if actual >= a.B {
		return New(0)
	}
	return New(2 * a.B)
}
