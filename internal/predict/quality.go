package predict

import "idlereduce/internal/obs"

// Quality metric names. The serving stack and the simulator publish
// through the same names so docs/OBSERVABILITY.md describes both.
const (
	// MetricErrAbs is the absolute prediction error histogram
	// (|predicted - actual| seconds); a per-area labelled twin is
	// published alongside it.
	MetricErrAbs = "predict_err_abs_sec"
	// MetricErrSigned is the signed error histogram
	// (predicted - actual): its mean exposes systematic bias.
	MetricErrSigned = "predict_err_signed_sec"
	// MetricConsistency counts predictions on the correct side of the
	// break-even interval — stops where trusting the advice pays.
	MetricConsistency = "predict_consistency_total"
	// MetricRegret counts predictions on the wrong side — stops where
	// trusting the advice costs and only the robustness clamp bounds
	// the damage.
	MetricRegret = "predict_regret_total"
)

// RecordQuality publishes one prediction-vs-outcome pair to the
// metrics recorder: error histograms (global plus per-area) and the
// consistency/regret side counters. area may be empty for unattributed
// sources (the simulator); rec nil-checks like every obs sink.
func RecordQuality(rec *obs.Recorder, area string, b, predicted, actual float64) {
	if !rec.On() {
		return
	}
	err := predicted - actual
	abs := err
	if abs < 0 {
		abs = -abs
	}
	rec.Observe(MetricErrAbs, abs)
	rec.Observe(MetricErrSigned, err)
	if area != "" {
		rec.Observe(obs.L(MetricErrAbs, "area", area), abs)
	}
	// Side agreement is what decides whether advice helps: the blend
	// only needs the forecast on the correct side of B, not its exact
	// value.
	if (predicted >= b) == (actual >= b) {
		rec.Add(MetricConsistency, 1)
	} else {
		rec.Add(MetricRegret, 1)
	}
}
