// Package predict is the learning-augmented decision subsystem: typed
// stop-length predictions, the robustness-constrained threshold
// policies that consume them, adversarial predictor models for the
// simulator, and the prediction-quality accumulators the serving stack
// publishes.
//
// The design follows the learning-augmented ski-rental line of work
// referenced in PAPERS.md: Kodialam's soft-ML blend trades consistency
// (cost when the prediction is right) against robustness (the paper's
// worst-case guarantee when it is arbitrarily wrong) through a single
// trust parameter lambda in [0, 1]; Kim & Fan's distributional-advice
// variant consumes predicted distribution moments instead of a point
// forecast and is clamped against the constrained-vertex fallback the
// same way. Both policies degrade EXACTLY to the DAC 2014 constrained
// vertex selection at lambda = 0 — same RNG consumption, bit-identical
// thresholds — which is what lets the serving layer keep its replayable
// audit contract.
package predict

import (
	"errors"
	"fmt"
	"math"

	"idlereduce/internal/skirental"
)

// ErrBadPrediction is the stable error class for malformed prediction
// inputs. The server maps it to the wire code invalid_prediction.
var ErrBadPrediction = errors.New("predict: invalid prediction")

// Prediction is one stop-length forecast attached to a decide request.
type Prediction struct {
	// StopSec is the predicted stop length in seconds.
	StopSec float64
	// Confidence scales the engine's trust parameter per request in
	// [0, 1]: the effective lambda is lambda * Confidence, so a
	// low-confidence forecast automatically leans on the robust
	// fallback. New fills 1.
	Confidence float64
	// M1 and M2 are the predicted first and second moments of the stop
	// length (E[Y] in seconds, E[Y^2] in seconds squared), present when
	// HasMoments. The distadvice engine consumes them; without moments
	// it treats the prediction as the degenerate distribution at
	// StopSec.
	M1, M2     float64
	HasMoments bool
}

// New builds a full-confidence point prediction.
func New(stopSec float64) Prediction {
	return Prediction{StopSec: stopSec, Confidence: 1}
}

// WithMoments builds a full-confidence distributional prediction.
func WithMoments(m1, m2 float64) Prediction {
	return Prediction{StopSec: m1, Confidence: 1, M1: m1, M2: m2, HasMoments: true}
}

// Validate checks the forecast is consumable: finite non-negative stop
// length, confidence in [0, 1], and (when present) a feasible moment
// pair (finite, non-negative, M2 >= M1^2). Errors wrap
// ErrBadPrediction.
func (p Prediction) Validate() error {
	if math.IsNaN(p.StopSec) || math.IsInf(p.StopSec, 0) || p.StopSec < 0 {
		return fmt.Errorf("%w: predicted stop length %v must be finite and non-negative", ErrBadPrediction, p.StopSec)
	}
	if math.IsNaN(p.Confidence) || p.Confidence < 0 || p.Confidence > 1 {
		return fmt.Errorf("%w: confidence %v outside [0, 1]", ErrBadPrediction, p.Confidence)
	}
	if p.HasMoments {
		if math.IsNaN(p.M1) || math.IsInf(p.M1, 0) || p.M1 < 0 {
			return fmt.Errorf("%w: first moment %v must be finite and non-negative", ErrBadPrediction, p.M1)
		}
		if math.IsNaN(p.M2) || math.IsInf(p.M2, 0) || p.M2 < 0 {
			return fmt.Errorf("%w: second moment %v must be finite and non-negative", ErrBadPrediction, p.M2)
		}
		if p.M2 < p.M1*p.M1 {
			return fmt.Errorf("%w: moment pair (%v, %v) has negative variance", ErrBadPrediction, p.M1, p.M2)
		}
	}
	return nil
}

// AdviceThreshold is the pure-consistency action for a point forecast:
// a predicted long stop (y >= b) shuts off immediately (threshold 0,
// cost b = OPT for a truly long stop); a predicted short stop never
// shuts off within the break-even window (threshold b, cost y = OPT
// for a truly short stop).
func AdviceThreshold(b, predictedSec float64) float64 {
	if predictedSec >= b {
		return 0
	}
	return b
}

// ProjectMoments maps a predicted moment pair (m1, m2) onto the
// paper's constrained statistics plane (mu_B-, q_B+) at break-even b,
// using the one-sided Chebyshev (Cantelli) tail bound as the
// representative tail mass:
//
//	m1 <  b: q = sigma^2 / (sigma^2 + (b - m1)^2)   (upper tail bound)
//	m1 >= b: q = (m1 - b)^2 / (sigma^2 + (m1 - b)^2) (1 - lower tail bound)
//
// with sigma^2 = m2 - m1^2. The short mass follows from the mean
// decomposition m1 >= mu + q*b, clamped into the feasible polytope
// mu in [0, b(1-q)]. A degenerate forecast (sigma = 0) projects to a
// point mass: q = 0 below b, q = 1 at or above it.
func ProjectMoments(b, m1, m2 float64) (mu, q float64) {
	sigma2 := m2 - m1*m1
	if sigma2 < 0 {
		sigma2 = 0
	}
	if m1 < b {
		d := b - m1
		if sigma2 == 0 {
			q = 0
		} else {
			q = sigma2 / (sigma2 + d*d)
		}
	} else {
		d := m1 - b
		if sigma2 == 0 {
			q = 1
		} else {
			q = d * d / (sigma2 + d*d)
		}
	}
	mu = m1 - q*b
	if mu < 0 {
		mu = 0
	}
	if muMax := b * (1 - q); mu > muMax {
		mu = muMax
	}
	return mu, q
}

// RepresentativeThreshold runs the paper's vertex selection on
// projected statistics and returns the deterministic threshold that
// represents the selected vertex: DET plays b, TOI plays 0, b-DET its
// optimal sqrt(mu*b/q), and N-Rand its density mean b/(e-1) (a fixed
// representative rather than a draw, so advice consumes no randomness
// and replay stays a pure function of the recorded inputs).
func RepresentativeThreshold(b, mu, q float64) (float64, skirental.Choice) {
	vc := skirental.ComputeVertexCosts(b, skirental.Stats{MuBMinus: mu, QBPlus: q})
	choice, _ := vc.Select()
	switch choice {
	case skirental.ChoiceTOI:
		return 0, choice
	case skirental.ChoiceBDet:
		return vc.BDetThreshold, choice
	case skirental.ChoiceNRand:
		return b / (math.E - 1), choice
	default:
		return b, choice
	}
}

// clamp bounds x to [lo, hi].
func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
