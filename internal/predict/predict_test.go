package predict

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"idlereduce/internal/skirental"
)

func mustConstrained(t *testing.T, b, mu, q float64) *skirental.Constrained {
	t.Helper()
	c, err := skirental.NewConstrained(b, skirental.Stats{MuBMinus: mu, QBPlus: q})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPredictionValidate(t *testing.T) {
	good := []Prediction{
		New(0),
		New(300),
		{StopSec: 10, Confidence: 0.5},
		WithMoments(20, 500),
		WithMoments(0, 0),
	}
	for _, p := range good {
		if err := p.Validate(); err != nil {
			t.Errorf("%+v rejected: %v", p, err)
		}
	}
	bad := []Prediction{
		New(math.NaN()),
		New(math.Inf(1)),
		New(-1),
		{StopSec: 10, Confidence: 1.5},
		{StopSec: 10, Confidence: -0.1},
		{StopSec: 10, Confidence: math.NaN()},
		{StopSec: 10, Confidence: 1, M1: 20, M2: 100, HasMoments: true}, // var < 0
		{StopSec: 10, Confidence: 1, M1: math.NaN(), M2: 1, HasMoments: true},
		{StopSec: 10, Confidence: 1, M1: -1, M2: 10, HasMoments: true},
		{StopSec: 10, Confidence: 1, M1: 1, M2: math.Inf(1), HasMoments: true},
	}
	for _, p := range bad {
		err := p.Validate()
		if err == nil {
			t.Errorf("%+v accepted", p)
			continue
		}
		if !errors.Is(err, ErrBadPrediction) {
			t.Errorf("%+v error %v does not wrap ErrBadPrediction", p, err)
		}
	}
}

func TestAdviceThreshold(t *testing.T) {
	if got := AdviceThreshold(28, 300); got != 0 {
		t.Errorf("long stop advice %v, want 0", got)
	}
	if got := AdviceThreshold(28, 5); got != 28 {
		t.Errorf("short stop advice %v, want 28", got)
	}
	if got := AdviceThreshold(28, 28); got != 0 {
		t.Errorf("boundary advice %v, want 0 (>= B counts long)", got)
	}
}

// TestProjectMomentsFeasible: every projection must land in the
// paper's feasible polytope, and the degenerate cases must match the
// point-mass intuition.
func TestProjectMomentsFeasible(t *testing.T) {
	const b = 28.0
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 5000; i++ {
		m1 := rng.Float64() * 3 * b
		sigma := rng.Float64() * 2 * b
		m2 := m1*m1 + sigma*sigma
		mu, q := ProjectMoments(b, m1, m2)
		if q < 0 || q > 1 || math.IsNaN(q) {
			t.Fatalf("m1=%v m2=%v: q=%v", m1, m2, q)
		}
		if mu < 0 || mu > b*(1-q)+1e-12 || math.IsNaN(mu) {
			t.Fatalf("m1=%v m2=%v: mu=%v infeasible for q=%v", m1, m2, mu, q)
		}
		if _, err := skirental.NewConstrained(b, skirental.Stats{MuBMinus: mu, QBPlus: q}); err != nil {
			t.Fatalf("projection (%v, %v) rejected by the constrained policy: %v", mu, q, err)
		}
	}
	// Point mass below B: all mass short.
	if mu, q := ProjectMoments(b, 10, 100); q != 0 || mu != 10 {
		t.Errorf("point mass at 10: mu=%v q=%v", mu, q)
	}
	// Point mass above B: all mass long.
	if mu, q := ProjectMoments(b, 100, 10000); q != 1 || mu != 0 {
		t.Errorf("point mass at 100: mu=%v q=%v", mu, q)
	}
}

func TestRepresentativeThreshold(t *testing.T) {
	const b = 28.0
	// All mass long: TOI (shut off immediately).
	if x, c := RepresentativeThreshold(b, 0, 1); x != 0 || c != skirental.ChoiceTOI {
		t.Errorf("long mass: x=%v choice=%v", x, c)
	}
	// All mass short with high mu: DET never beats riding it out; the
	// representative threshold is in [0, b] regardless of vertex.
	for _, tc := range []struct{ mu, q float64 }{{20, 0}, {8, 0.13}, {4, 0.25}, {0, 0.5}} {
		x, _ := RepresentativeThreshold(b, tc.mu, tc.q)
		if x < 0 || x > b || math.IsNaN(x) {
			t.Errorf("mu=%v q=%v: threshold %v outside [0, B]", tc.mu, tc.q, x)
		}
	}
}

// TestSoftMLZeroLambdaIsFallback is the robustness-extreme identity:
// at lambda = 0 (or confidence 0) the advised draw is bit-identical to
// the fallback draw from the same RNG position.
func TestSoftMLZeroLambdaIsFallback(t *testing.T) {
	c := mustConstrained(t, 28, 4, 0.25) // N-Rand region: draws are random
	sm, err := NewSoftML(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed < 50; seed++ {
		r1 := rand.New(rand.NewPCG(seed, 1))
		r2 := rand.New(rand.NewPCG(seed, 1))
		adv := sm.Advise(r1, New(500))
		want := c.Threshold(r2)
		if adv.Blended || math.Float64bits(adv.Threshold) != math.Float64bits(want) {
			t.Fatalf("seed %d: advised %v (blended=%v), fallback %v", seed, adv.Threshold, adv.Blended, want)
		}
	}
	// Same identity through per-request confidence 0 at lambda 1.
	sm1, _ := NewSoftML(c, 1)
	r1 := rand.New(rand.NewPCG(9, 1))
	r2 := rand.New(rand.NewPCG(9, 1))
	adv := sm1.Advise(r1, Prediction{StopSec: 500, Confidence: 0})
	if adv.Blended || adv.Threshold != c.Threshold(r2) {
		t.Fatalf("confidence 0 blended: %+v", adv)
	}
}

// TestSoftMLFullTrustFollowsAdvice: lambda = 1 with full confidence
// plays the pure advice threshold.
func TestSoftMLFullTrustFollowsAdvice(t *testing.T) {
	c := mustConstrained(t, 28, 8, 0.13)
	sm, err := NewSoftML(c, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(3, 3))
	if adv := sm.Advise(rng, New(400)); adv.Threshold != 0 || !adv.Blended || adv.Label != "long" {
		t.Errorf("long forecast: %+v", adv)
	}
	if adv := sm.Advise(rng, New(3)); adv.Threshold != 28 || adv.Label != "short" {
		t.Errorf("short forecast: %+v", adv)
	}
}

// TestSoftMLBlendStaysBounded: every blended threshold lands in
// [0, B] so WorstCaseDetCost always applies.
func TestSoftMLBlendStaysBounded(t *testing.T) {
	c := mustConstrained(t, 28, 4, 0.25)
	rng := rand.New(rand.NewPCG(11, 4))
	for _, lambda := range []float64{0.1, 0.5, 0.9} {
		sm, err := NewSoftML(c, lambda)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 500; i++ {
			p := Prediction{StopSec: rng.Float64() * 600, Confidence: rng.Float64()}
			adv := sm.Advise(rng, p)
			if adv.Threshold < 0 || adv.Threshold > 28 || math.IsNaN(adv.Threshold) {
				t.Fatalf("lambda=%v %+v -> threshold %v", lambda, p, adv.Threshold)
			}
		}
	}
	if _, err := NewSoftML(c, 1.5); err == nil {
		t.Error("lambda 1.5 accepted")
	}
	if _, err := NewSoftML(c, math.NaN()); err == nil {
		t.Error("NaN lambda accepted")
	}
	if _, err := NewSoftML(nil, 0.5); err == nil {
		t.Error("nil fallback accepted")
	}
}

// TestDistAdviceZeroLambdaIsFallback mirrors the SoftML identity for
// the distributional policy.
func TestDistAdviceZeroLambdaIsFallback(t *testing.T) {
	c := mustConstrained(t, 28, 4, 0.25)
	da, err := NewDistAdvice(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed < 50; seed++ {
		r1 := rand.New(rand.NewPCG(seed, 2))
		r2 := rand.New(rand.NewPCG(seed, 2))
		adv := da.Advise(r1, WithMoments(120, 20000))
		want := c.Threshold(r2)
		if adv.Blended || math.Float64bits(adv.Threshold) != math.Float64bits(want) {
			t.Fatalf("seed %d: advised %v, fallback %v", seed, adv.Threshold, want)
		}
	}
}

// TestDistAdviceTrustRegion: the advice threshold is clamped within
// lambda*B of the fallback draw.
func TestDistAdviceTrustRegion(t *testing.T) {
	c := mustConstrained(t, 28, 8, 0.13) // deterministic fallback
	rng := rand.New(rand.NewPCG(5, 5))
	xc := c.Threshold(rng)
	for _, lambda := range []float64{0.1, 0.25, 0.6, 1} {
		da, err := NewDistAdvice(c, lambda)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []Prediction{
			WithMoments(200, 50000), // long regime -> advice 0 or near
			WithMoments(3, 10),      // short regime -> advice B
			New(500),                // degenerate long
			New(1),                  // degenerate short
		} {
			adv := da.Advise(rand.New(rand.NewPCG(5, 5)), p)
			if !adv.Blended {
				t.Fatalf("lambda=%v not blended", lambda)
			}
			if adv.Threshold < xc-lambda*28-1e-12 || adv.Threshold > xc+lambda*28+1e-12 {
				t.Errorf("lambda=%v %+v: threshold %v outside trust region around %v", lambda, p, adv.Threshold, xc)
			}
			if adv.Threshold < 0 || adv.Threshold > 28 {
				t.Errorf("threshold %v outside [0, B]", adv.Threshold)
			}
		}
	}
}
