package parallel

import "testing"

// FuzzDeriveSeed checks the two contract properties on arbitrary inputs:
// stability (same inputs, same output, across repeated calls) and
// injectivity per root (distinct stream IDs never collide — the mix is a
// bijection of the stream ID for any fixed root).
func FuzzDeriveSeed(f *testing.F) {
	f.Add(uint64(0), uint64(0), uint64(1))
	f.Add(uint64(20140601), uint64(0), uint64(1182))
	f.Add(^uint64(0), uint64(7), uint64(8))
	f.Add(uint64(1), ^uint64(0), uint64(0))
	f.Fuzz(func(t *testing.T, root, s1, s2 uint64) {
		a := DeriveSeed(root, s1)
		if again := DeriveSeed(root, s1); again != a {
			t.Fatalf("unstable: DeriveSeed(%d, %d) = %d then %d", root, s1, a, again)
		}
		b := DeriveSeed(root, s2)
		if s1 != s2 && a == b {
			t.Fatalf("collision: root %d streams %d, %d both map to %d", root, s1, s2, a)
		}
		if s1 == s2 && a != b {
			t.Fatalf("same stream, different seeds: %d vs %d", a, b)
		}
	})
}
