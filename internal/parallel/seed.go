package parallel

import "math/rand/v2"

// SplitMix64 constants (Steele, Lea & Flood, "Fast Splittable
// Pseudorandom Number Generators", OOPSLA 2014). The additive constant
// is the golden-ratio increment; the two multipliers are the finalizer
// of the reference implementation.
const (
	splitmixGamma = 0x9e3779b97f4a7c15
	splitmixMul1  = 0xbf58476d1ce4e5b9
	splitmixMul2  = 0x94d049bb133111eb
)

// DeriveSeed derives the RNG seed of one work-item stream from a root
// seed and the item's stream ID (vehicle index, grid-cell index, sweep
// point, ...). It applies the SplitMix64 output mix to
// root + gamma·(streamID+1), which has two properties the determinism
// contract relies on:
//
//   - Injectivity per root: for a fixed root the map streamID -> seed is
//     a bijection on uint64 (an odd-constant multiply followed by a
//     bijective xor-shift finalizer), so distinct streams of the same
//     root never collide.
//   - Stability: the value depends only on (root, streamID) — never on
//     call order, scheduling, or worker count.
func DeriveSeed(root, streamID uint64) uint64 {
	z := root + splitmixGamma*(streamID+1)
	z ^= z >> 30
	z *= splitmixMul1
	z ^= z >> 27
	z *= splitmixMul2
	z ^= z >> 31
	return z
}

// RNG builds the deterministic PCG stream of one work item: the two PCG
// seed words are derived from disjoint stream IDs (2·streamID and
// 2·streamID+1), so distinct items of the same root share no seed
// material.
func RNG(root, streamID uint64) *rand.Rand {
	return rand.New(rand.NewPCG(
		DeriveSeed(root, 2*streamID),
		DeriveSeed(root, 2*streamID+1),
	))
}
