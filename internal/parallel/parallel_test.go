package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"idlereduce/internal/obs"
)

func TestMapPreservesInputOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		out, err := Map(context.Background(), "t", 100, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: len %d", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
}

func TestForEachRunsEveryItemOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		counts := make([]atomic.Int64, 50)
		err := ForEach(context.Background(), "t", 50, workers, func(_ context.Context, i int) error {
			counts[i].Add(1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: item %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestForEachFirstErrorCancels(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForEach(context.Background(), "t", 10_000, workers, func(ctx context.Context, i int) error {
			ran.Add(1)
			if i == 3 {
				return boom
			}
			return nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want wrapped boom", workers, err)
		}
		if n := ran.Load(); n >= 10_000 {
			t.Errorf("workers=%d: error did not cancel remaining items (ran %d)", workers, n)
		}
	}
}

func TestForEachErrorCarriesItemIndex(t *testing.T) {
	err := ForEach(context.Background(), "mypool", 5, 1, func(_ context.Context, i int) error {
		if i == 2 {
			return fmt.Errorf("bad item")
		}
		return nil
	})
	if err == nil || err.Error() != "parallel: pool mypool: item 2: bad item" {
		t.Fatalf("err = %v", err)
	}
}

func TestForEachPanicCapture(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), "p", 20, workers, func(_ context.Context, i int) error {
			if i == 7 {
				panic("kaboom")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *PanicError", workers, err)
		}
		if pe.Index != 7 || pe.Value != "kaboom" || pe.Pool != "p" || len(pe.Stack) == 0 {
			t.Errorf("workers=%d: panic error %+v", workers, pe)
		}
	}
}

func TestForEachPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEach(ctx, "t", 100, 4, func(_ context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestForEachCancellationIsPrompt(t *testing.T) {
	// A slow item stream with a mid-run cancel must return without
	// draining the remaining items.
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	go func() {
		for ran.Load() < 8 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	start := time.Now()
	err := ForEach(ctx, "t", 1_000_000, 4, func(ctx context.Context, i int) error {
		ran.Add(1)
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	if n := ran.Load(); n >= 1_000_000 {
		t.Errorf("cancel did not stop the pool (ran %d)", n)
	}
}

func TestForEachZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), "t", 0, 4, func(_ context.Context, i int) error {
		t.Fatal("fn called for empty range")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	out, err := Map(context.Background(), "t", 0, 4, func(_ context.Context, i int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("got %v, %v", out, err)
	}
}

func TestWorkersResolution(t *testing.T) {
	if got := Workers(5); got != 5 {
		t.Errorf("Workers(5) = %d", got)
	}
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefaultWorkers(3)
	defer SetDefaultWorkers(0)
	if got := Workers(0); got != 3 {
		t.Errorf("Workers(0) with default 3 = %d", got)
	}
	if got := Workers(-1); got != 3 {
		t.Errorf("Workers(-1) with default 3 = %d", got)
	}
	SetDefaultWorkers(0)
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) after reset = %d", got)
	}
}

func TestPoolMetricsPublished(t *testing.T) {
	rec := obs.NewRecorder("pool-test", nil, nil)
	ctx := obs.WithRecorder(context.Background(), rec)
	if err := ForEach(ctx, "unit", 32, 4, func(_ context.Context, i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	reg := rec.Registry()
	if got := reg.Counter(obs.L("pool_tasks_total", "pool", "unit")).Value(); got != 32 {
		t.Errorf("pool_tasks_total = %d, want 32", got)
	}
	if got := reg.Gauge(obs.L("pool_workers", "pool", "unit")).Value(); got != 4 {
		t.Errorf("pool_workers = %v, want 4", got)
	}
	if got := reg.Histogram(obs.L("pool_queue_depth", "pool", "unit")).Count(); got != 32 {
		t.Errorf("pool_queue_depth count = %d, want 32", got)
	}
}

func TestMapResultsIdenticalAcrossWorkerCounts(t *testing.T) {
	// The headline guarantee at engine level: RNG-bearing work merged
	// by Map is invariant to the worker count because every item draws
	// from its own derived stream.
	run := func(workers int) []float64 {
		out, err := Map(context.Background(), "det", 500, workers, func(_ context.Context, i int) (float64, error) {
			rng := RNG(42, uint64(i))
			return rng.Float64() + rng.Float64(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	base := run(1)
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		for i := range base {
			if got[i] != base[i] {
				t.Fatalf("workers=%d: item %d differs: %v vs %v", workers, i, got[i], base[i])
			}
		}
	}
}
