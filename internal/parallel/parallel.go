// Package parallel is the repo's deterministic parallel execution
// engine: a context-aware, bounded worker pool over index ranges plus a
// counter-based seed-derivation scheme, built so that every fan-out site
// (per-vehicle fleet generation, the (mu, q) strategy-region grid, the
// break-even and traffic sweeps, per-vehicle CR evaluation) produces
// byte-identical results for any worker count.
//
// The determinism contract has two halves:
//
//  1. Scheduling independence. ForEach and Map hand out item indices
//     from an atomic counter, but every result is merged back in input
//     order (Map writes out[i]; callers of ForEach write into
//     preallocated slots). No reduction ever observes completion order.
//
//  2. Stream independence. Work items that need randomness must not
//     share an RNG — the interleaving of draws would then depend on
//     scheduling. Instead each item derives its own stream with
//     DeriveSeed(root, streamID), a SplitMix64-style mix that is
//     bijective in the stream ID, so streams never collide and item i's
//     randomness depends only on (root, i), never on which worker ran it
//     or when.
//
// Pools publish throughput and queue-depth metrics through an
// obs.Recorder carried in the context (no-op without one): see
// docs/PARALLELISM.md and docs/OBSERVABILITY.md.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"idlereduce/internal/obs"
)

// defaultWorkers holds the process-wide default worker count used when a
// call site passes workers <= 0. Zero means runtime.GOMAXPROCS(0). The
// CLIs set it from their -workers flag.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker count used when
// a call passes workers <= 0. n <= 0 restores the GOMAXPROCS default.
// Changing the default never changes results — only scheduling.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Workers resolves a requested worker count: n > 0 is returned as is;
// otherwise the process default (SetDefaultWorkers), falling back to
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if d := int(defaultWorkers.Load()); d > 0 {
		return d
	}
	return runtime.GOMAXPROCS(0)
}

// PanicError wraps a panic recovered from a work item so the pool can
// return it as an ordinary error instead of crashing sibling workers.
type PanicError struct {
	// Pool is the pool name the panic occurred in.
	Pool string
	// Index is the work-item index whose fn panicked.
	Index int
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack trace.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: pool %s: item %d panicked: %v", e.Pool, e.Index, e.Value)
}

// ForEach runs fn(ctx, i) for every i in [0, n) on a bounded pool of
// workers (workers <= 0 means Workers(0)). The first error cancels the
// remaining items and is returned; panics inside fn are captured as
// *PanicError. fn must be safe for concurrent invocation across distinct
// indices. ctx cancellation is checked between items, so a cancelled
// ForEach returns promptly with ctx's error.
//
// When ctx carries an obs.Recorder, the pool publishes
// pool_tasks_total{pool=name}, pool_workers{pool=name},
// pool_tasks_per_sec{pool=name} and a pool_queue_depth{pool=name}
// histogram sampled at each task start.
func ForEach(ctx context.Context, name string, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	rec := obs.FromContext(ctx)
	var t0 time.Time
	var done atomic.Int64
	if rec.On() {
		t0 = time.Now()
		rec.Set(obs.L("pool_workers", "pool", name), float64(workers))
		defer func() {
			completed := done.Load()
			rec.Add(obs.L("pool_tasks_total", "pool", name), completed)
			if dt := time.Since(t0).Seconds(); dt > 0 {
				rec.Set(obs.L("pool_tasks_per_sec", "pool", name), float64(completed)/dt)
			}
		}()
	}

	runItem := func(ctx context.Context, i int) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Pool: name, Index: i, Value: r, Stack: debug.Stack()}
			}
		}()
		if rec.On() {
			rec.Observe(obs.L("pool_queue_depth", "pool", name), float64(n-i-1))
		}
		if err := fn(ctx, i); err != nil {
			return fmt.Errorf("parallel: pool %s: item %d: %w", name, i, err)
		}
		done.Add(1)
		return nil
	}

	if workers <= 1 {
		// Serial fast path: same item order, same per-item ctx checks.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runItem(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	fail := func(err error) {
		errOnce.Do(func() {
			firstErr = err
			cancel()
		})
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := wctx.Err(); err != nil {
					fail(err)
					return
				}
				if err := runItem(wctx, i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Prefer the parent context's error over the derived cancellation it
	// triggered, so callers see context.Canceled / DeadlineExceeded.
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

// Map runs fn(ctx, i) for every i in [0, n) on a bounded pool and
// returns the results in input order, invariant to the worker count. It
// shares ForEach's cancellation, panic-capture and metrics behavior; on
// error the partial results are discarded.
func Map[T any](ctx context.Context, name string, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, ctx.Err()
	}
	out := make([]T, n)
	err := ForEach(ctx, name, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
