package parallel

import "testing"

func TestDeriveSeedStableAcrossCalls(t *testing.T) {
	pairs := [][2]uint64{{0, 0}, {1, 0}, {0, 1}, {20140601, 1182}, {^uint64(0), ^uint64(0)}}
	for _, p := range pairs {
		a := DeriveSeed(p[0], p[1])
		b := DeriveSeed(p[0], p[1])
		if a != b {
			t.Errorf("DeriveSeed(%d, %d) unstable: %d vs %d", p[0], p[1], a, b)
		}
	}
}

func TestDeriveSeedNoCollisionsSmallRange(t *testing.T) {
	// Distinct stream IDs under one root must map to distinct seeds; the
	// map is bijective so this holds exactly, not just probabilistically.
	for _, root := range []uint64{0, 1, 42, 20140601, ^uint64(0)} {
		seen := make(map[uint64]uint64, 20000)
		for s := uint64(0); s < 20000; s++ {
			v := DeriveSeed(root, s)
			if prev, dup := seen[v]; dup {
				t.Fatalf("root %d: streams %d and %d collide on %d", root, prev, s, v)
			}
			seen[v] = s
		}
	}
}

func TestDeriveSeedSpreadsBits(t *testing.T) {
	// Adjacent stream IDs must not produce near-identical seeds: a
	// sanity check that the finalizer actually mixes (each output should
	// differ from its neighbor in roughly half the 64 bits).
	for s := uint64(0); s < 256; s++ {
		diff := DeriveSeed(7, s) ^ DeriveSeed(7, s+1)
		pop := popcount(diff)
		if pop < 10 || pop > 54 {
			t.Errorf("stream %d -> %d: only %d differing bits", s, s+1, pop)
		}
	}
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

func TestRNGStreamsIndependent(t *testing.T) {
	// Streams of the same root start at different states, and the same
	// (root, stream) pair always replays the same sequence.
	a1 := RNG(9, 0)
	a2 := RNG(9, 0)
	b := RNG(9, 1)
	var sameAB int
	for i := 0; i < 64; i++ {
		v1, v2, vb := a1.Uint64(), a2.Uint64(), b.Uint64()
		if v1 != v2 {
			t.Fatalf("replay diverged at draw %d", i)
		}
		if v1 == vb {
			sameAB++
		}
	}
	if sameAB > 2 {
		t.Errorf("streams 0 and 1 agree on %d of 64 draws", sameAB)
	}
}
