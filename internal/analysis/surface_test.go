package analysis

import (
	"math"
	"testing"

	"idlereduce/internal/dist"
	"idlereduce/internal/skirental"
)

func TestStrategyRegionsShape(t *testing.T) {
	cells := StrategyRegions(testB, 20, 20)
	if len(cells) != 21*21 {
		t.Fatalf("cells %d", len(cells))
	}
	seen := map[skirental.Choice]int{}
	for _, c := range cells {
		if !c.Feasible {
			// Infeasible cells must be exactly those with mu > B(1-q).
			if c.MuFrac <= (1-c.Q)+1e-12 {
				t.Errorf("cell (%v, %v) wrongly infeasible", c.MuFrac, c.Q)
			}
			continue
		}
		if c.CR < 1-1e-12 || c.CR > math.E/(math.E-1)+1e-12 {
			t.Errorf("cell (%v, %v): CR %v outside [1, e/(e-1)]", c.MuFrac, c.Q, c.CR)
		}
		seen[c.Choice]++
	}
	// All four strategies must appear somewhere on the map (Fig. 1a).
	for _, ch := range []skirental.Choice{skirental.ChoiceNRand, skirental.ChoiceTOI, skirental.ChoiceDET, skirental.ChoiceBDet} {
		if seen[ch] == 0 {
			t.Errorf("strategy %v never selected on the grid", ch)
		}
	}
}

func TestStrategyRegionsCorners(t *testing.T) {
	cells := StrategyRegions(testB, 10, 10)
	at := func(muFrac, q float64) RegionCell {
		for _, c := range cells {
			if math.Abs(c.MuFrac-muFrac) < 1e-9 && math.Abs(c.Q-q) < 1e-9 {
				return c
			}
		}
		t.Fatalf("cell (%v, %v) not found", muFrac, q)
		return RegionCell{}
	}
	// q=1 (all long): TOI is offline-optimal, CR=1.
	c := at(0, 1)
	if c.Choice != skirental.ChoiceTOI || math.Abs(c.CR-1) > 1e-9 {
		t.Errorf("corner (0,1): %+v", c)
	}
	// q=0, mu>0: DET is offline-optimal, CR=1.
	c = at(0.5, 0)
	if c.Choice != skirental.ChoiceDET || math.Abs(c.CR-1) > 1e-9 {
		t.Errorf("corner (0.5,0): %+v", c)
	}
}

func TestStrategyRegionsMinimumGrid(t *testing.T) {
	cells := StrategyRegions(testB, 0, 0) // clamped to 1x1
	if len(cells) != 4 {
		t.Errorf("cells %d want 4", len(cells))
	}
}

func TestProjectionCurvesEnvelope(t *testing.T) {
	// Figure 2: the proposed curve is the pointwise minimum of the vertex
	// baselines.
	for _, muFrac := range []float64{0.02, 0.05, 0.3} {
		pts := ProjectionCurves(testB, muFrac, 1, 50)
		if len(pts) == 0 {
			t.Fatalf("muFrac %v: no points", muFrac)
		}
		for _, pt := range pts {
			min := math.Inf(1)
			for _, name := range []string{"N-Rand", "TOI", "DET", "b-DET"} {
				if v := pt.Baselines[name]; v < min {
					min = v
				}
			}
			if math.Abs(pt.Proposed-min) > 1e-9 {
				t.Errorf("muFrac %v q %v: proposed %v, envelope %v", muFrac, pt.Q, pt.Proposed, min)
			}
		}
	}
}

func TestProjectionCurvesBDetImprovement(t *testing.T) {
	// Figure 2c-d: at mu = 0.02B there must be a q range where b-DET
	// strictly beats DET, TOI and N-Rand.
	pts := ProjectionCurves(testB, 0.02, 1, 200)
	found := false
	for _, pt := range pts {
		b := pt.Baselines
		if b["b-DET"] < b["DET"]-1e-9 && b["b-DET"] < b["TOI"]-1e-9 && b["b-DET"] < b["N-Rand"]-1e-9 {
			found = true
			break
		}
	}
	if !found {
		t.Error("no q where b-DET strictly improves on all others at mu=0.02B")
	}
}

func TestProjectionCurvesDefaults(t *testing.T) {
	pts := ProjectionCurves(testB, 0.1, -1, 0) // qMax and n clamped
	if len(pts) == 0 {
		t.Error("no points with clamped args")
	}
}

func TestTrafficSweepLowerEnvelope(t *testing.T) {
	// Figures 5-6: the proposed worst-case CR is the lower envelope over
	// every traffic condition.
	shape := dist.NewMixture(
		dist.Component{W: 0.85, D: dist.NewLogNormalMeanCV(40, 0.95)},
		dist.Component{W: 0.15, D: dist.Pareto{Xm: 90, Alpha: 1.6}},
	)
	base := dist.NewTruncated(shape, 1800)
	means := SweepMeans(5, 300, 15)
	for _, b := range []float64{28, 47} {
		pts, err := TrafficSweep(b, base, means)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != len(means) {
			t.Fatalf("B=%v: %d points", b, len(pts))
		}
		for _, pt := range pts {
			for name, cr := range pt.Baselines {
				if name == "NEV" {
					continue
				}
				if pt.Proposed > cr+1e-9 {
					t.Errorf("B=%v mean=%v: proposed %v > %s %v", b, pt.MeanStopSec, pt.Proposed, name, cr)
				}
			}
			if pt.Proposed < 1-1e-9 || pt.Proposed > math.E/(math.E-1)+1e-9 {
				t.Errorf("B=%v mean=%v: proposed CR %v out of range", b, pt.MeanStopSec, pt.Proposed)
			}
		}
	}
}

func TestTrafficSweepCrossoverShape(t *testing.T) {
	// DET must win at short means, TOI at long means (the Fig. 5 story).
	shape := dist.NewTruncated(dist.NewLogNormalMeanCV(40, 1.0), 1800)
	pts, err := TrafficSweep(28, shape, SweepMeans(2, 600, 25))
	if err != nil {
		t.Fatal(err)
	}
	first, last := pts[0], pts[len(pts)-1]
	if first.Baselines["DET"] > first.Baselines["TOI"] {
		t.Errorf("short stops: DET %v should beat TOI %v", first.Baselines["DET"], first.Baselines["TOI"])
	}
	if last.Baselines["TOI"] > last.Baselines["DET"] {
		t.Errorf("long stops: TOI %v should beat DET %v", last.Baselines["TOI"], last.Baselines["DET"])
	}
	// N-Rand is flat at e/(e-1).
	for _, pt := range pts {
		if math.Abs(pt.Baselines["N-Rand"]-math.E/(math.E-1)) > 1e-9 {
			t.Errorf("N-Rand not flat: %v", pt.Baselines["N-Rand"])
		}
	}
}

func TestTrafficSweepErrors(t *testing.T) {
	shape := dist.NewExponentialMean(30)
	if _, err := TrafficSweep(0, shape, []float64{10}); err == nil {
		t.Error("want error for B=0")
	}
	if _, err := TrafficSweep(28, shape, []float64{-5}); err == nil {
		t.Error("want error for negative mean")
	}
}

func TestSweepMeansLogSpacing(t *testing.T) {
	ms := SweepMeans(1, 100, 5)
	if len(ms) != 5 || ms[0] != 1 || ms[4] != 100 {
		t.Fatalf("means %v", ms)
	}
	// Log-spaced: constant ratio.
	r := ms[1] / ms[0]
	for i := 2; i < len(ms); i++ {
		if math.Abs(ms[i]/ms[i-1]-r) > 1e-9 {
			t.Errorf("ratio drift at %d", i)
		}
	}
	if got := SweepMeans(5, 1, 3); len(got) != 1 {
		t.Error("degenerate input should collapse")
	}
}

func TestBreakEvenSweepUnit(t *testing.T) {
	traffic := dist.NewTruncated(dist.NewLogNormalMeanCV(40, 1.1), 1800)
	pts, err := BreakEvenSweep(traffic, []float64{10, 28, 47, 120})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("points %d", len(pts))
	}
	for _, p := range pts {
		if p.Proposed < 1-1e-9 || p.Proposed > math.E/(math.E-1)+1e-9 {
			t.Errorf("B=%v: CR %v", p.B, p.Proposed)
		}
		if p.Stats.Validate(p.B) != nil {
			t.Errorf("B=%v: invalid stats %+v", p.B, p.Stats)
		}
	}
	if _, err := BreakEvenSweep(traffic, []float64{-5}); err == nil {
		t.Error("want error for negative B")
	}
}
