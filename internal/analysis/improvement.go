package analysis

import (
	"math"

	"idlereduce/internal/skirental"
)

// ImprovementCell is one grid point of the LP-OPT improvement map: how
// much the unrestricted minimax optimum undercuts the paper's four-vertex
// selector.
type ImprovementCell struct {
	// MuFrac is mu_B-/B; Q is q_B+.
	MuFrac, Q float64
	// PaperCR and LPCR are the two worst-case guarantees.
	PaperCR, LPCR float64
	// Gain is PaperCR - LPCR (>= 0 up to discretization noise).
	Gain float64
	// Choice is the vertex the paper's selector plays here.
	Choice skirental.Choice
}

// ImprovementMap sweeps the feasible statistics grid and measures where
// (and by how much) the unrestricted LP policy improves on the paper's
// closed form. nGrid controls the statistics grid; lpGrid the LP's
// threshold discretization. The expected structure: zero gain in the DET
// and TOI regions (the paper is tight there), positive gain peaking
// inside the b-DET and N-Rand regions.
func ImprovementMap(b float64, nGrid, lpGrid int) ([]ImprovementCell, error) {
	if nGrid < 2 {
		nGrid = 12
	}
	if lpGrid < 8 {
		lpGrid = 48
	}
	// The b-DET pocket lives at very small mu_B-/B (Fig. 2c-d works at
	// 0.02 and 0.05), so the mu axis gets extra resolution near zero on
	// top of the uniform grid.
	muFracs := []float64{0.01, 0.02, 0.05}
	for i := 0; i <= nGrid; i++ {
		muFracs = append(muFracs, float64(i)/float64(nGrid))
	}
	var cells []ImprovementCell
	for _, muFrac := range muFracs {
		for j := 0; j <= nGrid; j++ {
			q := float64(j) / float64(nGrid)
			s := skirental.Stats{MuBMinus: muFrac * b, QBPlus: q}
			if s.Validate(b) != nil {
				continue
			}
			off := s.OfflineCost(b)
			if off == 0 {
				continue
			}
			choice, cost := skirental.ComputeVertexCosts(b, s).Select()
			res, err := MinimaxLP(b, s, lpGrid)
			if err != nil {
				return nil, err
			}
			cell := ImprovementCell{
				MuFrac:  muFrac,
				Q:       q,
				PaperCR: cost / off,
				LPCR:    res.CR,
				Choice:  choice,
			}
			cell.Gain = math.Max(0, cell.PaperCR-cell.LPCR)
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// ImprovementSummary aggregates an improvement map by selected vertex.
type ImprovementSummary struct {
	Choice   skirental.Choice
	Cells    int
	MeanGain float64
	MaxGain  float64
}

// SummarizeImprovement groups the map's cells by the paper's selected
// vertex.
func SummarizeImprovement(cells []ImprovementCell) []ImprovementSummary {
	order := []skirental.Choice{
		skirental.ChoiceDET, skirental.ChoiceTOI,
		skirental.ChoiceBDet, skirental.ChoiceNRand,
	}
	agg := map[skirental.Choice]*ImprovementSummary{}
	for _, ch := range order {
		agg[ch] = &ImprovementSummary{Choice: ch}
	}
	for _, c := range cells {
		s := agg[c.Choice]
		if s == nil {
			continue
		}
		s.Cells++
		s.MeanGain += c.Gain
		if c.Gain > s.MaxGain {
			s.MaxGain = c.Gain
		}
	}
	out := make([]ImprovementSummary, 0, len(order))
	for _, ch := range order {
		s := agg[ch]
		if s.Cells > 0 {
			s.MeanGain /= float64(s.Cells)
		}
		out = append(out, *s)
	}
	return out
}
