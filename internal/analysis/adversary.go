// Package analysis computes the paper's analytical artifacts: worst-case
// competitive ratios over the constrained distribution family Q
// (adversarial search that validates the closed forms), the strategy
// regions and CR surface of Figure 1, the projection curves of Figure 2,
// the traffic sweeps of Figures 5-6, and the per-vehicle fleet evaluation
// of Figure 4.
package analysis

import (
	"math"

	"idlereduce/internal/dist"
	"idlereduce/internal/skirental"
)

// AdversaryResult is the outcome of a worst-case search.
type AdversaryResult struct {
	// CR is the largest expected competitive ratio found.
	CR float64
	// Distribution is the maximizing stop-length distribution (nil when
	// the CR is unbounded).
	Distribution *dist.Mixture
}

// WorstCaseSearch maximizes J(P, q)/E[offline] over the family
// Q(mu_B-, q_B+) for a concrete policy.
//
// Because J is linear in q and Q is defined by two linear constraints, an
// extreme-point maximizer needs at most two support points in (0, B] plus
// one above B. The search enumerates two-point short-stop configurations
// {a, c} on a grid (the weights are then determined by the constraints)
// and places the long mass where the policy's tail cost is worst. An
// unbounded tail (NEV) yields CR = +Inf.
//
// gridN controls the short-stop grid resolution (default 256).
func WorstCaseSearch(p skirental.Policy, s skirental.Stats, gridN int) AdversaryResult {
	b := p.B()
	if err := s.Validate(b); err != nil {
		return AdversaryResult{CR: math.NaN()}
	}
	if gridN < 2 {
		gridN = 256
	}
	mu, q := s.MuBMinus, s.QBPlus
	off := s.OfflineCost(b)
	if off == 0 {
		return AdversaryResult{CR: 1}
	}

	// Tail cost: policies with threshold support in [0, B] have constant
	// cost above B; NEV-like policies grow without bound.
	longAt := 2 * b
	longCost := p.MeanCostForStop(longAt)
	if far := p.MeanCostForStop(1000 * b); far > longCost*(1+1e-9)+1e-9 {
		if q > 0 {
			return AdversaryResult{CR: math.Inf(1)}
		}
		// No long mass: the tail never materializes.
	}

	shortMass := 1 - q
	best := math.Inf(-1)
	var bestA, bestC, bestW float64

	consider := func(a, c, w float64) {
		v := w*p.MeanCostForStop(a) + (shortMass-w)*p.MeanCostForStop(c) + q*longCost
		if v > best {
			best, bestA, bestC, bestW = v, a, c, w
		}
	}

	// Short support is treated as [0, B): an atom exactly at B is a
	// measure-zero boundary case where the >=-restart convention of
	// eq. 3 disagrees with the closed forms derived for continuous
	// distributions (a DET stop of exactly B would pay 2B while still
	// counting as "short"). The supremum over Q is approached from below.
	cMax := b * (1 - 1e-9)
	if shortMass <= 1e-15 {
		// All mass is long.
		best = q * longCost
		bestA, bestC, bestW = 0, 0, 0
	} else {
		target := math.Min(mu/shortMass, cMax) // required mean of the short part
		// Single-point configuration (a == c == target).
		consider(target, target, shortMass)
		// Two-point configurations a < target < c.
		for i := 0; i <= gridN; i++ {
			a := float64(i) / float64(gridN) * target
			for j := 0; j <= gridN; j++ {
				c := target + float64(j)/float64(gridN)*(cMax-target)
				if c <= a {
					continue
				}
				w := shortMass * (c - target) / (c - a)
				if w < -1e-12 || w > shortMass+1e-12 {
					continue
				}
				consider(a, c, math.Max(0, math.Min(w, shortMass)))
			}
		}
	}

	comps := make([]dist.Component, 0, 3)
	if bestW > 1e-15 {
		comps = append(comps, dist.Component{W: bestW, D: dist.PointMass{At: bestA}})
	}
	if rem := shortMass - bestW; rem > 1e-15 {
		comps = append(comps, dist.Component{W: rem, D: dist.PointMass{At: bestC}})
	}
	if q > 1e-15 {
		comps = append(comps, dist.Component{W: q, D: dist.PointMass{At: longAt}})
	}
	var adv *dist.Mixture
	if len(comps) > 0 {
		adv = dist.NewMixture(comps...)
	}
	return AdversaryResult{CR: best / off, Distribution: adv}
}
