package analysis

import (
	"math"
	"testing"

	"idlereduce/internal/fleet"
)

func smallFleet(t *testing.T, perArea int) *fleet.Fleet {
	t.Helper()
	areas := fleet.DefaultAreas()
	for i := range areas {
		areas[i].Vehicles = perArea
	}
	f, err := fleet.GenerateFleet(2024, areas...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestEvaluateVehicleBasics(t *testing.T) {
	f := smallFleet(t, 2)
	v := f.Vehicles[0]
	vcr, err := EvaluateVehicle(28, v)
	if err != nil {
		t.Fatal(err)
	}
	if vcr.ID != v.ID || vcr.Area != v.Area {
		t.Errorf("identity %+v", vcr)
	}
	if len(vcr.CR) != len(PolicyNames) {
		t.Fatalf("CR entries %d", len(vcr.CR))
	}
	for name, cr := range vcr.CR {
		if cr < 1-1e-9 {
			t.Errorf("%s: CR %v below 1", name, cr)
		}
		if name != "NEV" && cr > 3 {
			t.Errorf("%s: implausible CR %v", name, cr)
		}
	}
	if vcr.CR[vcr.Best] > vcr.CR["TOI"] || vcr.CR[vcr.Best] > vcr.CR["Proposed"] {
		t.Error("Best is not minimal")
	}
}

func TestEvaluateVehicleEmptyStops(t *testing.T) {
	v := &fleet.Vehicle{ID: "empty", Area: "X"}
	if _, err := EvaluateVehicle(28, v); err == nil {
		t.Error("want error for empty vehicle")
	}
}

func TestEvaluateFleetHeadlineClaims(t *testing.T) {
	// Scaled-down Figure 4: the proposed policy must be (tied-)best for
	// the large majority of vehicles at B=28 and lead every area's mean.
	f := smallFleet(t, 40)
	ev, err := EvaluateFleet(28, f)
	if err != nil {
		t.Fatal(err)
	}
	total := len(ev.Vehicles)
	if total != 120 {
		t.Fatalf("vehicles %d", total)
	}
	frac := float64(ev.ProposedBestTotal) / float64(total)
	if frac < 0.90 {
		t.Errorf("proposed best in only %.0f%% of vehicles (paper: 1169/1182 ≈ 99%%)", frac*100)
	}
	if len(ev.Areas) != 3 {
		t.Fatalf("areas %d", len(ev.Areas))
	}
	for _, a := range ev.Areas {
		// Mean CR of the proposed policy must be the lowest of the lineup.
		for _, name := range PolicyNames {
			if name == "Proposed" {
				continue
			}
			if a.MeanCR["Proposed"] > a.MeanCR[name]+1e-9 {
				t.Errorf("%s: proposed mean CR %v worse than %s %v", a.Area, a.MeanCR["Proposed"], name, a.MeanCR[name])
			}
		}
		if a.WorstCR["Proposed"] > math.E/(math.E-1)+1e-6 {
			t.Errorf("%s: proposed worst CR %v exceeds e/(e-1)", a.Area, a.WorstCR["Proposed"])
		}
		if a.Vehicles != 40 {
			t.Errorf("%s: %d vehicles", a.Area, a.Vehicles)
		}
	}
}

func TestEvaluateFleetB47StillRobust(t *testing.T) {
	f := smallFleet(t, 25)
	ev, err := EvaluateFleet(47, f)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(ev.ProposedBestTotal) / float64(len(ev.Vehicles))
	// Paper: 977/1182 ≈ 83% at B=47; allow a generous band.
	if frac < 0.6 {
		t.Errorf("proposed best in only %.0f%% of vehicles at B=47", frac*100)
	}
	for _, a := range ev.Areas {
		if a.MeanCR["Proposed"] > a.MeanCR["N-Rand"]+1e-9 {
			t.Errorf("%s: proposed mean %v worse than N-Rand %v", a.Area, a.MeanCR["Proposed"], a.MeanCR["N-Rand"])
		}
	}
}

func TestEvaluateFleetMeanCRBand(t *testing.T) {
	// The synthetic calibration should keep proposed mean CRs in the
	// paper's ballpark (1.10-1.35 at B=28) — loose sanity band.
	f := smallFleet(t, 30)
	ev, err := EvaluateFleet(28, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range ev.Areas {
		m := a.MeanCR["Proposed"]
		if m < 1.0 || m > 1.55 {
			t.Errorf("%s: proposed mean CR %v outside plausible band", a.Area, m)
		}
	}
}
