package analysis

import (
	"fmt"
	"math"

	"idlereduce/internal/lp"
	"idlereduce/internal/skirental"
)

// MinimaxResult is the numerically computed optimum of the constrained
// ski-rental game (paper eq. 16).
type MinimaxResult struct {
	// Value is the game value: the minimum over online policies of the
	// worst-case expected cost over Q(mu_B-, q_B+).
	Value float64
	// CR is Value divided by the offline cost mu + qB.
	CR float64
	// Thresholds and Weights describe the optimal discretized policy
	// P(x): probability Weights[i] on threshold Thresholds[i] (only
	// entries above 1e-9 are reported).
	Thresholds []float64
	Weights    []float64
	// Lambda1, Lambda2 are the optimal Lagrange multipliers of the
	// adversary's constraints (the paper's eq. 31 values for the chosen
	// vertex).
	Lambda1, Lambda2 float64
}

// MinimaxLP solves the minimax problem (16) directly by discretization,
// with no use of the paper's vertex analysis — an independent numerical
// check of the main theorem.
//
// REPRODUCTION FINDING: the check reveals that the paper's four-vertex
// selector is minimax-optimal only within its restricted strategy family
// (eq. 18 with the equalizing density of eq. 30). Over unrestricted
// randomized policies the LP finds strictly better strategies wherever
// the selector picks b-DET or N-Rand — e.g. worst-case CR 1.34 vs the
// closed-form 1.48 at (mu, q) = (0.02B, 0.3), confirmed by the
// independent adversarial search on the returned policy. In the DET and
// TOI regions the LP value coincides with the closed form, so those
// guarantees are genuinely tight. See EXPERIMENTS.md ("Minimax
// verification").
//
// Formulation: restrict thresholds to a grid x_1..x_n in [0, B]
// (Appendix A justifies the [0, B] restriction for the worst case). The
// adversary chooses short-stop mass q(y) >= 0 on a grid y_1..y_m in
// (0, B] subject to sum q = 1-q_B+ and sum y q = mu_B-, plus fixed long
// mass q_B+ above B. The inner maximum is an LP whose dual has two
// variables (the paper's lambda_1, lambda_2 in eq. 22), so the whole
// minimax is the single LP
//
//	min  lambda1·(1-q_B+) + lambda2·mu_B- + q_B+·C'(P)
//	s.t. lambda1 + lambda2·y_j >= C(P, y_j)   for every grid y_j
//	     sum_i P_i = 1, P >= 0, lambda1, lambda2 >= 0
//
// where C(P, y) = sum_i P_i·cost(x_i, y) and C'(P) = sum_i P_i·(x_i+B).
// (Non-negativity of the multipliers is valid here because the adversary
// constraints can be relaxed to <= without changing the optimum: extra
// mass or extra mean only helps the adversary.)
func MinimaxLP(b float64, s skirental.Stats, nGrid int) (*MinimaxResult, error) {
	if err := s.Validate(b); err != nil {
		return nil, err
	}
	if nGrid < 4 {
		nGrid = 64
	}
	mu, q := s.MuBMinus, s.QBPlus

	// Threshold grid x_i on [0, B]; adversary grid y_j on (0, B-] plus
	// the implicit long stop. Keep y strictly below B to avoid the
	// boundary artifact of an atom exactly at B (see WorstCaseSearch),
	// and include the b-DET-critical point sqrt(mu·B/q) in both grids.
	xs := gridWithCritical(b, mu, q, nGrid, true)
	ys := gridWithCritical(b, mu, q, nGrid, false)

	n := len(xs)
	// Variables: P_1..P_n, lambda1, lambda2.
	nv := n + 2
	cost := make([]float64, nv)
	for i, x := range xs {
		cost[i] = q * (x + b) // q_B+ · C'(P) term
	}
	cost[n] = 1 - q // lambda1
	cost[n+1] = mu  // lambda2

	var aub [][]float64
	var bub []float64
	// C(P, y_j) - lambda1 - lambda2·y_j <= 0.
	for _, y := range ys {
		row := make([]float64, nv)
		for i, x := range xs {
			row[i] = skirental.OnlineCost(x, y, b)
		}
		row[n] = -1
		row[n+1] = -y
		aub = append(aub, row)
		bub = append(bub, 0)
	}
	// Σ P_i = 1.
	aeq := make([]float64, nv)
	for i := 0; i < n; i++ {
		aeq[i] = 1
	}

	prob := &lp.Problem{
		C:   cost,
		AEq: [][]float64{aeq},
		BEq: []float64{1},
		AUb: aub,
		BUb: bub,
	}
	sol, st, err := prob.Solve()
	if err != nil {
		return nil, fmt.Errorf("analysis: minimax LP: %w", err)
	}
	if st != lp.Optimal {
		return nil, fmt.Errorf("analysis: minimax LP status %v", st)
	}

	res := &MinimaxResult{
		Value:   sol.Objective,
		Lambda1: sol.X[n],
		Lambda2: sol.X[n+1],
	}
	off := s.OfflineCost(b)
	if off > 0 {
		res.CR = res.Value / off
	} else {
		res.CR = 1
	}
	for i, w := range sol.X[:n] {
		if w > 1e-9 {
			res.Thresholds = append(res.Thresholds, xs[i])
			res.Weights = append(res.Weights, w)
		}
	}
	return res, nil
}

// Policy materializes the optimal discretized strategy as a playable
// threshold-mixture policy named "LP-OPT".
func (r *MinimaxResult) Policy(b float64) (*skirental.ThresholdMixture, error) {
	return skirental.NewThresholdMixture("LP-OPT", b, r.Thresholds, r.Weights)
}

// gridWithCritical builds a uniform grid on [0, B] (thresholds) or
// (0, B) (adversary stops), inserting the b-DET critical point when
// applicable.
func gridWithCritical(b, mu, q float64, n int, includeEnds bool) []float64 {
	lo, hi := 0.0, b
	if !includeEnds {
		lo, hi = b/float64(4*n), b*(1-1e-9)
	}
	out := make([]float64, 0, n+2)
	for i := 0; i <= n; i++ {
		out = append(out, lo+(hi-lo)*float64(i)/float64(n))
	}
	if q > 0 {
		if bStar := math.Sqrt(mu * b / q); bStar > lo && bStar < hi {
			out = append(out, bStar)
		}
	}
	// Near-zero stops are represented by the grid's lo point (mass at
	// exactly 0 is excluded by the paper's 0+ integration limits, and a
	// much smaller point would put nine orders of magnitude inside one
	// LP row, destabilizing the pivoting).
	return out
}

// NewLPOptFromStops estimates (mu_B-, q_B+) from an observed stop sample
// and returns the numerically optimal LP-OPT policy for those statistics.
func NewLPOptFromStops(b float64, stops []float64, nGrid int) (*skirental.ThresholdMixture, error) {
	s, err := skirental.EstimateStats(stops, b)
	if err != nil {
		return nil, err
	}
	res, err := MinimaxLP(b, s, nGrid)
	if err != nil {
		return nil, err
	}
	return res.Policy(b)
}
