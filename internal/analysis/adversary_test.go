package analysis

import (
	"math"
	"testing"

	"idlereduce/internal/skirental"
)

const testB = 28.0

func TestWorstCaseSearchMatchesClosedForms(t *testing.T) {
	// The adversarial search must reproduce the closed-form worst-case
	// CRs of the vertex strategies (the cross-check of Section 4).
	statsList := []skirental.Stats{
		{MuBMinus: 2, QBPlus: 0.1},
		{MuBMinus: 5, QBPlus: 0.3},
		{MuBMinus: 0.5, QBPlus: 0.7},
		{MuBMinus: 14, QBPlus: 0.2},
	}
	for _, s := range statsList {
		for _, tc := range []struct {
			p    skirental.Policy
			name string
		}{
			{skirental.NewTOI(testB), "TOI"},
			{skirental.NewDET(testB), "DET"},
			{skirental.NewNRand(testB), "N-Rand"},
		} {
			want := skirental.BaselineWorstCaseCR(tc.name, testB, s)
			got := WorstCaseSearch(tc.p, s, 200)
			if math.Abs(got.CR-want) > 0.01*want {
				t.Errorf("%s at %+v: search %v closed form %v", tc.name, s, got.CR, want)
			}
		}
	}
}

func TestWorstCaseSearchBDet(t *testing.T) {
	// For b-DET with the optimal threshold the search must recover
	// (sqrt(mu)+sqrt(qB))²/(mu+qB).
	s := skirental.Stats{MuBMinus: 0.05 * testB, QBPlus: 0.3}
	vc := skirental.ComputeVertexCosts(testB, s)
	p := skirental.NewBDet(testB, vc.BDetThreshold)
	got := WorstCaseSearch(p, s, 400)
	want := vc.BDet / s.OfflineCost(testB)
	if math.Abs(got.CR-want) > 0.01*want {
		t.Errorf("search %v closed form %v", got.CR, want)
	}
	if got.Distribution == nil {
		t.Fatal("no adversary returned")
	}
	// The adversary must respect the statistics it was built for.
	as := skirental.StatsOf(got.Distribution, testB)
	if math.Abs(as.MuBMinus-s.MuBMinus) > 0.02*testB || math.Abs(as.QBPlus-s.QBPlus) > 1e-9 {
		t.Errorf("adversary stats %+v, want %+v", as, s)
	}
}

func TestWorstCaseSearchNEVUnbounded(t *testing.T) {
	s := skirental.Stats{MuBMinus: 5, QBPlus: 0.2}
	got := WorstCaseSearch(skirental.NewNEV(testB), s, 64)
	if !math.IsInf(got.CR, 1) {
		t.Errorf("NEV should be unbounded, got %v", got.CR)
	}
	// Without long stops NEV is offline-optimal.
	s0 := skirental.Stats{MuBMinus: 5, QBPlus: 0}
	got0 := WorstCaseSearch(skirental.NewNEV(testB), s0, 64)
	if math.Abs(got0.CR-1) > 1e-6 {
		t.Errorf("NEV with q=0: CR %v want 1", got0.CR)
	}
}

func TestWorstCaseSearchMOMRand(t *testing.T) {
	// Reshaped MOM-Rand: convex per-stop cost, worst case
	// 1 + 1/(2(e-2)) when short mass can sit at B.
	s := skirental.Stats{MuBMinus: 3, QBPlus: 0.1}
	p := skirental.NewMOMRand(testB, 10)
	got := WorstCaseSearch(p, s, 300)
	want := 1 + 1/(2*(math.E-2))
	if math.Abs(got.CR-want) > 0.01 {
		t.Errorf("search %v want %v", got.CR, want)
	}
}

func TestWorstCaseSearchProposedMatchesBound(t *testing.T) {
	// The proposed policy's realized worst case must not exceed its
	// guaranteed bound (and should be tight).
	for _, s := range []skirental.Stats{
		{MuBMinus: 2, QBPlus: 0.05},
		{MuBMinus: 0.02 * testB, QBPlus: 0.3},
		{MuBMinus: 1, QBPlus: 0.8},
	} {
		p, err := skirental.NewConstrained(testB, s)
		if err != nil {
			t.Fatal(err)
		}
		got := WorstCaseSearch(p, s, 300)
		bound := p.WorstCaseCR()
		if got.CR > bound*(1+1e-6) {
			t.Errorf("stats %+v: search %v exceeds bound %v", s, got.CR, bound)
		}
		if got.CR < bound*0.98 {
			t.Errorf("stats %+v: bound not tight: search %v vs bound %v", s, got.CR, bound)
		}
	}
}

func TestWorstCaseSearchDegenerateInputs(t *testing.T) {
	if got := WorstCaseSearch(skirental.NewDET(testB), skirental.Stats{}, 32); got.CR != 1 {
		t.Errorf("zero stats CR %v", got.CR)
	}
	bad := skirental.Stats{MuBMinus: -1}
	if got := WorstCaseSearch(skirental.NewDET(testB), bad, 32); !math.IsNaN(got.CR) {
		t.Errorf("invalid stats should give NaN, got %v", got.CR)
	}
	// All mass long.
	allLong := skirental.Stats{MuBMinus: 0, QBPlus: 1}
	got := WorstCaseSearch(skirental.NewTOI(testB), allLong, 32)
	if math.Abs(got.CR-1) > 1e-9 {
		t.Errorf("TOI with q=1: CR %v want 1", got.CR)
	}
}
