package analysis

import (
	"context"
	"fmt"
	"math"

	"idlereduce/internal/fleet"
	"idlereduce/internal/parallel"
	"idlereduce/internal/skirental"
	"idlereduce/internal/stats"
)

// PolicyNames is the strategy lineup of the Figure 4 comparison, in the
// paper's order.
var PolicyNames = []string{"TOI", "NEV", "DET", "N-Rand", "MOM-Rand", "Proposed"}

// VehicleCR holds one vehicle's expected competitive ratio under each
// strategy.
type VehicleCR struct {
	ID   string
	Area string
	// CR maps policy name to the vehicle's expected CR (analytic
	// per-stop expectations over the vehicle's own week of stops).
	CR map[string]float64
	// Best is the name of the policy with the smallest CR.
	Best string
	// Choice is the vertex the proposed policy selected for this vehicle.
	Choice skirental.Choice
}

// EvaluateVehicle computes the CR of every lineup policy on one vehicle's
// stops. The proposed policy estimates (mu_B-, q_B+) from the vehicle's
// own stops — the same information MOM-Rand gets (the full mean).
func EvaluateVehicle(b float64, v *fleet.Vehicle) (VehicleCR, error) {
	if len(v.Stops) == 0 {
		return VehicleCR{}, fmt.Errorf("analysis: vehicle %s has no stops", v.ID)
	}
	mean := stats.Mean(v.Stops)
	prop, err := skirental.NewConstrainedFromStops(b, v.Stops)
	if err != nil {
		return VehicleCR{}, fmt.Errorf("analysis: vehicle %s: %w", v.ID, err)
	}
	policies := map[string]skirental.Policy{
		"TOI":      skirental.NewTOI(b),
		"NEV":      skirental.NewNEV(b),
		"DET":      skirental.NewDET(b),
		"N-Rand":   skirental.NewNRand(b),
		"MOM-Rand": skirental.NewMOMRand(b, mean),
		"Proposed": prop,
	}
	out := VehicleCR{ID: v.ID, Area: v.Area, CR: make(map[string]float64, len(policies)), Choice: prop.Choice()}
	best := math.Inf(1)
	for _, name := range PolicyNames {
		cr := skirental.TraceCR(policies[name], v.Stops)
		out.CR[name] = cr
		if cr < best {
			best, out.Best = cr, name
		}
	}
	return out, nil
}

// AreaSummary aggregates Figure 4 for one area.
type AreaSummary struct {
	Area     string
	Vehicles int
	// WorstCR and MeanCR map policy name to the maximum and mean CR over
	// the area's vehicles — the two bar groups of Figure 4.
	WorstCR map[string]float64
	MeanCR  map[string]float64
	// ProposedBest counts vehicles where the proposed policy attains the
	// (possibly tied) best CR.
	ProposedBest int
}

// FleetEvaluation is the full Figure 4 dataset.
type FleetEvaluation struct {
	B        float64
	Vehicles []VehicleCR
	Areas    []AreaSummary
	// ProposedBestTotal counts fleet-wide vehicles where the proposed
	// policy is (tied-)best — the paper's "1169 of 1182" headline.
	ProposedBestTotal int
}

// EvaluateFleet runs the Figure 4 experiment for break-even b.
func EvaluateFleet(b float64, f *fleet.Fleet) (*FleetEvaluation, error) {
	return EvaluateFleetContext(context.Background(), b, f, 0)
}

// EvaluateFleetContext is EvaluateFleet on the parallel engine: the
// per-vehicle evaluations (analytic, independent, RNG-free) fan out
// over a bounded pool (workers <= 0 means the engine default) and the
// per-area aggregation runs serially over the results in fleet order,
// so the evaluation is identical for every worker count.
func EvaluateFleetContext(ctx context.Context, b float64, f *fleet.Fleet, workers int) (*FleetEvaluation, error) {
	ev := &FleetEvaluation{B: b}
	vcrs, err := parallel.Map(ctx, "analysis.fleetcr", len(f.Vehicles), workers,
		func(_ context.Context, i int) (VehicleCR, error) {
			return EvaluateVehicle(b, f.Vehicles[i])
		})
	if err != nil {
		return nil, err
	}
	perArea := map[string][]VehicleCR{}
	for i, vcr := range vcrs {
		ev.Vehicles = append(ev.Vehicles, vcr)
		perArea[f.Vehicles[i].Area] = append(perArea[f.Vehicles[i].Area], vcr)
		if proposedIsBest(vcr) {
			ev.ProposedBestTotal++
		}
	}
	for _, area := range f.Areas() {
		vs := perArea[area]
		sum := AreaSummary{
			Area:     area,
			Vehicles: len(vs),
			WorstCR:  map[string]float64{},
			MeanCR:   map[string]float64{},
		}
		for _, name := range PolicyNames {
			worst := 0.0
			var crs []float64
			for _, v := range vs {
				cr := v.CR[name]
				crs = append(crs, cr)
				if cr > worst {
					worst = cr
				}
			}
			sum.WorstCR[name] = worst
			sum.MeanCR[name] = stats.Mean(crs)
		}
		for _, v := range vs {
			if proposedIsBest(v) {
				sum.ProposedBest++
			}
		}
		ev.Areas = append(ev.Areas, sum)
	}
	return ev, nil
}

// proposedIsBest reports whether the proposed policy's CR is within a
// hair of the vehicle's best CR (ties count as best, as in the paper's
// counting: the proposed policy playing DET ties DET exactly).
func proposedIsBest(v VehicleCR) bool {
	return v.CR["Proposed"] <= v.CR[v.Best]*(1+1e-12)
}
