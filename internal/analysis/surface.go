package analysis

import (
	"idlereduce/internal/skirental"
)

// RegionCell is one grid point of the Figure 1 strategy map.
type RegionCell struct {
	// MuFrac is mu_B- / B in [0, 1].
	MuFrac float64
	// Q is q_B+ in [0, 1].
	Q float64
	// Feasible reports whether (MuFrac, Q) is a valid statistics pair
	// (mu_B- <= B(1-q_B+)).
	Feasible bool
	// Choice is the proposed algorithm's selected strategy.
	Choice skirental.Choice
	// CR is the proposed algorithm's worst-case expected CR (Fig. 1b).
	CR float64
}

// StrategyRegions evaluates the proposed algorithm over an
// (nMu+1)×(nQ+1) grid of normalized statistics, reproducing Figure 1.
func StrategyRegions(b float64, nMu, nQ int) []RegionCell {
	if nMu < 1 {
		nMu = 1
	}
	if nQ < 1 {
		nQ = 1
	}
	cells := make([]RegionCell, 0, (nMu+1)*(nQ+1))
	for i := 0; i <= nMu; i++ {
		muFrac := float64(i) / float64(nMu)
		for j := 0; j <= nQ; j++ {
			q := float64(j) / float64(nQ)
			cell := RegionCell{MuFrac: muFrac, Q: q}
			s := skirental.Stats{MuBMinus: muFrac * b, QBPlus: q}
			if s.Validate(b) == nil {
				cell.Feasible = true
				vc := skirental.ComputeVertexCosts(b, s)
				choice, cost := vc.Select()
				cell.Choice = choice
				if off := s.OfflineCost(b); off > 0 {
					cell.CR = cost / off
				} else {
					cell.CR = 1
				}
			}
			cells = append(cells, cell)
		}
	}
	return cells
}

// ProjectionPoint is one abscissa of a Figure 2 projection: the worst-case
// CR of each strategy at fixed mu_B- as q_B+ varies.
type ProjectionPoint struct {
	// Q is q_B+.
	Q float64
	// Proposed is the proposed algorithm's worst-case CR.
	Proposed float64
	// Baselines maps strategy name (N-Rand, TOI, DET, b-DET, MOM-Rand)
	// to its worst-case CR at this point.
	Baselines map[string]float64
}

// ProjectionCurves computes a Figure 2 slice: worst-case CRs along
// q_B+ in (0, qMax] with mu_B- fixed at muFrac·B. Infeasible points are
// skipped.
func ProjectionCurves(b, muFrac, qMax float64, n int) []ProjectionPoint {
	if n < 2 {
		n = 2
	}
	if qMax <= 0 || qMax > 1 {
		qMax = 1
	}
	mu := muFrac * b
	pts := make([]ProjectionPoint, 0, n)
	for i := 1; i <= n; i++ {
		q := qMax * float64(i) / float64(n)
		s := skirental.Stats{MuBMinus: mu, QBPlus: q}
		if s.Validate(b) != nil {
			continue
		}
		cr, err := skirental.WorstCaseCRForStats(b, s)
		if err != nil {
			continue
		}
		pt := ProjectionPoint{Q: q, Proposed: cr, Baselines: map[string]float64{}}
		for _, name := range []string{"N-Rand", "TOI", "DET", "b-DET", "MOM-Rand"} {
			pt.Baselines[name] = skirental.BaselineWorstCaseCR(name, b, s)
		}
		pts = append(pts, pt)
	}
	return pts
}
