package analysis

import (
	"context"

	"idlereduce/internal/parallel"
	"idlereduce/internal/skirental"
)

// RegionCell is one grid point of the Figure 1 strategy map.
type RegionCell struct {
	// MuFrac is mu_B- / B in [0, 1].
	MuFrac float64
	// Q is q_B+ in [0, 1].
	Q float64
	// Feasible reports whether (MuFrac, Q) is a valid statistics pair
	// (mu_B- <= B(1-q_B+)).
	Feasible bool
	// Choice is the proposed algorithm's selected strategy.
	Choice skirental.Choice
	// CR is the proposed algorithm's worst-case expected CR (Fig. 1b).
	CR float64
}

// StrategyRegions evaluates the proposed algorithm over an
// (nMu+1)×(nQ+1) grid of normalized statistics, reproducing Figure 1.
func StrategyRegions(b float64, nMu, nQ int) []RegionCell {
	cells, err := StrategyRegionsContext(context.Background(), b, nMu, nQ, 0)
	if err != nil {
		// Unreachable with a background context: cell evaluation itself
		// never errors, so only cancellation (or a panic, re-wrapped by
		// the engine) can surface here.
		panic(err)
	}
	return cells
}

// StrategyRegionsContext is StrategyRegions on the parallel engine: the
// grid is filled cell-by-cell by a bounded worker pool (workers <= 0
// means the engine default) and merged in row-major input order, so the
// result is identical for every worker count. The only error source is
// ctx cancellation.
func StrategyRegionsContext(ctx context.Context, b float64, nMu, nQ, workers int) ([]RegionCell, error) {
	if nMu < 1 {
		nMu = 1
	}
	if nQ < 1 {
		nQ = 1
	}
	cols := nQ + 1
	n := (nMu + 1) * cols
	return parallel.Map(ctx, "analysis.regions", n, workers,
		func(_ context.Context, k int) (RegionCell, error) {
			i, j := k/cols, k%cols
			muFrac := float64(i) / float64(nMu)
			q := float64(j) / float64(nQ)
			cell := RegionCell{MuFrac: muFrac, Q: q}
			s := skirental.Stats{MuBMinus: muFrac * b, QBPlus: q}
			if s.Validate(b) == nil {
				cell.Feasible = true
				vc := skirental.ComputeVertexCosts(b, s)
				choice, cost := vc.Select()
				cell.Choice = choice
				if off := s.OfflineCost(b); off > 0 {
					cell.CR = cost / off
				} else {
					cell.CR = 1
				}
			}
			return cell, nil
		})
}

// ProjectionPoint is one abscissa of a Figure 2 projection: the worst-case
// CR of each strategy at fixed mu_B- as q_B+ varies.
type ProjectionPoint struct {
	// Q is q_B+.
	Q float64
	// Proposed is the proposed algorithm's worst-case CR.
	Proposed float64
	// Baselines maps strategy name (N-Rand, TOI, DET, b-DET, MOM-Rand)
	// to its worst-case CR at this point.
	Baselines map[string]float64
}

// ProjectionCurves computes a Figure 2 slice: worst-case CRs along
// q_B+ in (0, qMax] with mu_B- fixed at muFrac·B. Infeasible points are
// skipped.
func ProjectionCurves(b, muFrac, qMax float64, n int) []ProjectionPoint {
	pts, err := ProjectionCurvesContext(context.Background(), b, muFrac, qMax, n, 0)
	if err != nil {
		panic(err) // unreachable with a background context, as above
	}
	return pts
}

// ProjectionCurvesContext is ProjectionCurves on the parallel engine.
// Every abscissa is evaluated independently and the curve is assembled
// in q order with infeasible points dropped, so the slice is invariant
// to the worker count.
func ProjectionCurvesContext(ctx context.Context, b, muFrac, qMax float64, n, workers int) ([]ProjectionPoint, error) {
	if n < 2 {
		n = 2
	}
	if qMax <= 0 || qMax > 1 {
		qMax = 1
	}
	mu := muFrac * b
	raw, err := parallel.Map(ctx, "analysis.projection", n, workers,
		func(_ context.Context, k int) (*ProjectionPoint, error) {
			q := qMax * float64(k+1) / float64(n)
			s := skirental.Stats{MuBMinus: mu, QBPlus: q}
			if s.Validate(b) != nil {
				return nil, nil
			}
			cr, err := skirental.WorstCaseCRForStats(b, s)
			if err != nil {
				return nil, nil
			}
			pt := &ProjectionPoint{Q: q, Proposed: cr, Baselines: map[string]float64{}}
			for _, name := range []string{"N-Rand", "TOI", "DET", "b-DET", "MOM-Rand"} {
				pt.Baselines[name] = skirental.BaselineWorstCaseCR(name, b, s)
			}
			return pt, nil
		})
	if err != nil {
		return nil, err
	}
	pts := make([]ProjectionPoint, 0, n)
	for _, p := range raw {
		if p != nil {
			pts = append(pts, *p)
		}
	}
	return pts, nil
}
