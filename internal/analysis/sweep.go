package analysis

import (
	"context"
	"fmt"
	"math"

	"idlereduce/internal/dist"
	"idlereduce/internal/parallel"
	"idlereduce/internal/skirental"
)

// SweepPoint is one traffic condition of the Figures 5-6 sweep.
type SweepPoint struct {
	// MeanStopSec is the scaled mean stop length for this condition.
	MeanStopSec float64
	// Stats are the constrained statistics of the scaled distribution.
	Stats skirental.Stats
	// Proposed is the proposed algorithm's worst-case CR; Choice is the
	// vertex it plays.
	Proposed float64
	Choice   skirental.Choice
	// Baselines maps strategy name to worst-case CR under the same
	// statistics.
	Baselines map[string]float64
}

// TrafficSweep reproduces Figures 5 and 6: the base stop-length shape
// (the paper scales Chicago's) is rescaled to each target mean, the
// constrained statistics are measured, and every strategy's worst-case CR
// under those statistics is reported.
func TrafficSweep(b float64, shape dist.Distribution, means []float64) ([]SweepPoint, error) {
	return TrafficSweepContext(context.Background(), b, shape, means, 0)
}

// TrafficSweepContext is TrafficSweep on the parallel engine: each
// traffic condition is measured independently (the per-mean quadrature
// in StatsOf dominates) and results are merged in input order, so the
// sweep is invariant to the worker count (workers <= 0 means the engine
// default).
func TrafficSweepContext(ctx context.Context, b float64, shape dist.Distribution, means []float64, workers int) ([]SweepPoint, error) {
	if b <= 0 {
		return nil, fmt.Errorf("analysis: break-even %v must be positive", b)
	}
	return parallel.Map(ctx, "analysis.sweep", len(means), workers,
		func(_ context.Context, k int) (SweepPoint, error) {
			m := means[k]
			if m <= 0 {
				return SweepPoint{}, fmt.Errorf("analysis: mean stop %v must be positive", m)
			}
			scaled := dist.NewScaledToMean(shape, m)
			s := skirental.StatsOf(scaled, b)
			if err := s.Validate(b); err != nil {
				// Numerical clamp: tiny quadrature overshoots of the
				// feasibility boundary are projected back.
				if s.MuBMinus > b*(1-s.QBPlus) {
					s.MuBMinus = b * (1 - s.QBPlus)
				}
				if err := s.Validate(b); err != nil {
					return SweepPoint{}, err
				}
			}
			cr, err := skirental.WorstCaseCRForStats(b, s)
			if err != nil {
				return SweepPoint{}, err
			}
			choice, _ := skirental.ComputeVertexCosts(b, s).Select()
			pt := SweepPoint{
				MeanStopSec: m,
				Stats:       s,
				Proposed:    cr,
				Choice:      choice,
				Baselines:   map[string]float64{},
			}
			for _, name := range []string{"N-Rand", "TOI", "DET", "b-DET", "MOM-Rand", "NEV"} {
				pt.Baselines[name] = skirental.BaselineWorstCaseCR(name, b, s)
			}
			return pt, nil
		})
}

// SweepMeans returns a log-spaced grid of mean stop lengths from lo to hi
// seconds, the x axis of Figures 5-6.
func SweepMeans(lo, hi float64, n int) []float64 {
	if n < 2 || lo <= 0 || hi <= lo {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := range out {
		out[i] = v
		v *= ratio
	}
	out[n-1] = hi
	return out
}
