package analysis

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"idlereduce/internal/fleet"
	"idlereduce/internal/numeric"
)

// workerCounts is the matrix the ISSUE's acceptance criteria name: the
// serial baseline plus two genuinely concurrent pools.
var workerCounts = []int{1, 4, 8}

func TestStrategyRegionsDeterministicAcrossWorkers(t *testing.T) {
	base, err := StrategyRegionsContext(context.Background(), 28, 25, 25, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts[1:] {
		got, err := StrategyRegionsContext(context.Background(), 28, 25, 25, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: strategy-region grid differs from serial fill", w)
		}
	}
	// And the context-free wrapper must agree with the serial fill too.
	if got := StrategyRegions(28, 25, 25); !reflect.DeepEqual(base, got) {
		t.Error("StrategyRegions wrapper differs from serial fill")
	}
}

func TestProjectionCurvesDeterministicAcrossWorkers(t *testing.T) {
	base, err := ProjectionCurvesContext(context.Background(), 28, 0.05, 1, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(base) == 0 {
		t.Fatal("no projection points")
	}
	for _, w := range workerCounts[1:] {
		got, err := ProjectionCurvesContext(context.Background(), 28, 0.05, 1, 80, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: projection slice differs from serial fill", w)
		}
	}
}

func TestTrafficSweepDeterministicAcrossWorkers(t *testing.T) {
	shape := fleet.Chicago.StopLengthDistribution()
	means := SweepMeans(2, 600, 12)
	base, err := TrafficSweepContext(context.Background(), 28, shape, means, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts[1:] {
		got, err := TrafficSweepContext(context.Background(), 28, shape, means, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: traffic sweep differs from serial run", w)
		}
	}
}

func TestBreakEvenSweepDeterministicAcrossWorkers(t *testing.T) {
	traffic := fleet.Chicago.StopLengthDistribution()
	bs := numeric.Linspace(10, 150, 15)
	base, err := BreakEvenSweepContext(context.Background(), traffic, bs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerCounts[1:] {
		got, err := BreakEvenSweepContext(context.Background(), traffic, bs, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Errorf("workers=%d: break-even sweep differs from serial run", w)
		}
	}
}

func TestEvaluateFleetDeterministicAcrossWorkers(t *testing.T) {
	for _, seed := range []uint64{1, 20140601, 7} {
		f, err := fleet.GenerateFleet(seed,
			smallFleetArea(fleet.California, 8),
			smallFleetArea(fleet.Chicago, 8))
		if err != nil {
			t.Fatal(err)
		}
		base, err := EvaluateFleetContext(context.Background(), 28, f, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range workerCounts[1:] {
			got, err := EvaluateFleetContext(context.Background(), 28, f, w)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, w, err)
			}
			if !reflect.DeepEqual(base, got) {
				t.Errorf("seed %d: workers %d fleet evaluation differs from serial run", seed, w)
			}
		}
	}
}

func TestEvaluateFleetContextCancellation(t *testing.T) {
	f, err := fleet.GenerateFleet(3, smallFleetArea(fleet.California, 4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EvaluateFleetContext(ctx, 28, f, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func smallFleetArea(base fleet.AreaConfig, n int) fleet.AreaConfig {
	base.Vehicles = n
	return base
}
