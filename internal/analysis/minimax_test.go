package analysis

import (
	"math"
	"testing"

	"idlereduce/internal/skirental"
)

func TestMinimaxLPMatchesClosedFormInDeterministicRegions(t *testing.T) {
	// In the DET and TOI regions the paper's guarantee is genuinely
	// tight: the unrestricted LP cannot beat the closed form.
	cases := []struct {
		name string
		s    skirental.Stats
	}{
		{"DET region", skirental.Stats{MuBMinus: 2, QBPlus: 0.01}},
		{"TOI region", skirental.Stats{MuBMinus: 0.5, QBPlus: 0.95}},
	}
	for _, tc := range cases {
		res, err := MinimaxLP(testB, tc.s, 96)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		_, want := skirental.ComputeVertexCosts(testB, tc.s).Select()
		if math.Abs(res.Value-want) > 0.015*want {
			t.Errorf("%s: LP value %v, closed form %v", tc.name, res.Value, want)
		}
	}
}

func TestMinimaxLPBeatsVertexFamilyInRandomizedRegions(t *testing.T) {
	// REPRODUCTION FINDING: where the paper's selector picks b-DET or
	// N-Rand, the unrestricted LP finds strictly better policies. The
	// improvement must be real — the returned policy's worst case over
	// the true (continuum) adversary, computed by the independent
	// adversarial search, must also undercut the closed form.
	cases := []struct {
		name string
		s    skirental.Stats
	}{
		{"b-DET region", skirental.Stats{MuBMinus: 0.02 * testB, QBPlus: 0.3}},
		{"N-Rand region", skirental.Stats{MuBMinus: 2.8, QBPlus: 0.5}},
	}
	for _, tc := range cases {
		res, err := MinimaxLP(testB, tc.s, 96)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		_, closed := skirental.ComputeVertexCosts(testB, tc.s).Select()
		if res.Value >= closed*0.99 {
			t.Errorf("%s: expected a strict improvement, LP %v vs closed %v", tc.name, res.Value, closed)
		}
		// Independent verification against the continuum adversary.
		pol, err := res.Policy(testB)
		if err != nil {
			t.Fatal(err)
		}
		adv := WorstCaseSearch(pol, tc.s, 400)
		trueWorst := adv.CR * tc.s.OfflineCost(testB)
		if trueWorst >= closed*0.995 {
			t.Errorf("%s: continuum worst case %v does not confirm the improvement over %v", tc.name, trueWorst, closed)
		}
		// And the LP value cannot be better than its own policy's true
		// worst case by more than discretization noise.
		if trueWorst < res.Value*(1-1e-6) {
			t.Errorf("%s: continuum worst %v below LP value %v", tc.name, trueWorst, res.Value)
		}
		if trueWorst > res.Value*1.03 {
			t.Errorf("%s: continuum worst %v far above LP value %v (grid too coarse?)", tc.name, trueWorst, res.Value)
		}
	}
}

func TestMinimaxLPNeverAboveClosedForm(t *testing.T) {
	// The LP optimizes over a superset of the paper's strategy family
	// (restricted to grid thresholds), so up to discretization it can
	// never exceed the closed form; and it can never beat the offline
	// cost.
	for _, s := range []skirental.Stats{
		{MuBMinus: 1, QBPlus: 0.1},
		{MuBMinus: 5, QBPlus: 0.4},
		{MuBMinus: 12, QBPlus: 0.15},
		{MuBMinus: 8, QBPlus: 0.25},
	} {
		res, err := MinimaxLP(testB, s, 128)
		if err != nil {
			t.Fatal(err)
		}
		_, closed := skirental.ComputeVertexCosts(testB, s).Select()
		if res.Value > closed*(1+0.01) {
			t.Errorf("stats %+v: LP %v above closed form %v", s, res.Value, closed)
		}
		if off := s.OfflineCost(testB); res.Value < off*(1-1e-9) {
			t.Errorf("stats %+v: LP %v below offline cost %v", s, res.Value, off)
		}
	}
}

func TestMinimaxLPPolicyStructure(t *testing.T) {
	// In the DET region the optimal P should concentrate near x = B; in
	// the TOI region near x = 0.
	det, err := MinimaxLP(testB, skirental.Stats{MuBMinus: 2, QBPlus: 0.01}, 96)
	if err != nil {
		t.Fatal(err)
	}
	if w := massNear(det, testB, 0.05*testB); w < 0.9 {
		t.Errorf("DET region: mass near B only %v (thresholds %v)", w, det.Thresholds)
	}
	toi, err := MinimaxLP(testB, skirental.Stats{MuBMinus: 0.5, QBPlus: 0.95}, 96)
	if err != nil {
		t.Fatal(err)
	}
	if w := massNear(toi, 0, 0.05*testB); w < 0.9 {
		t.Errorf("TOI region: mass near 0 only %v (thresholds %v)", w, toi.Thresholds)
	}
}

func massNear(r *MinimaxResult, x0, tol float64) float64 {
	w := 0.0
	for i, x := range r.Thresholds {
		if math.Abs(x-x0) <= tol {
			w += r.Weights[i]
		}
	}
	return w
}

func TestMinimaxLPWeightsSumToOne(t *testing.T) {
	res, err := MinimaxLP(testB, skirental.Stats{MuBMinus: 6, QBPlus: 0.3}, 64)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, w := range res.Weights {
		sum += w
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("weights sum to %v", sum)
	}
	if res.Lambda1 < -1e-9 || res.Lambda2 < -1e-9 {
		t.Errorf("negative multipliers %v %v", res.Lambda1, res.Lambda2)
	}
	if _, err := res.Policy(testB); err != nil {
		t.Errorf("policy materialization failed: %v", err)
	}
}

func TestMinimaxLPLagrangeMultipliersEq31(t *testing.T) {
	// In the pure-DET region the tight dual is lambda1 + lambda2·y = y
	// (C(DET, y) = y for y <= B), i.e. multipliers ≈ (0, 1).
	res, err := MinimaxLP(testB, skirental.Stats{MuBMinus: 2, QBPlus: 0.01}, 96)
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda1 > 0.5 || math.Abs(res.Lambda2-1) > 0.1 {
		t.Errorf("DET region multipliers (%v, %v), want ≈(0, 1)", res.Lambda1, res.Lambda2)
	}
}

func TestMinimaxLPBadStats(t *testing.T) {
	if _, err := MinimaxLP(testB, skirental.Stats{MuBMinus: -1}, 32); err == nil {
		t.Error("want error for invalid stats")
	}
}

func TestNewLPOptFromStops(t *testing.T) {
	stops := []float64{5, 8, 3, 12, 7, 150, 4, 200, 6, 9}
	pol, err := NewLPOptFromStops(testB, stops, 48)
	if err != nil {
		t.Fatal(err)
	}
	if pol.Name() != "LP-OPT" {
		t.Errorf("name %q", pol.Name())
	}
	// LP-OPT's trace CR must not exceed the proposed policy's by more
	// than discretization noise on the same stops.
	prop, err := skirental.NewConstrainedFromStops(testB, stops)
	if err != nil {
		t.Fatal(err)
	}
	crLP := skirental.TraceCR(pol, stops)
	crP := skirental.TraceCR(prop, stops)
	if crLP > crP*1.05 {
		t.Errorf("LP-OPT trace CR %v far above proposed %v", crLP, crP)
	}
	if _, err := NewLPOptFromStops(testB, nil, 48); err == nil {
		t.Error("want error for empty stops")
	}
}
