package analysis

import (
	"context"
	"fmt"

	"idlereduce/internal/dist"
	"idlereduce/internal/parallel"
	"idlereduce/internal/skirental"
)

// BreakEvenPoint is one break-even value of a B-sensitivity sweep.
type BreakEvenPoint struct {
	// B is the break-even interval in seconds.
	B float64
	// Stats are the traffic statistics measured at this B.
	Stats skirental.Stats
	// Proposed is the proposed policy's worst-case CR at this B and the
	// vertex it selects.
	Proposed float64
	Choice   skirental.Choice
	// Baselines maps strategy name to its worst-case CR.
	Baselines map[string]float64
}

// BreakEvenSweep studies the sensitivity of the guarantees to the
// break-even interval itself: Appendix C's starter and battery bands
// make B uncertain by tens of seconds (19-155 s for the starter alone),
// so a deployment must know how the strategy and its CR move with B.
// The traffic distribution is held fixed while B varies.
func BreakEvenSweep(traffic dist.Distribution, bs []float64) ([]BreakEvenPoint, error) {
	return BreakEvenSweepContext(context.Background(), traffic, bs, 0)
}

// BreakEvenSweepContext is BreakEvenSweep on the parallel engine: each
// break-even value is an independent work item (the dominant cost is the
// per-B quadrature inside StatsOf) and results are merged in input
// order, so the sweep is invariant to the worker count (workers <= 0
// means the engine default).
func BreakEvenSweepContext(ctx context.Context, traffic dist.Distribution, bs []float64, workers int) ([]BreakEvenPoint, error) {
	return parallel.Map(ctx, "analysis.bsweep", len(bs), workers,
		func(_ context.Context, k int) (BreakEvenPoint, error) {
			b := bs[k]
			if b <= 0 {
				return BreakEvenPoint{}, fmt.Errorf("analysis: break-even %v must be positive", b)
			}
			s := skirental.StatsOf(traffic, b)
			if err := s.Validate(b); err != nil {
				// Clamp quadrature overshoot exactly as TrafficSweep does.
				if s.MuBMinus > b*(1-s.QBPlus) {
					s.MuBMinus = b * (1 - s.QBPlus)
				}
				if err := s.Validate(b); err != nil {
					return BreakEvenPoint{}, err
				}
			}
			cr, err := skirental.WorstCaseCRForStats(b, s)
			if err != nil {
				return BreakEvenPoint{}, err
			}
			choice, _ := skirental.ComputeVertexCosts(b, s).Select()
			pt := BreakEvenPoint{
				B:         b,
				Stats:     s,
				Proposed:  cr,
				Choice:    choice,
				Baselines: map[string]float64{},
			}
			for _, name := range []string{"N-Rand", "TOI", "DET", "b-DET", "MOM-Rand"} {
				pt.Baselines[name] = skirental.BaselineWorstCaseCR(name, b, s)
			}
			return pt, nil
		})
}
