package analysis

import (
	"math"
	"testing"

	"idlereduce/internal/skirental"
)

func TestSecondMomentRange(t *testing.T) {
	s := skirental.Stats{MuBMinus: 4, QBPlus: 0.2}
	lo, hi := SecondMomentRange(testB, s)
	if math.Abs(lo-16/0.8) > 1e-12 {
		t.Errorf("lo %v want %v", lo, 16/0.8)
	}
	if math.Abs(hi-4*testB) > 1e-12 {
		t.Errorf("hi %v want %v", hi, 4*testB)
	}
	// All mass long: degenerate range.
	lo, hi = SecondMomentRange(testB, skirental.Stats{MuBMinus: 0, QBPlus: 1})
	if lo != 0 || hi != 0 {
		t.Errorf("degenerate range (%v, %v)", lo, hi)
	}
}

func TestSecondMomentLPAtCeilingMatchesTwoMomentGame(t *testing.T) {
	// With m2 at its feasible ceiling the extra constraint never binds,
	// so the value must equal the plain (mu, q) minimax LP.
	s := skirental.Stats{MuBMinus: 0.02 * testB, QBPlus: 0.3}
	_, hi := SecondMomentRange(testB, s)
	plain, err := MinimaxLP(testB, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	withM2, err := MinimaxLPSecondMoment(testB, s, hi*1.0001, 64)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Value-withM2.Value) > 0.01*plain.Value {
		t.Errorf("slack m2 changed the value: %v vs %v", withM2.Value, plain.Value)
	}
}

func TestSecondMomentInformationStrictlyHelps(t *testing.T) {
	// REPRODUCTION CHECK of Appendix B's spirit: the paper argues moment
	// information does not change the optimal strategy. For the
	// *unconstrained-family* game the second moment DOES help: pinning
	// m2 near its Cauchy-Schwarz floor (short stops concentrated at one
	// length) lowers the game value strictly below the two-statistic
	// optimum.
	s := skirental.Stats{MuBMinus: 0.02 * testB, QBPlus: 0.3}
	lo, _ := SecondMomentRange(testB, s)
	plain, err := MinimaxLP(testB, s, 64)
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := MinimaxLPSecondMoment(testB, s, lo*1.05, 64)
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Value >= plain.Value*0.98 {
		t.Errorf("tight m2 should strictly help: %v vs plain %v", pinned.Value, plain.Value)
	}
	if pinned.CR < 1-1e-9 {
		t.Errorf("CR %v below 1", pinned.CR)
	}
}

func TestSecondMomentLPValidation(t *testing.T) {
	s := skirental.Stats{MuBMinus: 4, QBPlus: 0.2}
	if _, err := MinimaxLPSecondMoment(testB, s, -1, 32); err == nil {
		t.Error("want error for negative m2")
	}
	lo, _ := SecondMomentRange(testB, s)
	if _, err := MinimaxLPSecondMoment(testB, s, lo*0.5, 32); err == nil {
		t.Error("want error below the Cauchy-Schwarz floor")
	}
	if _, err := MinimaxLPSecondMoment(testB, skirental.Stats{MuBMinus: -1}, 10, 32); err == nil {
		t.Error("want error for invalid stats")
	}
}

func TestSecondMomentMonotoneInM2(t *testing.T) {
	// The game value is nondecreasing in m2 (a looser constraint can
	// only help the adversary).
	s := skirental.Stats{MuBMinus: 3, QBPlus: 0.25}
	lo, hi := SecondMomentRange(testB, s)
	prev := -1.0
	for _, frac := range []float64{0.05, 0.3, 0.7, 1.0} {
		m2 := lo + (hi-lo)*frac + lo*0.01
		res, err := MinimaxLPSecondMoment(testB, s, m2, 48)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value < prev-1e-6 {
			t.Errorf("value decreased at m2=%v: %v < %v", m2, res.Value, prev)
		}
		prev = res.Value
	}
}

func TestImprovementMapStructure(t *testing.T) {
	cells, err := ImprovementMap(testB, 10, 32)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) < 30 {
		t.Fatalf("cells %d", len(cells))
	}
	sums := SummarizeImprovement(cells)
	byChoice := map[skirental.Choice]ImprovementSummary{}
	for _, s := range sums {
		byChoice[s.Choice] = s
	}
	// The paper is tight in the deterministic regions...
	for _, ch := range []skirental.Choice{skirental.ChoiceDET, skirental.ChoiceTOI} {
		if s := byChoice[ch]; s.MaxGain > 0.02 {
			t.Errorf("%v region: unexpected gain %v", ch, s.MaxGain)
		}
	}
	// ...and beatable in the randomized regions.
	for _, ch := range []skirental.Choice{skirental.ChoiceBDet, skirental.ChoiceNRand} {
		s := byChoice[ch]
		if s.Cells == 0 {
			t.Errorf("%v region empty on the grid", ch)
			continue
		}
		if s.MaxGain < 0.03 {
			t.Errorf("%v region: gain %v too small for the documented finding", ch, s.MaxGain)
		}
	}
}

func TestImprovementMapDefaults(t *testing.T) {
	cells, err := ImprovementMap(testB, 0, 0) // clamped
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if c.Gain < 0 {
			t.Errorf("negative gain at (%v, %v)", c.MuFrac, c.Q)
		}
		if c.LPCR < 1-1e-9 {
			t.Errorf("LP CR %v below 1", c.LPCR)
		}
	}
}
