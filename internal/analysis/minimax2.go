package analysis

import (
	"fmt"
	"math"

	"idlereduce/internal/lp"
	"idlereduce/internal/skirental"
)

// MinimaxLPSecondMoment solves the constrained ski-rental game with an
// additional second-moment statistic: the adversary must also satisfy
//
//	∫_0^B y² q(y) dy <= m2
//
// (the partial second moment of short stops). The paper's Appendix B
// argues that moment information does not change the optimal strategy;
// this function tests the sharper question numerically: given
// (mu_B-, q_B+) AND m2, is the optimal worst-case CR lower than with
// (mu_B-, q_B+) alone?
//
// The answer is yes whenever m2 is strictly below its feasible maximum:
// the second moment caps how much short mass the adversary can place at
// large y (near the policy's thresholds), so the game value drops. The
// construction mirrors MinimaxLP with a third dual variable lambda3 >= 0
// for the new <= constraint (the adversary always benefits from more
// second moment for the same mean, since the per-stop cost is convex
// below each threshold's jump; relaxing to <= is therefore exact).
func MinimaxLPSecondMoment(b float64, s skirental.Stats, m2 float64, nGrid int) (*MinimaxResult, error) {
	if err := s.Validate(b); err != nil {
		return nil, err
	}
	if m2 < 0 {
		return nil, fmt.Errorf("analysis: negative second moment %v", m2)
	}
	// Feasibility: with mass 1-q and partial mean mu on [0, B], the
	// second moment lies in [mu²/(1-q), mu·B] (Cauchy-Schwarz lower
	// bound; upper bound from y <= B).
	mu, q := s.MuBMinus, s.QBPlus
	if 1-q > 1e-12 && m2 < mu*mu/(1-q)-1e-9 {
		return nil, fmt.Errorf("analysis: second moment %v below the Cauchy-Schwarz floor %v", m2, mu*mu/(1-q))
	}
	if nGrid < 4 {
		nGrid = 64
	}

	xs := gridWithCritical(b, mu, q, nGrid, true)
	ys := gridWithCritical(b, mu, q, nGrid, false)

	n := len(xs)
	nv := n + 3 // P_1..P_n, lambda1, lambda2, lambda3
	cost := make([]float64, nv)
	for i, x := range xs {
		cost[i] = q * (x + b)
	}
	cost[n] = 1 - q
	cost[n+1] = mu
	cost[n+2] = m2

	var aub [][]float64
	var bub []float64
	for _, y := range ys {
		row := make([]float64, nv)
		for i, x := range xs {
			row[i] = skirental.OnlineCost(x, y, b)
		}
		row[n] = -1
		row[n+1] = -y
		row[n+2] = -y * y
		aub = append(aub, row)
		bub = append(bub, 0)
	}
	aeq := make([]float64, nv)
	for i := 0; i < n; i++ {
		aeq[i] = 1
	}

	prob := &lp.Problem{
		C:   cost,
		AEq: [][]float64{aeq},
		BEq: []float64{1},
		AUb: aub,
		BUb: bub,
	}
	sol, st, err := prob.Solve()
	if err != nil {
		return nil, fmt.Errorf("analysis: second-moment minimax LP: %w", err)
	}
	if st != lp.Optimal {
		return nil, fmt.Errorf("analysis: second-moment minimax LP status %v", st)
	}

	res := &MinimaxResult{
		Value:   sol.Objective,
		Lambda1: sol.X[n],
		Lambda2: sol.X[n+1],
	}
	off := s.OfflineCost(b)
	if off > 0 {
		res.CR = res.Value / off
	} else {
		res.CR = 1
	}
	for i, w := range sol.X[:n] {
		if w > 1e-9 {
			res.Thresholds = append(res.Thresholds, xs[i])
			res.Weights = append(res.Weights, w)
		}
	}
	return res, nil
}

// SecondMomentRange returns the feasible range [lo, hi] of the partial
// second moment for statistics s at break-even b: the Cauchy-Schwarz
// floor mu²/(1-q) (all short mass at one point) and the ceiling mu·B
// (short mass split between 0 and B).
func SecondMomentRange(b float64, s skirental.Stats) (lo, hi float64) {
	if 1-s.QBPlus <= 1e-12 {
		return 0, 0
	}
	lo = s.MuBMinus * s.MuBMinus / (1 - s.QBPlus)
	hi = s.MuBMinus * b
	return lo, math.Max(lo, hi)
}
