package costmodel

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func TestAnnualSavingsBasic(t *testing.T) {
	v := NewFordFusion2011(3.5, true)
	// One week: 7000 s stopped, policy idled 1000 s and restarted 50
	// times.
	s, err := v.AnnualSavings(1000, 7000, 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	scale := 365.0 / 7
	wantIdle := 6000 * scale
	if math.Abs(s.IdleSecondsSaved-wantIdle) > 1e-6 {
		t.Errorf("idle saved %v want %v", s.IdleSecondsSaved, wantIdle)
	}
	if math.Abs(s.Restarts-50*scale) > 1e-6 {
		t.Errorf("restarts %v", s.Restarts)
	}
	// Fuel: (idleSaved - restarts·10s)·0.279 cc/s.
	wantFuel := (wantIdle - 50*scale*10) * 0.279 / 1000
	if math.Abs(s.FuelLiters-wantFuel) > 1e-6 {
		t.Errorf("fuel %v want %v", s.FuelLiters, wantFuel)
	}
	if s.USD <= 0 {
		t.Errorf("net saving %v should be positive for this profile", s.USD)
	}
}

func TestAnnualSavingsNetOfWear(t *testing.T) {
	// A pathological policy that restarts constantly on tiny stops must
	// show a NEGATIVE monetary saving on a conventional vehicle (wear
	// dominates) — the drivers' objection Appendix C quantifies.
	v := NewFordFusion2011(3.5, false)
	s, err := v.AnnualSavings(0, 3000, 1000, 7) // 3 s average stops, all restarted
	if err != nil {
		t.Fatal(err)
	}
	if s.USD >= 0 {
		t.Errorf("restart-happy policy should lose money on a conventional vehicle, got $%v", s.USD)
	}
}

func TestAnnualSavingsErrors(t *testing.T) {
	v := NewFordFusion2011(3.5, true)
	cases := []struct {
		idle, total float64
		restarts    int
		days        float64
	}{
		{0, 100, 0, 0},   // zero period
		{-1, 100, 0, 7},  // negative idle
		{200, 100, 0, 7}, // idle exceeds stopped time
		{0, 100, -1, 7},  // negative restarts
	}
	for i, c := range cases {
		if _, err := v.AnnualSavings(c.idle, c.total, c.restarts, c.days); !errors.Is(err, ErrBadUsage) {
			t.Errorf("case %d: want ErrBadUsage, got %v", i, err)
		}
	}
	var bad Vehicle
	if _, err := bad.AnnualSavings(0, 100, 0, 7); err == nil {
		t.Error("want error for zero-cost vehicle")
	}
}

func TestSavingsString(t *testing.T) {
	s := Savings{IdleSecondsSaved: 7200, FuelLiters: 12.5, USD: 30, Restarts: 500}
	out := s.String()
	for _, frag := range []string{"2 h", "12.5 L", "$30.00", "500 extra restarts"} {
		if !strings.Contains(out, frag) {
			t.Errorf("String missing %q: %s", frag, out)
		}
	}
}

func TestAnnualSavingsZeroRestartPolicyIsNEV(t *testing.T) {
	// NEV leaves everything idling: zero savings across the board.
	v := NewFordFusion2011(3.5, true)
	s, err := v.AnnualSavings(5000, 5000, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if s.IdleSecondsSaved != 0 || s.FuelLiters != 0 || s.USD != 0 || s.Restarts != 0 {
		t.Errorf("NEV profile should save nothing: %+v", s)
	}
}
