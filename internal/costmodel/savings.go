package costmodel

import (
	"errors"
	"fmt"
)

// Savings quantifies what a stop-start policy saves relative to never
// turning the engine off, annualized — the paper's motivation cites more
// than 6 billion gallons and $20 billion of idling waste per year in the
// US alone.
type Savings struct {
	// IdleSecondsSaved is the annual reduction in engine-on idling time.
	IdleSecondsSaved float64
	// FuelLiters is the annual net fuel saving (idling fuel avoided
	// minus restart fuel spent).
	FuelLiters float64
	// USD is the annual net monetary saving including wear components.
	USD float64
	// Restarts is the annual number of engine restarts the policy adds.
	Restarts float64
}

// String renders the summary.
func (s Savings) String() string {
	return fmt.Sprintf("%.0f h less idling, %.1f L fuel, $%.2f net (with %.0f extra restarts) per year",
		s.IdleSecondsSaved/3600, s.FuelLiters, s.USD, s.Restarts)
}

// ErrBadUsage reports invalid annualization inputs.
var ErrBadUsage = errors.New("costmodel: invalid usage profile")

// AnnualSavings scales one observed driving period to a year and prices
// the difference between a policy's idling profile and never-turn-off.
//
//	idleSecObserved:    engine-on idling the policy left in place
//	restartsObserved:   restarts the policy performed
//	totalStopSecObserved: total stopped time (what NEV would idle)
//	periodDays:         length of the observed window
func (v Vehicle) AnnualSavings(idleSecObserved, totalStopSecObserved float64, restartsObserved int, periodDays float64) (Savings, error) {
	if periodDays <= 0 {
		return Savings{}, fmt.Errorf("%w: period %v days", ErrBadUsage, periodDays)
	}
	if idleSecObserved < 0 || totalStopSecObserved < idleSecObserved || restartsObserved < 0 {
		return Savings{}, fmt.Errorf("%w: idle %v of %v stopped, %d restarts",
			ErrBadUsage, idleSecObserved, totalStopSecObserved, restartsObserved)
	}
	idling := v.IdlingCostCentsPerSec()
	if idling <= 0 {
		return Savings{}, fmt.Errorf("%w: vehicle has no idling cost", ErrBadUsage)
	}
	bd, err := v.BreakEven()
	if err != nil {
		return Savings{}, err
	}
	scale := 365 / periodDays

	idleSaved := (totalStopSecObserved - idleSecObserved) * scale
	restarts := float64(restartsObserved) * scale

	// Fuel: avoided idling minus the 10-seconds-equivalent per restart.
	rate := v.EffectiveIdleRateCCPerSec()
	fuelCC := idleSaved*rate - restarts*FuelOnlyBreakEven*rate

	// Money: idling cost avoided minus the full restart cost (fuel +
	// wear + emissions), all in the vehicle's own break-even units.
	restartCents := bd.TotalSec() * idling
	netCents := idleSaved*idling - restarts*restartCents

	return Savings{
		IdleSecondsSaved: idleSaved,
		FuelLiters:       fuelCC / 1000,
		USD:              netCents / 100,
		Restarts:         restarts,
	}, nil
}
