package costmodel

import (
	"errors"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestIdleFuelRegression(t *testing.T) {
	// Eq. 45 at D = 2.5 L: 0.3644*2.5 + 0.5188 = 1.4298 L/h.
	got := IdleFuelLitersPerHour(2.5)
	if math.Abs(got-1.4298) > 1e-12 {
		t.Errorf("got %v want 1.4298", got)
	}
}

func TestIdlingCostMatchesPaper(t *testing.T) {
	// Appendix C.1: 0.279 cc/s at $3.5/gal => 0.0258 cents/s.
	v := NewFordFusion2011(3.5, true)
	got := v.IdlingCostCentsPerSec()
	if math.Abs(got-0.0258) > 0.0001 {
		t.Errorf("idling cost %v cents/s, paper reports 0.0258", got)
	}
}

func TestEffectiveIdleRateFallback(t *testing.T) {
	v := Vehicle{DisplacementL: 2.5}
	// No measured rate: eq. 45 gives 1.4298 L/h = 0.39717 cc/s.
	want := 1.4298 * 1000 / 3600
	if got := v.EffectiveIdleRateCCPerSec(); math.Abs(got-want) > 1e-9 {
		t.Errorf("got %v want %v", got, want)
	}
	v.IdleRateCCPerSec = 0.279
	if got := v.EffectiveIdleRateCCPerSec(); got != 0.279 {
		t.Errorf("measured rate not preferred: %v", got)
	}
}

func TestBreakEvenSSVNearPaper(t *testing.T) {
	v := NewFordFusion2011(3.5, true)
	bd, err := v.BreakEven()
	if err != nil {
		t.Fatal(err)
	}
	if bd.StarterSec != 0 {
		t.Errorf("SSV starter wear must be 0, got %v", bd.StarterSec)
	}
	// Paper floors its component sum to the headline minimum of 28 s.
	if b := bd.TotalSec(); b < PaperBreakEvenSSV || b > PaperBreakEvenSSV+2 {
		t.Errorf("SSV B = %v, want within [28, 30]", b)
	}
}

func TestBreakEvenConventionalNearPaper(t *testing.T) {
	v := NewFordFusion2011(3.5, false)
	bd, err := v.BreakEven()
	if err != nil {
		t.Fatal(err)
	}
	if bd.StarterSec <= 0 {
		t.Error("conventional starter wear must be positive")
	}
	// Paper's starter band: 19.38 to 155.04 s; our minimum-cost starter
	// must sit at the low end.
	if bd.StarterSec < 19 || bd.StarterSec > 156 {
		t.Errorf("starter %v s outside the paper's band", bd.StarterSec)
	}
	if b := bd.TotalSec(); b < PaperBreakEvenConventional || b > PaperBreakEvenConventional+2.5 {
		t.Errorf("conventional B = %v, want within [47, 49.5]", b)
	}
}

func TestBreakEvenBatteryBand(t *testing.T) {
	// Paper: battery cost per start between 0.4841 and 0.9713 cents;
	// B_battery at least 18.76 s. Check the 2-year (worst) warranty.
	v := NewFordFusion2011(3.5, true)
	v.BatteryWarrantyYears = 2
	bd, err := v.BreakEven()
	if err != nil {
		t.Fatal(err)
	}
	idling := v.IdlingCostCentsPerSec()
	centsPerStart := bd.BatterySec * idling
	if centsPerStart < 0.48 || centsPerStart > 0.98 {
		t.Errorf("battery cost/start %v cents outside paper band [0.4841, 0.9713]", centsPerStart)
	}
	if bd.BatterySec < 18.5 {
		t.Errorf("battery B %v s below the paper's 18.76 s floor", bd.BatterySec)
	}
}

func TestEmissionComponentNegligible(t *testing.T) {
	// Paper: NOx tax equivalence ~0.14 s of idling. With the Swedish
	// price expressed in the paper's own dollar-figure arithmetic the
	// component must stay well below a second.
	v := NewFordFusion2011(3.5, false)
	bd, err := v.BreakEven()
	if err != nil {
		t.Fatal(err)
	}
	if bd.EmissionSec < 0 || bd.EmissionSec > 0.5 {
		t.Errorf("emission component %v s, expected ≈0.1 s", bd.EmissionSec)
	}
}

func TestBreakEvenErrors(t *testing.T) {
	var v Vehicle // everything zero
	if _, err := v.BreakEven(); !errors.Is(err, ErrBadVehicle) {
		t.Errorf("want ErrBadVehicle, got %v", err)
	}
	v = NewFordFusion2011(3.5, false)
	v.StarterLifetimeStarts = 0
	if _, err := v.BreakEven(); !errors.Is(err, ErrBadVehicle) {
		t.Errorf("want ErrBadVehicle for zero starter lifetime, got %v", err)
	}
	v = NewFordFusion2011(3.5, true)
	v.BatteryWarrantyYears = 0
	if _, err := v.BreakEven(); !errors.Is(err, ErrBadVehicle) {
		t.Errorf("want ErrBadVehicle for zero warranty, got %v", err)
	}
}

func TestCostRatioRoundTrip(t *testing.T) {
	v := NewFordFusion2011(3.5, true)
	cr, err := v.Costs()
	if err != nil {
		t.Fatal(err)
	}
	bd, _ := v.BreakEven()
	if math.Abs(cr.B()-bd.TotalSec()) > 1e-9 {
		t.Errorf("CostRatio.B() = %v, breakdown total %v", cr.B(), bd.TotalSec())
	}
}

func TestBreakdownString(t *testing.T) {
	bd := Breakdown{FuelSec: 10, StarterSec: 19.38, BatterySec: 18.76, EmissionSec: 0.14}
	s := bd.String()
	for _, frag := range []string{"fuel", "starter", "battery", "emissions", "48.28"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q: %s", frag, s)
		}
	}
}

func TestBreakEvenMonotoneInFuelPrice(t *testing.T) {
	// Property: higher fuel price -> cheaper wear relative to idling ->
	// smaller B (the fuel component is fixed at 10 s, the wear components
	// shrink).
	prop := func(u uint8) bool {
		p1 := 2 + float64(u%50)/10 // $2.0 .. $6.9
		p2 := p1 + 1
		v1 := NewFordFusion2011(p1, false)
		v2 := NewFordFusion2011(p2, false)
		b1, err1 := v1.BreakEven()
		b2, err2 := v2.BreakEven()
		if err1 != nil || err2 != nil {
			return false
		}
		return b2.TotalSec() < b1.TotalSec()
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestBreakEvenFuelOnlyVehicle(t *testing.T) {
	// A vehicle with no wear components reduces to the 10 s fuel rule.
	v := Vehicle{
		IdleRateCCPerSec:      0.279,
		FuelPriceUSDPerGallon: 3.5,
		HasSSS:                true,
	}
	bd, err := v.BreakEven()
	if err != nil {
		t.Fatal(err)
	}
	if bd.TotalSec() != FuelOnlyBreakEven {
		t.Errorf("fuel-only B = %v, want 10", bd.TotalSec())
	}
}

func TestPerStartComponentsMatchBreakdown(t *testing.T) {
	// The per-start component helpers must be consistent with the
	// BreakEven itemization: component cents / idling rate = seconds.
	v := NewFordFusion2011(3.5, false)
	bd, err := v.BreakEven()
	if err != nil {
		t.Fatal(err)
	}
	idling := v.IdlingCostCentsPerSec()
	starter, err := v.StarterCentsPerStart()
	if err != nil {
		t.Fatal(err)
	}
	battery, err := v.BatteryCentsPerStart()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(starter/idling-bd.StarterSec) > 1e-9 {
		t.Errorf("starter %v s vs breakdown %v s", starter/idling, bd.StarterSec)
	}
	if math.Abs(battery/idling-bd.BatterySec) > 1e-9 {
		t.Errorf("battery %v s vs breakdown %v s", battery/idling, bd.BatterySec)
	}
}
