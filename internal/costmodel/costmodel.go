// Package costmodel implements Appendix C of the paper: the derivation of
// the break-even interval B — the number of seconds of idling whose cost
// equals one engine restart — from vehicle fuel, starter, battery and
// emission parameters.
//
// All monetary quantities are in US cents; all durations in seconds.
// The headline values the evaluation uses are B = 28 s for stop-start
// vehicles (SSV) and B = 47 s for conventional vehicles; the component
// model here reproduces them to within a second (the paper rounds its
// intermediate estimates), and the experiments pin the exact published
// values via PaperBreakEvenSSV and PaperBreakEvenConventional.
package costmodel

import (
	"errors"
	"fmt"
	"math"
)

// Paper headline break-even intervals (seconds), Section 5.
const (
	// PaperBreakEvenSSV is the minimum break-even interval the paper
	// estimates for stop-start vehicles.
	PaperBreakEvenSSV = 28.0
	// PaperBreakEvenConventional is the estimate for vehicles without a
	// stop-start system.
	PaperBreakEvenConventional = 47.0
	// FuelOnlyBreakEven is the widely reported fuel-only equivalence:
	// one restart burns as much fuel as 10 seconds of idling.
	FuelOnlyBreakEven = 10.0
)

// ccPerGallon converts cubic centimetres to US gallons (eq. 46 uses 3785).
const ccPerGallon = 3785.0

// Vehicle describes the parameters Appendix C needs. The zero value is not
// usable; construct via NewFordFusion2011 or fill the fields explicitly.
type Vehicle struct {
	// DisplacementL is the engine displacement in litres, used by the
	// regression eq. 45 when IdleRateCCPerSec is zero.
	DisplacementL float64
	// IdleRateCCPerSec is the measured idling fuel rate in cc/s. When
	// zero it is derived from DisplacementL via eq. 45.
	IdleRateCCPerSec float64
	// FuelPriceUSDPerGallon is the pump price used to turn fuel volume
	// into cost.
	FuelPriceUSDPerGallon float64

	// HasSSS reports whether the vehicle has a stop-start system with a
	// strengthened starter (amortized starter wear ≈ 0).
	HasSSS bool

	// StarterReplacementUSD and StarterLaborUSD are the parts and labor
	// costs of one starter replacement (conventional vehicles only).
	StarterReplacementUSD float64
	StarterLaborUSD       float64
	// StarterLifetimeStarts is the starter durability in starts per
	// replacement (20k-40k per the paper's source).
	StarterLifetimeStarts float64

	// BatteryCostUSD is the replacement cost of the (stop-start) battery.
	BatteryCostUSD float64
	// BatteryWarrantyYears amortizes the battery over its warranty.
	BatteryWarrantyYears float64
	// StopsPerDay is the amortization rate of battery wear; the paper
	// uses the fleet-wide mu+2sigma = 32.43 stops/day upper bound.
	StopsPerDay float64

	// NOxTaxUSDPerKg prices NOx emissions (Sweden: ~4.3 EUR ≈ $5.8/kg;
	// the paper works the example at 4.3 per kg). Zero disables the
	// emission component.
	NOxTaxUSDPerKg float64
}

// Emission masses from the Argonne measurements cited in Appendix C.2.3.
const (
	// RestartNOxMg is the NOx emitted by one restart (mg).
	RestartNOxMg = 6.0
	// IdlingNOxMgPerSec is the NOx emitted per second of idling (mg/s).
	IdlingNOxMgPerSec = 0.0097
	// RestartTHCMg and RestartCOMg are reported for completeness.
	RestartTHCMg = 44.0
	RestartCOMg  = 1253.0
	// IdlingTHCMgPerSec and IdlingCOMgPerSec likewise.
	IdlingTHCMgPerSec = 0.266
	IdlingCOMgPerSec  = 0.108
)

// DefaultStopsPerDay is the paper's mu+2sigma upper bound on stops per
// day across the three NREL areas (Appendix C.2.2).
const DefaultStopsPerDay = 32.43

// NewFordFusion2011 returns the Argonne test vehicle of Appendix C.1:
// a 2.5 L sedan with a measured idling rate of 0.279 cc/s, priced at
// fuelUSDPerGallon. hasSSS selects the strengthened-starter variant.
func NewFordFusion2011(fuelUSDPerGallon float64, hasSSS bool) Vehicle {
	return Vehicle{
		DisplacementL:         2.5,
		IdleRateCCPerSec:      0.279,
		FuelPriceUSDPerGallon: fuelUSDPerGallon,
		HasSSS:                hasSSS,
		StarterReplacementUSD: 55,    // cheapest replacement
		StarterLaborUSD:       115,   // cheapest labor
		StarterLifetimeStarts: 34000, // within the 20k-40k band; see Breakdown docs
		BatteryCostUSD:        230,
		BatteryWarrantyYears:  4, // most favourable warranty => minimum B
		StopsPerDay:           DefaultStopsPerDay,
		NOxTaxUSDPerKg:        4.3,
	}
}

// IdleFuelLitersPerHour evaluates the displacement regression of eq. 45:
// fuel_L/h = 0.3644·D + 0.5188.
func IdleFuelLitersPerHour(displacementL float64) float64 {
	return 0.3644*displacementL + 0.5188
}

// EffectiveIdleRateCCPerSec returns the idling fuel rate in cc/s,
// preferring the measured value and falling back to eq. 45.
func (v Vehicle) EffectiveIdleRateCCPerSec() float64 {
	if v.IdleRateCCPerSec > 0 {
		return v.IdleRateCCPerSec
	}
	return IdleFuelLitersPerHour(v.DisplacementL) * 1000 / 3600
}

// IdlingCostCentsPerSec implements eq. 46:
// cost_idling/s = fuel_cc/s · p_gallon / 3785, in cents per second.
func (v Vehicle) IdlingCostCentsPerSec() float64 {
	return v.EffectiveIdleRateCCPerSec() * (v.FuelPriceUSDPerGallon * 100) / ccPerGallon
}

// Breakdown itemizes the break-even interval in seconds of idling per
// restart, mirroring eq. 47.
type Breakdown struct {
	// FuelSec is the fuel equivalence of a restart (10 s, Appendix C.2.1).
	FuelSec float64
	// StarterSec is amortized starter wear.
	StarterSec float64
	// BatterySec is amortized battery wear.
	BatterySec float64
	// EmissionSec is the NOx tax equivalence (≈0.14 s).
	EmissionSec float64
}

// TotalSec is the break-even interval B in seconds.
func (b Breakdown) TotalSec() float64 {
	return b.FuelSec + b.StarterSec + b.BatterySec + b.EmissionSec
}

// String renders the itemized break-even calculation.
func (b Breakdown) String() string {
	return fmt.Sprintf("fuel %.2fs + starter %.2fs + battery %.2fs + emissions %.2fs = B %.2fs",
		b.FuelSec, b.StarterSec, b.BatterySec, b.EmissionSec, b.TotalSec())
}

// ErrBadVehicle is returned when required vehicle parameters are missing
// or non-positive.
var ErrBadVehicle = errors.New("costmodel: vehicle parameters incomplete")

// BreakEven computes the itemized break-even interval for the vehicle.
func (v Vehicle) BreakEven() (Breakdown, error) {
	idling := v.IdlingCostCentsPerSec()
	if idling <= 0 || math.IsNaN(idling) {
		return Breakdown{}, fmt.Errorf("%w: idling cost %v cents/s", ErrBadVehicle, idling)
	}
	bd := Breakdown{FuelSec: FuelOnlyBreakEven}

	// Starter wear (Appendix C.2.2): zero for SSV, amortized replacement
	// cost for conventional vehicles.
	starter, err := v.StarterCentsPerStart()
	if err != nil {
		return Breakdown{}, err
	}
	bd.StarterSec = starter / idling

	// Battery wear: amortize the battery cost over warranty stops.
	battery, err := v.BatteryCentsPerStart()
	if err != nil {
		return Breakdown{}, err
	}
	bd.BatterySec = battery / idling

	// NOx tax (Appendix C.2.3). Restart emits RestartNOxMg but saves the
	// idling emissions, already negligible; the paper prices the restart
	// alone.
	if v.NOxTaxUSDPerKg > 0 {
		centsPerStart := RestartNOxMg * 1e-6 * v.NOxTaxUSDPerKg * 100
		bd.EmissionSec = centsPerStart / idling
	}
	return bd, nil
}

// CostRatio describes the two constants of Section 2: the idling cost per
// second and the one-time restart cost, and their ratio B (eq. 1).
type CostRatio struct {
	IdlingCentsPerSec float64
	RestartCents      float64
}

// B returns the break-even interval B = cost_restart / cost_idling/s.
func (c CostRatio) B() float64 { return c.RestartCents / c.IdlingCentsPerSec }

// Costs returns the CostRatio implied by the vehicle's break-even
// breakdown.
func (v Vehicle) Costs() (CostRatio, error) {
	bd, err := v.BreakEven()
	if err != nil {
		return CostRatio{}, err
	}
	idling := v.IdlingCostCentsPerSec()
	return CostRatio{
		IdlingCentsPerSec: idling,
		RestartCents:      bd.TotalSec() * idling,
	}, nil
}

// StarterCentsPerStart returns the amortized starter wear per restart
// (0 for SSV, whose strengthened starter outlives the vehicle).
func (v Vehicle) StarterCentsPerStart() (float64, error) {
	if v.HasSSS {
		return 0, nil
	}
	if v.StarterLifetimeStarts <= 0 {
		return 0, fmt.Errorf("%w: starter lifetime", ErrBadVehicle)
	}
	return (v.StarterReplacementUSD + v.StarterLaborUSD) * 100 / v.StarterLifetimeStarts, nil
}

// BatteryCentsPerStart returns the amortized battery wear per restart.
func (v Vehicle) BatteryCentsPerStart() (float64, error) {
	if v.BatteryCostUSD <= 0 {
		return 0, nil
	}
	if v.BatteryWarrantyYears <= 0 || v.StopsPerDay <= 0 {
		return 0, fmt.Errorf("%w: battery amortization", ErrBadVehicle)
	}
	starts := v.BatteryWarrantyYears * 365 * v.StopsPerDay
	return v.BatteryCostUSD * 100 / starts, nil
}
