package skirental

import (
	"math"
	"strings"
	"testing"
)

func roundTrip(t *testing.T, p Policy) Policy {
	t.Helper()
	data, err := MarshalPolicy(p)
	if err != nil {
		t.Fatalf("%s: marshal: %v", p.Name(), err)
	}
	got, err := UnmarshalPolicy(data)
	if err != nil {
		t.Fatalf("%s: unmarshal %s: %v", p.Name(), data, err)
	}
	return got
}

func TestPolicyRoundTripBehaviour(t *testing.T) {
	mix, err := NewThresholdMixture("LP-OPT", testB, []float64{0, 7, 21}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	cons, err := NewConstrained(testB, Stats{MuBMinus: 2, QBPlus: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	policies := []Policy{
		NewTOI(testB),
		NewNEV(testB),
		NewDET(testB),
		NewBDet(testB, 11),
		NewFixedThreshold("x40", testB, 40),
		NewNRand(testB),
		NewMOMRand(testB, 10),
		NewMOMRand(testB, 26), // above the cutoff: delegates to N-Rand
		cons,
		mix,
	}
	probe := []float64{0.5, 5, 11, 27.9, 28, 40, 41, 500}
	for _, p := range policies {
		got := roundTrip(t, p)
		if got.Name() != p.Name() {
			t.Errorf("%s: name became %q", p.Name(), got.Name())
		}
		if got.B() != p.B() {
			t.Errorf("%s: B %v -> %v", p.Name(), p.B(), got.B())
		}
		for _, y := range probe {
			a, b := p.MeanCostForStop(y), got.MeanCostForStop(y)
			if math.Abs(a-b) > 1e-12*(1+a) {
				t.Errorf("%s: cost at %v: %v vs %v", p.Name(), y, a, b)
			}
		}
	}
}

func TestConstrainedRoundTripKeepsChoice(t *testing.T) {
	p, err := NewConstrained(testB, Stats{MuBMinus: 0.02 * testB, QBPlus: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	got := roundTrip(t, p).(*Constrained)
	if got.Choice() != p.Choice() {
		t.Errorf("choice %v -> %v", p.Choice(), got.Choice())
	}
	if got.WorstCaseCR() != p.WorstCaseCR() {
		t.Errorf("bound %v -> %v", p.WorstCaseCR(), got.WorstCaseCR())
	}
}

func TestSpecOfRejectsStateful(t *testing.T) {
	r, err := NewRobustConstrained(testB, StatsInterval{MuLo: 1, MuHi: 2, QLo: 0.1, QHi: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SpecOf(r); err == nil {
		t.Error("robust policy should not be serializable")
	}
}

func TestBuildValidation(t *testing.T) {
	cases := []PolicySpec{
		{Kind: "toi", B: 0},
		{Kind: "b-det", B: 28, X: 0},
		{Kind: "b-det", B: 28, X: 40},
		{Kind: "fixed", B: 28, X: -1},
		{Kind: "mom-rand", B: 28, Mu: -5},
		{Kind: "constrained", B: 28},
		{Kind: "constrained", B: 28, Stats: &Stats{MuBMinus: -1}},
		{Kind: "mixture", B: 28},
		{Kind: "hybrid", B: 28},
	}
	for _, spec := range cases {
		if _, err := spec.Build(); err == nil {
			t.Errorf("spec %+v should fail", spec)
		}
	}
}

func TestUnmarshalBadJSON(t *testing.T) {
	if _, err := UnmarshalPolicy([]byte("{broken")); err == nil {
		t.Error("want decode error")
	}
}

func TestMarshalledFormIsReadable(t *testing.T) {
	data, err := MarshalPolicy(NewBDet(testB, 12.5))
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, frag := range []string{`"kind":"b-det"`, `"b":28`, `"x":12.5`} {
		if !strings.Contains(s, frag) {
			t.Errorf("json missing %q: %s", frag, s)
		}
	}
}

func TestDefaultNamesOnBuild(t *testing.T) {
	p, err := (PolicySpec{Kind: "fixed", B: 28, X: 5}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "fixed" {
		t.Errorf("default name %q", p.Name())
	}
	m, err := (PolicySpec{Kind: "mixture", B: 28, Xs: []float64{1}, Ws: []float64{1}}).Build()
	if err != nil {
		t.Fatal(err)
	}
	if m.Name() != "mixture" {
		t.Errorf("default mixture name %q", m.Name())
	}
}
