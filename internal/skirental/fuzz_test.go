package skirental

import (
	"math"
	"testing"
)

// FuzzEstimateStats: estimates from arbitrary float samples must either
// error or produce statistics that validate and build a working policy.
func FuzzEstimateStats(f *testing.F) {
	f.Add(10.0, 50.0, 200.0)
	f.Add(0.0, 0.0, 0.0)
	f.Add(-1.0, 5.0, 5.0)
	f.Add(math.MaxFloat64, 1.0, 2.0)
	f.Fuzz(func(t *testing.T, a, b, c float64) {
		stops := []float64{a, b, c}
		s, err := EstimateStats(stops, testB)
		if err != nil {
			return
		}
		if verr := s.Validate(testB); verr != nil {
			t.Fatalf("estimated stats %+v invalid: %v", s, verr)
		}
		p, err := NewConstrained(testB, s)
		if err != nil {
			t.Fatalf("valid stats rejected: %v", err)
		}
		if cr := p.WorstCaseCR(); cr < 1-1e-9 || cr > math.E/(math.E-1)+1e-9 {
			t.Fatalf("worst CR %v out of range", cr)
		}
	})
}

// FuzzOnlineCostInvariant: cost_online >= cost_offline for every finite
// non-negative pair, and cost functions never return NaN on valid input.
func FuzzOnlineCostInvariant(f *testing.F) {
	f.Add(0.0, 0.0)
	f.Add(28.0, 28.0)
	f.Add(1e300, 5.0)
	f.Fuzz(func(t *testing.T, x, y float64) {
		if math.IsNaN(x) || math.IsNaN(y) || x < 0 || y < 0 {
			return
		}
		on := OnlineCost(x, y, testB)
		off := OfflineCost(y, testB)
		if math.IsNaN(on) || math.IsNaN(off) {
			t.Fatalf("NaN cost for x=%v y=%v", x, y)
		}
		if on < off-1e-9 {
			t.Fatalf("online %v below offline %v (x=%v y=%v)", on, off, x, y)
		}
	})
}
