package skirental

import (
	"context"
	"testing"

	"idlereduce/internal/obs"
	"idlereduce/internal/stats"
)

func TestRecordSelection(t *testing.T) {
	rec := obs.NewRecorder("t", nil, nil)
	ctx := obs.WithRecorder(context.Background(), rec)
	c, err := NewConstrained(28, Stats{MuBMinus: 8, QBPlus: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	RecordSelection(ctx, c)
	reg := rec.Registry()
	label := obs.L("skirental_selection_total", "choice", c.Choice().String())
	if got := reg.Counter(label).Value(); got != 1 {
		t.Errorf("%s = %d want 1", label, got)
	}
	if got := reg.Gauge("skirental_worst_case_cr").Value(); got != c.WorstCaseCR() {
		t.Errorf("worst-case CR gauge %v want %v", got, c.WorstCaseCR())
	}
	if got := reg.Gauge("skirental_stats_q_b_plus").Value(); got != 0.2 {
		t.Errorf("q gauge %v", got)
	}
	// Without a recorder: must be a no-op, not a panic.
	RecordSelection(context.Background(), c)
}

func TestInstrumentObservesDraws(t *testing.T) {
	rec := obs.NewRecorder("t", nil, nil)
	ctx := obs.WithRecorder(context.Background(), rec)
	pol := Instrument(ctx, NewNRand(28))
	rng := stats.NewRNG(3)
	const draws = 500
	for i := 0; i < draws; i++ {
		x := pol.Threshold(rng)
		if x < 0 || x > 28 {
			t.Fatalf("N-Rand threshold %v out of [0, B]", x)
		}
	}
	h := rec.Registry().Histogram(obs.L("skirental_threshold_sec", "policy", "N-Rand"))
	if h.Count() != draws {
		t.Errorf("histogram count %d want %d", h.Count(), draws)
	}
	if p99 := h.Quantile(0.99); p99 > 28*1.05 {
		t.Errorf("p99 draw %v exceeds B", p99)
	}
	// Unwrapping recovers the original policy.
	if u, ok := pol.(interface{ Unwrap() Policy }); !ok || u.Unwrap().Name() != "N-Rand" {
		t.Error("instrumented policy does not unwrap")
	}
}

func TestInstrumentWithoutRecorderReturnsOriginal(t *testing.T) {
	p := NewDET(28)
	if got := Instrument(context.Background(), p); got != Policy(p) {
		t.Error("uninstrumented context must return the policy unwrapped")
	}
}
