package skirental

import (
	"math"
	"math/rand/v2"
	"testing"
)

// Property-based checks of the Section 4.4 closed forms: instead of a few
// hand-picked points, every identity is asserted on thousands of randomly
// drawn feasible (mu_B-, q_B+, B) triples. The generator is seeded, so a
// failure reproduces exactly.

// drawFeasible samples a feasible statistics triple: B in [5, 200],
// q in [0, 1), mu in [0, B(1-q)].
func drawFeasible(rng *rand.Rand) (s Stats, b float64) {
	b = 5 + 195*rng.Float64()
	q := rng.Float64()
	mu := rng.Float64() * b * (1 - q)
	return Stats{MuBMinus: mu, QBPlus: q}, b
}

const propIters = 2000

func TestPropertyVertexCostClosedForms(t *testing.T) {
	rng := rand.New(rand.NewPCG(2014, 0x600d))
	for it := 0; it < propIters; it++ {
		s, b := drawFeasible(rng)
		if err := s.Validate(b); err != nil {
			t.Fatalf("iter %d: generator produced infeasible stats: %v", it, err)
		}
		mu, q := s.MuBMinus, s.QBPlus
		vc := ComputeVertexCosts(b, s)

		checkClose(t, it, "N-Rand", vc.NRand, math.E/(math.E-1)*(mu+q*b))
		checkClose(t, it, "TOI", vc.TOI, b)
		checkClose(t, it, "DET", vc.DET, mu+2*q*b)

		applicable := q > 0 && mu/b < (1-q)*(1-q)/q
		if applicable {
			want := math.Pow(math.Sqrt(mu)+math.Sqrt(q*b), 2)
			checkClose(t, it, "b-DET", vc.BDet, want)
			if !(vc.BDetThreshold > 0) {
				t.Fatalf("iter %d: applicable b-DET has threshold %v", it, vc.BDetThreshold)
			}
		} else {
			if !math.IsInf(vc.BDet, 1) {
				t.Fatalf("iter %d: condition 36 fails (mu=%v q=%v B=%v) but BDet = %v, want +Inf",
					it, mu, q, b, vc.BDet)
			}
			if !math.IsNaN(vc.BDetThreshold) {
				t.Fatalf("iter %d: inapplicable b-DET has threshold %v, want NaN", it, vc.BDetThreshold)
			}
		}
	}
}

func TestPropertySelectAttainsMinimum(t *testing.T) {
	rng := rand.New(rand.NewPCG(2014, 0xbe57))
	for it := 0; it < propIters; it++ {
		s, b := drawFeasible(rng)
		vc := ComputeVertexCosts(b, s)
		choice, cost := vc.Select()
		minCost := math.Min(math.Min(vc.NRand, vc.TOI), math.Min(vc.DET, vc.BDet))
		if cost != minCost {
			t.Fatalf("iter %d: Select cost %v != min vertex cost %v (stats %+v, B %v)",
				it, cost, minCost, s, b)
		}
		attained := map[Choice]float64{
			ChoiceNRand: vc.NRand, ChoiceTOI: vc.TOI, ChoiceDET: vc.DET, ChoiceBDet: vc.BDet,
		}[choice]
		if attained != cost {
			t.Fatalf("iter %d: Select returned choice %v with cost %v but that vertex costs %v",
				it, choice, cost, attained)
		}
		if choice == ChoiceBDet {
			// b-DET can only be chosen where condition (36) admits it.
			if !(s.QBPlus > 0 && s.MuBMinus/b < (1-s.QBPlus)*(1-s.QBPlus)/s.QBPlus) {
				t.Fatalf("iter %d: b-DET selected outside condition 36 (stats %+v, B %v)", it, s, b)
			}
		}
	}
}

func TestPropertyBDetBaselineCR(t *testing.T) {
	rng := rand.New(rand.NewPCG(2014, 0xcafe))
	for it := 0; it < propIters; it++ {
		s, b := drawFeasible(rng)
		off := s.OfflineCost(b)
		if off == 0 {
			continue
		}
		got := BaselineWorstCaseCR("b-DET", b, s)
		mu, q := s.MuBMinus, s.QBPlus
		if q > 0 && mu/b < (1-q)*(1-q)/q {
			want := math.Pow(math.Sqrt(mu)+math.Sqrt(q*b), 2) / (mu + q*b)
			checkClose(t, it, "b-DET CR", got, want)
		} else if !math.IsInf(got, 1) {
			t.Fatalf("iter %d: inapplicable b-DET CR = %v, want +Inf", it, got)
		}
	}
}

func TestPropertyWorstCaseCRBounds(t *testing.T) {
	rng := rand.New(rand.NewPCG(2014, 0xb0bd))
	eps := 1e-9
	nrand := math.E / (math.E - 1)
	for it := 0; it < propIters; it++ {
		s, b := drawFeasible(rng)
		cr, err := WorstCaseCRForStats(b, s)
		if err != nil {
			t.Fatalf("iter %d: feasible stats rejected: %v", it, err)
		}
		// The proposed policy can always fall back to N-Rand, so its
		// worst-case CR sits in [1, e/(e-1)].
		if cr < 1-eps || cr > nrand+eps {
			t.Fatalf("iter %d: worst-case CR %v outside [1, e/(e-1)] (stats %+v, B %v)",
				it, cr, s, b)
		}
	}
}

func TestPropertyConstrainedMatchesVertexCosts(t *testing.T) {
	rng := rand.New(rand.NewPCG(2014, 0xfeed))
	for it := 0; it < 500; it++ {
		s, b := drawFeasible(rng)
		c, err := NewConstrained(b, s)
		if err != nil {
			t.Fatalf("iter %d: %v", it, err)
		}
		vc := ComputeVertexCosts(b, s)
		choice, cost := vc.Select()
		if c.Choice() != choice {
			t.Fatalf("iter %d: policy chose %v, Select says %v", it, c.Choice(), choice)
		}
		if c.WorstCaseCost() != cost {
			t.Fatalf("iter %d: policy cost %v, Select says %v", it, c.WorstCaseCost(), cost)
		}
	}
}

// checkClose asserts a relative tolerance of 1e-12 (closed forms must
// match to floating-point reassociation error, nothing looser).
func checkClose(t *testing.T, iter int, name string, got, want float64) {
	t.Helper()
	if math.IsInf(want, 1) && math.IsInf(got, 1) {
		return
	}
	tol := 1e-12 * math.Max(1, math.Abs(want))
	if math.Abs(got-want) > tol {
		t.Fatalf("iter %d: %s = %v, want %v", iter, name, got, want)
	}
}
