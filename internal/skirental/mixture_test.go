package skirental

import (
	"math"
	"testing"

	"idlereduce/internal/numeric"
)

func TestThresholdMixtureValidation(t *testing.T) {
	cases := []struct {
		name   string
		b      float64
		xs, ws []float64
	}{
		{"bad B", 0, []float64{1}, []float64{1}},
		{"empty", 28, nil, nil},
		{"mismatch", 28, []float64{1, 2}, []float64{1}},
		{"negative x", 28, []float64{-1}, []float64{1}},
		{"negative w", 28, []float64{1}, []float64{-1}},
		{"zero total", 28, []float64{1}, []float64{0}},
	}
	for _, c := range cases {
		if _, err := NewThresholdMixture("m", c.b, c.xs, c.ws); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestThresholdMixtureNormalizesWeights(t *testing.T) {
	m, err := NewThresholdMixture("m", testB, []float64{0, 10}, []float64{2, 6})
	if err != nil {
		t.Fatal(err)
	}
	_, ws := m.Support()
	if math.Abs(ws[0]-0.25) > 1e-12 || math.Abs(ws[1]-0.75) > 1e-12 {
		t.Errorf("weights %v", ws)
	}
	if m.Name() != "m" || m.B() != testB {
		t.Error("metadata wrong")
	}
}

func TestThresholdMixtureMeanCost(t *testing.T) {
	// 50/50 between TOI (x=0) and DET (x=B).
	m, err := NewThresholdMixture("m", testB, []float64{0, testB}, []float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Short stop y=10: 0.5·B (restarted at 0) + 0.5·10 (waited) = 19.
	if got := m.MeanCostForStop(10); math.Abs(got-19) > 1e-12 {
		t.Errorf("cost %v want 19", got)
	}
	// Long stop: 0.5·B + 0.5·2B = 42.
	if got := m.MeanCostForStop(100); math.Abs(got-42) > 1e-12 {
		t.Errorf("cost %v want 42", got)
	}
}

func TestThresholdMixtureSamplingMatchesWeights(t *testing.T) {
	m, err := NewThresholdMixture("m", testB, []float64{1, 5, 9}, []float64{0.2, 0.3, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := newRNG(12)
	counts := map[float64]int{}
	const N = 200_000
	for i := 0; i < N; i++ {
		counts[m.Threshold(rng)]++
	}
	for i, want := range []float64{0.2, 0.3, 0.5} {
		x := []float64{1, 5, 9}[i]
		got := float64(counts[x]) / N
		if math.Abs(got-want) > 0.005 {
			t.Errorf("x=%v: frequency %v want %v", x, got, want)
		}
	}
}

func TestThresholdMixtureMonteCarloAgreesWithMean(t *testing.T) {
	m, err := NewThresholdMixture("m", testB, []float64{0, 7, 21}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := newRNG(13)
	for _, y := range []float64{3.0, 10.0, 50.0} {
		var sum numeric.KahanSum
		const N = 300_000
		for i := 0; i < N; i++ {
			sum.Add(OnlineCost(m.Threshold(rng), y, testB))
		}
		mc := sum.Sum() / N
		an := m.MeanCostForStop(y)
		if math.Abs(mc-an) > 0.01*an {
			t.Errorf("y=%v: MC %v analytic %v", y, mc, an)
		}
	}
}

func TestThresholdMixtureSupportCopies(t *testing.T) {
	m, _ := NewThresholdMixture("m", testB, []float64{1, 2}, []float64{1, 1})
	xs, ws := m.Support()
	xs[0], ws[0] = 99, 99
	xs2, ws2 := m.Support()
	if xs2[0] != 1 || math.Abs(ws2[0]-0.5) > 1e-12 {
		t.Error("Support aliases internal state")
	}
}
