package skirental

import (
	"math"
	"testing"

	"idlereduce/internal/dist"
)

func TestExpectedCostPointMass(t *testing.T) {
	d := dist.PointMass{At: 10}
	if got := ExpectedCost(NewDET(testB), d); got != 10 {
		t.Errorf("DET on atom(10): %v", got)
	}
	if got := ExpectedCost(NewTOI(testB), d); got != 28 {
		t.Errorf("TOI on atom(10): %v", got)
	}
}

func TestExpectedCostMatchesEq14ForDET(t *testing.T) {
	// eq. 14: E[cost_DET] = mu_B- + 2 q_B+ B for any distribution.
	dists := []dist.Distribution{
		dist.TwoPoint(5, 100, 0.3),
		dist.NewExponentialMean(30),
		dist.NewLogNormalMeanCV(25, 1.2),
	}
	det := NewDET(testB)
	for _, d := range dists {
		s := StatsOf(d, testB)
		want := s.MuBMinus + 2*s.QBPlus*testB
		got := ExpectedCost(det, d)
		if math.Abs(got-want) > 1e-4*(1+want) {
			t.Errorf("%T: DET cost %v, eq.14 gives %v", d, got, want)
		}
	}
}

func TestExpectedCostNRandClosedForm(t *testing.T) {
	// E[cost_N-Rand] = e/(e-1)(mu + qB) for any distribution.
	d := dist.NewLogNormalMeanCV(30, 1.0)
	s := StatsOf(d, testB)
	want := math.E / (math.E - 1) * s.OfflineCost(testB)
	got := ExpectedCost(NewNRand(testB), d)
	if math.Abs(got-want) > 1e-4*(1+want) {
		t.Errorf("N-Rand cost %v, closed form %v", got, want)
	}
}

func TestExpectedCostTOIIsB(t *testing.T) {
	for _, d := range []dist.Distribution{
		dist.NewExponentialMean(10),
		dist.TwoPoint(3, 200, 0.5),
	} {
		got := ExpectedCost(NewTOI(testB), d)
		if math.Abs(got-testB) > 1e-6 {
			t.Errorf("%T: TOI cost %v want B", d, got)
		}
	}
}

func TestExpectedCostNEV(t *testing.T) {
	// NEV pays the full mean.
	d := dist.NewLogNormalMeanCV(50, 0.8)
	got := ExpectedCost(NewNEV(testB), d)
	if math.Abs(got-50) > 0.05 {
		t.Errorf("NEV cost %v want ≈50", got)
	}
}

func TestExpectedCostEmpirical(t *testing.T) {
	e, err := dist.NewEmpirical([]float64{10, 20, 100})
	if err != nil {
		t.Fatal(err)
	}
	det := NewDET(testB)
	want := (10.0 + 20.0 + 56.0) / 3
	if got := ExpectedCost(det, e); math.Abs(got-want) > 1e-12 {
		t.Errorf("empirical DET cost %v want %v", got, want)
	}
}

func TestExpectedCRBDetOnItsWorstCase(t *testing.T) {
	// The two-point adversary {0, b} with long mass q realizes the b-DET
	// bound (sqrt(mu)+sqrt(qB))²/(mu+qB) exactly.
	mu, q := 0.05*testB, 0.3
	bStar := math.Sqrt(mu * testB / q)
	adversary := dist.NewMixture(
		dist.Component{W: 1 - q - mu/bStar, D: dist.PointMass{At: 0}},
		dist.Component{W: mu / bStar, D: dist.PointMass{At: bStar}},
		dist.Component{W: q, D: dist.PointMass{At: testB * 3}},
	)
	p := NewBDet(testB, bStar)
	got := ExpectedCR(p, adversary)
	want := math.Pow(math.Sqrt(mu)+math.Sqrt(q*testB), 2) / (mu + q*testB)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("CR %v want %v", got, want)
	}
}

func TestExpectedCRZeroCostDistribution(t *testing.T) {
	if got := ExpectedCR(NewDET(testB), dist.PointMass{At: 0}); got != 1 {
		t.Errorf("CR on zero-length stops = %v, want 1", got)
	}
}

func TestTraceCostDeterministic(t *testing.T) {
	stops := []float64{10, 30, 5}
	rng := newRNG(4)
	on, off := TraceCost(NewDET(testB), stops, rng)
	// DET: 10 + (28+28) + 5 = 71; offline: 10 + 28 + 5 = 43.
	if on != 71 || off != 43 {
		t.Errorf("on=%v off=%v", on, off)
	}
}

func TestTraceMeanCostMatchesTraceCostForDeterministic(t *testing.T) {
	stops := []float64{3, 28, 29, 150, 7}
	rng := newRNG(5)
	on1, off1 := TraceCost(NewTOI(testB), stops, rng)
	on2, off2 := TraceMeanCost(NewTOI(testB), stops)
	if on1 != on2 || off1 != off2 {
		t.Errorf("(%v,%v) vs (%v,%v)", on1, off1, on2, off2)
	}
}

func TestTraceCostRandomizedApproachesMean(t *testing.T) {
	stops := make([]float64, 30_000)
	rng := newRNG(6)
	d := dist.NewLogNormalMeanCV(30, 1.1)
	for i := range stops {
		stops[i] = d.Sample(rng)
	}
	n := NewNRand(testB)
	onMC, _ := TraceCost(n, stops, rng)
	onAn, _ := TraceMeanCost(n, stops)
	if math.Abs(onMC-onAn) > 0.01*onAn {
		t.Errorf("MC %v analytic %v", onMC, onAn)
	}
}

func TestTraceCREmptyTrace(t *testing.T) {
	if got := TraceCR(NewDET(testB), nil); got != 1 {
		t.Errorf("empty trace CR %v", got)
	}
}

func TestTraceCRNRandIsExactRatio(t *testing.T) {
	stops := []float64{5, 17, 28, 90, 200, 3}
	got := TraceCR(NewNRand(testB), stops)
	want := math.E / (math.E - 1)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("N-Rand trace CR %v want %v", got, want)
	}
}

func TestProposedNotWorseThanBaselinesOnHeavyTailTrace(t *testing.T) {
	// End-to-end sanity: on a heavy-tailed trace the proposed policy's
	// CR must not exceed the best baseline's by more than noise.
	rng := newRNG(7)
	d := dist.NewMixture(
		dist.Component{W: 0.8, D: dist.NewLogNormalMeanCV(15, 1.0)},
		dist.Component{W: 0.2, D: dist.Pareto{Xm: 60, Alpha: 1.7}},
	)
	stops := make([]float64, 20_000)
	for i := range stops {
		stops[i] = d.Sample(rng)
	}
	prop, err := NewConstrainedFromStops(testB, stops)
	if err != nil {
		t.Fatal(err)
	}
	crProp := TraceCR(prop, stops)
	for _, base := range []Policy{NewTOI(testB), NewDET(testB), NewNRand(testB)} {
		if crBase := TraceCR(base, stops); crProp > crBase+1e-9 {
			t.Errorf("proposed CR %v worse than %s CR %v", crProp, base.Name(), crBase)
		}
	}
}

func TestExpectedCRPrimeNRandConstant(t *testing.T) {
	// N-Rand's per-stop ratio is constant e/(e-1), so CR' == CR.
	d := dist.NewLogNormalMeanCV(30, 1.0)
	got := ExpectedCRPrime(NewNRand(testB), d)
	want := math.E / (math.E - 1)
	if math.Abs(got-want) > 1e-3 {
		t.Errorf("CR' %v want %v", got, want)
	}
}

func TestExpectedCRPrimeMOMRandClosedForm(t *testing.T) {
	// For the reshaped MOM-Rand branch, CR' = 1 + E[min(y,B)]/(2B(e-2))
	// and the Khanafer bound CR' <= 1 + mu/(2B(e-2)) follows.
	d := dist.NewLogNormalMeanCV(15, 0.8) // mean below the cutoff
	m := NewMOMRand(testB, 15)
	if m.UsesNRand() {
		t.Fatal("expected reshaped branch")
	}
	got := ExpectedCRPrime(m, d)
	// E[min(y, B)] is the offline cost mu_B- + q_B+·B (eq. 13).
	s := StatsOf(d, testB)
	want := 1 + s.OfflineCost(testB)/(2*testB*(math.E-2))
	if math.Abs(got-want) > 2e-3*(1+want) {
		t.Errorf("CR' %v, closed form %v", got, want)
	}
	bound := 1 + 15/(2*testB*(math.E-2))
	if got > bound+1e-3 {
		t.Errorf("CR' %v exceeds the Khanafer bound %v", got, bound)
	}
}

func TestExpectedCRPrimeTOIExplodesNearZero(t *testing.T) {
	// Mass near zero makes TOI's CR' huge while its CR stays modest —
	// the paper's argument for metric (5).
	d := dist.NewMixture(
		dist.Component{W: 0.5, D: dist.PointMass{At: 0.001}},
		dist.Component{W: 0.5, D: dist.PointMass{At: 100}},
	)
	toi := NewTOI(testB)
	crPrime := ExpectedCRPrime(toi, d)
	cr := ExpectedCR(toi, d)
	if crPrime < 1000 {
		t.Errorf("CR' %v should explode on near-zero stops", crPrime)
	}
	if cr > 3 {
		t.Errorf("CR %v should stay modest", cr)
	}
}

func TestExpectedCRPrimeEmpiricalAndAtom(t *testing.T) {
	e, err := dist.NewEmpirical([]float64{14, 56})
	if err != nil {
		t.Fatal(err)
	}
	det := NewDET(testB)
	// Ratios: 14/14 = 1 and 56/28 = 2 -> mean 1.5.
	if got := ExpectedCRPrime(det, e); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("empirical CR' %v want 1.5", got)
	}
	if got := ExpectedCRPrime(det, dist.PointMass{At: 0}); got != 1 {
		t.Errorf("zero atom CR' %v want 1", got)
	}
}
