package skirental

import (
	"fmt"
	"math"

	"idlereduce/internal/lp"
)

// SelectVertexLP solves the paper's LP (eqs. 32-33) with the simplex
// solver instead of enumerating vertices, returning the selected strategy
// and its worst-case expected cost. It exists as an independent check of
// ComputeVertexCosts/Select: both must agree everywhere.
//
// The LP is
//
//	min  K_a·alpha + K_b·beta + K_g·gamma
//	s.t. alpha + beta + gamma <= 1,   alpha, beta, gamma >= 0
//
// where K_i = cost_i - cost_{N-Rand} (the common e/(e-1)(mu+qB) term in
// eq. 32 is a constant offset), so the objective value plus the N-Rand
// cost is the selected vertex's expected cost.
func SelectVertexLP(b float64, s Stats) (Choice, float64, error) {
	if err := s.Validate(b); err != nil {
		return 0, 0, err
	}
	vc := ComputeVertexCosts(b, s)

	kAlpha := vc.TOI - vc.NRand
	kBeta := vc.DET - vc.NRand
	kGamma := math.Inf(1)
	if !math.IsInf(vc.BDet, 1) {
		kGamma = vc.BDet - vc.NRand
	}

	c := []float64{kAlpha, kBeta, kGamma}
	ub := [][]float64{{1, 1, 1}}
	// When b-DET is inapplicable its column is removed rather than given
	// an infinite cost the solver cannot represent.
	if math.IsInf(kGamma, 1) {
		c = c[:2]
		ub = [][]float64{{1, 1}}
	}
	prob := &lp.Problem{C: c, AUb: ub, BUb: []float64{1}}
	sol, st, err := prob.Solve()
	if err != nil {
		return 0, 0, fmt.Errorf("skirental: vertex LP: %w", err)
	}
	if st != lp.Optimal {
		return 0, 0, fmt.Errorf("skirental: vertex LP status %v", st)
	}

	cost := vc.NRand + sol.Objective
	// Map the solution point back to a vertex. Interior/edge optima can
	// only occur on ties, where any incident vertex is optimal.
	const tol = 1e-7
	switch {
	case sol.X[0] > 1-tol:
		return ChoiceTOI, cost, nil
	case sol.X[1] > 1-tol:
		return ChoiceDET, cost, nil
	case len(sol.X) > 2 && sol.X[2] > 1-tol:
		return ChoiceBDet, cost, nil
	case sol.X[0]+sol.X[1] < tol && (len(sol.X) < 3 || sol.X[2] < tol):
		return ChoiceNRand, cost, nil
	default:
		// Degenerate optimum on a tie face: re-select by cost.
		choice, cost2 := vc.Select()
		if math.Abs(cost2-cost) > 1e-6*(1+math.Abs(cost)) {
			return 0, 0, fmt.Errorf("skirental: LP cost %v disagrees with vertex cost %v", cost, cost2)
		}
		return choice, cost2, nil
	}
}
