// Package skirental implements the paper's core contribution: the
// constrained ski-rental formulation of automotive idling reduction.
//
// A stop of unknown length y costs 1 per second while the engine idles;
// shutting the engine off costs a one-time restart equivalent to B seconds
// of idling (the break-even interval, eq. 1). An online policy picks the
// idling threshold x — possibly at random — and pays
//
//	cost_online(x, y) = y        if y < x      (drove off before the threshold)
//	                    x + B    if y >= x     (idled x seconds, then restarted)
//
// against the clairvoyant offline cost min(y, B). The package provides the
// classic policies (TOI, NEV, DET, b-DET, N-Rand, MOM-Rand), the
// constrained statistics (mu_B-, q_B+) of Section 3, and the proposed
// optimal policy of Section 4 that selects among the four vertex
// strategies, plus an independent LP-based selector used for verification.
package skirental

import (
	"errors"
	"fmt"
	"math"

	"idlereduce/internal/dist"
	"idlereduce/internal/numeric"
)

// OfflineCost is eq. 2: the clairvoyant cost min(y, B).
func OfflineCost(y, b float64) float64 {
	if y < b {
		return y
	}
	return b
}

// OnlineCost is eq. 3: the cost of idling threshold x on a stop of
// length y.
func OnlineCost(x, y, b float64) float64 {
	if y < x {
		return y
	}
	return x + b
}

// CompetitiveRatio is eq. 4: cost_online / cost_offline for one stop.
// It is +Inf for y == 0 with a restart cost, and 1 for the degenerate
// zero-cost pair.
func CompetitiveRatio(x, y, b float64) float64 {
	on := OnlineCost(x, y, b)
	off := OfflineCost(y, b)
	if off == 0 {
		if on == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return on / off
}

// Stats holds the constrained ski-rental statistics of Section 3.
type Stats struct {
	// MuBMinus is mu_B- (eq. 10): the partial expectation of stops not
	// longer than B.
	MuBMinus float64
	// QBPlus is q_B+ (eq. 11): the probability of a stop longer than B.
	QBPlus float64
}

// ErrBadStats is returned when statistics are outside their feasible
// region: mu_B- in [0, B·(1-q_B+)], q_B+ in [0, 1].
var ErrBadStats = errors.New("skirental: infeasible (mu_B-, q_B+) pair")

// Validate checks feasibility of the statistics for break-even interval b.
func (s Stats) Validate(b float64) error {
	if b <= 0 || math.IsNaN(b) {
		return fmt.Errorf("%w: break-even B=%v must be positive", ErrBadStats, b)
	}
	if s.QBPlus < 0 || s.QBPlus > 1 || math.IsNaN(s.QBPlus) {
		return fmt.Errorf("%w: q_B+ = %v", ErrBadStats, s.QBPlus)
	}
	if s.MuBMinus < 0 || math.IsNaN(s.MuBMinus) {
		return fmt.Errorf("%w: mu_B- = %v", ErrBadStats, s.MuBMinus)
	}
	// Short stops carry mass 1-q_B+ and each is at most B long.
	if s.MuBMinus > b*(1-s.QBPlus)+1e-9 {
		return fmt.Errorf("%w: mu_B- = %v exceeds B(1-q_B+) = %v",
			ErrBadStats, s.MuBMinus, b*(1-s.QBPlus))
	}
	return nil
}

// OfflineCost is eq. 13: the expected clairvoyant cost mu_B- + q_B+·B,
// constant over every distribution consistent with the statistics.
func (s Stats) OfflineCost(b float64) float64 {
	return s.MuBMinus + s.QBPlus*b
}

// StatsOf measures the constrained statistics of a distribution.
func StatsOf(d dist.Distribution, b float64) Stats {
	return Stats{
		MuBMinus: dist.MuBMinus(d, b),
		QBPlus:   dist.QBPlus(d, b),
	}
}

// EstimateStats is the plug-in estimator from an observed stop sample:
// mu_B- as the mean contribution of stops <= B and q_B+ as the fraction
// of stops > B. It returns ErrBadStats for an empty sample.
func EstimateStats(stops []float64, b float64) (Stats, error) {
	if len(stops) == 0 {
		return Stats{}, fmt.Errorf("%w: empty sample", ErrBadStats)
	}
	var short numeric.KahanSum
	long := 0
	for _, y := range stops {
		if y < 0 || math.IsNaN(y) {
			return Stats{}, fmt.Errorf("%w: invalid stop length %v", ErrBadStats, y)
		}
		if y > b {
			long++
		} else {
			short.Add(y)
		}
	}
	n := float64(len(stops))
	return Stats{
		MuBMinus: short.Sum() / n,
		QBPlus:   float64(long) / n,
	}, nil
}
