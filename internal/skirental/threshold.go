package skirental

import "math"

// WorstCaseDetCost returns the worst-case expected online cost of the
// deterministic threshold policy x over the constrained distribution
// family Q(mu_B-, q_B+) at break-even interval b. It generalizes the
// paper's vertex costs to every threshold in [0, b], which is what the
// learning-augmented engines need: a blended threshold between the
// vertices still carries a closed-form robustness guarantee.
//
// Derivation: a stop of length t <= x costs t (the vehicle drives off
// while idling); a stop of length t > x costs x + b (idle to the
// threshold, shut off, restart). The adversary distributes the short
// mass mu and the long-stop probability q to maximize the expectation:
//
//   - every stop longer than b pays x + b, contributing q(x + b);
//   - the short mass mu is split between stops just above x (each
//     paying x + b per unit probability, i.e. (x+b)/x per unit mass)
//     and stops at exactly b paying b <= x + b each. Pushing mass just
//     above x is optimal while the per-mass rate (x+b)/x exceeds the
//     at-b rate, but the probability it can soak is capped at 1 - q.
//
// The cap binds when mu >= (1-q)x: the adversary saturates every short
// stop just above x and the cost is x + b regardless of mu. Otherwise
// the cost is mu(1 + b/x) + q(x + b). The boundary conventions
// reproduce the paper's vertices exactly: x = 0 is TOI (cost b), x = b
// is DET (cost mu + 2qb), and x = sqrt(mu*b/q) is b-DET (cost
// (sqrt(mu) + sqrt(qb))^2) whenever condition (36) holds.
func WorstCaseDetCost(b, mu, q, x float64) float64 {
	switch {
	case x <= 0:
		// TOI: every stop pays the restart b, nothing idles.
		return b
	case x >= b:
		// DET at the break-even point (thresholds beyond b are
		// dominated by b itself: no distribution in Q has mass strictly
		// between b and x to exploit, so cost is the x = b value).
		return mu + 2*q*b
	case mu >= (1-q)*x:
		// Short mass saturates the just-above-x spike.
		return x + b
	default:
		return mu*(1+b/x) + q*(x+b)
	}
}

// WorstCaseMixedCost returns the worst-case expected online cost of a
// policy that plays one of two thresholds x0 <= xb per stop, where the
// adversary controls both the stop distribution (within Q(mu_B-,
// q_B+)) and which threshold each stop gets. This is the robustness
// bound of the learning-augmented blend at a given trust level: the
// advice pulls the fallback threshold toward 0 (predicted long) or b
// (predicted short), so the reachable pair is x0 = (1-lambda)x* and
// xb = (1-lambda)x* + lambda*b, and adversarial predictions route each
// stop to whichever end hurts most.
//
// Derivation (same conventions as WorstCaseDetCost): a stop routed to
// threshold x pays t if t <= x, else x + b. Long stops (mass q) route
// to xb and pay xb + b. The short mass mu spikes just above x0 at rate
// (x0+b)/x0 per unit mass while the 1-q probability cap allows;
// saturated stops then upgrade toward xb at marginal rate 1 (each unit
// of extra length converts into a unit of extra cost until the stop
// crosses xb). x0 = xb reduces exactly to WorstCaseDetCost, and the
// bound is nondecreasing as the pair spreads — the closed form behind
// the monotone robustness column of the frontier sweep.
func WorstCaseMixedCost(b, mu, q, x0, xb float64) float64 {
	if x0 > xb {
		x0, xb = xb, x0
	}
	// Clamp both thresholds into [0, b]: beyond-b thresholds are
	// dominated by b itself and negative ones behave as immediate
	// shut-off, same conventions as WorstCaseDetCost.
	x0 = math.Min(math.Max(x0, 0), b)
	xb = math.Min(math.Max(xb, 0), b)
	long := q * (xb + b)
	switch {
	case x0 >= b:
		// Both thresholds clamp to DET.
		return mu + 2*q*b
	case x0 <= 0:
		// TOI end: every short stop pays the restart immediately; the
		// budget upgrades stops past xb at rate 1.
		gain := (1 - q) * xb
		if mu < gain {
			gain = mu
		}
		return (1-q)*b + gain + long
	case mu < (1-q)*x0:
		// Unsaturated: the whole budget spikes just above x0 (the
		// cheapest per-mass attack, since (x+b)/x is decreasing).
		return mu*(1+b/x0) + long
	default:
		// Saturated: all short probability sits just above x0; the
		// leftover budget lengthens stops toward xb at rate 1.
		gain := (1 - q) * (xb - x0)
		if m := mu - (1-q)*x0; m < gain {
			gain = m
		}
		return (1-q)*(x0+b) + gain + long
	}
}
