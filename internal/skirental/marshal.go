package skirental

import (
	"encoding/json"
	"fmt"
	"math"
)

// PolicySpec is the serializable description of a policy: what a
// controller flashes to persistent storage after tuning, and reloads at
// ignition. Stateful wrappers (adaptive, robust) are not serializable —
// persist their underlying selection instead.
type PolicySpec struct {
	// Kind is one of "toi", "nev", "det", "b-det", "fixed", "n-rand",
	// "mom-rand", "constrained", "mixture".
	Kind string `json:"kind"`
	// B is the break-even interval in seconds.
	B float64 `json:"b"`
	// X is the threshold for "b-det"/"fixed".
	X float64 `json:"x,omitempty"`
	// Name labels "fixed" and "mixture" policies.
	Name string `json:"name,omitempty"`
	// Mu is the mean stop length for "mom-rand".
	Mu float64 `json:"mu,omitempty"`
	// Stats parameterize "constrained".
	Stats *Stats `json:"stats,omitempty"`
	// Xs/Ws are the support of "mixture".
	Xs []float64 `json:"xs,omitempty"`
	Ws []float64 `json:"ws,omitempty"`
}

// SpecOf extracts the serializable description of a policy. It returns
// an error for stateful policies that cannot be described by parameters
// alone.
func SpecOf(p Policy) (PolicySpec, error) {
	switch pp := p.(type) {
	case *Deterministic:
		spec := PolicySpec{B: pp.B(), X: pp.X()}
		switch {
		case pp.Name() == "TOI" && pp.X() == 0:
			spec.Kind = "toi"
			spec.X = 0
		case pp.Name() == "NEV" && math.IsInf(pp.X(), 1):
			spec.Kind = "nev"
			spec.X = 0 // +Inf is not JSON-representable; the kind carries it
		case pp.Name() == "DET" && pp.X() == pp.B():
			spec.Kind = "det"
			spec.X = 0
		case pp.Name() == "b-DET":
			spec.Kind = "b-det"
		default:
			spec.Kind = "fixed"
			spec.Name = pp.Name()
		}
		return spec, nil
	case *NRand:
		return PolicySpec{Kind: "n-rand", B: pp.B()}, nil
	case *MOMRand:
		return PolicySpec{Kind: "mom-rand", B: pp.B(), Mu: pp.mu}, nil
	case *Constrained:
		s := pp.Stats()
		return PolicySpec{Kind: "constrained", B: pp.B(), Stats: &s}, nil
	case *ThresholdMixture:
		xs, ws := pp.Support()
		return PolicySpec{Kind: "mixture", B: pp.B(), Name: pp.Name(), Xs: xs, Ws: ws}, nil
	default:
		return PolicySpec{}, fmt.Errorf("skirental: policy %q is not serializable", p.Name())
	}
}

// Build reconstructs the policy from its spec.
func (s PolicySpec) Build() (Policy, error) {
	if s.B <= 0 || math.IsNaN(s.B) {
		return nil, fmt.Errorf("%w: spec B = %v", ErrBadStats, s.B)
	}
	switch s.Kind {
	case "toi":
		return NewTOI(s.B), nil
	case "nev":
		return NewNEV(s.B), nil
	case "det":
		return NewDET(s.B), nil
	case "b-det":
		if s.X <= 0 || s.X > s.B {
			return nil, fmt.Errorf("%w: b-det threshold %v", ErrBadStats, s.X)
		}
		return NewBDet(s.B, s.X), nil
	case "fixed":
		if s.X < 0 || math.IsNaN(s.X) {
			return nil, fmt.Errorf("%w: fixed threshold %v", ErrBadStats, s.X)
		}
		name := s.Name
		if name == "" {
			name = "fixed"
		}
		return NewFixedThreshold(name, s.B, s.X), nil
	case "n-rand":
		return NewNRand(s.B), nil
	case "mom-rand":
		if s.Mu < 0 || math.IsNaN(s.Mu) {
			return nil, fmt.Errorf("%w: mom-rand mu %v", ErrBadStats, s.Mu)
		}
		return NewMOMRand(s.B, s.Mu), nil
	case "constrained":
		if s.Stats == nil {
			return nil, fmt.Errorf("%w: constrained spec without stats", ErrBadStats)
		}
		return NewConstrained(s.B, *s.Stats)
	case "mixture":
		name := s.Name
		if name == "" {
			name = "mixture"
		}
		return NewThresholdMixture(name, s.B, s.Xs, s.Ws)
	default:
		return nil, fmt.Errorf("skirental: unknown policy kind %q", s.Kind)
	}
}

// MarshalPolicy serializes a policy to JSON.
func MarshalPolicy(p Policy) ([]byte, error) {
	spec, err := SpecOf(p)
	if err != nil {
		return nil, err
	}
	return json.Marshal(spec)
}

// UnmarshalPolicy reconstructs a policy from JSON.
func UnmarshalPolicy(data []byte) (Policy, error) {
	var spec PolicySpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return nil, fmt.Errorf("skirental: decode policy: %w", err)
	}
	return spec.Build()
}
