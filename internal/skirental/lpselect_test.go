package skirental

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSelectVertexLPMatchesEnumeration(t *testing.T) {
	// The LP and the closed-form enumeration must agree on cost
	// everywhere, and on choice except at exact ties.
	prop := func(mu16, q16 uint16) bool {
		q := float64(q16) / math.MaxUint16
		mu := float64(mu16) / math.MaxUint16 * testB * (1 - q)
		s := Stats{MuBMinus: mu, QBPlus: q}
		choiceLP, costLP, err := SelectVertexLP(testB, s)
		if err != nil {
			return false
		}
		choiceEnum, costEnum := ComputeVertexCosts(testB, s).Select()
		if math.Abs(costLP-costEnum) > 1e-6*(1+costEnum) {
			return false
		}
		if choiceLP != choiceEnum {
			// Allowed only when the two choices tie in cost.
			vc := ComputeVertexCosts(testB, s)
			get := func(c Choice) float64 {
				switch c {
				case ChoiceNRand:
					return vc.NRand
				case ChoiceTOI:
					return vc.TOI
				case ChoiceDET:
					return vc.DET
				default:
					return vc.BDet
				}
			}
			return math.Abs(get(choiceLP)-get(choiceEnum)) < 1e-6*(1+costEnum)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSelectVertexLPKnownPoints(t *testing.T) {
	cases := []struct {
		s    Stats
		want Choice
	}{
		{Stats{MuBMinus: 2, QBPlus: 0.01}, ChoiceDET},
		{Stats{MuBMinus: 0.5, QBPlus: 0.95}, ChoiceTOI},
		{Stats{MuBMinus: 0.02 * testB, QBPlus: 0.3}, ChoiceBDet},
		{Stats{MuBMinus: 2.8, QBPlus: 0.5}, ChoiceNRand},
	}
	for _, c := range cases {
		got, _, err := SelectVertexLP(testB, c.s)
		if err != nil {
			t.Fatalf("%+v: %v", c.s, err)
		}
		if got != c.want {
			t.Errorf("%+v: LP chose %v want %v", c.s, got, c.want)
		}
	}
}

func TestSelectVertexLPBadStats(t *testing.T) {
	if _, _, err := SelectVertexLP(testB, Stats{MuBMinus: -1}); err == nil {
		t.Error("want error for bad stats")
	}
}

func TestSelectVertexLPWithBDetExcluded(t *testing.T) {
	// q=0 removes the b-DET column; the LP must still solve and pick DET.
	got, cost, err := SelectVertexLP(testB, Stats{MuBMinus: 10, QBPlus: 0})
	if err != nil {
		t.Fatal(err)
	}
	if got != ChoiceDET {
		t.Errorf("choice %v want DET", got)
	}
	if math.Abs(cost-10) > 1e-9 {
		t.Errorf("cost %v want 10 (DET = offline when q=0)", cost)
	}
}
