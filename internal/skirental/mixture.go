package skirental

import (
	"errors"
	"math/rand/v2"
	"sort"

	"idlereduce/internal/numeric"
)

// ThresholdMixture is a randomized policy over finitely many fixed
// thresholds: threshold Xs[i] is drawn with probability Ws[i]. It is the
// output format of the numerically-optimal minimax LP (analysis
// package), which discovers policies outside the paper's four-vertex
// family.
type ThresholdMixture struct {
	name string
	b    float64
	xs   []float64
	ws   []float64
	cum  []float64
}

// NewThresholdMixture builds a mixture policy. Weights must be
// non-negative and are normalized; thresholds must be non-negative.
func NewThresholdMixture(name string, b float64, xs, ws []float64) (*ThresholdMixture, error) {
	if b <= 0 {
		return nil, errors.New("skirental: mixture needs positive break-even")
	}
	if len(xs) == 0 || len(xs) != len(ws) {
		return nil, errors.New("skirental: mixture needs matching non-empty thresholds and weights")
	}
	total := 0.0
	for i := range xs {
		if xs[i] < 0 || ws[i] < 0 {
			return nil, errors.New("skirental: mixture thresholds and weights must be non-negative")
		}
		total += ws[i]
	}
	if total <= 0 {
		return nil, errors.New("skirental: mixture needs positive total weight")
	}
	m := &ThresholdMixture{
		name: name,
		b:    b,
		xs:   append([]float64(nil), xs...),
		ws:   make([]float64, len(ws)),
		cum:  make([]float64, len(ws)),
	}
	run := 0.0
	for i, w := range ws {
		m.ws[i] = w / total
		run += m.ws[i]
		m.cum[i] = run
	}
	m.cum[len(m.cum)-1] = 1
	return m, nil
}

// Name implements Policy.
func (m *ThresholdMixture) Name() string { return m.name }

// B implements Policy.
func (m *ThresholdMixture) B() float64 { return m.b }

// Support returns copies of the thresholds and normalized weights.
func (m *ThresholdMixture) Support() (xs, ws []float64) {
	return append([]float64(nil), m.xs...), append([]float64(nil), m.ws...)
}

// Threshold implements Policy.
func (m *ThresholdMixture) Threshold(rng *rand.Rand) float64 {
	u := rng.Float64()
	i := sort.SearchFloat64s(m.cum, u)
	if i >= len(m.xs) {
		i = len(m.xs) - 1
	}
	return m.xs[i]
}

// MeanCostForStop implements Policy.
func (m *ThresholdMixture) MeanCostForStop(y float64) float64 {
	var sum numeric.KahanSum
	for i, x := range m.xs {
		sum.Add(m.ws[i] * OnlineCost(x, y, m.b))
	}
	return sum.Sum()
}
