package skirental

import (
	"context"
	"log/slog"
	"math/rand/v2"

	"idlereduce/internal/obs"
)

// Selector is the common read surface of the constrained selectors
// (point-estimate and robust): which vertex they picked and the CR
// bound they guarantee.
type Selector interface {
	Policy
	Choice() Choice
	WorstCaseCR() float64
}

// RecordSelection publishes a selector's decision to the context's
// observability sink: the picked vertex as a labelled counter, the
// worst-case CR bound as a gauge, and a structured selection event.
// No-op without a recorder in ctx.
func RecordSelection(ctx context.Context, sel Selector) {
	rec := obs.FromContext(ctx)
	if !rec.On() {
		return
	}
	choice := sel.Choice().String()
	rec.Add(obs.L("skirental_selection_total", "choice", choice), 1)
	rec.Set("skirental_worst_case_cr", sel.WorstCaseCR())
	if c, ok := sel.(*Constrained); ok {
		s := c.Stats()
		rec.Set("skirental_stats_mu_b_minus_sec", s.MuBMinus)
		rec.Set("skirental_stats_q_b_plus", s.QBPlus)
	}
	rec.Event("skirental.select",
		slog.String("policy", sel.Name()),
		slog.String("choice", choice),
		slog.Float64("b", sel.B()),
		slog.Float64("worst_case_cr", sel.WorstCaseCR()))
}

// Instrument wraps pol so every threshold draw is observed in the
// skirental_threshold_sec{policy=...} histogram — the distribution a
// randomized policy realizes, which no summary statistic shows. When
// ctx carries no recorder the policy is returned unwrapped, so the hot
// path keeps its devirtualized dispatch.
func Instrument(ctx context.Context, pol Policy) Policy {
	rec := obs.FromContext(ctx)
	if !rec.On() {
		return pol
	}
	return &instrumentedPolicy{
		Policy: pol,
		rec:    rec,
		metric: obs.L("skirental_threshold_sec", "policy", pol.Name()),
	}
}

// instrumentedPolicy delegates to the wrapped policy, observing draws.
type instrumentedPolicy struct {
	Policy
	rec    *obs.Recorder
	metric string
}

// Threshold implements Policy, recording the drawn threshold.
func (p *instrumentedPolicy) Threshold(rng *rand.Rand) float64 {
	x := p.Policy.Threshold(rng)
	p.rec.Observe(p.metric, x)
	return x
}

// Unwrap returns the uninstrumented policy.
func (p *instrumentedPolicy) Unwrap() Policy { return p.Policy }
