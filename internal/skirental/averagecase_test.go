package skirental

import (
	"math"
	"testing"

	"idlereduce/internal/dist"
	"idlereduce/internal/numeric"
)

func TestOptimalThresholdExponentialBangBang(t *testing.T) {
	// Memoryless stops: mean > B => TOI (cost B); mean < B => NEV
	// (cost = mean).
	long := dist.NewExponentialMean(100)
	x, cost, err := OptimalThreshold(long, testB)
	if err != nil {
		t.Fatal(err)
	}
	if x != 0 || math.Abs(cost-testB) > 1e-12 {
		t.Errorf("mean>B: x=%v cost=%v, want 0, B", x, cost)
	}
	short := dist.NewExponentialMean(10)
	x, cost, err = OptimalThreshold(short, testB)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(x, 1) || math.Abs(cost-10) > 1e-12 {
		t.Errorf("mean<B: x=%v cost=%v, want +Inf, 10", x, cost)
	}
}

func TestOptimalThresholdExponentialMatchesNumeric(t *testing.T) {
	// The closed form must agree with a brute-force scan of the generic
	// objective (up to the scan's resolution).
	for _, mean := range []float64{5, 27, 29, 120} {
		e := dist.NewExponentialMean(mean)
		_, closed, err := OptimalThreshold(e, testB)
		if err != nil {
			t.Fatal(err)
		}
		obj := func(x float64) float64 { return expectedCostThreshold(e, x, testB) }
		_, scan := numeric.GridMin(obj, 0, 50*testB, 5000)
		scan = math.Min(scan, e.Mean()) // include the x=∞ candidate
		if math.Abs(closed-scan) > 0.01*(1+scan) {
			t.Errorf("mean %v: closed %v scan %v", mean, closed, scan)
		}
	}
}

func TestOptimalThresholdUniform(t *testing.T) {
	// Uniform on [0, 60] with B = 28: interior optima are possible;
	// verify against a dense scan including the NEV limit.
	u := dist.Uniform{Lo: 0, Hi: 60}
	x, cost, err := OptimalThreshold(u, testB)
	if err != nil {
		t.Fatal(err)
	}
	obj := func(x float64) float64 { return expectedCostThreshold(u, x, testB) }
	_, scanCost := numeric.GridMin(obj, 0, 60, 20000)
	scanCost = math.Min(scanCost, u.Mean())
	if cost > scanCost+1e-4 {
		t.Errorf("cost %v worse than scan %v (x=%v)", cost, scanCost, x)
	}
	// And the returned threshold must actually achieve the returned cost.
	achieved := u.Mean()
	if !math.IsInf(x, 1) {
		achieved = obj(x)
	}
	if math.Abs(achieved-cost) > 1e-6 {
		t.Errorf("threshold %v achieves %v, reported %v", x, achieved, cost)
	}
}

func TestOptimalThresholdTwoPointInterior(t *testing.T) {
	// Stops of 5 s (70%) or 200 s (30%), B = 28. Any threshold in
	// (5, 200) turns off exactly on long stops; best is just above 5.
	d := dist.TwoPoint(5, 200, 0.3)
	x, cost, err := OptimalThreshold(d, testB)
	if err != nil {
		t.Fatal(err)
	}
	if x < 5 || x > 200 {
		t.Errorf("x = %v outside the separating range", x)
	}
	// Cost at the ideal separator: 0.7*5 + 0.3*(x+28) with x -> 5+.
	want := 0.7*5 + 0.3*(5+testB)
	if math.Abs(cost-want) > 0.5 {
		t.Errorf("cost %v, ideal separator gives ≈%v", cost, want)
	}
}

func TestOptimalThresholdBadB(t *testing.T) {
	if _, _, err := OptimalThreshold(dist.NewExponentialMean(10), 0); err == nil {
		t.Error("want error for B=0")
	}
}

func TestNewAverageCasePolicy(t *testing.T) {
	d := dist.TwoPoint(5, 200, 0.3)
	a, err := NewAverageCase(d, testB)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name() != "AVG" {
		t.Errorf("name %q", a.Name())
	}
	if a.DesignDistribution() != dist.Distribution(d) {
		t.Error("design distribution not retained")
	}
	// Its realized expected cost on the design distribution must match
	// the reported optimum.
	got := ExpectedCost(a, d)
	if math.Abs(got-a.ExpectedCost()) > 1e-6*(1+got) {
		t.Errorf("realized %v vs reported %v", got, a.ExpectedCost())
	}
	// And it must beat every fixed vertex policy on its own
	// distribution (that is the point of knowing q(y) exactly).
	for _, p := range []Policy{NewTOI(testB), NewDET(testB), NewNRand(testB)} {
		if c := ExpectedCost(p, d); c < a.ExpectedCost()-1e-9 {
			t.Errorf("%s cost %v beats AVG %v on the design distribution", p.Name(), c, a.ExpectedCost())
		}
	}
}

func TestAverageCaseFragileUnderMismatch(t *testing.T) {
	// The paper's argument against average-case tuning: a threshold
	// tuned for one distribution can be badly beaten by the proposed
	// policy when the real distribution differs. Tune AVG for
	// short-stop traffic (it chooses NEV-like behaviour), then evaluate
	// on long-stop traffic.
	design := dist.NewExponentialMean(8) // AVG picks x = +Inf
	a, err := NewAverageCase(design, testB)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(a.X(), 1) {
		t.Skip("design point moved")
	}
	reality := dist.TwoPoint(5, 600, 0.5)
	s := StatsOf(reality, testB)
	prop, err := NewConstrained(testB, s)
	if err != nil {
		t.Fatal(err)
	}
	avgCR := ExpectedCR(a, reality)
	propCR := ExpectedCR(prop, reality)
	if avgCR < 2*propCR {
		t.Errorf("expected AVG to collapse under mismatch: AVG %v vs proposed %v", avgCR, propCR)
	}
}
