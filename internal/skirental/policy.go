package skirental

import (
	"math"
	"math/rand/v2"
)

// Policy is an online idling strategy for a fixed break-even interval B.
//
// Threshold draws the idling time x for the next stop (deterministic
// policies always return the same value; randomized policies sample their
// density). MeanCostForStop returns E_x[cost_online(x, y)] analytically,
// which the analysis layer integrates against stop-length distributions
// without Monte Carlo noise.
type Policy interface {
	// Name returns the short policy label used by the paper
	// (TOI, NEV, DET, b-DET, N-Rand, MOM-Rand, Proposed).
	Name() string
	// B returns the break-even interval the policy was built for.
	B() float64
	// Threshold draws the idling threshold x for one stop.
	Threshold(rng *rand.Rand) float64
	// MeanCostForStop returns the expected online cost over the policy's
	// randomness for a stop of length y.
	MeanCostForStop(y float64) float64
}

// Deterministic is a fixed-threshold policy: idle until X, then restart.
// TOI, NEV, DET and b-DET are all instances.
type Deterministic struct {
	name string
	x    float64
	b    float64
}

// NewTOI returns the Turn-Off-Immediately policy (threshold 0): the
// strategy production stop-start systems ship with.
func NewTOI(b float64) *Deterministic {
	return &Deterministic{name: "TOI", x: 0, b: b}
}

// NewNEV returns the Never-turn-off policy (threshold +Inf): the default
// behaviour of drivers without a stop-start system.
func NewNEV(b float64) *Deterministic {
	return &Deterministic{name: "NEV", x: math.Inf(1), b: b}
}

// NewDET returns the classic 2-competitive deterministic policy
// (threshold B) of Karlin et al.
func NewDET(b float64) *Deterministic {
	return &Deterministic{name: "DET", x: b, b: b}
}

// NewBDet returns the b-DET policy: idle until threshold x (0 < x <= B).
// The paper's optimal choice is x = sqrt(mu_B-·B / q_B+).
func NewBDet(b, x float64) *Deterministic {
	return &Deterministic{name: "b-DET", x: x, b: b}
}

// NewFixedThreshold returns a deterministic policy with an arbitrary
// threshold and label, for ablations.
func NewFixedThreshold(name string, b, x float64) *Deterministic {
	return &Deterministic{name: name, x: x, b: b}
}

// Name implements Policy.
func (d *Deterministic) Name() string { return d.name }

// B implements Policy.
func (d *Deterministic) B() float64 { return d.b }

// X returns the fixed threshold.
func (d *Deterministic) X() float64 { return d.x }

// Threshold implements Policy.
func (d *Deterministic) Threshold(rng *rand.Rand) float64 { return d.x }

// MeanCostForStop implements Policy.
func (d *Deterministic) MeanCostForStop(y float64) float64 {
	return OnlineCost(d.x, y, d.b)
}

// NRand is the randomized policy of Karlin, Manasse, McGeoch and Owicki
// (eq. 7): density p(x) = e^{x/B} / (B(e-1)) on [0, B]. Its expected cost
// is exactly e/(e-1)·min(y, B) for every stop length, so its competitive
// ratio is e/(e-1) against any distribution.
type NRand struct {
	b float64
}

// NewNRand returns the N-Rand policy for break-even interval b.
func NewNRand(b float64) *NRand { return &NRand{b: b} }

// Name implements Policy.
func (n *NRand) Name() string { return "N-Rand" }

// B implements Policy.
func (n *NRand) B() float64 { return n.b }

// PDF returns the policy's threshold density at x.
func (n *NRand) PDF(x float64) float64 {
	if x < 0 || x > n.b {
		return 0
	}
	return math.Exp(x/n.b) / (n.b * (math.E - 1))
}

// CDF returns the threshold distribution function
// (e^{x/B} - 1)/(e - 1) on [0, B].
func (n *NRand) CDF(x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= n.b:
		return 1
	default:
		return (math.Exp(x/n.b) - 1) / (math.E - 1)
	}
}

// Threshold implements Policy by closed-form inversion:
// x = B·ln(1 + u(e-1)).
func (n *NRand) Threshold(rng *rand.Rand) float64 {
	u := rng.Float64()
	return n.b * math.Log(1+u*(math.E-1))
}

// MeanCostForStop implements Policy: E_x[cost] = e/(e-1)·min(y, B).
//
// Derivation for y <= B: ∫_0^y (x+B)p(x)dx + y·P(x>y)
// = y e^{y/B}/(e-1) + y(e - e^{y/B})/(e-1) = y·e/(e-1), using the
// antiderivative ∫(x+B)e^{x/B}dx = Bx·e^{x/B}.
func (n *NRand) MeanCostForStop(y float64) float64 {
	return math.E / (math.E - 1) * OfflineCost(y, n.b)
}

// MOMRandMeanCutoff is the first-moment threshold 2(e-2)/(e-1)·B below
// which MOM-Rand uses its reshaped density; above it the policy reduces
// to N-Rand.
func MOMRandMeanCutoff(b float64) float64 {
	return 2 * (math.E - 2) / (math.E - 1) * b
}

// MOMRand is the first-moment constrained randomized policy of Khanafer
// et al. (eq. 9): density p(x) = (e^{x/B} - 1)/(B(e-2)) on [0, B] when the
// full mean mu of the stop length satisfies mu <= 2(e-2)/(e-1)·B ≈ 0.836B,
// otherwise identical to N-Rand.
type MOMRand struct {
	b     float64
	mu    float64
	nrand *NRand // non-nil when the mean exceeds the cutoff
}

// NewMOMRand returns the MOM-Rand policy given the (full) mean stop
// length mu.
func NewMOMRand(b, mu float64) *MOMRand {
	m := &MOMRand{b: b, mu: mu}
	if mu > MOMRandMeanCutoff(b) {
		m.nrand = NewNRand(b)
	}
	return m
}

// Name implements Policy.
func (m *MOMRand) Name() string { return "MOM-Rand" }

// B implements Policy.
func (m *MOMRand) B() float64 { return m.b }

// UsesNRand reports whether the mean exceeded the cutoff and the policy
// degenerated to N-Rand.
func (m *MOMRand) UsesNRand() bool { return m.nrand != nil }

// PDF returns the threshold density at x.
func (m *MOMRand) PDF(x float64) float64 {
	if m.nrand != nil {
		return m.nrand.PDF(x)
	}
	if x < 0 || x > m.b {
		return 0
	}
	return (math.Exp(x/m.b) - 1) / (m.b * (math.E - 2))
}

// CDF returns the threshold distribution function
// (B(e^{x/B} - 1) - x)/(B(e-2)) on [0, B].
func (m *MOMRand) CDF(x float64) float64 {
	if m.nrand != nil {
		return m.nrand.CDF(x)
	}
	switch {
	case x <= 0:
		return 0
	case x >= m.b:
		return 1
	default:
		return (m.b*(math.Exp(x/m.b)-1) - x) / (m.b * (math.E - 2))
	}
}

// Threshold implements Policy. The reshaped CDF has no closed-form
// inverse; a guarded Newton iteration (with bisection fallback via
// monotonicity) inverts it.
func (m *MOMRand) Threshold(rng *rand.Rand) float64 {
	if m.nrand != nil {
		return m.nrand.Threshold(rng)
	}
	u := rng.Float64()
	// Newton on F(x) - u with F' = PDF, starting from the N-Rand inverse
	// which has the same support and similar shape.
	x := m.b * math.Log(1+u*(math.E-1))
	lo, hi := 0.0, m.b
	for i := 0; i < 60; i++ {
		fx := m.CDF(x) - u
		if math.Abs(fx) < 1e-13 {
			break
		}
		if fx > 0 {
			hi = x
		} else {
			lo = x
		}
		d := m.PDF(x)
		if d > 1e-12 {
			x -= fx / d
		}
		if x <= lo || x >= hi {
			x = lo + (hi-lo)/2
		}
	}
	return x
}

// MeanCostForStop implements Policy.
//
// For y <= B the closed form is y + y²/(2B(e-2)); for y > B it is
// B(e - 3/2)/(e-2) (continuous at y = B).
func (m *MOMRand) MeanCostForStop(y float64) float64 {
	if m.nrand != nil {
		return m.nrand.MeanCostForStop(y)
	}
	if y <= m.b {
		return y + y*y/(2*m.b*(math.E-2))
	}
	return m.b * (math.E - 1.5) / (math.E - 2)
}
