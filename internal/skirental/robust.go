package skirental

import (
	"fmt"
	"math"
	"math/rand/v2"

	"idlereduce/internal/numeric"
)

// StatsInterval is a confidence rectangle for the constrained statistics:
// the estimator's sampling error around (mu_B-, q_B+).
type StatsInterval struct {
	MuLo, MuHi float64
	QLo, QHi   float64
}

// Validate checks the rectangle intersects the feasible region for b.
func (iv StatsInterval) Validate(b float64) error {
	if b <= 0 || math.IsNaN(b) {
		return fmt.Errorf("%w: B = %v", ErrBadStats, b)
	}
	if iv.MuLo < 0 || iv.MuHi < iv.MuLo || iv.QLo < 0 || iv.QHi < iv.QLo || iv.QHi > 1 {
		return fmt.Errorf("%w: interval %+v", ErrBadStats, iv)
	}
	if (Stats{MuBMinus: iv.MuLo, QBPlus: iv.QLo}).Validate(b) != nil {
		return fmt.Errorf("%w: interval %+v entirely infeasible", ErrBadStats, iv)
	}
	return nil
}

// Center returns the rectangle's midpoint, clipped to feasibility.
func (iv StatsInterval) Center(b float64) Stats {
	s := Stats{
		MuBMinus: (iv.MuLo + iv.MuHi) / 2,
		QBPlus:   (iv.QLo + iv.QHi) / 2,
	}
	if cap := b * (1 - s.QBPlus); s.MuBMinus > cap {
		s.MuBMinus = cap
	}
	return s
}

// EstimateStatsInterval computes confidence intervals for the plug-in
// statistics at level conf (e.g. 0.95): a Wilson score interval for
// q_B+ and a normal interval for mu_B- (the mean of y·1{y <= B}).
func EstimateStatsInterval(stops []float64, b, conf float64) (StatsInterval, error) {
	point, err := EstimateStats(stops, b)
	if err != nil {
		return StatsInterval{}, err
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	n := float64(len(stops))
	z := normalQuantile(0.5 + conf/2)

	// Wilson interval for the long-stop probability.
	q := point.QBPlus
	denom := 1 + z*z/n
	center := (q + z*z/(2*n)) / denom
	half := z / denom * math.Sqrt(q*(1-q)/n+z*z/(4*n*n))
	qLo := math.Max(0, center-half)
	qHi := math.Min(1, center+half)

	// Normal interval for the partial mean: sample std of y·1{y <= B}.
	var sq numeric.KahanSum
	for _, y := range stops {
		v := 0.0
		if y <= b {
			v = y
		}
		d := v - point.MuBMinus
		sq.Add(d * d)
	}
	sd := 0.0
	if n > 1 {
		sd = math.Sqrt(sq.Sum() / (n - 1))
	}
	muHalf := z * sd / math.Sqrt(n)
	muLo := math.Max(0, point.MuBMinus-muHalf)
	muHi := math.Min(b, point.MuBMinus+muHalf)

	iv := StatsInterval{MuLo: muLo, MuHi: muHi, QLo: qLo, QHi: qHi}
	if err := iv.Validate(b); err != nil {
		return StatsInterval{}, err
	}
	return iv, nil
}

// RobustConstrained selects the vertex strategy minimizing the supremum
// of the worst-case CR over the statistics confidence rectangle, instead
// of trusting the point estimate. With ambiguous data it gravitates
// toward N-Rand (whose guarantee needs no statistics); with plentiful
// data it converges to the plain Constrained selection.
type RobustConstrained struct {
	b        float64
	interval StatsInterval
	choice   Choice
	bound    float64 // sup of worst-case CR over the rectangle
	inner    Policy
}

// robustGrid is the scan resolution over the rectangle per axis.
const robustGrid = 9

// NewRobustConstrained builds the robust policy for a statistics
// rectangle.
func NewRobustConstrained(b float64, iv StatsInterval) (*RobustConstrained, error) {
	if err := iv.Validate(b); err != nil {
		return nil, err
	}
	// sup over the feasible rectangle of each candidate's worst-case CR.
	supCR := func(cr func(Stats) float64) float64 {
		worst := 0.0
		any := false
		for i := 0; i <= robustGrid; i++ {
			mu := iv.MuLo + (iv.MuHi-iv.MuLo)*float64(i)/robustGrid
			for j := 0; j <= robustGrid; j++ {
				q := iv.QLo + (iv.QHi-iv.QLo)*float64(j)/robustGrid
				s := Stats{MuBMinus: mu, QBPlus: q}
				if s.Validate(b) != nil {
					continue
				}
				any = true
				if v := cr(s); v > worst {
					worst = v
				}
			}
		}
		if !any {
			return math.Inf(1)
		}
		return worst
	}

	candidates := []struct {
		choice Choice
		make   func() Policy
		cr     func(Stats) float64
	}{
		{ChoiceNRand, func() Policy { return NewNRand(b) },
			func(Stats) float64 { return math.E / (math.E - 1) }},
		{ChoiceTOI, func() Policy { return NewTOI(b) },
			func(s Stats) float64 { return BaselineWorstCaseCR("TOI", b, s) }},
		{ChoiceDET, func() Policy { return NewDET(b) },
			func(s Stats) float64 { return BaselineWorstCaseCR("DET", b, s) }},
	}

	// b-DET: pick the threshold minimizing the sup over the rectangle.
	bdetCR := func(x float64) func(Stats) float64 {
		return func(s Stats) float64 {
			off := s.OfflineCost(b)
			if off == 0 {
				return 1
			}
			// Worst-case expected cost of threshold x over Q(s):
			// (x+B)(mu/x + q) with short mass at {0, x} (eq. 34's
			// argument for a fixed threshold).
			if x <= 0 {
				return math.Inf(1)
			}
			mass := s.MuBMinus / x
			if mass > 1-s.QBPlus {
				// Not enough short mass to catch; the bound degrades to
				// every short stop restarting.
				mass = 1 - s.QBPlus
			}
			return (x + b) * (mass + s.QBPlus) / off
		}
	}
	bStar, _ := numeric.GoldenMin(func(x float64) float64 {
		return supCR(bdetCR(x))
	}, b*1e-6, b, 1e-6*b)

	bestChoice, bestBound := ChoiceNRand, math.Inf(1)
	var bestMake func() Policy
	for _, c := range candidates {
		if v := supCR(c.cr); v < bestBound {
			bestChoice, bestBound, bestMake = c.choice, v, c.make
		}
	}
	if v := supCR(bdetCR(bStar)); v < bestBound {
		bestChoice, bestBound = ChoiceBDet, v
		bestMake = func() Policy { return NewBDet(b, bStar) }
	}

	return &RobustConstrained{
		b:        b,
		interval: iv,
		choice:   bestChoice,
		bound:    bestBound,
		inner:    bestMake(),
	}, nil
}

// NewRobustConstrainedFromStops estimates the confidence rectangle at
// level conf from the stops and builds the robust policy.
func NewRobustConstrainedFromStops(b float64, stops []float64, conf float64) (*RobustConstrained, error) {
	iv, err := EstimateStatsInterval(stops, b, conf)
	if err != nil {
		return nil, err
	}
	return NewRobustConstrained(b, iv)
}

// Name implements Policy.
func (r *RobustConstrained) Name() string { return "Robust" }

// B implements Policy.
func (r *RobustConstrained) B() float64 { return r.b }

// Choice returns the selected vertex.
func (r *RobustConstrained) Choice() Choice { return r.choice }

// Interval returns the statistics rectangle used for selection.
func (r *RobustConstrained) Interval() StatsInterval { return r.interval }

// WorstCaseCR returns the guaranteed CR bound over every distribution
// consistent with ANY statistics in the rectangle.
func (r *RobustConstrained) WorstCaseCR() float64 { return r.bound }

// Threshold implements Policy.
func (r *RobustConstrained) Threshold(rng *rand.Rand) float64 {
	return r.inner.Threshold(rng)
}

// MeanCostForStop implements Policy.
func (r *RobustConstrained) MeanCostForStop(y float64) float64 {
	return r.inner.MeanCostForStop(y)
}

// normalQuantile is the standard normal quantile used for the intervals
// (duplicated from the dist package to keep this package free of a
// dependency cycle; accuracy requirements here are mild).
func normalQuantile(p float64) float64 {
	// Beasley-Springer-Moro style rational approximation via the error
	// function inverse relation would be overkill; bisection on erfc is
	// simple and exact enough.
	cdf := func(z float64) float64 { return 0.5 * math.Erfc(-z/math.Sqrt2) }
	lo, hi := -10.0, 10.0
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}
