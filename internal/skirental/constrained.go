package skirental

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// Choice identifies which of the four vertex strategies the constrained
// policy selected (Section 4.4).
type Choice int

// The four vertices of the LP polytope of eq. 33.
const (
	// ChoiceNRand is the vertex (alpha, beta, gamma) = (0, 0, 0).
	ChoiceNRand Choice = iota
	// ChoiceTOI is the vertex (1, 0, 0).
	ChoiceTOI
	// ChoiceDET is the vertex (0, 1, 0).
	ChoiceDET
	// ChoiceBDet is the vertex (0, 0, 1).
	ChoiceBDet
)

// String implements fmt.Stringer.
func (c Choice) String() string {
	switch c {
	case ChoiceNRand:
		return "N-Rand"
	case ChoiceTOI:
		return "TOI"
	case ChoiceDET:
		return "DET"
	case ChoiceBDet:
		return "b-DET"
	default:
		return fmt.Sprintf("skirental.Choice(%d)", int(c))
	}
}

// VertexCosts holds the worst-case expected online cost of each vertex
// strategy over the distribution family Q(mu_B-, q_B+) (Section 4.4).
type VertexCosts struct {
	NRand float64 // e/(e-1)·(mu + qB)
	TOI   float64 // B
	DET   float64 // mu + 2qB
	BDet  float64 // (sqrt(mu) + sqrt(qB))², +Inf when condition 36 fails
	// BDetThreshold is the optimal b = sqrt(mu·B/q); NaN when b-DET is
	// inapplicable.
	BDetThreshold float64
}

// ComputeVertexCosts evaluates the four closed forms for statistics s and
// break-even b.
func ComputeVertexCosts(b float64, s Stats) VertexCosts {
	mu, q := s.MuBMinus, s.QBPlus
	vc := VertexCosts{
		NRand:         math.E / (math.E - 1) * (mu + q*b),
		TOI:           b,
		DET:           mu + 2*q*b,
		BDet:          math.Inf(1),
		BDetThreshold: math.NaN(),
	}
	// b-DET needs a positive probability of long stops to amortize
	// against, and condition (36): mu/B < (1-q)²/q, which guarantees the
	// optimal threshold exceeds the mean short stop.
	if q > 0 && mu/b < (1-q)*(1-q)/q {
		bStar := math.Sqrt(mu * b / q)
		// mu = 0 is the degenerate limit where all short mass sits at
		// zero length; an arbitrarily small positive threshold realizes
		// the cost qB, so clamp away from exactly zero.
		if bStar < b*1e-9 {
			bStar = b * 1e-9
		}
		vc.BDet = math.Pow(math.Sqrt(mu)+math.Sqrt(q*b), 2)
		vc.BDetThreshold = bStar
	}
	return vc
}

// Select returns the vertex with the smallest worst-case cost, breaking
// ties toward the deterministic strategies in the order DET, TOI, b-DET,
// N-Rand (ties occur on region boundaries; any choice is optimal there).
func (vc VertexCosts) Select() (Choice, float64) {
	best, cost := ChoiceDET, vc.DET
	if vc.TOI < cost {
		best, cost = ChoiceTOI, vc.TOI
	}
	if vc.BDet < cost {
		best, cost = ChoiceBDet, vc.BDet
	}
	if vc.NRand < cost {
		best, cost = ChoiceNRand, vc.NRand
	}
	return best, cost
}

// Constrained is the paper's proposed online policy: given (mu_B-, q_B+)
// it plays the cheapest of the four vertex strategies. Its worst-case
// expected competitive ratio is minimal over all online policies that
// know only those two statistics.
type Constrained struct {
	b      float64
	stats  Stats
	choice Choice
	cost   float64
	inner  Policy
}

// NewConstrained builds the proposed policy for break-even interval b and
// statistics s. It returns ErrBadStats when s is infeasible for b.
func NewConstrained(b float64, s Stats) (*Constrained, error) {
	if err := s.Validate(b); err != nil {
		return nil, err
	}
	vc := ComputeVertexCosts(b, s)
	choice, cost := vc.Select()
	c := &Constrained{b: b, stats: s, choice: choice, cost: cost}
	switch choice {
	case ChoiceNRand:
		c.inner = NewNRand(b)
	case ChoiceTOI:
		c.inner = NewTOI(b)
	case ChoiceDET:
		c.inner = NewDET(b)
	case ChoiceBDet:
		c.inner = NewBDet(b, vc.BDetThreshold)
	}
	return c, nil
}

// NewConstrainedFromStops is a convenience constructor that estimates the
// statistics from an observed stop sample first.
func NewConstrainedFromStops(b float64, stops []float64) (*Constrained, error) {
	s, err := EstimateStats(stops, b)
	if err != nil {
		return nil, err
	}
	return NewConstrained(b, s)
}

// Name implements Policy.
func (c *Constrained) Name() string { return "Proposed" }

// B implements Policy.
func (c *Constrained) B() float64 { return c.b }

// Stats returns the statistics the policy was built with.
func (c *Constrained) Stats() Stats { return c.stats }

// Choice returns the selected vertex strategy.
func (c *Constrained) Choice() Choice { return c.choice }

// Inner returns the concrete vertex policy being played.
func (c *Constrained) Inner() Policy { return c.inner }

// WorstCaseCost returns the guaranteed upper bound on the expected online
// cost over every distribution consistent with the statistics.
func (c *Constrained) WorstCaseCost() float64 { return c.cost }

// WorstCaseCR returns the guaranteed upper bound on the expected
// competitive ratio: WorstCaseCost / (mu_B- + q_B+·B). For the degenerate
// no-cost corner (mu = q = 0) it returns 1.
func (c *Constrained) WorstCaseCR() float64 {
	off := c.stats.OfflineCost(c.b)
	if off == 0 {
		return 1
	}
	return c.cost / off
}

// Threshold implements Policy by delegating to the selected vertex.
func (c *Constrained) Threshold(rng *rand.Rand) float64 {
	return c.inner.Threshold(rng)
}

// MeanCostForStop implements Policy by delegating to the selected vertex.
func (c *Constrained) MeanCostForStop(y float64) float64 {
	return c.inner.MeanCostForStop(y)
}

// WorstCaseCRForStats evaluates the proposed algorithm's worst-case CR
// surface (Figure 1b) without materializing a policy.
func WorstCaseCRForStats(b float64, s Stats) (float64, error) {
	if err := s.Validate(b); err != nil {
		return 0, err
	}
	_, cost := ComputeVertexCosts(b, s).Select()
	off := s.OfflineCost(b)
	if off == 0 {
		return 1, nil
	}
	return cost / off, nil
}

// BaselineWorstCaseCR returns the worst-case expected CR over
// Q(mu_B-, q_B+) of the named baseline (the curves of Figures 2, 5, 6):
//
//	N-Rand:   e/(e-1), pointwise for every distribution
//	TOI:      B/(mu + qB)
//	DET:      (mu + 2qB)/(mu + qB)
//	b-DET:    (sqrt(mu)+sqrt(qB))²/(mu + qB), +Inf when inapplicable
//	MOM-Rand: 1 + 1/(2(e-2)) when the full mean can stay under the cutoff
//	          (its density is fixed, so the adversary puts short mass at B),
//	          e/(e-1) otherwise
//	NEV:      +Inf (long stops are unbounded over Q)
func BaselineWorstCaseCR(choice string, b float64, s Stats) float64 {
	off := s.OfflineCost(b)
	vc := ComputeVertexCosts(b, s)
	if off == 0 {
		return 1
	}
	switch choice {
	case "N-Rand":
		return math.E / (math.E - 1)
	case "TOI":
		return vc.TOI / off
	case "DET":
		return vc.DET / off
	case "b-DET":
		return vc.BDet / off
	case "NEV":
		if s.QBPlus > 0 {
			return math.Inf(1)
		}
		return 1
	case "MOM-Rand":
		return momRandWorstCaseCR(b, s)
	default:
		return math.NaN()
	}
}

// momRandWorstCaseCR computes the worst case over Q of the expected CR of
// MOM-Rand, whose branch depends on the full mean of the adversary's
// distribution.
//
// Reshaped branch (mean <= cutoff): the per-stop cost
// C(y) = y + y²/(2B(e-2)) is convex on [0, B], so the adversary pushes
// all short mass to {0, B} and keeps long stops just above B, giving
// E[cost] = (mu + qB)(1 + 1/(2(e-2))) and CR = 1 + 1/(2(e-2)) ≈ 1.696.
// The construction has full mean mu + qB, so it is feasible exactly when
// mu + qB <= cutoff; otherwise every distribution in Q has mean above the
// cutoff, MOM-Rand always degenerates to N-Rand, and the worst case is
// e/(e-1).
func momRandWorstCaseCR(b float64, s Stats) float64 {
	if s.OfflineCost(b) <= MOMRandMeanCutoff(b) {
		return 1 + 1/(2*(math.E-2))
	}
	return math.E / (math.E - 1)
}
