package skirental

import (
	"math"
	"testing"
	"testing/quick"

	"idlereduce/internal/dist"
)

// allPolicies builds one instance of every policy family for invariant
// sweeps.
func allPolicies(t *testing.T) []Policy {
	t.Helper()
	cons, err := NewConstrained(testB, Stats{MuBMinus: 4, QBPlus: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	mix, err := NewThresholdMixture("mix", testB, []float64{0, 9, 22}, []float64{1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	return []Policy{
		NewTOI(testB), NewNEV(testB), NewDET(testB), NewBDet(testB, 13),
		NewFixedThreshold("x35", testB, 35),
		NewNRand(testB), NewMOMRand(testB, 10), NewMOMRand(testB, 26),
		cons, mix,
	}
}

func TestMeanCostMonotoneInStopLength(t *testing.T) {
	// Invariant: a longer stop can never have a smaller expected cost —
	// the vehicle pays at least as much for waiting longer, for every
	// policy family.
	policies := allPolicies(t)
	prop := func(a16, b16 uint16) bool {
		y1 := float64(a16) / 100
		y2 := float64(b16) / 100
		if y1 > y2 {
			y1, y2 = y2, y1
		}
		for _, p := range policies {
			if p.MeanCostForStop(y1) > p.MeanCostForStop(y2)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestMeanCostDominatesOffline(t *testing.T) {
	// Invariant: no online policy's expected cost beats the clairvoyant
	// cost on any stop.
	policies := allPolicies(t)
	prop := func(u uint16) bool {
		y := float64(u) / 50
		off := OfflineCost(y, testB)
		for _, p := range policies {
			if p.MeanCostForStop(y) < off-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestMeanCostBoundedByThresholdPlusB(t *testing.T) {
	// Invariant: for policies with threshold support in [0, B], the
	// expected cost never exceeds 2B (the DET worst case bounds the
	// whole family since x + B <= 2B).
	policies := []Policy{
		NewTOI(testB), NewDET(testB), NewBDet(testB, 13),
		NewNRand(testB), NewMOMRand(testB, 10),
	}
	prop := func(u uint16) bool {
		y := float64(u) / 20
		for _, p := range policies {
			if p.MeanCostForStop(y) > 2*testB+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestExpectedCostLinearInMixtures(t *testing.T) {
	// Invariant: J(P, w·q1 + (1-w)·q2) = w·J(P, q1) + (1-w)·J(P, q2),
	// the linearity the paper's strong-duality argument rests on.
	d1 := dist.NewExponentialMean(12)
	d2 := dist.TwoPoint(3, 200, 0.4)
	policies := allPolicies(t)
	prop := func(w8 uint8) bool {
		w := float64(w8) / 255
		if w == 0 || w == 1 {
			return true
		}
		mixed := dist.NewMixture(
			dist.Component{W: w, D: d1},
			dist.Component{W: 1 - w, D: d2},
		)
		for _, p := range policies {
			if _, isNEV := p.(*Deterministic); isNEV && math.IsInf(p.(*Deterministic).X(), 1) {
				continue // NEV's cost on d1's unbounded tail is quadrature-limited
			}
			lhs := ExpectedCost(p, mixed)
			rhs := w*ExpectedCost(p, d1) + (1-w)*ExpectedCost(p, d2)
			if math.Abs(lhs-rhs) > 1e-6*(1+math.Abs(rhs)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestThresholdDrawsAlwaysValid(t *testing.T) {
	// Invariant: every drawn threshold is finite and non-negative (NEV's
	// +Inf is the documented exception).
	rng := newRNG(99)
	for _, p := range allPolicies(t) {
		for i := 0; i < 200; i++ {
			x := p.Threshold(rng)
			if math.IsNaN(x) || x < 0 {
				t.Fatalf("%s: threshold %v", p.Name(), x)
			}
			if math.IsInf(x, 1) && p.Name() != "NEV" {
				t.Fatalf("%s: infinite threshold", p.Name())
			}
		}
	}
}

func TestWorstCaseCRScaleInvariance(t *testing.T) {
	// Invariant: the worst-case CR depends only on (mu/B, q): scaling B
	// and mu together changes nothing (the paper plots everything in
	// normalized units for this reason).
	prop := func(mu8, q8, scale8 uint8) bool {
		q := float64(q8) / 256
		muFrac := float64(mu8) / 255 * (1 - q)
		scale := 0.5 + float64(scale8)/64 // 0.5 .. 4.5
		b1, b2 := 28.0, 28.0*scale
		cr1, err1 := WorstCaseCRForStats(b1, Stats{MuBMinus: muFrac * b1, QBPlus: q})
		cr2, err2 := WorstCaseCRForStats(b2, Stats{MuBMinus: muFrac * b2, QBPlus: q})
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(cr1-cr2) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
