package skirental

import (
	"math"
	"math/rand/v2"
	"testing"

	"idlereduce/internal/numeric"
)

func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0xdeadbeefcafef00d))
}

func TestDeterministicPolicies(t *testing.T) {
	cases := []struct {
		p        Policy
		name     string
		y, want  float64
		wantName string
	}{
		{NewTOI(testB), "TOI short", 5, 28, "TOI"},
		{NewTOI(testB), "TOI long", 500, 28, "TOI"},
		{NewNEV(testB), "NEV short", 5, 5, "NEV"},
		{NewNEV(testB), "NEV long", 500, 500, "NEV"},
		{NewDET(testB), "DET short", 5, 5, "DET"},
		{NewDET(testB), "DET long", 500, 56, "DET"},
		{NewBDet(testB, 10), "b-DET below", 5, 5, "b-DET"},
		{NewBDet(testB, 10), "b-DET above", 15, 38, "b-DET"},
	}
	for _, c := range cases {
		if got := c.p.MeanCostForStop(c.y); got != c.want {
			t.Errorf("%s: cost %v want %v", c.name, got, c.want)
		}
		if c.p.Name() != c.wantName {
			t.Errorf("%s: name %q", c.name, c.p.Name())
		}
		if c.p.B() != testB {
			t.Errorf("%s: B %v", c.name, c.p.B())
		}
	}
}

func TestDeterministicThresholdFixed(t *testing.T) {
	p := NewBDet(testB, 13)
	rng := newRNG(1)
	for i := 0; i < 10; i++ {
		if p.Threshold(rng) != 13 {
			t.Fatal("deterministic threshold varied")
		}
	}
	if p.X() != 13 {
		t.Errorf("X() = %v", p.X())
	}
}

func TestNRandDensityIntegratesToOne(t *testing.T) {
	n := NewNRand(testB)
	got := numeric.Integrate(n.PDF, 0, testB)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("∫pdf = %v", got)
	}
	if n.PDF(-1) != 0 || n.PDF(testB+1) != 0 {
		t.Error("density outside support")
	}
}

func TestNRandCDFMatchesPDF(t *testing.T) {
	n := NewNRand(testB)
	for _, x := range []float64{1, 7, 14, 27} {
		integ := numeric.Integrate(n.PDF, 0, x)
		if math.Abs(integ-n.CDF(x)) > 1e-9 {
			t.Errorf("CDF(%v): integral %v vs closed form %v", x, integ, n.CDF(x))
		}
	}
}

func TestNRandThresholdDistribution(t *testing.T) {
	// Empirical CDF of sampled thresholds must match the analytic CDF.
	n := NewNRand(testB)
	rng := newRNG(5)
	const N = 200_000
	count14 := 0
	for i := 0; i < N; i++ {
		x := n.Threshold(rng)
		if x < 0 || x > testB {
			t.Fatalf("threshold %v outside [0, B]", x)
		}
		if x <= 14 {
			count14++
		}
	}
	got := float64(count14) / N
	want := n.CDF(14)
	if math.Abs(got-want) > 0.005 {
		t.Errorf("P(x<=14): empirical %v analytic %v", got, want)
	}
}

func TestNRandMeanCostMatchesMonteCarlo(t *testing.T) {
	n := NewNRand(testB)
	rng := newRNG(6)
	for _, y := range []float64{3, 14, 27.5, 28, 40, 300} {
		var sum numeric.KahanSum
		const N = 400_000
		for i := 0; i < N; i++ {
			sum.Add(OnlineCost(n.Threshold(rng), y, testB))
		}
		mc := sum.Sum() / N
		an := n.MeanCostForStop(y)
		if math.Abs(mc-an) > 0.01*an {
			t.Errorf("y=%v: MC %v analytic %v", y, mc, an)
		}
	}
}

func TestNRandExactCompetitiveRatio(t *testing.T) {
	// The hallmark of N-Rand: expected cost is e/(e-1)·offline for every
	// stop length (not just in aggregate).
	n := NewNRand(testB)
	ratio := math.E / (math.E - 1)
	for _, y := range []float64{0.01, 1, 14, 28, 29, 1e5} {
		got := n.MeanCostForStop(y) / OfflineCost(y, testB)
		if math.Abs(got-ratio) > 1e-12 {
			t.Errorf("y=%v: ratio %v want %v", y, got, ratio)
		}
	}
}

func TestMOMRandDensityIntegratesToOne(t *testing.T) {
	m := NewMOMRand(testB, 10) // 10 < 0.836*28 = 23.4: reshaped branch
	if m.UsesNRand() {
		t.Fatal("should use reshaped density")
	}
	got := numeric.Integrate(m.PDF, 0, testB)
	if math.Abs(got-1) > 1e-9 {
		t.Errorf("∫pdf = %v", got)
	}
}

func TestMOMRandCutoff(t *testing.T) {
	cut := MOMRandMeanCutoff(testB)
	want := 2 * (math.E - 2) / (math.E - 1) * testB
	if math.Abs(cut-want) > 1e-12 {
		t.Errorf("cutoff %v want %v", cut, want)
	}
	// The paper reports the cutoff as 0.836B.
	if math.Abs(cut/testB-0.836) > 0.001 {
		t.Errorf("cutoff/B = %v, paper says 0.836", cut/testB)
	}
	if !NewMOMRand(testB, cut*1.01).UsesNRand() {
		t.Error("above cutoff must degrade to N-Rand")
	}
	if NewMOMRand(testB, cut*0.99).UsesNRand() {
		t.Error("below cutoff must use reshaped density")
	}
}

func TestMOMRandCDFMatchesPDF(t *testing.T) {
	m := NewMOMRand(testB, 10)
	for _, x := range []float64{1, 7, 14, 27} {
		integ := numeric.Integrate(m.PDF, 0, x)
		if math.Abs(integ-m.CDF(x)) > 1e-9 {
			t.Errorf("CDF(%v): integral %v vs closed form %v", x, integ, m.CDF(x))
		}
	}
	if m.CDF(0) != 0 || m.CDF(testB) != 1 {
		t.Error("CDF bounds wrong")
	}
}

func TestMOMRandThresholdInversion(t *testing.T) {
	// Sampled thresholds must reproduce the analytic CDF.
	m := NewMOMRand(testB, 10)
	rng := newRNG(7)
	const N = 200_000
	for _, probe := range []float64{7.0, 14.0, 21.0} {
		count := 0
		rng2 := newRNG(7) // fresh stream per probe for independence
		_ = rng
		for i := 0; i < N; i++ {
			if m.Threshold(rng2) <= probe {
				count++
			}
		}
		got := float64(count) / N
		want := m.CDF(probe)
		if math.Abs(got-want) > 0.005 {
			t.Errorf("P(x<=%v): empirical %v analytic %v", probe, got, want)
		}
	}
}

func TestMOMRandMeanCostMatchesMonteCarlo(t *testing.T) {
	m := NewMOMRand(testB, 10)
	rng := newRNG(8)
	for _, y := range []float64{5, 14, 27, 28, 100} {
		var sum numeric.KahanSum
		const N = 400_000
		for i := 0; i < N; i++ {
			sum.Add(OnlineCost(m.Threshold(rng), y, testB))
		}
		mc := sum.Sum() / N
		an := m.MeanCostForStop(y)
		if math.Abs(mc-an) > 0.01*an {
			t.Errorf("y=%v: MC %v analytic %v", y, mc, an)
		}
	}
}

func TestMOMRandMeanCostContinuousAtB(t *testing.T) {
	m := NewMOMRand(testB, 10)
	below := m.MeanCostForStop(testB)
	above := m.MeanCostForStop(testB + 1e-9)
	if math.Abs(below-above) > 1e-6 {
		t.Errorf("discontinuity at B: %v vs %v", below, above)
	}
}

func TestMOMRandDelegatesAboveCutoff(t *testing.T) {
	m := NewMOMRand(testB, 25) // above cutoff
	n := NewNRand(testB)
	rngM, rngN := newRNG(9), newRNG(9)
	for i := 0; i < 100; i++ {
		if m.Threshold(rngM) != n.Threshold(rngN) {
			t.Fatal("MOM-Rand above cutoff must sample exactly like N-Rand")
		}
	}
	for _, y := range []float64{5, 30} {
		if m.MeanCostForStop(y) != n.MeanCostForStop(y) {
			t.Error("mean cost must match N-Rand above cutoff")
		}
	}
	for _, x := range []float64{3.0, 20.0} {
		if m.PDF(x) != n.PDF(x) || m.CDF(x) != n.CDF(x) {
			t.Error("PDF/CDF must match N-Rand above cutoff")
		}
	}
}

func TestFixedThresholdPolicy(t *testing.T) {
	p := NewFixedThreshold("ablation-x40", testB, 40) // threshold above B
	if p.Name() != "ablation-x40" {
		t.Errorf("name %q", p.Name())
	}
	// Stop between B and threshold: pays y (no restart yet).
	if got := p.MeanCostForStop(35); got != 35 {
		t.Errorf("cost %v want 35", got)
	}
	// Stop beyond threshold: pays 40 + B.
	if got := p.MeanCostForStop(50); got != 68 {
		t.Errorf("cost %v want 68", got)
	}
}
