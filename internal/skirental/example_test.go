package skirental_test

import (
	"fmt"

	"idlereduce/internal/dist"
	"idlereduce/internal/skirental"
)

// ExampleNewConstrained shows the paper's vertex selection for a traffic
// profile with short queue stops and a 30% chance of a long stop.
func ExampleNewConstrained() {
	p, err := skirental.NewConstrained(28, skirental.Stats{MuBMinus: 0.56, QBPlus: 0.3})
	if err != nil {
		panic(err)
	}
	fmt.Printf("plays %s, worst-case CR %.4f\n", p.Choice(), p.WorstCaseCR())
	// Output:
	// plays b-DET, worst-case CR 1.4841
}

// ExampleEstimateStats computes the constrained statistics from observed
// stop lengths.
func ExampleEstimateStats() {
	stops := []float64{10, 20, 30, 100} // two short, two long for B = 28
	s, err := skirental.EstimateStats(stops, 28)
	if err != nil {
		panic(err)
	}
	fmt.Printf("mu_B- = %.1f, q_B+ = %.2f\n", s.MuBMinus, s.QBPlus)
	// Output:
	// mu_B- = 7.5, q_B+ = 0.50
}

// ExampleComputeVertexCosts evaluates all four closed forms at once.
func ExampleComputeVertexCosts() {
	vc := skirental.ComputeVertexCosts(28, skirental.Stats{MuBMinus: 2, QBPlus: 0.01})
	choice, cost := vc.Select()
	fmt.Printf("%s wins at expected cost %.3f\n", choice, cost)
	// Output:
	// DET wins at expected cost 2.560
}

// ExampleOnlineCost demonstrates the ski-rental cost function (eq. 3).
func ExampleOnlineCost() {
	// Threshold 28 s: a 10 s stop just idles; a 60 s stop idles 28 s and
	// pays the restart.
	fmt.Println(skirental.OnlineCost(28, 10, 28))
	fmt.Println(skirental.OnlineCost(28, 60, 28))
	// Output:
	// 10
	// 56
}

// ExampleMarshalPolicy persists and restores a tuned policy.
func ExampleMarshalPolicy() {
	p, _ := skirental.NewConstrained(28, skirental.Stats{MuBMinus: 2, QBPlus: 0.01})
	data, _ := skirental.MarshalPolicy(p)
	fmt.Printf("%s\n", data)
	restored, _ := skirental.UnmarshalPolicy(data)
	fmt.Println(restored.Name())
	// Output:
	// {"kind":"constrained","b":28,"stats":{"MuBMinus":2,"QBPlus":0.01}}
	// Proposed
}

// ExampleOptimalThreshold solves the average-case (known-distribution)
// baseline in the memoryless case.
func ExampleOptimalThreshold() {
	// Exponential stops with mean 100 s > B: restart immediately.
	x, cost, _ := skirental.OptimalThreshold(dist.NewExponentialMean(100), 28)
	fmt.Printf("x* = %.0f, expected cost %.0f\n", x, cost)
	// Output:
	// x* = 0, expected cost 28
}
