package skirental

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestComputeVertexCostsFormulas(t *testing.T) {
	s := Stats{MuBMinus: 5, QBPlus: 0.3}
	vc := ComputeVertexCosts(testB, s)
	off := 5 + 0.3*28
	if math.Abs(vc.NRand-math.E/(math.E-1)*off) > 1e-12 {
		t.Errorf("N-Rand cost %v", vc.NRand)
	}
	if vc.TOI != testB {
		t.Errorf("TOI cost %v", vc.TOI)
	}
	if math.Abs(vc.DET-(5+2*0.3*28)) > 1e-12 {
		t.Errorf("DET cost %v", vc.DET)
	}
	wantBDet := math.Pow(math.Sqrt(5)+math.Sqrt(0.3*28), 2)
	if math.Abs(vc.BDet-wantBDet) > 1e-12 {
		t.Errorf("b-DET cost %v want %v", vc.BDet, wantBDet)
	}
	wantB := math.Sqrt(5 * 28 / 0.3)
	if math.Abs(vc.BDetThreshold-wantB) > 1e-9 {
		t.Errorf("b* = %v want %v", vc.BDetThreshold, wantB)
	}
}

func TestBDetConditionEq36(t *testing.T) {
	// Condition (36): mu/B < (1-q)²/q. Violated => b-DET inapplicable.
	s := Stats{MuBMinus: 14, QBPlus: 0.5} // mu/B = 0.5, (1-q)²/q = 0.5: not <
	vc := ComputeVertexCosts(testB, s)
	if !math.IsInf(vc.BDet, 1) {
		t.Errorf("b-DET should be inapplicable, cost %v", vc.BDet)
	}
	if !math.IsNaN(vc.BDetThreshold) {
		t.Errorf("threshold should be NaN, got %v", vc.BDetThreshold)
	}
	// And no long stops means nothing to amortize: inapplicable too.
	vc0 := ComputeVertexCosts(testB, Stats{MuBMinus: 14, QBPlus: 0})
	if !math.IsInf(vc0.BDet, 1) {
		t.Error("b-DET with q=0 should be inapplicable")
	}
}

func TestBDetThresholdExceedsShortMean(t *testing.T) {
	// Paper's lemma: the optimal b must exceed mu/(1-q); condition (36)
	// guarantees it.
	prop := func(mu8, qu8 uint8) bool {
		mu := float64(mu8) / 255 * testB
		q := float64(qu8) / 256
		s := Stats{MuBMinus: mu, QBPlus: q}
		if s.Validate(testB) != nil {
			return true
		}
		vc := ComputeVertexCosts(testB, s)
		if math.IsInf(vc.BDet, 1) || mu == 0 {
			return true
		}
		return vc.BDetThreshold > mu/(1-q)-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSelectPicksMinimum(t *testing.T) {
	prop := func(mu16, q16 uint16) bool {
		q := float64(q16) / math.MaxUint16
		mu := float64(mu16) / math.MaxUint16 * testB * (1 - q)
		s := Stats{MuBMinus: mu, QBPlus: q}
		vc := ComputeVertexCosts(testB, s)
		_, cost := vc.Select()
		min := math.Min(math.Min(vc.NRand, vc.TOI), math.Min(vc.DET, vc.BDet))
		return cost == min
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestConstrainedKnownRegions(t *testing.T) {
	cases := []struct {
		name string
		s    Stats
		want Choice
	}{
		// Short stops dominate and are short: DET mimics offline (CR→1).
		{"good traffic", Stats{MuBMinus: 2, QBPlus: 0.01}, ChoiceDET},
		// Long stops dominate: TOI is optimal (cost B ≈ offline).
		{"jam", Stats{MuBMinus: 0.5, QBPlus: 0.95}, ChoiceTOI},
		// Tiny mu with moderate q: b-DET exploits the gap (Fig. 2c-d).
		{"b-DET pocket", Stats{MuBMinus: 0.02 * testB, QBPlus: 0.3}, ChoiceBDet},
		// Mid mu, mid q: randomization wins.
		{"mixed", Stats{MuBMinus: 2.8, QBPlus: 0.5}, ChoiceNRand},
	}
	for _, c := range cases {
		p, err := NewConstrained(testB, c.s)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if p.Choice() != c.want {
			t.Errorf("%s: choice %v want %v (cost %v)", c.name, p.Choice(), c.want, p.WorstCaseCost())
		}
		if p.Name() != "Proposed" {
			t.Errorf("name %q", p.Name())
		}
		if p.Inner() == nil {
			t.Errorf("%s: nil inner policy", c.name)
		}
	}
}

func TestConstrainedRejectsBadStats(t *testing.T) {
	if _, err := NewConstrained(testB, Stats{MuBMinus: 28, QBPlus: 0.5}); !errors.Is(err, ErrBadStats) {
		t.Errorf("want ErrBadStats, got %v", err)
	}
	if _, err := NewConstrained(-1, Stats{}); !errors.Is(err, ErrBadStats) {
		t.Errorf("want ErrBadStats for bad B, got %v", err)
	}
}

func TestConstrainedWorstCaseCRNeverExceedsNRand(t *testing.T) {
	// The proposed policy can never be worse than e/(e-1): N-Rand is one
	// of its vertices.
	ratio := math.E/(math.E-1) + 1e-12
	prop := func(mu16, q16 uint16) bool {
		q := float64(q16) / math.MaxUint16
		mu := float64(mu16) / math.MaxUint16 * testB * (1 - q)
		cr, err := WorstCaseCRForStats(testB, Stats{MuBMinus: mu, QBPlus: q})
		return err == nil && cr <= ratio && cr >= 1-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestConstrainedBeatsEveryBaselinePointwise(t *testing.T) {
	// Figure 2's claim: the proposed worst-case CR is the lower envelope
	// of the four vertex strategies at every (mu, q).
	for _, mu := range []float64{0, 0.02 * testB, 0.05 * testB, 0.2 * testB, 0.5 * testB, 0.9 * testB} {
		for _, q := range []float64{0, 0.05, 0.2, 0.5, 0.8, 1} {
			s := Stats{MuBMinus: mu, QBPlus: q}
			if s.Validate(testB) != nil {
				continue
			}
			cr, err := WorstCaseCRForStats(testB, s)
			if err != nil {
				t.Fatal(err)
			}
			for _, base := range []string{"N-Rand", "TOI", "DET", "b-DET"} {
				bcr := BaselineWorstCaseCR(base, testB, s)
				if cr > bcr+1e-9 {
					t.Errorf("mu=%v q=%v: proposed %v > %s %v", mu, q, cr, base, bcr)
				}
			}
		}
	}
}

func TestConstrainedDegenerateCorner(t *testing.T) {
	p, err := NewConstrained(testB, Stats{MuBMinus: 0, QBPlus: 0})
	if err != nil {
		t.Fatal(err)
	}
	if cr := p.WorstCaseCR(); cr != 1 {
		t.Errorf("degenerate corner CR = %v, want 1", cr)
	}
}

func TestConstrainedFromStops(t *testing.T) {
	// Mostly-long stops => TOI territory.
	stops := []float64{100, 200, 300, 5, 150, 90, 60, 120}
	p, err := NewConstrainedFromStops(testB, stops)
	if err != nil {
		t.Fatal(err)
	}
	if p.Choice() != ChoiceTOI {
		t.Errorf("choice %v, want TOI for long-stop traffic", p.Choice())
	}
	if _, err := NewConstrainedFromStops(testB, nil); err == nil {
		t.Error("want error for empty stops")
	}
}

func TestConstrainedDelegation(t *testing.T) {
	s := Stats{MuBMinus: 2, QBPlus: 0.01}
	p, _ := NewConstrained(testB, s)
	rng := newRNG(3)
	// DET chosen: threshold must be exactly B, costs must match DET.
	if x := p.Threshold(rng); x != testB {
		t.Errorf("threshold %v want B", x)
	}
	det := NewDET(testB)
	for _, y := range []float64{5.0, 100.0} {
		if p.MeanCostForStop(y) != det.MeanCostForStop(y) {
			t.Error("delegated cost mismatch")
		}
	}
	if p.Stats() != s {
		t.Errorf("Stats() = %+v", p.Stats())
	}
	if p.B() != testB {
		t.Errorf("B() = %v", p.B())
	}
}

func TestWorstCaseCostIsTightForChosenVertex(t *testing.T) {
	// For the DET choice the bound mu + 2qB is met exactly by any
	// distribution with those statistics; verify against a two-point one.
	s := Stats{MuBMinus: 2, QBPlus: 0.01}
	p, _ := NewConstrained(testB, s)
	if p.Choice() != ChoiceDET {
		t.Skip("region moved")
	}
	want := s.MuBMinus + 2*s.QBPlus*testB
	if math.Abs(p.WorstCaseCost()-want) > 1e-12 {
		t.Errorf("cost %v want %v", p.WorstCaseCost(), want)
	}
}

func TestChoiceString(t *testing.T) {
	want := map[Choice]string{
		ChoiceNRand: "N-Rand", ChoiceTOI: "TOI", ChoiceDET: "DET", ChoiceBDet: "b-DET",
	}
	for c, w := range want {
		if c.String() != w {
			t.Errorf("%d: %q", c, c.String())
		}
	}
	if Choice(99).String() == "" {
		t.Error("unknown choice should still print")
	}
}

func TestBaselineWorstCaseCRNEVAndUnknown(t *testing.T) {
	s := Stats{MuBMinus: 5, QBPlus: 0.3}
	if !math.IsInf(BaselineWorstCaseCR("NEV", testB, s), 1) {
		t.Error("NEV with long stops must be unbounded")
	}
	if got := BaselineWorstCaseCR("NEV", testB, Stats{MuBMinus: 5, QBPlus: 0}); got != 1 {
		t.Errorf("NEV with no long stops is offline-optimal, got %v", got)
	}
	if !math.IsNaN(BaselineWorstCaseCR("bogus", testB, s)) {
		t.Error("unknown baseline should be NaN")
	}
}

func TestMOMRandWorstCaseBranches(t *testing.T) {
	// Small offline cost => reshaped branch worst case 1 + 1/(2(e-2)).
	sSmall := Stats{MuBMinus: 2, QBPlus: 0.05}
	want := 1 + 1/(2*(math.E-2))
	if got := BaselineWorstCaseCR("MOM-Rand", testB, sSmall); math.Abs(got-want) > 1e-12 {
		t.Errorf("reshaped branch: %v want %v", got, want)
	}
	// Large offline cost => N-Rand branch.
	sBig := Stats{MuBMinus: 0, QBPlus: 0.9}
	wantN := math.E / (math.E - 1)
	if got := BaselineWorstCaseCR("MOM-Rand", testB, sBig); math.Abs(got-wantN) > 1e-12 {
		t.Errorf("N-Rand branch: %v want %v", got, wantN)
	}
}
