package skirental

import (
	"errors"
	"math"
	"testing"

	"idlereduce/internal/dist"
)

func TestStatsIntervalValidate(t *testing.T) {
	good := StatsInterval{MuLo: 1, MuHi: 5, QLo: 0.1, QHi: 0.3}
	if err := good.Validate(testB); err != nil {
		t.Fatal(err)
	}
	bads := []StatsInterval{
		{MuLo: -1, MuHi: 5, QLo: 0, QHi: 0.1},
		{MuLo: 5, MuHi: 1, QLo: 0, QHi: 0.1},
		{MuLo: 1, MuHi: 5, QLo: 0.5, QHi: 0.2},
		{MuLo: 1, MuHi: 5, QLo: 0, QHi: 1.2},
		{MuLo: 27, MuHi: 28, QLo: 0.9, QHi: 0.95}, // fully infeasible
	}
	for i, iv := range bads {
		if err := iv.Validate(testB); !errors.Is(err, ErrBadStats) {
			t.Errorf("case %d: want ErrBadStats, got %v", i, err)
		}
	}
	if err := good.Validate(0); !errors.Is(err, ErrBadStats) {
		t.Error("want ErrBadStats for B=0")
	}
}

func TestStatsIntervalCenterClipped(t *testing.T) {
	iv := StatsInterval{MuLo: 20, MuHi: 28, QLo: 0.4, QHi: 0.6}
	c := iv.Center(testB)
	if c.Validate(testB) != nil {
		t.Errorf("center %+v infeasible", c)
	}
}

func TestEstimateStatsIntervalCoverage(t *testing.T) {
	// Repeated sampling: the interval should contain the true statistics
	// roughly conf of the time (loose check: >= 85% at conf 0.95).
	d := dist.NewMixture(
		dist.Component{W: 0.8, D: dist.NewLogNormalMeanCV(12, 0.8)},
		dist.Component{W: 0.2, D: dist.PointMass{At: 120}},
	)
	truth := StatsOf(d, testB)
	rng := newRNG(77)
	const trials = 300
	muIn, qIn := 0, 0
	for trial := 0; trial < trials; trial++ {
		stops := make([]float64, 150)
		for i := range stops {
			stops[i] = d.Sample(rng)
		}
		iv, err := EstimateStatsInterval(stops, testB, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		if iv.MuLo <= truth.MuBMinus && truth.MuBMinus <= iv.MuHi {
			muIn++
		}
		if iv.QLo <= truth.QBPlus && truth.QBPlus <= iv.QHi {
			qIn++
		}
	}
	if frac := float64(muIn) / trials; frac < 0.85 {
		t.Errorf("mu coverage %v", frac)
	}
	if frac := float64(qIn) / trials; frac < 0.85 {
		t.Errorf("q coverage %v", frac)
	}
}

func TestEstimateStatsIntervalShrinksWithData(t *testing.T) {
	d := dist.NewLogNormalMeanCV(15, 0.9)
	rng := newRNG(5)
	width := func(n int) float64 {
		stops := make([]float64, n)
		for i := range stops {
			stops[i] = d.Sample(rng)
		}
		iv, err := EstimateStatsInterval(stops, testB, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		return (iv.MuHi - iv.MuLo) + (iv.QHi - iv.QLo)
	}
	small := width(50)
	big := width(5000)
	if big >= small {
		t.Errorf("interval did not shrink: n=50 width %v, n=5000 width %v", small, big)
	}
}

func TestRobustConvergesToPlainSelection(t *testing.T) {
	// Plentiful stationary data: robust and plain selections agree.
	rng := newRNG(9)
	stops := make([]float64, 20_000)
	for i := range stops {
		if rng.Float64() < 0.9 {
			stops[i] = 2 + rng.Float64()*10
		} else {
			stops[i] = 150 + rng.Float64()*400
		}
	}
	plain, err := NewConstrainedFromStops(testB, stops)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := NewRobustConstrainedFromStops(testB, stops, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if robust.Choice() != plain.Choice() {
		t.Errorf("robust %v vs plain %v with 20k stops", robust.Choice(), plain.Choice())
	}
	// Bound gap shrinks toward the plain bound.
	if robust.WorstCaseCR() > plain.WorstCaseCR()*1.05 {
		t.Errorf("robust bound %v far above plain %v", robust.WorstCaseCR(), plain.WorstCaseCR())
	}
}

func TestRobustBoundIsConservative(t *testing.T) {
	// The robust bound must dominate the plain worst-case CR at every
	// feasible statistics point inside the rectangle.
	iv := StatsInterval{MuLo: 1, MuHi: 6, QLo: 0.05, QHi: 0.4}
	robust, err := NewRobustConstrained(testB, iv)
	if err != nil {
		t.Fatal(err)
	}
	for _, mu := range []float64{1, 3.5, 6} {
		for _, q := range []float64{0.05, 0.2, 0.4} {
			s := Stats{MuBMinus: mu, QBPlus: q}
			if s.Validate(testB) != nil {
				continue
			}
			plain, err := NewConstrained(testB, s)
			if err != nil {
				t.Fatal(err)
			}
			if plain.WorstCaseCR() > robust.WorstCaseCR()+1e-9 {
				// The plain optimum can beat the robust bound only by
				// knowing the exact stats; the robust bound must cover
				// its own fixed policy, checked next.
				continue
			}
		}
	}
	// The bound covers the robust policy's own worst case at the
	// rectangle corners.
	for _, s := range []Stats{
		{MuBMinus: iv.MuLo, QBPlus: iv.QLo},
		{MuBMinus: iv.MuHi, QBPlus: iv.QHi},
	} {
		if s.Validate(testB) != nil {
			continue
		}
		var realized float64
		switch robust.Choice() {
		case ChoiceNRand:
			realized = math.E / (math.E - 1)
		case ChoiceTOI:
			realized = BaselineWorstCaseCR("TOI", testB, s)
		case ChoiceDET:
			realized = BaselineWorstCaseCR("DET", testB, s)
		default:
			realized = 0 // b-DET bound checked through its own formula
		}
		if realized > robust.WorstCaseCR()+1e-9 {
			t.Errorf("bound %v does not cover realized %v at %+v", robust.WorstCaseCR(), realized, s)
		}
	}
}

func TestRobustNeverWorseThanNRandBound(t *testing.T) {
	// N-Rand is always available, so the robust bound is at most
	// e/(e-1) no matter how wide the rectangle.
	iv := StatsInterval{MuLo: 0, MuHi: 28, QLo: 0, QHi: 1}
	robust, err := NewRobustConstrained(testB, iv)
	if err != nil {
		t.Fatal(err)
	}
	if robust.WorstCaseCR() > math.E/(math.E-1)+1e-9 {
		t.Errorf("bound %v exceeds e/(e-1)", robust.WorstCaseCR())
	}
	if robust.Choice() != ChoiceNRand {
		t.Errorf("maximal ambiguity should select N-Rand, got %v", robust.Choice())
	}
}

func TestRobustSmallSampleMoreConservative(t *testing.T) {
	// Ten stops from DET territory: the plain selector confidently
	// picks DET; the robust bound must be at least as large as the
	// plain bound (it guards a whole rectangle).
	stops := []float64{5, 8, 3, 12, 7, 4, 150, 6, 9, 5}
	plain, err := NewConstrainedFromStops(testB, stops)
	if err != nil {
		t.Fatal(err)
	}
	robust, err := NewRobustConstrainedFromStops(testB, stops, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if robust.WorstCaseCR() < plain.WorstCaseCR()-1e-9 {
		t.Errorf("robust bound %v below plain %v", robust.WorstCaseCR(), plain.WorstCaseCR())
	}
}

func TestRobustPolicyInterface(t *testing.T) {
	iv := StatsInterval{MuLo: 1, MuHi: 3, QLo: 0.02, QHi: 0.1}
	r, err := NewRobustConstrained(testB, iv)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "Robust" || r.B() != testB {
		t.Error("metadata wrong")
	}
	if r.Interval() != iv {
		t.Error("interval not retained")
	}
	rng := newRNG(2)
	x := r.Threshold(rng)
	if x < 0 || math.IsNaN(x) {
		t.Errorf("threshold %v", x)
	}
	if c := r.MeanCostForStop(10); c < 0 {
		t.Errorf("cost %v", c)
	}
}

func TestNewRobustConstrainedErrors(t *testing.T) {
	if _, err := NewRobustConstrained(testB, StatsInterval{MuLo: 27, MuHi: 28, QLo: 0.9, QHi: 1}); err == nil {
		t.Error("want error for infeasible rectangle")
	}
	if _, err := NewRobustConstrainedFromStops(testB, nil, 0.95); err == nil {
		t.Error("want error for empty stops")
	}
}

func TestNormalQuantileValues(t *testing.T) {
	if z := normalQuantile(0.975); math.Abs(z-1.96) > 0.001 {
		t.Errorf("z(0.975) = %v", z)
	}
	if z := normalQuantile(0.5); math.Abs(z) > 1e-9 {
		t.Errorf("z(0.5) = %v", z)
	}
}
