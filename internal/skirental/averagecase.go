package skirental

import (
	"fmt"
	"math"

	"idlereduce/internal/dist"
	"idlereduce/internal/numeric"
)

// This file implements the average-case baseline of Fujiwara & Iwama
// ("Average-case competitive analyses for ski-rental problems",
// Algorithmica 2005), which the paper cites as related work: when the
// stop-length distribution q(y) is fully known, the best deterministic
// threshold minimizes the expected online cost directly. The paper
// argues this is fragile because real stop distributions are neither
// exponential nor uniform; the baseline lets the experiments quantify
// that claim.
//
// Unlike the worst-case setting (Appendix A), restricting the threshold
// to [0, B] is NOT without loss here: for an exponential distribution
// with mean below B the memoryless property makes never-turning-off
// optimal (x* = +Inf).

// OptimalThreshold returns the deterministic threshold x* in [0, +Inf]
// minimizing E_y[cost_online(x, y)] under the known distribution d, and
// the minimum expected cost. A +Inf threshold means never turning off.
func OptimalThreshold(d dist.Distribution, b float64) (x, cost float64, err error) {
	if b <= 0 || math.IsNaN(b) {
		return 0, 0, fmt.Errorf("%w: B = %v", ErrBadStats, b)
	}
	if e, ok := d.(dist.Exponential); ok {
		return optimalThresholdExponential(e, b)
	}
	obj := func(x float64) float64 {
		return expectedCostThreshold(d, x, b)
	}
	// Scan finite thresholds up to (nearly) the distribution's support
	// end; the objective can be multimodal for mixtures.
	hi := d.Quantile(1 - 1e-9)
	if math.IsInf(hi, 1) || hi <= 0 {
		hi = 1000 * b
	}
	const n = 600
	xg, _ := numeric.GridMin(obj, 0, hi, n)
	lo := math.Max(0, xg-hi/n)
	up := math.Min(hi, xg+hi/n)
	x, gerr := numeric.GoldenMin(obj, lo, up, 1e-9*b)
	if gerr != nil {
		x = xg
	}
	best, bestC := x, obj(x)
	// Endpoints and the never-turn-off limit are frequent optima.
	if c := obj(0); c < bestC {
		best, bestC = 0, c
	}
	if m := d.Mean(); m < bestC {
		best, bestC = math.Inf(1), m
	}
	return best, bestC, nil
}

// expectedCostThreshold evaluates E_y[cost_online(x, y)] for a fixed
// finite threshold x under d:
//
//	E = ∫_0^x y q(y) dy + (x + B)·P(Y >= x)
func expectedCostThreshold(d dist.Distribution, x, b float64) float64 {
	if x <= 0 {
		return b // immediate shutdown: every stop pays exactly B
	}
	short := dist.MuBMinus(d, x) // ∫_0^x y q(y) dy (same integral, cutoff x)
	tail := 1 - d.CDF(x)
	return short + (x+b)*tail
}

// optimalThresholdExponential solves the exponential case in closed form.
// The derivative of the expected cost is e^{-λx}(1 - λB), whose sign is
// constant: for mean > B the cost increases in x (shut down immediately,
// cost B); for mean < B it decreases toward E[Y] (never shut down) — the
// memoryless property makes any intermediate threshold a pure loss.
func optimalThresholdExponential(e dist.Exponential, b float64) (x, cost float64, err error) {
	mean := 1 / e.Rate
	if mean >= b {
		return 0, b, nil
	}
	return math.Inf(1), mean, nil
}

// AverageCase is the known-distribution deterministic baseline built from
// OptimalThreshold.
type AverageCase struct {
	*Deterministic
	dist dist.Distribution
	cost float64
}

// NewAverageCase constructs the Fujiwara-Iwama baseline for a known
// stop-length distribution.
func NewAverageCase(d dist.Distribution, b float64) (*AverageCase, error) {
	x, cost, err := OptimalThreshold(d, b)
	if err != nil {
		return nil, err
	}
	return &AverageCase{
		Deterministic: NewFixedThreshold("AVG", b, x),
		dist:          d,
		cost:          cost,
	}, nil
}

// ExpectedCost returns the minimum expected online cost under the design
// distribution.
func (a *AverageCase) ExpectedCost() float64 { return a.cost }

// DesignDistribution returns the distribution the threshold was tuned
// for.
func (a *AverageCase) DesignDistribution() dist.Distribution { return a.dist }
