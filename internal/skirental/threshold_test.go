package skirental

import (
	"math"
	"math/rand/v2"
	"testing"
)

// TestWorstCaseDetCostMatchesVertices: the generalized threshold cost
// must reproduce the paper's closed forms at the vertex thresholds.
func TestWorstCaseDetCostMatchesVertices(t *testing.T) {
	cases := []struct{ b, mu, q float64 }{
		{28, 8, 0.13},
		{28, 4, 0.25},
		{28, 0, 0.5},
		{28, 10, 0.5},
		{28, 20, 0},
		{60, 12, 0.05},
		{10, 2, 0.3},
	}
	for _, c := range cases {
		vc := ComputeVertexCosts(c.b, Stats{MuBMinus: c.mu, QBPlus: c.q})
		if got := WorstCaseDetCost(c.b, c.mu, c.q, 0); math.Abs(got-vc.TOI) > 1e-12 {
			t.Errorf("(%v,%v,%v) x=0: got %v, TOI %v", c.b, c.mu, c.q, got, vc.TOI)
		}
		if got := WorstCaseDetCost(c.b, c.mu, c.q, c.b); math.Abs(got-vc.DET) > 1e-12 {
			t.Errorf("(%v,%v,%v) x=B: got %v, DET %v", c.b, c.mu, c.q, got, vc.DET)
		}
		// The b-DET closed form is only comparable when its optimal
		// threshold lands inside [0, B]: condition (36) does not bound
		// sqrt(mu*B/q) by B, and whenever it exceeds B the vertex costs
		// strictly more than DET, is never selected, and sits outside
		// the clamped domain WorstCaseDetCost models.
		if !math.IsInf(vc.BDet, 1) && vc.BDetThreshold <= c.b {
			got := WorstCaseDetCost(c.b, c.mu, c.q, vc.BDetThreshold)
			if math.Abs(got-vc.BDet) > 1e-9*vc.BDet {
				t.Errorf("(%v,%v,%v) x=b*: got %v, b-DET %v", c.b, c.mu, c.q, got, vc.BDet)
			}
		}
	}
}

// TestWorstCaseDetCostDominatesRealizations: for random feasible
// statistics and random thresholds, the bound must dominate the
// expected cost of every two-point distribution consistent with the
// statistics (short mass at s <= B plus long mass just above B).
func TestWorstCaseDetCostDominatesRealizations(t *testing.T) {
	rng := rand.New(rand.NewPCG(20140601, 9))
	const b = 28.0
	for trial := 0; trial < 2000; trial++ {
		q := rng.Float64()
		mu := rng.Float64() * b * (1 - q)
		x := rng.Float64() * b
		bound := WorstCaseDetCost(b, mu, q, x)
		if math.IsNaN(bound) || bound < b*q {
			t.Fatalf("degenerate bound %v for mu=%v q=%v x=%v", bound, mu, q, x)
		}
		// Two-point construction: short mass p at length s (p*s = mu,
		// p <= 1-q), long mass q just above B (cost x + b under the
		// threshold policy; the offline adversary realization).
		for i := 0; i < 8; i++ {
			s := rng.Float64() * b
			if s <= 0 {
				continue
			}
			p := mu / s
			if p > 1-q {
				continue // infeasible split
			}
			costShort := s
			if s > x {
				costShort = x + b
			}
			realized := p*costShort + q*(x+b)
			if realized > bound+1e-9 {
				t.Fatalf("realization %v exceeds bound %v (mu=%v q=%v x=%v s=%v)",
					realized, bound, mu, q, x, s)
			}
		}
	}
}

// TestWorstCaseDetCostMonotoneBeyondB: thresholds beyond B clamp to
// the DET cost (no distribution in Q exploits the gap).
func TestWorstCaseDetCostMonotoneBeyondB(t *testing.T) {
	want := WorstCaseDetCost(28, 8, 0.13, 28)
	for _, x := range []float64{28.0001, 40, 1000, math.Inf(1)} {
		if got := WorstCaseDetCost(28, 8, 0.13, x); got != want {
			t.Errorf("x=%v: got %v, want clamp to DET %v", x, got, want)
		}
	}
	if got := WorstCaseDetCost(28, 8, 0.13, -5); got != 28 {
		t.Errorf("negative threshold: got %v, want TOI cost 28", got)
	}
}

// TestWorstCaseMixedCostCollapsesToDet: with both thresholds equal the
// mixed adversary has no routing freedom, so the bound must reproduce
// WorstCaseDetCost at every interior threshold and at the clamps.
func TestWorstCaseMixedCostCollapsesToDet(t *testing.T) {
	rng := rand.New(rand.NewPCG(20140601, 17))
	const b = 28.0
	for trial := 0; trial < 2000; trial++ {
		q := rng.Float64()
		mu := rng.Float64() * b * (1 - q)
		x := rng.Float64() * b
		got := WorstCaseMixedCost(b, mu, q, x, x)
		want := WorstCaseDetCost(b, mu, q, x)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("mu=%v q=%v x=%v: mixed %v != det %v", mu, q, x, got, want)
		}
	}
	for _, x := range []float64{0, b, -3, b + 10} {
		got := WorstCaseMixedCost(b, 8, 0.13, x, x)
		want := WorstCaseDetCost(b, 8, 0.13, x)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("clamp x=%v: mixed %v != det %v", x, got, want)
		}
	}
}

// TestWorstCaseMixedCostDominatesAndMonotone: the mixed bound must
// dominate both single-threshold bounds (the adversary can always
// ignore one end), dominate routed two-point realizations, and grow
// monotonically as the pair spreads outward — the property the
// frontier's robustness column rests on.
func TestWorstCaseMixedCostDominatesAndMonotone(t *testing.T) {
	rng := rand.New(rand.NewPCG(20140601, 23))
	const b = 28.0
	for trial := 0; trial < 2000; trial++ {
		q := rng.Float64()
		mu := rng.Float64() * b * (1 - q)
		x0 := rng.Float64() * b
		xb := x0 + rng.Float64()*(b-x0)
		bound := WorstCaseMixedCost(b, mu, q, x0, xb)
		if d := WorstCaseDetCost(b, mu, q, x0); bound < d-1e-9 {
			t.Fatalf("mu=%v q=%v (%v,%v): mixed %v below det(x0) %v", mu, q, x0, xb, bound, d)
		}
		// Routed realization: short mass p at s routed to its costlier
		// threshold, long mass q routed to xb.
		for i := 0; i < 8; i++ {
			s := rng.Float64() * b
			if s <= 0 {
				continue
			}
			p := mu / s
			if p > 1-q {
				continue
			}
			costAt := func(x float64) float64 {
				if s <= x {
					return s
				}
				return x + b
			}
			realized := p*math.Max(costAt(x0), costAt(xb)) + q*(xb+b)
			if realized > bound+1e-9 {
				t.Fatalf("realization %v exceeds mixed bound %v (mu=%v q=%v x0=%v xb=%v s=%v)",
					realized, bound, mu, q, x0, xb, s)
			}
		}
		// Spreading the pair never shrinks the bound.
		wider := WorstCaseMixedCost(b, mu, q, x0*0.5, xb+(b-xb)*0.5)
		if wider < bound-1e-9 {
			t.Fatalf("mu=%v q=%v: wider pair bound %v below %v", mu, q, wider, bound)
		}
	}
}
