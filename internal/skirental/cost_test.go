package skirental

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"idlereduce/internal/dist"
)

const testB = 28.0

func TestOfflineCost(t *testing.T) {
	cases := []struct{ y, want float64 }{
		{0, 0}, {10, 10}, {27.999, 27.999}, {28, 28}, {29, 28}, {1000, 28},
	}
	for _, c := range cases {
		if got := OfflineCost(c.y, testB); got != c.want {
			t.Errorf("OfflineCost(%v) = %v want %v", c.y, got, c.want)
		}
	}
}

func TestOnlineCost(t *testing.T) {
	cases := []struct{ x, y, want float64 }{
		{10, 5, 5},    // drove off before threshold
		{10, 10, 38},  // restart exactly at threshold
		{10, 100, 38}, // long stop: idled 10, paid restart
		{0, 50, 28},   // TOI behaviour
		{28, 27, 27},  // DET on short stop: offline-optimal
		{28, 29, 56},  // DET on long stop: pays 2B
	}
	for _, c := range cases {
		if got := OnlineCost(c.x, c.y, testB); got != c.want {
			t.Errorf("OnlineCost(%v, %v) = %v want %v", c.x, c.y, got, c.want)
		}
	}
}

func TestCompetitiveRatioWorstCaseDET(t *testing.T) {
	// Classic result: threshold B has cr exactly 2 at y = B (eq. 6).
	if got := CompetitiveRatio(testB, testB, testB); got != 2 {
		t.Errorf("cr(B, B) = %v want 2", got)
	}
	// And never more than 2 anywhere.
	for _, y := range []float64{0.1, 1, 27, 28, 29, 100, 1e6} {
		if got := CompetitiveRatio(testB, y, testB); got > 2+1e-12 {
			t.Errorf("cr(B, %v) = %v > 2", y, got)
		}
	}
}

func TestCompetitiveRatioZeroStop(t *testing.T) {
	if got := CompetitiveRatio(0, 0, testB); !math.IsInf(got, 1) {
		t.Errorf("restart on zero stop should be Inf, got %v", got)
	}
	if got := CompetitiveRatio(math.Inf(1), 0, testB); got != 1 {
		t.Errorf("zero-cost pair should be 1, got %v", got)
	}
}

func TestOnlineCostDominatesOffline(t *testing.T) {
	// Property: online cost >= offline cost for every (x, y).
	prop := func(xu, yu uint16) bool {
		x := float64(xu) / 100
		y := float64(yu) / 100
		return OnlineCost(x, y, testB) >= OfflineCost(y, testB)-1e-12
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStatsValidate(t *testing.T) {
	good := []Stats{
		{0, 0}, {0, 1}, {28, 0}, {14, 0.5}, {5, 0.2},
	}
	for _, s := range good {
		if err := s.Validate(testB); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", s, err)
		}
	}
	bad := []Stats{
		{-1, 0}, {0, -0.1}, {0, 1.1}, {28, 0.5}, {15, 0.5}, // mu > B(1-q)
		{math.NaN(), 0}, {0, math.NaN()},
	}
	for _, s := range bad {
		if err := s.Validate(testB); !errors.Is(err, ErrBadStats) {
			t.Errorf("Validate(%+v) = %v, want ErrBadStats", s, err)
		}
	}
	if err := (Stats{1, 0.1}).Validate(0); !errors.Is(err, ErrBadStats) {
		t.Error("want ErrBadStats for B=0")
	}
}

func TestStatsOfflineCost(t *testing.T) {
	s := Stats{MuBMinus: 10, QBPlus: 0.25}
	if got := s.OfflineCost(testB); got != 10+0.25*28 {
		t.Errorf("offline cost %v", got)
	}
}

func TestStatsOfTwoPoint(t *testing.T) {
	d := dist.TwoPoint(5, 100, 0.3)
	s := StatsOf(d, testB)
	if math.Abs(s.MuBMinus-3.5) > 1e-9 || math.Abs(s.QBPlus-0.3) > 1e-9 {
		t.Errorf("stats %+v", s)
	}
}

func TestEstimateStats(t *testing.T) {
	stops := []float64{10, 20, 30, 100} // two short (<=28), two long
	s, err := EstimateStats(stops, testB)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.MuBMinus-7.5) > 1e-12 {
		t.Errorf("mu = %v want 7.5", s.MuBMinus)
	}
	if math.Abs(s.QBPlus-0.5) > 1e-12 {
		t.Errorf("q = %v want 0.5", s.QBPlus)
	}
}

func TestEstimateStatsBoundaryAtB(t *testing.T) {
	// A stop exactly at B counts as short (closed interval).
	s, err := EstimateStats([]float64{28}, testB)
	if err != nil {
		t.Fatal(err)
	}
	if s.MuBMinus != 28 || s.QBPlus != 0 {
		t.Errorf("stats %+v", s)
	}
}

func TestEstimateStatsErrors(t *testing.T) {
	if _, err := EstimateStats(nil, testB); !errors.Is(err, ErrBadStats) {
		t.Error("want ErrBadStats for empty")
	}
	if _, err := EstimateStats([]float64{-1}, testB); !errors.Is(err, ErrBadStats) {
		t.Error("want ErrBadStats for negative stop")
	}
	if _, err := EstimateStats([]float64{math.NaN()}, testB); !errors.Is(err, ErrBadStats) {
		t.Error("want ErrBadStats for NaN stop")
	}
}

func TestEstimateStatsAlwaysFeasible(t *testing.T) {
	// Property: estimates from any valid sample pass Validate.
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		stops := make([]float64, len(raw))
		for i, v := range raw {
			stops[i] = float64(v) / 100
		}
		s, err := EstimateStats(stops, testB)
		if err != nil {
			return false
		}
		return s.Validate(testB) == nil
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
