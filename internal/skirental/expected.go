package skirental

import (
	"math"
	"math/rand/v2"

	"idlereduce/internal/dist"
	"idlereduce/internal/numeric"
)

// ExpectedCost returns J(P, q) (eq. 15): the expected online cost of
// policy p against stop-length distribution d, using the policy's
// analytic per-stop mean cost. Mixtures are decomposed so atoms are
// handled exactly; continuous distributions are integrated to their
// 1-1e-9 quantile with the tail bounded analytically.
func ExpectedCost(p Policy, d dist.Distribution) float64 {
	switch dd := d.(type) {
	case dist.PointMass:
		return p.MeanCostForStop(dd.At)
	case *dist.Mixture:
		v := 0.0
		for _, c := range dd.Components() {
			v += c.W * ExpectedCost(p, c.D)
		}
		return v
	case *dist.Empirical:
		// An empirical distribution is an atom per observation.
		var sum numeric.KahanSum
		for _, y := range dd.Values() {
			sum.Add(p.MeanCostForStop(y))
		}
		return sum.Sum() / float64(dd.N())
	}
	b := p.B()
	// Split at B: above B every policy in this package has a constant
	// mean cost (thresholds never exceed B except NEV, handled below).
	q := dist.QBPlus(d, b)
	short, err := numeric.IntegrateSimpson(func(y float64) float64 {
		return p.MeanCostForStop(y) * d.PDF(y)
	}, 0, b, 1e-10)
	if err != nil {
		short = numeric.IntegrateN(func(y float64) float64 {
			return p.MeanCostForStop(y) * d.PDF(y)
		}, 0, b, 1<<14)
	}
	if det, ok := p.(*Deterministic); ok && det.X() > b {
		// Thresholds above B (NEV, ablation policies) have y-dependent
		// cost on the tail; integrate it explicitly.
		hi := d.Quantile(1 - 1e-9)
		if math.IsInf(hi, 1) {
			return math.Inf(1)
		}
		tail := numeric.IntegrateN(func(y float64) float64 {
			return p.MeanCostForStop(y) * d.PDF(y)
		}, b, hi, 1<<14)
		return short + tail
	}
	// Every remaining policy draws thresholds in [0, B], so the mean cost
	// is constant for y > B.
	return short + q*p.MeanCostForStop(b*2)
}

// ExpectedCR returns CR (eq. 5): ExpectedCost(p, d) divided by the
// expected offline cost mu_B- + q_B+·B of d.
func ExpectedCR(p Policy, d dist.Distribution) float64 {
	off := StatsOf(d, p.B()).OfflineCost(p.B())
	if off == 0 {
		return 1
	}
	return ExpectedCost(p, d) / off
}

// TraceCost evaluates a policy on a concrete stop sequence, drawing a
// fresh threshold per stop, and returns total online and offline cost.
// This is the Monte Carlo counterpart of ExpectedCost used by the
// simulator and tests.
func TraceCost(p Policy, stops []float64, rng *rand.Rand) (online, offline float64) {
	var on, off numeric.KahanSum
	b := p.B()
	for _, y := range stops {
		x := p.Threshold(rng)
		on.Add(OnlineCost(x, y, b))
		off.Add(OfflineCost(y, b))
	}
	return on.Sum(), off.Sum()
}

// TraceMeanCost evaluates a policy on a stop sequence using analytic
// per-stop expectations (no sampling noise) and returns total expected
// online and offline cost. Per-vehicle CRs in the Figure 4 experiment are
// ratios of these totals.
func TraceMeanCost(p Policy, stops []float64) (online, offline float64) {
	var on, off numeric.KahanSum
	b := p.B()
	for _, y := range stops {
		on.Add(p.MeanCostForStop(y))
		off.Add(OfflineCost(y, b))
	}
	return on.Sum(), off.Sum()
}

// TraceCR returns the expected competitive ratio of p on the stop
// sequence: TraceMeanCost online total over offline total. An empty or
// zero-cost trace reports 1.
func TraceCR(p Policy, stops []float64) float64 {
	on, off := TraceMeanCost(p, stops)
	if off == 0 {
		return 1
	}
	return on / off
}

// ExpectedCRPrime is the alternative competitive metric CR' of eq. 8:
// the expectation over stop lengths of the per-stop ratio
// E_x[cost_online(x, y)] / cost_offline(y), as opposed to CR (eq. 5)
// which is the ratio of expectations. MOM-Rand optimizes CR'; the paper
// optimizes CR. Distributions with mass arbitrarily close to zero make
// CR' unbounded for any policy with an atom at threshold 0 (TOI pays B
// against an offline cost of y -> 0), which is one reason the paper
// prefers CR.
func ExpectedCRPrime(p Policy, d dist.Distribution) float64 {
	ratio := func(y float64) float64 {
		off := OfflineCost(y, p.B())
		if off == 0 {
			return 1
		}
		return p.MeanCostForStop(y) / off
	}
	switch dd := d.(type) {
	case dist.PointMass:
		return ratio(dd.At)
	case *dist.Mixture:
		v := 0.0
		for _, c := range dd.Components() {
			v += c.W * ExpectedCRPrime(p, c.D)
		}
		return v
	case *dist.Empirical:
		var sum numeric.KahanSum
		for _, y := range dd.Values() {
			sum.Add(ratio(y))
		}
		return sum.Sum() / float64(dd.N())
	}
	b := p.B()
	hi := d.Quantile(1 - 1e-9)
	if math.IsInf(hi, 1) {
		hi = 1000 * b
	}
	v, err := numeric.IntegrateSimpson(func(y float64) float64 {
		return ratio(y) * d.PDF(y)
	}, 1e-12, math.Max(hi, b), 1e-9)
	if err != nil {
		v = numeric.IntegrateN(func(y float64) float64 {
			return ratio(y) * d.PDF(y)
		}, 1e-12, math.Max(hi, b), 1<<14)
	}
	return v
}
