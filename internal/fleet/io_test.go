package fleet

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func tinyFleet(t *testing.T) *Fleet {
	t.Helper()
	f, err := GenerateFleet(42, smallArea(California, 3), smallArea(Chicago, 2))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func fleetsEqual(a, b *Fleet) bool {
	if len(a.Vehicles) != len(b.Vehicles) {
		return false
	}
	for i := range a.Vehicles {
		va, vb := a.Vehicles[i], b.Vehicles[i]
		if va.ID != vb.ID || va.Area != vb.Area || len(va.Stops) != len(vb.Stops) {
			return false
		}
		if va.StopsPerDay != vb.StopsPerDay {
			return false
		}
		for j := range va.Stops {
			if va.Stops[j] != vb.Stops[j] {
				return false
			}
		}
	}
	return true
}

func TestCSVRoundTrip(t *testing.T) {
	f := tinyFleet(t)
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !fleetsEqual(f, got) {
		t.Error("CSV round trip lost data")
	}
}

func TestCSVHeaderValidation(t *testing.T) {
	_, err := ReadCSV(strings.NewReader("foo,bar,baz,qux,quux\n"))
	if !errors.Is(err, ErrBadTrace) {
		t.Errorf("want ErrBadTrace, got %v", err)
	}
	_, err = ReadCSV(strings.NewReader(""))
	if !errors.Is(err, ErrBadTrace) {
		t.Errorf("empty input: want ErrBadTrace, got %v", err)
	}
}

func TestCSVBadRows(t *testing.T) {
	head := "vehicle_id,area,day,stop_index,stop_seconds\n"
	cases := map[string]string{
		"bad day":      head + "v1,CA,nine,0,10\n",
		"day range":    head + "v1,CA,7,0,10\n",
		"bad seconds":  head + "v1,CA,0,0,abc\n",
		"neg seconds":  head + "v1,CA,0,0,-5\n",
		"wrong fields": head + "v1,CA,0\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); !errors.Is(err, ErrBadTrace) {
			t.Errorf("%s: want ErrBadTrace, got %v", name, err)
		}
	}
}

func TestCSVPreservesPrecision(t *testing.T) {
	f := &Fleet{Vehicles: []*Vehicle{{
		ID: "v1", Area: "X",
		Stops:       []float64{1.2345678901234567, 99.000000001},
		StopsPerDay: [7]int{2, 0, 0, 0, 0, 0, 0},
	}}}
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range f.Vehicles[0].Stops {
		if got.Vehicles[0].Stops[i] != want {
			t.Errorf("stop %d: %v != %v", i, got.Vehicles[0].Stops[i], want)
		}
	}
}

func TestJSONRoundTrip(t *testing.T) {
	f := tinyFleet(t)
	var buf bytes.Buffer
	if err := f.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !fleetsEqual(f, got) {
		t.Error("JSON round trip lost data")
	}
	if got.Seed != f.Seed {
		t.Errorf("seed %d != %d", got.Seed, f.Seed)
	}
}

func TestJSONBadInput(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{not json")); err == nil {
		t.Error("want error")
	}
}

func TestAreaConfigsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAreaConfigs(&buf, DefaultAreas()); err != nil {
		t.Fatal(err)
	}
	areas, err := ReadAreaConfigs(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(areas) != 3 || areas[1].Name != "Chicago" {
		t.Errorf("round trip lost data: %+v", areas)
	}
}

func TestReadAreaConfigsErrors(t *testing.T) {
	if _, err := ReadAreaConfigs(strings.NewReader("{not an array")); err == nil {
		t.Error("want decode error")
	}
	if _, err := ReadAreaConfigs(strings.NewReader("[]")); err == nil {
		t.Error("want empty error")
	}
	if _, err := ReadAreaConfigs(strings.NewReader(`[{"Name":"x","Vehicles":1}]`)); err == nil {
		t.Error("want validation error")
	}
}
