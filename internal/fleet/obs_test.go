package fleet

import (
	"context"
	"testing"

	"idlereduce/internal/obs"
)

func TestGenerateFleetContextPublishesThroughput(t *testing.T) {
	rec := obs.NewRecorder("gen", nil, nil)
	ctx := obs.WithRecorder(context.Background(), rec)
	small := California
	small.Vehicles = 5
	f, err := GenerateFleetContext(ctx, 1, small)
	if err != nil {
		t.Fatal(err)
	}
	reg := rec.Registry()
	if got := reg.Counter(obs.L("fleet_vehicles_total", "area", "California")).Value(); got != 5 {
		t.Errorf("vehicle counter %d want 5", got)
	}
	wantStops := int64(len(f.AllStops("")))
	if got := reg.Counter(obs.L("fleet_stops_total", "area", "California")).Value(); got != wantStops {
		t.Errorf("stop counter %d want %d", got, wantStops)
	}
	if got := reg.Gauge("fleet_gen_stops_per_sec").Value(); got <= 0 {
		t.Errorf("throughput gauge %v", got)
	}
	if reg.Histogram(obs.L("span_ms", "span", "fleet.generate")).Count() != 1 {
		t.Error("fleet.generate span not recorded")
	}

	// Instrumentation must not perturb generation: same seed, same fleet.
	plain, err := GenerateFleet(1, small)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Vehicles) != len(f.Vehicles) {
		t.Fatal("vehicle counts diverge")
	}
	for i := range plain.Vehicles {
		a, b := plain.Vehicles[i], f.Vehicles[i]
		if a.ID != b.ID || len(a.Stops) != len(b.Stops) {
			t.Fatalf("vehicle %d diverged", i)
		}
		for j := range a.Stops {
			if a.Stops[j] != b.Stops[j] {
				t.Fatalf("vehicle %d stop %d: %v != %v", i, j, a.Stops[j], b.Stops[j])
			}
		}
	}
}
