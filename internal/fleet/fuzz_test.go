package fleet

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the trace parser: it must never
// panic, and anything it accepts must survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	fl, err := GenerateFleet(1, smallArea(California, 2))
	if err != nil {
		f.Fatal(err)
	}
	if err := fl.WriteCSV(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("vehicle_id,area,day,stop_index,stop_seconds\n")
	f.Add("vehicle_id,area,day,stop_index,stop_seconds\nv1,X,0,0,12.5\n")
	f.Add("garbage")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		got, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.WriteCSV(&out); err != nil {
			t.Fatalf("accepted fleet failed to serialize: %v", err)
		}
		again, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !fleetsEqual(got, again) {
			t.Fatal("round trip not idempotent")
		}
	})
}
