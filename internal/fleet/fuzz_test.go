package fleet

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"
)

// FuzzReadCSV feeds arbitrary bytes to the trace parser: it must never
// panic, and anything it accepts must survive a write/read round trip.
func FuzzReadCSV(f *testing.F) {
	var seed bytes.Buffer
	fl, err := GenerateFleet(1, smallArea(California, 2))
	if err != nil {
		f.Fatal(err)
	}
	if err := fl.WriteCSV(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add("vehicle_id,area,day,stop_index,stop_seconds\n")
	f.Add("vehicle_id,area,day,stop_index,stop_seconds\nv1,X,0,0,12.5\n")
	f.Add("garbage")
	f.Add("")
	f.Fuzz(func(t *testing.T, in string) {
		got, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := got.WriteCSV(&out); err != nil {
			t.Fatalf("accepted fleet failed to serialize: %v", err)
		}
		again, err := ReadCSV(&out)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if !fleetsEqual(got, again) {
			t.Fatal("round trip not idempotent")
		}
	})
}

// FuzzAreaConfigGenerate drives the Validate/distribution-construction
// path with arbitrary parameters: a config must either fail Validate,
// fail generation with an error, or generate well-formed vehicles — it
// must never panic, hang, or emit NaN stop lengths.
func FuzzAreaConfigGenerate(f *testing.F) {
	for _, c := range DefaultAreas() {
		f.Add(c.StopsPerDayMean, c.StopsPerDayStd, c.ShortStopMeanSec, c.LongStopMeanSec,
			c.LongStopFrac, c.VehicleSpreadCV, c.LongFracSpreadCV, c.MaxStopSec, uint64(1))
	}
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, uint64(0))
	f.Add(math.NaN(), 1.0, 1.0, 2.0, 0.1, 0.1, 0.1, 100.0, uint64(2))
	f.Add(1.0, math.Inf(1), 1.0, 2.0, 0.1, 0.1, 0.1, 100.0, uint64(3))
	f.Add(5.0, 0.0, 1e307, 2e307, 0.5, 100.0, 100.0, 1e308, uint64(4))
	f.Add(12.0, 9.0, 11.0, 450.0, 0.99, 0.0, 0.0, 7200.0, uint64(5))
	f.Fuzz(func(t *testing.T, spMean, spStd, shortMean, longMean, longFrac, vcv, lcv, maxStop float64, seed uint64) {
		cfg := AreaConfig{
			Name:            "fuzz",
			Vehicles:        2,
			StopsPerDayMean: spMean, StopsPerDayStd: spStd,
			ShortStopMeanSec: shortMean, LongStopMeanSec: longMean,
			LongStopFrac:    longFrac,
			VehicleSpreadCV: vcv, LongFracSpreadCV: lcv,
			MaxStopSec: maxStop,
		}
		if err := cfg.Validate(); err != nil {
			return
		}
		// Keep degenerate-but-valid configs cheap: a huge stops/day mean
		// is legal, so bound it rather than reject it.
		if cfg.StopsPerDayMean > 1000 || cfg.StopsPerDayStd > 1000 {
			t.Skip("per-day moments too large for a fuzz iteration")
		}
		vs, err := cfg.GenerateContext(context.Background(), seed, 2)
		if err != nil {
			return // clean failure is acceptable for pathological params
		}
		if len(vs) != cfg.Vehicles {
			t.Fatalf("generated %d vehicles, want %d", len(vs), cfg.Vehicles)
		}
		for _, v := range vs {
			for _, y := range v.Stops {
				if math.IsNaN(y) || y < 1 || y > cfg.MaxStopSec {
					t.Fatalf("%s: stop %v outside [1, %v]", v.ID, y, cfg.MaxStopSec)
				}
			}
		}
	})
}
