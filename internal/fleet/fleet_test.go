package fleet

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"idlereduce/internal/dist"
	"idlereduce/internal/stats"
)

func testRNG() *rand.Rand { return rand.New(rand.NewPCG(1, 2)) }

// smallArea shrinks a config for fast unit tests.
func smallArea(base AreaConfig, n int) AreaConfig {
	base.Vehicles = n
	return base
}

func TestAreaConfigValidate(t *testing.T) {
	good := Chicago
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bads := []func(*AreaConfig){
		func(c *AreaConfig) { c.Name = "" },
		func(c *AreaConfig) { c.Vehicles = 0 },
		func(c *AreaConfig) { c.StopsPerDayMean = 0 },
		func(c *AreaConfig) { c.StopsPerDayStd = -1 },
		func(c *AreaConfig) { c.ShortStopMeanSec = 0 },
		func(c *AreaConfig) { c.LongStopMeanSec = c.ShortStopMeanSec },
		func(c *AreaConfig) { c.LongStopFrac = 1 },
		func(c *AreaConfig) { c.LongStopFrac = -0.1 },
		func(c *AreaConfig) { c.VehicleSpreadCV = -1 },
		func(c *AreaConfig) { c.LongFracSpreadCV = -1 },
		func(c *AreaConfig) { c.MaxStopSec = 10 },
	}
	for i, mut := range bads {
		c := Chicago
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: want error", i)
		}
	}
}

func TestGenerateBasicShape(t *testing.T) {
	cfg := smallArea(Chicago, 25)
	vs, err := cfg.Generate(testRNG())
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 25 {
		t.Fatalf("got %d vehicles", len(vs))
	}
	for _, v := range vs {
		if v.Area != "Chicago" {
			t.Errorf("area %q", v.Area)
		}
		if !strings.HasPrefix(v.ID, "chicago-") {
			t.Errorf("id %q", v.ID)
		}
		total := 0
		for _, n := range v.StopsPerDay {
			if n < 1 {
				t.Errorf("%s: day with %d stops", v.ID, n)
			}
			total += n
		}
		if total != len(v.Stops) {
			t.Errorf("%s: StopsPerDay sums to %d, len(Stops)=%d", v.ID, total, len(v.Stops))
		}
		for _, y := range v.Stops {
			if y < 1 || y > cfg.MaxStopSec {
				t.Errorf("%s: stop %v outside [1, %v]", v.ID, y, cfg.MaxStopSec)
			}
		}
		if v.TotalStops() != total {
			t.Errorf("TotalStops %d", v.TotalStops())
		}
		if math.Abs(v.MeanStopsPerDay()-float64(total)/7) > 1e-12 {
			t.Errorf("MeanStopsPerDay %v", v.MeanStopsPerDay())
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	c := Chicago
	c.Vehicles = -1
	if _, err := c.Generate(testRNG()); err == nil {
		t.Error("want error")
	}
}

func TestStopsPerDayMatchesTable1Moments(t *testing.T) {
	// With many vehicles the per-vehicle-day stop counts should land
	// near the Table 1 mean/std for the area.
	for _, cfg := range DefaultAreas() {
		c := smallArea(cfg, 400)
		vs, err := c.Generate(testRNG())
		if err != nil {
			t.Fatal(err)
		}
		var days []float64
		for _, v := range vs {
			for _, n := range v.StopsPerDay {
				days = append(days, float64(n))
			}
		}
		m := stats.Mean(days)
		sd := stats.Std(days)
		if math.Abs(m-c.StopsPerDayMean) > 0.12*c.StopsPerDayMean {
			t.Errorf("%s: mean stops/day %v, target %v", c.Name, m, c.StopsPerDayMean)
		}
		if math.Abs(sd-c.StopsPerDayStd) > 0.25*c.StopsPerDayStd {
			t.Errorf("%s: std stops/day %v, target %v", c.Name, sd, c.StopsPerDayStd)
		}
	}
}

func TestStopLengthsHeavyTailedRejectExponential(t *testing.T) {
	// The Figure 3 property: KS test rejects the exponential fit.
	cfg := smallArea(Chicago, 120)
	vs, err := cfg.Generate(testRNG())
	if err != nil {
		t.Fatal(err)
	}
	var all []float64
	for _, v := range vs {
		all = append(all, v.Stops...)
	}
	null := dist.NewExponentialMean(stats.Mean(all))
	res, err := stats.KSOneSample(all, null.CDF)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Rejects(0.01) {
		t.Errorf("exponential not rejected: D=%v p=%v", res.D, res.P)
	}
}

func TestAreaMeanStopOrdering(t *testing.T) {
	// Chicago must have distinctly longer stops than the other areas.
	means := map[string]float64{}
	for _, cfg := range DefaultAreas() {
		c := smallArea(cfg, 150)
		vs, err := c.Generate(testRNG())
		if err != nil {
			t.Fatal(err)
		}
		var all []float64
		for _, v := range vs {
			all = append(all, v.Stops...)
		}
		means[c.Name] = stats.Mean(all)
	}
	if !(means["Chicago"] > means["California"] && means["Chicago"] > means["Atlanta"]) {
		t.Errorf("mean ordering wrong: %v", means)
	}
}

func TestGenerateFleetDeterministic(t *testing.T) {
	small := []AreaConfig{smallArea(California, 5), smallArea(Chicago, 5)}
	f1, err := GenerateFleet(99, small...)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := GenerateFleet(99, small...)
	if err != nil {
		t.Fatal(err)
	}
	if len(f1.Vehicles) != len(f2.Vehicles) {
		t.Fatal("vehicle count differs")
	}
	for i := range f1.Vehicles {
		a, b := f1.Vehicles[i], f2.Vehicles[i]
		if a.ID != b.ID || len(a.Stops) != len(b.Stops) {
			t.Fatalf("vehicle %d differs", i)
		}
		for j := range a.Stops {
			if a.Stops[j] != b.Stops[j] {
				t.Fatalf("vehicle %d stop %d differs", i, j)
			}
		}
	}
	f3, _ := GenerateFleet(100, small...)
	if f3.Vehicles[0].Stops[0] == f1.Vehicles[0].Stops[0] {
		t.Error("different seeds should give different fleets")
	}
}

func TestGenerateFleetDefaultsToPaperCounts(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet in -short mode")
	}
	f, err := GenerateFleet(7)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.Vehicles); got != 217+312+653 {
		t.Errorf("fleet size %d, want 1182", got)
	}
	if got := len(f.ByArea("Chicago")); got != 312 {
		t.Errorf("Chicago %d", got)
	}
	areas := f.Areas()
	if len(areas) != 3 || areas[0] != "California" || areas[1] != "Chicago" || areas[2] != "Atlanta" {
		t.Errorf("areas %v", areas)
	}
}

func TestFleetAccessors(t *testing.T) {
	f, err := GenerateFleet(3, smallArea(California, 4), smallArea(Atlanta, 3))
	if err != nil {
		t.Fatal(err)
	}
	if n := len(f.AllStops("")); n == 0 {
		t.Error("AllStops empty")
	}
	ca := f.AllStops("California")
	at := f.AllStops("Atlanta")
	if len(ca)+len(at) != len(f.AllStops("")) {
		t.Error("area partition broken")
	}
	spd := f.StopsPerVehicleDay("California")
	if len(spd) != 4 {
		t.Errorf("stops/day entries %d", len(spd))
	}
}

func TestStopLengthDistributionMean(t *testing.T) {
	// The area-level distribution's mean should match the two-component
	// mixture formula within truncation losses.
	for _, cfg := range DefaultAreas() {
		d := cfg.StopLengthDistribution()
		m := d.Mean()
		want := (1-cfg.LongStopFrac)*cfg.ShortStopMeanSec + cfg.LongStopFrac*cfg.LongStopMeanSec
		if math.Abs(m-want) > 0.12*want {
			t.Errorf("%s: distribution mean %v, mixture formula %v", cfg.Name, m, want)
		}
	}
}

func TestStopLengthQBPlusNearLongFrac(t *testing.T) {
	// With long stops far above B = 28, q_B+ of the area distribution
	// should track LongStopFrac plus the short component's small
	// spill-over.
	for _, cfg := range DefaultAreas() {
		d := cfg.StopLengthDistribution()
		q := 1 - d.CDF(28)
		if q < cfg.LongStopFrac*0.8 || q > cfg.LongStopFrac+0.12 {
			t.Errorf("%s: q_B+ %v vs LongStopFrac %v", cfg.Name, q, cfg.LongStopFrac)
		}
	}
}
