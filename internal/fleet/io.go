package fleet

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
)

// csvHeader is the column layout of the CSV trace format: one row per
// stop.
var csvHeader = []string{"vehicle_id", "area", "day", "stop_index", "stop_seconds"}

// WriteCSV serializes the fleet as one row per stop.
func (f *Fleet) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("fleet: write header: %w", err)
	}
	for _, v := range f.Vehicles {
		idx := 0
		for day := 0; day < 7; day++ {
			for s := 0; s < v.StopsPerDay[day]; s++ {
				rec := []string{
					v.ID,
					v.Area,
					strconv.Itoa(day),
					strconv.Itoa(s),
					strconv.FormatFloat(v.Stops[idx], 'g', -1, 64),
				}
				if err := cw.Write(rec); err != nil {
					return fmt.Errorf("fleet: write row: %w", err)
				}
				idx++
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ErrBadTrace is returned when a CSV trace is malformed.
var ErrBadTrace = errors.New("fleet: malformed trace")

// ReadCSV parses a fleet from the CSV trace format. Vehicles appear in
// first-seen order; rows of one vehicle must be contiguous and day-ordered
// (as WriteCSV produces).
func ReadCSV(r io.Reader) (*Fleet, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	head, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrBadTrace, err)
	}
	for i, want := range csvHeader {
		if head[i] != want {
			return nil, fmt.Errorf("%w: header column %d is %q, want %q", ErrBadTrace, i, head[i], want)
		}
	}
	f := &Fleet{}
	var cur *Vehicle
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadTrace, err)
		}
		day, err := strconv.Atoi(rec[2])
		if err != nil || day < 0 || day > 6 {
			return nil, fmt.Errorf("%w: day %q", ErrBadTrace, rec[2])
		}
		secs, err := strconv.ParseFloat(rec[4], 64)
		if err != nil || secs < 0 {
			return nil, fmt.Errorf("%w: stop_seconds %q", ErrBadTrace, rec[4])
		}
		if cur == nil || cur.ID != rec[0] {
			cur = &Vehicle{ID: rec[0], Area: rec[1]}
			f.Vehicles = append(f.Vehicles, cur)
		}
		cur.Stops = append(cur.Stops, secs)
		cur.StopsPerDay[day]++
	}
	return f, nil
}

// WriteJSON serializes the fleet as indented JSON.
func (f *Fleet) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// ReadJSON parses a fleet from JSON.
func ReadJSON(r io.Reader) (*Fleet, error) {
	var f Fleet
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("fleet: decode json: %w", err)
	}
	return &f, nil
}

// ReadAreaConfigs parses a JSON array of AreaConfig, letting users define
// their own areas for fleetgen instead of the built-in three. Every
// config is validated.
func ReadAreaConfigs(r io.Reader) ([]AreaConfig, error) {
	var areas []AreaConfig
	if err := json.NewDecoder(r).Decode(&areas); err != nil {
		return nil, fmt.Errorf("fleet: decode area configs: %w", err)
	}
	if len(areas) == 0 {
		return nil, errors.New("fleet: no area configs")
	}
	for i, a := range areas {
		if err := a.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: area %d: %w", i, err)
		}
	}
	return areas, nil
}

// WriteAreaConfigs serializes area configs as indented JSON (the template
// users edit).
func WriteAreaConfigs(w io.Writer, areas []AreaConfig) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(areas)
}
