// Package fleet generates the synthetic driving dataset that stands in
// for the proprietary NREL traces of Section 5 (217 California, 312
// Chicago and 653 Atlanta vehicles, one week of driving each).
//
// The generator reproduces the published characteristics the experiments
// depend on rather than any individual trace:
//
//   - Stops per vehicle-day match the Table 1 statistics (mean, std) of
//     each area.
//   - Stop lengths follow a heavy-tailed mixture (lognormal body + Pareto
//     tail) whose Kolmogorov–Smirnov test rejects an exponential fit, as
//     the paper reports for Figure 3.
//   - Areas differ in mean stop length (Chicago worst), and vehicles
//     within an area differ by a persistent traffic factor, so per-vehicle
//     competitive ratios spread the way Figure 4 needs.
//
// Everything is deterministic given a seed.
package fleet

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"math/rand/v2"
	"time"

	"idlereduce/internal/dist"
	"idlereduce/internal/obs"
	"idlereduce/internal/parallel"
)

// Vehicle is one synthetic vehicle's week of driving.
type Vehicle struct {
	// ID is unique within a fleet, e.g. "chicago-0042".
	ID string
	// Area is the area name the vehicle was generated for.
	Area string
	// Stops holds every stop length (seconds) over the week, in order.
	Stops []float64
	// StopsPerDay records how many of Stops fall on each of the 7 days.
	StopsPerDay [7]int
}

// TotalStops returns len(Stops).
func (v *Vehicle) TotalStops() int { return len(v.Stops) }

// MeanStopsPerDay returns the vehicle's average daily stop count.
func (v *Vehicle) MeanStopsPerDay() float64 {
	return float64(len(v.Stops)) / 7
}

// AreaConfig parameterizes one area's generator.
type AreaConfig struct {
	// Name labels the area.
	Name string
	// Vehicles is the number of vehicles to generate.
	Vehicles int
	// StopsPerDayMean and StopsPerDayStd target the Table 1 statistics.
	StopsPerDayMean float64
	StopsPerDayStd  float64
	// ShortStopMeanSec is the mean of the short-stop component
	// (stop-and-go queues, stop signs; most stops).
	ShortStopMeanSec float64
	// LongStopMeanSec is the mean of the long-stop component (signal
	// reds, pickups, parking with the engine running). Its heavy right
	// half is what defeats never-turn-off drivers.
	LongStopMeanSec float64
	// LongStopFrac is the probability a stop comes from the long
	// component. It approximately equals q_B+ for break-even intervals
	// well below LongStopMeanSec.
	LongStopFrac float64
	// VehicleSpreadCV is the coefficient of variation of the persistent
	// per-vehicle traffic factor multiplying both component means.
	VehicleSpreadCV float64
	// LongFracSpreadCV is the per-vehicle jitter on LongStopFrac.
	LongFracSpreadCV float64
	// MaxStopSec truncates stop lengths (keeps NEV costs finite, like a
	// real trace's bounded recording window).
	MaxStopSec float64
}

// Validate checks the configuration.
func (c AreaConfig) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"stops/day mean", c.StopsPerDayMean},
		{"stops/day std", c.StopsPerDayStd},
		{"short stop mean", c.ShortStopMeanSec},
		{"long stop mean", c.LongStopMeanSec},
		{"long stop fraction", c.LongStopFrac},
		{"vehicle spread cv", c.VehicleSpreadCV},
		{"long frac spread cv", c.LongFracSpreadCV},
		{"max stop", c.MaxStopSec},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("fleet %s: %s = %v is not finite", c.Name, f.name, f.v)
		}
	}
	switch {
	case c.Name == "":
		return fmt.Errorf("fleet: area name empty")
	case c.Vehicles <= 0:
		return fmt.Errorf("fleet %s: vehicles = %d", c.Name, c.Vehicles)
	case c.StopsPerDayMean <= 0 || c.StopsPerDayStd < 0:
		return fmt.Errorf("fleet %s: stops/day mean %v std %v", c.Name, c.StopsPerDayMean, c.StopsPerDayStd)
	case c.ShortStopMeanSec <= 0:
		return fmt.Errorf("fleet %s: short stop mean %v", c.Name, c.ShortStopMeanSec)
	case c.LongStopMeanSec <= c.ShortStopMeanSec:
		return fmt.Errorf("fleet %s: long stop mean %v must exceed short %v", c.Name, c.LongStopMeanSec, c.ShortStopMeanSec)
	case c.LongStopFrac < 0 || c.LongStopFrac >= 1:
		return fmt.Errorf("fleet %s: long stop fraction %v", c.Name, c.LongStopFrac)
	case c.VehicleSpreadCV < 0 || c.LongFracSpreadCV < 0:
		return fmt.Errorf("fleet %s: spread cv %v / %v", c.Name, c.VehicleSpreadCV, c.LongFracSpreadCV)
	case c.MaxStopSec <= c.LongStopMeanSec:
		return fmt.Errorf("fleet %s: max stop %v must exceed long mean %v", c.Name, c.MaxStopSec, c.LongStopMeanSec)
	}
	return nil
}

// Default area configurations. Vehicle counts are the paper's (Section 5);
// stops-per-day statistics are Table 1; the stop-length components are
// calibrated so that (mu_B-, q_B+) at B = 28 land in the DET region with
// Chicago distinctly worse, reproducing the ordering and rough levels of
// the published mean CRs (1.11 / 1.32 / 1.10 at B = 28).
var (
	// California is the 217-vehicle California area.
	California = AreaConfig{
		Name: "California", Vehicles: 217,
		StopsPerDayMean: 9.37, StopsPerDayStd: 7.68,
		ShortStopMeanSec: 14, LongStopMeanSec: 420, LongStopFrac: 0.05,
		VehicleSpreadCV: 0.30, LongFracSpreadCV: 0.35,
		MaxStopSec: 7200,
	}
	// Chicago is the 312-vehicle Chicago area (heaviest traffic).
	Chicago = AreaConfig{
		Name: "Chicago", Vehicles: 312,
		StopsPerDayMean: 12.49, StopsPerDayStd: 9.97,
		ShortStopMeanSec: 11, LongStopMeanSec: 450, LongStopFrac: 0.13,
		VehicleSpreadCV: 0.35, LongFracSpreadCV: 0.35,
		MaxStopSec: 7200,
	}
	// Atlanta is the 653-vehicle Atlanta area.
	Atlanta = AreaConfig{
		Name: "Atlanta", Vehicles: 653,
		StopsPerDayMean: 10.37, StopsPerDayStd: 8.42,
		ShortStopMeanSec: 14, LongStopMeanSec: 400, LongStopFrac: 0.045,
		VehicleSpreadCV: 0.30, LongFracSpreadCV: 0.35,
		MaxStopSec: 7200,
	}
)

// DefaultAreas returns the three paper areas in publication order.
func DefaultAreas() []AreaConfig {
	return []AreaConfig{California, Chicago, Atlanta}
}

// StopLengthDistribution returns the area-level stop-length distribution
// (the per-vehicle distribution is this with the vehicle's persistent
// factors applied). Exported so the traffic sweeps of Figures 5-6 can
// reuse the Chicago shape.
func (c AreaConfig) StopLengthDistribution() dist.Distribution {
	return stopMixture(c.ShortStopMeanSec, c.LongStopMeanSec, c.LongStopFrac, c.MaxStopSec)
}

// Coefficients of variation of the two stop components: short stops are
// tightly clustered queue waits; long stops span signal reds to
// multi-minute parking, giving the heavy tail of Figure 3.
const (
	shortStopCV = 0.62
	longStopCV  = 1.15
)

// stopMixture builds the truncated two-component stop-length model.
func stopMixture(shortMean, longMean, longFrac, maxSec float64) dist.Distribution {
	m := dist.NewMixture(
		dist.Component{W: 1 - longFrac, D: dist.NewLogNormalMeanCV(shortMean, shortStopCV)},
		dist.Component{W: longFrac, D: dist.NewLogNormalMeanCV(longMean, longStopCV)},
	)
	return dist.NewTruncated(m, maxSec)
}

// safeStopMixture is stopMixture with the dist constructors' panics on
// pathological parameters (means overflowing to +Inf, truncation
// removing all mass) converted to errors, so a malformed-but-validating
// config fails cleanly instead of crashing a worker.
func safeStopMixture(shortMean, longMean, longFrac, maxSec float64) (d dist.Distribution, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("fleet: stop mixture (short %v, long %v, frac %v, max %v): %v",
				shortMean, longMean, longFrac, maxSec, r)
		}
	}()
	return stopMixture(shortMean, longMean, longFrac, maxSec), nil
}

// perDayDist builds the stops-per-day generator matched to the Table 1
// moments. A zero std is a legal config and means every day draws the
// same count.
func (c AreaConfig) perDayDist() dist.Distribution {
	if c.StopsPerDayStd == 0 {
		return dist.PointMass{At: c.StopsPerDayMean}
	}
	return dist.NewLogNormalMeanCV(c.StopsPerDayMean, c.StopsPerDayStd/c.StopsPerDayMean)
}

// maxStopsPerVehicleDay caps one vehicle-day's stop count. Real traces
// sit near Table 1's mu + 2 sigma ≈ 32; the cap only matters for
// pathological configs whose per-day distribution degenerates, keeping
// generation time and memory bounded.
const maxStopsPerVehicleDay = 10000

// generateVehicle builds vehicle i of the area from its own RNG stream.
// The draw order (traffic factor, long-stop fraction jitter, then per-day
// counts and stops) is fixed, so the vehicle depends only on the stream.
func (c AreaConfig) generateVehicle(i int, perDay dist.Distribution, rng *rand.Rand) (*Vehicle, error) {
	v := &Vehicle{
		ID:   fmt.Sprintf("%s-%04d", lower(c.Name), i),
		Area: c.Name,
	}
	// Persistent traffic factors: some vehicles live in worse traffic
	// all week (longer stops, more of them long).
	factor := 1.0
	if c.VehicleSpreadCV > 0 {
		factor = dist.NewLogNormalMeanCV(1, c.VehicleSpreadCV).Sample(rng)
	}
	longFrac := c.LongStopFrac
	if c.LongFracSpreadCV > 0 {
		longFrac *= dist.NewLogNormalMeanCV(1, c.LongFracSpreadCV).Sample(rng)
	}
	longFrac = math.Min(math.Max(longFrac, 0.02), 0.7)
	stopDist, err := safeStopMixture(c.ShortStopMeanSec*factor, c.LongStopMeanSec*factor, longFrac, c.MaxStopSec)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", v.ID, err)
	}
	for day := 0; day < 7; day++ {
		n := int(math.Round(perDay.Sample(rng)))
		if n < 1 {
			n = 1
		}
		if n > maxStopsPerVehicleDay {
			n = maxStopsPerVehicleDay
		}
		v.StopsPerDay[day] = n
		for s := 0; s < n; s++ {
			y := stopDist.Sample(rng)
			// Stop lengths below one second are not recorded by the
			// instrumentation; clamp like the source data.
			if y < 1 {
				y = 1
			}
			v.Stops = append(v.Stops, y)
		}
	}
	return v, nil
}

// Generate produces the area's vehicles using rng. It draws a root seed
// from rng and delegates to GenerateContext, so each vehicle gets its
// own derived stream.
func (c AreaConfig) Generate(rng *rand.Rand) ([]*Vehicle, error) {
	return c.GenerateContext(context.Background(), rng.Uint64(), 0)
}

// GenerateContext produces the area's vehicles on the parallel engine.
// Vehicle i draws from its own deterministic stream
// parallel.RNG(rootSeed, i), so the result is byte-identical for every
// worker count (workers <= 0 means the engine default) and generation
// honors ctx cancellation between vehicles.
func (c AreaConfig) GenerateContext(ctx context.Context, rootSeed uint64, workers int) ([]*Vehicle, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	perDay := c.perDayDist()
	return parallel.Map(ctx, "fleet.generate", c.Vehicles, workers,
		func(ctx context.Context, i int) (*Vehicle, error) {
			return c.generateVehicle(i, perDay, parallel.RNG(rootSeed, uint64(i)))
		})
}

// Fleet is a generated dataset across areas.
type Fleet struct {
	Vehicles []*Vehicle
	// Seed reproduces the fleet via GenerateFleet.
	Seed uint64
}

// GenerateFleet generates all configured areas with deterministic
// per-vehicle streams derived from seed.
func GenerateFleet(seed uint64, areas ...AreaConfig) (*Fleet, error) {
	return GenerateFleetContext(context.Background(), seed, areas...)
}

// GenerateFleetContext is GenerateFleet with context cancellation and an
// observability sink: when ctx carries an obs.Recorder, per-area vehicle
// and stop counters and the overall generation throughput (stops/s) are
// published, plus a fleet.generate span. No-op without a recorder.
// Generation runs on the engine's default worker count.
func GenerateFleetContext(ctx context.Context, seed uint64, areas ...AreaConfig) (*Fleet, error) {
	return GenerateFleetWorkers(ctx, seed, 0, areas...)
}

// GenerateFleetWorkers is GenerateFleetContext with an explicit worker
// count (workers <= 0 means the engine default). The fleet depends only
// on (seed, areas): area i's vehicles draw from streams rooted at
// parallel.DeriveSeed(seed, i), so any worker count yields byte-identical
// output.
func GenerateFleetWorkers(ctx context.Context, seed uint64, workers int, areas ...AreaConfig) (*Fleet, error) {
	if len(areas) == 0 {
		areas = DefaultAreas()
	}
	rec := obs.FromContext(ctx)
	var t0 time.Time
	if rec.On() {
		defer rec.StartSpan("fleet.generate",
			slog.Int("areas", len(areas)),
			slog.Int("workers", parallel.Workers(workers)))()
		t0 = time.Now()
	}
	f := &Fleet{Seed: seed}
	totalStops := 0
	for i, a := range areas {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		vs, err := a.GenerateContext(ctx, parallel.DeriveSeed(seed, uint64(i)), workers)
		if err != nil {
			return nil, err
		}
		f.Vehicles = append(f.Vehicles, vs...)
		if rec.On() {
			areaStops := 0
			for _, v := range vs {
				areaStops += len(v.Stops)
			}
			totalStops += areaStops
			rec.Add(obs.L("fleet_vehicles_total", "area", a.Name), int64(len(vs)))
			rec.Add(obs.L("fleet_stops_total", "area", a.Name), int64(areaStops))
		}
	}
	if rec.On() {
		if dt := time.Since(t0).Seconds(); dt > 0 {
			rec.Set("fleet_gen_stops_per_sec", float64(totalStops)/dt)
		}
	}
	return f, nil
}

// ByArea returns the vehicles of one area (shared, not copied).
func (f *Fleet) ByArea(name string) []*Vehicle {
	var out []*Vehicle
	for _, v := range f.Vehicles {
		if v.Area == name {
			out = append(out, v)
		}
	}
	return out
}

// Areas returns the distinct area names in first-seen order.
func (f *Fleet) Areas() []string {
	seen := map[string]bool{}
	var out []string
	for _, v := range f.Vehicles {
		if !seen[v.Area] {
			seen[v.Area] = true
			out = append(out, v.Area)
		}
	}
	return out
}

// AllStops concatenates every stop length in the fleet (or one area when
// area != "").
func (f *Fleet) AllStops(area string) []float64 {
	var out []float64
	for _, v := range f.Vehicles {
		if area == "" || v.Area == area {
			out = append(out, v.Stops...)
		}
	}
	return out
}

// StopsPerVehicleDay returns one value per vehicle: its mean stops/day.
func (f *Fleet) StopsPerVehicleDay(area string) []float64 {
	var out []float64
	for _, v := range f.Vehicles {
		if area == "" || v.Area == area {
			out = append(out, v.MeanStopsPerDay())
		}
	}
	return out
}

// DailyStopCounts returns one value per vehicle-day: that day's stop
// count. This is the sample Table 1 summarizes (its mu + 2 sigma = 32.43
// bound is computed on daily counts).
func (f *Fleet) DailyStopCounts(area string) []float64 {
	var out []float64
	for _, v := range f.Vehicles {
		if area == "" || v.Area == area {
			for _, n := range v.StopsPerDay {
				out = append(out, float64(n))
			}
		}
	}
	return out
}

func lower(s string) string {
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
