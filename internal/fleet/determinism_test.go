package fleet

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"testing"
	"time"
)

// fleetHash serializes a fleet to CSV and hashes the bytes, so two
// fleets compare byte-for-byte, not just structurally.
func fleetHash(t *testing.T, f *Fleet) string {
	t.Helper()
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:])
}

// TestGenerateFleetWorkersDeterministic is the headline determinism
// guarantee: for each seed, workers = 1, 4 and 8 produce byte-identical
// fleets, and different seeds produce different fleets.
func TestGenerateFleetWorkersDeterministic(t *testing.T) {
	areas := []AreaConfig{smallArea(California, 12), smallArea(Chicago, 12), smallArea(Atlanta, 12)}
	perSeed := map[uint64]string{}
	for _, seed := range []uint64{1, 20140601, 987654321} {
		var base string
		for _, workers := range []int{1, 4, 8} {
			f, err := GenerateFleetWorkers(context.Background(), seed, workers, areas...)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			h := fleetHash(t, f)
			if workers == 1 {
				base = h
				continue
			}
			if h != base {
				t.Errorf("seed %d: workers %d fleet differs from workers 1 (hash %s vs %s)", seed, workers, h, base)
			}
		}
		perSeed[seed] = base
	}
	seen := map[string]uint64{}
	for seed, h := range perSeed {
		if prev, dup := seen[h]; dup {
			t.Errorf("seeds %d and %d generated identical fleets", prev, seed)
		}
		seen[h] = seed
	}
}

// TestGenerateMatchesGenerateContext: the rng-based compatibility entry
// point must produce exactly the per-stream fleet of its drawn root.
func TestGenerateMatchesGenerateContext(t *testing.T) {
	cfg := smallArea(Chicago, 8)
	vs1, err := cfg.Generate(testRNG())
	if err != nil {
		t.Fatal(err)
	}
	root := testRNG().Uint64() // same first draw as Generate consumed
	vs2, err := cfg.GenerateContext(context.Background(), root, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs1) != len(vs2) {
		t.Fatalf("lengths %d vs %d", len(vs1), len(vs2))
	}
	for i := range vs1 {
		if vs1[i].ID != vs2[i].ID || len(vs1[i].Stops) != len(vs2[i].Stops) {
			t.Fatalf("vehicle %d differs", i)
		}
		for j := range vs1[i].Stops {
			if vs1[i].Stops[j] != vs2[i].Stops[j] {
				t.Fatalf("vehicle %d stop %d: %v vs %v", i, j, vs1[i].Stops[j], vs2[i].Stops[j])
			}
		}
	}
}

// TestGenerateContextCancellation: a cancelled context must abort
// generation promptly instead of finishing the remaining vehicles.
func TestGenerateContextCancellation(t *testing.T) {
	cfg := smallArea(Chicago, 200_000) // minutes of work if not cancelled
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := cfg.GenerateContext(ctx, 1, 4)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 10*time.Second {
			t.Errorf("cancellation took %v", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("generation did not return after cancel")
	}
}

// TestGenerateFleetContextPreCancelled: cancellation is honored before
// any area is generated.
func TestGenerateFleetContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := GenerateFleetContext(ctx, 1, smallArea(California, 2))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestGenerateZeroStdStopsPerDay: a zero std is a legal config (every
// day draws the same count) and must not panic.
func TestGenerateZeroStdStopsPerDay(t *testing.T) {
	cfg := smallArea(California, 3)
	cfg.StopsPerDayStd = 0
	vs, err := cfg.GenerateContext(context.Background(), 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := int(cfg.StopsPerDayMean + 0.5)
	for _, v := range vs {
		for day, n := range v.StopsPerDay {
			if n != want {
				t.Fatalf("%s day %d: %d stops, want %d", v.ID, day, n, want)
			}
		}
	}
}
