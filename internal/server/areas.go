package server

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"idlereduce/internal/fleet"
	"idlereduce/internal/skirental"
)

// DefaultAreaStates derives the serving configuration of the three
// paper areas (California, Chicago, Atlanta) by measuring the
// constrained statistics of each area's stop-length distribution at
// break-even interval b. This is what idled serves when no -areas
// config file is given.
func DefaultAreaStates(b float64) ([]AreaState, error) {
	areas := fleet.DefaultAreas()
	out := make([]AreaState, 0, len(areas))
	for _, a := range areas {
		s := skirental.StatsOf(a.StopLengthDistribution(), b)
		state := AreaState{ID: strings.ToLower(a.Name), B: b, Mu: s.MuBMinus, Q: s.QBPlus}
		if err := state.Validate(); err != nil {
			return nil, err
		}
		out = append(out, state)
	}
	return out, nil
}

// SyntheticAreaStates fabricates n deterministic areas at break-even
// interval b for scale testing (the 100k-area loadtest). IDs are
// "syn-000000"... and the (mu, q) pairs cycle through feasible
// combinations, so strategy derivation exercises every vertex choice
// without any randomness. The same (n, b) always yields the same set.
func SyntheticAreaStates(n int, b float64) []AreaState {
	out := make([]AreaState, n)
	for i := range out {
		// q in [0.02, 0.42), mu in a band safely inside [0, B(1-q)].
		q := 0.02 + 0.05*float64(i%8)
		mu := b * (1 - q) * (0.15 + 0.07*float64(i%11))
		out[i] = AreaState{ID: fmt.Sprintf("syn-%06d", i), B: b, Mu: mu, Q: q}
	}
	return out
}

// ReadAreaStates parses an -areas config file: a JSON array of
// {"id", "b", "mu", "q"} objects. Every entry is validated; unknown
// fields are rejected so config typos fail loudly at boot.
func ReadAreaStates(r io.Reader) ([]AreaState, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var areas []AreaState
	if err := dec.Decode(&areas); err != nil {
		return nil, fmt.Errorf("server: decode areas config: %w", err)
	}
	if len(areas) == 0 {
		return nil, fmt.Errorf("server: areas config is empty")
	}
	for _, a := range areas {
		if err := a.Validate(); err != nil {
			return nil, err
		}
	}
	return areas, nil
}

// WriteAreaStates writes the states as an editable JSON config
// (the idled -areas-template output).
func WriteAreaStates(w io.Writer, areas []AreaState) error {
	data, err := json.MarshalIndent(areas, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
