package server

import (
	"bytes"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
)

// Fuzz targets for the state plane added with the observe/snapshot
// surface. Both run in CI's fuzz-smoke job: the first throws arbitrary
// observation requests at the streaming handler, the second throws
// arbitrary (and mutated-valid) snapshot bytes at the fail-closed
// decoder and the live restore endpoint.

// FuzzObserveRequest: no observation body may crash the server or
// produce a 5xx, and every accepted observation must replay to the
// same reply bytes on an identically-prepared server.
func FuzzObserveRequest(f *testing.F) {
	newServer := func(tb testing.TB) http.Handler {
		s, err := New(Config{
			Areas:  testAreas(),
			Retune: RetuneConfig{MinObservations: 5, DriftWarmup: 5},
		})
		if err != nil {
			tb.Fatal(err)
		}
		return s.Handler()
	}
	post := func(tb testing.TB, h http.Handler, path string, body []byte) (int, []byte) {
		r := httptest.NewRequest("POST", path, bytes.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		return w.Code, w.Body.Bytes()
	}

	f.Add([]byte(`{"area":"chicago","stop_sec":5}`))
	f.Add([]byte(`{"area":"atlanta","stop_sec":120,"vehicle_id":"v"}`))
	f.Add([]byte(`{"area":"nowhere","stop_sec":1}`))
	f.Add([]byte(`{"area":"chicago","stop_sec":-3}`))
	f.Add([]byte(`{"area":"chicago","stop_sec":1e308}`))
	f.Add([]byte(`{"observations":[{"area":"chicago","stop_sec":2}]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, body []byte) {
		h := newServer(t)
		status, reply := post(t, h, "/v1/observe", body)
		if status >= 500 {
			t.Fatalf("observe 5xx for %q: %d %s", body, status, reply)
		}
		if status != http.StatusOK {
			if code := errCode(t, reply); code == "" {
				t.Fatalf("rejection without structured error for %q: %s", body, reply)
			}
		} else {
			// Determinism: the same observation against a fresh server
			// with the same config yields the same bytes.
			h2 := newServer(t)
			status2, reply2 := post(t, h2, "/v1/observe", body)
			if status2 != status || !bytes.Equal(reply, reply2) {
				t.Fatalf("observe not reproducible for %q:\n%s\n%s", body, reply, reply2)
			}
		}
		// The same bytes as a batch envelope must also never 5xx.
		batch := append([]byte(`{"observations":[`), body...)
		batch = append(batch, []byte(`]}`)...)
		if status, reply := post(t, h, "/v1/observe/batch", batch); status >= 500 {
			t.Fatalf("batch 5xx for %q: %d %s", batch, status, reply)
		}
	})
}

// FuzzSnapshotRoundtrip: arbitrary snapshot bytes must either decode
// to a plane that re-encodes and re-decodes cleanly, or be rejected —
// never panic, never partially restore. The live POST /v1/snapshot
// endpoint must agree with the library decoder.
func FuzzSnapshotRoundtrip(f *testing.F) {
	valid, err := EncodeSnapshot(testStatePlane())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(bytes.Replace(valid, []byte("sha256:"), []byte("sha256:00"), 1))
	f.Add([]byte(`{"format":"idled-state","schema_version":1,"checksum":"","payload":{}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{}`))
	f.Add([]byte(``))

	s, err := New(Config{Areas: testAreas()})
	if err != nil {
		f.Fatal(err)
	}
	h := s.Handler()

	f.Fuzz(func(t *testing.T, data []byte) {
		plane, err := DecodeSnapshot(data)
		if err == nil {
			// Anything the decoder accepts must be internally consistent
			// enough to roundtrip.
			if verr := plane.Validate(); verr != nil {
				t.Fatalf("decoded plane fails its own validation: %v", verr)
			}
			reenc, eerr := EncodeSnapshot(plane)
			if eerr != nil {
				t.Fatalf("accepted plane does not re-encode: %v", eerr)
			}
			if _, derr := DecodeSnapshot(reenc); derr != nil {
				t.Fatalf("re-encoded plane does not decode: %v", derr)
			}
			for _, a := range plane.Areas {
				if a.Version == 0 || math.IsNaN(a.B) {
					t.Fatalf("invalid area escaped validation: %+v", a)
				}
			}
		}
		// The restore endpoint fails closed on exactly the same inputs:
		// a decoder rejection may never 5xx or restore anything.
		r := httptest.NewRequest("POST", "/v1/snapshot", bytes.NewReader(data))
		r.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code >= 500 {
			t.Fatalf("restore 5xx for %q: %d %s", data, w.Code, w.Body.Bytes())
		}
		if err != nil && w.Code == http.StatusOK {
			t.Fatalf("endpoint restored bytes the decoder rejects: %q", data)
		}
	})
}
