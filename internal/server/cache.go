package server

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"idlereduce/internal/obs"
	"idlereduce/internal/skirental"
)

// AreaState is the serving configuration of one statistics area: the
// break-even interval B and the constrained pair (mu_B-, q_B+) the
// vertex selection is derived from. It is what the -areas config file
// holds and what a stats update replaces.
type AreaState struct {
	// ID is the lookup key (case-insensitive, stored lowercase).
	ID string `json:"id"`
	// B is the area's default break-even interval in seconds.
	B float64 `json:"b"`
	// Mu is mu_B- (partial expectation of stops <= B, seconds).
	Mu float64 `json:"mu"`
	// Q is q_B+ (probability of a stop longer than B).
	Q float64 `json:"q"`
}

// Stats returns the skirental view of the pair.
func (a AreaState) Stats() skirental.Stats {
	return skirental.Stats{MuBMinus: a.Mu, QBPlus: a.Q}
}

// Validate checks the state is servable: non-empty ID and a feasible
// (B, mu, q) triple.
func (a AreaState) Validate() error {
	if strings.TrimSpace(a.ID) == "" {
		return fmt.Errorf("server: area id empty")
	}
	if err := a.Stats().Validate(a.B); err != nil {
		return fmt.Errorf("server: area %s: %w", a.ID, err)
	}
	return nil
}

// strategy is one immutable cache entry: the area state plus everything
// decide needs precomputed — the selected policy, its vertex costs and
// the guaranteed bounds. Entries are never mutated after construction;
// updates build a fresh entry and swap the whole map.
type strategy struct {
	state   AreaState
	policy  *skirental.Constrained
	costs   skirental.VertexCosts
	version uint64
	// latMetric/cntMetric are the area's pre-formatted attribution
	// metric names (decide_area_ms{area=...} / decide_area_total{...}),
	// built once here so the decide hot path never formats labels.
	latMetric string
	cntMetric string
}

// newStrategy precomputes the vertex selection for one area state.
func newStrategy(state AreaState, version uint64) (*strategy, error) {
	state.ID = strings.ToLower(strings.TrimSpace(state.ID))
	if err := state.Validate(); err != nil {
		return nil, err
	}
	p, err := skirental.NewConstrained(state.B, state.Stats())
	if err != nil {
		return nil, fmt.Errorf("server: area %s: %w", state.ID, err)
	}
	return &strategy{
		state:     state,
		policy:    p,
		costs:     skirental.ComputeVertexCosts(state.B, state.Stats()),
		version:   version,
		latMetric: obs.L("decide_area_ms", "area", state.ID),
		cntMetric: obs.L("decide_area_total", "area", state.ID),
	}, nil
}

// Info renders the entry as the wire AreaInfo.
func (s *strategy) Info() AreaInfo {
	info := AreaInfo{
		ID:            s.state.ID,
		B:             s.state.B,
		Mu:            s.state.Mu,
		Q:             s.state.Q,
		Choice:        s.policy.Choice().String(),
		ThresholdSec:  -1,
		WorstCaseCost: s.policy.WorstCaseCost(),
		WorstCaseCR:   s.policy.WorstCaseCR(),
		Version:       s.version,
	}
	if det, ok := s.policy.Inner().(*skirental.Deterministic); ok {
		info.ThresholdSec = det.X()
	}
	return info
}

// Cache is the read-mostly per-area strategy cache. Reads are a single
// atomic pointer load plus a map lookup — no locks on the decide path.
// Writers serialize on mu and publish copy-on-write: build the new
// entry, clone the map, swap the pointer. Readers holding the old map
// keep a consistent snapshot.
type Cache struct {
	mu      sync.Mutex
	entries atomic.Pointer[map[string]*strategy]
}

// NewCache builds the cache from the boot-time area states. Duplicate
// IDs (after lowercasing) are rejected.
func NewCache(areas []AreaState) (*Cache, error) {
	if len(areas) == 0 {
		return nil, fmt.Errorf("server: no areas configured")
	}
	m := make(map[string]*strategy, len(areas))
	for _, a := range areas {
		e, err := newStrategy(a, 1)
		if err != nil {
			return nil, err
		}
		if _, dup := m[e.state.ID]; dup {
			return nil, fmt.Errorf("server: duplicate area id %q", e.state.ID)
		}
		m[e.state.ID] = e
	}
	c := &Cache{}
	c.entries.Store(&m)
	return c, nil
}

// Get returns the current strategy of an area (case-insensitive).
func (c *Cache) Get(id string) (*strategy, bool) {
	m := *c.entries.Load()
	s, ok := m[strings.ToLower(strings.TrimSpace(id))]
	return s, ok
}

// Update swaps in new statistics for an existing area. b <= 0 keeps the
// area's current break-even interval. The new entry is fully validated
// and precomputed before publication, so concurrent readers only ever
// observe servable strategies.
func (c *Cache) Update(id string, b float64, s skirental.Stats) (*strategy, error) {
	key := strings.ToLower(strings.TrimSpace(id))
	c.mu.Lock()
	defer c.mu.Unlock()
	old := *c.entries.Load()
	prev, ok := old[key]
	if !ok {
		return nil, fmt.Errorf("server: unknown area %q", id)
	}
	if b <= 0 || math.IsNaN(b) {
		b = prev.state.B
	}
	next, err := newStrategy(AreaState{ID: key, B: b, Mu: s.MuBMinus, Q: s.QBPlus}, prev.version+1)
	if err != nil {
		return nil, err
	}
	m := make(map[string]*strategy, len(old))
	for k, v := range old {
		m[k] = v
	}
	m[key] = next
	c.entries.Store(&m)
	return next, nil
}

// List returns every entry sorted by area ID.
func (c *Cache) List() []*strategy {
	m := *c.entries.Load()
	out := make([]*strategy, 0, len(m))
	for _, s := range m {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].state.ID < out[j].state.ID })
	return out
}

// Len returns the number of configured areas.
func (c *Cache) Len() int { return len(*c.entries.Load()) }
