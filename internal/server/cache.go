package server

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"idlereduce/internal/obs"
	"idlereduce/internal/policy"
	"idlereduce/internal/skirental"
)

// AreaState is the serving configuration of one statistics area: the
// break-even interval B and the constrained pair (mu_B-, q_B+) every
// policy engine derives its strategy from. It is what the -areas
// config file holds and what a stats update replaces.
type AreaState struct {
	// ID is the lookup key (case-insensitive, stored lowercase).
	ID string `json:"id"`
	// B is the area's default break-even interval in seconds.
	B float64 `json:"b"`
	// Mu is mu_B- (partial expectation of stops <= B, seconds).
	Mu float64 `json:"mu"`
	// Q is q_B+ (probability of a stop longer than B).
	Q float64 `json:"q"`
}

// Stats returns the skirental view of the pair.
func (a AreaState) Stats() skirental.Stats {
	return skirental.Stats{MuBMinus: a.Mu, QBPlus: a.Q}
}

// PolicyStats returns the engine view of the area at break-even b
// (b <= 0 means the area default).
func (a AreaState) PolicyStats(b float64) policy.Stats {
	if b <= 0 {
		b = a.B
	}
	return policy.Stats{B: b, Mu: a.Mu, Q: a.Q}
}

// Validate checks the state is servable: non-empty ID and a feasible
// (B, mu, q) triple.
func (a AreaState) Validate() error {
	if strings.TrimSpace(a.ID) == "" {
		return fmt.Errorf("server: area id empty")
	}
	if err := a.Stats().Validate(a.B); err != nil {
		return fmt.Errorf("server: area %s: %w", a.ID, err)
	}
	return nil
}

// areaRec is the per-area serving record shared by every engine's
// cache entries: the current state, its statistics version, and the
// pre-formatted attribution metric names (decide_area_ms{area=...} /
// decide_area_total{...}) built once so the decide hot path never
// formats labels. Records are immutable; a stats update builds a fresh
// one.
type areaRec struct {
	state     AreaState
	version   uint64
	latMetric string
	cntMetric string
}

// newAreaRec validates and normalizes one area state.
func newAreaRec(state AreaState, version uint64) (*areaRec, error) {
	state.ID = strings.ToLower(strings.TrimSpace(state.ID))
	if err := state.Validate(); err != nil {
		return nil, err
	}
	return &areaRec{
		state:     state,
		version:   version,
		latMetric: obs.L("decide_area_ms", "area", state.ID),
		cntMetric: obs.L("decide_area_total", "area", state.ID),
	}, nil
}

// Key identifies one cache entry: the area, the policy engine, and the
// fingerprint of the engine parameters the strategy was prepared with
// (today the effective break-even interval). Distinct engines — and
// distinct parameterizations of one engine — never collide.
type Key struct {
	Area   string
	Engine string
	Params uint64
}

// paramsHash fingerprints the engine parameters of a prepared
// strategy. The break-even interval is hashed by bit pattern, so
// semantically different floats (including negative zero vs zero)
// never alias.
func paramsHash(b float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(b))
	h.Write(buf[:])
	return h.Sum64()
}

// strategy is one immutable cache entry: the area record plus the
// engine-prepared policy. Entries are never mutated after
// construction; updates build fresh entries and swap the whole map.
type strategy struct {
	rec  *areaRec
	eng  policy.Engine
	prep policy.Strategy
}

// key returns the entry's cache key.
func (s *strategy) key() Key {
	return Key{Area: s.rec.state.ID, Engine: s.eng.Name(), Params: paramsHash(s.rec.state.B)}
}

// Info renders the entry as the wire AreaInfo. The Policy field is set
// only for non-default engines, so the default listing's bytes are
// unchanged from the pre-engine server.
func (s *strategy) Info() AreaInfo {
	d := s.prep.Describe()
	info := AreaInfo{
		ID:            s.rec.state.ID,
		B:             s.rec.state.B,
		Mu:            s.rec.state.Mu,
		Q:             s.rec.state.Q,
		Choice:        d.Choice,
		ThresholdSec:  d.ThresholdSec,
		WorstCaseCost: d.WorstCaseCost,
		WorstCaseCR:   d.WorstCaseCR,
		Version:       s.rec.version,
	}
	if s.eng.Name() != policy.DefaultEngine {
		info.Policy = s.eng.Name()
	}
	return info
}

// snapshot is one immutable cache generation: the area records plus
// the prepared per-engine strategies.
type snapshot struct {
	areas   map[string]*areaRec
	entries map[Key]*strategy
}

// Cache is the read-mostly strategy cache, keyed {area, engine,
// params-hash}. Reads are a single atomic pointer load plus map
// lookups — no locks on the decide path. Writers serialize on mu and
// publish copy-on-write: build the new entries, clone the maps, swap
// the pointer. Readers holding the old snapshot keep a consistent
// view.
//
// Entries for the eager engines (the registry default plus the
// daemon's serving default) are prepared at boot and on every stats
// update, so a misconfigured server never starts and default-path
// requests never pay a prepare. Other engines fill in lazily on first
// use and are invalidated by stats updates.
type Cache struct {
	mu    sync.Mutex
	snap  atomic.Pointer[snapshot]
	eager []policy.Engine
}

// NewCache builds the cache from the boot-time area states, preparing
// every eager engine for every area. Duplicate IDs (after
// lowercasing) are rejected. The registry default engine is always
// eager.
func NewCache(areas []AreaState, eager []policy.Engine) (*Cache, error) {
	if len(areas) == 0 {
		return nil, fmt.Errorf("server: no areas configured")
	}
	def, _ := policy.Get(policy.DefaultEngine)
	engines := []policy.Engine{def}
	for _, e := range eager {
		if e != nil && e.Name() != policy.DefaultEngine {
			engines = append(engines, e)
		}
	}
	sn := &snapshot{
		areas:   make(map[string]*areaRec, len(areas)),
		entries: make(map[Key]*strategy, len(areas)*len(engines)),
	}
	for _, a := range areas {
		rec, err := newAreaRec(a, 1)
		if err != nil {
			return nil, err
		}
		if _, dup := sn.areas[rec.state.ID]; dup {
			return nil, fmt.Errorf("server: duplicate area id %q", rec.state.ID)
		}
		sn.areas[rec.state.ID] = rec
		for _, eng := range engines {
			st, err := prepare(rec, eng)
			if err != nil {
				return nil, err
			}
			sn.entries[st.key()] = st
		}
	}
	c := &Cache{eager: engines}
	c.snap.Store(sn)
	return c, nil
}

// prepare builds one cache entry.
func prepare(rec *areaRec, eng policy.Engine) (*strategy, error) {
	prep, err := eng.Prepare(rec.state.PolicyStats(0))
	if err != nil {
		return nil, fmt.Errorf("server: area %s: engine %s: %w", rec.state.ID, eng.Name(), err)
	}
	return &strategy{rec: rec, eng: eng, prep: prep}, nil
}

// Area returns the current record of an area (case-insensitive).
func (c *Cache) Area(id string) (*areaRec, bool) {
	sn := c.snap.Load()
	rec, ok := sn.areas[strings.ToLower(strings.TrimSpace(id))]
	return rec, ok
}

// Get returns an area's default-engine strategy (the legacy lookup
// surface; always present for configured areas).
func (c *Cache) Get(id string) (*strategy, bool) {
	rec, ok := c.Area(id)
	if !ok {
		return nil, false
	}
	sn := c.snap.Load()
	st, ok := sn.entries[Key{Area: rec.state.ID, Engine: policy.DefaultEngine, Params: paramsHash(rec.state.B)}]
	return st, ok
}

// Strategy returns the prepared strategy of (area, engine) at the
// area's default break-even. Eager engines always hit; other engines
// prepare lazily on first use, publish copy-on-write, and hit from
// then on. An engine that cannot serve the area's statistics returns
// the prepare error (wrapping policy.ErrInfeasible) without caching
// the failure.
func (c *Cache) Strategy(rec *areaRec, eng policy.Engine) (*strategy, error) {
	key := Key{Area: rec.state.ID, Engine: eng.Name(), Params: paramsHash(rec.state.B)}
	if st, ok := c.snap.Load().entries[key]; ok && st.rec == rec {
		return st, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	sn := c.snap.Load()
	// Re-check under the lock; another request may have prepared it,
	// and the area may have been re-stated since the caller's lookup.
	cur, ok := sn.areas[rec.state.ID]
	if !ok {
		return nil, fmt.Errorf("server: unknown area %q", rec.state.ID)
	}
	key.Params = paramsHash(cur.state.B)
	if st, ok := sn.entries[key]; ok && st.rec == cur {
		return st, nil
	}
	st, err := prepare(cur, eng)
	if err != nil {
		return nil, err
	}
	next := &snapshot{areas: sn.areas, entries: make(map[Key]*strategy, len(sn.entries)+1)}
	for k, v := range sn.entries {
		next.entries[k] = v
	}
	next.entries[st.key()] = st
	c.snap.Store(next)
	return st, nil
}

// Update swaps in new statistics for an existing area. b <= 0 keeps
// the area's current break-even interval. Every eager engine is
// re-prepared and validated before publication — a stats update that
// any serving-default engine cannot serve is rejected whole — and
// lazily-cached entries of other engines are dropped so they rebuild
// against the new statistics on next use. Returns the area's new
// default-engine strategy.
func (c *Cache) Update(id string, b float64, s skirental.Stats) (*strategy, error) {
	key := strings.ToLower(strings.TrimSpace(id))
	c.mu.Lock()
	defer c.mu.Unlock()
	sn := c.snap.Load()
	prev, ok := sn.areas[key]
	if !ok {
		return nil, fmt.Errorf("server: unknown area %q", id)
	}
	if b <= 0 || math.IsNaN(b) {
		b = prev.state.B
	}
	state := AreaState{ID: key, B: b, Mu: s.MuBMinus, Q: s.QBPlus}
	if err := state.Validate(); err != nil {
		return nil, err
	}
	// The ID is unchanged, so the previous record's pre-formatted
	// metric labels carry over instead of being re-rendered.
	rec := &areaRec{
		state:     state,
		version:   prev.version + 1,
		latMetric: prev.latMetric,
		cntMetric: prev.cntMetric,
	}
	fresh := make([]*strategy, 0, len(c.eager))
	var def *strategy
	for _, eng := range c.eager {
		st, err := prepare(rec, eng)
		if err != nil {
			return nil, err
		}
		if eng.Name() == policy.DefaultEngine {
			def = st
		}
		fresh = append(fresh, st)
	}
	next := &snapshot{
		areas:   make(map[string]*areaRec, len(sn.areas)),
		entries: make(map[Key]*strategy, len(sn.entries)),
	}
	for k, v := range sn.areas {
		next.areas[k] = v
	}
	next.areas[key] = rec
	for k, v := range sn.entries {
		if k.Area != key {
			next.entries[k] = v
		}
	}
	for _, st := range fresh {
		next.entries[st.key()] = st
	}
	c.snap.Store(next)
	return def, nil
}

// Areas returns every area record sorted by ID.
func (c *Cache) Areas() []*areaRec {
	sn := c.snap.Load()
	out := make([]*areaRec, 0, len(sn.areas))
	for _, rec := range sn.areas {
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].state.ID < out[j].state.ID })
	return out
}

// List returns every area's default-engine strategy sorted by ID.
func (c *Cache) List() []*strategy {
	recs := c.Areas()
	out := make([]*strategy, 0, len(recs))
	for _, rec := range recs {
		if st, ok := c.Get(rec.state.ID); ok {
			out = append(out, st)
		}
	}
	return out
}

// Len returns the number of configured areas.
func (c *Cache) Len() int { return len(c.snap.Load().areas) }
