package server

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"idlereduce/internal/obs"
	"idlereduce/internal/policy"
	"idlereduce/internal/skirental"
)

// AreaState is the serving configuration of one statistics area: the
// break-even interval B and the constrained pair (mu_B-, q_B+) every
// policy engine derives its strategy from. It is what the -areas
// config file holds and what a stats update replaces.
type AreaState struct {
	// ID is the lookup key (case-insensitive, stored lowercase).
	ID string `json:"id"`
	// B is the area's default break-even interval in seconds.
	B float64 `json:"b"`
	// Mu is mu_B- (partial expectation of stops <= B, seconds).
	Mu float64 `json:"mu"`
	// Q is q_B+ (probability of a stop longer than B).
	Q float64 `json:"q"`
}

// Stats returns the skirental view of the pair.
func (a AreaState) Stats() skirental.Stats {
	return skirental.Stats{MuBMinus: a.Mu, QBPlus: a.Q}
}

// PolicyStats returns the engine view of the area at break-even b
// (b <= 0 means the area default).
func (a AreaState) PolicyStats(b float64) policy.Stats {
	if b <= 0 {
		b = a.B
	}
	return policy.Stats{B: b, Mu: a.Mu, Q: a.Q}
}

// Validate checks the state is servable: non-empty ID and a feasible
// (B, mu, q) triple.
func (a AreaState) Validate() error {
	if strings.TrimSpace(a.ID) == "" {
		return fmt.Errorf("server: area id empty")
	}
	if err := a.Stats().Validate(a.B); err != nil {
		return fmt.Errorf("server: area %s: %w", a.ID, err)
	}
	return nil
}

// areaRec is the per-area serving record shared by every engine's
// cache entries: the current state, its statistics version, and the
// pre-formatted attribution metric names (decide_area_ms{area=...} /
// decide_area_total{...}) built once so the decide hot path never
// formats labels. Records are immutable; a stats update builds a fresh
// one.
type areaRec struct {
	state     AreaState
	version   uint64
	latMetric string
	cntMetric string
}

// newAreaRec validates and normalizes one area state.
func newAreaRec(state AreaState, version uint64) (*areaRec, error) {
	state.ID = strings.ToLower(strings.TrimSpace(state.ID))
	if err := state.Validate(); err != nil {
		return nil, err
	}
	return &areaRec{
		state:     state,
		version:   version,
		latMetric: obs.L("decide_area_ms", "area", state.ID),
		cntMetric: obs.L("decide_area_total", "area", state.ID),
	}, nil
}

// Key identifies one cache entry: the area, the policy engine, and the
// fingerprint of the engine parameters the strategy was prepared with
// (today the effective break-even interval). Distinct engines — and
// distinct parameterizations of one engine — never collide.
type Key struct {
	Area   string
	Engine string
	Params uint64
}

// paramsHash fingerprints the engine parameters of a prepared
// strategy: the effective break-even interval plus the resolved tuning
// map, hashed in sorted key order. Floats are hashed by bit pattern,
// so semantically different values (including negative zero vs zero)
// never alias; a nil map (the default parameterization) hashes
// differently from any explicit map, which at worst caches a default
// strategy twice, never serves the wrong one.
func paramsHash(b float64, params map[string]float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(b))
	h.Write(buf[:])
	if len(params) > 0 {
		names := make([]string, 0, len(params))
		for n := range params {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			h.Write([]byte(n))
			h.Write([]byte{0})
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(params[n]))
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// areaHash places an area on its shard: FNV-1a over the normalized ID.
// The placement is a pure function of the ID, so a snapshot taken with
// one shard count restores correctly under any other.
func areaHash(id string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64()
}

// strategy is one immutable cache entry: the area record plus the
// engine-prepared policy. Entries are never mutated after
// construction; updates build fresh entries and swap their shard's
// snapshot.
type strategy struct {
	rec  *areaRec
	eng  policy.Engine
	prep policy.Strategy
	// params are the resolved engine parameters this entry was prepared
	// with; nil for the default parameterization.
	params map[string]float64
}

// key returns the entry's cache key.
func (s *strategy) key() Key {
	return Key{Area: s.rec.state.ID, Engine: s.eng.Name(), Params: paramsHash(s.rec.state.B, s.params)}
}

// Info renders the entry as the wire AreaInfo. The Policy field is set
// only for non-default engines, so the default listing's bytes are
// unchanged from the pre-engine server.
func (s *strategy) Info() AreaInfo {
	d := s.prep.Describe()
	info := AreaInfo{
		ID:            s.rec.state.ID,
		B:             s.rec.state.B,
		Mu:            s.rec.state.Mu,
		Q:             s.rec.state.Q,
		Choice:        d.Choice,
		ThresholdSec:  d.ThresholdSec,
		WorstCaseCost: d.WorstCaseCost,
		WorstCaseCR:   d.WorstCaseCR,
		Version:       s.rec.version,
	}
	if s.eng.Name() != policy.DefaultEngine {
		info.Policy = s.eng.Name()
	}
	return info
}

// snapshot is one immutable generation of ONE shard: the shard's area
// records plus the prepared per-engine strategies of those areas.
type snapshot struct {
	areas   map[string]*areaRec
	entries map[Key]*strategy
}

// shard is one independently-published slice of the cache keyspace.
// Readers load the shard's snapshot with a single atomic pointer load;
// writers serialize on the shard mutex and publish copy-on-write, so a
// stats update or lazy engine fill on one shard never blocks decides —
// or concurrent updates — on any other shard.
type shard struct {
	mu   sync.Mutex
	snap atomic.Pointer[snapshot]
	// hitMetric / missMetric are the pre-formatted per-shard cache
	// counters (decide_shard_hits_total{shard=N} and the miss twin), so
	// per-shard hit-rate attribution costs the hot path no formatting.
	hitMetric  string
	missMetric string
}

// DefaultShards is the shard count used when Config.Shards is unset:
// enough to keep stats updates and lazy fills from contending at
// million-vehicle area counts, small enough that a full listing stays
// cheap.
const DefaultShards = 16

// Cache is the read-mostly strategy cache, keyed {area, engine,
// params-hash} and sharded by area hash. Reads are a single atomic
// pointer load on the owning shard plus map lookups — no locks on the
// decide path, and no cross-shard coordination anywhere: each shard
// has its own writer mutex and its own copy-on-write snapshot chain,
// so there is no global swap and a re-tune storm on one shard leaves
// the other shards' decide latency untouched. Readers holding an old
// shard snapshot keep a consistent view of that shard.
//
// Entries for the eager engines (the registry default plus the
// daemon's serving default) are prepared at boot and on every stats
// update, so a misconfigured server never starts and default-path
// requests never pay a prepare. Other engines fill in lazily on first
// use and are invalidated by stats updates.
type Cache struct {
	shards []*shard
	mask   uint64
	eager  []policy.Engine
}

// NewCache builds the cache from the boot-time area states with the
// default shard count; see NewShardedCache.
func NewCache(areas []AreaState, eager []policy.Engine) (*Cache, error) {
	return NewShardedCache(areas, eager, 0)
}

// NewShardedCache builds the cache from the boot-time area states,
// preparing every eager engine for every area. Duplicate IDs (after
// lowercasing) are rejected. The registry default engine is always
// eager. shards is rounded up to a power of two (0 = DefaultShards);
// the shard count is invisible on the wire — decisions are
// byte-identical for every value.
func NewShardedCache(areas []AreaState, eager []policy.Engine, shards int) (*Cache, error) {
	recs := make([]*areaRec, 0, len(areas))
	seen := make(map[string]bool, len(areas))
	for _, a := range areas {
		rec, err := newAreaRec(a, 1)
		if err != nil {
			return nil, err
		}
		if seen[rec.state.ID] {
			return nil, fmt.Errorf("server: duplicate area id %q", rec.state.ID)
		}
		seen[rec.state.ID] = true
		recs = append(recs, rec)
	}
	return newCacheFromRecs(recs, eager, shards)
}

// newCacheFromRecs builds and publishes the shard snapshots from
// validated, deduplicated area records (the shared tail of boot and
// snapshot restore; recs carry their own versions).
func newCacheFromRecs(recs []*areaRec, eager []policy.Engine, shards int) (*Cache, error) {
	if len(recs) == 0 {
		return nil, fmt.Errorf("server: no areas configured")
	}
	n := shardCount(shards)
	def, _ := policy.Get(policy.DefaultEngine)
	engines := []policy.Engine{def}
	for _, e := range eager {
		if e != nil && e.Name() != policy.DefaultEngine {
			engines = append(engines, e)
		}
	}
	c := &Cache{shards: make([]*shard, n), mask: uint64(n - 1), eager: engines}
	snaps := make([]*snapshot, n)
	for i := range c.shards {
		c.shards[i] = &shard{
			hitMetric:  obs.L("decide_shard_hits_total", "shard", strconv.Itoa(i)),
			missMetric: obs.L("decide_shard_misses_total", "shard", strconv.Itoa(i)),
		}
		snaps[i] = &snapshot{areas: make(map[string]*areaRec), entries: make(map[Key]*strategy)}
	}
	for _, rec := range recs {
		sn := snaps[areaHash(rec.state.ID)&c.mask]
		sn.areas[rec.state.ID] = rec
		for _, eng := range engines {
			st, err := prepare(rec, eng)
			if err != nil {
				return nil, err
			}
			sn.entries[st.key()] = st
		}
	}
	for i, sh := range c.shards {
		sh.snap.Store(snaps[i])
	}
	return c, nil
}

// shardCount normalizes a requested shard count to a power of two.
func shardCount(n int) int {
	if n <= 0 {
		n = DefaultShards
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// Shards returns the shard count.
func (c *Cache) Shards() int { return len(c.shards) }

// shardFor returns the shard owning a normalized area ID.
func (c *Cache) shardFor(id string) *shard {
	return c.shards[areaHash(id)&c.mask]
}

// prepare builds one cache entry with the default parameterization.
func prepare(rec *areaRec, eng policy.Engine) (*strategy, error) {
	return prepareWith(rec, eng, nil)
}

// prepareWith builds one cache entry with resolved engine parameters
// (nil = defaults). Params against an engine that declares none wrap
// policy.ErrBadParams.
func prepareWith(rec *areaRec, eng policy.Engine, params map[string]float64) (*strategy, error) {
	var prep policy.Strategy
	var err error
	if len(params) > 0 {
		pe, ok := eng.(policy.Parametric)
		if !ok {
			return nil, fmt.Errorf("server: area %s: engine %s: %w: engine accepts no params",
				rec.state.ID, eng.Name(), policy.ErrBadParams)
		}
		prep, err = pe.PrepareParams(rec.state.PolicyStats(0), params)
	} else {
		prep, err = eng.Prepare(rec.state.PolicyStats(0))
	}
	if err != nil {
		return nil, fmt.Errorf("server: area %s: engine %s: %w", rec.state.ID, eng.Name(), err)
	}
	return &strategy{rec: rec, eng: eng, prep: prep, params: params}, nil
}

// Area returns the current record of an area (case-insensitive).
func (c *Cache) Area(id string) (*areaRec, bool) {
	key := strings.ToLower(strings.TrimSpace(id))
	rec, ok := c.shardFor(key).snap.Load().areas[key]
	return rec, ok
}

// Get returns an area's default-engine strategy (the legacy lookup
// surface; always present for configured areas).
func (c *Cache) Get(id string) (*strategy, bool) {
	key := strings.ToLower(strings.TrimSpace(id))
	sn := c.shardFor(key).snap.Load()
	rec, ok := sn.areas[key]
	if !ok {
		return nil, false
	}
	st, ok := sn.entries[Key{Area: rec.state.ID, Engine: policy.DefaultEngine, Params: paramsHash(rec.state.B, nil)}]
	return st, ok
}

// Strategy returns the prepared strategy of (area, engine) at the
// area's default break-even and default parameterization. Eager
// engines always hit; other engines prepare lazily on first use,
// publish copy-on-write on their shard, and hit from then on. An
// engine that cannot serve the area's statistics returns the prepare
// error (wrapping policy.ErrInfeasible) without caching the failure.
func (c *Cache) Strategy(rec *areaRec, eng policy.Engine) (*strategy, error) {
	return c.StrategyParams(rec, eng, nil)
}

// StrategyParams is Strategy with resolved engine parameters in the
// cache key: each distinct parameterization of an engine is its own
// lazily-filled entry, invalidated like any other lazy entry when the
// area's statistics change.
func (c *Cache) StrategyParams(rec *areaRec, eng policy.Engine, params map[string]float64) (*strategy, error) {
	sh := c.shardFor(rec.state.ID)
	key := Key{Area: rec.state.ID, Engine: eng.Name(), Params: paramsHash(rec.state.B, params)}
	if st, ok := sh.snap.Load().entries[key]; ok && st.rec == rec {
		return st, nil
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sn := sh.snap.Load()
	// Re-check under the lock; another request may have prepared it,
	// and the area may have been re-stated since the caller's lookup.
	cur, ok := sn.areas[rec.state.ID]
	if !ok {
		return nil, fmt.Errorf("server: unknown area %q", rec.state.ID)
	}
	key.Params = paramsHash(cur.state.B, params)
	if st, ok := sn.entries[key]; ok && st.rec == cur {
		return st, nil
	}
	st, err := prepareWith(cur, eng, params)
	if err != nil {
		return nil, err
	}
	next := &snapshot{areas: sn.areas, entries: make(map[Key]*strategy, len(sn.entries)+1)}
	for k, v := range sn.entries {
		next.entries[k] = v
	}
	next.entries[st.key()] = st
	sh.snap.Store(next)
	return st, nil
}

// Update swaps in new statistics for an existing area. b <= 0 keeps
// the area's current break-even interval. Every eager engine is
// re-prepared and validated before publication — a stats update that
// any serving-default engine cannot serve is rejected whole — and
// lazily-cached entries of other engines are dropped so they rebuild
// against the new statistics on next use. Only the area's own shard
// is locked and re-published; every other shard keeps serving its
// current snapshot untouched. Returns the area's new default-engine
// strategy.
func (c *Cache) Update(id string, b float64, s skirental.Stats) (*strategy, error) {
	key := strings.ToLower(strings.TrimSpace(id))
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sn := sh.snap.Load()
	prev, ok := sn.areas[key]
	if !ok {
		return nil, fmt.Errorf("server: unknown area %q", id)
	}
	if b <= 0 || math.IsNaN(b) {
		b = prev.state.B
	}
	state := AreaState{ID: key, B: b, Mu: s.MuBMinus, Q: s.QBPlus}
	if err := state.Validate(); err != nil {
		return nil, err
	}
	// The ID is unchanged, so the previous record's pre-formatted
	// metric labels carry over instead of being re-rendered.
	rec := &areaRec{
		state:     state,
		version:   prev.version + 1,
		latMetric: prev.latMetric,
		cntMetric: prev.cntMetric,
	}
	def, fresh, err := c.prepareEager(rec)
	if err != nil {
		return nil, err
	}
	sh.snap.Store(replaceArea(sn, rec, fresh))
	return def, nil
}

// prepareEager prepares every eager engine against a fresh record,
// returning the default-engine entry and the full set.
func (c *Cache) prepareEager(rec *areaRec) (*strategy, []*strategy, error) {
	fresh := make([]*strategy, 0, len(c.eager))
	var def *strategy
	for _, eng := range c.eager {
		st, err := prepare(rec, eng)
		if err != nil {
			return nil, nil, err
		}
		if eng.Name() == policy.DefaultEngine {
			def = st
		}
		fresh = append(fresh, st)
	}
	return def, fresh, nil
}

// replaceArea builds a shard snapshot with one area's record and eager
// entries replaced and its lazy entries dropped.
func replaceArea(sn *snapshot, rec *areaRec, fresh []*strategy) *snapshot {
	next := &snapshot{
		areas:   make(map[string]*areaRec, len(sn.areas)),
		entries: make(map[Key]*strategy, len(sn.entries)),
	}
	for k, v := range sn.areas {
		next.areas[k] = v
	}
	next.areas[rec.state.ID] = rec
	for k, v := range sn.entries {
		if k.Area != rec.state.ID {
			next.entries[k] = v
		}
	}
	for _, st := range fresh {
		next.entries[st.key()] = st
	}
	return next
}

// Restore atomically replaces the state of existing areas from a
// snapshot: for each entry the record (state AND statistics version)
// is rebuilt, eager engines are re-prepared, and the owning shard is
// re-published copy-on-write. All entries are validated and prepared
// before any shard is touched, so a bad snapshot changes nothing.
// Entries naming unknown areas are rejected: the serving area set is
// fixed at boot. Each shard swaps atomically; concurrent decides on
// other shards are never blocked.
func (c *Cache) Restore(entries []AreaSnapshot) error {
	type staged struct {
		rec   *areaRec
		fresh []*strategy
	}
	byShard := make(map[*shard][]staged)
	seen := make(map[string]bool, len(entries))
	for _, e := range entries {
		rec, err := newAreaRec(e.AreaState, e.Version)
		if err != nil {
			return err
		}
		if rec.version == 0 {
			return fmt.Errorf("server: restore: area %s has version 0", rec.state.ID)
		}
		if seen[rec.state.ID] {
			return fmt.Errorf("server: restore: duplicate area %q", rec.state.ID)
		}
		seen[rec.state.ID] = true
		if _, ok := c.Area(rec.state.ID); !ok {
			return fmt.Errorf("server: restore: unknown area %q (the serving set is fixed at boot)", rec.state.ID)
		}
		_, fresh, err := c.prepareEager(rec)
		if err != nil {
			return err
		}
		sh := c.shardFor(rec.state.ID)
		byShard[sh] = append(byShard[sh], staged{rec: rec, fresh: fresh})
	}
	for sh, batch := range byShard {
		sh.mu.Lock()
		sn := sh.snap.Load()
		for _, st := range batch {
			sn = replaceArea(sn, st.rec, st.fresh)
		}
		sh.snap.Store(sn)
		sh.mu.Unlock()
	}
	return nil
}

// Areas returns every area record sorted by ID.
func (c *Cache) Areas() []*areaRec {
	var out []*areaRec
	for _, sh := range c.shards {
		for _, rec := range sh.snap.Load().areas {
			out = append(out, rec)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].state.ID < out[j].state.ID })
	return out
}

// List returns every area's default-engine strategy sorted by ID.
func (c *Cache) List() []*strategy {
	recs := c.Areas()
	out := make([]*strategy, 0, len(recs))
	for _, rec := range recs {
		if st, ok := c.Get(rec.state.ID); ok {
			out = append(out, st)
		}
	}
	return out
}

// Len returns the number of configured areas.
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		n += len(sh.snap.Load().areas)
	}
	return n
}
