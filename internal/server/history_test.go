package server

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"testing"
	"time"

	"idlereduce/internal/obs"
)

// TestHistoryEndpointZeroSamples: before the sampler has ticked, the
// endpoint must still answer a well-formed, empty window — dashboards
// poll immediately after boot.
func TestHistoryEndpointZeroSamples(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var h obs.History
	status, _ := doJSON(t, "GET", ts.URL+"/v1/history", "", &h)
	if status != http.StatusOK {
		t.Fatalf("history: status %d", status)
	}
	if h.Samples != 0 || len(h.TimesUnixMS) != 0 {
		t.Errorf("fresh server history has %d samples, want 0", h.Samples)
	}
	if h.Window <= 0 || h.IntervalMS <= 0 {
		t.Errorf("history window/interval not reported: %+v", h)
	}
	if len(h.Series) == 0 {
		t.Fatal("history has no series")
	}
	for _, name := range []string{"requests", "decisions", "inflight", "decide_p99_ms"} {
		if _, ok := h.Lookup(name); !ok {
			t.Errorf("history missing series %q", name)
		}
	}
}

// TestHistoryEndpointLive runs the full Serve lifecycle with a fast
// sampler, drives traffic, and expects the window to fill with nonzero
// request and decision rates.
func TestHistoryEndpointLive(t *testing.T) {
	s, err := New(Config{
		Addr:            "127.0.0.1:0",
		Areas:           testAreas(),
		HistoryInterval: 20 * time.Millisecond,
		HistoryWindow:   16,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx) }()
	waitHealthy(t, "http://"+addr)

	// Decide while polling: counter rates are derived from deltas
	// between samples, so the traffic must land inside the retained
	// window (a pre-window burst correctly shows a zero rate).
	var h obs.History
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		status, _ := doJSON(t, "POST", "http://"+addr+"/v1/decide",
			fmt.Sprintf(`{"vehicle_id":"v-%d","area":"chicago"}`, i), nil)
		if status != http.StatusOK {
			t.Fatalf("decide %d: status %d", i, status)
		}
		status, _ = doJSON(t, "GET", "http://"+addr+"/v1/history", "", &h)
		if status != http.StatusOK {
			t.Fatalf("history: status %d", status)
		}
		dec, ok := h.Lookup("decisions")
		if h.Samples >= 2 && ok && dec.RatePerSec > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("history never saw the decisions: %+v", h)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if len(h.TimesUnixMS) != h.Samples {
		t.Errorf("times length %d != samples %d", len(h.TimesUnixMS), h.Samples)
	}
	reqs, ok := h.Lookup("requests")
	if !ok || reqs.Kind != "rate" || reqs.RatePerSec <= 0 {
		t.Errorf("requests series not a live rate: %+v", reqs)
	}
	if h.Samples > h.Window {
		t.Errorf("samples %d exceed window %d", h.Samples, h.Window)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not drain")
	}
}

// TestBuildInfoEndpoint checks /v1/buildinfo and the extended /healthz
// report the binary's identity and lifecycle.
func TestBuildInfoEndpoint(t *testing.T) {
	_, ts := newTestServer(t, nil)

	var bi BuildInfoResponse
	status, _ := doJSON(t, "GET", ts.URL+"/v1/buildinfo", "", &bi)
	if status != http.StatusOK {
		t.Fatalf("buildinfo: status %d", status)
	}
	if bi.Version == "" {
		t.Error("buildinfo version empty")
	}
	if bi.GoVersion != runtime.Version() {
		t.Errorf("go_version %q, want %q", bi.GoVersion, runtime.Version())
	}
	if bi.StartUnixMS <= 0 || bi.UptimeMS < 0 {
		t.Errorf("bad lifecycle fields: %+v", bi)
	}

	var hr HealthResponse
	if status, _ := doJSON(t, "GET", ts.URL+"/healthz", "", &hr); status != http.StatusOK {
		t.Fatalf("healthz: status %d", status)
	}
	if hr.Version != bi.Version || hr.GoVersion != bi.GoVersion {
		t.Errorf("healthz version %q/%q disagrees with buildinfo %q/%q",
			hr.Version, hr.GoVersion, bi.Version, bi.GoVersion)
	}
	if hr.StartUnixMS != bi.StartUnixMS {
		t.Errorf("healthz start %d != buildinfo start %d", hr.StartUnixMS, bi.StartUnixMS)
	}
}
