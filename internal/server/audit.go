package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"idlereduce/internal/adaptive"
	"idlereduce/internal/ledger"
	"idlereduce/internal/parallel"
	"idlereduce/internal/policy"
)

// AuditRecord is one line of the decision audit log: everything needed
// to re-derive the decision from scratch — the statistics the strategy
// was built from, the effective break-even interval, the policy engine
// and its version, and the RNG seed/stream pair — plus the decision
// itself. Because a decision is a pure function of (engine, b, mu, q,
// seed, stream), a recorded run can be replayed through the registered
// engine and checked bit-for-bit; see VerifyAudit.
type AuditRecord struct {
	// TSUnixMS is the decision wall-clock time (forensics only; replay
	// does not depend on it).
	TSUnixMS int64 `json:"ts_unix_ms"`
	// RequestID correlates the record with trace spans and the
	// X-Request-Id response header.
	RequestID string `json:"request_id,omitempty"`
	VehicleID string `json:"vehicle_id"`
	Area      string `json:"area"`
	// StatsVersion is the area's statistics version the decision was
	// served from (bumped by every PUT /v1/areas/{id}/stats).
	StatsVersion uint64 `json:"stats_version"`
	// B, Mu, Q are the policy inputs: the effective break-even
	// interval and the area's constrained pair (mu_B-, q_B+).
	B  float64 `json:"b"`
	Mu float64 `json:"mu"`
	Q  float64 `json:"q"`
	// Seed and Stream pin the threshold draw: the effective root seed
	// and the FNV-1a stream derived from (vehicle_id, area, b).
	Seed   uint64 `json:"seed"`
	Stream uint64 `json:"stream"`
	// Choice and ThresholdSec are the decision under audit.
	Choice       string  `json:"choice"`
	ThresholdSec float64 `json:"threshold_sec"`
	// Policy and PolicyVersion identify the engine that served the
	// decision. Empty/zero in records written before the engine
	// extraction; such records replay as the constrained default.
	Policy        string `json:"policy,omitempty"`
	PolicyVersion int    `json:"policy_version,omitempty"`
	// Schedule is the full action ladder of multi-state engines;
	// single-threshold decisions omit it.
	Schedule []ScheduleAction `json:"schedule,omitempty"`
	// Params are the resolved engine parameters the strategy was
	// prepared with; omitted for the default parameterization.
	Params map[string]float64 `json:"params,omitempty"`
	// Prediction is the request's forecast block, recorded verbatim so
	// an advised decision replays bit-identically through
	// DecideAdvised; omitted for prediction-free decisions.
	Prediction *PredictionBlock `json:"prediction,omitempty"`
	// DecisionID is the competitive-ratio ledger handle, recorded only
	// when the request opted into the ledger; `idlectl cr` joins it
	// against the settle records to rebuild the CR table forensically.
	DecisionID string `json:"decision_id,omitempty"`
	// CRBound is the serving strategy's published worst-case CR at
	// decision time (recorded with DecisionID; 0 = none published).
	CRBound float64 `json:"cr_bound,omitempty"`
}

// observeKind tags observe-stream audit records. Decide records carry
// no kind field (they predate the tag), so old logs keep verifying.
const observeKind = "observe"

// settleKind tags competitive-ratio ledger settle records.
const settleKind = "settle"

// SettleRecord is one line of the ledger audit stream: a decision
// joined to its realized stop. The realized cost pair is the pure
// function ledger.RealizedCost of the recorded (b, threshold, stop),
// so every record is independently re-derivable bit-for-bit — and the
// whole CR table can be rebuilt from the log alone (`idlectl cr`).
type SettleRecord struct {
	// Kind is always "settle".
	Kind     string `json:"kind"`
	TSUnixMS int64  `json:"ts_unix_ms"`
	// RequestID correlates with the observe that settled the decision;
	// DecisionID with the decide that issued it.
	RequestID  string `json:"request_id,omitempty"`
	DecisionID string `json:"decision_id"`
	// Area and Engine key the accumulator the outcome streamed into.
	Area   string `json:"area"`
	Engine string `json:"engine"`
	// B and ThresholdSec are the pending decision's inputs; StopSec the
	// realized stop length that settled it.
	B            float64 `json:"b"`
	ThresholdSec float64 `json:"threshold_sec"`
	StopSec      float64 `json:"stop_sec"`
	// OnlineCost and OptCost are the realized cost pair (replayed
	// through ledger.RealizedCost on verification).
	OnlineCost float64 `json:"online_cost"`
	OptCost    float64 `json:"opt_cost"`
	// Bound is the engine's published worst-case CR the outcome was
	// held against (0 = none); JoinMS the decide-to-observe latency.
	Bound  float64 `json:"bound,omitempty"`
	JoinMS int64   `json:"join_ms"`
}

// ObserveRecord is one line of the observation audit stream: the
// sufficient statistics BEFORE the observation, the observation, and
// the statistics AFTER it. The transition is the pure function
// adaptive.StepMoments, so every record is independently re-derivable
// bit-for-bit — and consecutive records of one area must chain (each
// record's prev sums equal the previous record's post sums), which
// VerifyAudit also checks. The CUSUM alarm flag is recorded evidence,
// not replayed (it depends on detector state across the whole stream).
type ObserveRecord struct {
	// Kind is always "observe"; its absence marks a decide record.
	Kind     string `json:"kind"`
	TSUnixMS int64  `json:"ts_unix_ms"`
	// RequestID correlates with trace spans; VehicleID is the optional
	// attribution from the request.
	RequestID string `json:"request_id,omitempty"`
	VehicleID string `json:"vehicle_id,omitempty"`
	Area      string `json:"area"`
	// Seq is the observation's 1-based position in the area's stream.
	// Seq 1 starts a fresh chain (boot, or the area's break-even
	// interval changed).
	Seq int64 `json:"seq"`
	// B and Forgetting are the transition parameters; StopSec the
	// observed stop length.
	B          float64 `json:"b"`
	Forgetting float64 `json:"forgetting"`
	StopSec    float64 `json:"stop_sec"`
	// PrevW/PrevMuSum/PrevQSum are the sufficient statistics before the
	// observation; W/MuSum/QSum after.
	PrevW     float64 `json:"prev_w"`
	PrevMuSum float64 `json:"prev_mu_sum"`
	PrevQSum  float64 `json:"prev_q_sum"`
	W         float64 `json:"w"`
	MuSum     float64 `json:"mu_sum"`
	QSum      float64 `json:"q_sum"`
	// Warm/Alarm/Retuned report the stream outcome; StatsVersion is the
	// area's statistics version after the observation (bumped when the
	// alarm re-derived the area's strategies).
	Warm         bool   `json:"warm"`
	Alarm        bool   `json:"alarm,omitempty"`
	Retuned      bool   `json:"retuned,omitempty"`
	StatsVersion uint64 `json:"stats_version"`
	// Mu and Q are the running estimates after the observation
	// (MuSum/W and QSum/W; denormalized for grep-ability and checked on
	// replay).
	Mu float64 `json:"mu"`
	Q  float64 `json:"q"`
}

// AuditVerifyReport summarizes one replay-verification pass.
type AuditVerifyReport struct {
	// Records counts decodable records; Matched of them replayed to a
	// bit-identical (choice, threshold) pair.
	Records    int `json:"records"`
	Matched    int `json:"matched"`
	Mismatched int `json:"mismatched"`
	// Corrupt counts undecodable lines with records after them (real
	// corruption, not a crash tail).
	Corrupt int `json:"corrupt"`
	// TruncatedTail reports a final partial line, the expected shape
	// of a crash or kill mid-write; it is skipped, not an error.
	TruncatedTail bool `json:"truncated_tail"`
	// Details carries the first few failure descriptions.
	Details []string `json:"details,omitempty"`
}

// OK reports whether every decodable record replayed identically.
func (r AuditVerifyReport) OK() bool { return r.Mismatched == 0 && r.Corrupt == 0 }

// String renders the operator summary.
func (r AuditVerifyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit verify: %d records, %d matched, %d mismatched, %d corrupt\n",
		r.Records, r.Matched, r.Mismatched, r.Corrupt)
	if r.TruncatedTail {
		fmt.Fprintf(&b, "  truncated final line skipped (crash-consistent tail)\n")
	}
	for _, d := range r.Details {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// maxVerifyDetails bounds the per-failure detail lines in the report.
const maxVerifyDetails = 10

// VerifyAudit replays every audit record through its recorded policy
// engine and compares the decision bit-for-bit: the stream derivation,
// the strategy selection, the threshold draw, and (for multi-state
// engines) every schedule rung must all reproduce. This turns engine
// determinism from a test property into an operator-checkable
// invariant over a recorded serving run, uniformly across engines.
// Records written by a different engine version than the registered
// one are reported as mismatches (version drift), not silently
// re-attested.
//
// A truncated final line (crash mid-append) is skipped and flagged;
// undecodable lines elsewhere count as corrupt. Only I/O failures
// return an error — verification failures are reported in the report.
func VerifyAudit(rd io.Reader) (AuditVerifyReport, error) {
	var rep AuditVerifyReport
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	badLine := ""
	hasBad := false
	lineNo := 0
	// lastObserve chains each area's observe records: a record whose seq
	// follows its predecessor must start from exactly the sums the
	// predecessor ended with.
	lastObserve := make(map[string]ObserveRecord)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if hasBad {
			// The previous undecodable line was not the tail.
			rep.Corrupt++
			rep.detail("line %d: undecodable record %.60q", lineNo-1, badLine)
			hasBad = false
		}
		// The log interleaves record kinds; peek the tag to dispatch.
		// Decide records predate the tag and carry none.
		var tag struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &tag); err != nil {
			badLine, hasBad = line, true
			continue
		}
		switch tag.Kind {
		case "":
			var rec AuditRecord
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				badLine, hasBad = line, true
				continue
			}
			rep.Records++
			if msg := replayRecord(rec); msg != "" {
				rep.Mismatched++
				rep.detail("line %d (%s/%s): %s", lineNo, rec.VehicleID, rec.Area, msg)
			} else {
				rep.Matched++
			}
		case observeKind:
			var rec ObserveRecord
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				badLine, hasBad = line, true
				continue
			}
			rep.Records++
			if msg := replayObserveRecord(rec, lastObserve); msg != "" {
				rep.Mismatched++
				rep.detail("line %d (observe %s#%d): %s", lineNo, rec.Area, rec.Seq, msg)
			} else {
				rep.Matched++
			}
			lastObserve[rec.Area] = rec
		case settleKind:
			var rec SettleRecord
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				badLine, hasBad = line, true
				continue
			}
			rep.Records++
			if msg := replaySettleRecord(rec); msg != "" {
				rep.Mismatched++
				rep.detail("line %d (settle %s): %s", lineNo, rec.DecisionID, msg)
			} else {
				rep.Matched++
			}
		default:
			rep.Records++
			rep.Mismatched++
			rep.detail("line %d: unknown record kind %q", lineNo, tag.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return rep, fmt.Errorf("server: audit verify: %w", err)
	}
	if hasBad {
		rep.TruncatedTail = true
	}
	return rep, nil
}

// detail appends one bounded failure description.
func (r *AuditVerifyReport) detail(format string, args ...any) {
	if len(r.Details) < maxVerifyDetails {
		r.Details = append(r.Details, fmt.Sprintf(format, args...))
	}
}

// replayObserveRecord re-derives one observe transition; empty string
// means identical. last carries each area's previous observe record
// for the chain-continuity check.
func replayObserveRecord(rec ObserveRecord, last map[string]ObserveRecord) string {
	if rec.Area == "" {
		return "missing area"
	}
	if rec.Seq < 1 {
		return fmt.Sprintf("sequence %d is not positive", rec.Seq)
	}
	if rec.B <= 0 || math.IsNaN(rec.B) || math.IsInf(rec.B, 0) {
		return fmt.Sprintf("break-even interval %v is not positive finite", rec.B)
	}
	if rec.Forgetting <= 0 || rec.Forgetting > 1 || math.IsNaN(rec.Forgetting) {
		return fmt.Sprintf("forgetting %v outside (0, 1]", rec.Forgetting)
	}
	if rec.StopSec < 0 || math.IsNaN(rec.StopSec) || math.IsInf(rec.StopSec, 0) {
		return fmt.Sprintf("stop length %v is not finite non-negative", rec.StopSec)
	}
	for _, v := range []float64{rec.PrevW, rec.PrevMuSum, rec.PrevQSum} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Sprintf("prior sums (%v, %v, %v) are not finite non-negative", rec.PrevW, rec.PrevMuSum, rec.PrevQSum)
		}
	}
	// The transition itself: the recorded successors must be exactly
	// what the pure step produces from the recorded priors.
	w2, mu2, q2 := adaptive.StepMoments(rec.PrevW, rec.PrevMuSum, rec.PrevQSum, rec.Forgetting, rec.B, rec.StopSec)
	if math.Float64bits(w2) != math.Float64bits(rec.W) ||
		math.Float64bits(mu2) != math.Float64bits(rec.MuSum) ||
		math.Float64bits(q2) != math.Float64bits(rec.QSum) {
		return fmt.Sprintf("sums (%v, %v, %v) replayed as (%v, %v, %v)",
			rec.W, rec.MuSum, rec.QSum, w2, mu2, q2)
	}
	// The denormalized estimates must be the recorded sums' quotients.
	if math.Float64bits(rec.Mu) != math.Float64bits(rec.MuSum/rec.W) ||
		math.Float64bits(rec.Q) != math.Float64bits(rec.QSum/rec.W) {
		return fmt.Sprintf("estimates (%v, %v) do not re-derive from sums (got %v, %v)",
			rec.Mu, rec.Q, rec.MuSum/rec.W, rec.QSum/rec.W)
	}
	if rec.Retuned && !rec.Alarm {
		return "retuned without an alarm"
	}
	if rec.Retuned && !rec.Warm {
		return "retuned before warmup"
	}
	// Chain continuity: when this record directly follows its area's
	// previous one (contiguous seq, same parameters), its priors must be
	// the predecessor's posteriors bit-for-bit. Seq 1 starts a fresh
	// chain; gaps (the bounded audit writer is lossy under pressure)
	// skip the check rather than fabricate one.
	prev, ok := last[rec.Area]
	if ok && rec.Seq == prev.Seq+1 && rec.B == prev.B && rec.Forgetting == prev.Forgetting {
		if math.Float64bits(rec.PrevW) != math.Float64bits(prev.W) ||
			math.Float64bits(rec.PrevMuSum) != math.Float64bits(prev.MuSum) ||
			math.Float64bits(rec.PrevQSum) != math.Float64bits(prev.QSum) {
			return fmt.Sprintf("chain break: priors (%v, %v, %v) but predecessor #%d ended at (%v, %v, %v)",
				rec.PrevW, rec.PrevMuSum, rec.PrevQSum, prev.Seq, prev.W, prev.MuSum, prev.QSum)
		}
		if rec.StatsVersion < prev.StatsVersion {
			return fmt.Sprintf("stats version %d regressed from %d", rec.StatsVersion, prev.StatsVersion)
		}
	}
	return ""
}

// replaySettleRecord re-derives one ledger settle; empty string means
// identical. The realized cost pair is a pure function of the recorded
// inputs, so replay needs no engine and no state.
func replaySettleRecord(rec SettleRecord) string {
	if rec.DecisionID == "" {
		return "missing decision id"
	}
	if rec.Area == "" || rec.Engine == "" {
		return "missing area or engine"
	}
	if rec.B <= 0 || math.IsNaN(rec.B) || math.IsInf(rec.B, 0) {
		return fmt.Sprintf("break-even interval %v is not positive finite", rec.B)
	}
	if rec.ThresholdSec < 0 || math.IsNaN(rec.ThresholdSec) || math.IsInf(rec.ThresholdSec, 0) {
		return fmt.Sprintf("threshold %v is not finite non-negative", rec.ThresholdSec)
	}
	if rec.StopSec < 0 || math.IsNaN(rec.StopSec) || math.IsInf(rec.StopSec, 0) {
		return fmt.Sprintf("stop length %v is not finite non-negative", rec.StopSec)
	}
	if rec.Bound < 0 || math.IsNaN(rec.Bound) || math.IsInf(rec.Bound, 0) {
		return fmt.Sprintf("bound %v is not finite non-negative", rec.Bound)
	}
	if rec.JoinMS < 0 {
		return fmt.Sprintf("join latency %d is negative", rec.JoinMS)
	}
	online, opt := ledger.RealizedCost(rec.B, rec.ThresholdSec, rec.StopSec)
	if math.Float64bits(online) != math.Float64bits(rec.OnlineCost) ||
		math.Float64bits(opt) != math.Float64bits(rec.OptCost) {
		return fmt.Sprintf("costs (%v, %v) replayed as (%v, %v)",
			rec.OnlineCost, rec.OptCost, online, opt)
	}
	return ""
}

// replayRecord re-derives one decision; empty string means identical.
func replayRecord(rec AuditRecord) string {
	stream := requestStream(rec.VehicleID, rec.Area, rec.B)
	if stream != rec.Stream {
		return fmt.Sprintf("stream %d does not re-derive (got %d)", rec.Stream, stream)
	}
	eng, err := policy.Lookup(rec.Policy)
	if err != nil {
		return fmt.Sprintf("engine %q is not replayable: %v", rec.Policy, err)
	}
	if rec.PolicyVersion != 0 && rec.PolicyVersion != eng.Version() {
		return fmt.Sprintf("engine %s recorded at v%d, registered is v%d (version drift)",
			eng.Name(), rec.PolicyVersion, eng.Version())
	}
	stats := policy.Stats{B: rec.B, Mu: rec.Mu, Q: rec.Q}
	var prep policy.Strategy
	if len(rec.Params) > 0 {
		pe, ok := eng.(policy.Parametric)
		if !ok {
			return fmt.Sprintf("engine %s accepts no params but record carries %v", eng.Name(), rec.Params)
		}
		resolved, rerr := policy.ResolveParams(pe, rec.Params)
		if rerr != nil {
			return fmt.Sprintf("recorded params invalid on replay: %v", rerr)
		}
		prep, err = pe.PrepareParams(stats, resolved)
	} else {
		prep, err = eng.Prepare(stats)
	}
	if err != nil {
		return fmt.Sprintf("recorded stats infeasible on replay: %v", err)
	}
	var dec policy.Decision
	if rec.Prediction != nil {
		p, perr := rec.Prediction.toPrediction()
		if perr != nil {
			return fmt.Sprintf("recorded prediction invalid on replay: %v", perr)
		}
		adv, ok := prep.(policy.Advised)
		if !ok {
			return fmt.Sprintf("engine %s does not accept predictions but record carries one", eng.Name())
		}
		dec = adv.DecideAdvised(parallel.RNG(rec.Seed, stream), p)
	} else {
		dec = prep.Decide(parallel.RNG(rec.Seed, stream))
	}
	if dec.Choice != rec.Choice {
		return fmt.Sprintf("choice %s replayed as %s", rec.Choice, dec.Choice)
	}
	if math.Float64bits(dec.ThresholdSec) != math.Float64bits(rec.ThresholdSec) {
		return fmt.Sprintf("threshold %v replayed as %v", rec.ThresholdSec, dec.ThresholdSec)
	}
	if len(dec.Schedule) != len(rec.Schedule) {
		return fmt.Sprintf("schedule of %d rungs replayed with %d", len(rec.Schedule), len(dec.Schedule))
	}
	for i, got := range dec.Schedule {
		want := rec.Schedule[i]
		if got.State != want.State || math.Float64bits(got.AtSec) != math.Float64bits(want.AtSec) {
			return fmt.Sprintf("schedule rung %d (%s at %v) replayed as %s at %v",
				i, want.State, want.AtSec, got.State, got.AtSec)
		}
	}
	return ""
}
