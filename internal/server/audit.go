package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"

	"idlereduce/internal/parallel"
	"idlereduce/internal/policy"
)

// AuditRecord is one line of the decision audit log: everything needed
// to re-derive the decision from scratch — the statistics the strategy
// was built from, the effective break-even interval, the policy engine
// and its version, and the RNG seed/stream pair — plus the decision
// itself. Because a decision is a pure function of (engine, b, mu, q,
// seed, stream), a recorded run can be replayed through the registered
// engine and checked bit-for-bit; see VerifyAudit.
type AuditRecord struct {
	// TSUnixMS is the decision wall-clock time (forensics only; replay
	// does not depend on it).
	TSUnixMS int64 `json:"ts_unix_ms"`
	// RequestID correlates the record with trace spans and the
	// X-Request-Id response header.
	RequestID string `json:"request_id,omitempty"`
	VehicleID string `json:"vehicle_id"`
	Area      string `json:"area"`
	// StatsVersion is the area's statistics version the decision was
	// served from (bumped by every PUT /v1/areas/{id}/stats).
	StatsVersion uint64 `json:"stats_version"`
	// B, Mu, Q are the policy inputs: the effective break-even
	// interval and the area's constrained pair (mu_B-, q_B+).
	B  float64 `json:"b"`
	Mu float64 `json:"mu"`
	Q  float64 `json:"q"`
	// Seed and Stream pin the threshold draw: the effective root seed
	// and the FNV-1a stream derived from (vehicle_id, area, b).
	Seed   uint64 `json:"seed"`
	Stream uint64 `json:"stream"`
	// Choice and ThresholdSec are the decision under audit.
	Choice       string  `json:"choice"`
	ThresholdSec float64 `json:"threshold_sec"`
	// Policy and PolicyVersion identify the engine that served the
	// decision. Empty/zero in records written before the engine
	// extraction; such records replay as the constrained default.
	Policy        string `json:"policy,omitempty"`
	PolicyVersion int    `json:"policy_version,omitempty"`
	// Schedule is the full action ladder of multi-state engines;
	// single-threshold decisions omit it.
	Schedule []ScheduleAction `json:"schedule,omitempty"`
}

// AuditVerifyReport summarizes one replay-verification pass.
type AuditVerifyReport struct {
	// Records counts decodable records; Matched of them replayed to a
	// bit-identical (choice, threshold) pair.
	Records    int `json:"records"`
	Matched    int `json:"matched"`
	Mismatched int `json:"mismatched"`
	// Corrupt counts undecodable lines with records after them (real
	// corruption, not a crash tail).
	Corrupt int `json:"corrupt"`
	// TruncatedTail reports a final partial line, the expected shape
	// of a crash or kill mid-write; it is skipped, not an error.
	TruncatedTail bool `json:"truncated_tail"`
	// Details carries the first few failure descriptions.
	Details []string `json:"details,omitempty"`
}

// OK reports whether every decodable record replayed identically.
func (r AuditVerifyReport) OK() bool { return r.Mismatched == 0 && r.Corrupt == 0 }

// String renders the operator summary.
func (r AuditVerifyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "audit verify: %d records, %d matched, %d mismatched, %d corrupt\n",
		r.Records, r.Matched, r.Mismatched, r.Corrupt)
	if r.TruncatedTail {
		fmt.Fprintf(&b, "  truncated final line skipped (crash-consistent tail)\n")
	}
	for _, d := range r.Details {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return b.String()
}

// maxVerifyDetails bounds the per-failure detail lines in the report.
const maxVerifyDetails = 10

// VerifyAudit replays every audit record through its recorded policy
// engine and compares the decision bit-for-bit: the stream derivation,
// the strategy selection, the threshold draw, and (for multi-state
// engines) every schedule rung must all reproduce. This turns engine
// determinism from a test property into an operator-checkable
// invariant over a recorded serving run, uniformly across engines.
// Records written by a different engine version than the registered
// one are reported as mismatches (version drift), not silently
// re-attested.
//
// A truncated final line (crash mid-append) is skipped and flagged;
// undecodable lines elsewhere count as corrupt. Only I/O failures
// return an error — verification failures are reported in the report.
func VerifyAudit(rd io.Reader) (AuditVerifyReport, error) {
	var rep AuditVerifyReport
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	badLine := ""
	hasBad := false
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if hasBad {
			// The previous undecodable line was not the tail.
			rep.Corrupt++
			rep.detail("line %d: undecodable record %.60q", lineNo-1, badLine)
			hasBad = false
		}
		var rec AuditRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			badLine, hasBad = line, true
			continue
		}
		rep.Records++
		if msg := replayRecord(rec); msg != "" {
			rep.Mismatched++
			rep.detail("line %d (%s/%s): %s", lineNo, rec.VehicleID, rec.Area, msg)
		} else {
			rep.Matched++
		}
	}
	if err := sc.Err(); err != nil {
		return rep, fmt.Errorf("server: audit verify: %w", err)
	}
	if hasBad {
		rep.TruncatedTail = true
	}
	return rep, nil
}

// detail appends one bounded failure description.
func (r *AuditVerifyReport) detail(format string, args ...any) {
	if len(r.Details) < maxVerifyDetails {
		r.Details = append(r.Details, fmt.Sprintf(format, args...))
	}
}

// replayRecord re-derives one decision; empty string means identical.
func replayRecord(rec AuditRecord) string {
	stream := requestStream(rec.VehicleID, rec.Area, rec.B)
	if stream != rec.Stream {
		return fmt.Sprintf("stream %d does not re-derive (got %d)", rec.Stream, stream)
	}
	eng, err := policy.Lookup(rec.Policy)
	if err != nil {
		return fmt.Sprintf("engine %q is not replayable: %v", rec.Policy, err)
	}
	if rec.PolicyVersion != 0 && rec.PolicyVersion != eng.Version() {
		return fmt.Sprintf("engine %s recorded at v%d, registered is v%d (version drift)",
			eng.Name(), rec.PolicyVersion, eng.Version())
	}
	prep, err := eng.Prepare(policy.Stats{B: rec.B, Mu: rec.Mu, Q: rec.Q})
	if err != nil {
		return fmt.Sprintf("recorded stats infeasible on replay: %v", err)
	}
	dec := prep.Decide(parallel.RNG(rec.Seed, stream))
	if dec.Choice != rec.Choice {
		return fmt.Sprintf("choice %s replayed as %s", rec.Choice, dec.Choice)
	}
	if math.Float64bits(dec.ThresholdSec) != math.Float64bits(rec.ThresholdSec) {
		return fmt.Sprintf("threshold %v replayed as %v", rec.ThresholdSec, dec.ThresholdSec)
	}
	if len(dec.Schedule) != len(rec.Schedule) {
		return fmt.Sprintf("schedule of %d rungs replayed with %d", len(rec.Schedule), len(dec.Schedule))
	}
	for i, got := range dec.Schedule {
		want := rec.Schedule[i]
		if got.State != want.State || math.Float64bits(got.AtSec) != math.Float64bits(want.AtSec) {
			return fmt.Sprintf("schedule rung %d (%s at %v) replayed as %s at %v",
				i, want.State, want.AtSec, got.State, got.AtSec)
		}
	}
	return ""
}
