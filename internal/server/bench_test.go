package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// benchDecide drives POST /v1/decide through the full middleware stack
// without a network socket, so the pair below isolates the cost of the
// forensics layer (tracing + audit) on the hot path.
func benchDecide(b *testing.B, cfg Config) {
	cfg.Areas = testAreas()
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	h := s.Handler()
	const body = `{"vehicle_id":"bench-1","area":"chicago"}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("POST", "/v1/decide", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		h.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d: %s", w.Code, w.Body.String())
		}
	}
	b.StopTimer()
	if err := s.closeLogs(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDecideObsOff is the baseline: no trace log, no audit log.
// The forensics code must cost only two nil checks here.
func BenchmarkDecideObsOff(b *testing.B) {
	benchDecide(b, Config{})
}

// BenchmarkDecideObsOn measures the same path with tracing and audit
// enabled, writing to io.Discard so the sink itself is free and the
// measured delta is the instrumentation (span bookkeeping + record
// marshal + bounded enqueue).
func BenchmarkDecideObsOn(b *testing.B) {
	benchDecide(b, Config{TraceLog: io.Discard, AuditLog: io.Discard})
}
