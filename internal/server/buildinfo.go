package server

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// buildInfo is the process-constant part of GET /v1/buildinfo,
// resolved once from the binary's embedded module metadata.
type buildInfo struct {
	Version   string
	GoVersion string
	Revision  string
	VCSTime   string
	Modified  bool
}

var (
	buildInfoOnce   sync.Once
	cachedBuildInfo buildInfo
)

// readBuildInfo resolves the binary's version labels. Binaries built
// outside a module (rare) fall back to runtime.Version only.
func readBuildInfo() buildInfo {
	buildInfoOnce.Do(func() {
		cachedBuildInfo = buildInfo{Version: "unknown", GoVersion: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" {
			cachedBuildInfo.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				cachedBuildInfo.Revision = s.Value
			case "vcs.time":
				cachedBuildInfo.VCSTime = s.Value
			case "vcs.modified":
				cachedBuildInfo.Modified = s.Value == "true"
			}
		}
	})
	return cachedBuildInfo
}
