package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
)

// Fuzz targets for the policy-generic serving path. Both run in CI's
// fuzz-smoke job (make fuzz-smoke auto-discovers Fuzz* targets): the
// first throws arbitrary wire requests at the shared handler, the
// second throws arbitrary area statistics at the multislope engine.

// fuzzDecide posts one DecideRequest at the handler and returns the
// status and body bytes.
func fuzzDecide(t *testing.T, h http.Handler, req DecideRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("POST", "/v1/decide", bytes.NewReader(body))
	r.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w.Code, w.Body.Bytes()
}

// FuzzDecideRequestPolicy: no combination of vehicle id, area, custom
// break-even, seed, and policy spec may crash the handler or produce a
// 5xx; every accepted request must be reproducible byte-for-byte.
func FuzzDecideRequestPolicy(f *testing.F) {
	s, err := New(Config{Areas: conformanceAreas()})
	if err != nil {
		f.Fatal(err)
	}
	h := s.Handler()

	f.Add("truck-1", "chicago", 0.0, uint64(0), "")
	f.Add("truck-1", "chicago", 28.0, uint64(7), "constrained")
	f.Add("truck-2", "nrandia", 0.0, uint64(42), "multislope3")
	f.Add("truck-2", "atlanta", 60.0, uint64(1), "multislope3@v1")
	f.Add("", "mars", -1.0, uint64(0), "bad spec")
	f.Add("v", "chicago", 9.0, uint64(3), "multislope3")
	f.Add("v", "chicago", math.MaxFloat64, uint64(3), "constrained@v9")

	f.Fuzz(func(t *testing.T, vehicleID, area string, b float64, seed uint64, spec string) {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return // not representable in a JSON request body
		}
		req := DecideRequest{VehicleID: vehicleID, Area: area, B: b, Seed: seed, Policy: spec}
		status, body := fuzzDecide(t, h, req)
		if status >= 500 {
			t.Fatalf("5xx for %+v: %d %s", req, status, body)
		}
		if status != http.StatusOK {
			// Rejections must still be the structured error envelope.
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error.Code == "" {
				t.Fatalf("unstructured error for %+v: %d %s", req, status, body)
			}
			return
		}
		again, body2 := fuzzDecide(t, h, req)
		if again != http.StatusOK || !bytes.Equal(body, body2) {
			t.Fatalf("accepted request not reproducible: %+v\n%s\n%s", req, body, body2)
		}
		var dec DecideResponse
		if err := json.Unmarshal(body, &dec); err != nil {
			t.Fatalf("200 body not a decision: %s", body)
		}
		if dec.Choice == "" || math.IsNaN(dec.ThresholdSec) || math.IsInf(dec.ThresholdSec, 0) {
			t.Fatalf("degenerate decision for %+v: %s", req, body)
		}
	})
}

// FuzzMultislopeServe: any statistics triple a daemon would accept at
// boot must either serve multislope3 decisions (B > 10) or reject them
// with a clean 400 — never a 5xx, never a non-finite schedule.
func FuzzMultislopeServe(f *testing.F) {
	f.Add(28.0, 8.0, 0.13, uint64(7))
	f.Add(28.0, 4.0, 0.25, uint64(42))
	f.Add(10.0, 1.0, 0.1, uint64(1))
	f.Add(10.5, 9.0, 0.0, uint64(3))
	f.Add(1000.0, 0.0, 1.0, uint64(9))
	f.Add(11.0, 0.0, 0.0, uint64(0))

	f.Fuzz(func(t *testing.T, b, mu, q float64, seed uint64) {
		area := AreaState{ID: "fuzzarea", B: b, Mu: mu, Q: q}
		if math.IsNaN(b) || math.IsInf(b, 0) {
			return
		}
		if area.Validate() != nil {
			return // not bootable for any engine; out of scope
		}
		s, err := New(Config{Areas: []AreaState{area}})
		if err != nil {
			t.Fatalf("constrained-feasible area failed boot: %v", err)
		}
		h := s.Handler()
		req := DecideRequest{VehicleID: "f-1", Area: "fuzzarea", Seed: seed, Policy: "multislope3"}
		status, body := fuzzDecide(t, h, req)
		switch {
		case status == http.StatusOK:
			if b <= 10 {
				t.Fatalf("multislope served B=%v <= 10: %s", b, body)
			}
		case status == http.StatusBadRequest:
			if b > 10 {
				t.Fatalf("multislope rejected feasible stats (b=%v mu=%v q=%v): %s", b, mu, q, body)
			}
			if errCode(t, body) != "invalid_policy_params" {
				t.Fatalf("wrong rejection class: %s", body)
			}
			return
		default:
			t.Fatalf("status %d for b=%v mu=%v q=%v: %s", status, b, mu, q, body)
		}

		_, body2 := fuzzDecide(t, h, req)
		if !bytes.Equal(body, body2) {
			t.Fatalf("multislope decision not reproducible:\n%s\n%s", body, body2)
		}
		var dec DecideResponse
		if err := json.Unmarshal(body, &dec); err != nil {
			t.Fatal(err)
		}
		if dec.Policy != "multislope3@v1" {
			t.Fatalf("decision missing engine spec: %s", body)
		}
		if len(dec.Schedule) != 2 {
			t.Fatalf("three-state decision with %d rungs: %s", len(dec.Schedule), body)
		}
		last := dec.Schedule[len(dec.Schedule)-1]
		if dec.ThresholdSec != last.AtSec {
			t.Fatalf("threshold %v != final rung %v: %s", dec.ThresholdSec, last.AtSec, body)
		}
		for _, a := range dec.Schedule {
			if a.State == "" || math.IsNaN(a.AtSec) || math.IsInf(a.AtSec, 0) || a.AtSec < 0 {
				t.Fatalf("degenerate rung %+v: %s", a, body)
			}
		}
	})
}
