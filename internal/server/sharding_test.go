package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"idlereduce/internal/skirental"
)

func TestShardCountRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{-3, DefaultShards}, {0, DefaultShards},
		{1, 1}, {2, 2}, {3, 4}, {4, 4}, {5, 8}, {16, 16}, {17, 32}, {1000, 1024},
	}
	for _, tc := range cases {
		if got := shardCount(tc.in); got != tc.want {
			t.Errorf("shardCount(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestShardedCachePlacement(t *testing.T) {
	areas := SyntheticAreaStates(512, 28)
	c, err := NewShardedCache(areas, nil, 16)
	if err != nil {
		t.Fatal(err)
	}
	if c.Shards() != 16 {
		t.Fatalf("Shards() = %d, want 16", c.Shards())
	}
	// Every area is reachable, lands on a stable shard, and the FNV
	// placement actually spreads areas rather than piling on one shard.
	used := make(map[*shard]int)
	for _, a := range areas {
		rec, ok := c.Area(a.ID)
		if !ok || rec.state.ID != a.ID {
			t.Fatalf("area %s not served", a.ID)
		}
		sh := c.shardFor(a.ID)
		if sh != c.shardFor(a.ID) {
			t.Fatalf("area %s moved shards between lookups", a.ID)
		}
		used[sh]++
	}
	if len(used) < 8 {
		t.Errorf("512 areas landed on only %d of 16 shards", len(used))
	}
}

// TestShardUpdateIsolated: a stats update swaps exactly one area's
// snapshot. Other shards keep serving their old pointers untouched, so
// a retune cannot stall or perturb unrelated traffic.
func TestShardUpdateIsolated(t *testing.T) {
	areas := SyntheticAreaStates(64, 28)
	c, err := NewShardedCache(areas, nil, 8)
	if err != nil {
		t.Fatal(err)
	}
	target := areas[0].ID
	own := c.shardFor(target)
	before := make(map[*shard]*snapshot, len(c.shards))
	for _, sh := range c.shards {
		before[sh] = sh.snap.Load()
	}
	rec, _ := c.Area(target)
	if _, err := c.Update(target, 0,
		skirental.Stats{MuBMinus: rec.state.Mu + 0.5, QBPlus: rec.state.Q}); err != nil {
		t.Fatal(err)
	}
	for _, sh := range c.shards {
		swapped := sh.snap.Load() != before[sh]
		if sh == own && !swapped {
			t.Error("owning shard's snapshot was not swapped")
		}
		if sh != own && swapped {
			t.Errorf("update of %s swapped an unrelated shard's snapshot", target)
		}
	}
	if got, _ := c.Area(target); got.version != rec.version+1 {
		t.Fatalf("target version %d, want %d", got.version, rec.version+1)
	}
}

// TestDecideDeterministicAcrossShards is satellite determinism for the
// sharded cache: the shard count is a pure capacity knob, invisible on
// the wire. Every (workers, shards) combination must serve byte-equal
// replies, including under concurrent clients.
func TestDecideDeterministicAcrossShards(t *testing.T) {
	areas := append(testAreas(),
		AreaState{ID: "nrandia", B: 28, Mu: 4, Q: 0.25})
	areas = append(areas, SyntheticAreaStates(61, 28)...)

	singles := []string{
		`{"vehicle_id":"s-1","area":"chicago","seed":11}`,
		`{"vehicle_id":"s-2","area":"syn-000037","seed":12}`,
		`{"vehicle_id":"s-3","area":"nrandia","seed":13}`,
		`{"vehicle_id":"s-4","area":"chicago","b":55,"seed":14}`,
	}
	batch := `{"seed":11,"requests":[
		{"vehicle_id":"b-1","area":"nrandia"},
		{"vehicle_id":"b-2","area":"syn-000007"},
		{"vehicle_id":"b-3","area":"syn-000042","b":33},
		{"vehicle_id":"b-4","area":"atlanta"}]}`

	var wantSingles [][]byte
	var wantBatch []byte
	first := true
	for _, workers := range []int{1, 4, 8} {
		for _, shards := range []int{1, 4, 16} {
			name := fmt.Sprintf("workers=%d/shards=%d", workers, shards)
			t.Run(name, func(t *testing.T) {
				s, err := New(Config{Areas: areas, Workers: workers, Shards: shards})
				if err != nil {
					t.Fatal(err)
				}
				if got := s.cache.Shards(); got != shards {
					t.Fatalf("cache built %d shards, want %d", got, shards)
				}
				ts := httptest.NewServer(s.Handler())
				defer ts.Close()

				// Concurrent clients first, so the byte-compare below runs
				// against a cache whose shards have already served
				// interleaved traffic.
				var wg sync.WaitGroup
				for cl := 0; cl < 4; cl++ {
					wg.Add(1)
					go func(cl int) {
						defer wg.Done()
						for r := 0; r < 8; r++ {
							body := fmt.Sprintf(`{"vehicle_id":"cc-%d","area":"syn-%06d","seed":9}`, cl, (cl*13+r)%61)
							doJSON(t, "POST", ts.URL+"/v1/decide", body, nil)
						}
					}(cl)
				}
				wg.Wait()

				for i, body := range singles {
					status, raw := doJSON(t, "POST", ts.URL+"/v1/decide", body, nil)
					if status != http.StatusOK {
						t.Fatalf("single %d status %d: %s", i, status, raw)
					}
					if first {
						wantSingles = append(wantSingles, raw)
					} else if !bytes.Equal(raw, wantSingles[i]) {
						t.Errorf("single %d diverged at %s:\n%s\n%s", i, name, raw, wantSingles[i])
					}
				}
				status, raw := doJSON(t, "POST", ts.URL+"/v1/decide/batch", batch, nil)
				if status != http.StatusOK {
					t.Fatalf("batch status %d: %s", status, raw)
				}
				if first {
					wantBatch = raw
					first = false
				} else if !bytes.Equal(raw, wantBatch) {
					t.Errorf("batch diverged at %s:\n%s\n%s", name, raw, wantBatch)
				}
			})
		}
	}
}

// TestPerShardHitMetrics: decide traffic increments the owning shard's
// hit counter, so operators can see skewed shards.
func TestPerShardHitMetrics(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.Shards = 4 })
	for i := 0; i < 6; i++ {
		if status, _ := doJSON(t, "POST", ts.URL+"/v1/decide",
			`{"vehicle_id":"m","area":"chicago"}`, nil); status != http.StatusOK {
			t.Fatal("decide failed")
		}
	}
	sh := s.cache.shardFor("chicago")
	snap := s.rec.Snapshot()
	if got, _ := snap.CounterValue(sh.hitMetric); got != 6 {
		t.Errorf("%s = %v, want 6", sh.hitMetric, got)
	}
	if got, _ := snap.CounterValue("decide_cache_hits_total"); got != 6 {
		t.Errorf("global hit counter = %v, want 6", got)
	}
}
