package server

import (
	"net/http"

	"idlereduce/internal/ledger"
)

// CRResponse is the GET /v1/cr body: the competitive-ratio ledger's
// per-{area, engine} table plus the join-plane counters. Each row
// carries the empirical CR with its variance band and the engine's
// published worst-case bound, so a dashboard (or `idled top`) can
// render every engine against its theoretical guarantee.
type CRResponse struct {
	// Rows is the CR table, sorted by (area, engine).
	Rows []ledger.Row `json:"rows"`
	// Pending counts decisions still awaiting their outcome.
	Pending int `json:"pending"`
	// Counters are the ledger's monotone event counts (issued, settled,
	// orphaned, expired, breaches).
	Counters ledger.Counters `json:"counters"`
}

// handleCR serves GET /v1/cr. Like /v1/history it bypasses the
// in-flight limiter, so the guarantee watchdog keeps rendering while
// decision load is shed.
func (s *Server) handleCR(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, CRResponse{
		Rows:     s.ledger.Rows(),
		Pending:  s.ledger.PendingCount(),
		Counters: s.ledger.Counters(),
	})
}
