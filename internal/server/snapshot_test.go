package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"idlereduce/internal/adaptive"
)

func testStatePlane() StatePlane {
	return StatePlane{
		TakenUnixMS: 1700000000000,
		Areas: []AreaSnapshot{
			{AreaState: AreaState{ID: "atlanta", B: 28, Mu: 11, Q: 0.05}, Version: 1},
			{
				AreaState: AreaState{ID: "chicago", B: 28, Mu: 8, Q: 0.13},
				Version:   3,
				Tracker:   adaptive.TrackerState{Seen: 4, WSum: 4, MuSum: 24, QSum: 0},
			},
		},
	}
}

func TestSnapshotEncodeDecodeRoundtrip(t *testing.T) {
	plane := testStatePlane()
	data, err := EncodeSnapshot(plane)
	if err != nil {
		t.Fatal(err)
	}
	again, err := EncodeSnapshot(plane)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("snapshot encoding is not deterministic")
	}
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TakenUnixMS != plane.TakenUnixMS || len(got.Areas) != len(plane.Areas) {
		t.Fatalf("roundtrip lost shape: %+v", got)
	}
	for i := range plane.Areas {
		if got.Areas[i] != plane.Areas[i] {
			t.Errorf("area %d roundtripped to %+v, want %+v", i, got.Areas[i], plane.Areas[i])
		}
	}
}

func TestEncodeSnapshotRejectsInvalidPlanes(t *testing.T) {
	bad := []StatePlane{
		{Areas: []AreaSnapshot{{AreaState: AreaState{ID: "x", B: -1, Mu: 1, Q: 0.1}, Version: 1}}},
		{Areas: []AreaSnapshot{{AreaState: AreaState{ID: "x", B: 28, Mu: 8, Q: 0.1}}}}, // version 0
		{Areas: []AreaSnapshot{
			{AreaState: AreaState{ID: "x", B: 28, Mu: 8, Q: 0.1}, Version: 1},
			{AreaState: AreaState{ID: "x", B: 28, Mu: 8, Q: 0.1}, Version: 1},
		}},
		{Areas: []AreaSnapshot{{
			AreaState: AreaState{ID: "x", B: 28, Mu: 8, Q: 0.1}, Version: 1,
			Tracker: adaptive.TrackerState{Seen: -1},
		}}},
	}
	for i, p := range bad {
		if _, err := EncodeSnapshot(p); err == nil {
			t.Errorf("case %d: invalid plane encoded", i)
		}
	}
}

// TestDecodeSnapshotFailsClosed drives every corruption mode through
// the decoder: each must reject the whole snapshot, never panic, never
// return partial state.
func TestDecodeSnapshotFailsClosed(t *testing.T) {
	data, err := EncodeSnapshot(testStatePlane())
	if err != nil {
		t.Fatal(err)
	}
	// A bit flip inside the payload breaks the checksum; a flip inside
	// the checksum field breaks the comparison the other way.
	flipPayload := append([]byte(nil), data...)
	at := bytes.Index(flipPayload, []byte(`"payload"`)) + 20
	flipPayload[at] ^= 0x01

	cases := map[string][]byte{
		"empty":           {},
		"garbage":         []byte("not json at all"),
		"truncated":       data[:len(data)/2],
		"trailing":        append(append([]byte(nil), data...), []byte(`{"x":1}`)...),
		"bit_flip":        flipPayload,
		"wrong_format":    bytes.Replace(data, []byte(`"idled-state"`), []byte(`"other-state"`), 1),
		"future_schema":   bytes.Replace(data, []byte(`"schema_version":1`), []byte(`"schema_version":2`), 1),
		"zero_schema":     bytes.Replace(data, []byte(`"schema_version":1`), []byte(`"schema_version":0`), 1),
		"bad_checksum":    bytes.Replace(data, []byte(`"checksum":"sha256:`), []byte(`"checksum":"sha256:00`), 1),
		"unknown_field":   bytes.Replace(data, []byte(`"format"`), []byte(`"extra":1,"format"`), 1),
		"empty_payload":   []byte(`{"format":"idled-state","schema_version":1,"checksum":"sha256:x"}`),
		"null_everything": []byte(`null`),
	}
	for name, body := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := DecodeSnapshot(body); err == nil {
				t.Errorf("corrupt snapshot decoded cleanly")
			}
		})
	}
	// Sanity: the untouched bytes still decode.
	if _, err := DecodeSnapshot(data); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
}

// buildDriftedServer boots a server, streams a drifting observation
// load into chicago until a retune lands, and returns it with its
// audit sink.
func buildDriftedServer(t *testing.T) (*Server, string, *syncBuffer) {
	t.Helper()
	audit := &syncBuffer{}
	s, ts := newTestServer(t, func(c *Config) {
		c.Retune = retuneTestConfig()
		c.AuditLog = audit
	})
	driveSteady(t, ts.URL, "chicago", 20)
	alarm := driveDrift(t, ts.URL, "chicago", 60)
	if !alarm.Retuned {
		t.Fatalf("setup retune did not land: %+v", alarm)
	}
	return s, ts.URL, audit
}

// decideProbes is a fixed request set that exercises cache hits, a
// custom-B miss, and both test areas.
var decideProbes = []string{
	`{"vehicle_id":"p-1","area":"chicago","seed":21}`,
	`{"vehicle_id":"p-2","area":"chicago","b":44,"seed":22}`,
	`{"vehicle_id":"p-3","area":"atlanta","seed":23}`,
}

func collectDecides(t *testing.T, url string) [][]byte {
	t.Helper()
	var out [][]byte
	for i, body := range decideProbes {
		status, raw := doJSON(t, "POST", url+"/v1/decide", body, nil)
		if status != http.StatusOK {
			t.Fatalf("probe %d: status %d: %s", i, status, raw)
		}
		out = append(out, raw)
	}
	return out
}

// TestSnapshotRestoreBootEquivalence: a daemon booted from a snapshot
// (idled serve -restore path, Config.Restore) is indistinguishable from
// the donor — byte-identical decisions, same versions, and the
// observation streams continue where they left off.
func TestSnapshotRestoreBootEquivalence(t *testing.T) {
	s, url, _ := buildDriftedServer(t)
	data, err := EncodeSnapshot(s.StatePlane())
	if err != nil {
		t.Fatal(err)
	}
	plane, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}

	restored, ts2 := newTestServer(t, func(c *Config) {
		c.Areas = nil
		c.Restore = &plane
		c.Retune = retuneTestConfig()
	})
	want := collectDecides(t, url)
	got := collectDecides(t, ts2.URL)
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Errorf("probe %d diverged after restore boot:\ndonor    %s\nrestored %s", i, want[i], got[i])
		}
	}
	donorArea := areaInfo(t, url, "chicago")
	restArea := areaInfo(t, ts2.URL, "chicago")
	if donorArea != restArea {
		t.Errorf("area listing diverged:\ndonor    %+v\nrestored %+v", donorArea, restArea)
	}

	// The observation stream continues: both daemons see the same next
	// observation and must produce bit-identical updates.
	var donorNext, restNext ObserveResponse
	if status, _ := doJSON(t, "POST", url+"/v1/observe", `{"area":"chicago","stop_sec":9}`, &donorNext); status != http.StatusOK {
		t.Fatal("donor observe failed")
	}
	if status, _ := doJSON(t, "POST", ts2.URL+"/v1/observe", `{"area":"chicago","stop_sec":9}`, &restNext); status != http.StatusOK {
		t.Fatal("restored observe failed")
	}
	if donorNext != restNext {
		t.Errorf("observe stream diverged across restore:\ndonor    %+v\nrestored %+v", donorNext, restNext)
	}
	if restNext.Seq < 2 {
		t.Errorf("restored stream restarted at seq %d instead of continuing", restNext.Seq)
	}
	_ = restored
}

// TestSnapshotLiveRestoreEquivalence: POST /v1/snapshot swaps a
// running daemon's whole state plane onto the donor's, byte-for-byte.
func TestSnapshotLiveRestoreEquivalence(t *testing.T) {
	s, url, _ := buildDriftedServer(t)
	var raw []byte
	{
		resp, err := http.Get(url + "/v1/snapshot")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := new(bytes.Buffer)
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("snapshot get: %d: %s", resp.StatusCode, buf.Bytes())
		}
		raw = buf.Bytes()
	}
	if _, err := DecodeSnapshot(raw); err != nil {
		t.Fatalf("served snapshot does not verify: %v", err)
	}

	// The target starts from the same boot config but has seen none of
	// the donor's observations or retunes.
	_, ts3 := newTestServer(t, func(c *Config) { c.Retune = retuneTestConfig() })
	var rr SnapshotRestoreResponse
	status, body := doJSON(t, "POST", ts3.URL+"/v1/snapshot", string(raw), &rr)
	if status != http.StatusOK {
		t.Fatalf("restore: status %d: %s", status, body)
	}
	if rr.Restored != 2 || rr.SchemaVersion != SnapshotSchemaVersion {
		t.Fatalf("restore reply %+v", rr)
	}
	want := collectDecides(t, url)
	got := collectDecides(t, ts3.URL)
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Errorf("probe %d diverged after live restore:\ndonor    %s\nrestored %s", i, want[i], got[i])
		}
	}
	_ = s
}

func TestSnapshotRestoreRejectsUnknownAreas(t *testing.T) {
	plane := testStatePlane()
	plane.Areas = append(plane.Areas, AreaSnapshot{
		AreaState: AreaState{ID: "zeeland", B: 28, Mu: 9, Q: 0.1}, Version: 2,
	})
	data, err := EncodeSnapshot(plane)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, nil)
	before := areaInfo(t, ts.URL, "chicago")
	status, raw := doJSON(t, "POST", ts.URL+"/v1/snapshot", string(data), nil)
	if status != http.StatusUnprocessableEntity || errCode(t, raw) != "bad_snapshot" {
		t.Fatalf("unknown-area restore: status %d: %s", status, raw)
	}
	// All-or-nothing: the known areas were not partially applied.
	if after := areaInfo(t, ts.URL, "chicago"); after != before {
		t.Errorf("rejected restore still mutated chicago: %+v -> %+v", before, after)
	}
}

func TestSnapshotRestoreRejectsCorruptUploads(t *testing.T) {
	_, ts := newTestServer(t, nil)
	data, err := EncodeSnapshot(testStatePlane())
	if err != nil {
		t.Fatal(err)
	}
	tampered := bytes.Replace(data, []byte(`"chicago"`), []byte(`"CHICAGO"`), 1)
	for name, body := range map[string]string{
		"garbage":  `{"format":"idled-state"`,
		"tampered": string(tampered),
	} {
		status, raw := doJSON(t, "POST", ts.URL+"/v1/snapshot", body, nil)
		if status != http.StatusBadRequest || errCode(t, raw) != "bad_snapshot" {
			t.Errorf("%s: status %d: %s", name, status, raw)
		}
	}
}

// TestAuditVerifyAcrossRestoreBoundary: the decision audit trail stays
// replayable when a log spans a snapshot/restore — the restored
// daemon's first observe record chains onto the donor's last, and
// decide records keep verifying with the restored stats version.
func TestAuditVerifyAcrossRestoreBoundary(t *testing.T) {
	audit := &syncBuffer{}
	s, ts := newTestServer(t, func(c *Config) {
		c.Retune = retuneTestConfig()
		c.AuditLog = audit
	})
	driveSteady(t, ts.URL, "chicago", 20)
	alarm := driveDrift(t, ts.URL, "chicago", 60)
	if !alarm.Retuned {
		t.Fatal("setup retune did not land")
	}
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/decide",
		`{"vehicle_id":"pre","area":"chicago","seed":5}`, nil); status != http.StatusOK {
		t.Fatal("pre-restore decide failed")
	}
	data, err := EncodeSnapshot(s.StatePlane())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.auditW.Flush(); err != nil {
		t.Fatal(err)
	}

	plane, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	// The successor appends to the same audit trail (same file in a
	// real deployment).
	s2, ts2 := newTestServer(t, func(c *Config) {
		c.Areas = nil
		c.Restore = &plane
		c.Retune = retuneTestConfig()
		c.AuditLog = audit
	})
	var next ObserveResponse
	if status, _ := doJSON(t, "POST", ts2.URL+"/v1/observe", `{"area":"chicago","stop_sec":8}`, &next); status != http.StatusOK {
		t.Fatal("post-restore observe failed")
	}
	if status, _ := doJSON(t, "POST", ts2.URL+"/v1/decide",
		`{"vehicle_id":"post","area":"chicago","seed":5}`, nil); status != http.StatusOK {
		t.Fatal("post-restore decide failed")
	}
	if err := s2.auditW.Flush(); err != nil {
		t.Fatal(err)
	}

	log := audit.String()
	rep, err := VerifyAudit(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("audit replay across restore boundary failed: %+v", rep)
	}

	// The boundary is covered, not skipped: the successor's first
	// observe record continues the donor's chain, and tampering with
	// its inherited priors must be caught.
	lines := strings.Split(strings.TrimSpace(log), "\n")
	var boundary ObserveRecord
	boundaryLine := -1
	for i, line := range lines {
		var rec ObserveRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			continue
		}
		if rec.Kind == observeKind && rec.Seq == next.Seq {
			boundary, boundaryLine = rec, i
		}
	}
	if boundaryLine < 0 {
		t.Fatal("post-restore observe record not found in log")
	}
	boundary.PrevW *= 1.0000001
	tamperedLine, err := json.Marshal(boundary)
	if err != nil {
		t.Fatal(err)
	}
	tampered := append([]string{}, lines...)
	tampered[boundaryLine] = string(tamperedLine)
	rep, err = VerifyAudit(strings.NewReader(strings.Join(tampered, "\n") + "\n"))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Error("tampered cross-boundary priors still verified")
	}
}

// TestSnapshotSelfRestoreIsIdempotent: restoring a daemon's own
// snapshot into itself changes nothing.
func TestSnapshotSelfRestoreIsIdempotent(t *testing.T) {
	s, url, _ := buildDriftedServer(t)
	want := collectDecides(t, url)
	data, err := EncodeSnapshot(s.StatePlane())
	if err != nil {
		t.Fatal(err)
	}
	if status, raw := doJSON(t, "POST", url+"/v1/snapshot", string(data), nil); status != http.StatusOK {
		t.Fatalf("self restore: status %d: %s", status, raw)
	}
	got := collectDecides(t, url)
	for i := range want {
		if !bytes.Equal(want[i], got[i]) {
			t.Errorf("probe %d changed after self-restore:\n%s\n%s", i, want[i], got[i])
		}
	}
}
