package server

import (
	"context"
	"testing"
)

// TestLoadMixedObserveDecide drives the mixed decide/observe scenario
// at a small scale: the report must account for both traffic kinds,
// the mid-run drift must push the retune loop end-to-end (alarms and
// re-derived strategies), and the controlled miss schedule must show
// up in the cache hit-rate.
func TestLoadMixedObserveDecide(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.Retune = retuneTestConfig() })
	report, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:         ts.URL,
		Clients:         4,
		Requests:        60,
		Batch:           8,
		Seed:            3,
		ObserveFraction: 0.5,
		MissFraction:    0.1,
		HotAreas:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 || report.Overloaded != 0 {
		t.Fatalf("mixed load errors=%d overloaded=%d", report.Errors, report.Overloaded)
	}
	if report.Observations == 0 {
		t.Fatal("mixed load streamed no observations")
	}
	if report.Decisions == 0 {
		t.Fatal("mixed load made no decisions")
	}
	if report.Alarms == 0 || report.Retunes == 0 {
		t.Errorf("drift did not close the loop: alarms=%d retunes=%d", report.Alarms, report.Retunes)
	}
	if report.CacheHitRate <= 0 || report.CacheHitRate >= 1 {
		t.Errorf("hit rate %v outside (0, 1) despite a 10%% miss schedule", report.CacheHitRate)
	}
	if report.DecideP99 <= 0 || report.ObserveP99 <= 0 {
		t.Errorf("per-kind tails missing: decide %v observe %v", report.DecideP99, report.ObserveP99)
	}

	// The server side agrees: retunes bumped versions beyond 1, and the
	// observation counters moved.
	snap := s.Recorder().Snapshot()
	if got, _ := snap.CounterValue("observe_total"); got != report.Observations {
		t.Errorf("server observe_total %d, report %d", got, report.Observations)
	}
	if got, _ := snap.CounterValue("retune_total"); got != report.Retunes {
		t.Errorf("server retune_total %d, report %d", got, report.Retunes)
	}
	bumped := false
	for _, rec := range s.cache.Areas() {
		if rec.version > 1 {
			bumped = true
			break
		}
	}
	if !bumped {
		t.Error("no area version moved past 1 despite reported retunes")
	}

	// Determinism of the generated request stream: the same options on
	// a fresh server produce the same traffic mix.
	_, ts2 := newTestServer(t, func(c *Config) { c.Retune = retuneTestConfig() })
	report2, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:         ts2.URL,
		Clients:         4,
		Requests:        60,
		Batch:           8,
		Seed:            3,
		ObserveFraction: 0.5,
		MissFraction:    0.1,
		HotAreas:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Alarm counts may shift by an observation or two with client
	// interleaving; the traffic mix itself is a pure function of the
	// options.
	if report2.Observations != report.Observations || report2.Decisions != report.Decisions ||
		report2.CacheHitRate != report.CacheHitRate {
		t.Errorf("mixed load not reproducible:\n%+v\n%+v", report, report2)
	}
	if report2.Alarms == 0 || report2.Retunes == 0 {
		t.Errorf("second run did not close the loop: alarms=%d retunes=%d", report2.Alarms, report2.Retunes)
	}
}

// TestLoadSettleFraction drives the competitive-ratio join leg: settle
// slots must land real settles, the deliberately corrupted ids must be
// rejected fail-closed without counting as request errors, and the
// server's ledger must agree with the client-side report.
func TestLoadSettleFraction(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.Retune = retuneTestConfig() })
	report, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:        ts.URL,
		Clients:        4,
		Requests:       60,
		Batch:          8,
		Seed:           3,
		SettleFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Errors != 0 || report.Overloaded != 0 {
		t.Fatalf("settle load errors=%d overloaded=%d", report.Errors, report.Overloaded)
	}
	if report.Settled == 0 {
		t.Fatal("settle fraction joined no decisions")
	}
	if report.Orphans == 0 {
		t.Fatal("no orphaned ids exercised the fail-closed path")
	}
	// Every settle the client counted landed in the server's ledger,
	// and every corrupted id was rejected there.
	c := s.ledger.Counters()
	if int64(c.Settled) != report.Settled {
		t.Errorf("server ledger settled %d, report %d", c.Settled, report.Settled)
	}
	if int64(c.Orphaned) < report.Orphans {
		t.Errorf("server ledger orphaned %d, report sent %d corrupted ids", c.Orphaned, report.Orphans)
	}
	// The join feeds the CR table.
	if rows := s.ledger.Rows(); len(rows) == 0 {
		t.Error("settle load left the CR table empty")
	}

	// Same options, fresh server: the settle leg is deterministic too.
	_, ts2 := newTestServer(t, func(c *Config) { c.Retune = retuneTestConfig() })
	report2, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:        ts2.URL,
		Clients:        4,
		Requests:       60,
		Batch:          8,
		Seed:           3,
		SettleFraction: 0.3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report2.Settled != report.Settled || report2.Orphans != report.Orphans {
		t.Errorf("settle load not reproducible: settled %d/%d orphans %d/%d",
			report.Settled, report2.Settled, report.Orphans, report2.Orphans)
	}
}
