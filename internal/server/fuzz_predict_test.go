package server

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"testing"
)

// FuzzPredictionRequest: no combination of prediction block (stop
// forecast, confidence, moment pair), lambda, and engine spec may
// crash the handler or produce a 5xx. Rejections carry a structured
// error code; accepted requests reproduce byte-for-byte, so a
// prediction can never leak nondeterminism into the decision path.
func FuzzPredictionRequest(f *testing.F) {
	s, err := New(Config{Areas: conformanceAreas()})
	if err != nil {
		f.Fatal(err)
	}
	h := s.Handler()

	// hasX flags make every optional wire field reachable: the fuzzer
	// must explore confidence-absent, moment-absent, and params-absent
	// shapes, not just fully-populated blocks.
	f.Add("v-1", "chicago", "softml", 120.0, 0.9, true, 120.0, 15000.0, true, 0.5, true, uint64(7))
	f.Add("v-1", "nrandia", "softml@v1", 3.0, 1.0, false, 0.0, 0.0, false, 0.0, true, uint64(1))
	f.Add("v-2", "atlanta", "distadvice", 30.0, 0.5, true, 30.0, 1100.0, true, 1.0, true, uint64(9))
	f.Add("v-2", "chicago", "distadvice@v1", 9.0, 0.0, true, 0.0, 0.0, false, 0.25, false, uint64(0))
	f.Add("v-3", "chicago", "constrained", 9.0, 0.5, true, 9.0, 100.0, true, 0.5, true, uint64(3))
	f.Add("v-3", "mars", "multislope3", -4.0, 2.0, true, 10.0, 50.0, true, -1.0, true, uint64(5))
	f.Add("", "chicago", "softml", 1e308, -0.5, true, -1.0, -2.0, true, 99.0, true, uint64(11))

	f.Fuzz(func(t *testing.T, vehicleID, area, spec string,
		stop, conf float64, hasConf bool, m1, m2 float64, hasMoments bool,
		lambda float64, hasLambda bool, seed uint64) {
		// NaN/Inf are not representable in a JSON body; the wire layer
		// can only ever see finite numbers (json.Marshal would fail).
		for _, v := range []float64{stop, conf, m1, m2, lambda} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
		}
		pred := &PredictionBlock{PredictedStopSec: stop}
		if hasConf {
			pred.Confidence = &conf
		}
		if hasMoments {
			pred.M1, pred.M2 = &m1, &m2
		}
		req := DecideRequest{VehicleID: vehicleID, Area: area, Seed: seed, Policy: spec, Prediction: pred}
		if hasLambda {
			req.Params = map[string]float64{"lambda": lambda}
		}
		status, body := fuzzDecide(t, h, req)
		if status >= 500 {
			t.Fatalf("5xx for %+v: %d %s", req, status, body)
		}
		if status != http.StatusOK {
			var er ErrorResponse
			if err := json.Unmarshal(body, &er); err != nil || er.Error.Code == "" {
				t.Fatalf("unstructured error for %+v: %d %s", req, status, body)
			}
			return
		}
		again, body2 := fuzzDecide(t, h, req)
		if again != http.StatusOK || !bytes.Equal(body, body2) {
			t.Fatalf("accepted advised request not reproducible: %+v\n%s\n%s", req, body, body2)
		}
		var dec DecideResponse
		if err := json.Unmarshal(body, &dec); err != nil {
			t.Fatalf("200 body not a decision: %s", body)
		}
		if dec.Choice == "" || math.IsNaN(dec.ThresholdSec) || math.IsInf(dec.ThresholdSec, 0) ||
			dec.ThresholdSec < 0 || math.IsNaN(dec.WorstCaseCost) || math.IsInf(dec.WorstCaseCost, 0) {
			t.Fatalf("degenerate advised decision for %+v: %s", req, body)
		}
	})
}
