package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"idlereduce/internal/obs"
)

// errTrailingBody rejects request bodies with data after the JSON value.
var errTrailingBody = errors.New("request body contains trailing data")

// statusWriter captures the status code written by a handler so the
// middleware can label its metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// requestIDHeader is the correlation header: propagated when the
// client sends one, minted otherwise, and always echoed on the reply.
const requestIDHeader = "X-Request-Id"

// ledgerHeader opts a decide request into the competitive-ratio ledger
// without touching the body (any non-empty value). Equivalent to the
// request's ledger field; on a batch it opts in every item.
const ledgerHeader = "X-Ledger"

// instrument wraps a handler with the serving middleware stack:
//
//   - bounded in-flight limiter (when limited): a full server answers
//     429 immediately instead of queueing without bound;
//   - in-flight gauge http_inflight_requests;
//   - request-id assignment/propagation (X-Request-Id, echoed on the
//     reply and carried through the context for audit records);
//   - a trace span per request when Config.TraceLog is set, recording
//     route, status and latency plus whatever the handler annotates;
//   - per-request context deadline (RequestTimeout);
//   - request counter http_requests_total{route,code} and latency
//     histogram http_request_ms{route};
//   - panic capture: a panicking handler becomes a 500 with a
//     structured body and an http_panics_total count, never a dropped
//     connection for sibling requests.
//
// healthz and metrics pass limited=false so probes and scrapes keep
// working while the server sheds decision load.
func (s *Server) instrument(route string, limited bool, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reqID := r.Header.Get(requestIDHeader)
		if reqID == "" {
			reqID = s.newRequestID()
		}
		w.Header().Set(requestIDHeader, reqID)
		if limited {
			select {
			case s.inflight <- struct{}{}:
				defer func() { <-s.inflight }()
			default:
				s.rec.Add(obs.L("http_requests_total", "route", route, "code", "429"), 1)
				s.rec.Add("http_overload_total", 1)
				writeError(w, http.StatusTooManyRequests, "overloaded",
					"server at max in-flight requests; retry with backoff")
				return
			}
		}
		s.rec.Set("http_inflight_requests", float64(len(s.inflight)))

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		ctx = obs.WithRequestID(ctx, reqID)
		var span *obs.Span
		ctx, span = s.tracer.Start(ctx, "http_request", reqID)
		span.Set("route", route)
		sw := &statusWriter{ResponseWriter: w}
		t0 := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				s.rec.Add("http_panics_total", 1)
				s.rec.Event("server_panic")
				debug.PrintStack()
				if sw.status == 0 {
					writeError(sw, http.StatusInternalServerError, "internal", "internal server error")
				}
			}
			code := sw.status
			if code == 0 {
				code = http.StatusOK
			}
			s.rec.Add(obs.L("http_requests_total", "route", route, "code", strconv.Itoa(code)), 1)
			s.rec.Observe(obs.L("http_request_ms", "route", route),
				float64(time.Since(t0))/float64(time.Millisecond))
			span.Set("code", code)
			span.End()
		}()
		h(sw, r.WithContext(ctx))
	})
}

// writeJSON writes v with the given status as a JSON body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes the structured error envelope.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, ErrorResponse{Error: APIError{Code: code, Message: msg, Status: status}})
}

// decodeJSON strictly decodes a request body into v: unknown fields
// and trailing garbage are errors.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errTrailingBody
	}
	return nil
}
