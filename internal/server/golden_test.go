package server

import (
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden re-records the wire fixtures from the current server.
// Run `go test ./internal/server -run TestGoldenWireCompat -update-golden`
// ONLY to bless a deliberate wire change; the committed fixtures were
// recorded from the pre-policy-engine server and guard the refactor's
// byte-identity promise.
var updateGolden = flag.Bool("update-golden", false, "re-record the golden wire fixtures")

// goldenCase is one recorded request/response pair.
type goldenCase struct {
	Name string `json:"name"`
	Path string `json:"path"`
	// Request is the raw JSON body sent.
	Request json.RawMessage `json:"request"`
	// Status and Response are the recorded reply; Response is the exact
	// byte sequence of the body (writeJSON appends a trailing newline,
	// which is part of the contract).
	Status   int    `json:"status"`
	Response string `json:"response"`
}

// goldenAreas is the fixed area configuration the fixtures were
// recorded against: the two standard test areas plus one deep in the
// N-Rand region so randomized threshold draws are pinned too.
func goldenAreas() []AreaState {
	return append(testAreas(), AreaState{ID: "nrandia", B: 28, Mu: 4, Q: 0.25})
}

// goldenRequests enumerates the guarded wire surface: default-B cache
// hits on every vertex family, custom-B derivation, explicit seeds,
// error replies, and a mixed batch (including an embedded per-item
// error).
func goldenRequests() []goldenCase {
	return []goldenCase{
		{Name: "decide_default_b", Path: "/v1/decide",
			Request: json.RawMessage(`{"vehicle_id":"gold-1","area":"chicago"}`)},
		{Name: "decide_atlanta", Path: "/v1/decide",
			Request: json.RawMessage(`{"vehicle_id":"gold-2","area":"atlanta"}`)},
		{Name: "decide_nrand_draw", Path: "/v1/decide",
			Request: json.RawMessage(`{"vehicle_id":"gold-3","area":"nrandia"}`)},
		{Name: "decide_nrand_seeded", Path: "/v1/decide",
			Request: json.RawMessage(`{"vehicle_id":"gold-3","area":"nrandia","seed":777}`)},
		{Name: "decide_custom_b", Path: "/v1/decide",
			Request: json.RawMessage(`{"vehicle_id":"gold-4","area":"chicago","b":45}`)},
		{Name: "decide_case_insensitive_area", Path: "/v1/decide",
			Request: json.RawMessage(`{"vehicle_id":"gold-5","area":"Chicago"}`)},
		{Name: "decide_unknown_area", Path: "/v1/decide",
			Request: json.RawMessage(`{"vehicle_id":"gold-6","area":"nowhere"}`)},
		{Name: "decide_missing_vehicle", Path: "/v1/decide",
			Request: json.RawMessage(`{"area":"chicago"}`)},
		{Name: "decide_bad_b", Path: "/v1/decide",
			Request: json.RawMessage(`{"vehicle_id":"gold-7","area":"chicago","b":-3}`)},
		{Name: "decide_unknown_field", Path: "/v1/decide",
			Request: json.RawMessage(`{"vehicle_id":"gold-8","area":"chicago","bogus":1}`)},
		{Name: "batch_mixed", Path: "/v1/decide/batch",
			Request: json.RawMessage(`{"seed":11,"requests":[` +
				`{"vehicle_id":"gb-1","area":"nrandia"},` +
				`{"vehicle_id":"gb-2","area":"chicago"},` +
				`{"vehicle_id":"gb-3","area":"nowhere"},` +
				`{"vehicle_id":"gb-4","area":"atlanta","b":45},` +
				`{"vehicle_id":"gb-5","area":"nrandia","seed":99}]}`)},
		{Name: "batch_empty", Path: "/v1/decide/batch",
			Request: json.RawMessage(`{"requests":[]}`)},
	}
}

const goldenPath = "testdata/golden_wire.json"

// TestGoldenWireCompat replays the recorded /v1/decide and
// /v1/decide/batch fixtures against the current server and requires
// byte-identical replies. This pins the wire format, the cache-hit
// semantics and every threshold draw: a refactor that changes field
// order, derives RNG streams differently, or alters cache keys in a
// way that shifts draws fails here first.
func TestGoldenWireCompat(t *testing.T) {
	s, err := New(Config{Areas: goldenAreas()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := goldenRequests()
	if *updateGolden {
		for i := range cases {
			status, raw := doJSON(t, http.MethodPost, ts.URL+cases[i].Path, string(cases[i].Request), nil)
			cases[i].Status = status
			cases[i].Response = string(raw)
		}
		data, err := json.MarshalIndent(cases, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("recorded %d fixtures to %s", len(cases), goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read fixtures (re-record with -update-golden): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	wantByName := make(map[string]goldenCase, len(want))
	for _, c := range want {
		wantByName[c.Name] = c
	}
	for _, c := range cases {
		t.Run(c.Name, func(t *testing.T) {
			rec, ok := wantByName[c.Name]
			if !ok {
				t.Fatalf("fixture %q missing from %s (re-record with -update-golden)", c.Name, goldenPath)
			}
			status, raw := doJSON(t, http.MethodPost, ts.URL+c.Path, string(c.Request), nil)
			if status != rec.Status {
				t.Fatalf("status %d, recorded %d: %s", status, rec.Status, raw)
			}
			if string(raw) != rec.Response {
				t.Errorf("response drifted from the recorded wire bytes:\n got: %s\nwant: %s", raw, rec.Response)
			}
		})
	}
}
