package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"idlereduce/internal/policy"
)

// The prediction serving contract: advised engines accept an optional
// prediction block plus params, degrade bit-identically to the
// constrained fallback at lambda=0, validate every malformed block
// into a stable error class, and write audit records that replay.

// TestSoftMLZeroLambdaMatchesConstrainedWire pins the robustness
// extreme on the wire: softml@v1 with lambda=0 must produce the same
// decision fields as constrained@v1 for the same (vehicle, area, seed)
// — with and without a prediction riding along — including in the
// N-Rand region where the threshold is drawn from the fallback's
// density.
func TestSoftMLZeroLambdaMatchesConstrainedWire(t *testing.T) {
	_, ts := newTestServerAreas(t, conformanceAreas())
	preds := []string{
		``,
		`,"prediction":{"predicted_stop_s":500}`,
		`,"prediction":{"predicted_stop_s":3,"confidence":0.9}`,
		`,"prediction":{"predicted_stop_s":40,"confidence":1,"m1":40,"m2":1700}`,
	}
	for _, area := range []string{"chicago", "atlanta", "nrandia"} {
		for seed := uint64(1); seed <= 20; seed++ {
			var want DecideResponse
			base := fmt.Sprintf(`{"vehicle_id":"zl","area":%q,"seed":%d`, area, seed)
			if status, raw := doJSON(t, "POST", ts.URL+"/v1/decide",
				base+`,"policy":"constrained@v1"}`, &want); status != http.StatusOK {
				t.Fatalf("constrained %s/%d: %d %s", area, seed, status, raw)
			}
			for pi, p := range preds {
				var got DecideResponse
				body := base + `,"policy":"softml@v1","params":{"lambda":0}` + p + `}`
				if status, raw := doJSON(t, "POST", ts.URL+"/v1/decide", body, &got); status != http.StatusOK {
					t.Fatalf("softml %s/%d/%d: %d %s", area, seed, pi, status, raw)
				}
				if got.Choice != want.Choice ||
					math.Float64bits(got.ThresholdSec) != math.Float64bits(want.ThresholdSec) ||
					math.Float64bits(got.WorstCaseCost) != math.Float64bits(want.WorstCaseCost) ||
					math.Float64bits(got.WorstCaseCR) != math.Float64bits(want.WorstCaseCR) {
					t.Errorf("%s seed=%d pred=%d: softml lambda=0 %+v != constrained %+v", area, seed, pi, got, want)
				}
			}
		}
	}
}

// TestPredictionValidationTable: every way a prediction or params
// block can be wrong maps to one stable 4xx class, on the single
// endpoint and embedded per-slot in a batch.
func TestPredictionValidationTable(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"negative predicted stop", `{"vehicle_id":"v","area":"chicago","policy":"softml","prediction":{"predicted_stop_s":-4}}`, 400, "invalid_prediction"},
		{"confidence below range", `{"vehicle_id":"v","area":"chicago","policy":"softml","prediction":{"predicted_stop_s":9,"confidence":-0.1}}`, 400, "invalid_prediction"},
		{"confidence above range", `{"vehicle_id":"v","area":"chicago","policy":"softml","prediction":{"predicted_stop_s":9,"confidence":1.5}}`, 400, "invalid_prediction"},
		{"m1 without m2", `{"vehicle_id":"v","area":"chicago","policy":"distadvice","prediction":{"predicted_stop_s":9,"m1":9}}`, 400, "invalid_prediction"},
		{"m2 without m1", `{"vehicle_id":"v","area":"chicago","policy":"distadvice","prediction":{"predicted_stop_s":9,"m2":100}}`, 400, "invalid_prediction"},
		{"m2 below m1 squared", `{"vehicle_id":"v","area":"chicago","policy":"distadvice","prediction":{"predicted_stop_s":9,"m1":10,"m2":50}}`, 400, "invalid_prediction"},
		{"negative m1", `{"vehicle_id":"v","area":"chicago","policy":"distadvice","prediction":{"predicted_stop_s":9,"m1":-1,"m2":50}}`, 400, "invalid_prediction"},
		{"prediction to constrained", `{"vehicle_id":"v","area":"chicago","prediction":{"predicted_stop_s":9}}`, 400, "invalid_prediction"},
		{"prediction to multislope", `{"vehicle_id":"v","area":"chicago","policy":"multislope3","prediction":{"predicted_stop_s":9}}`, 400, "invalid_prediction"},
		{"params to constrained", `{"vehicle_id":"v","area":"chicago","policy":"constrained","params":{"lambda":0.5}}`, 400, "invalid_policy_params"},
		{"params to multislope", `{"vehicle_id":"v","area":"chicago","policy":"multislope3","params":{"lambda":0.5}}`, 400, "invalid_policy_params"},
		{"unknown param", `{"vehicle_id":"v","area":"chicago","policy":"softml","params":{"gamma":0.5}}`, 400, "invalid_policy_params"},
		{"lambda above range", `{"vehicle_id":"v","area":"chicago","policy":"softml","params":{"lambda":2}}`, 400, "invalid_policy_params"},
		{"lambda below range", `{"vehicle_id":"v","area":"distadvice","policy":"softml","params":{"lambda":-0.2}}`, 400, "invalid_policy_params"},
		{"valid softml prediction", `{"vehicle_id":"v","area":"chicago","policy":"softml","prediction":{"predicted_stop_s":9}}`, 200, ""},
		{"valid distadvice moments", `{"vehicle_id":"v","area":"chicago","policy":"distadvice","params":{"lambda":1},"prediction":{"predicted_stop_s":9,"m1":9,"m2":100}}`, 200, ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			status, raw := doJSON(t, "POST", ts.URL+"/v1/decide", c.body, nil)
			if status != c.status {
				t.Fatalf("status %d, want %d: %s", status, c.status, raw)
			}
			if c.code != "" && errCode(t, raw) != c.code {
				t.Errorf("code %s, want %s", errCode(t, raw), c.code)
			}
			// The same failure embeds per-slot in a batch without
			// failing the envelope.
			var br BatchDecideResponse
			status, raw = doJSON(t, "POST", ts.URL+"/v1/decide/batch",
				fmt.Sprintf(`{"requests":[%s]}`, c.body), &br)
			if status != http.StatusOK {
				t.Fatalf("batch status %d: %s", status, raw)
			}
			if c.code == "" {
				if br.Results[0].Decision == nil || br.Results[0].Error != nil {
					t.Errorf("batch slot rejected a valid request: %s", raw)
				}
			} else if br.Results[0].Error == nil || br.Results[0].Error.Code != c.code {
				t.Errorf("batch slot error %+v, want code %s", br.Results[0].Error, c.code)
			}
		})
	}
}

// advisedPosts is a traffic mix exercising both advised engines with
// params, predictions, moment pairs, custom B, and the fallback path.
func advisedPosts() []string {
	return []string{
		`{"vehicle_id":"a-1","area":"chicago","policy":"softml","prediction":{"predicted_stop_s":120}}`,
		`{"vehicle_id":"a-2","area":"nrandia","seed":5,"policy":"softml@v1","params":{"lambda":0.8},"prediction":{"predicted_stop_s":4,"confidence":0.7}}`,
		`{"vehicle_id":"a-3","area":"chicago","b":60,"policy":"softml","params":{"lambda":1},"prediction":{"predicted_stop_s":10}}`,
		`{"vehicle_id":"a-4","area":"atlanta","policy":"distadvice","prediction":{"predicted_stop_s":30,"m1":30,"m2":1100}}`,
		`{"vehicle_id":"a-5","area":"nrandia","seed":9,"policy":"distadvice@v1","params":{"lambda":0.3},"prediction":{"predicted_stop_s":14,"confidence":0.5,"m1":14,"m2":260}}`,
		`{"vehicle_id":"a-6","area":"nrandia","seed":11,"policy":"softml","params":{"lambda":0.5}}`,
	}
}

// TestAdvisedAuditReplaysClean: serving advised traffic — params,
// predictions, custom B, batches — writes audit records that
// VerifyAudit replays bit-identically, and the records carry the
// resolved params and the prediction block verbatim.
func TestAdvisedAuditReplaysClean(t *testing.T) {
	audit := &syncBuffer{}
	s, err := New(Config{Areas: conformanceAreas(), AuditLog: audit})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i, body := range advisedPosts() {
		if status, raw := doJSON(t, "POST", ts.URL+"/v1/decide", body, nil); status != http.StatusOK {
			t.Fatalf("post %d: %d %s", i, status, raw)
		}
	}
	batch := fmt.Sprintf(`{"seed":7,"requests":[%s]}`, strings.Join(advisedPosts()[:3], ","))
	if status, raw := doJSON(t, "POST", ts.URL+"/v1/decide/batch", batch, nil); status != http.StatusOK {
		t.Fatalf("batch: %d %s", status, raw)
	}
	s.auditW.Flush()

	recs := decodeAuditLines(t, audit.String())
	if len(recs) != len(advisedPosts())+3 {
		t.Fatalf("got %d audit records, want %d", len(recs), len(advisedPosts())+3)
	}
	withPred, withParams := 0, 0
	for _, rec := range recs {
		if rec.Prediction != nil {
			withPred++
		}
		if rec.Params != nil {
			withParams++
			if _, ok := rec.Params["lambda"]; !ok {
				t.Errorf("record %s params %v missing resolved lambda", rec.VehicleID, rec.Params)
			}
		}
	}
	// 5 of 6 singles and all 3 batch slots carried a prediction;
	// explicit params rode on 4 singles and 2 batch slots (defaults are
	// implied by the engine version and not re-recorded).
	if withPred != 8 || withParams != 6 {
		t.Errorf("prediction on %d records (want 8), resolved params on %d of %d (want 6)", withPred, withParams, len(recs))
	}

	rep, err := VerifyAudit(strings.NewReader(audit.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Matched != rep.Records {
		t.Fatalf("advised audit replay: %s\n%v", rep.String(), rep.Details)
	}
}

// TestVerifyAuditDetectsAdvisedTampering: mutating a record's lambda
// or its recorded prediction changes the replayed decision, so
// verification must flag it.
func TestVerifyAuditDetectsAdvisedTampering(t *testing.T) {
	audit := &syncBuffer{}
	s, err := New(Config{Areas: conformanceAreas(), AuditLog: audit})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// lambda=1 with a short forecast pins the advice threshold to 0;
	// any tamper below flips the decision.
	if status, raw := doJSON(t, "POST", ts.URL+"/v1/decide",
		`{"vehicle_id":"t-1","area":"chicago","policy":"softml","params":{"lambda":1},"prediction":{"predicted_stop_s":500}}`, nil); status != http.StatusOK {
		t.Fatalf("decide: %d %s", status, raw)
	}
	s.auditW.Flush()
	line := strings.TrimSpace(audit.String())

	tampers := map[string]func(*AuditRecord){
		"lambda":     func(r *AuditRecord) { r.Params["lambda"] = 0 },
		"prediction": func(r *AuditRecord) { r.Prediction.PredictedStopSec = 2 },
		"drop pred":  func(r *AuditRecord) { r.Prediction = nil },
	}
	for name, mutate := range tampers {
		t.Run(name, func(t *testing.T) {
			var rec AuditRecord
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatal(err)
			}
			mutate(&rec)
			raw, err := json.Marshal(rec)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := VerifyAudit(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			if rep.Mismatched != 1 {
				t.Errorf("tampered record verified clean: %s", rep.String())
			}
		})
	}
}

// TestAdvisedDeterminism: advised requests — params, predictions, and
// batches — serve byte-identical bodies across worker counts,
// restarts, and a snapshot-restored replica.
func TestAdvisedDeterminism(t *testing.T) {
	batch := fmt.Sprintf(`{"seed":7,"requests":[%s]}`, strings.Join(advisedPosts(), ","))
	collect := func(t *testing.T, url string) [][]byte {
		t.Helper()
		var got [][]byte
		for i, body := range advisedPosts() {
			status, raw := doJSON(t, "POST", url+"/v1/decide", body, nil)
			if status != http.StatusOK {
				t.Fatalf("single %d status %d: %s", i, status, raw)
			}
			got = append(got, raw)
		}
		status, raw := doJSON(t, "POST", url+"/v1/decide/batch", batch, nil)
		if status != http.StatusOK {
			t.Fatalf("batch status %d: %s", status, raw)
		}
		return append(got, raw)
	}

	var ref [][]byte
	var donor *Server
	for _, workers := range []int{1, 4, 8} {
		for restart := 0; restart < 2; restart++ {
			s, err := New(Config{Areas: conformanceAreas(), Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			got := collect(t, ts.URL)
			ts.Close()
			if ref == nil {
				ref, donor = got, s
				continue
			}
			for i := range got {
				if !bytes.Equal(got[i], ref[i]) {
					t.Errorf("workers=%d restart=%d reply %d diverged:\n%s\n%s",
						workers, restart, i, got[i], ref[i])
				}
			}
		}
	}

	// A replica booted from the donor's snapshot serves the same bytes.
	data, err := EncodeSnapshot(donor.StatePlane())
	if err != nil {
		t.Fatal(err)
	}
	plane, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	_, ts2 := newTestServer(t, func(c *Config) {
		c.Areas = nil
		c.Restore = &plane
	})
	got := collect(t, ts2.URL)
	for i := range got {
		if !bytes.Equal(got[i], ref[i]) {
			t.Errorf("snapshot replica reply %d diverged:\n%s\n%s", i, got[i], ref[i])
		}
	}
}

// TestPoliciesEndpointShowsParams: advised engines publish their
// accepted params (name, doc, default, range) in the engine listing;
// param-free engines omit the block.
func TestPoliciesEndpointShowsParams(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var resp PoliciesResponse
	if status, raw := doJSON(t, "GET", ts.URL+"/v1/policies", "", &resp); status != 200 {
		t.Fatalf("policies: %d %s", status, raw)
	}
	byName := map[string]PolicyInfo{}
	for _, p := range resp.Policies {
		byName[p.Name] = p
	}
	for _, name := range []string{policy.SoftMLEngine, policy.DistAdviceEngine} {
		e, ok := byName[name]
		if !ok {
			t.Fatalf("engine %s missing from listing", name)
		}
		if len(e.Params) != 1 {
			t.Fatalf("%s params %+v, want exactly lambda", name, e.Params)
		}
		p := e.Params[0]
		if p.Name != "lambda" || p.Default != 0.5 || p.Min != 0 || p.Max != 1 || p.Doc == "" {
			t.Errorf("%s lambda spec %+v", name, p)
		}
	}
	if c := byName[policy.DefaultEngine]; len(c.Params) != 0 {
		t.Errorf("constrained published params %+v, want none", c.Params)
	}
}
