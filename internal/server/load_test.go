package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestLoadHarnessReportMatchesMetrics runs the loadtest harness against
// a live server and cross-checks its report against the server's own
// /metrics: request counts, cache hits and latency histogram counts
// must all equal the load driven.
func TestLoadHarnessReportMatchesMetrics(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.Workers = 4 })
	const clients, requests, batch = 8, 10, 5
	report, err := RunLoad(context.Background(), LoadOptions{
		BaseURL:  ts.URL,
		Clients:  clients,
		Requests: requests,
		Batch:    batch,
		Seed:     3,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantReq := int64(clients * requests)
	wantDec := wantReq * batch
	if report.Requests != wantReq || report.Decisions != wantDec {
		t.Errorf("report %d req / %d decisions, want %d / %d",
			report.Requests, report.Decisions, wantReq, wantDec)
	}
	if report.Errors != 0 || report.Overloaded != 0 {
		t.Errorf("report errors=%d overloaded=%d", report.Errors, report.Overloaded)
	}
	if report.RequestQPS <= 0 || report.P99 <= 0 || report.P50 > report.Max {
		t.Errorf("report stats %+v", report)
	}
	if report.String() == "" {
		t.Error("empty text report")
	}

	snap := s.Recorder().Snapshot()
	if got, _ := snap.CounterValue(`http_requests_total{route="batch",code="200"}`); got != wantReq {
		t.Errorf("server saw %d batch requests, want %d", got, wantReq)
	}
	if got, _ := snap.CounterValue("decide_cache_hits_total"); got != wantDec {
		t.Errorf("server cache hits %d, want %d (every decision uses the area default B)", got, wantDec)
	}
	if got, _ := snap.CounterValue("batch_decisions_total"); got != wantDec {
		t.Errorf("batch_decisions_total %d, want %d", got, wantDec)
	}
	h, ok := snap.HistogramValue(`http_request_ms{route="batch"}`)
	if !ok || h.Count != uint64(wantReq) {
		t.Errorf("server latency histogram count %d, want %d", h.Count, wantReq)
	}
}

// TestLoadDiscoversAreas exercises the harness's GET /v1/areas
// discovery path and bad-target errors.
func TestLoadDiscoversAreas(t *testing.T) {
	_, ts := newTestServer(t, nil)
	report, err := RunLoad(context.Background(), LoadOptions{
		BaseURL: ts.URL, Clients: 2, Requests: 2, Batch: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.Decisions != 8 || report.Errors != 0 {
		t.Errorf("report %+v", report)
	}
	if _, err := RunLoad(context.Background(), LoadOptions{}); err == nil {
		t.Error("missing base URL accepted")
	}
	if _, err := RunLoad(context.Background(), LoadOptions{BaseURL: "http://127.0.0.1:1"}); err == nil {
		t.Error("unreachable target accepted")
	}
}

// TestThousandConcurrentInflightBatches is the scale acceptance test:
// 1000 batch decisions simultaneously in flight, each held inside the
// decide handler until all 1000 have arrived, then released together.
// Run under -race this exercises the full concurrent path: limiter,
// cache reads, pool fan-out, metrics writes.
func TestThousandConcurrentInflightBatches(t *testing.T) {
	const n = 1000
	var entered atomic.Int64
	release := make(chan struct{})
	var releaseOnce sync.Once
	var barrierTimeout atomic.Bool
	hook := func() {
		if entered.Add(1) == n {
			releaseOnce.Do(func() { close(release) })
		}
		select {
		case <-release:
		case <-time.After(60 * time.Second):
			barrierTimeout.Store(true)
			releaseOnce.Do(func() { close(release) })
		}
	}
	s, err := New(Config{
		Areas:        testAreas(),
		MaxInflight:  n,
		Workers:      2,
		ReadTimeout:  90 * time.Second,
		WriteTimeout: 90 * time.Second,
		testHook:     hook,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := &http.Client{Timeout: 90 * time.Second}

	var wg sync.WaitGroup
	statuses := make([]int, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"seed":5,"requests":[{"vehicle_id":"v-%d","area":"chicago"}]}`, i)
			resp, err := client.Post(ts.URL+"/v1/decide/batch", "application/json",
				bytes.NewReader([]byte(body)))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			statuses[i] = resp.StatusCode
			var batch BatchDecideResponse
			if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
				errs[i] = err
				return
			}
			if len(batch.Results) != 1 || batch.Results[0].Decision == nil {
				errs[i] = fmt.Errorf("bad batch reply %+v", batch)
			}
		}(i)
	}
	wg.Wait()
	if barrierTimeout.Load() {
		t.Fatalf("barrier timed out with %d/%d in flight", entered.Load(), n)
	}
	for i := range statuses {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, statuses[i])
		}
	}
	if got := entered.Load(); got != n {
		t.Errorf("handler entries %d, want %d", got, n)
	}

	snap := s.Recorder().Snapshot()
	if got, _ := snap.CounterValue(`http_requests_total{route="batch",code="200"}`); got != n {
		t.Errorf("batch 200s %d, want %d", got, n)
	}
	if got, _ := snap.CounterValue("decide_cache_hits_total"); got != n {
		t.Errorf("cache hits %d, want %d", got, n)
	}
	if got, _ := snap.CounterValue("http_overload_total"); got != 0 {
		t.Errorf("unexpected load shedding: %d", got)
	}
	h, _ := snap.HistogramValue(`http_request_ms{route="batch"}`)
	if h.Count != n {
		t.Errorf("latency observations %d, want %d", h.Count, n)
	}
}
