package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"idlereduce/internal/ledger"
)

// ledgerDecide opts one decide into the ledger and returns the reply.
func ledgerDecide(t *testing.T, url, vehicle, area string) DecideResponse {
	t.Helper()
	var resp DecideResponse
	body := fmt.Sprintf(`{"vehicle_id":%q,"area":%q,"seed":42,"ledger":true}`, vehicle, area)
	status, raw := doJSON(t, "POST", url+"/v1/decide", body, &resp)
	if status != http.StatusOK {
		t.Fatalf("ledger decide: status %d: %s", status, raw)
	}
	if resp.DecisionID == "" {
		t.Fatalf("ledger decide returned no decision_id: %s", raw)
	}
	return resp
}

// ledgerObserve settles one decision and returns the reply.
func ledgerObserve(t *testing.T, url, area, decisionID string, stop float64) ObserveResponse {
	t.Helper()
	var resp ObserveResponse
	body := fmt.Sprintf(`{"area":%q,"stop_sec":%v,"decision_id":%q}`, area, stop, decisionID)
	status, raw := doJSON(t, "POST", url+"/v1/observe", body, &resp)
	if status != http.StatusOK {
		t.Fatalf("settle observe: status %d: %s", status, raw)
	}
	return resp
}

// crTable fetches GET /v1/cr.
func crTable(t *testing.T, url string) CRResponse {
	t.Helper()
	var resp CRResponse
	if status, raw := doJSON(t, "GET", url+"/v1/cr", "", &resp); status != http.StatusOK {
		t.Fatalf("cr table: status %d: %s", status, raw)
	}
	return resp
}

// crRow finds one {area, engine} row of the table.
func crRow(t *testing.T, resp CRResponse, area, engine string) ledger.Row {
	t.Helper()
	for _, r := range resp.Rows {
		if r.Area == area && r.Engine == engine {
			return r
		}
	}
	t.Fatalf("no CR row for %s/%s in %+v", area, engine, resp.Rows)
	return ledger.Row{}
}

// TestDecideLedgerOptIn: a decision id is minted only when the request
// opts in — via the body field or the X-Ledger header — and replies
// without opt-in carry no trace of the ledger on the wire.
func TestDecideLedgerOptIn(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// No opt-in: the raw reply bytes must not mention the ledger.
	status, raw := doJSON(t, "POST", ts.URL+"/v1/decide",
		`{"vehicle_id":"v-1","area":"chicago","seed":42}`, nil)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, raw)
	}
	if strings.Contains(string(raw), "decision_id") {
		t.Fatalf("reply without opt-in leaks decision_id: %s", raw)
	}

	// Body opt-in.
	dec := ledgerDecide(t, ts.URL, "v-1", "chicago")
	if !strings.Contains(dec.DecisionID, "-d") {
		t.Errorf("decision id %q missing the d-prefix", dec.DecisionID)
	}

	// Header opt-in: same effect without touching the body.
	req, err := http.NewRequest("POST", ts.URL+"/v1/decide",
		strings.NewReader(`{"vehicle_id":"v-1","area":"chicago","seed":42}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Ledger", "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hdec DecideResponse
	if err := json.NewDecoder(resp.Body).Decode(&hdec); err != nil {
		t.Fatal(err)
	}
	if hdec.DecisionID == "" {
		t.Fatal("X-Ledger header did not mint a decision id")
	}
	if hdec.DecisionID == dec.DecisionID {
		t.Fatal("decision ids are not unique")
	}

	// Batch header opt-in covers every item.
	var batch BatchDecideResponse
	breq, _ := http.NewRequest("POST", ts.URL+"/v1/decide/batch",
		strings.NewReader(`{"requests":[{"vehicle_id":"v-1","area":"chicago"},{"vehicle_id":"v-2","area":"atlanta"}]}`))
	breq.Header.Set("Content-Type", "application/json")
	breq.Header.Set("X-Ledger", "1")
	bresp, err := http.DefaultClient.Do(breq)
	if err != nil {
		t.Fatal(err)
	}
	defer bresp.Body.Close()
	if err := json.NewDecoder(bresp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	for i, item := range batch.Results {
		if item.Decision == nil || item.Decision.DecisionID == "" {
			t.Errorf("batch item %d missing decision id", i)
		}
	}
}

// TestObserveSettlesDecision: the full join loop — decide with opt-in,
// observe with the decision id — lands the realized cost pair in the
// reply and the {area, engine} row in /v1/cr, with the stable error
// classes on unknown and duplicate ids, fail-closed either way.
func TestObserveSettlesDecision(t *testing.T) {
	_, ts := newTestServer(t, nil)
	dec := ledgerDecide(t, ts.URL, "v-1", "chicago")

	stop := dec.ThresholdSec + 5
	obs := ledgerObserve(t, ts.URL, "chicago", dec.DecisionID, stop)
	if !obs.Settled {
		t.Fatalf("observe did not settle: %+v", obs)
	}
	wantOnline, wantOpt := ledger.RealizedCost(dec.B, dec.ThresholdSec, stop)
	if obs.OnlineCost != wantOnline || obs.OptCost != wantOpt {
		t.Errorf("realized costs (%v, %v), want (%v, %v)", obs.OnlineCost, obs.OptCost, wantOnline, wantOpt)
	}

	table := crTable(t, ts.URL)
	row := crRow(t, table, "chicago", "constrained@v1")
	if row.Settled != 1 {
		t.Errorf("row settled %d, want 1", row.Settled)
	}
	if row.CR <= 0 {
		t.Errorf("row CR %v, want > 0", row.CR)
	}
	if row.Bound <= 1 {
		t.Errorf("row bound %v, want the engine's published CR > 1", row.Bound)
	}
	if table.Counters.Settled != 1 || table.Counters.Issued < 1 {
		t.Errorf("counters %+v, want settled 1", table.Counters)
	}

	// Duplicate settle: stable 409 class.
	status, raw := doJSON(t, "POST", ts.URL+"/v1/observe",
		fmt.Sprintf(`{"area":"chicago","stop_sec":5,"decision_id":%q}`, dec.DecisionID), nil)
	if status != http.StatusConflict || errCode(t, raw) != "duplicate_settle" {
		t.Fatalf("duplicate settle: status %d code %s", status, errCode(t, raw))
	}

	// Unknown id: stable 404 class, and fail-closed — the rejected
	// observation must not advance the area's stream.
	var before ObserveResponse
	doJSON(t, "POST", ts.URL+"/v1/observe", `{"area":"chicago","stop_sec":5}`, &before)
	status, raw = doJSON(t, "POST", ts.URL+"/v1/observe",
		`{"area":"chicago","stop_sec":5,"decision_id":"no-such-id"}`, nil)
	if status != http.StatusNotFound || errCode(t, raw) != "unknown_decision" {
		t.Fatalf("unknown settle: status %d code %s", status, errCode(t, raw))
	}
	var after ObserveResponse
	doJSON(t, "POST", ts.URL+"/v1/observe", `{"area":"chicago","stop_sec":5}`, &after)
	if after.Seq != before.Seq+1 {
		t.Errorf("rejected settle advanced the stream: seq %d -> %d", before.Seq, after.Seq)
	}

	table = crTable(t, ts.URL)
	if table.Counters.Orphaned != 1 {
		t.Errorf("orphaned %d, want 1", table.Counters.Orphaned)
	}
}

// TestEmpiricalCRConvergesWithinBound: a synthetic in-model trace —
// mostly short stops, an occasional long one, matching the area's
// statistics regime — converges to an empirical CR whose variance band
// sits at or below the constrained engine's published bound, with no
// breach.
func TestEmpiricalCRConvergesWithinBound(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Retune.Disabled = true })
	for i := 0; i < 120; i++ {
		dec := ledgerDecide(t, ts.URL, fmt.Sprintf("fleet-%03d", i), "chicago")
		stop := 5.0
		if i%10 == 0 {
			stop = 60.0
		}
		ledgerObserve(t, ts.URL, "chicago", dec.DecisionID, stop)
	}
	table := crTable(t, ts.URL)
	row := crRow(t, table, "chicago", "constrained@v1")
	if row.Settled != 120 {
		t.Fatalf("settled %d, want 120", row.Settled)
	}
	if row.CR < 1 {
		t.Errorf("empirical CR %v below 1", row.CR)
	}
	if row.Band <= 0 || row.Band > 0.5 {
		t.Errorf("variance band %v not tight after 120 settles", row.Band)
	}
	if row.CR-row.Band > row.Bound {
		t.Errorf("empirical CR %v - band %v confidently above bound %v on an in-model trace",
			row.CR, row.Band, row.Bound)
	}
	if row.Breaches != 0 || table.Counters.Breaches != 0 {
		t.Errorf("in-model trace tripped the breach detector: row %+v counters %+v", row, table.Counters)
	}
}

// TestCRBreachOnAdversarialTrace: an adversary who stops just past the
// threshold on every stop drives the realized CR far above the
// published bound; the detector trips, the counter increments, and the
// breach surfaces in the history series.
func TestCRBreachOnAdversarialTrace(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) {
		c.Retune.Disabled = true
		// Tight windows so the trip lands within a short test trace.
		c.Ledger = ledger.Config{Window: 5, Patience: 2}
	})
	first := ledgerDecide(t, ts.URL, "adv-1", "chicago")
	wantOnline, wantOpt := ledger.RealizedCost(first.B, first.ThresholdSec, first.ThresholdSec+0.1)
	if advCR := wantOnline / wantOpt; advCR <= first.WorstCaseCR {
		t.Fatalf("adversarial CR %v does not clear the bound %v; trace cannot breach", advCR, first.WorstCaseCR)
	}
	ledgerObserve(t, ts.URL, "chicago", first.DecisionID, first.ThresholdSec+0.1)
	for i := 1; i < 40; i++ {
		dec := ledgerDecide(t, ts.URL, "adv-1", "chicago")
		ledgerObserve(t, ts.URL, "chicago", dec.DecisionID, dec.ThresholdSec+0.1)
	}

	table := crTable(t, ts.URL)
	row := crRow(t, table, "chicago", "constrained@v1")
	if row.CR <= row.Bound {
		t.Fatalf("adversarial CR %v did not exceed bound %v", row.CR, row.Bound)
	}
	if row.Breaches == 0 || table.Counters.Breaches == 0 {
		t.Fatalf("breach detector did not trip: row %+v counters %+v", row, table.Counters)
	}
	if got := s.rec.Registry().SumCounterValues("cr_breach_total"); got == 0 {
		t.Errorf("cr_breach_total is 0, want > 0")
	}

	// The breach and CR series surface through the history sampler.
	s.sampler.Sample()
	hist := s.History()
	for _, name := range []string{"cr_breaches", "cr_worst", "settles", "ledger_pending"} {
		if _, ok := hist.Lookup(name); !ok {
			t.Errorf("history series %q missing", name)
		}
	}
	if series, ok := hist.Lookup("cr_worst"); ok && len(series.Points) > 0 {
		if got := series.Points[len(series.Points)-1]; got <= row.Bound {
			t.Errorf("cr_worst sampled %v, want above bound %v", got, row.Bound)
		}
	}
}

// TestSnapshotRoundTripWithLedger: a snapshot taken mid-join — settled
// accumulators, still-pending decisions, an orphan on the books —
// restores byte-identically, pending decisions stay settleable across
// the boundary, and duplicate detection survives it.
func TestSnapshotRoundTripWithLedger(t *testing.T) {
	donor, ts := newTestServer(t, nil)

	var pendingIDs []string
	var settledID string
	for i := 0; i < 8; i++ {
		dec := ledgerDecide(t, ts.URL, fmt.Sprintf("snap-%02d", i), "chicago")
		if i%2 == 0 {
			ledgerObserve(t, ts.URL, "chicago", dec.DecisionID, 7.5)
			settledID = dec.DecisionID
		} else {
			pendingIDs = append(pendingIDs, dec.DecisionID)
		}
	}
	// One orphan so every counter is nonzero in the capture.
	doJSON(t, "POST", ts.URL+"/v1/observe", `{"area":"chicago","stop_sec":5,"decision_id":"bogus"}`, nil)

	plane := donor.StatePlane()
	if plane.Ledger == nil {
		t.Fatal("snapshot of a ledger-active daemon omitted the ledger section")
	}
	donorBytes, err := json.Marshal(plane.Ledger)
	if err != nil {
		t.Fatal(err)
	}

	restored, err := New(Config{Areas: testAreas(), Restore: &plane})
	if err != nil {
		t.Fatal(err)
	}
	replane := restored.StatePlane()
	if replane.Ledger == nil {
		t.Fatal("restored daemon lost the ledger section")
	}
	restoredBytes, err := json.Marshal(replane.Ledger)
	if err != nil {
		t.Fatal(err)
	}
	if string(donorBytes) != string(restoredBytes) {
		t.Fatalf("ledger state not byte-identical across restore:\ndonor:    %s\nrestored: %s", donorBytes, restoredBytes)
	}

	// Pending decisions issued by the donor settle on the restored
	// daemon; settled ids stay duplicate-detected.
	rts := newRestoredTestServer(t, restored)
	obs := ledgerObserve(t, rts.URL, "chicago", pendingIDs[0], 6)
	if !obs.Settled {
		t.Fatalf("donor-issued decision did not settle after restore: %+v", obs)
	}
	status, raw := doJSON(t, "POST", rts.URL+"/v1/observe",
		fmt.Sprintf(`{"area":"chicago","stop_sec":5,"decision_id":%q}`, settledID), nil)
	if status != http.StatusConflict || errCode(t, raw) != "duplicate_settle" {
		t.Fatalf("duplicate detection lost across restore: status %d code %s", status, errCode(t, raw))
	}

	// A ledger-idle daemon's snapshot omits the section entirely.
	idle, err := New(Config{Areas: testAreas()})
	if err != nil {
		t.Fatal(err)
	}
	if p := idle.StatePlane(); p.Ledger != nil {
		t.Errorf("idle daemon snapshot carries a ledger section: %+v", p.Ledger)
	}
}

// TestAuditVerifyWithSettleRecords: a ledger-bearing audit log replays
// bit-identically — including a settle that crossed a snapshot/restore
// boundary — and a tampered settle record fails verification.
func TestAuditVerifyWithSettleRecords(t *testing.T) {
	audit := &syncBuffer{}
	donor, ts := newTestServer(t, func(c *Config) { c.AuditLog = audit })

	var pending string
	for i := 0; i < 4; i++ {
		dec := ledgerDecide(t, ts.URL, fmt.Sprintf("audit-%02d", i), "chicago")
		if i == 3 {
			pending = dec.DecisionID
		} else {
			ledgerObserve(t, ts.URL, "chicago", dec.DecisionID, float64(5+i*9))
		}
	}
	plane := donor.StatePlane()
	if err := donor.auditW.Flush(); err != nil {
		t.Fatal(err)
	}

	// The restored daemon appends to the same log and settles a
	// decision the donor issued.
	restored, err := New(Config{Areas: testAreas(), Restore: &plane, AuditLog: audit})
	if err != nil {
		t.Fatal(err)
	}
	rts := newRestoredTestServer(t, restored)
	ledgerObserve(t, rts.URL, "chicago", pending, 40)
	if err := restored.auditW.Flush(); err != nil {
		t.Fatal(err)
	}

	log := audit.String()
	if got := strings.Count(log, `"kind":"settle"`); got != 4 {
		t.Fatalf("log has %d settle records, want 4:\n%s", got, log)
	}
	rep, err := VerifyAudit(strings.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("ledger-bearing log failed verification: %s", rep.String())
	}

	// Tamper with a settle record's realized cost: replay must catch it.
	tampered := strings.Replace(log, `"online_cost":`, `"online_cost":9`, 1)
	if tampered == log {
		t.Fatal("tamper did not change the log")
	}
	rep, err = VerifyAudit(strings.NewReader(tampered))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatal("tampered settle record passed verification")
	}
}

// newRestoredTestServer wraps an already-built server in a test
// listener.
func newRestoredTestServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}
