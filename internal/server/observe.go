package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sync"
	"time"

	"idlereduce/internal/adaptive"
	"idlereduce/internal/ledger"
	"idlereduce/internal/obs"
	"idlereduce/internal/predict"
)

// RetuneConfig parameterizes the server-side observation stream: how
// fast the per-area running statistics forget, how many observations
// they need before being trusted, and how sensitive the CUSUM drift
// detector is. The zero value takes every default.
type RetuneConfig struct {
	// Forgetting is the exponential decay per observation in (0, 1].
	// The serving default is 0.98 (a ~50-stop memory), so the
	// estimates keep tracking a drifted regime between alarms instead
	// of averaging it into unbounded history.
	Forgetting float64
	// MinObservations gates re-tunes: an alarm before this many stops
	// in an area's stream is counted but does not re-derive strategies.
	// Default 50.
	MinObservations int
	// DriftThreshold/DriftSlack/DriftWarmup forward to
	// adaptive.DriftConfig (CUSUM h, allowance k, baseline length).
	// Zero takes that config's defaults.
	DriftThreshold float64
	DriftSlack     float64
	DriftWarmup    int
	// Disabled suppresses strategy re-derivation: observations still
	// accumulate and alarms are still counted, but the cache is never
	// touched (a shadow-mode deployment switch).
	Disabled bool
}

func (c RetuneConfig) withDefaults() RetuneConfig {
	if c.Forgetting == 0 {
		c.Forgetting = 0.98
	}
	if c.MinObservations == 0 {
		c.MinObservations = 50
	}
	return c
}

// streamConfig renders the tracker config for one area.
func (c RetuneConfig) streamConfig(b float64) adaptive.StreamConfig {
	return adaptive.StreamConfig{
		B:               b,
		Forgetting:      c.Forgetting,
		MinObservations: c.MinObservations,
		Drift: adaptive.DriftConfig{
			Threshold: c.DriftThreshold,
			Slack:     c.DriftSlack,
			Warmup:    c.DriftWarmup,
		},
	}
}

// observer is one area's streaming estimator. Observations on the
// same area serialize on mu so the stream is a deterministic function
// of the observation order; observations on different areas never
// contend.
type observer struct {
	mu sync.Mutex
	tr *adaptive.Tracker
}

// observerSet holds the per-area observers. The area set is fixed at
// boot, so the map itself is read-only after construction; all
// mutation happens inside each observer under its own lock.
type observerSet struct {
	cfg RetuneConfig
	m   map[string]*observer
}

// newObserverSet builds one tracker per boot-time area.
func newObserverSet(cfg RetuneConfig, areas []*areaRec) (*observerSet, error) {
	cfg = cfg.withDefaults()
	set := &observerSet{cfg: cfg, m: make(map[string]*observer, len(areas))}
	for _, rec := range areas {
		tr, err := adaptive.NewTracker(cfg.streamConfig(rec.state.B))
		if err != nil {
			return nil, fmt.Errorf("server: observer for area %s: %w", rec.state.ID, err)
		}
		set.m[rec.state.ID] = &observer{tr: tr}
	}
	return set, nil
}

// get returns an area's observer (IDs are normalized by the caller).
func (s *observerSet) get(id string) (*observer, bool) {
	o, ok := s.m[id]
	return o, ok
}

// observe applies one validated observation to an area's stream and
// performs the re-tune when a warm CUSUM alarm fires. It returns the
// wire response plus the tracker update for audit stamping.
func (s *Server) observe(ctx context.Context, req ObserveRequest) (*ObserveResponse, *APIError) {
	if req.Area == "" {
		return nil, &APIError{Code: "bad_request", Message: "area is required", Status: http.StatusBadRequest}
	}
	if math.IsNaN(req.StopSec) || math.IsInf(req.StopSec, 0) || req.StopSec < 0 {
		return nil, &APIError{Code: "bad_request", Message: fmt.Sprintf("stop_sec = %v must be a finite non-negative stop length", req.StopSec), Status: http.StatusBadRequest}
	}
	if req.PredictedStopSec != nil {
		if err := predict.New(*req.PredictedStopSec).Validate(); err != nil {
			return nil, &APIError{Code: "invalid_prediction", Message: err.Error(), Status: http.StatusBadRequest}
		}
	}
	rec, ok := s.cache.Area(req.Area)
	if !ok {
		return nil, &APIError{Code: "unknown_area", Message: fmt.Sprintf("unknown area %q", req.Area), Status: http.StatusNotFound}
	}
	o, ok := s.observers.get(rec.state.ID)
	if !ok {
		// Unreachable with the boot-fixed area set; fail loudly if the
		// invariant ever breaks.
		return nil, &APIError{Code: "internal", Message: fmt.Sprintf("no observer for area %q", rec.state.ID), Status: http.StatusInternalServerError}
	}

	// A decision id settles its ledger entry before the tracker absorbs
	// anything, so a failed join rejects the whole observation with the
	// statistics stream untouched (fail-closed).
	var settled *ledger.Outcome
	if req.DecisionID != "" {
		out, err := s.ledger.Settle(req.DecisionID, req.StopSec, time.Now().UnixMilli())
		switch {
		case errors.Is(err, ledger.ErrDuplicateSettle):
			return nil, &APIError{Code: "duplicate_settle", Message: err.Error(), Status: http.StatusConflict}
		case errors.Is(err, ledger.ErrUnknownDecision):
			s.rec.Add("ledger_orphaned_total", 1)
			return nil, &APIError{Code: "unknown_decision", Message: err.Error(), Status: http.StatusNotFound}
		case err != nil:
			// Stop validation already passed above; any residual failure
			// is a client-shaped bad request.
			return nil, &APIError{Code: "bad_request", Message: err.Error(), Status: http.StatusBadRequest}
		}
		settled = &out
		s.rec.Add("ledger_settled_total", 1)
		s.rec.Observe("ledger_join_ms", float64(out.JoinMS))
		s.rec.Set(obs.L("cr_empirical", "area", out.Pending.Area, "engine", out.Pending.Engine), out.CR)
		if out.Pending.Bound > 0 {
			s.rec.Set(obs.L("cr_bound", "area", out.Pending.Area, "engine", out.Pending.Engine), out.Pending.Bound)
		}
		if out.Breach {
			s.rec.Add("cr_breach_total", 1)
		}
	}

	o.mu.Lock()
	defer o.mu.Unlock()
	// A stats update may have moved the area's break-even interval;
	// the moments are only meaningful at one B, so the stream restarts
	// against the new interval.
	if o.tr.B() != rec.state.B {
		tr, err := adaptive.NewTracker(s.observers.cfg.streamConfig(rec.state.B))
		if err != nil {
			return nil, &APIError{Code: "internal", Message: err.Error(), Status: http.StatusInternalServerError}
		}
		o.tr = tr
	}
	up, err := o.tr.Observe(req.StopSec)
	if err != nil {
		return nil, &APIError{Code: "bad_request", Message: err.Error(), Status: http.StatusBadRequest}
	}

	resp := &ObserveResponse{
		Area: rec.state.ID,
		Seq:  up.Seen,
		Warm: up.Warm,
		Mu:   up.Stats.MuBMinus,
		Q:    up.Stats.QBPlus,
		// The pre-observation version; overwritten on re-tune below.
		StatsVersion: rec.version,
	}
	if settled != nil {
		resp.Settled = true
		resp.OnlineCost = settled.Online
		resp.OptCost = settled.Opt
	}
	s.rec.Add("observe_total", 1)
	// A forecast riding along closes the prediction loop: the completed
	// stop grades it into the quality histograms and side counters.
	if req.PredictedStopSec != nil {
		predict.RecordQuality(s.rec, rec.state.ID, rec.state.B, *req.PredictedStopSec, req.StopSec)
	}
	if up.Alarm {
		resp.Alarm = true
		s.rec.Add("retune_alarms_total", 1)
		if up.Warm && !s.observers.cfg.Disabled {
			def, uerr := s.cache.Update(rec.state.ID, 0, up.Stats)
			if uerr != nil {
				// The estimates are feasible by construction, so a
				// rejection here is validation drift worth counting,
				// not a client error.
				s.rec.Add("retune_failed_total", 1)
			} else {
				resp.Retuned = true
				resp.StatsVersion = def.rec.version
				s.rec.Add("retune_total", 1)
			}
		}
	}

	if s.tracer != nil {
		if sp := obs.SpanFrom(ctx); sp != nil {
			sp.Set("area", rec.state.ID)
			sp.Set("seq", up.Seen)
			sp.Set("stop_sec", req.StopSec)
			sp.Set("alarm", resp.Alarm)
			sp.Set("retuned", resp.Retuned)
			sp.Set("stats_version", resp.StatsVersion)
			if settled != nil {
				sp.Set("decision_id", settled.Pending.ID)
				sp.Set("join_ms", settled.JoinMS)
			}
		}
	}
	if s.auditW != nil && settled != nil {
		// The settle record precedes the observe record, mirroring the
		// in-handler order: the join happened before the stream absorbed
		// the stop.
		s.auditW.Write(SettleRecord{
			Kind:         settleKind,
			TSUnixMS:     time.Now().UnixMilli(),
			RequestID:    obs.RequestIDFrom(ctx),
			DecisionID:   settled.Pending.ID,
			Area:         settled.Pending.Area,
			Engine:       settled.Pending.Engine,
			B:            settled.Pending.B,
			ThresholdSec: settled.Pending.ThresholdSec,
			StopSec:      req.StopSec,
			OnlineCost:   settled.Online,
			OptCost:      settled.Opt,
			Bound:        settled.Pending.Bound,
			JoinMS:       settled.JoinMS,
		})
	}
	if s.auditW != nil {
		s.auditW.Write(ObserveRecord{
			Kind:         observeKind,
			TSUnixMS:     time.Now().UnixMilli(),
			RequestID:    obs.RequestIDFrom(ctx),
			VehicleID:    req.VehicleID,
			Area:         rec.state.ID,
			Seq:          up.Seen,
			B:            rec.state.B,
			Forgetting:   s.observers.cfg.Forgetting,
			StopSec:      req.StopSec,
			PrevW:        up.PrevWSum,
			PrevMuSum:    up.PrevMuSum,
			PrevQSum:     up.PrevQSum,
			W:            up.WSum,
			MuSum:        up.MuSum,
			QSum:         up.QSum,
			Warm:         up.Warm,
			Alarm:        resp.Alarm,
			Retuned:      resp.Retuned,
			StatsVersion: resp.StatsVersion,
			Mu:           up.Stats.MuBMinus,
			Q:            up.Stats.QBPlus,
		})
	}
	return resp, nil
}

// handleObserve serves POST /v1/observe.
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decode request: "+err.Error())
		return
	}
	resp, apiErr := s.observe(r.Context(), req)
	if apiErr != nil {
		writeError(w, apiErr.Status, apiErr.Code, apiErr.Message)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleObserveBatch serves POST /v1/observe/batch. Items apply
// strictly in input order — observations on one area form a sequential
// stream, so a parallel fan-out would make alarms depend on
// scheduling. Item failures are embedded per slot; a batch reply is
// always 200 once it passes structural validation.
func (s *Server) handleObserveBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchObserveRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decode request: "+err.Error())
		return
	}
	if len(req.Observations) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "observations is empty")
		return
	}
	if len(req.Observations) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("batch of %d exceeds max %d", len(req.Observations), s.cfg.MaxBatch))
		return
	}
	ctx := r.Context()
	resp := BatchObserveResponse{Results: make([]BatchObserveItem, len(req.Observations))}
	for i, o := range req.Observations {
		res, apiErr := s.observe(ctx, o)
		if apiErr != nil {
			resp.Results[i] = BatchObserveItem{Error: apiErr}
			continue
		}
		resp.Results[i] = BatchObserveItem{Result: res}
		resp.Accepted++
		if res.Alarm {
			resp.Alarms++
		}
		if res.Retuned {
			resp.Retunes++
		}
		if res.Settled {
			resp.Settled++
		}
	}
	s.rec.Add("observe_batch_total", 1)
	writeJSON(w, http.StatusOK, resp)
}
