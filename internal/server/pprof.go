package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// The live-profiling plane: when Config.PprofAddr is set, idled mounts
// net/http/pprof on a dedicated listener so CPU/heap/goroutine
// profiles can be captured from a serving process under load. The
// profiling mux is NEVER part of the serving handler tree — the
// serving port stays profile-free (no debug surface reachable by
// decision clients, no profiler contention on the request mux), which
// pprof_test.go pins down.

// pprofHandler builds the standard net/http/pprof handler tree on a
// private mux (nothing is registered on http.DefaultServeMux paths we
// serve; the pprof package's init-time registrations there are
// irrelevant because idled never serves DefaultServeMux).
func pprofHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// listenPprof binds the profiling listener when configured. Called
// under s.mu from Listen; a nil return with no error means profiling
// is disabled.
func (s *Server) listenPprof() error {
	if s.cfg.PprofAddr == "" || s.pprofLn != nil {
		return nil
	}
	ln, err := net.Listen("tcp", s.cfg.PprofAddr)
	if err != nil {
		return fmt.Errorf("server: pprof listen %s: %w", s.cfg.PprofAddr, err)
	}
	s.pprofLn = ln
	return nil
}

// PprofAddr returns the bound profiling address, or "" when the
// profiling plane is disabled (Config.PprofAddr unset). Useful with
// ":0" and for the never-binds guard test.
func (s *Server) PprofAddr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pprofLn == nil {
		return ""
	}
	return s.pprofLn.Addr().String()
}

// servePprof runs the profiling listener until ctx is cancelled. CPU
// profile captures hold the response open for the requested duration,
// so the server deliberately has no read/write timeouts; shutdown
// gives in-flight captures a short grace period and then closes.
func (s *Server) servePprof(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{Handler: pprofHandler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = hs.Shutdown(shutCtx)
	<-serveErr
	return nil
}
