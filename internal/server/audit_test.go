package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"idlereduce/internal/obs"
)

// syncBuffer is a concurrency-safe bytes.Buffer for log sinks whose
// writes happen on the JSONLWriter goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func decodeAuditLines(t *testing.T, data string) []AuditRecord {
	t.Helper()
	var recs []AuditRecord
	for _, line := range strings.Split(strings.TrimSpace(data), "\n") {
		if line == "" {
			continue
		}
		var rec AuditRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad audit line %q: %v", line, err)
		}
		recs = append(recs, rec)
	}
	return recs
}

// TestAuditRoundTripVerifies drives decide and batch traffic with the
// audit log on, then replays the log through VerifyAudit: every record
// must reproduce bit-for-bit, including custom-B and custom-seed
// decisions and a post-stats-update version.
func TestAuditRoundTripVerifies(t *testing.T) {
	audit := &syncBuffer{}
	s, ts := newTestServer(t, func(c *Config) { c.AuditLog = audit })

	for i := 0; i < 5; i++ {
		status, _ := doJSON(t, "POST", ts.URL+"/v1/decide",
			fmt.Sprintf(`{"vehicle_id":"v-%d","area":"chicago","seed":%d}`, i, i+1), nil)
		if status != http.StatusOK {
			t.Fatalf("decide %d: status %d", i, status)
		}
	}
	// Custom B (cache-miss path) and a batch fan-out.
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/decide",
		`{"vehicle_id":"v-b","area":"chicago","b":40}`, nil); status != http.StatusOK {
		t.Fatalf("custom-B decide: status %d", status)
	}
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/decide/batch",
		`{"seed":7,"requests":[{"vehicle_id":"b1","area":"chicago"},{"vehicle_id":"b2","area":"atlanta"},{"vehicle_id":"b3","area":"atlanta"}]}`, nil); status != http.StatusOK {
		t.Fatalf("batch: status %d", status)
	}
	// Swap stats and decide again so a version-2 record is exercised.
	if status, _ := doJSON(t, "PUT", ts.URL+"/v1/areas/chicago/stats",
		`{"mu":10,"q":0.2}`, nil); status != http.StatusOK {
		t.Fatalf("stats update: status %d", status)
	}
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/decide",
		`{"vehicle_id":"v-after","area":"chicago"}`, nil); status != http.StatusOK {
		t.Fatalf("post-update decide: status %d", status)
	}

	if err := s.auditW.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := decodeAuditLines(t, audit.String())
	if len(recs) != 10 {
		t.Fatalf("audit has %d records, want 10", len(recs))
	}
	for _, rec := range recs {
		if rec.RequestID == "" {
			t.Errorf("record without request id: %+v", rec)
		}
	}
	if last := recs[len(recs)-1]; last.StatsVersion != 2 {
		t.Errorf("post-update record version %d, want 2", last.StatsVersion)
	}

	rep, err := VerifyAudit(strings.NewReader(audit.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Matched != 10 || rep.Records != 10 {
		t.Errorf("verify report %+v, want 10/10 matched", rep)
	}
}

// TestVerifyAuditDetectsTampering flips recorded fields and expects
// the replay to flag each corruption mode.
func TestVerifyAuditDetectsTampering(t *testing.T) {
	audit := &syncBuffer{}
	s, ts := newTestServer(t, func(c *Config) { c.AuditLog = audit })
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/decide",
		`{"vehicle_id":"v-1","area":"chicago"}`, nil); status != http.StatusOK {
		t.Fatal("decide failed")
	}
	if err := s.auditW.Flush(); err != nil {
		t.Fatal(err)
	}
	rec := decodeAuditLines(t, audit.String())[0]

	otherChoice := "TOI"
	if rec.Choice == otherChoice {
		otherChoice = "DET"
	}
	tamper := map[string]func(*AuditRecord){
		"threshold": func(r *AuditRecord) { r.ThresholdSec += 0.5 },
		"choice":    func(r *AuditRecord) { r.Choice = otherChoice },
		"stream":    func(r *AuditRecord) { r.Stream++ },
		"stats":     func(r *AuditRecord) { r.Mu = -1 },
	}
	for name, mutate := range tamper {
		bad := rec
		mutate(&bad)
		line, _ := json.Marshal(bad)
		rep, err := VerifyAudit(bytes.NewReader(append(line, '\n')))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.OK() || rep.Mismatched != 1 {
			t.Errorf("%s tampering not detected: %+v", name, rep)
		}
	}
}

// TestVerifyAuditSkipsTruncatedTail writes valid records plus a
// truncated final line (the crash shape): verification must skip the
// tail without failing, while a corrupt line mid-file counts as
// corrupt.
func TestVerifyAuditSkipsTruncatedTail(t *testing.T) {
	audit := &syncBuffer{}
	s, ts := newTestServer(t, func(c *Config) { c.AuditLog = audit })
	for i := 0; i < 3; i++ {
		doJSON(t, "POST", ts.URL+"/v1/decide",
			fmt.Sprintf(`{"vehicle_id":"v-%d","area":"atlanta"}`, i), nil)
	}
	if err := s.auditW.Flush(); err != nil {
		t.Fatal(err)
	}
	full := audit.String()
	lines := strings.Split(strings.TrimSpace(full), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 records, got %d", len(lines))
	}

	// Crash shape: the final line is cut mid-record.
	truncated := lines[0] + "\n" + lines[1] + "\n" + lines[2][:len(lines[2])/2]
	rep, err := VerifyAudit(strings.NewReader(truncated))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || !rep.TruncatedTail || rep.Records != 2 || rep.Matched != 2 {
		t.Errorf("truncated tail report %+v, want 2 matched + skipped tail", rep)
	}

	// Corruption shape: a broken line with records after it is an
	// integrity failure, not a crash tail.
	corrupt := lines[0] + "\n" + lines[1][:10] + "\n" + lines[2] + "\n"
	rep, err = VerifyAudit(strings.NewReader(corrupt))
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || rep.Corrupt != 1 || rep.TruncatedTail {
		t.Errorf("mid-file corruption report %+v, want corrupt=1", rep)
	}
}

// TestDrainFlushesAuditAndTrace is the shutdown-consistency check: a
// served decision must be on disk after a graceful SIGTERM drain, with
// no records lost in the bounded writers, and the trace log must carry
// the request's span.
func TestDrainFlushesAuditAndTrace(t *testing.T) {
	dir := t.TempDir()
	auditPath := filepath.Join(dir, "audit.jsonl")
	auditFile, err := obs.OpenRotatingFile(auditPath, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	trace := &syncBuffer{}
	s, err := New(Config{
		Addr:     "127.0.0.1:0",
		Areas:    testAreas(),
		AuditLog: auditFile,
		TraceLog: trace,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx) }()
	waitHealthy(t, "http://"+addr)

	const n = 25
	for i := 0; i < n; i++ {
		status, _ := doJSON(t, "POST", "http://"+addr+"/v1/decide",
			fmt.Sprintf(`{"vehicle_id":"v-%d","area":"chicago"}`, i), nil)
		if status != http.StatusOK {
			t.Fatalf("decide %d: status %d", i, status)
		}
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not drain")
	}
	if err := auditFile.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(auditPath)
	if err != nil {
		t.Fatal(err)
	}
	recs := decodeAuditLines(t, string(data))
	if len(recs) != n {
		t.Fatalf("audit after drain has %d records, want %d (records lost at shutdown)", len(recs), n)
	}
	rep, err := VerifyAudit(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Matched != n {
		t.Errorf("post-drain verify %+v, want %d matched", rep, n)
	}
	if s.auditW.Dropped() != 0 {
		t.Errorf("audit writer dropped %d records", s.auditW.Dropped())
	}

	// The trace log must hold one http_request span per request with
	// the decision attributes attached.
	spans := 0
	for _, line := range strings.Split(strings.TrimSpace(trace.String()), "\n") {
		var rec obs.SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		if rec.Span == "http_request" && rec.Attrs["route"] == "decide" {
			spans++
			if rec.RequestID == "" || rec.Attrs["choice"] == nil || rec.Attrs["threshold_sec"] == nil {
				t.Errorf("span missing decision attrs: %+v", rec)
			}
		}
	}
	if spans != n {
		t.Errorf("trace has %d decide spans, want %d", spans, n)
	}
}

// TestAuditRequestIDMatchesHeader ties the three correlation surfaces
// together: response header, audit record, and trace span share the
// propagated request id.
func TestAuditRequestIDMatchesHeader(t *testing.T) {
	audit := &syncBuffer{}
	trace := &syncBuffer{}
	s, ts := newTestServer(t, func(c *Config) {
		c.AuditLog = audit
		c.TraceLog = trace
	})
	req, err := http.NewRequest("POST", ts.URL+"/v1/decide",
		strings.NewReader(`{"vehicle_id":"v-1","area":"chicago"}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "client-chosen-7")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "client-chosen-7" {
		t.Errorf("response header id %q, want propagation", got)
	}
	if err := s.auditW.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := s.tracer.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := decodeAuditLines(t, audit.String())
	if len(recs) != 1 || recs[0].RequestID != "client-chosen-7" {
		t.Errorf("audit request id = %+v, want client-chosen-7", recs)
	}
	if !strings.Contains(trace.String(), `"request_id":"client-chosen-7"`) {
		t.Errorf("trace missing propagated id: %s", trace.String())
	}
}

// TestGeneratedRequestIDsUnique checks minted ids are present and
// distinct when the client sends none.
func TestGeneratedRequestIDsUnique(t *testing.T) {
	_, ts := newTestServer(t, nil)
	seen := make(map[string]bool)
	for i := 0; i < 10; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		id := resp.Header.Get("X-Request-Id")
		if id == "" {
			t.Fatal("no generated request id")
		}
		if seen[id] {
			t.Fatalf("duplicate id %q", id)
		}
		seen[id] = true
	}
}
