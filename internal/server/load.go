package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"time"

	"idlereduce/internal/obs"
	"idlereduce/internal/parallel"
)

// LoadOptions parameterize the load harness (`idled loadtest`).
type LoadOptions struct {
	// BaseURL is the target server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Clients is the number of concurrent client goroutines
	// (default 16).
	Clients int
	// Requests is the number of batch requests each client issues
	// (default 50).
	Requests int
	// Batch is the number of decisions per batch request (default 8).
	Batch int
	// Seed is the decision root seed sent with every batch.
	Seed uint64
	// Policy is the engine spec stamped on every decision request
	// (e.g. "multislope3"); empty exercises the target's default
	// engine.
	Policy string
	// Areas round-robins request areas; empty discovers them from
	// GET /v1/areas.
	Areas []string
	// ObserveFraction is the share of requests sent as observe batches
	// instead of decide batches, in [0, 1). Zero keeps the legacy pure
	// decide run. The interleave is deterministic per (client, request)
	// index, never sampled.
	ObserveFraction float64
	// HotAreas concentrates observe traffic on the first min(HotAreas,
	// len(areas)) areas (default 64): streaming estimators need tens of
	// stops per area to warm, so spreading observations over 100k areas
	// would never re-tune anything.
	HotAreas int
	// DriftAfter injects a regime change into the observed stop
	// lengths after this fraction of each client's request sequence
	// (default 0.5): post-drift stops are systematically longer, so
	// the CUSUM detectors on hot areas provably alarm mid-run.
	DriftAfter float64
	// MissFraction is the share of decide slots carrying a custom
	// break-even interval, in [0, 1). Custom-B decisions bypass the
	// strategy cache, so the measured hit-rate has a controlled
	// expectation instead of pinning at 1.0.
	MissFraction float64
	// SettleFraction is the share of request slots exercising the
	// competitive-ratio join, in [0, 1): a ledger-opted decide batch
	// followed immediately by an observe batch settling each returned
	// decision_id. Every 16th settle slot corrupts one id, so the
	// orphan path (fail-closed 404 inside a 200 batch) is exercised
	// too. The interleave is deterministic per (client, request) index.
	SettleFraction float64
	// Timeout is the per-request client timeout (default 30s).
	Timeout time.Duration
	// Transport overrides the HTTP transport (tests drive an in-process
	// handler through httptest with a shared transport).
	Transport http.RoundTripper
	// Recorder collects the harness metrics; nil allocates a private
	// one. Passing a recorder lets callers snapshot the full registry
	// after the run (`idled loadtest -out`), in the same schema the
	// bench and replay tooling writes.
	Recorder *obs.Recorder
}

// LoadReport summarizes one load run. Throughput and latency are read
// back from the harness's obs metrics registry, the same pipeline the
// server uses, so the numbers line up with a /metrics scrape.
type LoadReport struct {
	Clients   int   `json:"clients"`
	Batch     int   `json:"batch"`
	Requests  int64 `json:"requests"`
	Decisions int64 `json:"decisions"`
	// Overloaded counts 429 replies (the server shedding load);
	// Errors counts transport failures and other non-2xx replies.
	Overloaded int64   `json:"overloaded"`
	Errors     int64   `json:"errors"`
	Duration   float64 `json:"duration_sec"`
	// RequestQPS and DecisionQPS are achieved throughput.
	RequestQPS  float64 `json:"request_qps"`
	DecisionQPS float64 `json:"decision_qps"`
	// Observations/Alarms/Retunes summarize the observe stream: stops
	// accepted, CUSUM drift alarms raised, and strategy re-derivations
	// those alarms triggered (from the batch roll-up counts).
	Observations int64 `json:"observations"`
	Alarms       int64 `json:"alarms"`
	Retunes      int64 `json:"retunes"`
	// Settled counts decisions joined to their realized stop through
	// the ledger; Orphans counts deliberately corrupted decision ids
	// whose settle was rejected fail-closed (both zero unless
	// SettleFraction > 0).
	Settled int64 `json:"settled"`
	Orphans int64 `json:"orphans"`
	// CacheHitRate is the fraction of decisions served from the
	// precomputed strategy cache, counted client-side from the Cached
	// response field (so it works against remote targets too).
	CacheHitRate float64 `json:"cache_hit_rate"`
	// P50/P90/P99/Max are client-observed batch latencies in ms, over
	// every request kind.
	P50 float64 `json:"p50_ms"`
	P90 float64 `json:"p90_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
	// DecideP99/ObserveP99 split the tail by request kind (observe is
	// zero on pure decide runs).
	DecideP99  float64 `json:"decide_p99_ms"`
	ObserveP99 float64 `json:"observe_p99_ms"`
	// AllocsPerOp is the harness process's heap allocations per served
	// decision (runtime.MemStats deltas across the run). With an
	// in-process target sharing the recorder this includes the server
	// side; against a remote -target it is client cost only.
	AllocsPerOp float64 `json:"decide_allocs_per_op"`
	// GCPauseMs / GCCycles are the Go GC stop-the-world pause total
	// (ms) and collection count over the run, from the same deltas.
	GCPauseMs float64 `json:"gc_pause_total_ms"`
	GCCycles  int64   `json:"gc_cycles"`
	// TopAreas attributes decide latency per area (present when the
	// recorder carries the server-side decide_area_ms histograms, i.e.
	// in-process runs with a shared recorder).
	TopAreas []AreaLatency `json:"top_areas,omitempty"`
}

// AreaLatency is one area's latency attribution in a load report.
type AreaLatency struct {
	Area  string  `json:"area"`
	Count uint64  `json:"count"`
	P50   float64 `json:"p50_ms"`
	P99   float64 `json:"p99_ms"`
	Max   float64 `json:"max_ms"`
}

// String renders the report as the loadtest's human output.
func (r LoadReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "loadtest: %d clients x batch %d for %.2fs\n", r.Clients, r.Batch, r.Duration)
	fmt.Fprintf(&b, "  requests   %8d  (%.0f req/s)\n", r.Requests, r.RequestQPS)
	fmt.Fprintf(&b, "  decisions  %8d  (%.0f decisions/s, cache hit-rate %.3f)\n", r.Decisions, r.DecisionQPS, r.CacheHitRate)
	if r.Observations > 0 {
		fmt.Fprintf(&b, "  observed   %8d  stops  (%d alarms, %d retunes)\n", r.Observations, r.Alarms, r.Retunes)
	}
	if r.Settled > 0 || r.Orphans > 0 {
		fmt.Fprintf(&b, "  settled    %8d  ledger joins  (%d orphaned ids rejected)\n", r.Settled, r.Orphans)
	}
	fmt.Fprintf(&b, "  overloaded %8d  (429 load-shed replies)\n", r.Overloaded)
	fmt.Fprintf(&b, "  errors     %8d\n", r.Errors)
	fmt.Fprintf(&b, "  latency ms p50 %.2f  p90 %.2f  p99 %.2f  max %.2f\n", r.P50, r.P90, r.P99, r.Max)
	if r.Observations > 0 {
		fmt.Fprintf(&b, "  tail split p99 decide %.2f  observe %.2f ms\n", r.DecideP99, r.ObserveP99)
	}
	fmt.Fprintf(&b, "  alloc      %8.1f allocs/decision  gc pauses %.2f ms in %d cycles\n",
		r.AllocsPerOp, r.GCPauseMs, r.GCCycles)
	for i, a := range r.TopAreas {
		if i == 0 {
			fmt.Fprintf(&b, "  per-area decide latency (top %d by total time):\n", len(r.TopAreas))
		}
		fmt.Fprintf(&b, "    %-12s %8d decisions  p50 %.3f  p99 %.3f  max %.3f ms\n",
			a.Area, a.Count, a.P50, a.P99, a.Max)
	}
	return b.String()
}

// RunLoad drives concurrent batch-decision load at a server and
// reports achieved throughput and latency quantiles from a metrics
// registry. The request stream is deterministic: vehicle IDs and area
// assignment depend only on (client, request, slot) indices.
func RunLoad(ctx context.Context, opts LoadOptions) (LoadReport, error) {
	if opts.BaseURL == "" {
		return LoadReport{}, fmt.Errorf("server: loadtest: base URL required")
	}
	if opts.Clients <= 0 {
		opts.Clients = 16
	}
	if opts.Requests <= 0 {
		opts.Requests = 50
	}
	if opts.Batch <= 0 {
		opts.Batch = 8
	}
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.HotAreas <= 0 {
		opts.HotAreas = 64
	}
	if opts.DriftAfter <= 0 || opts.DriftAfter >= 1 {
		opts.DriftAfter = 0.5
	}
	client := &http.Client{Timeout: opts.Timeout, Transport: opts.Transport}
	base := strings.TrimRight(opts.BaseURL, "/")

	areas := opts.Areas
	if len(areas) == 0 {
		var err error
		if areas, err = discoverAreas(ctx, client, base); err != nil {
			return LoadReport{}, err
		}
	}
	hot := opts.HotAreas
	if hot > len(areas) {
		hot = len(areas)
	}
	driftAt := int(opts.DriftAfter * float64(opts.Requests))

	rec := opts.Recorder
	if rec == nil {
		rec = obs.NewRecorder("loadtest", obs.NewRegistry(), nil)
	}
	lat := rec.Registry().Histogram("loadtest_request_ms")
	decideLat := rec.Registry().Histogram("loadtest_decide_ms")
	observeLat := rec.Registry().Histogram("loadtest_observe_ms")

	// Bracket the run with MemStats reads: allocation rate per served
	// decision and GC pause totals land in the registry (and hence the
	// -out snapshot) alongside the latency series, the same metric
	// vocabulary the bench captures use.
	runtime.GC()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)

	t0 := time.Now()
	err := parallel.ForEach(ctx, "loadtest_clients", opts.Clients, opts.Clients,
		func(ctx context.Context, c int) error {
			for r := 0; r < opts.Requests; r++ {
				if err := ctx.Err(); err != nil {
					return err
				}
				// The decide/observe interleave is a pure function of
				// the (client, request) index — no sampling, so a run
				// is exactly reproducible.
				if opts.ObserveFraction > 0 && float64((c*131+r*17)%100) < opts.ObserveFraction*100 {
					req := BatchObserveRequest{Observations: make([]ObserveRequest, opts.Batch)}
					for i := range req.Observations {
						req.Observations[i] = ObserveRequest{
							Area:      areas[(c*7+r*3+i)%hot],
							StopSec:   syntheticStop(c, r, i, r >= driftAt),
							VehicleID: fmt.Sprintf("load-%04d-%06d", c, r*opts.Batch+i),
						}
					}
					sent := time.Now()
					status, accepted, alarms, retunes, _, err := postObserveBatch(ctx, client, base, req)
					ms := float64(time.Since(sent)) / float64(time.Millisecond)
					lat.Observe(ms)
					observeLat.Observe(ms)
					rec.Add("loadtest_requests_total", 1)
					switch {
					case err != nil:
						rec.Add("loadtest_errors_total", 1)
					case status == http.StatusTooManyRequests:
						rec.Add("loadtest_429_total", 1)
					case status != http.StatusOK:
						rec.Add("loadtest_errors_total", 1)
					default:
						rec.Add("loadtest_observations_total", int64(accepted))
						rec.Add("loadtest_alarms_total", int64(alarms))
						rec.Add("loadtest_retunes_total", int64(retunes))
					}
					continue
				}
				// Settle slots exercise the full competitive-ratio join:
				// a ledger-opted decide batch, then an observe batch that
				// settles every returned decision id.
				settleSlot := opts.SettleFraction > 0 && float64((c*53+r*29)%100) < opts.SettleFraction*100
				req := BatchDecideRequest{Seed: opts.Seed, Requests: make([]DecideRequest, opts.Batch)}
				for i := range req.Requests {
					req.Requests[i] = DecideRequest{
						VehicleID: fmt.Sprintf("load-%04d-%06d", c, r*opts.Batch+i),
						Area:      areas[(c+r+i)%len(areas)],
						Policy:    opts.Policy,
						Ledger:    settleSlot,
					}
					// A controlled share of slots carries a custom
					// break-even interval, forcing a cache-miss prepare.
					if opts.MissFraction > 0 && float64((c*37+r*13+i*7)%100) < opts.MissFraction*100 {
						req.Requests[i].B = 29 + float64(i%3)
					}
				}
				sent := time.Now()
				status, decided, cached, ids, err := postBatch(ctx, client, base, req)
				ms := float64(time.Since(sent)) / float64(time.Millisecond)
				lat.Observe(ms)
				decideLat.Observe(ms)
				rec.Add("loadtest_requests_total", 1)
				switch {
				case err != nil:
					rec.Add("loadtest_errors_total", 1)
				case status == http.StatusTooManyRequests:
					rec.Add("loadtest_429_total", 1)
				case status != http.StatusOK:
					rec.Add("loadtest_errors_total", 1)
				default:
					rec.Add("loadtest_decisions_total", int64(decided))
					rec.Add("loadtest_cached_total", int64(cached))
				}
				if !settleSlot || err != nil || status != http.StatusOK {
					continue
				}
				// Every 16th settle slot corrupts one decision id: the
				// settle is rejected fail-closed as a per-item 404 inside
				// a 200 batch, so the orphan path stays exercised without
				// tripping the gate's error-free requirement.
				orphans := 0
				if (c*31+r)%16 == 0 && len(ids) > 0 && ids[0] != "" {
					ids[0] = fmt.Sprintf("load-orphan-%04d-%06d", c, r)
					orphans = 1
				}
				var oreq BatchObserveRequest
				for i, id := range ids {
					if id == "" {
						continue
					}
					oreq.Observations = append(oreq.Observations, ObserveRequest{
						Area:       areas[(c+r+i)%len(areas)],
						StopSec:    syntheticStop(c, r, i, r >= driftAt),
						VehicleID:  fmt.Sprintf("load-%04d-%06d", c, r*opts.Batch+i),
						DecisionID: id,
					})
				}
				if len(oreq.Observations) == 0 {
					continue
				}
				sent = time.Now()
				status, accepted, alarms, retunes, settled, err := postObserveBatch(ctx, client, base, oreq)
				ms = float64(time.Since(sent)) / float64(time.Millisecond)
				lat.Observe(ms)
				observeLat.Observe(ms)
				rec.Add("loadtest_requests_total", 1)
				switch {
				case err != nil:
					rec.Add("loadtest_errors_total", 1)
				case status == http.StatusTooManyRequests:
					rec.Add("loadtest_429_total", 1)
				case status != http.StatusOK:
					rec.Add("loadtest_errors_total", 1)
				default:
					rec.Add("loadtest_observations_total", int64(accepted))
					rec.Add("loadtest_alarms_total", int64(alarms))
					rec.Add("loadtest_retunes_total", int64(retunes))
					rec.Add("loadtest_settled_total", int64(settled))
					rec.Add("loadtest_orphans_total", int64(orphans))
				}
			}
			return nil
		})
	dur := time.Since(t0).Seconds()
	if err != nil {
		return LoadReport{}, err
	}
	runtime.ReadMemStats(&ms1)
	decided := rec.Registry().SumCounterValues("loadtest_decisions_total")
	rec.Set("loadtest_mallocs_total", float64(ms1.Mallocs-ms0.Mallocs))
	rec.Set("loadtest_alloc_bytes_total", float64(ms1.TotalAlloc-ms0.TotalAlloc))
	rec.Set("loadtest_gc_pause_total_ms", float64(ms1.PauseTotalNs-ms0.PauseTotalNs)/1e6)
	rec.Set("loadtest_gc_cycles", float64(ms1.NumGC-ms0.NumGC))
	if decided > 0 {
		rec.Set("decide_allocs_per_op", float64(ms1.Mallocs-ms0.Mallocs)/float64(decided))
	}

	snap := rec.Snapshot()
	report := LoadReport{
		Clients:  opts.Clients,
		Batch:    opts.Batch,
		Duration: dur,
	}
	report.Requests, _ = snap.CounterValue("loadtest_requests_total")
	report.Decisions, _ = snap.CounterValue("loadtest_decisions_total")
	report.Overloaded, _ = snap.CounterValue("loadtest_429_total")
	report.Errors, _ = snap.CounterValue("loadtest_errors_total")
	report.Observations, _ = snap.CounterValue("loadtest_observations_total")
	report.Alarms, _ = snap.CounterValue("loadtest_alarms_total")
	report.Retunes, _ = snap.CounterValue("loadtest_retunes_total")
	report.Settled, _ = snap.CounterValue("loadtest_settled_total")
	report.Orphans, _ = snap.CounterValue("loadtest_orphans_total")
	if hits, ok := snap.CounterValue("loadtest_cached_total"); ok && report.Decisions > 0 {
		report.CacheHitRate = float64(hits) / float64(report.Decisions)
	}
	if h, ok := snap.HistogramValue("loadtest_request_ms"); ok {
		report.P50, report.P90, report.P99, report.Max = h.P50, h.P90, h.P99, h.Max
	}
	if h, ok := snap.HistogramValue("loadtest_decide_ms"); ok {
		report.DecideP99 = h.P99
	}
	if h, ok := snap.HistogramValue("loadtest_observe_ms"); ok {
		report.ObserveP99 = h.P99
	}
	report.AllocsPerOp, _ = snap.GaugeValue("decide_allocs_per_op")
	report.GCPauseMs, _ = snap.GaugeValue("loadtest_gc_pause_total_ms")
	if c, ok := snap.GaugeValue("loadtest_gc_cycles"); ok {
		report.GCCycles = int64(c)
	}
	// Per-area attribution: present when the recorder is shared with
	// an in-process server (the self-contained loadtest mode).
	for _, h := range snap.TopHistograms("decide_area_ms", 5) {
		area, _ := obs.LabelValue(h.Name, "area")
		report.TopAreas = append(report.TopAreas, AreaLatency{
			Area: area, Count: h.Count, P50: h.P50, P99: h.P99, Max: h.Max,
		})
	}
	if dur > 0 {
		report.RequestQPS = float64(report.Requests) / dur
		report.DecisionQPS = float64(report.Decisions) / dur
	}
	return report, nil
}

// syntheticStop fabricates a deterministic stop length (seconds) for
// one observe slot. Pre-drift stops cluster short (5–24s); post-drift
// stops are systematically longer (22–60s), so the CUSUM mean on the
// capped length shifts enough to alarm on every hot area.
func syntheticStop(c, r, i int, drifted bool) float64 {
	k := c*101 + r*19 + i*7
	if drifted {
		return 22 + float64(k%39)
	}
	return 5 + float64(k%20)
}

// postBatch sends one batch request and returns (status, decisions,
// cache hits, per-slot decision ids). The id slice is index-aligned
// with the request slots; slots whose decision failed or carried no
// ledger opt-in hold "".
func postBatch(ctx context.Context, client *http.Client, base string, req BatchDecideRequest) (int, int, int, []string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/decide/batch", bytes.NewReader(body))
	if err != nil {
		return 0, 0, 0, nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, 0, 0, nil, nil
	}
	var batch BatchDecideResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		return resp.StatusCode, 0, 0, nil, err
	}
	decided, cached := 0, 0
	ids := make([]string, len(batch.Results))
	for i, item := range batch.Results {
		if item.Decision != nil {
			decided++
			if item.Decision.Cached {
				cached++
			}
			ids[i] = item.Decision.DecisionID
		}
	}
	return resp.StatusCode, decided, cached, ids, nil
}

// postObserveBatch sends one observe batch and returns (status,
// accepted, alarms, retunes, settled) from the roll-up counts.
func postObserveBatch(ctx context.Context, client *http.Client, base string, req BatchObserveRequest) (int, int, int, int, int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/observe/batch", bytes.NewReader(body))
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(hreq)
	if err != nil {
		return 0, 0, 0, 0, 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, 0, 0, 0, 0, nil
	}
	var batch BatchObserveResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		return resp.StatusCode, 0, 0, 0, 0, err
	}
	return resp.StatusCode, batch.Accepted, batch.Alarms, batch.Retunes, batch.Settled, nil
}

// discoverAreas fetches the target's configured area IDs.
func discoverAreas(ctx context.Context, client *http.Client, base string) ([]string, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/areas", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("server: loadtest: discover areas: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("server: loadtest: discover areas: status %d", resp.StatusCode)
	}
	var list AreasResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return nil, fmt.Errorf("server: loadtest: discover areas: %w", err)
	}
	if len(list.Areas) == 0 {
		return nil, fmt.Errorf("server: loadtest: target has no areas")
	}
	ids := make([]string, len(list.Areas))
	for i, a := range list.Areas {
		ids[i] = a.ID
	}
	return ids, nil
}
