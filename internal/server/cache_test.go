package server

import (
	"strings"
	"testing"

	"idlereduce/internal/skirental"
)

func testAreas() []AreaState {
	return []AreaState{
		{ID: "chicago", B: 28, Mu: 8, Q: 0.13},
		{ID: "atlanta", B: 28, Mu: 11, Q: 0.05},
	}
}

func TestNewCacheValidates(t *testing.T) {
	cases := []struct {
		name  string
		areas []AreaState
		want  string
	}{
		{"empty", nil, "no areas"},
		{"blank id", []AreaState{{ID: " ", B: 28, Mu: 1, Q: 0.1}}, "area id empty"},
		{"bad b", []AreaState{{ID: "x", B: 0, Mu: 1, Q: 0.1}}, "infeasible"},
		{"infeasible mu", []AreaState{{ID: "x", B: 28, Mu: 30, Q: 0.5}}, "infeasible"},
		{"bad q", []AreaState{{ID: "x", B: 28, Mu: 1, Q: 1.5}}, "infeasible"},
		{"duplicate", []AreaState{
			{ID: "X", B: 28, Mu: 1, Q: 0.1},
			{ID: "x", B: 28, Mu: 2, Q: 0.1},
		}, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewCache(tc.areas, nil)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("NewCache(%v) err = %v, want containing %q", tc.areas, err, tc.want)
			}
		})
	}
}

func TestCacheGetCaseInsensitive(t *testing.T) {
	c, err := NewCache(testAreas(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"chicago", "Chicago", " CHICAGO "} {
		if _, ok := c.Get(id); !ok {
			t.Errorf("Get(%q) missed", id)
		}
	}
	if _, ok := c.Get("nowhere"); ok {
		t.Error("Get(nowhere) unexpectedly hit")
	}
}

func TestCacheUpdateSwapsStrategy(t *testing.T) {
	c, err := NewCache(testAreas(), nil)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := c.Get("chicago")
	if got := before.Info().Choice; got != "DET" {
		t.Fatalf("boot choice %s, want DET", got)
	}
	// Heavy long-stop mass with little short mass pushes the optimum
	// to TOI (shut off immediately).
	next, err := c.Update("chicago", 0, skirental.Stats{MuBMinus: 5, QBPlus: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if next.Info().Choice != "TOI" {
		t.Errorf("updated choice %s, want TOI", next.Info().Choice)
	}
	if next.rec.state.B != 28 {
		t.Errorf("b = 0 should keep the old break-even, got %v", next.rec.state.B)
	}
	if next.rec.version != before.rec.version+1 {
		t.Errorf("version %d, want %d", next.rec.version, before.rec.version+1)
	}
	// The old entry is immutable; readers holding it keep a snapshot.
	if before.Info().Choice != "DET" {
		t.Error("old entry mutated by update")
	}
	// Untouched areas keep their entries.
	if a, _ := c.Get("atlanta"); a.rec.version != 1 {
		t.Errorf("atlanta version %d after chicago update", a.rec.version)
	}
}

func TestCacheUpdateRejectsAndKeepsOld(t *testing.T) {
	c, err := NewCache(testAreas(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Update("nowhere", 0, skirental.Stats{}); err == nil {
		t.Error("update of unknown area succeeded")
	}
	if _, err := c.Update("chicago", 0, skirental.Stats{MuBMinus: 100, QBPlus: 0.9}); err == nil {
		t.Error("infeasible update succeeded")
	}
	got, _ := c.Get("chicago")
	if got.rec.version != 1 || got.rec.state.Mu != 8 {
		t.Errorf("failed update changed the entry: %+v", got.rec.state)
	}
}

func TestCacheListSorted(t *testing.T) {
	c, err := NewCache(testAreas(), nil)
	if err != nil {
		t.Fatal(err)
	}
	list := c.List()
	if len(list) != 2 || list[0].rec.state.ID != "atlanta" || list[1].rec.state.ID != "chicago" {
		ids := make([]string, len(list))
		for i, s := range list {
			ids[i] = s.rec.state.ID
		}
		t.Errorf("List order %v", ids)
	}
	if c.Len() != 2 {
		t.Errorf("Len %d", c.Len())
	}
}

func TestDefaultAreaStates(t *testing.T) {
	areas, err := DefaultAreaStates(28)
	if err != nil {
		t.Fatal(err)
	}
	if len(areas) != 3 {
		t.Fatalf("areas %d", len(areas))
	}
	for _, a := range areas {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.ID, err)
		}
		if a.Mu <= 0 || a.Q <= 0 || a.Q >= 1 {
			t.Errorf("%s: degenerate stats mu=%v q=%v", a.ID, a.Mu, a.Q)
		}
	}
}

func TestReadWriteAreaStates(t *testing.T) {
	areas, err := DefaultAreaStates(28)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteAreaStates(&buf, areas); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAreaStates(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(areas) || back[0] != areas[0] {
		t.Errorf("round trip mismatch: %+v vs %+v", back, areas)
	}
	if _, err := ReadAreaStates(strings.NewReader(`[]`)); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := ReadAreaStates(strings.NewReader(`[{"id":"x","b":28,"mu":1,"q":0.1,"bogus":1}]`)); err == nil {
		t.Error("unknown config field accepted")
	}
	if _, err := ReadAreaStates(strings.NewReader(`[{"id":"x","b":-1,"mu":1,"q":0.1}]`)); err == nil {
		t.Error("infeasible config accepted")
	}
}
