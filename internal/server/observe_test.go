package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"idlereduce/internal/skirental"
)

// retuneTestConfig is a drift detector tuned for short test streams:
// warm after 10 stops, CUSUM baseline over the first 10.
func retuneTestConfig() RetuneConfig {
	return RetuneConfig{MinObservations: 10, DriftWarmup: 10}
}

// driveSteady streams n unremarkable short stops into an area and
// fails on any alarm.
func driveSteady(t *testing.T, url, area string, n int) ObserveResponse {
	t.Helper()
	var last ObserveResponse
	for i := 0; i < n; i++ {
		body := fmt.Sprintf(`{"area":%q,"stop_sec":%d,"vehicle_id":"obs-%d"}`, area, 4+i%5, i)
		status, raw := doJSON(t, "POST", url+"/v1/observe", body, &last)
		if status != http.StatusOK {
			t.Fatalf("observe %d: status %d: %s", i, status, raw)
		}
		if last.Alarm {
			t.Fatalf("steady stop %d raised an alarm: %+v", i, last)
		}
	}
	return last
}

// driveDrift streams long stops until an alarm fires (or gives up).
func driveDrift(t *testing.T, url, area string, max int) ObserveResponse {
	t.Helper()
	for i := 0; i < max; i++ {
		var resp ObserveResponse
		body := fmt.Sprintf(`{"area":%q,"stop_sec":%d}`, area, 24+i%4)
		status, raw := doJSON(t, "POST", url+"/v1/observe", body, &resp)
		if status != http.StatusOK {
			t.Fatalf("drift observe %d: status %d: %s", i, status, raw)
		}
		if resp.Alarm {
			return resp
		}
	}
	t.Fatalf("no alarm after %d drifted stops", max)
	return ObserveResponse{}
}

// areaInfo fetches one area's row from the GET /v1/areas listing.
func areaInfo(t *testing.T, url, id string) AreaInfo {
	t.Helper()
	var resp AreasResponse
	if status, raw := doJSON(t, "GET", url+"/v1/areas", "", &resp); status != http.StatusOK {
		t.Fatalf("areas listing: status %d: %s", status, raw)
	}
	for _, a := range resp.Areas {
		if a.ID == id {
			return a
		}
	}
	t.Fatalf("area %q not in listing", id)
	return AreaInfo{}
}

func TestObserveValidation(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		body   string
		status int
		code   string
	}{
		{`{"stop_sec":5}`, http.StatusBadRequest, "bad_request"},
		{`{"area":"nowhere","stop_sec":5}`, http.StatusNotFound, "unknown_area"},
		{`{"area":"chicago","stop_sec":-1}`, http.StatusBadRequest, "bad_request"},
		{`{"area":"chicago","stop_sec":"soon"}`, http.StatusBadRequest, "bad_request"},
		{`{"area":"chicago","stop_sec":5,"bogus":1}`, http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		status, raw := doJSON(t, "POST", ts.URL+"/v1/observe", tc.body, nil)
		if status != tc.status || errCode(t, raw) != tc.code {
			t.Errorf("observe %s: got %d %s, want %d %s", tc.body, status, errCode(t, raw), tc.status, tc.code)
		}
	}
}

func TestObserveStreamsPerAreaStats(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var resp ObserveResponse
	for i := 1; i <= 3; i++ {
		status, raw := doJSON(t, "POST", ts.URL+"/v1/observe",
			`{"area":"chicago","stop_sec":6}`, &resp)
		if status != http.StatusOK {
			t.Fatalf("observe: status %d: %s", status, raw)
		}
		if resp.Seq != int64(i) || resp.Area != "chicago" {
			t.Fatalf("observe %d: %+v", i, resp)
		}
		if resp.Warm {
			t.Fatalf("warm after %d stops with default MinObservations", i)
		}
		if resp.StatsVersion != 1 {
			t.Fatalf("stats version %d before any retune", resp.StatsVersion)
		}
	}
	if resp.Mu != 6 || resp.Q != 0 {
		t.Fatalf("estimates after three 6s stops: mu %v q %v", resp.Mu, resp.Q)
	}
	// Streams are per-area: atlanta starts its own sequence.
	status, _ := doJSON(t, "POST", ts.URL+"/v1/observe", `{"area":"atlanta","stop_sec":6}`, &resp)
	if status != http.StatusOK || resp.Seq != 1 {
		t.Fatalf("atlanta stream: status %d, seq %d", status, resp.Seq)
	}
}

// TestObserveRetuneRederivesStrategy is the tentpole's closed loop: a
// warm CUSUM alarm must atomically re-derive the area's strategies
// from the streamed estimates, visible as a version bump and new
// statistics in both the area listing and subsequent decides.
func TestObserveRetuneRederivesStrategy(t *testing.T) {
	audit := &syncBuffer{}
	s, ts := newTestServer(t, func(c *Config) {
		c.Retune = retuneTestConfig()
		c.AuditLog = audit
	})

	before := areaInfo(t, ts.URL, "chicago")
	driveSteady(t, ts.URL, "chicago", 20)
	alarm := driveDrift(t, ts.URL, "chicago", 60)
	if !alarm.Retuned {
		t.Fatalf("warm alarm did not retune: %+v", alarm)
	}
	if alarm.StatsVersion != before.Version+1 {
		t.Fatalf("retune stats version %d, want %d", alarm.StatsVersion, before.Version+1)
	}

	after := areaInfo(t, ts.URL, "chicago")
	if after.Version != alarm.StatsVersion {
		t.Errorf("listing version %d, observe reported %d", after.Version, alarm.StatsVersion)
	}
	if after.Mu != alarm.Mu || after.Q != alarm.Q {
		t.Errorf("listing stats (%v, %v) != streamed estimates (%v, %v)",
			after.Mu, after.Q, alarm.Mu, alarm.Q)
	}
	if after.B != before.B {
		t.Errorf("retune moved B from %v to %v; it must only swap stats", before.B, after.B)
	}
	if after.Mu == before.Mu && after.Q == before.Q {
		t.Error("retune did not change the serving statistics")
	}
	// Decides after the retune serve the re-derived strategy and stamp
	// the bumped version into the audit log.
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/decide",
		`{"vehicle_id":"post-retune","area":"chicago"}`, nil); status != http.StatusOK {
		t.Fatal("post-retune decide failed")
	}
	if err := s.auditW.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(audit.String()), "\n")
	var decRec AuditRecord
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &decRec); err != nil {
		t.Fatal(err)
	}
	if decRec.Choice == "" || decRec.StatsVersion != after.Version {
		t.Errorf("post-retune decide audit record %+v, want stats version %d", decRec, after.Version)
	}
	rep, err := VerifyAudit(strings.NewReader(audit.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("audit replay across the retune failed: %+v", rep)
	}
}

func TestObserveRetuneDisabled(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) {
		cfg := retuneTestConfig()
		cfg.Disabled = true
		c.Retune = cfg
	})
	driveSteady(t, ts.URL, "chicago", 20)
	alarm := driveDrift(t, ts.URL, "chicago", 60)
	if alarm.Retuned {
		t.Fatalf("shadow mode retuned: %+v", alarm)
	}
	after := areaInfo(t, ts.URL, "chicago")
	if after.Version != 1 {
		t.Errorf("shadow mode bumped version to %d", after.Version)
	}
}

// TestObserveStreamResetsOnBChange pins the invariant that moments are
// only meaningful at one break-even interval: when an area's B moves,
// the observation stream restarts.
func TestObserveStreamResetsOnBChange(t *testing.T) {
	s, ts := newTestServer(t, nil)
	driveSteady(t, ts.URL, "chicago", 5)
	rec, _ := s.cache.Area("chicago")
	if _, err := s.cache.Update("chicago", 35,
		skirental.Stats{MuBMinus: rec.state.Mu, QBPlus: rec.state.Q}); err != nil {
		t.Fatal(err)
	}
	var resp ObserveResponse
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/observe",
		`{"area":"chicago","stop_sec":6}`, &resp); status != http.StatusOK {
		t.Fatal("observe after B change failed")
	}
	if resp.Seq != 1 {
		t.Errorf("stream continued at seq %d across a B change", resp.Seq)
	}
}

func TestObserveBatchSequentialAndRolledUp(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var items []string
	for i := 0; i < 6; i++ {
		items = append(items, fmt.Sprintf(`{"area":"chicago","stop_sec":%d}`, 5+i))
	}
	items = append(items, `{"area":"nowhere","stop_sec":5}`, `{"area":"atlanta","stop_sec":7}`)
	body := fmt.Sprintf(`{"observations":[%s]}`, strings.Join(items, ","))

	var resp BatchObserveResponse
	status, raw := doJSON(t, "POST", ts.URL+"/v1/observe/batch", body, &resp)
	if status != http.StatusOK {
		t.Fatalf("batch: status %d: %s", status, raw)
	}
	if len(resp.Results) != 8 || resp.Accepted != 7 {
		t.Fatalf("batch reply %+v", resp)
	}
	// Items apply strictly in input order: chicago slots carry seq 1..6.
	for i := 0; i < 6; i++ {
		r := resp.Results[i].Result
		if r == nil || r.Seq != int64(i+1) {
			t.Fatalf("slot %d: %+v, want chicago seq %d", i, resp.Results[i], i+1)
		}
	}
	if resp.Results[6].Error == nil || resp.Results[6].Error.Code != "unknown_area" {
		t.Fatalf("unknown-area slot: %+v", resp.Results[6])
	}
	if r := resp.Results[7].Result; r == nil || r.Area != "atlanta" || r.Seq != 1 {
		t.Fatalf("atlanta slot: %+v", resp.Results[7])
	}
	// Replaying the identical batch on a fresh server gives the
	// identical reply bytes (observe is deterministic like decide).
	_, ts2 := newTestServer(t, nil)
	status2, raw2 := doJSON(t, "POST", ts2.URL+"/v1/observe/batch", body, nil)
	if status2 != status || string(raw2) != string(raw) {
		t.Fatalf("batch reply not reproducible:\n%s\n%s", raw, raw2)
	}
}

func TestObserveBatchLimits(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBatch = 2 })
	if status, raw := doJSON(t, "POST", ts.URL+"/v1/observe/batch",
		`{"observations":[]}`, nil); status != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d: %s", status, raw)
	}
	big := `{"observations":[{"area":"chicago","stop_sec":1},{"area":"chicago","stop_sec":2},{"area":"chicago","stop_sec":3}]}`
	status, raw := doJSON(t, "POST", ts.URL+"/v1/observe/batch", big, nil)
	if status != http.StatusRequestEntityTooLarge || errCode(t, raw) != "too_large" {
		t.Fatalf("oversize batch: status %d: %s", status, raw)
	}
}

// TestObserveConcurrentWithDecides exercises the lock split under the
// race detector: retunes on one area must not corrupt or deadlock
// decide traffic on others.
func TestObserveConcurrentWithDecides(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Retune = retuneTestConfig() })
	var wg sync.WaitGroup
	errs := make(chan string, 4)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 120; i++ {
			stop := 5
			if i > 40 {
				stop = 26 // drifted regime: alarms and retunes fire mid-run
			}
			status, raw := doJSON(t, "POST", ts.URL+"/v1/observe",
				fmt.Sprintf(`{"area":"chicago","stop_sec":%d}`, stop), nil)
			if status != http.StatusOK {
				errs <- fmt.Sprintf("observe %d: %d %s", i, status, raw)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		var want json.RawMessage
		for i := 0; i < 120; i++ {
			status, raw := doJSON(t, "POST", ts.URL+"/v1/decide",
				`{"vehicle_id":"c-1","area":"atlanta","seed":3}`, nil)
			if status != http.StatusOK {
				errs <- fmt.Sprintf("decide %d: %d %s", i, status, raw)
				return
			}
			// Atlanta is untouched by the chicago retunes, so its reply
			// bytes must stay frozen throughout.
			if want == nil {
				want = raw
			} else if string(raw) != string(want) {
				errs <- fmt.Sprintf("decide %d changed under sibling retunes:\n%s\n%s", i, raw, want)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
