package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

// newTestServer builds a Server on the standard test areas and mounts
// it on an httptest listener.
func newTestServer(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server) {
	t.Helper()
	cfg := Config{Areas: testAreas()}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// doJSON issues a request with a JSON body and decodes the reply into
// out (skipped when out is nil), returning the status and raw body.
func doJSON(t *testing.T, method, url, body string, out any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s %s reply %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, raw
}

// errCode extracts the structured error code of a reply body.
func errCode(t *testing.T, raw []byte) string {
	t.Helper()
	var e ErrorResponse
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("not a structured error: %q", raw)
	}
	return e.Error.Code
}

func TestDecideCachedPath(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var resp DecideResponse
	status, _ := doJSON(t, "POST", ts.URL+"/v1/decide",
		`{"vehicle_id":"v-1","area":"Chicago","seed":42}`, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if !resp.Cached || resp.Area != "chicago" || resp.B != 28 || resp.Seed != 42 {
		t.Errorf("resp %+v", resp)
	}
	if resp.Choice != "DET" || resp.ThresholdSec != 28 {
		t.Errorf("choice %s threshold %v, want DET at B", resp.Choice, resp.ThresholdSec)
	}
	if resp.WorstCaseCR < 1 {
		t.Errorf("worst-case CR %v < 1", resp.WorstCaseCR)
	}
}

func TestDecideCustomBIsCacheMiss(t *testing.T) {
	s, ts := newTestServer(t, nil)
	var resp DecideResponse
	status, _ := doJSON(t, "POST", ts.URL+"/v1/decide",
		`{"vehicle_id":"v-1","area":"chicago","b":100}`, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if resp.Cached || resp.B != 100 {
		t.Errorf("resp %+v, want uncached custom-B decision", resp)
	}
	snap := s.Recorder().Snapshot()
	if n, _ := snap.CounterValue("decide_cache_misses_total"); n != 1 {
		t.Errorf("cache misses %d, want 1", n)
	}
}

func TestDecideValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, nil)
	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"missing vehicle", `{"area":"chicago"}`, 400, "bad_request"},
		{"missing area", `{"vehicle_id":"v"}`, 400, "bad_request"},
		{"unknown area", `{"vehicle_id":"v","area":"mars"}`, 404, "unknown_area"},
		{"negative b", `{"vehicle_id":"v","area":"chicago","b":-3}`, 400, "bad_request"},
		{"unknown field", `{"vehicle_id":"v","area":"chicago","bogus":1}`, 400, "bad_request"},
		{"trailing body", `{"vehicle_id":"v","area":"chicago"}{"x":1}`, 400, "bad_request"},
		{"not json", `hello`, 400, "bad_request"},
		{"infeasible custom b", `{"vehicle_id":"v","area":"chicago","b":0.001}`, 422, "invalid_stats"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := doJSON(t, "POST", ts.URL+"/v1/decide", tc.body, nil)
			if status != tc.status {
				t.Fatalf("status %d body %s, want %d", status, raw, tc.status)
			}
			if got := errCode(t, raw); got != tc.code {
				t.Errorf("code %q, want %q", got, tc.code)
			}
		})
	}
}

func TestBatchOrderAndEmbeddedErrors(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.Workers = 4 })
	body := `{"seed":9,"requests":[
		{"vehicle_id":"a","area":"chicago"},
		{"vehicle_id":"b","area":"mars"},
		{"vehicle_id":"c","area":"atlanta"}]}`
	var resp BatchDecideResponse
	status, _ := doJSON(t, "POST", ts.URL+"/v1/decide/batch", body, &resp)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if resp.Seed != 9 || len(resp.Results) != 3 {
		t.Fatalf("resp %+v", resp)
	}
	if resp.Results[0].Decision == nil || resp.Results[0].Decision.VehicleID != "a" {
		t.Errorf("slot 0: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == nil || resp.Results[1].Error.Code != "unknown_area" {
		t.Errorf("slot 1: %+v", resp.Results[1])
	}
	if resp.Results[2].Decision == nil || resp.Results[2].Decision.Area != "atlanta" {
		t.Errorf("slot 2: %+v", resp.Results[2])
	}
}

func TestBatchStructuralErrors(t *testing.T) {
	_, ts := newTestServer(t, func(c *Config) { c.MaxBatch = 2 })
	status, raw := doJSON(t, "POST", ts.URL+"/v1/decide/batch", `{"requests":[]}`, nil)
	if status != 400 || errCode(t, raw) != "bad_request" {
		t.Errorf("empty batch: %d %s", status, raw)
	}
	big := `{"requests":[` + strings.Repeat(`{"vehicle_id":"v","area":"chicago"},`, 2) +
		`{"vehicle_id":"v","area":"chicago"}]}`
	status, raw = doJSON(t, "POST", ts.URL+"/v1/decide/batch", big, nil)
	if status != http.StatusRequestEntityTooLarge || errCode(t, raw) != "too_large" {
		t.Errorf("oversized batch: %d %s", status, raw)
	}
}

func TestBatchMatchesSingles(t *testing.T) {
	_, ts := newTestServer(t, nil)
	body := `{"seed":77,"requests":[
		{"vehicle_id":"x","area":"chicago"},
		{"vehicle_id":"y","area":"atlanta","b":40}]}`
	var batch BatchDecideResponse
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/decide/batch", body, &batch); status != 200 {
		t.Fatal("batch failed")
	}
	var single DecideResponse
	doJSON(t, "POST", ts.URL+"/v1/decide", `{"vehicle_id":"x","area":"chicago","seed":77}`, &single)
	if !reflect.DeepEqual(*batch.Results[0].Decision, single) {
		t.Errorf("batch slot != single decide:\n%+v\n%+v", *batch.Results[0].Decision, single)
	}
}

func TestStatsUpdateFlow(t *testing.T) {
	s, ts := newTestServer(t, nil)
	var info AreaInfo
	status, _ := doJSON(t, "PUT", ts.URL+"/v1/areas/chicago/stats", `{"mu":5,"q":0.5}`, &info)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if info.Choice != "TOI" || info.Version != 2 || info.Mu != 5 {
		t.Errorf("info %+v", info)
	}
	// Subsequent decisions use the swapped strategy.
	var resp DecideResponse
	doJSON(t, "POST", ts.URL+"/v1/decide", `{"vehicle_id":"v","area":"chicago"}`, &resp)
	if resp.Choice != "TOI" || resp.ThresholdSec != 0 {
		t.Errorf("post-update decide %+v", resp)
	}
	if n, _ := s.Recorder().Snapshot().CounterValue("stats_updates_total"); n != 1 {
		t.Errorf("stats_updates_total %d", n)
	}

	status, raw := doJSON(t, "PUT", ts.URL+"/v1/areas/mars/stats", `{"mu":1,"q":0.1}`, nil)
	if status != 404 || errCode(t, raw) != "unknown_area" {
		t.Errorf("unknown area: %d %s", status, raw)
	}
	status, raw = doJSON(t, "PUT", ts.URL+"/v1/areas/chicago/stats", `{"mu":100,"q":0.9}`, nil)
	if status != 422 || errCode(t, raw) != "invalid_stats" {
		t.Errorf("infeasible: %d %s", status, raw)
	}
	status, raw = doJSON(t, "PUT", ts.URL+"/v1/areas/chicago/stats", `{"mu":1,"q":0.1,"nope":2}`, nil)
	if status != 400 || errCode(t, raw) != "bad_request" {
		t.Errorf("unknown field: %d %s", status, raw)
	}
}

func TestAreasListing(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var resp AreasResponse
	status, _ := doJSON(t, "GET", ts.URL+"/v1/areas", "", &resp)
	if status != http.StatusOK || len(resp.Areas) != 2 {
		t.Fatalf("status %d areas %+v", status, resp)
	}
	if resp.Areas[0].ID != "atlanta" || resp.Areas[1].ID != "chicago" {
		t.Errorf("order %v, %v", resp.Areas[0].ID, resp.Areas[1].ID)
	}
}

func TestHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var hr HealthResponse
	status, _ := doJSON(t, "GET", ts.URL+"/healthz", "", &hr)
	if status != 200 || hr.Status != "ok" || hr.Areas != 2 {
		t.Errorf("healthz %d %+v", status, hr)
	}
	// Generate a little traffic, then scrape.
	doJSON(t, "POST", ts.URL+"/v1/decide", `{"vehicle_id":"v","area":"chicago"}`, nil)
	status, raw := doJSON(t, "GET", ts.URL+"/metrics", "", nil)
	if status != 200 {
		t.Fatalf("metrics status %d", status)
	}
	text := string(raw)
	for _, want := range []string{
		`http_requests_total{route="decide",code="200"} 1`,
		"decide_cache_hits_total 1",
		`# TYPE http_request_ms summary`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
	status, raw = doJSON(t, "GET", ts.URL+"/metrics?format=json", "", nil)
	if status != 200 || !json.Valid(raw) {
		t.Errorf("json metrics: %d %.80s", status, raw)
	}
}

func TestUnknownRouteAndMethod(t *testing.T) {
	_, ts := newTestServer(t, nil)
	status, raw := doJSON(t, "GET", ts.URL+"/nope", "", nil)
	if status != 404 || errCode(t, raw) != "not_found" {
		t.Errorf("unknown route: %d %s", status, raw)
	}
	status, raw = doJSON(t, "GET", ts.URL+"/v1/decide", "", nil)
	if status != http.StatusMethodNotAllowed || errCode(t, raw) != "method_not_allowed" {
		t.Errorf("GET decide: %d %s, want structured 405", status, raw)
	}
	status, raw = doJSON(t, "POST", ts.URL+"/v1/areas/chicago/stats", `{"mu":1,"q":0.1}`, nil)
	if status != http.StatusMethodNotAllowed || errCode(t, raw) != "method_not_allowed" {
		t.Errorf("POST stats: %d %s, want structured 405", status, raw)
	}
}

func TestOverloadSheds429(t *testing.T) {
	s, ts := newTestServer(t, func(c *Config) { c.MaxInflight = 2 })
	// Fill the limiter as if two requests were mid-flight.
	s.inflight <- struct{}{}
	s.inflight <- struct{}{}
	status, raw := doJSON(t, "POST", ts.URL+"/v1/decide", `{"vehicle_id":"v","area":"chicago"}`, nil)
	if status != http.StatusTooManyRequests || errCode(t, raw) != "overloaded" {
		t.Fatalf("overloaded: %d %s", status, raw)
	}
	// healthz and metrics bypass the limiter so probes keep passing.
	if st, _ := doJSON(t, "GET", ts.URL+"/healthz", "", nil); st != 200 {
		t.Errorf("healthz under overload: %d", st)
	}
	if st, _ := doJSON(t, "GET", ts.URL+"/metrics", "", nil); st != 200 {
		t.Errorf("metrics under overload: %d", st)
	}
	// Draining one slot readmits traffic.
	<-s.inflight
	if st, _ := doJSON(t, "POST", ts.URL+"/v1/decide", `{"vehicle_id":"v","area":"chicago"}`, nil); st != 200 {
		t.Errorf("post-drain decide: %d", st)
	}
	<-s.inflight
	snap := s.Recorder().Snapshot()
	if n, _ := snap.CounterValue("http_overload_total"); n != 1 {
		t.Errorf("http_overload_total %d", n)
	}
	if n, _ := snap.CounterValue(`http_requests_total{route="decide",code="429"}`); n != 1 {
		t.Errorf("429 counter %d", n)
	}
}

func TestRequestCountsMatchTraffic(t *testing.T) {
	s, ts := newTestServer(t, nil)
	const n = 25
	for i := 0; i < n; i++ {
		body := fmt.Sprintf(`{"vehicle_id":"v-%d","area":"chicago"}`, i)
		if st, _ := doJSON(t, "POST", ts.URL+"/v1/decide", body, nil); st != 200 {
			t.Fatalf("decide %d: status %d", i, st)
		}
	}
	snap := s.Recorder().Snapshot()
	if got, _ := snap.CounterValue(`http_requests_total{route="decide",code="200"}`); got != n {
		t.Errorf("request counter %d, want %d", got, n)
	}
	if got, _ := snap.CounterValue("decide_cache_hits_total"); got != n {
		t.Errorf("cache hits %d, want %d", got, n)
	}
	h, ok := snap.HistogramValue(`http_request_ms{route="decide"}`)
	if !ok || h.Count != n {
		t.Errorf("latency histogram %+v, want count %d", h, n)
	}
}
