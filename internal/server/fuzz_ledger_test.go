package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"

	"idlereduce/internal/ledger"
)

// FuzzLedgerObserve throws decision-settling observations at the
// observe handler: arbitrary decision ids, real ids minted by a
// ledger-opted decide, duplicate settles of the same id, ids whose
// pending entry expired before the settle arrived, and raw bytes
// spliced into the decision_id position. Runs in CI's fuzz-smoke job.
//
// Invariants: never a 5xx; every rejection carries a structured error
// code; a second settle of a settled id is exactly 409
// duplicate_settle; a settle of an expired or never-issued id (with a
// valid stop) is exactly 404 unknown_decision, fail-closed — the
// observation stream is not advanced.
func FuzzLedgerObserve(f *testing.F) {
	f.Add("", 5.0, uint8(0))
	f.Add("no-such-decision", 5.0, uint8(0))
	f.Add("x", -1.0, uint8(1))
	f.Add("x", 1e308, uint8(2))
	f.Add("\x00\xff", 0.0, uint8(3))
	f.Add(`"},"extra":{"a":`, 12.5, uint8(4))
	f.Add("dup", 28.1, uint8(2))
	f.Add("expired", 3.0, uint8(3))

	f.Fuzz(func(t *testing.T, rawID string, stop float64, mode uint8) {
		s, err := New(Config{
			Areas:  testAreas(),
			Retune: RetuneConfig{Disabled: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		h := s.Handler()
		post := func(path string, body []byte) (int, []byte) {
			r := httptest.NewRequest("POST", path, bytes.NewReader(body))
			r.Header.Set("Content-Type", "application/json")
			w := httptest.NewRecorder()
			h.ServeHTTP(w, r)
			return w.Code, w.Body.Bytes()
		}

		// Mint one real pending decision over the wire.
		status, reply := post("/v1/decide", []byte(`{"vehicle_id":"fz","area":"chicago","seed":42,"ledger":true}`))
		if status != http.StatusOK {
			t.Fatalf("ledger decide failed: %d %s", status, reply)
		}
		var dec DecideResponse
		if err := json.Unmarshal(reply, &dec); err != nil || dec.DecisionID == "" {
			t.Fatalf("ledger decide returned no decision id: %s", reply)
		}

		// Plant a pending entry whose join window ended long ago, so the
		// settle-after-expiry path is reachable without sleeping.
		const expiredID = "fuzz-expired-000001"
		if _, err := s.ledger.Issue(ledger.Pending{
			ID: expiredID, Area: "chicago", Engine: "det",
			B: 28, ThresholdSec: 28, IssuedUnixMS: 1,
		}); err != nil {
			t.Fatal(err)
		}

		id := rawID
		switch mode % 4 {
		case 1:
			id = dec.DecisionID // real pending id
		case 2:
			id = dec.DecisionID // settled below, then settled again
		case 3:
			id = expiredID // expired before the settle arrives
		}
		// Matches the handler's stop validation: finite, non-negative.
		validStop := stop >= 0 && !math.IsNaN(stop) && !math.IsInf(stop, 0)

		var streamSeq int64
		if mode%4 == 2 {
			// First settle with a known-good stop so the second is a
			// guaranteed duplicate regardless of the fuzzed stop.
			status, reply := post("/v1/observe",
				[]byte(fmt.Sprintf(`{"area":"chicago","stop_sec":7,"decision_id":%s}`, strconv.Quote(id))))
			if status != http.StatusOK {
				t.Fatalf("priming settle failed: %d %s", status, reply)
			}
			streamSeq++
		}

		body := []byte(fmt.Sprintf(`{"area":"chicago","stop_sec":%g,"decision_id":%s}`, stop, strconv.Quote(id)))
		status, reply = post("/v1/observe", body)
		switch {
		case status >= 500:
			t.Fatalf("observe 5xx for %q: %d %s", body, status, reply)
		case status != http.StatusOK:
			code := errCode(t, reply)
			if code == "" {
				t.Fatalf("rejection without structured error for %q: %s", body, reply)
			}
			if validStop && mode%4 == 2 && code != "duplicate_settle" {
				t.Fatalf("duplicate settle got code %q (want duplicate_settle): %s", code, reply)
			}
			if validStop && mode%4 == 3 && code != "unknown_decision" {
				t.Fatalf("expired settle got code %q (want unknown_decision): %s", code, reply)
			}
		default:
			if mode%4 == 2 || mode%4 == 3 {
				t.Fatalf("settle of %s id unexpectedly succeeded: %s", map[uint8]string{2: "settled", 3: "expired"}[mode%4], reply)
			}
			streamSeq++
		}
		if validStop && mode%4 == 2 && status != http.StatusConflict {
			t.Fatalf("duplicate settle got status %d (want 409): %s", status, reply)
		}
		if validStop && mode%4 == 3 && status != http.StatusNotFound {
			t.Fatalf("expired settle got status %d (want 404): %s", status, reply)
		}

		// A failed join must not have advanced the observation stream:
		// a plain observe lands at exactly seq = accepted-so-far + 1.
		probeStatus, probeReply := post("/v1/observe", []byte(`{"area":"chicago","stop_sec":2}`))
		if probeStatus != http.StatusOK {
			t.Fatalf("probe observe failed: %d %s", probeStatus, probeReply)
		}
		var probe ObserveResponse
		if err := json.Unmarshal(probeReply, &probe); err != nil {
			t.Fatal(err)
		}
		if probe.Seq != streamSeq+1 {
			t.Fatalf("observation stream at seq %d, want %d (rejected settles must not advance it)", probe.Seq, streamSeq+1)
		}

		// Raw bytes spliced unquoted into the decision_id position:
		// malformed JSON and mutated envelopes must reject cleanly.
		raw := append([]byte(`{"area":"chicago","stop_sec":1,"decision_id":`), rawID...)
		raw = append(raw, '}')
		if status, reply := post("/v1/observe", raw); status >= 500 {
			t.Fatalf("observe 5xx for raw %q: %d %s", raw, status, reply)
		} else if status != http.StatusOK && errCode(t, reply) == "" {
			t.Fatalf("rejection without structured error for raw %q: %s", raw, reply)
		}

		// The same body as a batch element must never 5xx either.
		batch := append([]byte(`{"observations":[`), body...)
		batch = append(batch, []byte(`]}`)...)
		if status, reply := post("/v1/observe/batch", batch); status >= 500 {
			t.Fatalf("batch 5xx for %q: %d %s", batch, status, reply)
		}
	})
}
