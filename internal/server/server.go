// Package server implements idled, the decision-serving daemon: a
// low-latency HTTP API over the constrained ski-rental policy of the
// paper. The serving shape follows the algorithm's structure — a
// decision is a pure function of two per-area statistics (mu_B-, q_B+)
// and the break-even interval B, so the vertex selection is precomputed
// once per statistics update and swapped atomically into a read-mostly
// cache; the per-request work is a pointer load, a threshold draw from
// a derived deterministic RNG stream, and JSON encoding.
//
// Endpoints (see docs/SERVER.md for schemas and examples):
//
//	POST /v1/decide              one decision
//	POST /v1/decide/batch        order-preserving parallel fan-out
//	POST /v1/observe             stream one completed stop observation
//	POST /v1/observe/batch       stream observations in input order
//	PUT  /v1/areas/{id}/stats    swap an area's statistics
//	GET  /v1/snapshot            checksummed state-plane snapshot
//	POST /v1/snapshot            live restore of a snapshot
//	GET  /v1/areas               list cached strategies (?policy= view)
//	GET  /v1/policies            list registered policy engines
//	GET  /v1/cr                  competitive-ratio ledger table
//	GET  /v1/history             metrics time series (ring-buffer sampler)
//	GET  /v1/buildinfo           version, Go version, start time, uptime
//	GET  /healthz                liveness (bypasses the limiter)
//	GET  /metrics                obs registry snapshot (Prometheus/JSON)
//
// Robustness: read/write timeouts on the listener, a per-request
// context deadline, a bounded in-flight limiter returning 429 on
// overload, graceful drain on shutdown, and structured JSON errors.
//
// Forensics: every request gets an X-Request-Id (assigned or
// propagated); with a TraceLog configured each request emits a span
// JSONL record carrying the id, route, and decision attributes, and
// with an AuditLog configured every decision appends an AuditRecord
// that VerifyAudit can replay bit-for-bit (see docs/OBSERVABILITY.md).
package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"idlereduce/internal/ledger"
	"idlereduce/internal/obs"
	"idlereduce/internal/policy"
	"idlereduce/internal/predict"
)

// Config parameterizes a Server. The zero value of every field has a
// sane default applied by New.
type Config struct {
	// Addr is the listen address (default "127.0.0.1:8080").
	Addr string
	// Workers bounds the batch fan-out pool (0 = GOMAXPROCS).
	Workers int
	// MaxInflight bounds concurrently served /v1/* requests; excess
	// requests get 429 (default 1024).
	MaxInflight int
	// MaxBatch bounds items per batch request; larger batches get 413
	// (default 4096).
	MaxBatch int
	// RootSeed seeds decision randomness when a request carries no seed
	// (default 20140601, the repo-wide experiment seed).
	RootSeed uint64
	// RequestTimeout is the per-request context deadline (default 10s).
	RequestTimeout time.Duration
	// ReadTimeout / WriteTimeout are the http.Server socket timeouts
	// (defaults 10s / 15s).
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	// DrainTimeout bounds graceful shutdown (default 10s).
	DrainTimeout time.Duration
	// Areas is the boot-time area configuration (required unless
	// Restore is set).
	Areas []AreaState
	// Shards is the strategy-cache shard count, rounded up to a power
	// of two (0 = DefaultShards). Purely a contention knob: the wire
	// behavior is byte-identical for every value.
	Shards int
	// Retune parameterizes the observation streams behind
	// POST /v1/observe (forgetting, warmup, CUSUM sensitivity). The
	// zero value takes every default.
	Retune RetuneConfig
	// Ledger parameterizes the competitive-ratio ledger joining ledger-
	// opted decides to their observes (pending capacity, join TTL,
	// breach-detector windows). The zero value takes every default; the
	// ledger itself is always on — a decide that does not opt in costs
	// one branch.
	Ledger ledger.Config
	// Restore boots the daemon from a previously captured state plane
	// instead of Areas: statistics, version counters, and observation
	// streams all resume where the donor left off. When both are set,
	// Restore wins.
	Restore *StatePlane
	// DefaultPolicy selects the engine served when a request carries no
	// policy field: a registered engine spec ("constrained",
	// "multislope3@v1", ...). Empty means the registry default
	// (constrained). The engine is prepared for every area at boot and
	// on every stats update, so a daemon whose default engine cannot
	// serve its areas never starts.
	DefaultPolicy string
	// Recorder collects serving metrics; nil allocates a fresh
	// recorder with its own registry.
	Recorder *obs.Recorder
	// TraceLog receives request span records as JSONL (bounded,
	// non-blocking, lossy-counted). Nil disables request tracing.
	TraceLog io.Writer
	// AuditLog receives one AuditRecord per decision as JSONL (same
	// bounded writer discipline). Nil disables the audit log. Size
	// rotation belongs to the writer (see obs.RotatingFile).
	AuditLog io.Writer
	// HistoryInterval is the metrics sampling period backing
	// GET /v1/history (default 1s); HistoryWindow is the ring size in
	// samples (default 120, i.e. two minutes at the default interval).
	HistoryInterval time.Duration
	HistoryWindow   int
	// PprofAddr mounts net/http/pprof on a dedicated listener at this
	// address (e.g. "127.0.0.1:6060"). Empty disables the profiling
	// plane entirely: no listener is bound and no profiling route
	// exists anywhere, including on the serving mux.
	PprofAddr string

	// testDelay artificially delays decide handlers; used by drain and
	// overload tests only.
	testDelay time.Duration
	// testHook, when set, runs inside every decide; tests use it to
	// hold a known number of requests in flight simultaneously.
	testHook func()
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:8080"
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4096
	}
	if c.RootSeed == 0 {
		c.RootSeed = 20140601
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 15 * time.Second
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	if c.Recorder == nil {
		c.Recorder = obs.NewRecorder("idled", nil, nil)
	}
	if c.HistoryInterval <= 0 {
		c.HistoryInterval = time.Second
	}
	if c.HistoryWindow <= 0 {
		c.HistoryWindow = 120
	}
	return c
}

// Server is one idled instance: the strategy cache, the HTTP handler
// tree and the serving lifecycle.
type Server struct {
	cfg       Config
	cache     *Cache
	observers *observerSet
	engine    policy.Engine
	ledger    *ledger.Ledger
	rec       *obs.Recorder
	inflight  chan struct{}
	start     time.Time
	handler   http.Handler

	// tracer/auditW are the request-forensics sinks (nil when the
	// corresponding Config writer is nil); sampler backs /v1/history.
	tracer  *obs.Tracer
	auditW  *obs.JSONLWriter
	sampler *obs.Sampler

	// bootID prefixes generated request and decision ids; reqSeq and
	// decSeq number them.
	bootID string
	reqSeq atomic.Uint64
	decSeq atomic.Uint64

	mu      sync.Mutex
	ln      net.Listener
	pprofLn net.Listener
}

// New builds a server. It validates and precomputes every configured
// area strategy — for the registry default engine and the daemon's
// DefaultPolicy engine — so a misconfigured server never starts.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	eng, err := policy.Lookup(cfg.DefaultPolicy)
	if err != nil {
		return nil, fmt.Errorf("server: default policy: %w", err)
	}
	areas := cfg.Areas
	if cfg.Restore != nil {
		// A restore boot takes the donor's area set wholesale; the
		// version counters carry over below.
		if err := cfg.Restore.Validate(); err != nil {
			return nil, err
		}
		areas = make([]AreaState, len(cfg.Restore.Areas))
		for i, a := range cfg.Restore.Areas {
			areas[i] = a.AreaState
		}
	}
	cache, err := NewShardedCache(areas, []policy.Engine{eng}, cfg.Shards)
	if err != nil {
		return nil, err
	}
	observers, err := newObserverSet(cfg.Retune, cache.Areas())
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		cache:     cache,
		observers: observers,
		engine:    eng,
		ledger:    ledger.New(cfg.Ledger),
		rec:       cfg.Recorder,
		inflight:  make(chan struct{}, cfg.MaxInflight),
		start:     time.Now(),
	}
	if cfg.Restore != nil {
		// Re-apply the full plane so versions and trackers resume; the
		// cache boot above only established the area set.
		if err := s.restoreState(*cfg.Restore); err != nil {
			return nil, err
		}
	}
	s.bootID = fmt.Sprintf("%08x", uint32(s.start.UnixNano()))
	if cfg.TraceLog != nil {
		s.tracer = obs.NewTracer(obs.NewJSONLWriter(cfg.TraceLog, 4096))
	}
	if cfg.AuditLog != nil {
		s.auditW = obs.NewJSONLWriter(cfg.AuditLog, 8192)
	}
	s.sampler = obs.NewSampler(cfg.HistoryInterval, cfg.HistoryWindow, s.probes()...)
	s.handler = s.routes()
	return s, nil
}

// probes selects the registry series /v1/history retains: request and
// decision throughput, load shedding, in-flight depth, cache
// hit/miss, and the decide/batch latency quantiles.
func (s *Server) probes() []obs.Probe {
	reg := s.rec.Registry()
	return []obs.Probe{
		obs.CounterSumProbe(reg, "requests", "http_requests_total"),
		obs.CounterSumProbe(reg, "decisions", "decide_total"),
		obs.CounterSumProbe(reg, "overloaded", "http_overload_total"),
		obs.CounterSumProbe(reg, "cache_hits", "decide_cache_hits_total"),
		obs.CounterSumProbe(reg, "cache_misses", "decide_cache_misses_total"),
		obs.CounterSumProbe(reg, "observations", "observe_total"),
		obs.CounterSumProbe(reg, "retune_alarms", "retune_alarms_total"),
		obs.CounterSumProbe(reg, "retunes", "retune_total"),
		obs.CounterSumProbe(reg, "predicted_decisions", "decide_prediction_total"),
		obs.CounterSumProbe(reg, "predict_consistency", predict.MetricConsistency),
		obs.CounterSumProbe(reg, "predict_regret", predict.MetricRegret),
		obs.HistogramMeanProbe(reg, "predict_err_mean_s", predict.MetricErrAbs),
		obs.HistogramMeanProbe(reg, "predict_bias_s", predict.MetricErrSigned),
		obs.CounterSumProbe(reg, "settles", "ledger_settled_total"),
		obs.CounterSumProbe(reg, "cr_breaches", "cr_breach_total"),
		{Name: "ledger_pending", Kind: obs.ProbeGauge, F: func() float64 {
			return float64(s.ledger.PendingCount())
		}},
		{Name: "cr_worst", Kind: obs.ProbeGauge, F: func() float64 {
			w, ok := s.ledger.Worst()
			if !ok {
				return 0
			}
			return w.CR
		}},
		obs.GaugeProbe(reg, "inflight", "http_inflight_requests"),
		obs.HistogramQuantileProbe(reg, "decide_p50_ms", obs.L("http_request_ms", "route", "decide"), 0.50),
		obs.HistogramQuantileProbe(reg, "decide_p99_ms", obs.L("http_request_ms", "route", "decide"), 0.99),
		obs.HistogramQuantileProbe(reg, "batch_p50_ms", obs.L("http_request_ms", "route", "batch"), 0.50),
		obs.HistogramQuantileProbe(reg, "batch_p99_ms", obs.L("http_request_ms", "route", "batch"), 0.99),
	}
}

// newRequestID mints a process-unique request id: a boot prefix plus
// a sequence number — cheap, collision-free within a run, and easy to
// grep across trace spans and audit records.
func (s *Server) newRequestID() string {
	return fmt.Sprintf("%s-%07d", s.bootID, s.reqSeq.Add(1))
}

// newDecisionID mints a process-unique decision id for the
// competitive-ratio ledger (the "d" keeps it visually distinct from
// request ids in interleaved logs).
func (s *Server) newDecisionID() string {
	return fmt.Sprintf("%s-d%06d", s.bootID, s.decSeq.Add(1))
}

// History returns the sampler's retained metrics window (the
// /v1/history payload; exported for embedding and tests).
func (s *Server) History() obs.History { return s.sampler.History() }

// closeLogs flushes and stops the trace and audit sinks; the graceful
// drain calls it so no record accepted before shutdown is lost.
func (s *Server) closeLogs() error {
	var first error
	if err := s.tracer.Close(); err != nil {
		first = err
	}
	if err := s.auditW.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Recorder returns the server's metrics recorder.
func (s *Server) Recorder() *obs.Recorder { return s.rec }

// Handler returns the root HTTP handler (for tests and embedding).
func (s *Server) Handler() http.Handler { return s.handler }

// routes wires the endpoint tree. Decision and admin routes go through
// the full middleware stack; healthz and metrics bypass the in-flight
// limiter so an overloaded server still answers probes and scrapes.
func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/decide", s.instrument("decide", true, s.handleDecide))
	mux.Handle("POST /v1/decide/batch", s.instrument("batch", true, s.handleBatch))
	mux.Handle("POST /v1/observe", s.instrument("observe", true, s.handleObserve))
	mux.Handle("POST /v1/observe/batch", s.instrument("observe_batch", true, s.handleObserveBatch))
	mux.Handle("PUT /v1/areas/{id}/stats", s.instrument("stats_update", true, s.handleStatsUpdate))
	mux.Handle("GET /v1/snapshot", s.instrument("snapshot", true, s.handleSnapshotGet))
	mux.Handle("POST /v1/snapshot", s.instrument("snapshot_restore", true, s.handleSnapshotRestore))
	mux.Handle("GET /v1/areas", s.instrument("areas", true, s.handleAreas))
	mux.Handle("GET /v1/policies", s.instrument("policies", true, s.handlePolicies))
	mux.Handle("GET /v1/cr", s.instrument("cr", false, s.handleCR))
	mux.Handle("GET /v1/history", s.instrument("history", false, s.handleHistory))
	mux.Handle("GET /v1/buildinfo", s.instrument("buildinfo", false, s.handleBuildInfo))
	mux.Handle("GET /healthz", s.instrument("healthz", false, s.handleHealthz))
	mux.Handle("GET /metrics", s.instrument("metrics", false, s.handleMetrics))
	mux.Handle("/", s.instrument("fallthrough", false, s.handleNotFound))
	return mux
}

// Listen binds the configured addresses — the serving listener and,
// when Config.PprofAddr is set, the separate profiling listener — and
// returns the bound serving address (useful with ":0"). Idempotent: a
// second call returns the existing address.
func (s *Server) Listen() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln != nil {
		return s.ln.Addr().String(), nil
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return "", fmt.Errorf("server: listen %s: %w", s.cfg.Addr, err)
	}
	if err := s.listenPprof(); err != nil {
		ln.Close()
		return "", err
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Serve accepts connections until ctx is cancelled, then drains
// gracefully: in-flight requests get up to DrainTimeout to finish and
// the trace/audit sinks are flushed before returning, so a SIGTERM
// loses no accepted record. It binds lazily if Listen was not called.
// A clean drain returns nil.
func (s *Server) Serve(ctx context.Context) error {
	if _, err := s.Listen(); err != nil {
		return err
	}
	s.mu.Lock()
	ln := s.ln
	s.mu.Unlock()

	samplerCtx, stopSampler := context.WithCancel(context.Background())
	defer stopSampler()
	go s.sampler.Run(samplerCtx)

	// The profiling plane lives on its own listener and lifecycle:
	// it is stopped with the sampler, after the serving drain, so a
	// profile capture can observe the drain itself.
	s.mu.Lock()
	pprofLn := s.pprofLn
	s.mu.Unlock()
	pprofDone := make(chan struct{})
	if pprofLn != nil {
		go func() {
			defer close(pprofDone)
			_ = s.servePprof(samplerCtx, pprofLn)
		}()
	} else {
		close(pprofDone)
	}
	defer func() { stopSampler(); <-pprofDone }()

	hs := &http.Server{
		Handler:      s.handler,
		ReadTimeout:  s.cfg.ReadTimeout,
		WriteTimeout: s.cfg.WriteTimeout,
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		s.closeLogs()
		return fmt.Errorf("server: serve: %w", err)
	case <-ctx.Done():
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	s.rec.Event("server_drain")
	err := hs.Shutdown(drainCtx)
	// Flush after Shutdown in every case: in-flight handlers have
	// finished (or the drain timed out); what they enqueued must reach
	// the logs either way.
	if cerr := s.closeLogs(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("server: drain: %w", err)
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("server: serve: %w", err)
	}
	return nil
}
