package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"net/http"
	"strings"
	"time"

	"idlereduce/internal/ledger"
	"idlereduce/internal/obs"
	"idlereduce/internal/parallel"
	"idlereduce/internal/policy"
	"idlereduce/internal/predict"
	"idlereduce/internal/skirental"
)

// requestStream derives the deterministic RNG stream ID of one decide
// request from its identifying fields. Together with the root seed it
// makes every reply a pure function of (seed, vehicle_id, area, b):
// independent of scheduling, worker count, batch position and sibling
// requests.
func requestStream(vehicleID, area string, b float64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(vehicleID))
	h.Write([]byte{0})
	h.Write([]byte(area))
	h.Write([]byte{0})
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(b))
	h.Write(buf[:])
	return h.Sum64()
}

// policyLookupError maps a policy.Lookup failure onto the wire error
// contract: malformed specs are plain bad_request; well-formed specs
// naming no servable engine (unknown name, version pin mismatch) are
// unknown_policy. Both are client errors, never 5xx.
func policyLookupError(err error) *APIError {
	code := "unknown_policy"
	if errors.Is(err, policy.ErrBadSpec) {
		code = "bad_request"
	}
	return &APIError{Code: code, Message: err.Error(), Status: http.StatusBadRequest}
}

// prepareStandalone prepares a strategy outside the cache (the custom-B
// path), honoring resolved engine parameters when present.
func prepareStandalone(eng policy.Engine, s policy.Stats, params map[string]float64) (policy.Strategy, error) {
	if len(params) > 0 {
		pe, ok := eng.(policy.Parametric)
		if !ok {
			return nil, fmt.Errorf("%w: engine %s accepts no params", policy.ErrBadParams, eng.Name())
		}
		return pe.PrepareParams(s, params)
	}
	return eng.Prepare(s)
}

// enginePrepareError maps an Engine.Prepare failure. The default
// constrained engine keeps the pre-engine wire shape (422
// invalid_stats); a request that opted into another engine gets 400
// invalid_policy_params — the area is servable, the requested engine's
// parameterization is not. Parameter-validation failures are
// invalid_policy_params regardless of engine.
func enginePrepareError(eng policy.Engine, area string, b float64, err error) *APIError {
	if errors.Is(err, policy.ErrBadParams) {
		return &APIError{Code: "invalid_policy_params", Message: err.Error(), Status: http.StatusBadRequest}
	}
	if eng.Name() == policy.DefaultEngine {
		return &APIError{Code: "invalid_stats", Message: fmt.Sprintf("area %s statistics are infeasible for b = %v: %v", area, b, err), Status: http.StatusUnprocessableEntity}
	}
	return &APIError{Code: "invalid_policy_params", Message: fmt.Sprintf("engine %s cannot serve area %s at b = %v: %v", policy.Spec(eng), area, b, err), Status: http.StatusBadRequest}
}

// wireSchedule converts an engine action ladder to the wire shape.
func wireSchedule(actions []policy.Action) []ScheduleAction {
	if len(actions) == 0 {
		return nil
	}
	out := make([]ScheduleAction, len(actions))
	for i, a := range actions {
		out[i] = ScheduleAction{State: a.State, AtSec: a.AtSec}
	}
	return out
}

// decide computes one decision. It returns the structured API error to
// send instead of an (error, status) pair so the batch path can embed
// failures per item. ctx carries the request id and (when tracing is
// on) the span the decision annotates; with an audit log configured
// the decision is appended as a replayable AuditRecord. Both are
// gated on a nil check so the disabled path stays free.
//
// The serving engine is the daemon default unless the request names
// one; decisions from the default constrained engine keep the exact
// pre-engine wire bytes (no policy/schedule/explain fields).
func (s *Server) decide(ctx context.Context, req DecideRequest, defaultSeed uint64) (*DecideResponse, *APIError) {
	if req.VehicleID == "" {
		return nil, &APIError{Code: "bad_request", Message: "vehicle_id is required", Status: http.StatusBadRequest}
	}
	if req.Area == "" {
		return nil, &APIError{Code: "bad_request", Message: "area is required", Status: http.StatusBadRequest}
	}
	if math.IsNaN(req.B) || math.IsInf(req.B, 0) || req.B < 0 {
		return nil, &APIError{Code: "bad_request", Message: fmt.Sprintf("b = %v must be a finite non-negative break-even interval", req.B), Status: http.StatusBadRequest}
	}
	eng := s.engine
	if req.Policy != "" {
		var err error
		if eng, err = policy.Lookup(req.Policy); err != nil {
			return nil, policyLookupError(err)
		}
	}
	// Resolve engine params before touching the cache so every cache
	// key carries validated, default-filled parameters — one canonical
	// map per semantic parameterization.
	var params map[string]float64
	if len(req.Params) > 0 {
		pe, ok := eng.(policy.Parametric)
		if !ok {
			return nil, &APIError{Code: "invalid_policy_params",
				Message: fmt.Sprintf("engine %s accepts no params", policy.Spec(eng)), Status: http.StatusBadRequest}
		}
		resolved, err := policy.ResolveParams(pe, req.Params)
		if err != nil {
			return nil, &APIError{Code: "invalid_policy_params", Message: err.Error(), Status: http.StatusBadRequest}
		}
		params = resolved
	}
	var pred *predict.Prediction
	if req.Prediction != nil {
		p, err := req.Prediction.toPrediction()
		if err != nil {
			return nil, &APIError{Code: "invalid_prediction", Message: err.Error(), Status: http.StatusBadRequest}
		}
		pred = &p
	}
	rec, ok := s.cache.Area(req.Area)
	if !ok {
		return nil, &APIError{Code: "unknown_area", Message: fmt.Sprintf("unknown area %q", req.Area), Status: http.StatusNotFound}
	}
	// Per-area latency attribution: the area record carries its
	// pre-formatted metric names, so the hot path pays two map lookups
	// and a clock read, never a label format.
	t0 := time.Now()

	// Cache hit: the request uses the area's default break-even
	// interval, so the (area, engine) strategy comes from the
	// precomputed cache keyspace. A custom B prepares a fresh strategy
	// from the same statistics.
	b := req.B
	cached := b == 0 || b == rec.state.B
	sh := s.cache.shardFor(rec.state.ID)
	var prep policy.Strategy
	if cached {
		b = rec.state.B
		entry, err := s.cache.StrategyParams(rec, eng, params)
		if err != nil {
			return nil, enginePrepareError(eng, rec.state.ID, b, err)
		}
		prep = entry.prep
		s.rec.Add("decide_cache_hits_total", 1)
		s.rec.Add(sh.hitMetric, 1)
	} else {
		s.rec.Add("decide_cache_misses_total", 1)
		s.rec.Add(sh.missMetric, 1)
		p, err := prepareStandalone(eng, rec.state.PolicyStats(b), params)
		if err != nil {
			return nil, enginePrepareError(eng, rec.state.ID, b, err)
		}
		prep = p
	}

	seed := req.Seed
	if seed == 0 {
		seed = defaultSeed
	}
	stream := requestStream(req.VehicleID, rec.state.ID, b)
	rng := parallel.RNG(seed, stream)
	var dec policy.Decision
	if pred != nil {
		adv, ok := prep.(policy.Advised)
		if !ok {
			return nil, &APIError{Code: "invalid_prediction",
				Message: fmt.Sprintf("engine %s does not accept predictions", policy.Spec(eng)), Status: http.StatusBadRequest}
		}
		dec = adv.DecideAdvised(rng, *pred)
		s.rec.Add("decide_prediction_total", 1)
	} else {
		dec = prep.Decide(rng)
	}

	if s.cfg.testDelay > 0 {
		time.Sleep(s.cfg.testDelay)
	}
	if s.cfg.testHook != nil {
		s.cfg.testHook()
	}
	s.rec.Add(obs.L("decide_total", "choice", dec.Choice), 1)
	s.rec.Observe("decide_threshold_sec", dec.ThresholdSec)
	s.rec.Add(rec.cntMetric, 1)
	s.rec.Observe(rec.latMetric, float64(time.Since(t0))/float64(time.Millisecond))
	if s.tracer != nil {
		if sp := obs.SpanFrom(ctx); sp != nil {
			sp.Set("area", rec.state.ID)
			sp.Set("stats_version", rec.version)
			sp.Set("b", b)
			sp.Set("choice", dec.Choice)
			sp.Set("threshold_sec", dec.ThresholdSec)
			sp.Set("stream", stream)
			if eng.Name() != policy.DefaultEngine {
				sp.Set("policy", policy.Spec(eng))
			}
		}
	}
	// Ledger opt-in: mint a decision id and enter the decision into the
	// pending table so a later observe can settle it against the
	// realized stop. The bound travels with the entry (the ledger stays
	// policy-free); strategies that publish none enter with bound 0.
	var decisionID string
	var crBound float64
	if req.Ledger {
		if bd, ok := prep.(policy.Bounded); ok {
			crBound = bd.WorstCaseCRBound()
		}
		decisionID = s.newDecisionID()
		if _, err := s.ledger.Issue(ledger.Pending{
			ID:           decisionID,
			Area:         rec.state.ID,
			Engine:       policy.Spec(eng),
			Params:       params,
			B:            b,
			ThresholdSec: dec.ThresholdSec,
			Bound:        crBound,
			IssuedUnixMS: time.Now().UnixMilli(),
		}); err != nil {
			// Unreachable with minted ids and validated decisions; count
			// loudly rather than fail the decision if it ever happens.
			s.rec.Add("ledger_issue_failed_total", 1)
			decisionID = ""
		} else {
			s.rec.Add("ledger_issued_total", 1)
		}
	}
	if s.tracer != nil && decisionID != "" {
		if sp := obs.SpanFrom(ctx); sp != nil {
			sp.Set("decision_id", decisionID)
		}
	}
	if s.auditW != nil {
		s.auditW.Write(AuditRecord{
			TSUnixMS:      time.Now().UnixMilli(),
			RequestID:     obs.RequestIDFrom(ctx),
			VehicleID:     req.VehicleID,
			Area:          rec.state.ID,
			StatsVersion:  rec.version,
			B:             b,
			Mu:            rec.state.Mu,
			Q:             rec.state.Q,
			Seed:          seed,
			Stream:        stream,
			Choice:        dec.Choice,
			ThresholdSec:  dec.ThresholdSec,
			Policy:        eng.Name(),
			PolicyVersion: eng.Version(),
			Schedule:      wireSchedule(dec.Schedule),
			Params:        params,
			Prediction:    req.Prediction,
			DecisionID:    decisionID,
			CRBound:       crBound,
		})
	}
	resp := &DecideResponse{
		VehicleID:     req.VehicleID,
		Area:          rec.state.ID,
		B:             b,
		Choice:        dec.Choice,
		ThresholdSec:  dec.ThresholdSec,
		WorstCaseCost: dec.WorstCaseCost,
		WorstCaseCR:   dec.WorstCaseCR,
		Seed:          seed,
		Cached:        cached,
	}
	if eng.Name() != policy.DefaultEngine {
		resp.Policy = policy.Spec(eng)
		resp.Schedule = wireSchedule(dec.Schedule)
		resp.Explain = prep.Explain()
	}
	resp.DecisionID = decisionID
	return resp, nil
}

// handleDecide serves POST /v1/decide.
func (s *Server) handleDecide(w http.ResponseWriter, r *http.Request) {
	var req DecideRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decode request: "+err.Error())
		return
	}
	if r.Header.Get(ledgerHeader) != "" {
		req.Ledger = true
	}
	resp, apiErr := s.decide(r.Context(), req, s.cfg.RootSeed)
	if apiErr != nil {
		writeError(w, apiErr.Status, apiErr.Code, apiErr.Message)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleBatch serves POST /v1/decide/batch: the items fan out over the
// deterministic worker pool and merge back in input order. Item
// failures are embedded per slot, so a batch reply is always 200 once
// it passes structural validation.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchDecideRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decode request: "+err.Error())
		return
	}
	if len(req.Requests) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "requests is empty")
		return
	}
	if len(req.Requests) > s.cfg.MaxBatch {
		writeError(w, http.StatusRequestEntityTooLarge, "too_large",
			fmt.Sprintf("batch of %d exceeds max %d", len(req.Requests), s.cfg.MaxBatch))
		return
	}
	seed := req.Seed
	if seed == 0 {
		seed = s.cfg.RootSeed
	}
	if r.Header.Get(ledgerHeader) != "" {
		for i := range req.Requests {
			req.Requests[i].Ledger = true
		}
	}
	ctx := obs.WithRecorder(r.Context(), s.rec)
	parent := obs.SpanFrom(ctx)
	results, err := parallel.Map(ctx, "server_batch", len(req.Requests), s.cfg.Workers,
		func(ictx context.Context, i int) (BatchItem, error) {
			// Each batch item gets its own child span (same request
			// id) so the fan-out stays attributable per decision.
			if parent != nil {
				child := parent.Child("decide_item")
				child.Set("index", i)
				defer child.End()
				ictx = obs.ContextWithSpan(ictx, child)
			}
			resp, apiErr := s.decide(ictx, req.Requests[i], seed)
			if apiErr != nil {
				return BatchItem{Error: apiErr}, nil
			}
			return BatchItem{Decision: resp}, nil
		})
	if err != nil {
		// Only context cancellation/timeout reaches here: per-item
		// errors are embedded in the slots above.
		writeError(w, http.StatusServiceUnavailable, "internal", "batch aborted: "+err.Error())
		return
	}
	s.rec.Add("batch_decisions_total", int64(len(results)))
	writeJSON(w, http.StatusOK, BatchDecideResponse{Seed: seed, Results: results})
}

// handleStatsUpdate serves PUT /v1/areas/{id}/stats.
func (s *Server) handleStatsUpdate(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req StatsUpdateRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "decode request: "+err.Error())
		return
	}
	entry, err := s.cache.Update(id, req.B, skirental.Stats{MuBMinus: req.Mu, QBPlus: req.Q})
	if err != nil {
		if _, ok := s.cache.Get(id); !ok {
			writeError(w, http.StatusNotFound, "unknown_area", err.Error())
			return
		}
		writeError(w, http.StatusUnprocessableEntity, "invalid_stats", err.Error())
		return
	}
	s.rec.Add("stats_updates_total", 1)
	writeJSON(w, http.StatusOK, entry.Info())
}

// handleAreas serves GET /v1/areas. An optional ?policy= query renders
// the listing through another engine; areas that engine cannot serve
// carry an error field instead of strategy fields, so one infeasible
// area never hides the rest.
func (s *Server) handleAreas(w http.ResponseWriter, r *http.Request) {
	eng := s.engine
	if spec := r.URL.Query().Get("policy"); spec != "" {
		var err error
		if eng, err = policy.Lookup(spec); err != nil {
			apiErr := policyLookupError(err)
			writeError(w, apiErr.Status, apiErr.Code, apiErr.Message)
			return
		}
	}
	recs := s.cache.Areas()
	resp := AreasResponse{Areas: make([]AreaInfo, 0, len(recs))}
	for _, rec := range recs {
		st, err := s.cache.Strategy(rec, eng)
		if err != nil {
			resp.Areas = append(resp.Areas, AreaInfo{
				ID:      rec.state.ID,
				B:       rec.state.B,
				Mu:      rec.state.Mu,
				Q:       rec.state.Q,
				Version: rec.version,
				Policy:  eng.Name(),
				Error:   err.Error(),
			})
			continue
		}
		resp.Areas = append(resp.Areas, st.Info())
	}
	writeJSON(w, http.StatusOK, resp)
}

// handlePolicies serves GET /v1/policies: the registered policy
// engines, their pinned specs, and which one this daemon serves by
// default.
func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	names := policy.Names()
	resp := PoliciesResponse{Policies: make([]PolicyInfo, 0, len(names))}
	for _, n := range names {
		e, ok := policy.Get(n)
		if !ok {
			continue
		}
		info := PolicyInfo{
			Name:    n,
			Version: e.Version(),
			Spec:    policy.Spec(e),
			Doc:     e.Doc(),
			Default: n == s.engine.Name(),
		}
		if pe, ok := e.(policy.Parametric); ok {
			info.Params = pe.Params()
		}
		resp.Policies = append(resp.Policies, info)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleHealthz serves GET /healthz. It bypasses the in-flight limiter
// so liveness probes keep passing while decision load is shed.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	bi := readBuildInfo()
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:      "ok",
		UptimeMS:    time.Since(s.start).Milliseconds(),
		Areas:       s.cache.Len(),
		Version:     bi.Version,
		GoVersion:   bi.GoVersion,
		StartUnixMS: s.start.UnixMilli(),
	})
}

// handleBuildInfo serves GET /v1/buildinfo: the serving binary's build
// provenance so dashboards and load reports can label runs.
func (s *Server) handleBuildInfo(w http.ResponseWriter, r *http.Request) {
	bi := readBuildInfo()
	writeJSON(w, http.StatusOK, BuildInfoResponse{
		Version:     bi.Version,
		GoVersion:   bi.GoVersion,
		Revision:    bi.Revision,
		VCSTime:     bi.VCSTime,
		VCSModified: bi.Modified,
		StartUnixMS: s.start.UnixMilli(),
		UptimeMS:    time.Since(s.start).Milliseconds(),
	})
}

// handleHistory serves GET /v1/history: the ring-buffer sampler's
// retained metrics window (windowed rates plus rolling quantiles). It
// bypasses the limiter so dashboards keep rendering under overload.
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sampler.History())
}

// handleMetrics serves GET /metrics: the obs registry snapshot in
// Prometheus text format, or JSON with ?format=json. The bounded
// trace/audit writers are lossy by design; their drop counts are
// refreshed into gauges here so a scrape always sees them.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if s.tracer != nil {
		s.rec.Set("trace_dropped_records", float64(s.tracer.Dropped()))
	}
	if s.auditW != nil {
		s.rec.Set("audit_dropped_records", float64(s.auditW.Dropped()))
	}
	// Ledger pending depth and TTL/capacity expiries happen off the
	// request paths; refresh them into gauges so a scrape always sees
	// the current join plane.
	s.rec.Set("ledger_pending", float64(s.ledger.PendingCount()))
	s.rec.Set("ledger_expired_total", float64(s.ledger.Counters().Expired))
	snap := s.rec.Snapshot()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_ = snap.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	w.WriteHeader(http.StatusOK)
	_ = snap.WritePrometheus(w)
}

// handleNotFound is the structured-JSON fallthrough for unknown routes
// and wrong methods (the catch-all pattern shadows the mux's built-in
// 405, so method mismatches are re-derived here).
func (s *Server) handleNotFound(w http.ResponseWriter, r *http.Request) {
	if methods := allowedMethods(r.URL.Path); len(methods) > 0 {
		w.Header().Set("Allow", strings.Join(methods, ", "))
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s %s not allowed (allow: %s)", r.Method, r.URL.Path, strings.Join(methods, ", ")))
		return
	}
	writeError(w, http.StatusNotFound, "not_found",
		fmt.Sprintf("no route %s %s", r.Method, r.URL.Path))
}

// allowedMethods returns the methods a known path serves; empty for
// unknown paths.
func allowedMethods(path string) []string {
	switch path {
	case "/v1/decide", "/v1/decide/batch", "/v1/observe", "/v1/observe/batch":
		return []string{http.MethodPost}
	case "/v1/areas", "/v1/policies", "/v1/cr", "/v1/history", "/v1/buildinfo", "/healthz", "/metrics":
		return []string{http.MethodGet}
	case "/v1/snapshot":
		return []string{http.MethodGet, http.MethodPost}
	}
	if strings.HasPrefix(path, "/v1/areas/") && strings.HasSuffix(path, "/stats") {
		return []string{http.MethodPut}
	}
	return nil
}
