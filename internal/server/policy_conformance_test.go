package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"idlereduce/internal/parallel"
	"idlereduce/internal/policy"
)

// The cross-engine conformance layer: every registered engine must
// satisfy the same serving contract the constrained default does —
// byte-identical replies across worker counts and restarts, clean
// audit replay, and stable 4xx error classes for every way a policy
// request can be wrong.

// conformanceAreas are the standard test areas plus one deep in the
// N-Rand region, so randomized threshold draws are exercised for every
// engine.
func conformanceAreas() []AreaState {
	return append(testAreas(), AreaState{ID: "nrandia", B: 28, Mu: 4, Q: 0.25})
}

// TestCrossEngineDeterminism runs the determinism contract once per
// registered engine spec: identical requests return byte-identical
// bodies across worker pool sizes (1, 4, 8) and across server
// restarts. It also pins spec aliasing — "", "constrained" and
// "constrained@v1" are the same engine and must serve the same bytes,
// as must "multislope3" and "multislope3@v1".
func TestCrossEngineDeterminism(t *testing.T) {
	specGroups := [][]string{
		{"", "constrained", "constrained@v1"},
		{"multislope3", "multislope3@v1"},
		{"softml", "softml@v1"},
		{"distadvice", "distadvice@v1"},
	}
	requests := func(spec string) (singles []string, batch string) {
		p := ""
		if spec != "" {
			p = fmt.Sprintf(`,"policy":%q`, spec)
		}
		singles = []string{
			fmt.Sprintf(`{"vehicle_id":"det-1","area":"chicago","seed":11%s}`, p),
			fmt.Sprintf(`{"vehicle_id":"det-1","area":"chicago","b":60,"seed":11%s}`, p),
			fmt.Sprintf(`{"vehicle_id":"rnd-1","area":"nrandia","seed":11%s}`, p),
			fmt.Sprintf(`{"vehicle_id":"rnd-2","area":"nrandia","seed":12%s}`, p),
		}
		batch = fmt.Sprintf(`{"seed":11,"requests":[
			{"vehicle_id":"rnd-1","area":"nrandia"%s},
			{"vehicle_id":"det-1","area":"chicago"%s},
			{"vehicle_id":"rnd-9","area":"nrandia","seed":99%s},
			{"vehicle_id":"det-2","area":"atlanta","b":45%s}]}`, p, p, p, p)
		return singles, batch
	}
	collect := func(t *testing.T, ts *httptest.Server, singles []string, batch string) [][]byte {
		t.Helper()
		var got [][]byte
		for i, body := range singles {
			status, raw := doJSON(t, "POST", ts.URL+"/v1/decide", body, nil)
			if status != http.StatusOK {
				t.Fatalf("single %d status %d: %s", i, status, raw)
			}
			got = append(got, raw)
		}
		status, raw := doJSON(t, "POST", ts.URL+"/v1/decide/batch", batch, nil)
		if status != http.StatusOK {
			t.Fatalf("batch status %d: %s", status, raw)
		}
		return append(got, raw)
	}

	for _, group := range specGroups {
		var want [][]byte
		for _, spec := range group {
			spec := spec
			t.Run(fmt.Sprintf("spec=%q", spec), func(t *testing.T) {
				singles, batch := requests(spec)
				var ref [][]byte
				for _, workers := range []int{1, 4, 8} {
					// Two instances per worker count: restart identity is
					// part of the contract, not just run-to-run identity.
					for restart := 0; restart < 2; restart++ {
						s, err := New(Config{Areas: conformanceAreas(), Workers: workers})
						if err != nil {
							t.Fatal(err)
						}
						ts := httptest.NewServer(s.Handler())
						got := collect(t, ts, singles, batch)
						ts.Close()
						if ref == nil {
							ref = got
							continue
						}
						for i := range got {
							if !bytes.Equal(got[i], ref[i]) {
								t.Errorf("workers=%d restart=%d reply %d diverged:\n%s\n%s",
									workers, restart, i, got[i], ref[i])
							}
						}
					}
				}
				// Spec aliases within a group serve identical bytes.
				if want == nil {
					want = ref
				} else {
					for i := range ref {
						if !bytes.Equal(ref[i], want[i]) {
							t.Errorf("spec %q reply %d differs from its alias group:\n%s\n%s",
								spec, i, ref[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestMultislopeAuditReplaysClean is the acceptance property of the
// engine-generic audit plane: a serving run under multislope3 —
// including randomized segments, custom B, batches, and a stats swap —
// writes records that VerifyAudit replays bit-identically, and the
// records carry the engine name, version, and full schedule.
func TestMultislopeAuditReplaysClean(t *testing.T) {
	audit := &syncBuffer{}
	s, err := New(Config{Areas: conformanceAreas(), AuditLog: audit, DefaultPolicy: "multislope3"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	posts := []string{
		`{"vehicle_id":"m-1","area":"chicago"}`,
		`{"vehicle_id":"m-2","area":"nrandia","seed":5}`,
		`{"vehicle_id":"m-3","area":"chicago","b":60}`,
		`{"vehicle_id":"m-4","area":"atlanta","policy":"multislope3@v1"}`,
		`{"vehicle_id":"m-5","area":"chicago","policy":"constrained"}`,
	}
	for i, body := range posts {
		if status, raw := doJSON(t, "POST", ts.URL+"/v1/decide", body, nil); status != http.StatusOK {
			t.Fatalf("decide %d: status %d: %s", i, status, raw)
		}
	}
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/decide/batch",
		`{"seed":7,"requests":[{"vehicle_id":"b1","area":"nrandia"},{"vehicle_id":"b2","area":"atlanta"}]}`, nil); status != http.StatusOK {
		t.Fatalf("batch: status %d", status)
	}
	if status, _ := doJSON(t, "PUT", ts.URL+"/v1/areas/chicago/stats",
		`{"mu":10,"q":0.2}`, nil); status != http.StatusOK {
		t.Fatalf("stats update: status %d", status)
	}
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/decide",
		`{"vehicle_id":"m-after","area":"chicago"}`, nil); status != http.StatusOK {
		t.Fatalf("post-update decide: status %d", status)
	}

	if err := s.auditW.Flush(); err != nil {
		t.Fatal(err)
	}
	recs := decodeAuditLines(t, audit.String())
	if len(recs) != 8 {
		t.Fatalf("audit has %d records, want 8", len(recs))
	}
	var msRecords int
	for _, rec := range recs {
		if rec.Policy == "" || rec.PolicyVersion == 0 {
			t.Errorf("record without engine identity: %+v", rec)
		}
		if rec.Policy == policy.MultislopeEngine {
			msRecords++
			if len(rec.Schedule) != 2 {
				t.Errorf("multislope record with %d schedule rungs: %+v", len(rec.Schedule), rec)
			}
		}
	}
	if msRecords != 7 {
		t.Errorf("%d multislope records, want 7 (one decision opted back to constrained)", msRecords)
	}

	rep, err := VerifyAudit(strings.NewReader(audit.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Matched != len(recs) {
		t.Errorf("verify report %+v, want %d/%d matched:\n%s", rep, len(recs), len(recs), rep.String())
	}
}

// TestVerifyAuditDetectsEngineTampering covers the engine-specific
// corruption modes: a tampered schedule rung, a version-drifted
// record, and an engine name that no longer resolves must all be
// flagged as mismatches, never silently attested.
func TestVerifyAuditDetectsEngineTampering(t *testing.T) {
	audit := &syncBuffer{}
	s, err := New(Config{Areas: conformanceAreas(), AuditLog: audit, DefaultPolicy: "multislope3"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if status, _ := doJSON(t, "POST", ts.URL+"/v1/decide",
		`{"vehicle_id":"v-1","area":"chicago"}`, nil); status != http.StatusOK {
		t.Fatal("decide failed")
	}
	if err := s.auditW.Flush(); err != nil {
		t.Fatal(err)
	}
	rec := decodeAuditLines(t, audit.String())[0]
	if rec.Policy != policy.MultislopeEngine || len(rec.Schedule) != 2 {
		t.Fatalf("unexpected seed record: %+v", rec)
	}

	tamper := map[string]func(*AuditRecord){
		"schedule rung time":  func(r *AuditRecord) { r.Schedule[1].AtSec += 0.25 },
		"schedule rung state": func(r *AuditRecord) { r.Schedule[0].State = "warp_drive" },
		"schedule truncated":  func(r *AuditRecord) { r.Schedule = r.Schedule[:1] },
		"version drift":       func(r *AuditRecord) { r.PolicyVersion = 99 },
		"unknown engine":      func(r *AuditRecord) { r.Policy = "vanished" },
	}
	for name, mutate := range tamper {
		bad := rec
		bad.Schedule = append([]ScheduleAction(nil), rec.Schedule...)
		mutate(&bad)
		line, _ := json.Marshal(bad)
		rep, err := VerifyAudit(bytes.NewReader(append(line, '\n')))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.OK() || rep.Mismatched != 1 {
			t.Errorf("%s tampering not detected: %+v", name, rep)
		}
	}
}

// TestLegacyAuditRecordsReplay pins backward compatibility: records
// written before the engine extraction carry no policy fields and must
// replay as the constrained default.
func TestLegacyAuditRecordsReplay(t *testing.T) {
	eng, err := policy.Lookup(policy.DefaultEngine)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := eng.Prepare(policy.Stats{B: 28, Mu: 8, Q: 0.13})
	if err != nil {
		t.Fatal(err)
	}
	stream := requestStream("old", "chicago", 28)
	dec := prep.Decide(parallel.RNG(20140601, stream))
	rec := AuditRecord{
		TSUnixMS: 1, VehicleID: "old", Area: "chicago", StatsVersion: 1,
		B: 28, Mu: 8, Q: 0.13, Seed: 20140601, Stream: stream,
		Choice: dec.Choice, ThresholdSec: dec.ThresholdSec,
		// No Policy, PolicyVersion, or Schedule: the pre-engine format.
	}
	line, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(line, []byte("policy")) || bytes.Contains(line, []byte("schedule")) {
		t.Fatalf("legacy record grew engine fields: %s", line)
	}
	rep, err := VerifyAudit(bytes.NewReader(append(line, '\n')))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Matched != 1 {
		t.Errorf("legacy record did not replay: %+v\n%s", rep, rep.String())
	}
}

// TestPolicyValidationTable is the wire contract for every way a
// policy request can be wrong: stable 4xx codes, never a 500.
func TestPolicyValidationTable(t *testing.T) {
	areas := append(conformanceAreas(),
		// Servable by the constrained default but below the three-state
		// instance's B > 10 requirement.
		AreaState{ID: "lowb", B: 9, Mu: 1, Q: 0.1})
	_, ts := newTestServerAreas(t, areas)

	cases := []struct {
		name     string
		body     string
		status   int
		code     string
		fragment string
	}{
		{"unknown engine", `{"vehicle_id":"v","area":"chicago","policy":"nope"}`,
			400, "unknown_policy", "unknown engine"},
		{"version pin mismatch", `{"vehicle_id":"v","area":"chicago","policy":"multislope3@v99"}`,
			400, "unknown_policy", "version mismatch"},
		{"malformed spec", `{"vehicle_id":"v","area":"chicago","policy":"bad name"}`,
			400, "bad_request", "malformed engine spec"},
		{"empty version", `{"vehicle_id":"v","area":"chicago","policy":"constrained@"}`,
			400, "bad_request", "malformed engine spec"},
		{"numeric-lead name", `{"vehicle_id":"v","area":"chicago","policy":"3slope"}`,
			400, "bad_request", "malformed engine spec"},
		{"multislope on low-B area", `{"vehicle_id":"v","area":"lowb","policy":"multislope3"}`,
			400, "invalid_policy_params", "cannot serve area"},
		{"multislope custom low B", `{"vehicle_id":"v","area":"chicago","b":9,"policy":"multislope3"}`,
			400, "invalid_policy_params", "cannot serve area"},
		{"constrained custom infeasible B", `{"vehicle_id":"v","area":"chicago","b":5}`,
			422, "invalid_stats", "infeasible"},
		{"unknown area still 404", `{"vehicle_id":"v","area":"mars","policy":"multislope3"}`,
			404, "unknown_area", "unknown area"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, raw := doJSON(t, "POST", ts.URL+"/v1/decide", tc.body, nil)
			if status != tc.status {
				t.Fatalf("status %d, want %d: %s", status, tc.status, raw)
			}
			var er ErrorResponse
			if err := json.Unmarshal(raw, &er); err != nil {
				t.Fatalf("error body not structured: %s", raw)
			}
			if er.Error.Code != tc.code {
				t.Errorf("code %q, want %q (%s)", er.Error.Code, tc.code, raw)
			}
			if !strings.Contains(er.Error.Message, tc.fragment) {
				t.Errorf("message %q lacks %q", er.Error.Message, tc.fragment)
			}
		})
	}

	// The same failures embed per-item in a batch without failing it.
	batch := `{"requests":[
		{"vehicle_id":"v","area":"chicago","policy":"multislope3"},
		{"vehicle_id":"v","area":"chicago","policy":"nope"},
		{"vehicle_id":"v","area":"lowb","policy":"multislope3"}]}`
	var resp BatchDecideResponse
	if status, raw := doJSON(t, "POST", ts.URL+"/v1/decide/batch", batch, &resp); status != 200 {
		t.Fatalf("batch status %d: %s", status, raw)
	}
	if resp.Results[0].Decision == nil || resp.Results[0].Decision.Policy != "multislope3@v1" {
		t.Errorf("slot 0: %+v", resp.Results[0])
	}
	if resp.Results[1].Error == nil || resp.Results[1].Error.Code != "unknown_policy" {
		t.Errorf("slot 1: %+v", resp.Results[1])
	}
	if resp.Results[2].Error == nil || resp.Results[2].Error.Code != "invalid_policy_params" {
		t.Errorf("slot 2: %+v", resp.Results[2])
	}
}

// TestServeBootRejectsUnservableDefaultPolicy: a daemon whose default
// engine cannot serve its configured areas must fail at New, not 4xx
// at runtime.
func TestServeBootRejectsUnservableDefaultPolicy(t *testing.T) {
	areas := []AreaState{{ID: "lowb", B: 9, Mu: 1, Q: 0.1}}
	if _, err := New(Config{Areas: areas, DefaultPolicy: "multislope3"}); err == nil {
		t.Fatal("boot with an unservable default engine succeeded")
	}
	if _, err := New(Config{Areas: areas, DefaultPolicy: "nope"}); err == nil {
		t.Fatal("boot with an unknown default engine succeeded")
	}
	// The same areas boot fine under the constrained default.
	if _, err := New(Config{Areas: areas}); err != nil {
		t.Fatalf("constrained boot on low-B area failed: %v", err)
	}
}

// TestAreasPolicyView: GET /v1/areas?policy= renders the listing
// through another engine; areas that engine cannot serve report an
// error field without hiding the rest, and the default listing stays
// engine-free.
func TestAreasPolicyView(t *testing.T) {
	areas := append(testAreas(), AreaState{ID: "lowb", B: 9, Mu: 1, Q: 0.1})
	_, ts := newTestServerAreas(t, areas)

	var def AreasResponse
	if status, _ := doJSON(t, "GET", ts.URL+"/v1/areas", "", &def); status != 200 {
		t.Fatal("default listing failed")
	}
	for _, a := range def.Areas {
		if a.Policy != "" || a.Error != "" {
			t.Errorf("default listing leaked engine fields: %+v", a)
		}
	}

	var ms AreasResponse
	if status, raw := doJSON(t, "GET", ts.URL+"/v1/areas?policy=multislope3", "", &ms); status != 200 {
		t.Fatalf("multislope listing: %d %s", status, raw)
	}
	if len(ms.Areas) != len(areas) {
		t.Fatalf("multislope listing hid areas: %d of %d", len(ms.Areas), len(areas))
	}
	for _, a := range ms.Areas {
		if a.Policy != policy.MultislopeEngine {
			t.Errorf("area %s listed without policy name: %+v", a.ID, a)
		}
		if a.ID == "lowb" {
			if a.Error == "" || a.Choice != "" {
				t.Errorf("unservable area not reported as error: %+v", a)
			}
			continue
		}
		if a.Error != "" || !strings.HasPrefix(a.Choice, "MS:") {
			t.Errorf("servable area %s: %+v", a.ID, a)
		}
	}

	status, raw := doJSON(t, "GET", ts.URL+"/v1/areas?policy=nope", "", nil)
	if status != 400 || errCode(t, raw) != "unknown_policy" {
		t.Errorf("unknown policy listing: %d %s", status, raw)
	}
}

// TestPoliciesEndpoint: the engine listing carries every registered
// engine with its pinned spec and marks the daemon default.
func TestPoliciesEndpoint(t *testing.T) {
	s, err := New(Config{Areas: testAreas(), DefaultPolicy: "multislope3"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	var resp PoliciesResponse
	if status, raw := doJSON(t, "GET", ts.URL+"/v1/policies", "", &resp); status != 200 {
		t.Fatalf("policies: %d %s", status, raw)
	}
	byName := map[string]PolicyInfo{}
	for _, p := range resp.Policies {
		byName[p.Name] = p
	}
	c, ok := byName[policy.DefaultEngine]
	if !ok || c.Spec != "constrained@v1" || c.Default {
		t.Errorf("constrained entry %+v", c)
	}
	m, ok := byName[policy.MultislopeEngine]
	if !ok || m.Spec != "multislope3@v1" || !m.Default || m.Doc == "" {
		t.Errorf("multislope entry %+v", m)
	}
}

// TestCacheEngineKeyIsolation: the engine dimension of the cache key —
// lazy non-default fill, isolation between engines, and invalidation
// by stats updates.
func TestCacheEngineKeyIsolation(t *testing.T) {
	c, err := NewCache(testAreas(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ms, err := policy.Lookup(policy.MultislopeEngine)
	if err != nil {
		t.Fatal(err)
	}
	rec, ok := c.Area("chicago")
	if !ok {
		t.Fatal("chicago missing")
	}
	def, _ := c.Get("chicago")
	first, err := c.Strategy(rec, ms)
	if err != nil {
		t.Fatalf("lazy multislope prepare: %v", err)
	}
	if first == def || first.Info().Choice == def.Info().Choice {
		t.Fatalf("engines share a cache entry: %+v vs %+v", first.Info(), def.Info())
	}
	again, err := c.Strategy(rec, ms)
	if err != nil {
		t.Fatal(err)
	}
	if again != first {
		t.Error("second lookup re-prepared instead of hitting the cache")
	}
	// A stats update invalidates the lazily-cached engine entry.
	if _, err := c.Update("chicago", 0, testAreas()[0].Stats()); err != nil {
		t.Fatal(err)
	}
	rec2, _ := c.Area("chicago")
	if rec2 == rec {
		t.Fatal("update did not swap the area record")
	}
	fresh, err := c.Strategy(rec2, ms)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == first {
		t.Error("post-update lookup returned the stale engine entry")
	}
	if fresh.rec.version != 2 {
		t.Errorf("rebuilt entry version %d, want 2", fresh.rec.version)
	}
}
