package server

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"idlereduce/internal/adaptive"
	"idlereduce/internal/ledger"
)

// Snapshot encoding of the idled state plane. The wire form is a
// versioned, checksummed envelope:
//
//	{"format": "idled-state", "schema_version": 1,
//	 "checksum": "sha256:<hex of payload bytes>", "payload": {...}}
//
// The checksum covers the exact payload bytes as they appear in the
// envelope, so any torn write, truncation or bit flip is detected
// before a single field is trusted. Decoding is fail-closed: unknown
// envelope fields, format or version mismatches, checksum mismatches,
// and structurally invalid areas or tracker states all reject the
// whole snapshot without touching serving state.

const (
	// snapshotFormat names the envelope; a different format string is
	// some other tool's file, not a version skew.
	snapshotFormat = "idled-state"
	// SnapshotSchemaVersion is the payload schema this build writes and
	// the newest it reads.
	SnapshotSchemaVersion = 1
	// maxSnapshotBytes bounds a restore upload (100k areas encode to a
	// few tens of MB; 256 MiB leaves generous headroom without letting
	// a stray upload exhaust memory).
	maxSnapshotBytes = 256 << 20
)

// AreaSnapshot is one area's complete serving state: the configured
// statistics, their version counter, and the streaming estimator
// (sufficient statistics plus CUSUM detector) feeding re-tunes.
type AreaSnapshot struct {
	AreaState
	// Version is the area's statistics version (starts at 1, bumped by
	// every stats update and re-tune); restored so audit trails stay
	// monotonic across the restore boundary.
	Version uint64 `json:"version"`
	// Tracker is the area's observation stream state. The zero value
	// means "no stream yet" (or the stream was invalidated by a
	// break-even change) and restores to a fresh tracker.
	Tracker adaptive.TrackerState `json:"tracker"`
}

// StatePlane is the snapshot payload: every area's state, in ID order
// for reproducible encodings.
type StatePlane struct {
	// TakenUnixMS is the capture wall-clock time (forensics only;
	// restore does not depend on it).
	TakenUnixMS int64 `json:"taken_unix_ms"`
	// Areas holds one entry per configured area, sorted by ID.
	Areas []AreaSnapshot `json:"areas"`
	// Ledger is the competitive-ratio ledger's state: pending entries,
	// the settled-id ring, and the empirical-CR accumulators. Omitted
	// when the ledger has nothing worth persisting, so ledger-idle
	// snapshots keep their pre-ledger bytes (an additive field at
	// schema version 1, not a version bump).
	Ledger *ledger.State `json:"ledger,omitempty"`
}

// Validate checks every entry is restorable on its own terms (the
// cache additionally requires the IDs to exist).
func (p StatePlane) Validate() error {
	seen := make(map[string]bool, len(p.Areas))
	for _, a := range p.Areas {
		if err := a.AreaState.Validate(); err != nil {
			return fmt.Errorf("server: snapshot: %w", err)
		}
		if a.Version == 0 {
			return fmt.Errorf("server: snapshot: area %s has version 0", a.ID)
		}
		if seen[a.ID] {
			return fmt.Errorf("server: snapshot: duplicate area %q", a.ID)
		}
		seen[a.ID] = true
		if err := a.Tracker.Validate(); err != nil {
			return fmt.Errorf("server: snapshot: area %s: %w", a.ID, err)
		}
	}
	if p.Ledger != nil {
		if err := p.Ledger.Validate(); err != nil {
			return fmt.Errorf("server: snapshot: %w", err)
		}
	}
	return nil
}

// snapshotEnvelope is the versioned wire wrapper.
type snapshotEnvelope struct {
	Format        string          `json:"format"`
	SchemaVersion int             `json:"schema_version"`
	Checksum      string          `json:"checksum"`
	Payload       json.RawMessage `json:"payload"`
}

// payloadChecksum renders the integrity tag of payload bytes.
func payloadChecksum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// EncodeSnapshot renders a state plane as the checksummed envelope
// (newline-terminated JSON).
func EncodeSnapshot(p StatePlane) ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	payload, err := json.Marshal(p)
	if err != nil {
		return nil, fmt.Errorf("server: snapshot encode: %w", err)
	}
	env := snapshotEnvelope{
		Format:        snapshotFormat,
		SchemaVersion: SnapshotSchemaVersion,
		Checksum:      payloadChecksum(payload),
		Payload:       payload,
	}
	out, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("server: snapshot encode: %w", err)
	}
	return append(out, '\n'), nil
}

// DecodeSnapshot parses and verifies a snapshot envelope. Every
// failure mode — malformed JSON, unknown envelope fields, wrong
// format, future schema, checksum mismatch, invalid payload — is an
// error; no partially-valid state is ever returned.
func DecodeSnapshot(data []byte) (StatePlane, error) {
	var env snapshotEnvelope
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&env); err != nil {
		return StatePlane{}, fmt.Errorf("server: snapshot decode: %w", err)
	}
	if err := trailingJSON(dec); err != nil {
		return StatePlane{}, err
	}
	if env.Format != snapshotFormat {
		return StatePlane{}, fmt.Errorf("server: snapshot decode: format %q is not %q", env.Format, snapshotFormat)
	}
	if env.SchemaVersion < 1 || env.SchemaVersion > SnapshotSchemaVersion {
		return StatePlane{}, fmt.Errorf("server: snapshot decode: schema version %d not supported (max %d)", env.SchemaVersion, SnapshotSchemaVersion)
	}
	if len(env.Payload) == 0 {
		return StatePlane{}, fmt.Errorf("server: snapshot decode: empty payload")
	}
	if got := payloadChecksum(env.Payload); got != env.Checksum {
		return StatePlane{}, fmt.Errorf("server: snapshot decode: checksum mismatch (envelope %q, payload %q)", env.Checksum, got)
	}
	var p StatePlane
	pdec := json.NewDecoder(bytes.NewReader(env.Payload))
	pdec.DisallowUnknownFields()
	if err := pdec.Decode(&p); err != nil {
		return StatePlane{}, fmt.Errorf("server: snapshot decode: payload: %w", err)
	}
	if err := p.Validate(); err != nil {
		return StatePlane{}, err
	}
	return p, nil
}

// trailingJSON rejects bytes after the envelope object (a concatenated
// or corrupted file).
func trailingJSON(dec *json.Decoder) error {
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("server: snapshot decode: trailing data after envelope")
	}
	return nil
}

// StatePlane captures the server's current state plane: every area's
// statistics, version, and observation stream. Each shard is read from
// its current snapshot and each tracker under its observer lock, so
// the capture is consistent per area (the unit of restore) without
// stopping the world.
func (s *Server) StatePlane() StatePlane {
	recs := s.cache.Areas()
	p := StatePlane{
		TakenUnixMS: time.Now().UnixMilli(),
		Areas:       make([]AreaSnapshot, 0, len(recs)),
	}
	for _, rec := range recs {
		entry := AreaSnapshot{AreaState: rec.state, Version: rec.version}
		if o, ok := s.observers.get(rec.state.ID); ok {
			o.mu.Lock()
			// A tracker left at a stale break-even interval restarts on
			// the next observation anyway; snapshot that as "no stream".
			if o.tr.B() == rec.state.B {
				entry.Tracker = o.tr.State()
			}
			o.mu.Unlock()
		}
		p.Areas = append(p.Areas, entry)
	}
	if st := s.ledger.State(); !st.Empty() {
		p.Ledger = &st
	}
	return p
}

// restoreState applies a validated state plane to the live server:
// the strategy cache swaps per shard (all-or-nothing validation first)
// and each area's observation stream is rebuilt from its tracker
// state. Areas absent from the snapshot keep their current state.
func (s *Server) restoreState(p StatePlane) error {
	if err := s.cache.Restore(p.Areas); err != nil {
		return err
	}
	if err := s.restoreTrackers(p); err != nil {
		return err
	}
	// The ledger resumes where the donor left off; a snapshot without a
	// ledger section resets it (the donor had nothing pending and
	// nothing accumulated).
	var lst ledger.State
	if p.Ledger != nil {
		lst = *p.Ledger
	}
	if err := s.ledger.Restore(lst); err != nil {
		return fmt.Errorf("server: restore: %w", err)
	}
	return nil
}

// restoreTrackers rebuilds the observation streams from a snapshot.
// The cache restore has already published the snapshot's (B, mu, q),
// so each tracker is rebuilt at its area's restored break-even.
func (s *Server) restoreTrackers(p StatePlane) error {
	for _, a := range p.Areas {
		o, ok := s.observers.get(a.ID)
		if !ok {
			continue
		}
		tr, err := adaptive.NewTracker(s.observers.cfg.streamConfig(a.B))
		if err != nil {
			return fmt.Errorf("server: restore: area %s: %w", a.ID, err)
		}
		if err := tr.RestoreState(a.Tracker); err != nil {
			return fmt.Errorf("server: restore: area %s: %w", a.ID, err)
		}
		o.mu.Lock()
		o.tr = tr
		o.mu.Unlock()
	}
	return nil
}

// SnapshotRestoreResponse reports a completed live restore.
type SnapshotRestoreResponse struct {
	// Restored counts the areas whose state was replaced.
	Restored int `json:"restored"`
	// SchemaVersion echoes the accepted snapshot's schema.
	SchemaVersion int `json:"schema_version"`
}

// handleSnapshotGet serves GET /v1/snapshot: the checksummed state
// plane of the running daemon.
func (s *Server) handleSnapshotGet(w http.ResponseWriter, r *http.Request) {
	data, err := EncodeSnapshot(s.StatePlane())
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", "encode snapshot: "+err.Error())
		return
	}
	s.rec.Add("snapshot_saves_total", 1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

// handleSnapshotRestore serves POST /v1/snapshot: a live restore of a
// previously captured state plane. The body is the envelope exactly as
// GET /v1/snapshot produced it; any integrity or validation failure
// rejects the whole restore with serving state untouched.
func (s *Server) handleSnapshotRestore(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSnapshotBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge, "too_large", "read snapshot: "+err.Error())
		return
	}
	p, err := DecodeSnapshot(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_snapshot", err.Error())
		return
	}
	if err := s.restoreState(p); err != nil {
		writeError(w, http.StatusUnprocessableEntity, "bad_snapshot", err.Error())
		return
	}
	s.rec.Add("snapshot_restores_total", 1)
	writeJSON(w, http.StatusOK, SnapshotRestoreResponse{
		Restored:      len(p.Areas),
		SchemaVersion: SnapshotSchemaVersion,
	})
}
