package server

// Wire types of the idled HTTP API (see docs/SERVER.md). All request
// bodies are JSON with unknown fields rejected, so client typos surface
// as 400s instead of silently ignored options.

import (
	"fmt"

	"idlereduce/internal/policy"
	"idlereduce/internal/predict"
)

// DecideRequest asks for one online idling decision: which vertex
// strategy to play for the next stop of the given vehicle, and the
// concrete shutoff threshold to use.
type DecideRequest struct {
	// VehicleID identifies the requesting vehicle. It seeds the
	// per-request randomness stream, so distinct vehicles draw
	// independent thresholds from randomized policies.
	VehicleID string `json:"vehicle_id"`
	// Area is the statistics area the vehicle is stopped in.
	Area string `json:"area"`
	// B optionally overrides the area's break-even interval (seconds).
	// Zero means "use the area default", which is the precomputed
	// cache-hit path.
	B float64 `json:"b,omitempty"`
	// Seed optionally overrides the server's root seed. Replies are a
	// pure function of (seed, vehicle_id, area, b) and the area's
	// current statistics.
	Seed uint64 `json:"seed,omitempty"`
	// Policy optionally selects the policy engine serving this request:
	// a registered engine name ("constrained", "multislope3"), with an
	// optional version pin ("multislope3@v1"). Empty uses the daemon's
	// default engine. Unknown engines are a 400 with code
	// unknown_policy; engines that cannot serve the area's statistics
	// are a 400 with code invalid_policy_params.
	Policy string `json:"policy,omitempty"`
	// Params optionally tunes the selected engine's declared parameters
	// (e.g. {"lambda": 0.25} for softml/distadvice). Unknown names and
	// out-of-range values are a 400 with code invalid_policy_params, as
	// are params sent to an engine that declares none. Parameters are
	// part of the strategy cache key, so differently-tuned requests
	// never share a prepared strategy.
	Params map[string]float64 `json:"params,omitempty"`
	// Prediction optionally attaches a stop-length forecast for
	// prediction-aware engines (softml, distadvice). Engines whose
	// strategies cannot consume predictions reject it with a 400
	// invalid_prediction, as do malformed blocks.
	Prediction *PredictionBlock `json:"prediction,omitempty"`
	// Ledger opts this decision into the competitive-ratio ledger: the
	// reply carries a decision_id, the decision enters the pending
	// table, and a later observe quoting the id settles it into the
	// empirical-CR accumulators (see docs/OBSERVABILITY.md). The
	// X-Ledger request header is an equivalent opt-in for clients that
	// cannot touch the body. Requests that do not opt in stay
	// byte-identical to the pre-ledger wire format.
	Ledger bool `json:"ledger,omitempty"`
}

// PredictionBlock is the wire form of one stop-length forecast.
type PredictionBlock struct {
	// PredictedStopSec is the forecast stop length in seconds (finite,
	// non-negative).
	PredictedStopSec float64 `json:"predicted_stop_s"`
	// Confidence optionally scales the engine's trust parameter for
	// this request in [0, 1]; omitted means full confidence.
	Confidence *float64 `json:"confidence,omitempty"`
	// M1/M2 are the optional predicted first and second moments of the
	// stop length (for the distadvice engine). Both or neither must be
	// present, finite, non-negative, with m2 >= m1^2.
	M1 *float64 `json:"m1,omitempty"`
	M2 *float64 `json:"m2,omitempty"`
}

// toPrediction normalizes and validates the wire block. Errors wrap
// predict.ErrBadPrediction and map to the wire code invalid_prediction.
func (p *PredictionBlock) toPrediction() (predict.Prediction, error) {
	pr := predict.Prediction{StopSec: p.PredictedStopSec, Confidence: 1}
	if p.Confidence != nil {
		pr.Confidence = *p.Confidence
	}
	if (p.M1 == nil) != (p.M2 == nil) {
		return pr, fmt.Errorf("%w: moments m1 and m2 must be sent together", predict.ErrBadPrediction)
	}
	if p.M1 != nil {
		pr.M1, pr.M2, pr.HasMoments = *p.M1, *p.M2, true
	}
	return pr, pr.Validate()
}

// DecideResponse is the decision for one stop.
type DecideResponse struct {
	VehicleID string  `json:"vehicle_id"`
	Area      string  `json:"area"`
	B         float64 `json:"b"`
	// Choice is the selected vertex strategy (DET, TOI, b-DET, N-Rand).
	Choice string `json:"choice"`
	// ThresholdSec is the shutoff threshold for this stop: idle this
	// many seconds, then turn the engine off. Deterministic strategies
	// always return the same value; N-Rand draws from its density using
	// the per-request derived stream.
	ThresholdSec float64 `json:"threshold_sec"`
	// WorstCaseCost and WorstCaseCR are the guaranteed bounds of the
	// selected strategy over every distribution consistent with the
	// area statistics.
	WorstCaseCost float64 `json:"worst_case_cost"`
	WorstCaseCR   float64 `json:"worst_case_cr"`
	// Seed echoes the effective root seed used for the draw.
	Seed uint64 `json:"seed"`
	// Cached reports whether the decision came from the precomputed
	// per-area strategy cache (true) or was derived for a custom B
	// (false).
	Cached bool `json:"cached"`
	// Policy is the canonical engine spec ("name@vN") that produced the
	// decision. Omitted on the default constrained path, so replies
	// that do not opt into an engine are byte-identical to the
	// pre-engine wire format.
	Policy string `json:"policy,omitempty"`
	// Schedule is the multi-state action ladder for engines with more
	// than one controlled transition (e.g. multislope3 emits fuel_cut
	// then engine_off rungs). Single-threshold engines omit it;
	// ThresholdSec then carries the whole decision.
	Schedule []ScheduleAction `json:"schedule,omitempty"`
	// Explain is the engine's human-readable derivation record.
	// Omitted on the default path.
	Explain string `json:"explain,omitempty"`
	// DecisionID is the competitive-ratio ledger handle, minted only
	// when the request opted in (Ledger field or X-Ledger header).
	// Quote it in a later observe to settle the decision against its
	// realized stop length.
	DecisionID string `json:"decision_id,omitempty"`
}

// ScheduleAction is one rung of a multi-state decision ladder: enter
// State once the stop has lasted AtSec seconds.
type ScheduleAction struct {
	State string  `json:"state"`
	AtSec float64 `json:"at_sec"`
}

// BatchDecideRequest fans one decision per item over the server's
// worker pool. Items are independent; the reply preserves input order.
type BatchDecideRequest struct {
	// Seed is the default root seed for items that do not carry their
	// own. Zero falls back to the server root seed.
	Seed uint64 `json:"seed,omitempty"`
	// Requests are the individual decisions to make.
	Requests []DecideRequest `json:"requests"`
}

// BatchItem is one slot of a batch reply: exactly one of Decision or
// Error is set. Per-item failures never fail the whole batch.
type BatchItem struct {
	Decision *DecideResponse `json:"decision,omitempty"`
	Error    *APIError       `json:"error,omitempty"`
}

// BatchDecideResponse carries the order-preserving batch results.
type BatchDecideResponse struct {
	Seed    uint64      `json:"seed"`
	Results []BatchItem `json:"results"`
}

// StatsUpdateRequest replaces one area's constrained statistics
// (PUT /v1/areas/{id}/stats). The pair must be feasible for the area's
// break-even interval: q in [0, 1], mu in [0, B(1-q)].
type StatsUpdateRequest struct {
	// B optionally updates the area's default break-even interval.
	// Zero keeps the current value.
	B float64 `json:"b,omitempty"`
	// Mu is mu_B-: the partial expectation of stops not longer than B.
	Mu float64 `json:"mu"`
	// Q is q_B+: the probability of a stop longer than B.
	Q float64 `json:"q"`
}

// AreaInfo describes one area's current cached strategy
// (GET /v1/areas and the reply to a stats update).
type AreaInfo struct {
	ID string  `json:"id"`
	B  float64 `json:"b"`
	Mu float64 `json:"mu"`
	Q  float64 `json:"q"`
	// Choice is the precomputed vertex selection for (B, mu, q).
	Choice string `json:"choice"`
	// ThresholdSec is the fixed threshold for deterministic choices;
	// -1 for N-Rand (the threshold is drawn per request).
	ThresholdSec  float64 `json:"threshold_sec"`
	WorstCaseCost float64 `json:"worst_case_cost"`
	WorstCaseCR   float64 `json:"worst_case_cr"`
	// Version counts statistics swaps since boot (starts at 1).
	Version uint64 `json:"version"`
	// Policy names the engine the listing was rendered for. Omitted
	// for the default constrained engine, so the default listing is
	// byte-identical to the pre-engine wire format.
	Policy string `json:"policy,omitempty"`
	// Error is set instead of the strategy fields when the selected
	// engine cannot serve this area's statistics (GET /v1/areas with a
	// ?policy= override only; the default listing never errors).
	Error string `json:"error,omitempty"`
}

// AreasResponse lists every configured area, sorted by ID.
type AreasResponse struct {
	Areas []AreaInfo `json:"areas"`
}

// PolicyInfo describes one registered policy engine
// (GET /v1/policies).
type PolicyInfo struct {
	// Name is the registry name; Spec is the canonical "name@vN" form
	// requests may pin.
	Name    string `json:"name"`
	Version int    `json:"version"`
	Spec    string `json:"spec"`
	Doc     string `json:"doc"`
	// Default marks the engine this daemon serves when a request does
	// not carry a policy field.
	Default bool `json:"default,omitempty"`
	// Params lists the engine's accepted tunable parameters (name, doc,
	// default, range). Omitted for engines that declare none.
	Params []policy.ParamSpec `json:"params,omitempty"`
}

// PoliciesResponse lists the registered policy engines, sorted by
// name.
type PoliciesResponse struct {
	Policies []PolicyInfo `json:"policies"`
}

// ObserveRequest streams one completed stop into an area's running
// statistics (POST /v1/observe). Unlike PUT /v1/areas/{id}/stats,
// which replaces the pair wholesale, observations accumulate into
// exponentially-weighted moments and feed the CUSUM drift detector; a
// drift alarm re-derives the area's strategies server-side.
type ObserveRequest struct {
	// Area is the statistics area the stop happened in.
	Area string `json:"area"`
	// StopSec is the completed stop's length in seconds.
	StopSec float64 `json:"stop_sec"`
	// VehicleID optionally attributes the observation (forensics only;
	// the stream is keyed by area).
	VehicleID string `json:"vehicle_id,omitempty"`
	// PredictedStopSec optionally carries the forecast that was made for
	// this stop; the completed length closes the loop, feeding the
	// prediction-quality metrics (error histograms, consistency/regret
	// counters). Malformed values are a 400 invalid_prediction.
	PredictedStopSec *float64 `json:"predicted_stop_s,omitempty"`
	// DecisionID optionally settles a ledger-tracked decision: StopSec
	// becomes the decision's realized stop length and the outcome
	// streams into the {area, engine} empirical-CR accumulator. An id
	// the ledger does not know is a 404 unknown_decision; an id that
	// already settled is a 409 duplicate_settle. Both reject the whole
	// observation (fail-closed: the stream absorbs nothing).
	DecisionID string `json:"decision_id,omitempty"`
}

// ObserveResponse reports the outcome of one streamed observation.
type ObserveResponse struct {
	Area string `json:"area"`
	// Seq is the observation's 1-based position in the area's stream
	// since boot (or since the area's break-even interval changed).
	Seq int64 `json:"seq"`
	// Warm reports whether the estimates have absorbed the configured
	// minimum observations; re-tunes are suppressed until then.
	Warm bool `json:"warm"`
	// Mu and Q are the area's running estimates after this observation.
	Mu float64 `json:"mu"`
	Q  float64 `json:"q"`
	// Alarm reports a CUSUM drift alarm on this observation; Retuned
	// reports that the alarm re-derived the area's cached strategies
	// from the running estimates.
	Alarm   bool `json:"alarm,omitempty"`
	Retuned bool `json:"retuned,omitempty"`
	// StatsVersion is the area's statistics version after this
	// observation (bumped when Retuned).
	StatsVersion uint64 `json:"stats_version"`
	// Settled reports the observation settled a ledger decision;
	// OnlineCost and OptCost are then the realized cost pair the
	// empirical CR accumulated (min(y,T)+B·1[y>T] and min(y,B)).
	Settled    bool    `json:"settled,omitempty"`
	OnlineCost float64 `json:"online_cost,omitempty"`
	OptCost    float64 `json:"opt_cost,omitempty"`
}

// BatchObserveRequest streams several observations in one request.
// Items are applied strictly in input order (observations on one area
// form a sequential stream), so the reply is deterministic.
type BatchObserveRequest struct {
	Observations []ObserveRequest `json:"observations"`
}

// BatchObserveItem is one slot of a batch observe reply: exactly one
// of Result or Error is set.
type BatchObserveItem struct {
	Result *ObserveResponse `json:"result,omitempty"`
	Error  *APIError        `json:"error,omitempty"`
}

// BatchObserveResponse carries the order-preserving batch results plus
// roll-up counts so load generators don't re-scan items.
type BatchObserveResponse struct {
	Results []BatchObserveItem `json:"results"`
	// Accepted counts successful observations; Alarms and Retunes count
	// CUSUM alarms and strategy re-derivations inside the batch.
	Accepted int `json:"accepted"`
	Alarms   int `json:"alarms"`
	Retunes  int `json:"retunes"`
	// Settled counts ledger decisions the batch settled.
	Settled int `json:"settled,omitempty"`
}

// APIError is the structured error body every non-2xx reply carries:
//
//	{"error": {"code": "unknown_area", "message": "...", "status": 404}}
type APIError struct {
	// Code is a stable machine-readable identifier: bad_request,
	// invalid_stats, unknown_area, unknown_policy,
	// invalid_policy_params, invalid_prediction, unknown_decision,
	// duplicate_settle, not_found, method_not_allowed, overloaded,
	// too_large, internal.
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
	// Status is the HTTP status the error was sent with.
	Status int `json:"status"`
}

// ErrorResponse wraps APIError as the JSON error envelope.
type ErrorResponse struct {
	Error APIError `json:"error"`
}

// HealthResponse is the GET /healthz body. Version labels let
// dashboards and load reports tag the run they measured.
type HealthResponse struct {
	Status   string `json:"status"`
	UptimeMS int64  `json:"uptime_ms"`
	Areas    int    `json:"areas"`
	// Version is the module version from debug.ReadBuildInfo
	// ("(devel)" for source builds, "unknown" outside a module).
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	// StartUnixMS is the process start time.
	StartUnixMS int64 `json:"start_unix_ms"`
}

// BuildInfoResponse is the GET /v1/buildinfo body: the full build
// provenance of the serving binary plus its lifecycle timestamps.
type BuildInfoResponse struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	// Revision/VCSTime/VCSModified carry the vcs.* build settings when
	// the binary was built from a checkout.
	Revision    string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
	StartUnixMS int64  `json:"start_unix_ms"`
	UptimeMS    int64  `json:"uptime_ms"`
}
