package server

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestListenIdempotentAndServeDrains(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0", Areas: testAreas()})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	if again, _ := s.Listen(); again != addr {
		t.Errorf("second Listen moved: %s vs %s", again, addr)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx) }()

	url := "http://" + addr
	waitHealthy(t, url)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v, want clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	// The listener is closed: new requests must fail.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("request succeeded after shutdown")
	}
}

// TestGracefulDrainFinishesInflight cancels the serve context while a
// decision is deliberately held mid-flight; the drain must let it
// finish with a 200 instead of cutting the connection.
func TestGracefulDrainFinishesInflight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s, err := New(Config{
		Addr:  "127.0.0.1:0",
		Areas: testAreas(),
		testHook: func() {
			once.Do(func() { close(entered) })
			<-release
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(ctx) }()

	reqDone := make(chan int, 1)
	go func() {
		resp, err := http.Post("http://"+addr+"/v1/decide", "application/json",
			strings.NewReader(`{"vehicle_id":"v","area":"chicago"}`))
		if err != nil {
			reqDone <- -1
			return
		}
		resp.Body.Close()
		reqDone <- resp.StatusCode
	}()

	<-entered // the request is in the handler
	cancel()  // begin graceful drain with it still in flight
	select {
	case err := <-serveDone:
		t.Fatalf("Serve returned %v before the in-flight request finished", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	if status := <-reqDone; status != http.StatusOK {
		t.Errorf("in-flight request finished with %d during drain", status)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("drain returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not finish draining")
	}
}

func TestServeListenError(t *testing.T) {
	s1, err := New(Config{Addr: "127.0.0.1:0", Areas: testAreas()})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s1.Listen()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Addr: addr, Areas: testAreas()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Listen(); err == nil {
		t.Error("second bind of the same address succeeded")
	}
}

// waitHealthy polls healthz until the server answers.
func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("server at %s never became healthy", base)
}
