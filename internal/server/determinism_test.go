package server

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// TestDecideDeterministicAcrossWorkers is the serving determinism
// contract: identical requests with the same seed return byte-identical
// bodies regardless of the batch worker-pool size, sibling traffic, or
// which server instance answers. N-Rand draws are covered by updating
// an area into the N-Rand region first.
func TestDecideDeterministicAcrossWorkers(t *testing.T) {
	singles := []string{
		`{"vehicle_id":"det-1","area":"chicago","seed":11}`,
		`{"vehicle_id":"det-1","area":"chicago","b":60,"seed":11}`,
		`{"vehicle_id":"rnd-1","area":"nrandia","seed":11}`,
		`{"vehicle_id":"rnd-2","area":"nrandia","seed":12}`,
	}
	batch := `{"seed":11,"requests":[
		{"vehicle_id":"rnd-1","area":"nrandia"},
		{"vehicle_id":"det-1","area":"chicago"},
		{"vehicle_id":"rnd-9","area":"nrandia","seed":99},
		{"vehicle_id":"det-2","area":"atlanta","b":45}]}`

	var wantSingles [][]byte
	var wantBatch []byte
	for _, workers := range []int{1, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			areas := append(testAreas(),
				// Statistics deep in the N-Rand region so the reply
				// exercises the randomized threshold draw.
				AreaState{ID: "nrandia", B: 28, Mu: 4, Q: 0.25})
			s, err := New(Config{Areas: areas, Workers: workers})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			for i, body := range singles {
				// Each request twice: replies must be stable within a
				// server, not just across servers.
				for rep := 0; rep < 2; rep++ {
					status, raw := doJSON(t, "POST", ts.URL+"/v1/decide", body, nil)
					if status != http.StatusOK {
						t.Fatalf("single %d status %d: %s", i, status, raw)
					}
					if workers == 1 && rep == 0 {
						wantSingles = append(wantSingles, raw)
					} else if !bytes.Equal(raw, wantSingles[i]) {
						t.Errorf("single %d diverged:\n%s\n%s", i, raw, wantSingles[i])
					}
				}
			}
			status, raw := doJSON(t, "POST", ts.URL+"/v1/decide/batch", batch, nil)
			if status != http.StatusOK {
				t.Fatalf("batch status %d: %s", status, raw)
			}
			if workers == 1 {
				wantBatch = raw
			} else if !bytes.Equal(raw, wantBatch) {
				t.Errorf("batch diverged at workers=%d:\n%s\n%s", workers, raw, wantBatch)
			}
		})
	}
}

// TestDecideSeedAndIdentityChangeDraws checks the opposite direction:
// distinct seeds or vehicle IDs give independent N-Rand draws, so the
// server is not accidentally serving one frozen threshold.
func TestDecideSeedAndIdentityChangeDraws(t *testing.T) {
	areas := []AreaState{{ID: "nrandia", B: 28, Mu: 4, Q: 0.25}}
	_, ts := newTestServerAreas(t, areas)
	draw := func(body string) float64 {
		var resp DecideResponse
		if status, raw := doJSON(t, "POST", ts.URL+"/v1/decide", body, &resp); status != 200 {
			t.Fatalf("status %d: %s", status, raw)
		}
		if resp.Choice != "N-Rand" {
			t.Fatalf("choice %s, want N-Rand", resp.Choice)
		}
		return resp.ThresholdSec
	}
	base := draw(`{"vehicle_id":"v","area":"nrandia","seed":5}`)
	if other := draw(`{"vehicle_id":"v","area":"nrandia","seed":6}`); other == base {
		t.Errorf("seed change kept threshold %v", base)
	}
	if other := draw(`{"vehicle_id":"w","area":"nrandia","seed":5}`); other == base {
		t.Errorf("vehicle change kept threshold %v", base)
	}
	if again := draw(`{"vehicle_id":"v","area":"nrandia","seed":5}`); again != base {
		t.Errorf("replay drew %v, want %v", again, base)
	}
}

// newTestServerAreas is newTestServer with explicit areas.
func newTestServerAreas(t *testing.T, areas []AreaState) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{Areas: areas})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}
