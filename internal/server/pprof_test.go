package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// startServing boots a full Server (real listeners, real Serve loop)
// and returns the bound serving address plus a stop function that
// drains it.
func startServing(t *testing.T, mutate func(*Config)) (*Server, string) {
	t.Helper()
	cfg := Config{Addr: "127.0.0.1:0", Areas: testAreas()}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := s.Listen()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.Serve(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Errorf("serve: %v", err)
			}
		case <-time.After(5 * time.Second):
			t.Error("serve did not drain")
		}
	})
	return s, addr
}

// TestPprofDisabledByDefault is the safety half of the profiling
// plane: with -pprof-addr unset no profiling listener is ever bound,
// and the serving mux exposes no /debug/pprof surface.
func TestPprofDisabledByDefault(t *testing.T) {
	s, addr := startServing(t, nil)
	if got := s.PprofAddr(); got != "" {
		t.Fatalf("pprof listener bound at %q with PprofAddr unset", got)
	}
	for _, path := range []string{
		"/debug/pprof/",
		"/debug/pprof/profile",
		"/debug/pprof/heap",
		"/debug/pprof/cmdline",
	} {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s on the serving port: status %d, want 404", path, resp.StatusCode)
		}
		// The reply must be the structured not_found envelope, not a
		// pprof page.
		if !strings.Contains(string(body), "not_found") {
			t.Errorf("GET %s reply is not the structured 404: %s", path, body)
		}
	}
}

// TestPprofServesProfilesOnSeparateListener is the live half: with
// -pprof-addr set, CPU and heap profiles are served from the dedicated
// listener while the serving port still refuses them.
func TestPprofServesProfilesOnSeparateListener(t *testing.T) {
	s, addr := startServing(t, func(c *Config) { c.PprofAddr = "127.0.0.1:0" })
	paddr := s.PprofAddr()
	if paddr == "" {
		t.Fatal("pprof listener not bound")
	}
	if paddr == addr {
		t.Fatalf("pprof listener %s is the serving listener", paddr)
	}

	// Heap profile (live capture) and the index page.
	for _, path := range []string{"/debug/pprof/heap?debug=1", "/debug/pprof/"} {
		resp, err := http.Get("http://" + paddr + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, body)
		}
		if len(body) == 0 {
			t.Fatalf("GET %s: empty profile", path)
		}
	}
	// A short CPU profile proves the profile endpoint streams.
	resp, err := http.Get("http://" + paddr + "/debug/pprof/profile?seconds=1")
	if err != nil {
		t.Fatal(err)
	}
	prof, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(prof) == 0 {
		t.Fatalf("CPU profile: status %d, %d bytes", resp.StatusCode, len(prof))
	}

	// The serving port must still 404 the profiling tree.
	resp, err = http.Get("http://" + addr + "/debug/pprof/heap")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("serving port served a profile: status %d", resp.StatusCode)
	}

	// Decisions keep working alongside profiling.
	dresp, err := http.Post("http://"+addr+"/v1/decide", "application/json",
		strings.NewReader(`{"vehicle_id":"p-1","area":"chicago"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("decide while profiling: status %d", dresp.StatusCode)
	}
}

// TestPprofBadAddrFailsBoot: a malformed profiling address must fail
// Listen loudly (and release the serving listener), never boot a
// server with a silently missing profiling plane.
func TestPprofBadAddrFailsBoot(t *testing.T) {
	s, err := New(Config{Addr: "127.0.0.1:0", Areas: testAreas(), PprofAddr: "256.0.0.1:notaport"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Listen(); err == nil {
		t.Fatal("Listen succeeded with a bad pprof address")
	} else if !strings.Contains(err.Error(), "pprof") {
		t.Fatalf("error does not name the pprof listener: %v", err)
	}
}

// TestPerAreaLatencyAttribution pins the decide path's per-area
// metrics: every served decision lands in decide_area_total and
// decide_area_ms for its area, with pre-formatted names.
func TestPerAreaLatencyAttribution(t *testing.T) {
	s, ts := newTestServer(t, nil)
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"vehicle_id":"a-%d","area":"chicago"}`, i)
		if code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/decide", body, nil); code != http.StatusOK {
			t.Fatalf("decide: %d %s", code, raw)
		}
	}
	if code, raw := doJSON(t, http.MethodPost, ts.URL+"/v1/decide", `{"vehicle_id":"a-x","area":"atlanta"}`, nil); code != http.StatusOK {
		t.Fatalf("decide: %d %s", code, raw)
	}
	snap := s.Recorder().Snapshot()
	if n, ok := snap.CounterValue(`decide_area_total{area="chicago"}`); !ok || n != 4 {
		t.Errorf("chicago decide_area_total = %d, %v; want 4", n, ok)
	}
	h, ok := snap.HistogramValue(`decide_area_ms{area="chicago"}`)
	if !ok || h.Count != 4 {
		t.Fatalf("chicago decide_area_ms: %+v ok=%v", h, ok)
	}
	top := snap.TopHistograms("decide_area_ms", 1)
	if len(top) != 1 {
		t.Fatalf("top-1 attribution returned %d entries", len(top))
	}
}
