// Package ledger joins online decisions to their realized outcomes —
// the measurement plane for the paper's central quantity, the
// competitive ratio CR = E[cost_online] / E[cost_offline].
//
// A decision enters as a Pending entry (decision id, area, engine,
// break-even interval B, the threshold actually drawn). When the
// completed stop length y arrives with the same decision id, the entry
// settles into a realized-cost record:
//
//	online = min(y, T) + B·1[y > T]   (idle until T, restart if exceeded)
//	opt    = min(y, B)                (the offline clairvoyant's cost)
//
// and streams into a per-{area, engine} accumulator of the empirical
// CR. The accumulator keeps exponentially-forgotten first and second
// moments of (online, opt) pairs, so the ratio-of-means estimate
// carries a delta-method variance band; a breach detector compares the
// band against the engine's published worst-case bound and trips after
// a configurable run of confidently-violating windows.
//
// The package is deliberately clock-free: callers pass wall times in,
// every transition is a pure function of its inputs, and the full
// state round-trips through State — which is what lets a snapshot
// restore resume the ledger byte-identically and lets `idlectl cr`
// rebuild the same table forensically from an audit log alone.
package ledger

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Stable error classes; the server maps them to the wire codes
// unknown_decision and duplicate_settle.
var (
	// ErrUnknownDecision reports a settle for an id that is not pending:
	// never issued, already expired, or evicted under capacity pressure.
	ErrUnknownDecision = errors.New("ledger: unknown decision")
	// ErrDuplicateSettle reports a second settle of an id that already
	// settled (within the retained duplicate-detection window).
	ErrDuplicateSettle = errors.New("ledger: duplicate settle")
)

// Config parameterizes a Ledger. The zero value takes every default.
type Config struct {
	// Shards is the pending-table shard count, rounded up to a power of
	// two (default 8). Purely a contention knob.
	Shards int
	// Capacity bounds pending entries per shard; the oldest entry is
	// evicted (counted as expired) when a shard fills (default 4096).
	Capacity int
	// TTLMS expires pending entries older than this many milliseconds
	// at settle/issue time (default 600_000, ten minutes).
	TTLMS int64
	// Forgetting is the accumulator decay per settle in (0, 1]
	// (default 1: plain cumulative Welford moments).
	Forgetting float64
	// Window is the number of settles per breach-detector evaluation
	// window (default 20).
	Window int
	// Patience is the number of consecutive violating windows before a
	// breach trips (default 3).
	Patience int
	// Band is the variance-band half-width multiplier z (default 2).
	Band float64
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.Capacity <= 0 {
		c.Capacity = 4096
	}
	if c.TTLMS <= 0 {
		c.TTLMS = 600_000
	}
	if c.Forgetting <= 0 || c.Forgetting > 1 || math.IsNaN(c.Forgetting) {
		c.Forgetting = 1
	}
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.Patience <= 0 {
		c.Patience = 3
	}
	if c.Band <= 0 || math.IsNaN(c.Band) {
		c.Band = 2
	}
	return c
}

// Pending is one decision awaiting its outcome.
type Pending struct {
	// ID is the decision id the outcome must quote.
	ID string `json:"id"`
	// Area/Engine key the accumulator the outcome streams into. Engine
	// is the canonical pinned spec ("constrained@v1").
	Area   string `json:"area"`
	Engine string `json:"engine"`
	// Params are the resolved engine parameters (forensics only).
	Params map[string]float64 `json:"params,omitempty"`
	// B is the effective break-even interval; ThresholdSec the threshold
	// the engine actually drew for this stop.
	B            float64 `json:"b"`
	ThresholdSec float64 `json:"threshold_sec"`
	// Bound is the engine's published worst-case CR for the strategy
	// that made the decision (0 = no bound published).
	Bound float64 `json:"bound,omitempty"`
	// IssuedUnixMS is the issue wall time (drives TTL expiry and the
	// join-latency measurement).
	IssuedUnixMS int64 `json:"issued_unix_ms"`
}

func (p Pending) validate() error {
	if p.ID == "" {
		return fmt.Errorf("ledger: pending entry has empty id")
	}
	if p.Area == "" || p.Engine == "" {
		return fmt.Errorf("ledger: pending %s has empty area or engine", p.ID)
	}
	if !(p.B > 0) || math.IsInf(p.B, 0) {
		return fmt.Errorf("ledger: pending %s has break-even %v", p.ID, p.B)
	}
	if p.ThresholdSec < 0 || math.IsNaN(p.ThresholdSec) || math.IsInf(p.ThresholdSec, 0) {
		return fmt.Errorf("ledger: pending %s has threshold %v", p.ID, p.ThresholdSec)
	}
	if p.Bound < 0 || math.IsNaN(p.Bound) || math.IsInf(p.Bound, 0) {
		return fmt.Errorf("ledger: pending %s has bound %v", p.ID, p.Bound)
	}
	if p.IssuedUnixMS < 0 {
		return fmt.Errorf("ledger: pending %s has negative issue time", p.ID)
	}
	return nil
}

// Key identifies one accumulator.
type Key struct {
	Area   string
	Engine string
}

// Outcome reports one successful settle.
type Outcome struct {
	// Pending is the entry that settled.
	Pending Pending
	// Online and Opt are the realized costs (see RealizedCost).
	Online float64
	Opt    float64
	// JoinMS is the decide-to-observe join latency in milliseconds.
	JoinMS int64
	// CR and Band are the accumulator's empirical CR and variance-band
	// half-width after this settle.
	CR   float64
	Band float64
	// Breach reports that this settle completed a Patience-long run of
	// violating windows and tripped the breach detector.
	Breach bool
}

// Counters are the ledger's monotone event counts.
type Counters struct {
	// Issued counts decisions entered into the pending table; Settled
	// those joined to an outcome.
	Issued  uint64 `json:"issued"`
	Settled uint64 `json:"settled"`
	// Orphaned counts settles quoting an unknown decision id; Expired
	// counts pending entries dropped by TTL or capacity eviction.
	Orphaned uint64 `json:"orphaned"`
	Expired  uint64 `json:"expired"`
	// Breaches counts breach-detector trips across all accumulators.
	Breaches uint64 `json:"breaches"`
}

// RealizedCost computes the paper's realized cost pair for one settled
// stop: the online policy idles until its threshold and pays the
// restart B if the stop outlasts it; the offline optimum pays
// min(y, B). Pure — the audit verifier replays settle records through
// it bit-for-bit.
func RealizedCost(b, threshold, stop float64) (online, opt float64) {
	online = math.Min(stop, threshold)
	if stop > threshold {
		online += b
	}
	opt = math.Min(stop, b)
	return online, opt
}

// accum is one {area, engine} empirical-CR accumulator: forgetting-
// weighted first and second moments of the (online, opt) pairs plus
// the breach-detector state.
type accum struct {
	w, w2                float64 // weight sum and squared-weight sum
	sumOn, sumOp         float64
	sumOn2, sumOp2, sumX float64
	count                uint64
	bound                float64
	windowCount          int
	streak               int
	breaches             uint64
}

// add folds one settled pair in under forgetting factor g.
func (a *accum) add(g, online, opt float64) {
	a.w = g*a.w + 1
	a.w2 = g*g*a.w2 + 1
	a.sumOn = g*a.sumOn + online
	a.sumOp = g*a.sumOp + opt
	a.sumOn2 = g*a.sumOn2 + online*online
	a.sumOp2 = g*a.sumOp2 + opt*opt
	a.sumX = g*a.sumX + online*opt
	a.count++
}

// ratio returns the empirical CR (ratio of weighted means) and the
// delta-method variance-band half-width z·sqrt(Var[CR]).
func (a *accum) ratio(z float64) (cr, band float64) {
	if a.w <= 0 || a.sumOp <= 0 {
		return 0, 0
	}
	meanOn := a.sumOn / a.w
	meanOp := a.sumOp / a.w
	if meanOp <= 0 || meanOn <= 0 {
		return 0, 0
	}
	cr = meanOn / meanOp
	neff := a.w * a.w / a.w2
	if neff <= 1 {
		return cr, math.Inf(1)
	}
	varOn := math.Max(0, a.sumOn2/a.w-meanOn*meanOn)
	varOp := math.Max(0, a.sumOp2/a.w-meanOp*meanOp)
	cov := a.sumX/a.w - meanOn*meanOp
	rel := varOn/(meanOn*meanOn) + varOp/(meanOp*meanOp) - 2*cov/(meanOn*meanOp)
	v := cr * cr * math.Max(0, rel) / neff
	return cr, z * math.Sqrt(v)
}

// shard is one pending-table partition: an id-keyed map plus an
// insertion-ordered id list (the FIFO eviction and expiry order).
// Settled ids move into a bounded ring so a duplicate settle is
// distinguishable from an unknown one.
type shard struct {
	mu      sync.Mutex
	entries map[string]Pending
	order   []string // issue order; may contain ids no longer in entries
	head    int
	settled map[string]bool
	ring    []string // settled-id ring, oldest first
}

// Ledger is the decision-outcome join plane.
type Ledger struct {
	cfg    Config
	shards []*shard
	mask   uint64

	accMu  sync.Mutex
	accums map[Key]*accum

	issued, settled, orphaned, expired, breaches atomic.Uint64
}

// New builds a ledger.
func New(cfg Config) *Ledger {
	cfg = cfg.withDefaults()
	l := &Ledger{
		cfg:    cfg,
		shards: make([]*shard, cfg.Shards),
		mask:   uint64(cfg.Shards - 1),
		accums: make(map[Key]*accum),
	}
	for i := range l.shards {
		l.shards[i] = &shard{
			entries: make(map[string]Pending),
			settled: make(map[string]bool),
		}
	}
	return l
}

// idHash is FNV-1a over the decision id (the same family the strategy
// cache shards by).
func idHash(id string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return h
}

func (l *Ledger) shardFor(id string) *shard { return l.shards[idHash(id)&l.mask] }

// Issue enters one decision into the pending table. It returns the
// number of entries the insert evicted (TTL-expired heads plus any
// capacity eviction), already counted into Counters.Expired.
func (l *Ledger) Issue(p Pending) (int, error) {
	if err := p.validate(); err != nil {
		return 0, err
	}
	sh := l.shardFor(p.ID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, dup := sh.entries[p.ID]; dup {
		return 0, fmt.Errorf("ledger: duplicate issue of decision %s", p.ID)
	}
	sh.entries[p.ID] = p
	sh.order = append(sh.order, p.ID)
	l.issued.Add(1)
	evicted := sh.expireLocked(p.IssuedUnixMS-l.cfg.TTLMS, l.cfg.Capacity)
	if evicted > 0 {
		l.expired.Add(uint64(evicted))
	}
	return evicted, nil
}

// expireLocked drops pending entries issued at or before cutoffMS and,
// when capacity > 0, evicts oldest entries until the shard fits. It
// also compacts the consumed head of the order list.
func (sh *shard) expireLocked(cutoffMS int64, capacity int) int {
	evicted := 0
	for sh.head < len(sh.order) {
		id := sh.order[sh.head]
		p, live := sh.entries[id]
		if !live {
			sh.head++ // settled or already evicted; skip the stale slot
			continue
		}
		if p.IssuedUnixMS <= cutoffMS || (capacity > 0 && len(sh.entries) > capacity) {
			delete(sh.entries, id)
			sh.head++
			evicted++
			continue
		}
		break
	}
	if sh.head > 0 && sh.head*2 >= len(sh.order) {
		sh.order = append(sh.order[:0], sh.order[sh.head:]...)
		sh.head = 0
	}
	return evicted
}

// rememberSettledLocked records a settled id in the bounded
// duplicate-detection ring.
func (sh *shard) rememberSettledLocked(id string, capacity int) {
	sh.settled[id] = true
	sh.ring = append(sh.ring, id)
	for capacity > 0 && len(sh.ring) > capacity {
		delete(sh.settled, sh.ring[0])
		sh.ring = sh.ring[1:]
	}
}

// Settle joins one outcome to its pending decision: the entry is
// removed, the realized costs computed, and the {area, engine}
// accumulator advanced. An id that was never issued (or was expired or
// evicted) is ErrUnknownDecision; an id that already settled is
// ErrDuplicateSettle. Both failure modes leave all state untouched
// beyond the orphan counter.
func (l *Ledger) Settle(id string, stopSec float64, nowMS int64) (Outcome, error) {
	if id == "" {
		l.orphaned.Add(1)
		return Outcome{}, fmt.Errorf("%w: empty decision id", ErrUnknownDecision)
	}
	if stopSec < 0 || math.IsNaN(stopSec) || math.IsInf(stopSec, 0) {
		return Outcome{}, fmt.Errorf("ledger: stop %v is not finite non-negative", stopSec)
	}
	sh := l.shardFor(id)
	sh.mu.Lock()
	p, ok := sh.entries[id]
	if !ok {
		dup := sh.settled[id]
		sh.mu.Unlock()
		if dup {
			return Outcome{}, fmt.Errorf("%w: decision %s already settled", ErrDuplicateSettle, id)
		}
		l.orphaned.Add(1)
		return Outcome{}, fmt.Errorf("%w: decision %s is not pending", ErrUnknownDecision, id)
	}
	if nowMS-p.IssuedUnixMS > l.cfg.TTLMS {
		// Settle-after-expiry: the entry outlived its join window; drop
		// it now and report the settle as unknown.
		delete(sh.entries, id)
		sh.mu.Unlock()
		l.expired.Add(1)
		l.orphaned.Add(1)
		return Outcome{}, fmt.Errorf("%w: decision %s expired before settling", ErrUnknownDecision, id)
	}
	delete(sh.entries, id)
	sh.rememberSettledLocked(id, l.cfg.Capacity)
	sh.mu.Unlock()

	online, opt := RealizedCost(p.B, p.ThresholdSec, stopSec)
	out := Outcome{Pending: p, Online: online, Opt: opt, JoinMS: nowMS - p.IssuedUnixMS}

	l.accMu.Lock()
	key := Key{Area: p.Area, Engine: p.Engine}
	a := l.accums[key]
	if a == nil {
		a = &accum{}
		l.accums[key] = a
	}
	a.add(l.cfg.Forgetting, online, opt)
	if p.Bound > 0 {
		a.bound = p.Bound // latest published bound wins
	}
	out.CR, out.Band = a.ratio(l.cfg.Band)
	a.windowCount++
	if a.windowCount >= l.cfg.Window {
		a.windowCount = 0
		// A window violates when the bound sits below the entire
		// variance band — the empirical CR is confidently above the
		// guarantee, not merely straddling it.
		if a.bound > 0 && !math.IsInf(out.Band, 1) && out.CR-out.Band > a.bound {
			a.streak++
			if a.streak >= l.cfg.Patience {
				a.streak = 0
				a.breaches++
				l.breaches.Add(1)
				out.Breach = true
			}
		} else {
			a.streak = 0
		}
	}
	l.accMu.Unlock()
	l.settled.Add(1)
	return out, nil
}

// ExpireBefore sweeps every shard, dropping pending entries whose join
// window ended before nowMS. It returns the number dropped.
func (l *Ledger) ExpireBefore(nowMS int64) int {
	total := 0
	for _, sh := range l.shards {
		sh.mu.Lock()
		total += sh.expireLocked(nowMS-l.cfg.TTLMS, 0)
		sh.mu.Unlock()
	}
	if total > 0 {
		l.expired.Add(uint64(total))
	}
	return total
}

// PendingCount returns the live pending-entry count.
func (l *Ledger) PendingCount() int {
	n := 0
	for _, sh := range l.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Counters returns the monotone event counts.
func (l *Ledger) Counters() Counters {
	return Counters{
		Issued:   l.issued.Load(),
		Settled:  l.settled.Load(),
		Orphaned: l.orphaned.Load(),
		Expired:  l.expired.Load(),
		Breaches: l.breaches.Load(),
	}
}

// Row is one {area, engine} line of the CR table.
type Row struct {
	Area   string `json:"area"`
	Engine string `json:"engine"`
	// Settled counts outcomes folded into this accumulator.
	Settled uint64 `json:"settled"`
	// CR is the empirical competitive ratio (ratio of forgetting-
	// weighted means); Band the variance-band half-width around it.
	// Band is -1 while the band is not yet estimable (fewer than two
	// effective samples; the in-memory half-width is +Inf, which JSON
	// cannot carry).
	CR   float64 `json:"cr"`
	Band float64 `json:"band"`
	// Bound is the engine's published worst-case CR (0 = none);
	// Breaches counts detector trips on this key.
	Bound    float64 `json:"bound,omitempty"`
	Breaches uint64  `json:"breaches,omitempty"`
	// MeanOnline and MeanOpt are the weighted mean realized costs.
	MeanOnline float64 `json:"mean_online"`
	MeanOpt    float64 `json:"mean_opt"`
}

// Rows renders the CR table, sorted by (area, engine).
func (l *Ledger) Rows() []Row {
	l.accMu.Lock()
	rows := make([]Row, 0, len(l.accums))
	for key, a := range l.accums {
		cr, band := a.ratio(l.cfg.Band)
		if math.IsInf(band, 1) {
			band = -1
		}
		r := Row{
			Area: key.Area, Engine: key.Engine,
			Settled: a.count, CR: cr, Band: band,
			Bound: a.bound, Breaches: a.breaches,
		}
		if a.w > 0 {
			r.MeanOnline = a.sumOn / a.w
			r.MeanOpt = a.sumOp / a.w
		}
		rows = append(rows, r)
	}
	l.accMu.Unlock()
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Area != rows[j].Area {
			return rows[i].Area < rows[j].Area
		}
		return rows[i].Engine < rows[j].Engine
	})
	return rows
}

// Worst returns the row with the highest empirical CR (false when no
// outcome has settled yet).
func (l *Ledger) Worst() (Row, bool) {
	var worst Row
	found := false
	for _, r := range l.Rows() {
		if !found || r.CR > worst.CR {
			worst, found = r, true
		}
	}
	return worst, found
}

// AccumState is the serialized form of one accumulator.
type AccumState struct {
	Area    string  `json:"area"`
	Engine  string  `json:"engine"`
	W       float64 `json:"w"`
	W2      float64 `json:"w2"`
	SumOn   float64 `json:"sum_online"`
	SumOp   float64 `json:"sum_opt"`
	SumOn2  float64 `json:"sum_online2"`
	SumOp2  float64 `json:"sum_opt2"`
	SumX    float64 `json:"sum_cross"`
	Count   uint64  `json:"count"`
	Bound   float64 `json:"bound,omitempty"`
	Windows int     `json:"window_count,omitempty"`
	Streak  int     `json:"streak,omitempty"`
	// Breaches counts detector trips on this key.
	Breaches uint64 `json:"breaches,omitempty"`
}

func (a AccumState) validate() error {
	if a.Area == "" || a.Engine == "" {
		return fmt.Errorf("ledger: accumulator with empty area or engine")
	}
	for _, v := range []float64{a.W, a.W2, a.SumOn, a.SumOp, a.SumOn2, a.SumOp2, a.Bound} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("ledger: accumulator %s/%s has non-finite or negative moment", a.Area, a.Engine)
		}
	}
	if math.IsNaN(a.SumX) || math.IsInf(a.SumX, 0) {
		return fmt.Errorf("ledger: accumulator %s/%s has non-finite cross moment", a.Area, a.Engine)
	}
	if a.Windows < 0 || a.Streak < 0 {
		return fmt.Errorf("ledger: accumulator %s/%s has negative detector state", a.Area, a.Engine)
	}
	return nil
}

// State is the ledger's complete serializable state: pending entries
// in shard-scan issue order, the settled-id ring in the same order,
// the accumulators sorted by key, and the counters. Capturing,
// restoring, and capturing again yields byte-identical JSON.
type State struct {
	Pending []Pending    `json:"pending,omitempty"`
	Settled []string     `json:"settled_ids,omitempty"`
	Accums  []AccumState `json:"accums,omitempty"`
	Counters
}

// Empty reports a state with nothing worth persisting (all-zero
// counters included), so snapshots of a ledger-idle daemon can omit
// the ledger section entirely.
func (s State) Empty() bool {
	return len(s.Pending) == 0 && len(s.Settled) == 0 && len(s.Accums) == 0 && s.Counters == Counters{}
}

// Validate checks a state is restorable.
func (s State) Validate() error {
	seen := make(map[string]bool, len(s.Pending))
	for _, p := range s.Pending {
		if err := p.validate(); err != nil {
			return err
		}
		if seen[p.ID] {
			return fmt.Errorf("ledger: duplicate pending id %s", p.ID)
		}
		seen[p.ID] = true
	}
	for _, id := range s.Settled {
		if id == "" {
			return fmt.Errorf("ledger: empty settled id")
		}
	}
	keys := make(map[Key]bool, len(s.Accums))
	for _, a := range s.Accums {
		if err := a.validate(); err != nil {
			return err
		}
		k := Key{Area: a.Area, Engine: a.Engine}
		if keys[k] {
			return fmt.Errorf("ledger: duplicate accumulator %s/%s", a.Area, a.Engine)
		}
		keys[k] = true
	}
	return nil
}

// State captures the full ledger state.
func (l *Ledger) State() State {
	var st State
	for _, sh := range l.shards {
		sh.mu.Lock()
		for i := sh.head; i < len(sh.order); i++ {
			if p, live := sh.entries[sh.order[i]]; live {
				st.Pending = append(st.Pending, p)
			}
		}
		st.Settled = append(st.Settled, sh.ring...)
		sh.mu.Unlock()
	}
	l.accMu.Lock()
	keys := make([]Key, 0, len(l.accums))
	for k := range l.accums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Area != keys[j].Area {
			return keys[i].Area < keys[j].Area
		}
		return keys[i].Engine < keys[j].Engine
	})
	for _, k := range keys {
		a := l.accums[k]
		st.Accums = append(st.Accums, AccumState{
			Area: k.Area, Engine: k.Engine,
			W: a.w, W2: a.w2,
			SumOn: a.sumOn, SumOp: a.sumOp,
			SumOn2: a.sumOn2, SumOp2: a.sumOp2, SumX: a.sumX,
			Count: a.count, Bound: a.bound,
			Windows: a.windowCount, Streak: a.streak, Breaches: a.breaches,
		})
	}
	l.accMu.Unlock()
	st.Counters = l.Counters()
	return st
}

// Restore replaces the ledger's state wholesale with a validated
// capture (all-or-nothing: a validation failure leaves the current
// state untouched).
func (l *Ledger) Restore(st State) error {
	if err := st.Validate(); err != nil {
		return err
	}
	fresh := New(l.cfg)
	for _, p := range st.Pending {
		sh := fresh.shardFor(p.ID)
		sh.entries[p.ID] = p
		sh.order = append(sh.order, p.ID)
	}
	for _, id := range st.Settled {
		fresh.shardFor(id).rememberSettledLocked(id, l.cfg.Capacity)
	}
	for _, a := range st.Accums {
		fresh.accums[Key{Area: a.Area, Engine: a.Engine}] = &accum{
			w: a.W, w2: a.W2,
			sumOn: a.SumOn, sumOp: a.SumOp,
			sumOn2: a.SumOn2, sumOp2: a.SumOp2, sumX: a.SumX,
			count: a.Count, bound: a.Bound,
			windowCount: a.Windows, streak: a.Streak, breaches: a.Breaches,
		}
	}
	// Swap the rebuilt internals in under the locks so concurrent
	// readers never observe a half-restored ledger.
	l.accMu.Lock()
	l.accums = fresh.accums
	l.accMu.Unlock()
	for i, sh := range l.shards {
		nsh := fresh.shards[i]
		sh.mu.Lock()
		sh.entries, sh.order, sh.head = nsh.entries, nsh.order, nsh.head
		sh.settled, sh.ring = nsh.settled, nsh.ring
		sh.mu.Unlock()
	}
	l.issued.Store(st.Counters.Issued)
	l.settled.Store(st.Counters.Settled)
	l.orphaned.Store(st.Counters.Orphaned)
	l.expired.Store(st.Counters.Expired)
	l.breaches.Store(st.Counters.Breaches)
	return nil
}
