package ledger

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"testing"
)

func pend(id string, ms int64) Pending {
	return Pending{
		ID: id, Area: "chicago", Engine: "constrained@v1",
		B: 28, ThresholdSec: 11, Bound: 1.5, IssuedUnixMS: ms,
	}
}

func TestRealizedCost(t *testing.T) {
	cases := []struct {
		b, th, stop, online, opt float64
	}{
		{28, 10, 5, 5, 5},    // short stop: idle through, OPT idles too
		{28, 10, 10, 10, 10}, // exactly at threshold: no restart (strict >)
		{28, 10, 40, 38, 28}, // long stop: idle 10 + restart 28; OPT restarts
		{28, 0, 7, 28, 7},    // immediate-off: pure restart cost
		{28, 50, 40, 40, 28}, // threshold past B: online idles the whole stop
	}
	for i, c := range cases {
		on, op := RealizedCost(c.b, c.th, c.stop)
		if on != c.online || op != c.opt {
			t.Errorf("case %d: RealizedCost(%v,%v,%v) = (%v,%v), want (%v,%v)",
				i, c.b, c.th, c.stop, on, op, c.online, c.opt)
		}
	}
}

func TestIssueSettleJoin(t *testing.T) {
	l := New(Config{})
	if _, err := l.Issue(pend("d-1", 1000)); err != nil {
		t.Fatal(err)
	}
	out, err := l.Settle("d-1", 40, 1350)
	if err != nil {
		t.Fatal(err)
	}
	if out.Online != 39 || out.Opt != 28 {
		t.Errorf("realized (%v, %v), want (39, 28)", out.Online, out.Opt)
	}
	if out.JoinMS != 350 {
		t.Errorf("join latency %d, want 350", out.JoinMS)
	}
	if out.Pending.Area != "chicago" || out.Pending.Engine != "constrained@v1" {
		t.Errorf("settled wrong pending: %+v", out.Pending)
	}
	c := l.Counters()
	if c.Issued != 1 || c.Settled != 1 || c.Orphaned != 0 || c.Expired != 0 {
		t.Errorf("counters %+v", c)
	}
	if n := l.PendingCount(); n != 0 {
		t.Errorf("pending %d after settle", n)
	}
}

func TestSettleErrorClasses(t *testing.T) {
	l := New(Config{})
	if _, err := l.Settle("never-issued", 10, 0); !errors.Is(err, ErrUnknownDecision) {
		t.Errorf("unknown id: %v", err)
	}
	if _, err := l.Settle("", 10, 0); !errors.Is(err, ErrUnknownDecision) {
		t.Errorf("empty id: %v", err)
	}
	if _, err := l.Issue(pend("d-1", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Settle("d-1", 10, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Settle("d-1", 10, 200); !errors.Is(err, ErrDuplicateSettle) {
		t.Errorf("duplicate settle: %v", err)
	}
	if _, err := l.Settle("d-1", 10, 300); !errors.Is(err, ErrDuplicateSettle) {
		t.Errorf("triple settle: %v", err)
	}
	if c := l.Counters(); c.Orphaned != 2 {
		t.Errorf("orphans %d, want 2 (never-issued + empty)", c.Orphaned)
	}
	if _, err := l.Settle("d-x", math.NaN(), 0); err == nil {
		t.Error("NaN stop settled")
	}
	if _, err := l.Settle("d-x", -1, 0); err == nil {
		t.Error("negative stop settled")
	}
}

func TestSettleAfterExpiry(t *testing.T) {
	l := New(Config{TTLMS: 1000})
	if _, err := l.Issue(pend("d-1", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Settle("d-1", 10, 5000); !errors.Is(err, ErrUnknownDecision) {
		t.Errorf("settle after expiry: %v", err)
	}
	c := l.Counters()
	if c.Expired != 1 || c.Orphaned != 1 || c.Settled != 0 {
		t.Errorf("counters %+v", c)
	}
	if n := l.PendingCount(); n != 0 {
		t.Errorf("expired entry still pending (%d)", n)
	}
}

func TestIssueExpiresStaleHeads(t *testing.T) {
	l := New(Config{Shards: 1, TTLMS: 1000})
	for i := 0; i < 5; i++ {
		if _, err := l.Issue(pend(fmt.Sprintf("old-%d", i), 0)); err != nil {
			t.Fatal(err)
		}
	}
	// A fresh issue far past the TTL sweeps the whole stale head run.
	if _, err := l.Issue(pend("new", 10_000)); err != nil {
		t.Fatal(err)
	}
	if n := l.PendingCount(); n != 1 {
		t.Errorf("pending %d, want 1 (stale heads swept)", n)
	}
	if c := l.Counters(); c.Expired != 5 {
		t.Errorf("expired %d, want 5", c.Expired)
	}
}

func TestCapacityEviction(t *testing.T) {
	l := New(Config{Shards: 1, Capacity: 4, TTLMS: 1 << 40})
	for i := 0; i < 10; i++ {
		if _, err := l.Issue(pend(fmt.Sprintf("d-%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.PendingCount(); n != 4 {
		t.Errorf("pending %d, want capacity 4", n)
	}
	if c := l.Counters(); c.Expired != 6 {
		t.Errorf("expired %d, want 6 evictions", c.Expired)
	}
	// The oldest were evicted, the newest survive.
	if _, err := l.Settle("d-0", 5, 100); !errors.Is(err, ErrUnknownDecision) {
		t.Errorf("evicted entry settled: %v", err)
	}
	if _, err := l.Settle("d-9", 5, 100); err != nil {
		t.Errorf("newest entry lost: %v", err)
	}
}

func TestDuplicateIssueRejected(t *testing.T) {
	l := New(Config{})
	if _, err := l.Issue(pend("d-1", 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Issue(pend("d-1", 1)); err == nil {
		t.Error("duplicate issue accepted")
	}
}

func TestIssueValidates(t *testing.T) {
	bad := []Pending{
		{},
		{ID: "x", Area: "a", Engine: "e", B: 0, ThresholdSec: 1},
		{ID: "x", Area: "a", Engine: "e", B: 28, ThresholdSec: -1},
		{ID: "x", Area: "", Engine: "e", B: 28, ThresholdSec: 1},
		{ID: "x", Area: "a", Engine: "e", B: 28, ThresholdSec: math.NaN()},
		{ID: "x", Area: "a", Engine: "e", B: 28, ThresholdSec: 1, Bound: math.Inf(1)},
	}
	l := New(Config{})
	for i, p := range bad {
		if _, err := l.Issue(p); err == nil {
			t.Errorf("case %d: invalid pending issued: %+v", i, p)
		}
	}
}

// TestEmpiricalCRConvergesInModel drives an in-model two-outcome trace
// through a DET-style threshold and checks the empirical CR lands at
// the analytic value with a shrinking band, below the published bound.
func TestEmpiricalCRConvergesInModel(t *testing.T) {
	l := New(Config{Window: 10})
	const b, th = 28.0, 28.0
	// Mostly-short in-model traffic: 90% stops of 5s, 10% of 60s.
	// online: short 5, long 28+28=56. opt: short 5, long 28.
	// CR = (0.9*5 + 0.1*56) / (0.9*5 + 0.1*28) = 10.1/7.3 ≈ 1.3836.
	var lastCR, lastBand float64
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("d-%d", i)
		p := pend(id, int64(i))
		p.ThresholdSec = th
		p.B = b
		p.Bound = math.E / (math.E - 1) // 1.582
		if _, err := l.Issue(p); err != nil {
			t.Fatal(err)
		}
		stop := 5.0
		if i%10 == 0 {
			stop = 60
		}
		out, err := l.Settle(id, stop, int64(i)+1)
		if err != nil {
			t.Fatal(err)
		}
		lastCR, lastBand = out.CR, out.Band
		if out.Breach {
			t.Fatalf("in-model trace tripped a breach at settle %d (cr %.4f band %.4f)", i, out.CR, out.Band)
		}
	}
	want := 10.1 / 7.3
	if math.Abs(lastCR-want) > 1e-9 {
		t.Errorf("empirical CR %.6f, want %.6f", lastCR, want)
	}
	if lastBand <= 0 || lastBand > 0.2 {
		t.Errorf("band %.4f after 1000 settles, want small positive", lastBand)
	}
	if lastCR+lastBand >= math.E/(math.E-1) {
		t.Errorf("CR %.4f + band %.4f not below bound %.4f", lastCR, lastBand, math.E/(math.E-1))
	}
	if c := l.Counters(); c.Breaches != 0 {
		t.Errorf("breaches %d on in-model trace", c.Breaches)
	}
}

// TestBreachDetectorTripsOnAdversarialTrace: every stop lands just past
// the threshold — the classic worst case — so realized CR ≈ 2 while the
// published bound is e/(e-1); the detector must trip after
// Window×Patience settles and keep counting.
func TestBreachDetectorTripsOnAdversarialTrace(t *testing.T) {
	l := New(Config{Window: 10, Patience: 3})
	breaches := 0
	firstTrip := -1
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("d-%d", i)
		p := pend(id, int64(i))
		p.ThresholdSec = 11
		p.Bound = math.E / (math.E - 1)
		if _, err := l.Issue(p); err != nil {
			t.Fatal(err)
		}
		out, err := l.Settle(id, 11.1, int64(i)+1)
		if err != nil {
			t.Fatal(err)
		}
		if out.Breach {
			breaches++
			if firstTrip < 0 {
				firstTrip = i
			}
		}
	}
	if breaches == 0 {
		t.Fatal("adversarial trace never tripped the breach detector")
	}
	if firstTrip < 20 {
		t.Errorf("breach tripped at settle %d, before Window×Patience settles", firstTrip)
	}
	if c := l.Counters(); c.Breaches != uint64(breaches) {
		t.Errorf("counter %d, outcomes reported %d", c.Breaches, breaches)
	}
	rows := l.Rows()
	if len(rows) != 1 || rows[0].Breaches != uint64(breaches) {
		t.Errorf("rows %+v", rows)
	}
	if rows[0].CR < 1.9 {
		t.Errorf("adversarial empirical CR %.4f, want ≈ (11.1+28)/20... above 1.9", rows[0].CR)
	}
}

func TestRowsSortedAndWorst(t *testing.T) {
	l := New(Config{})
	for i, key := range []struct{ area, engine string }{
		{"boston", "multislope3@v1"},
		{"atlanta", "constrained@v1"},
		{"boston", "constrained@v1"},
	} {
		id := fmt.Sprintf("d-%d", i)
		p := pend(id, 0)
		p.Area, p.Engine = key.area, key.engine
		if _, err := l.Issue(p); err != nil {
			t.Fatal(err)
		}
		// Give boston/multislope3 the worst realized CR (long stop).
		stop := 5.0
		if i == 0 {
			stop = 60
		}
		if _, err := l.Settle(id, stop, 1); err != nil {
			t.Fatal(err)
		}
	}
	rows := l.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows %d", len(rows))
	}
	order := []string{"atlanta/constrained@v1", "boston/constrained@v1", "boston/multislope3@v1"}
	for i, want := range order {
		if got := rows[i].Area + "/" + rows[i].Engine; got != want {
			t.Errorf("row %d = %s, want %s", i, got, want)
		}
	}
	worst, ok := l.Worst()
	if !ok || worst.Engine != "multislope3@v1" {
		t.Errorf("worst = %+v, %v", worst, ok)
	}
}

func TestForgettingDiscountsOldOutcomes(t *testing.T) {
	l := New(Config{Forgetting: 0.5})
	// First a long (bad) outcome, then a run of short (good) ones: with
	// forgetting 0.5 the early outcome's weight decays geometrically and
	// the CR approaches 1.
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("d-%d", i)
		if _, err := l.Issue(pend(id, 0)); err != nil {
			t.Fatal(err)
		}
		stop := 5.0
		if i == 0 {
			stop = 60
		}
		if _, err := l.Settle(id, stop, 1); err != nil {
			t.Fatal(err)
		}
	}
	rows := l.Rows()
	if cr := rows[0].CR; math.Abs(cr-1) > 1e-4 {
		t.Errorf("forgotten CR %.6f, want ≈ 1", cr)
	}
}

func TestStateRoundtripByteIdentical(t *testing.T) {
	l := New(Config{Window: 5})
	for i := 0; i < 30; i++ {
		id := fmt.Sprintf("d-%d", i)
		p := pend(id, int64(i*10))
		if i%3 == 0 {
			p.Area = "atlanta"
		}
		if _, err := l.Issue(p); err != nil {
			t.Fatal(err)
		}
		if i%2 == 0 {
			if _, err := l.Settle(id, float64(5+i), int64(i*10+7)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// One orphan for counter coverage.
	if _, err := l.Settle("ghost", 3, 0); !errors.Is(err, ErrUnknownDecision) {
		t.Fatal(err)
	}

	st := l.State()
	if st.Empty() {
		t.Fatal("populated ledger reports empty state")
	}
	if err := st.Validate(); err != nil {
		t.Fatal(err)
	}
	first, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}

	l2 := New(Config{Window: 5})
	if err := l2.Restore(st); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(l2.State())
	if err != nil {
		t.Fatal(err)
	}
	if string(first) != string(second) {
		t.Errorf("state did not roundtrip byte-identically:\n%s\n%s", first, second)
	}
	if l2.PendingCount() != l.PendingCount() {
		t.Errorf("pending %d vs %d", l2.PendingCount(), l.PendingCount())
	}
	if l2.Counters() != l.Counters() {
		t.Errorf("counters %+v vs %+v", l2.Counters(), l.Counters())
	}

	// The restored ledger behaves identically: a pending entry settles,
	// a settled id still reads as duplicate.
	if _, err := l2.Settle("d-1", 9, 500); err != nil {
		t.Errorf("restored pending entry not settleable: %v", err)
	}
	if _, err := l2.Settle("d-0", 9, 500); !errors.Is(err, ErrDuplicateSettle) {
		t.Errorf("restored settled id not duplicate-detected: %v", err)
	}
}

func TestRestoreRejectsInvalidState(t *testing.T) {
	l := New(Config{})
	if _, err := l.Issue(pend("keep", 0)); err != nil {
		t.Fatal(err)
	}
	bad := []State{
		{Pending: []Pending{{ID: ""}}},
		{Pending: []Pending{pend("a", 0), pend("a", 1)}},
		{Settled: []string{""}},
		{Accums: []AccumState{{Area: "", Engine: "e"}}},
		{Accums: []AccumState{{Area: "a", Engine: "e", W: math.NaN()}}},
		{Accums: []AccumState{
			{Area: "a", Engine: "e", W: 1, W2: 1},
			{Area: "a", Engine: "e", W: 1, W2: 1},
		}},
	}
	for i, st := range bad {
		if err := l.Restore(st); err == nil {
			t.Errorf("case %d: invalid state restored", i)
		}
	}
	// Failed restores left the existing state alone.
	if _, err := l.Settle("keep", 5, 1); err != nil {
		t.Errorf("existing state damaged by rejected restore: %v", err)
	}
}

func TestEmptyState(t *testing.T) {
	l := New(Config{})
	st := l.State()
	if !st.Empty() {
		t.Errorf("fresh ledger state not empty: %+v", st)
	}
	if err := l.Restore(State{}); err != nil {
		t.Errorf("empty restore: %v", err)
	}
}

func TestExpireBefore(t *testing.T) {
	l := New(Config{TTLMS: 100})
	for i := 0; i < 8; i++ {
		if _, err := l.Issue(pend(fmt.Sprintf("d-%d", i), int64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if n := l.ExpireBefore(105); n != 6 { // issued 0..5 are ≤ cutoff 5
		t.Errorf("expired %d, want 6", n)
	}
	if n := l.PendingCount(); n != 2 {
		t.Errorf("pending %d, want 2", n)
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Shards != 8 || c.Capacity != 4096 || c.TTLMS != 600_000 ||
		c.Forgetting != 1 || c.Window != 20 || c.Patience != 3 || c.Band != 2 {
		t.Errorf("defaults %+v", c)
	}
	if got := (Config{Shards: 5}).withDefaults().Shards; got != 8 {
		t.Errorf("shards rounded to %d, want 8", got)
	}
}
