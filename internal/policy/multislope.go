package policy

import (
	"fmt"
	"math/rand/v2"
	"strings"

	"idlereduce/internal/multislope"
	"idlereduce/internal/skirental"
)

// multislopeEngine serves the three-state automotive powertrain
// (engine idling / fuel-cut accessory idle / engine off) as a
// multislope ski-rental bundle: one constrained vertex selection per
// adjacent state pair (Lotker/Patt-Shamir/Rawitz decomposition, see
// internal/multislope). The instance is multislope.AutomotiveThreeState
// at the area's break-even interval.
//
// Segment statistics are projected from the area pair (B, mu_B-, q_B+)
// via the canonical two-point representation: short mass 1-q at the
// mean short stop s = mu/(1-q), long mass q beyond every break-even.
// At a segment break-even beta this yields (mu, q) when s <= beta and
// (0, 1) when the mean short stop itself outlives the segment — the
// only projection that is always feasible and uses exactly the
// information the serving plane carries.
type multislopeEngine struct{}

func init() { Register(multislopeEngine{}) }

// MultislopeEngine is the registry name of the three-state multislope
// engine.
const MultislopeEngine = "multislope3"

// Name implements Engine.
func (multislopeEngine) Name() string { return MultislopeEngine }

// Version implements Engine.
func (multislopeEngine) Version() int { return 1 }

// Doc implements Engine.
func (multislopeEngine) Doc() string {
	return "three-state powertrain multislope ski rental: per-segment constrained vertex bundle"
}

// threeStateNames label the rungs of the automotive instance's state
// ladder on the wire.
var threeStateNames = []string{"idle", "fuel_cut", "engine_off"}

// Prepare implements Engine.
func (multislopeEngine) Prepare(s Stats) (Strategy, error) {
	if err := (skirental.Stats{MuBMinus: s.Mu, QBPlus: s.Q}).Validate(s.B); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	prob, err := multislope.AutomotiveThreeState(s.B)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	betas := prob.Breakpoints()
	segStats := make([]skirental.Stats, len(betas))
	for i, beta := range betas {
		segStats[i] = projectStats(s, beta)
	}
	pl, err := multislope.NewConstrainedFromStats(prob, segStats)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	st := &multislopeStrategy{prob: prob, bundle: pl, stats: s, segStats: segStats}
	if err := st.precompute(); err != nil {
		return nil, err
	}
	return st, nil
}

// projectStats maps the area pair to segment break-even beta under the
// two-point representation (see the engine comment).
func projectStats(s Stats, beta float64) skirental.Stats {
	if s.Q >= 1 {
		return skirental.Stats{MuBMinus: 0, QBPlus: 1}
	}
	if short := s.Mu / (1 - s.Q); short > beta {
		return skirental.Stats{MuBMinus: 0, QBPlus: 1}
	}
	return skirental.Stats{MuBMinus: s.Mu, QBPlus: s.Q}
}

// multislopeStrategy is the prepared three-state bundle plus its
// precomputed bounds and explain record.
type multislopeStrategy struct {
	prob     *multislope.Problem
	bundle   *multislope.Policy
	stats    Stats
	segStats []skirental.Stats

	// segments are the per-segment constrained selections; names label
	// the state ladder the schedule walks down.
	segments []*skirental.Constrained
	names    []string

	choice        string
	worstCost     float64
	worstCR       float64
	explain       string
	deterministic bool
}

// precompute derives the bundle's selection labels, worst-case bounds
// (the sum of the segment bounds, an upper bound per the decomposition)
// and the explain record.
func (m *multislopeStrategy) precompute() error {
	dr, _ := m.prob.Segments()
	m.names = threeStateNames
	if n := len(m.prob.Slopes()); n != len(m.names) {
		// The envelope dropped a dominated state; fall back to indexed
		// names so the schedule stays well-formed.
		m.names = make([]string, n)
		for i := range m.names {
			m.names[i] = fmt.Sprintf("state_%d", i)
		}
	}
	betas := m.prob.Breakpoints()
	var choices []string
	var exp strings.Builder
	fmt.Fprintf(&exp, "%s@v1: B=%g two-point projection", MultislopeEngine, m.stats.B)
	m.deterministic = true
	var cost, offline float64
	for i, seg := range m.bundle.SegmentPolicies() {
		c, ok := seg.(*skirental.Constrained)
		if !ok {
			return fmt.Errorf("%w: segment %d is %T, want constrained", ErrInfeasible, i, seg)
		}
		m.segments = append(m.segments, c)
		choices = append(choices, c.Choice().String())
		if c.Choice() == skirental.ChoiceNRand {
			m.deterministic = false
		}
		cost += dr[i] * c.WorstCaseCost()
		offline += dr[i] * m.segStats[i].OfflineCost(betas[i])
		fmt.Fprintf(&exp, "; seg%d beta=%.4g (mu=%.4g, q=%.4g) -> %s",
			i, betas[i], m.segStats[i].MuBMinus, m.segStats[i].QBPlus, c.Choice())
	}
	m.choice = "MS:" + strings.Join(choices, "+")
	m.worstCost = cost
	m.worstCR = 1
	if offline > 0 {
		m.worstCR = cost / offline
	}
	fmt.Fprintf(&exp, "; worst-case cost %.6g", cost)
	m.explain = exp.String()
	return nil
}

// Decide implements Strategy: one threshold draw per segment, in
// ladder order, so RNG consumption is fixed and replayable.
func (m *multislopeStrategy) Decide(rng *rand.Rand) Decision {
	schedule := make([]Action, len(m.segments))
	for i, seg := range m.segments {
		schedule[i] = Action{State: m.names[i+1], AtSec: seg.Threshold(rng)}
	}
	return Decision{
		Choice:        m.choice,
		ThresholdSec:  schedule[len(schedule)-1].AtSec,
		Schedule:      schedule,
		WorstCaseCost: m.worstCost,
		WorstCaseCR:   m.worstCR,
	}
}

// Explain implements Strategy. The record is rendered once at Prepare
// time: it documents the segment decomposition, not a single draw.
func (m *multislopeStrategy) Explain() string { return m.explain }

// Describe implements Strategy.
func (m *multislopeStrategy) Describe() Description {
	d := Description{
		Choice:        m.choice,
		ThresholdSec:  -1,
		WorstCaseCost: m.worstCost,
		WorstCaseCR:   m.worstCR,
	}
	if m.deterministic {
		// Every rung is fixed: the engine-off threshold is the last
		// segment's deterministic switch time.
		if det, ok := m.segments[len(m.segments)-1].Inner().(*skirental.Deterministic); ok {
			d.ThresholdSec = det.X()
		}
	}
	return d
}
