package policy

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"

	"idlereduce/internal/predict"
)

func mustPrepare(t *testing.T, spec string, s Stats, params map[string]float64) Strategy {
	t.Helper()
	e, err := Lookup(spec)
	if err != nil {
		t.Fatal(err)
	}
	pe, ok := e.(Parametric)
	if !ok {
		t.Fatalf("engine %s is not Parametric", spec)
	}
	resolved, err := ResolveParams(pe, params)
	if err != nil {
		t.Fatal(err)
	}
	strat, err := pe.PrepareParams(s, resolved)
	if err != nil {
		t.Fatal(err)
	}
	return strat
}

// sameDecision compares decisions field by field, bit-exact on the
// floats (Schedule is nil for every single-slope engine here).
func sameDecision(a, b Decision) bool {
	return a.Choice == b.Choice &&
		math.Float64bits(a.ThresholdSec) == math.Float64bits(b.ThresholdSec) &&
		a.WorstCaseCost == b.WorstCaseCost &&
		a.WorstCaseCR == b.WorstCaseCR &&
		a.Schedule == nil && b.Schedule == nil
}

func TestAdvisedEnginesRegistered(t *testing.T) {
	for _, spec := range []string{"softml@v1", "distadvice@v1"} {
		e, err := Lookup(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		pe, ok := e.(Parametric)
		if !ok {
			t.Fatalf("%s not Parametric", spec)
		}
		ps := pe.Params()
		if len(ps) != 1 || ps[0].Name != "lambda" || ps[0].Min != 0 || ps[0].Max != 1 || ps[0].Default != 0.5 {
			t.Fatalf("%s params %+v", spec, ps)
		}
		strat, err := e.Prepare(Stats{B: 28, Mu: 4, Q: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := strat.(Advised); !ok {
			t.Fatalf("%s strategy not Advised", spec)
		}
	}
}

// TestAdvisedZeroLambdaBitIdentical is the acceptance-criterion core:
// at lambda = 0 both advised engines are bit-identical to
// constrained@v1 — with and without a prediction, from the same RNG
// stream position.
func TestAdvisedZeroLambdaBitIdentical(t *testing.T) {
	stats := []Stats{
		{B: 28, Mu: 8, Q: 0.13}, // DET region (deterministic draw)
		{B: 28, Mu: 4, Q: 0.25}, // N-Rand region (random draw)
		{B: 28, Mu: 0.5, Q: 0.9},
	}
	ce, _ := Lookup("constrained@v1")
	preds := []predict.Prediction{
		predict.New(500),
		predict.New(1),
		predict.WithMoments(120, 20000),
		{StopSec: 40, Confidence: 0.7},
	}
	for _, spec := range []string{"softml@v1", "distadvice@v1"} {
		for _, s := range stats {
			want, err := ce.Prepare(s)
			if err != nil {
				t.Fatal(err)
			}
			strat := mustPrepare(t, spec, s, map[string]float64{"lambda": 0})
			adv := strat.(Advised)
			for seed := uint64(1); seed <= 20; seed++ {
				ref := want.Decide(rand.New(rand.NewPCG(seed, 3)))
				plain := strat.Decide(rand.New(rand.NewPCG(seed, 3)))
				if !sameDecision(plain, ref) {
					t.Fatalf("%s %+v seed %d: Decide %+v != constrained %+v", spec, s, seed, plain, ref)
				}
				p := preds[int(seed)%len(preds)]
				advised := adv.DecideAdvised(rand.New(rand.NewPCG(seed, 3)), p)
				if !sameDecision(advised, ref) {
					t.Fatalf("%s %+v seed %d: DecideAdvised(%+v) %+v != constrained %+v", spec, s, seed, p, advised, ref)
				}
			}
			if d1, d2 := want.Describe(), strat.Describe(); d1 != d2 {
				t.Fatalf("%s %+v: Describe %+v != constrained %+v", spec, s, d1, d2)
			}
		}
	}
}

// TestAdvisedBlendedDecision: with trust, a decisive prediction moves
// the threshold, the choice is labelled as a blend, and the bounds are
// the worst-case cost of the realized threshold.
func TestAdvisedBlendedDecision(t *testing.T) {
	s := Stats{B: 28, Mu: 8, Q: 0.13} // constrained plays DET (threshold B)
	strat := mustPrepare(t, "softml@v1", s, map[string]float64{"lambda": 1})
	adv := strat.(Advised)
	d := adv.DecideAdvised(rand.New(rand.NewPCG(1, 1)), predict.New(400))
	if d.ThresholdSec != 0 {
		t.Fatalf("full-trust long forecast threshold %v, want 0", d.ThresholdSec)
	}
	if d.Choice != "SoftML[DET]" {
		t.Fatalf("choice %q", d.Choice)
	}
	// Threshold 0 is TOI: worst case B, CR B/(mu+qB).
	if math.Abs(d.WorstCaseCost-28) > 1e-12 {
		t.Fatalf("worst-case cost %v, want 28", d.WorstCaseCost)
	}
	wantCR := 28 / (8 + 0.13*28)
	if math.Abs(d.WorstCaseCR-wantCR) > 1e-12 {
		t.Fatalf("worst-case CR %v, want %v", d.WorstCaseCR, wantCR)
	}

	da := mustPrepare(t, "distadvice@v1", s, map[string]float64{"lambda": 0.5}).(Advised)
	d = da.DecideAdvised(rand.New(rand.NewPCG(1, 1)), predict.WithMoments(200, 50000))
	if d.Choice == "" || d.Choice[:11] != "DistAdvice[" {
		t.Fatalf("distadvice choice %q", d.Choice)
	}
	// Trust region: within lambda*B of the fallback draw (DET plays B).
	if d.ThresholdSec < 28-0.5*28-1e-12 || d.ThresholdSec > 28 {
		t.Fatalf("distadvice threshold %v outside trust region", d.ThresholdSec)
	}
	if d.WorstCaseCost <= 0 || math.IsNaN(d.WorstCaseCR) {
		t.Fatalf("degenerate bounds %+v", d)
	}
}

func TestResolveParamsValidation(t *testing.T) {
	e, _ := Lookup("softml")
	pe := e.(Parametric)
	got, err := ResolveParams(pe, nil)
	if err != nil || got["lambda"] != 0.5 {
		t.Fatalf("defaults: %v %v", got, err)
	}
	got, err = ResolveParams(pe, map[string]float64{"lambda": 0.9})
	if err != nil || got["lambda"] != 0.9 {
		t.Fatalf("override: %v %v", got, err)
	}
	for name, bad := range map[string]map[string]float64{
		"unknown":  {"gamma": 1},
		"low":      {"lambda": -0.1},
		"high":     {"lambda": 1.1},
		"nan":      {"lambda": math.NaN()},
		"plus-inf": {"lambda": math.Inf(1)},
	} {
		if _, err := ResolveParams(pe, bad); !errors.Is(err, ErrBadParams) {
			t.Errorf("%s: %v, want ErrBadParams", name, err)
		}
	}
}

func TestAdvisedInfeasibleStats(t *testing.T) {
	for _, spec := range []string{"softml", "distadvice"} {
		e, _ := Lookup(spec)
		if _, err := e.Prepare(Stats{B: 28, Mu: 30, Q: 0.5}); !errors.Is(err, ErrInfeasible) {
			t.Errorf("%s: %v, want ErrInfeasible", spec, err)
		}
	}
}
