package policy

import (
	"fmt"
	"math/rand/v2"

	"idlereduce/internal/predict"
	"idlereduce/internal/skirental"
)

// Engine names of the learning-augmented families.
const (
	// SoftMLEngine is the lambda-robust point-forecast blend.
	SoftMLEngine = "softml"
	// DistAdviceEngine is the distributional-advice variant.
	DistAdviceEngine = "distadvice"
)

// lambdaParam is the shared trust-parameter declaration of both
// learning-augmented engines.
var lambdaParam = ParamSpec{
	Name:    "lambda",
	Doc:     "trust in the prediction: 0 = pure constrained fallback, 1 = follow the advice",
	Default: 0.5,
	Min:     0,
	Max:     1,
}

func init() {
	Register(softmlEngine{})
	Register(distadviceEngine{})
}

// softmlEngine is the Kodialam-style lambda-robust engine: a convex
// blend of the constrained-vertex fallback threshold with the
// pure-consistency advice threshold of a point stop-length forecast.
type softmlEngine struct{}

// Name implements Engine.
func (softmlEngine) Name() string { return SoftMLEngine }

// Version implements Engine.
func (softmlEngine) Version() int { return 1 }

// Doc implements Engine.
func (softmlEngine) Doc() string {
	return "lambda-robust blend of a point stop-length prediction with the constrained-vertex fallback"
}

// Params implements Parametric.
func (softmlEngine) Params() []ParamSpec { return []ParamSpec{lambdaParam} }

// Prepare implements Engine: the all-defaults preparation.
func (e softmlEngine) Prepare(s Stats) (Strategy, error) { return e.PrepareParams(s, nil) }

// PrepareParams implements Parametric.
func (e softmlEngine) PrepareParams(s Stats, params map[string]float64) (Strategy, error) {
	resolved, fallback, err := prepareAdvised(e, s, params)
	if err != nil {
		return nil, err
	}
	sm, err := predict.NewSoftML(fallback.p, resolved["lambda"])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadParams, err)
	}
	return &advisedStrategy{
		fallback: fallback,
		advise:   sm.Advise,
		kind:     "SoftML",
		spec:     Spec(e),
		lambda:   sm.Lambda(),
		// SoftML labels its blend by the fallback vertex it moved off.
		choiceFor:   func(predict.Advice) string { return fallback.choice },
		robustBound: robustCRBound(fallback, sm.Lambda(), softmlInterval(sm.Lambda())),
	}, nil
}

// distadviceEngine is the distributional-advice engine: a predicted
// moment pair projects onto the paper's statistics plane, the vertex
// selection runs on the projection, and the resulting advice threshold
// is clamped into the lambda trust region around the fallback draw.
type distadviceEngine struct{}

// Name implements Engine.
func (distadviceEngine) Name() string { return DistAdviceEngine }

// Version implements Engine.
func (distadviceEngine) Version() int { return 1 }

// Doc implements Engine.
func (distadviceEngine) Doc() string {
	return "vertex selection on predicted distribution moments, clamped to the lambda trust region"
}

// Params implements Parametric.
func (distadviceEngine) Params() []ParamSpec { return []ParamSpec{lambdaParam} }

// Prepare implements Engine: the all-defaults preparation.
func (e distadviceEngine) Prepare(s Stats) (Strategy, error) { return e.PrepareParams(s, nil) }

// PrepareParams implements Parametric.
func (e distadviceEngine) PrepareParams(s Stats, params map[string]float64) (Strategy, error) {
	resolved, fallback, err := prepareAdvised(e, s, params)
	if err != nil {
		return nil, err
	}
	da, err := predict.NewDistAdvice(fallback.p, resolved["lambda"])
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadParams, err)
	}
	return &advisedStrategy{
		fallback: fallback,
		advise:   da.Advise,
		kind:     "DistAdvice",
		spec:     Spec(e),
		lambda:   da.Lambda(),
		// DistAdvice labels its blend by the advice-selected vertex.
		choiceFor:   func(a predict.Advice) string { return a.Label },
		robustBound: robustCRBound(fallback, da.Lambda(), distadviceInterval(da.Lambda())),
	}, nil
}

// prepareAdvised is the shared front half of both learning-augmented
// preparations: resolve the lambda parameter and prepare the
// constrained fallback the advice blends against.
func prepareAdvised(e Parametric, s Stats, params map[string]float64) (map[string]float64, *constrainedStrategy, error) {
	resolved, err := ResolveParams(e, params)
	if err != nil {
		return nil, nil, err
	}
	fb, err := constrainedEngine{}.Prepare(s)
	if err != nil {
		return nil, nil, err
	}
	return resolved, fb.(*constrainedStrategy), nil
}

// advisedStrategy is the prepared form of both learning-augmented
// engines. Without a prediction it IS the constrained fallback —
// Decide delegates verbatim, same RNG consumption, same decision
// bytes. With a prediction, DecideAdvised draws the fallback threshold
// from the same stream position and blends it per the engine's advice
// rule; the blended threshold's guarantee is re-derived through the
// paper's worst-case threshold cost, so every decision still carries
// an honest robustness bound.
type advisedStrategy struct {
	fallback  *constrainedStrategy
	advise    func(*rand.Rand, predict.Prediction) predict.Advice
	choiceFor func(predict.Advice) string
	kind      string
	spec      string
	lambda    float64
	// robustBound is the published lambda-robustness envelope (see
	// robustCRBound in bounded.go), precomputed at Prepare time.
	robustBound float64
}

// Lambda returns the prepared trust parameter.
func (a *advisedStrategy) Lambda() float64 { return a.lambda }

// Decide implements Strategy: the prediction-free path is the
// constrained fallback, bit for bit.
func (a *advisedStrategy) Decide(rng *rand.Rand) Decision { return a.fallback.Decide(rng) }

// DecideAdvised implements Advised.
func (a *advisedStrategy) DecideAdvised(rng *rand.Rand, p predict.Prediction) Decision {
	adv := a.advise(rng, p)
	if !adv.Blended {
		// Zero effective trust: the advice threshold is exactly the
		// fallback draw, so the decision is the fallback decision.
		return Decision{
			Choice:        a.fallback.choice,
			ThresholdSec:  adv.Threshold,
			WorstCaseCost: a.fallback.p.WorstCaseCost(),
			WorstCaseCR:   a.fallback.p.WorstCaseCR(),
		}
	}
	st := a.fallback.stats
	cost := skirental.WorstCaseDetCost(st.B, st.Mu, st.Q, adv.Threshold)
	cr := 1.0
	if off := st.Mu + st.Q*st.B; off > 0 {
		cr = cost / off
	}
	return Decision{
		Choice:        fmt.Sprintf("%s[%s]", a.kind, a.choiceFor(adv)),
		ThresholdSec:  adv.Threshold,
		WorstCaseCost: cost,
		WorstCaseCR:   cr,
	}
}

// Describe implements Strategy: the prediction-free serving summary is
// the fallback's.
func (a *advisedStrategy) Describe() Description { return a.fallback.Describe() }

// Explain implements Strategy.
func (a *advisedStrategy) Explain() string {
	return fmt.Sprintf("%s: lambda=%g blend of prediction advice against fallback [%s]",
		a.spec, a.lambda, a.fallback.Explain())
}
