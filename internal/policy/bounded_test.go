package policy

import (
	"math"
	"math/rand/v2"
	"testing"

	"idlereduce/internal/predict"
)

func testRNG(seed uint64) *rand.Rand { return rand.New(rand.NewPCG(seed, 7)) }

// predictionPanel spans the advice extremes: confident short, confident
// long, half-confidence, and distributional moments on both sides of b.
func predictionPanel(b float64) []predict.Prediction {
	half := predict.New(b / 2)
	half.Confidence = 0.5
	return []predict.Prediction{
		predict.New(1),
		predict.New(10 * b),
		half,
		predict.WithMoments(b/4, b*b/8),
		predict.WithMoments(4*b, 20*b*b),
	}
}

// boundedStrategy prepares an engine (with optional params) and
// asserts the strategy publishes a bound.
func boundedStrategy(t *testing.T, spec string, s Stats, params map[string]float64) Bounded {
	t.Helper()
	e, err := Lookup(spec)
	if err != nil {
		t.Fatal(err)
	}
	var st Strategy
	if pe, ok := e.(Parametric); ok {
		st, err = pe.PrepareParams(s, params)
	} else {
		st, err = e.Prepare(s)
	}
	if err != nil {
		t.Fatal(err)
	}
	b, ok := st.(Bounded)
	if !ok {
		t.Fatalf("engine %s strategy %T does not publish a worst-case CR bound", spec, st)
	}
	return b
}

// TestEveryEnginePublishesBound: every registered engine's prepared
// strategy implements Bounded with a finite bound >= 1.
func TestEveryEnginePublishesBound(t *testing.T) {
	s := Stats{B: 28, Mu: 8, Q: 0.13}
	for _, name := range Names() {
		b := boundedStrategy(t, name, s, nil)
		got := b.WorstCaseCRBound()
		if !(got >= 1) || math.IsInf(got, 0) || math.IsNaN(got) {
			t.Errorf("engine %s bound %v, want finite >= 1", name, got)
		}
	}
}

// TestConstrainedBoundMatchesVertexCR: the default engine's published
// bound is the selected vertex's guarantee, and per-decision
// WorstCaseCR never exceeds it.
func TestConstrainedBoundMatchesVertexCR(t *testing.T) {
	s := Stats{B: 28, Mu: 8, Q: 0.13}
	b := boundedStrategy(t, DefaultEngine, s, nil)
	d := b.Decide(testRNG(1))
	if d.WorstCaseCR != b.WorstCaseCRBound() {
		t.Errorf("decision CR %v != published bound %v", d.WorstCaseCR, b.WorstCaseCRBound())
	}
}

// TestMultislopeBoundMatchesDescription: the bundle's published bound
// is its precomputed decomposition CR.
func TestMultislopeBoundMatchesDescription(t *testing.T) {
	s := Stats{B: 28, Mu: 8, Q: 0.13}
	b := boundedStrategy(t, MultislopeEngine, s, nil)
	if got, want := b.WorstCaseCRBound(), b.Describe().WorstCaseCR; got != want {
		t.Errorf("bound %v != described CR %v", got, want)
	}
}

// TestAdvisedBoundProperties: the lambda-robustness envelope collapses
// to the fallback bound at lambda 0, grows with lambda, and dominates
// the fallback bound everywhere.
func TestAdvisedBoundProperties(t *testing.T) {
	s := Stats{B: 28, Mu: 8, Q: 0.13}
	fb := boundedStrategy(t, DefaultEngine, s, nil).WorstCaseCRBound()
	for _, spec := range []string{SoftMLEngine, DistAdviceEngine} {
		prev := 0.0
		for i, lambda := range []float64{0, 0.25, 0.5, 0.75, 1} {
			b := boundedStrategy(t, spec, s, map[string]float64{"lambda": lambda})
			got := b.WorstCaseCRBound()
			if got < fb {
				t.Errorf("%s lambda=%g bound %v below fallback bound %v", spec, lambda, got, fb)
			}
			if lambda == 0 && got != fb {
				t.Errorf("%s lambda=0 bound %v, want exactly fallback %v", spec, got, fb)
			}
			if i > 0 && got < prev-1e-12 {
				t.Errorf("%s bound not monotone in lambda: %v after %v", spec, got, prev)
			}
			prev = got
		}
	}
}

// TestAdvisedDecisionBoundWithinEnvelope: every advised decision's
// per-decision worst-case CR stays within the published envelope, for
// deterministic and randomized fallbacks alike.
func TestAdvisedDecisionBoundWithinEnvelope(t *testing.T) {
	for _, s := range []Stats{
		{B: 28, Mu: 8, Q: 0.13}, // deterministic-fallback regime
		{B: 28, Mu: 4, Q: 0.25}, // N-Rand regime
	} {
		for _, spec := range []string{SoftMLEngine, DistAdviceEngine} {
			b := boundedStrategy(t, spec, s, map[string]float64{"lambda": 0.6})
			adv, ok := Strategy(b).(Advised)
			if !ok {
				t.Fatalf("%s strategy is not Advised", spec)
			}
			for seed := uint64(1); seed <= 20; seed++ {
				for _, pred := range predictionPanel(s.B) {
					d := adv.DecideAdvised(testRNG(seed), pred)
					if d.WorstCaseCR > b.WorstCaseCRBound()+1e-9 {
						t.Errorf("%s stats %+v seed %d pred %+v: decision CR %v exceeds envelope %v",
							spec, s, seed, pred, d.WorstCaseCR, b.WorstCaseCRBound())
					}
				}
			}
		}
	}
}
