package policy

import (
	"errors"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"idlereduce/internal/skirental"
)

func mustConstrained(t *testing.T, s Stats) *skirental.Constrained {
	t.Helper()
	p, err := skirental.NewConstrained(s.B, skirental.Stats{MuBMinus: s.Mu, QBPlus: s.Q})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func prepareMS(t *testing.T, s Stats) Strategy {
	t.Helper()
	e, err := Lookup(MultislopeEngine)
	if err != nil {
		t.Fatal(err)
	}
	strat, err := e.Prepare(s)
	if err != nil {
		t.Fatalf("Prepare(%+v): %v", s, err)
	}
	return strat
}

// TestMultislopeScheduleShape: a three-state decision is a two-rung
// ladder (fuel_cut, engine_off) with finite non-negative switch times,
// and the top-level threshold is the engine-off rung.
func TestMultislopeScheduleShape(t *testing.T) {
	for _, s := range []Stats{
		{B: 28, Mu: 8, Q: 0.13},
		{B: 28, Mu: 4, Q: 0.25},
		{B: 60, Mu: 20, Q: 0.4},
		{B: 11, Mu: 0, Q: 1},
	} {
		strat := prepareMS(t, s)
		dec := strat.Decide(rand.New(rand.NewPCG(1, 2)))
		if len(dec.Schedule) != 2 {
			t.Fatalf("stats %+v: %d schedule rungs, want 2", s, len(dec.Schedule))
		}
		if dec.Schedule[0].State != "fuel_cut" || dec.Schedule[1].State != "engine_off" {
			t.Fatalf("stats %+v: schedule states %q, %q", s, dec.Schedule[0].State, dec.Schedule[1].State)
		}
		for _, a := range dec.Schedule {
			if math.IsNaN(a.AtSec) || math.IsInf(a.AtSec, 0) || a.AtSec < 0 {
				t.Fatalf("stats %+v: rung %s at %v", s, a.State, a.AtSec)
			}
		}
		if dec.ThresholdSec != dec.Schedule[1].AtSec {
			t.Fatalf("threshold %v is not the engine_off rung %v", dec.ThresholdSec, dec.Schedule[1].AtSec)
		}
		if !strings.HasPrefix(dec.Choice, "MS:") {
			t.Fatalf("choice %q lacks the MS: bundle prefix", dec.Choice)
		}
		if dec.WorstCaseCost <= 0 || dec.WorstCaseCR < 1 {
			t.Fatalf("bounds (%v, %v) out of range", dec.WorstCaseCost, dec.WorstCaseCR)
		}
		if exp := strat.Explain(); !strings.Contains(exp, "seg1") {
			t.Fatalf("explain %q does not document the segments", exp)
		}
	}
}

// TestMultislopeDeterministicReplay: identical stats and RNG streams
// must reproduce the decision bit-for-bit — the property audit
// verification relies on.
func TestMultislopeDeterministicReplay(t *testing.T) {
	s := Stats{B: 28, Mu: 4, Q: 0.25}
	a := prepareMS(t, s).Decide(rand.New(rand.NewPCG(9, 3)))
	b := prepareMS(t, s).Decide(rand.New(rand.NewPCG(9, 3)))
	if a.Choice != b.Choice || len(a.Schedule) != len(b.Schedule) {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
	for i := range a.Schedule {
		if math.Float64bits(a.Schedule[i].AtSec) != math.Float64bits(b.Schedule[i].AtSec) {
			t.Fatalf("rung %d: %v vs %v", i, a.Schedule[i].AtSec, b.Schedule[i].AtSec)
		}
	}
	if math.Float64bits(a.ThresholdSec) != math.Float64bits(b.ThresholdSec) {
		t.Fatalf("threshold: %v vs %v", a.ThresholdSec, b.ThresholdSec)
	}
}

// TestMultislopeInfeasible: break-evens too small for the three-state
// instance and infeasible area pairs surface as ErrInfeasible, the
// class the server maps to a 4xx.
func TestMultislopeInfeasible(t *testing.T) {
	e, _ := Lookup(MultislopeEngine)
	for _, s := range []Stats{
		{B: 8, Mu: 2, Q: 0.1},   // AutomotiveThreeState needs B > 10
		{B: 10, Mu: 1, Q: 0.1},  // boundary
		{B: 28, Mu: 30, Q: 0.5}, // pair infeasible at B
		{B: math.NaN(), Mu: 1, Q: 0.1},
	} {
		if _, err := e.Prepare(s); !errors.Is(err, ErrInfeasible) {
			t.Errorf("Prepare(%+v) = %v, want ErrInfeasible", s, err)
		}
	}
}

// TestProjectStats pins the two-point projection: segments whose
// break-even the mean short stop outlives see (0, 1); later segments
// keep the area pair, which stays feasible at any larger break-even.
func TestProjectStats(t *testing.T) {
	s := Stats{B: 28, Mu: 8, Q: 0.13} // mean short stop 8/0.87 = 9.195s
	if got := projectStats(s, 7.27); got.QBPlus != 1 || got.MuBMinus != 0 {
		t.Errorf("beta 7.27: %+v, want (0, 1)", got)
	}
	if got := projectStats(s, 53.3); got.QBPlus != 0.13 || got.MuBMinus != 8 {
		t.Errorf("beta 53.3: %+v, want area pair", got)
	}
	if got := projectStats(Stats{B: 28, Mu: 0, Q: 1}, 12); got.QBPlus != 1 || got.MuBMinus != 0 {
		t.Errorf("all-long area: %+v, want (0, 1)", got)
	}
	// Every projection must validate at its segment break-even.
	for _, beta := range []float64{0.5, 7.27, 28, 53.3, 500} {
		for _, st := range []Stats{s, {B: 28, Mu: 0, Q: 1}, {B: 28, Mu: 24, Q: 0}} {
			p := projectStats(st, beta)
			if err := p.Validate(beta); err != nil {
				t.Errorf("projection of %+v at beta %v infeasible: %v", st, beta, err)
			}
		}
	}
}

// TestMultislopeDescribe: the listing description is deterministic
// only when every segment selected a fixed-threshold vertex.
func TestMultislopeDescribe(t *testing.T) {
	// All-long area: every segment plays TOI (threshold 0) — fully
	// deterministic ladder.
	d := prepareMS(t, Stats{B: 11, Mu: 0, Q: 1}).Describe()
	if d.ThresholdSec < 0 {
		t.Errorf("deterministic bundle described with drawn threshold: %+v", d)
	}
	if d.Choice != "MS:TOI+TOI" {
		t.Errorf("all-long choice %q, want MS:TOI+TOI", d.Choice)
	}
	// N-Rand-region area: at least one randomized segment.
	d = prepareMS(t, Stats{B: 28, Mu: 4, Q: 0.25}).Describe()
	if strings.Contains(d.Choice, "N-Rand") && d.ThresholdSec != -1 {
		t.Errorf("randomized bundle %q described with fixed threshold %v", d.Choice, d.ThresholdSec)
	}
}
