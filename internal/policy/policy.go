// Package policy defines the versioned PolicyEngine abstraction the
// idled serving stack dispatches over, plus the registry that makes
// new policy families additive registrations instead of handler
// surgery.
//
// An Engine is a policy family (the paper's constrained single-slope
// selector, the multislope ski-rental bundle, ...). Preparing an
// engine against one area's constrained statistics yields an immutable
// Strategy — the cacheable unit the server keys by
// {area, engine, params-hash}. Deciding draws the action schedule for
// one stop from a caller-supplied RNG; a Decision is a pure function
// of (stats, engine, engine version, RNG stream), which is what lets
// the audit log replay any engine bit-identically.
//
// Versioning rules: an engine's Version is part of its serving
// contract. Any change that can alter a decision for the same inputs —
// selection logic, threshold formulas, RNG consumption order — MUST
// bump Version; the audit verifier refuses to attest records written
// by a different version rather than report false mismatches. Wire
// specs accept "name" (any version) or "name@vN" (exact version).
package policy

import (
	"errors"
	"fmt"
	"math"
	"math/rand/v2"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"

	"idlereduce/internal/predict"
)

// Stats is one area's constrained serving statistics: the break-even
// interval B and the pair (mu_B-, q_B+) measured at B. It is the only
// distributional information an engine may depend on, which keeps
// every engine replayable from an audit record.
type Stats struct {
	// B is the break-even interval in seconds (restart cost in
	// idle-second equivalents).
	B float64
	// Mu is mu_B-: the partial expectation of stops not longer than B.
	Mu float64
	// Q is q_B+: the probability of a stop longer than B.
	Q float64
}

// Action is one rung of an action schedule: enter State when the stop
// reaches AtSec seconds.
type Action struct {
	State string  `json:"state"`
	AtSec float64 `json:"at_sec"`
}

// Decision is one engine decision for one stop.
type Decision struct {
	// Choice is the selected strategy label (e.g. "DET", "N-Rand", or a
	// multislope bundle like "MS:DET+N-Rand").
	Choice string
	// ThresholdSec is the primary engine-off threshold: idle this many
	// seconds, then shut the engine down. For multi-state engines it is
	// the final (engine-off) rung of the schedule.
	ThresholdSec float64
	// Schedule is the full action ladder for multi-state engines; nil
	// for single-slope engines, whose schedule is implied by
	// ThresholdSec.
	Schedule []Action
	// WorstCaseCost and WorstCaseCR are the strategy's guaranteed
	// bounds over every distribution consistent with the statistics.
	WorstCaseCost float64
	WorstCaseCR   float64
}

// Description summarizes a prepared strategy for area listings.
type Description struct {
	// Choice is the precomputed selection label.
	Choice string
	// ThresholdSec is the fixed engine-off threshold, or -1 when it is
	// drawn per request.
	ThresholdSec  float64
	WorstCaseCost float64
	WorstCaseCR   float64
}

// Strategy is a prepared, immutable policy for one (stats, engine)
// pair. Implementations must be safe for concurrent Decide calls and
// must consume the RNG identically for identical inputs — decisions
// are replayed bit-for-bit by the audit verifier.
type Strategy interface {
	// Decide draws the action schedule for one stop.
	Decide(rng *rand.Rand) Decision
	// Describe returns the precomputed summary for listings.
	Describe() Description
	// Explain renders the deterministic derivation record: how the
	// engine turned the statistics into this strategy. It is identical
	// for every decision the strategy draws, so it lives here rather
	// than on Decision — the per-request hot path never pays for it.
	Explain() string
}

// Engine is one versioned policy family.
type Engine interface {
	// Name is the registry key: lowercase [a-z0-9_-]+.
	Name() string
	// Version is the engine's decision-contract generation (see the
	// package comment's versioning rules).
	Version() int
	// Doc is a one-line human description for listings.
	Doc() string
	// Prepare precomputes the strategy for one area's statistics. It
	// returns ErrInfeasible (wrapped) when the statistics cannot be
	// served by this family.
	Prepare(s Stats) (Strategy, error)
}

// DefaultEngine is the engine served when a request names none: the
// paper's constrained single-slope selector.
const DefaultEngine = "constrained"

// Stable error classes. The server maps these to wire error codes, so
// they are part of the API contract.
var (
	// ErrUnknownEngine reports a spec naming no registered engine.
	ErrUnknownEngine = errors.New("policy: unknown engine")
	// ErrVersionMismatch reports a pinned "name@vN" spec whose N is not
	// the registered engine's version.
	ErrVersionMismatch = errors.New("policy: engine version mismatch")
	// ErrBadSpec reports a syntactically malformed engine spec.
	ErrBadSpec = errors.New("policy: malformed engine spec")
	// ErrInfeasible reports statistics an engine cannot serve.
	ErrInfeasible = errors.New("policy: infeasible statistics for engine")
	// ErrBadParams reports engine parameters that fail validation:
	// an unknown name, a non-finite value, or a value outside the
	// parameter's declared range.
	ErrBadParams = errors.New("policy: invalid engine params")
)

// ParamSpec declares one tunable engine parameter: its registry name,
// a one-line doc, the default used when a request omits it, and the
// closed accepted range.
type ParamSpec struct {
	Name    string  `json:"name"`
	Doc     string  `json:"doc"`
	Default float64 `json:"default"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
}

// Parametric is an Engine with tunable per-request parameters. Its
// plain Prepare is the all-defaults preparation; PrepareParams prepares
// with caller overrides, already validated through ResolveParams.
// Parameters are part of the strategy cache key, so two requests with
// different params never share a prepared strategy.
type Parametric interface {
	Engine
	// Params declares the accepted parameters in listing order.
	Params() []ParamSpec
	// PrepareParams prepares a strategy with the given overrides; nil
	// means all defaults (and must behave exactly like Prepare).
	PrepareParams(s Stats, params map[string]float64) (Strategy, error)
}

// Advised is a Strategy that can consume a stop-length prediction.
// DecideAdvised with the zero-trust extreme (engine lambda 0, or
// prediction confidence 0) MUST be bit-identical to Decide from the
// same RNG position, including RNG consumption — that invariant is
// what keeps audit replay a pure function of the recorded inputs.
type Advised interface {
	Strategy
	// DecideAdvised draws the action schedule for one stop under the
	// given prediction.
	DecideAdvised(rng *rand.Rand, p predict.Prediction) Decision
}

// ResolveParams validates caller overrides against the engine's
// declared parameters and merges them over the defaults. Unknown
// names, NaN values, and out-of-range values wrap ErrBadParams.
func ResolveParams(e Parametric, params map[string]float64) (map[string]float64, error) {
	specs := e.Params()
	out := make(map[string]float64, len(specs))
	accepted := make([]string, 0, len(specs))
	for _, ps := range specs {
		out[ps.Name] = ps.Default
		accepted = append(accepted, ps.Name)
	}
	names := make([]string, 0, len(params))
	for name := range params {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := params[name]
		var ps *ParamSpec
		for i := range specs {
			if specs[i].Name == name {
				ps = &specs[i]
				break
			}
		}
		if ps == nil {
			return nil, fmt.Errorf("%w: engine %s has no param %q (accepted: %s)",
				ErrBadParams, e.Name(), name, strings.Join(accepted, ", "))
		}
		if math.IsNaN(v) || v < ps.Min || v > ps.Max {
			return nil, fmt.Errorf("%w: %s=%v outside [%g, %g]", ErrBadParams, name, v, ps.Min, ps.Max)
		}
		out[name] = v
	}
	return out, nil
}

var (
	regMu    sync.RWMutex
	registry = map[string]Engine{}
)

// nameRE pins registry keys to lowercase identifiers so wire specs
// normalize trivially.
var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_-]*$`)

// Register adds an engine to the registry. It panics on an invalid
// name, a non-positive version, or a duplicate registration — engine
// wiring is a boot-time programming error, never a runtime condition.
func Register(e Engine) {
	name := e.Name()
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("policy: invalid engine name %q", name))
	}
	if e.Version() < 1 {
		panic(fmt.Sprintf("policy: engine %s version %d must be >= 1", name, e.Version()))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("policy: duplicate engine registration %q", name))
	}
	registry[name] = e
}

// Names returns the registered engine names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Get returns a registered engine by exact name.
func Get(name string) (Engine, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// Spec renders an engine's canonical pinned spec, "name@vN".
func Spec(e Engine) string { return fmt.Sprintf("%s@v%d", e.Name(), e.Version()) }

// Lookup resolves a wire engine spec: "" (the default engine), "name"
// (any version), or "name@vN" (exactly version N). Specs are
// case-insensitive and whitespace-trimmed. Errors wrap the stable
// classes above.
func Lookup(spec string) (Engine, error) {
	spec = strings.ToLower(strings.TrimSpace(spec))
	if spec == "" {
		spec = DefaultEngine
	}
	name, version := spec, 0
	if at := strings.IndexByte(spec, '@'); at >= 0 {
		var err error
		name = spec[:at]
		if version, err = parseVersion(spec[at+1:]); err != nil {
			return nil, fmt.Errorf("%w: %q: %v", ErrBadSpec, spec, err)
		}
	}
	if !nameRE.MatchString(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadSpec, spec)
	}
	e, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q (registered: %s)", ErrUnknownEngine, name, strings.Join(Names(), ", "))
	}
	if version != 0 && version != e.Version() {
		return nil, fmt.Errorf("%w: %s pins v%d, registered is v%d", ErrVersionMismatch, name, version, e.Version())
	}
	return e, nil
}

// parseVersion parses the "vN" suffix of a pinned spec.
func parseVersion(s string) (int, error) {
	if !strings.HasPrefix(s, "v") {
		return 0, fmt.Errorf("version %q must look like v1", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 1 {
		return 0, fmt.Errorf("version %q must be v<positive integer>", s)
	}
	return n, nil
}
