package policy

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"
)

// fakeEngine lets registry tests register throwaway engines.
type fakeEngine struct {
	name    string
	version int
}

func (f fakeEngine) Name() string                    { return f.name }
func (f fakeEngine) Version() int                    { return f.version }
func (f fakeEngine) Doc() string                     { return "test engine" }
func (f fakeEngine) Prepare(Stats) (Strategy, error) { return nil, ErrInfeasible }

func TestRegistryHasBuiltins(t *testing.T) {
	names := Names()
	for _, want := range []string{DefaultEngine, MultislopeEngine} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("builtin engine %q not registered (have %v)", want, names)
		}
	}
}

// TestLookupSpecs is the wire-spec parsing table: every malformed or
// unknown spec must map to its stable error class, never succeed and
// never panic.
func TestLookupSpecs(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr error // nil = must resolve
		name    string
	}{
		{"", nil, DefaultEngine},
		{"constrained", nil, DefaultEngine},
		{"  Constrained  ", nil, DefaultEngine},
		{"constrained@v1", nil, DefaultEngine},
		{"CONSTRAINED@V1", nil, DefaultEngine},
		{"multislope3", nil, MultislopeEngine},
		{"multislope3@v1", nil, MultislopeEngine},
		{"nope", ErrUnknownEngine, ""},
		{"constrained@v2", ErrVersionMismatch, ""},
		{"multislope3@v99", ErrVersionMismatch, ""},
		{"constrained@", ErrBadSpec, ""},
		{"constrained@1", ErrBadSpec, ""},
		{"constrained@vx", ErrBadSpec, ""},
		{"constrained@v0", ErrBadSpec, ""},
		{"constrained@v-1", ErrBadSpec, ""},
		{"@v1", ErrBadSpec, ""},
		{"bad name", ErrBadSpec, ""},
		{"3slope", ErrBadSpec, ""},
		{"a@v1@v2", ErrBadSpec, ""},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%q", c.spec), func(t *testing.T) {
			e, err := Lookup(c.spec)
			if c.wantErr == nil {
				if err != nil {
					t.Fatalf("Lookup(%q) = %v, want engine", c.spec, err)
				}
				if e.Name() != c.name {
					t.Fatalf("Lookup(%q) = %s, want %s", c.spec, e.Name(), c.name)
				}
				return
			}
			if !errors.Is(err, c.wantErr) {
				t.Fatalf("Lookup(%q) error %v, want class %v", c.spec, err, c.wantErr)
			}
		})
	}
}

// TestRegisterValidation: bad names, bad versions and duplicate
// registrations are boot-time programming errors and must panic.
func TestRegisterValidation(t *testing.T) {
	mustPanic := func(name, want string, e Engine) {
		t.Helper()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatalf("%s: Register did not panic", name)
			}
			if msg := fmt.Sprint(r); !strings.Contains(msg, want) {
				t.Fatalf("%s: panic %q does not mention %q", name, msg, want)
			}
		}()
		Register(e)
	}
	mustPanic("empty name", "invalid engine name", fakeEngine{name: "", version: 1})
	mustPanic("upper name", "invalid engine name", fakeEngine{name: "Bad", version: 1})
	mustPanic("spacey name", "invalid engine name", fakeEngine{name: "a b", version: 1})
	mustPanic("zero version", "version 0", fakeEngine{name: "zeroed", version: 0})
	mustPanic("duplicate builtin", "duplicate", fakeEngine{name: DefaultEngine, version: 1})

	// A fresh name registers once, then panics on the second attempt.
	Register(fakeEngine{name: "dup-probe", version: 1})
	mustPanic("duplicate fresh", "duplicate", fakeEngine{name: "dup-probe", version: 2})
}

func TestSpecRoundTrip(t *testing.T) {
	e, err := Lookup(DefaultEngine)
	if err != nil {
		t.Fatal(err)
	}
	if got := Spec(e); got != "constrained@v1" {
		t.Fatalf("Spec = %q", got)
	}
	if _, err := Lookup(Spec(e)); err != nil {
		t.Fatalf("canonical spec does not resolve: %v", err)
	}
}

// TestConstrainedMatchesSkirental: the engine's decisions must be the
// skirental policy verbatim (the byte-identity bedrock the serving
// refactor stands on).
func TestConstrainedMatchesSkirental(t *testing.T) {
	e, err := Lookup(DefaultEngine)
	if err != nil {
		t.Fatal(err)
	}
	cases := []Stats{
		{B: 28, Mu: 8, Q: 0.13},  // DET region
		{B: 28, Mu: 4, Q: 0.25},  // N-Rand region
		{B: 28, Mu: 0.5, Q: 0.9}, // TOI-ish corner
	}
	for _, s := range cases {
		strat, err := e.Prepare(s)
		if err != nil {
			t.Fatalf("Prepare(%+v): %v", s, err)
		}
		for seed := uint64(1); seed <= 3; seed++ {
			got := strat.Decide(rand.New(rand.NewPCG(seed, 7)))
			wantRNG := rand.New(rand.NewPCG(seed, 7))
			want := mustConstrained(t, s)
			if got.Choice != want.Choice().String() {
				t.Fatalf("stats %+v: choice %s, want %s", s, got.Choice, want.Choice())
			}
			if th := want.Threshold(wantRNG); th != got.ThresholdSec {
				t.Fatalf("stats %+v seed %d: threshold %v, want %v", s, seed, got.ThresholdSec, th)
			}
			if got.WorstCaseCost != want.WorstCaseCost() || got.WorstCaseCR != want.WorstCaseCR() {
				t.Fatalf("stats %+v: bounds (%v, %v), want (%v, %v)",
					s, got.WorstCaseCost, got.WorstCaseCR, want.WorstCaseCost(), want.WorstCaseCR())
			}
			if got.Schedule != nil {
				t.Fatalf("constrained decision carries a schedule: %+v", got.Schedule)
			}
		}
		if strat.Explain() == "" {
			t.Fatal("empty explain record")
		}
	}
}

func TestConstrainedInfeasible(t *testing.T) {
	e, _ := Lookup(DefaultEngine)
	for _, s := range []Stats{
		{B: 28, Mu: 30, Q: 0.5}, // mu beyond B(1-q)
		{B: 0, Mu: 1, Q: 0.1},   // non-positive break-even
		{B: 28, Mu: 1, Q: 1.5},  // q out of range
	} {
		if _, err := e.Prepare(s); !errors.Is(err, ErrInfeasible) {
			t.Errorf("Prepare(%+v) = %v, want ErrInfeasible", s, err)
		}
	}
}
