package policy

import (
	"math"

	"idlereduce/internal/skirental"
)

// Bounded is a Strategy that publishes its theoretical worst-case
// competitive ratio: the guarantee the competitive-ratio ledger holds
// the strategy's realized decisions against. The bound must hold for
// every distribution consistent with the statistics the strategy was
// prepared from, and for every input the strategy accepts (for advised
// strategies, every prediction at the prepared trust parameter) — an
// empirical CR confidently above it is a contract breach, not noise.
type Bounded interface {
	Strategy
	// WorstCaseCRBound returns the published worst-case CR (> 1 for any
	// nontrivial instance).
	WorstCaseCRBound() float64
}

// WorstCaseCRBound implements Bounded: the constrained selection's own
// vertex guarantee (the paper's per-vertex CR at the selected vertex).
func (c *constrainedStrategy) WorstCaseCRBound() float64 { return c.p.WorstCaseCR() }

// WorstCaseCRBound implements Bounded: the segment-decomposition upper
// bound precomputed at Prepare time.
func (m *multislopeStrategy) WorstCaseCRBound() float64 { return m.worstCR }

// WorstCaseCRBound implements Bounded: the lambda-robustness envelope
// precomputed at Prepare time (see robustCRBound).
func (a *advisedStrategy) WorstCaseCRBound() float64 { return a.robustBound }

// advisedThresholdGrid is the fallback-threshold grid density used when
// the constrained fallback is randomized (N-Rand draws anywhere in
// [0, b]); deterministic fallbacks evaluate their single threshold.
const advisedThresholdGrid = 64

// robustCRBound computes the published worst-case CR of an advised
// strategy at trust lambda: a conservative envelope over every
// prediction the engine can receive.
//
// For a fallback draw xc, the engine's blended threshold stays inside
// a closed interval — softml blends toward the advice thresholds
// {0, b} with weight at most lambda, so x ∈ [(1-λ)xc, (1-λ)xc + λb];
// distadvice clamps the advice vertex into the trust region
// [xc - λb, xc + λb]. The adversary who knows the interval routes mass
// against both ends at once, which is exactly the two-threshold
// adversarial bound WorstCaseMixedCost — monotone as the pair spreads,
// so the interval endpoints give the per-draw maximum. The envelope is
// that maximum over every reachable xc (the deterministic fallback's
// single threshold, or a grid over [0, b] for N-Rand), floored by the
// fallback's own vertex guarantee so the prediction-free path is
// covered too.
func robustCRBound(fb *constrainedStrategy, lambda float64, interval func(xc, b float64) (lo, hi float64)) float64 {
	st := fb.stats
	offline := st.Mu + st.Q*st.B
	bound := fb.p.WorstCaseCR()
	if offline <= 0 {
		return bound
	}
	eval := func(xc float64) {
		lo, hi := interval(xc, st.B)
		cost := skirental.WorstCaseMixedCost(st.B, st.Mu, st.Q, lo, hi)
		if cr := cost / offline; cr > bound {
			bound = cr
		}
	}
	if det, ok := fb.p.Inner().(*skirental.Deterministic); ok {
		eval(det.X())
		return bound
	}
	for i := 0; i <= advisedThresholdGrid; i++ {
		eval(st.B * float64(i) / advisedThresholdGrid)
	}
	return bound
}

// softmlInterval is softml's reachable blended-threshold interval for
// one fallback draw: advice thresholds are {0, b} and the blend weight
// is at most lambda.
func softmlInterval(lambda float64) func(xc, b float64) (float64, float64) {
	return func(xc, b float64) (float64, float64) {
		return (1 - lambda) * xc, (1-lambda)*xc + lambda*b
	}
}

// distadviceInterval is distadvice's trust region around the fallback
// draw (WorstCaseMixedCost clamps into [0, b] itself).
func distadviceInterval(lambda float64) func(xc, b float64) (float64, float64) {
	return func(xc, b float64) (float64, float64) {
		return math.Max(0, xc-lambda*b), math.Min(b, xc+lambda*b)
	}
}
