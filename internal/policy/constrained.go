package policy

import (
	"fmt"
	"math/rand/v2"

	"idlereduce/internal/skirental"
)

// constrainedEngine is the default engine: the paper's constrained
// single-slope policy (DAC 2014), selecting the cheapest of the four
// vertex strategies for (B, mu_B-, q_B+). It delegates every
// computation to the skirental package, so serving through the engine
// abstraction is bit-identical to serving skirental directly.
type constrainedEngine struct{}

func init() { Register(constrainedEngine{}) }

// Name implements Engine.
func (constrainedEngine) Name() string { return DefaultEngine }

// Version implements Engine.
func (constrainedEngine) Version() int { return 1 }

// Doc implements Engine.
func (constrainedEngine) Doc() string {
	return "single-slope constrained vertex selection (DET/TOI/b-DET/N-Rand) of the paper"
}

// Prepare implements Engine.
func (constrainedEngine) Prepare(s Stats) (Strategy, error) {
	p, err := skirental.NewConstrained(s.B, skirental.Stats{MuBMinus: s.Mu, QBPlus: s.Q})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInfeasible, err)
	}
	return &constrainedStrategy{p: p, stats: s, choice: p.Choice().String()}, nil
}

// constrainedStrategy wraps the prepared vertex selection. The choice
// label is rendered once at Prepare time so Decide — the per-request
// hot path — only draws the threshold.
type constrainedStrategy struct {
	p      *skirental.Constrained
	stats  Stats
	choice string
}

// Decide implements Strategy. The RNG is consumed exactly as the
// pre-engine server did: one Threshold call on the selected vertex.
func (c *constrainedStrategy) Decide(rng *rand.Rand) Decision {
	return Decision{
		Choice:        c.choice,
		ThresholdSec:  c.p.Threshold(rng),
		WorstCaseCost: c.p.WorstCaseCost(),
		WorstCaseCR:   c.p.WorstCaseCR(),
	}
}

// Explain implements Strategy, rendered on demand: the default wire
// format never carries it, so no serving path pays for the string.
func (c *constrainedStrategy) Explain() string {
	return fmt.Sprintf("constrained@v1: B=%g mu=%g q=%g -> vertex %s (worst-case cost %g)",
		c.stats.B, c.stats.Mu, c.stats.Q, c.p.Choice(), c.p.WorstCaseCost())
}

// Describe implements Strategy. ThresholdSec is -1 for N-Rand, whose
// threshold is drawn per request — the same convention AreaInfo used
// before the engine extraction.
func (c *constrainedStrategy) Describe() Description {
	d := Description{
		Choice:        c.p.Choice().String(),
		ThresholdSec:  -1,
		WorstCaseCost: c.p.WorstCaseCost(),
		WorstCaseCR:   c.p.WorstCaseCR(),
	}
	if det, ok := c.p.Inner().(*skirental.Deterministic); ok {
		d.ThresholdSec = det.X()
	}
	return d
}
