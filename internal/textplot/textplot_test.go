package textplot

import (
	"math"
	"strings"
	"testing"
)

func TestLineChartBasics(t *testing.T) {
	c := &LineChart{Title: "demo", Width: 40, Height: 10}
	c.Add(Series{Name: "up", X: []float64{0, 1, 2}, Y: []float64{0, 1, 2}})
	c.Add(Series{Name: "down", X: []float64{0, 1, 2}, Y: []float64{2, 1, 0}})
	out := c.Render()
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "+ down") {
		t.Errorf("missing legend:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("missing glyphs")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("too few lines: %d", len(lines))
	}
}

func TestLineChartSkipsNonFinite(t *testing.T) {
	c := &LineChart{Width: 30, Height: 6}
	c.Add(Series{Name: "s", X: []float64{1, 2, 3}, Y: []float64{1, math.Inf(1), math.NaN()}})
	out := c.Render()
	if strings.Contains(out, "Inf") || strings.Contains(out, "NaN") {
		t.Errorf("non-finite leaked:\n%s", out)
	}
}

func TestLineChartNoData(t *testing.T) {
	c := &LineChart{Title: "empty"}
	c.Add(Series{Name: "nothing", X: []float64{math.NaN()}, Y: []float64{math.NaN()}})
	out := c.Render()
	if !strings.Contains(out, "no finite data") {
		t.Errorf("expected placeholder, got:\n%s", out)
	}
}

func TestLineChartLogX(t *testing.T) {
	c := &LineChart{Width: 40, Height: 8, LogX: true}
	c.Add(Series{Name: "s", X: []float64{1, 10, 100}, Y: []float64{1, 2, 3}})
	out := c.Render()
	// On a log axis the three points are evenly spaced; the middle glyph
	// should appear near the center column. Weak but meaningful check:
	// every row containing a glyph has it within the canvas.
	if !strings.Contains(out, "*") {
		t.Error("no glyphs")
	}
}

func TestLineChartFixedYRange(t *testing.T) {
	c := &LineChart{Width: 30, Height: 6, YMin: 1, YMax: 2}
	c.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{0.5, 5}}) // outside range: clamped
	out := c.Render()
	if !strings.Contains(out, "2.000") || !strings.Contains(out, "1.000") {
		t.Errorf("axis labels missing:\n%s", out)
	}
}

func TestHeatmapRender(t *testing.T) {
	m := &Heatmap{
		Title:  "regions",
		XLabel: "mu/B",
		YLabel: "q",
		Cells: [][]rune{
			[]rune("DD"),
			[]rune("TN"),
		},
		Legend: []LegendEntry{{'D', "DET"}, {'T', "TOI"}, {'N', "N-Rand"}},
	}
	out := m.Render()
	// Row 0 is bottom: "TN" must appear below... i.e. after "DD" in
	// output order reversed. Output renders top row (j=1) first.
	iTop := strings.Index(out, "TN")
	iBottom := strings.Index(out, "DD")
	if iTop == -1 || iBottom == -1 || iTop > iBottom {
		t.Errorf("row order wrong:\n%s", out)
	}
	for _, frag := range []string{"regions", "mu/B", "D = DET", "N = N-Rand"} {
		if !strings.Contains(out, frag) {
			t.Errorf("missing %q:\n%s", frag, out)
		}
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([][]string{
		{"name", "value"},
		{"alpha", "1"},
		{"bb", "22.5"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines %d:\n%s", len(lines), out)
	}
	// Header separator present.
	if !strings.HasPrefix(lines[1], "---") {
		t.Errorf("no separator:\n%s", out)
	}
	// Columns aligned: "value" and "22.5" start at the same offset.
	if strings.Index(lines[0], "value") != strings.Index(lines[3], "22.5") {
		t.Errorf("misaligned:\n%s", out)
	}
}

func TestTableEmptyAndRagged(t *testing.T) {
	if Table(nil) != "" {
		t.Error("empty table should render empty")
	}
	out := Table([][]string{{"a", "b", "c"}, {"1"}})
	if !strings.Contains(out, "a") || !strings.Contains(out, "1") {
		t.Errorf("ragged rows mishandled:\n%s", out)
	}
}

func TestBarChartRender(t *testing.T) {
	b := &BarChart{Title: "bars", Width: 20}
	b.Add("alpha", 10)
	b.Add("bb", 5)
	b.Add("zero", 0)
	out := b.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines %d:\n%s", len(lines), out)
	}
	// alpha's bar is full width; bb's is half.
	if !strings.Contains(lines[1], strings.Repeat("#", 20)) {
		t.Errorf("full bar missing:\n%s", out)
	}
	if !strings.Contains(lines[2], strings.Repeat("#", 10)) || strings.Contains(lines[2], strings.Repeat("#", 11)) {
		t.Errorf("half bar wrong:\n%s", out)
	}
	if strings.Contains(lines[3], "#") {
		t.Errorf("zero bar should be empty:\n%s", out)
	}
}

func TestBarChartAllZero(t *testing.T) {
	b := &BarChart{}
	b.Add("x", 0)
	if out := b.Render(); strings.Contains(out, "#") {
		t.Errorf("zero-only chart drew bars:\n%s", out)
	}
}

func TestSparklineScalesToWindow(t *testing.T) {
	out := []rune(Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8))
	if string(out) != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp sparkline = %q", string(out))
	}
}

func TestSparklineRightAlignsShortSeries(t *testing.T) {
	out := []rune(Sparkline([]float64{0, 10}, 6))
	if len(out) != 6 {
		t.Fatalf("width %d, want 6", len(out))
	}
	for _, r := range out[:4] {
		if r != ' ' {
			t.Fatalf("left pad not blank: %q", string(out))
		}
	}
	if out[4] != '▁' || out[5] != '█' {
		t.Errorf("short series = %q", string(out))
	}
}

func TestSparklineTruncatesToLastWidth(t *testing.T) {
	// Only the last 4 values set the scale: 100 is outside the window.
	out := []rune(Sparkline([]float64{100, 1, 1, 1, 2}, 4))
	if string(out) != "▁▁▁█" {
		t.Errorf("windowed sparkline = %q", string(out))
	}
}

func TestSparklineFlatAndNaN(t *testing.T) {
	if out := Sparkline([]float64{5, 5, 5}, 3); out != "▁▁▁" {
		t.Errorf("flat series = %q", out)
	}
	out := []rune(Sparkline([]float64{0, math.NaN(), 4}, 3))
	if out[0] != '▁' || out[1] != ' ' || out[2] != '█' {
		t.Errorf("NaN handling = %q", string(out))
	}
	if got := Sparkline(nil, 5); got != "     " {
		t.Errorf("empty series = %q", got)
	}
}
