// Package textplot renders the experiment outputs — line charts, region
// heatmaps and aligned tables — as plain text, so every figure of the
// paper can be regenerated in a terminal without plotting dependencies.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve of a line chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// LineChart renders one or more series on a shared canvas. Each series is
// drawn with its own rune; a legend maps runes to names. Non-finite Y
// values are skipped.
type LineChart struct {
	Title  string
	Width  int
	Height int
	// YMin/YMax fix the vertical range; when both are zero the range is
	// computed from the data.
	YMin, YMax float64
	// LogX plots x on a log10 axis.
	LogX   bool
	series []Series
}

// Add appends a series.
func (c *LineChart) Add(s Series) { c.series = append(c.series, s) }

// seriesRunes assigns plotting glyphs in order.
var seriesRunes = []rune{'*', '+', 'o', 'x', '#', '@', '%', '~'}

// Render draws the chart.
func (c *LineChart) Render() string {
	w, h := c.Width, c.Height
	if w < 20 {
		w = 72
	}
	if h < 5 {
		h = 20
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := c.YMin, c.YMax
	autoY := ymin == 0 && ymax == 0
	if autoY {
		ymin, ymax = math.Inf(1), math.Inf(-1)
	}
	for _, s := range c.series {
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
				continue
			}
			if x < xmin {
				xmin = x
			}
			if x > xmax {
				xmax = x
			}
			if autoY {
				if y < ymin {
					ymin = y
				}
				if y > ymax {
					ymax = y
				}
			}
		}
	}
	if math.IsInf(xmin, 0) || xmin == xmax {
		return c.Title + "\n(no finite data)\n"
	}
	if ymin == ymax {
		ymax = ymin + 1
	}
	tx := func(x float64) float64 {
		if c.LogX {
			return math.Log10(x)
		}
		return x
	}
	txmin, txmax := tx(xmin), tx(xmax)

	grid := make([][]rune, h)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", w))
	}
	for si, s := range c.series {
		glyph := seriesRunes[si%len(seriesRunes)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if math.IsNaN(y) || math.IsInf(y, 0) || math.IsNaN(x) {
				continue
			}
			col := int(math.Round((tx(x) - txmin) / (txmax - txmin) * float64(w-1)))
			yy := math.Min(math.Max(y, ymin), ymax)
			row := h - 1 - int(math.Round((yy-ymin)/(ymax-ymin)*float64(h-1)))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = glyph
			}
		}
	}

	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	for r, row := range grid {
		yv := ymax - float64(r)/float64(h-1)*(ymax-ymin)
		fmt.Fprintf(&b, "%8.3f |%s\n", yv, string(row))
	}
	fmt.Fprintf(&b, "%8s +%s\n", "", strings.Repeat("-", w))
	xl := fmt.Sprintf("%.4g", xmin)
	xr := fmt.Sprintf("%.4g", xmax)
	pad := w - len(xl) - len(xr)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%8s  %s%s%s\n", "", xl, strings.Repeat(" ", pad), xr)
	for si, s := range c.series {
		fmt.Fprintf(&b, "    %c %s\n", seriesRunes[si%len(seriesRunes)], s.Name)
	}
	return b.String()
}

// sparkRunes are the eight block glyphs of a sparkline, lowest to
// highest.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the last width values as a one-line block graph,
// scaled to the finite min/max of the rendered window. Non-finite
// values render as spaces; fewer values than width left-pads with
// spaces so consecutive renders of a growing series stay right-aligned
// (the live-dashboard shape). A flat series renders at the low block.
func Sparkline(values []float64, width int) string {
	if width <= 0 {
		width = 60
	}
	if len(values) > width {
		values = values[len(values)-width:]
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	out := make([]rune, width)
	for i := range out {
		out[i] = ' '
	}
	if math.IsInf(lo, 0) {
		return string(out)
	}
	span := hi - lo
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkRunes)-1))
		}
		out[width-len(values)+i] = sparkRunes[idx]
	}
	return string(out)
}

// Heatmap renders a labelled character grid (used for the Figure 1a
// strategy-region map). Cell (i, j) maps to column i, row j with row 0 at
// the bottom.
type Heatmap struct {
	Title  string
	XLabel string
	YLabel string
	// Cells[j][i] is the glyph at column i, row j (row 0 bottom).
	Cells [][]rune
	// Legend maps glyphs to descriptions, rendered in insertion order.
	Legend []LegendEntry
}

// LegendEntry pairs a glyph with its meaning.
type LegendEntry struct {
	Glyph rune
	Desc  string
}

// Render draws the heatmap.
func (m *Heatmap) Render() string {
	var b strings.Builder
	if m.Title != "" {
		fmt.Fprintf(&b, "%s\n", m.Title)
	}
	if m.YLabel != "" {
		fmt.Fprintf(&b, "%s\n", m.YLabel)
	}
	for j := len(m.Cells) - 1; j >= 0; j-- {
		fmt.Fprintf(&b, "  |%s\n", string(m.Cells[j]))
	}
	if len(m.Cells) > 0 {
		fmt.Fprintf(&b, "  +%s\n", strings.Repeat("-", len(m.Cells[0])))
	}
	if m.XLabel != "" {
		fmt.Fprintf(&b, "   %s\n", m.XLabel)
	}
	for _, e := range m.Legend {
		fmt.Fprintf(&b, "    %c = %s\n", e.Glyph, e.Desc)
	}
	return b.String()
}

// Table renders rows with aligned columns. The first row is treated as a
// header and underlined.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	cols := 0
	for _, r := range rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	widths := make([]int, cols)
	for _, r := range rows {
		for i, cell := range r {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			cell := ""
			if i < len(r) {
				cell = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(rows[0])
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(cols-1)) + "\n")
	for _, r := range rows[1:] {
		writeRow(r)
	}
	return b.String()
}

// BarChart renders horizontal bars with labels, scaled to the widest
// value. Used for the per-vehicle CR histograms of Figure 4.
type BarChart struct {
	Title string
	Width int // bar area width in cells (default 50)
	rows  []barRow
}

type barRow struct {
	label string
	value float64
}

// Add appends one bar.
func (b *BarChart) Add(label string, value float64) {
	b.rows = append(b.rows, barRow{label: label, value: value})
}

// Render draws the chart.
func (b *BarChart) Render() string {
	w := b.Width
	if w < 10 {
		w = 50
	}
	max := 0.0
	labelW := 0
	for _, r := range b.rows {
		if r.value > max {
			max = r.value
		}
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	var sb strings.Builder
	if b.Title != "" {
		fmt.Fprintf(&sb, "%s\n", b.Title)
	}
	if max <= 0 {
		max = 1
	}
	for _, r := range b.rows {
		n := int(math.Round(r.value / max * float64(w)))
		if r.value > 0 && n == 0 {
			n = 1
		}
		fmt.Fprintf(&sb, "%-*s |%s %v\n", labelW, r.label, strings.Repeat("#", n), r.value)
	}
	return sb.String()
}
